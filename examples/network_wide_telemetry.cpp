// Network-wide telemetry: several software switches, one collector.
//
// Three simulated switches each run a NitroSketch-UnivMon data plane over
// their own traffic slice.  At the epoch boundary each serializes its
// sketch (the §6 data-plane -> control-plane transfer) and the collector
// merges the snapshots into a network-wide view — possible because all
// data planes share the same sketch configuration and hash seeds
// (the standard mergeability requirement).  The collector then reports
// network-wide heavy hitters that NO single switch could see locally.
//
//   ./examples/network_wide_telemetry
#include <cstdio>
#include <vector>

#include "control/codec.hpp"
#include "control/estimation.hpp"
#include "core/nitro_univmon.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace nitro;

  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 14;
  um_cfg.depth = 5;
  um_cfg.top_width = 8192;
  um_cfg.heap_capacity = 500;

  core::NitroConfig nitro_cfg;
  nitro_cfg.mode = core::Mode::kFixedRate;
  nitro_cfg.probability = 0.05;

  constexpr std::uint64_t kSharedSeed = 0x5eedULL;  // same hashes everywhere
  constexpr int kSwitches = 3;
  constexpr std::uint64_t kPacketsPerSwitch = 400'000;

  // A flow that is mid-sized at each switch but heavy network-wide:
  // 0.04% per switch (below the 0.05% reporting threshold), 0.12% total.
  const FlowKey distributed = trace::flow_key_for_rank(424242, 0xd15cULL);

  std::vector<core::NitroUnivMon> dataplanes;
  trace::GroundTruth truth;
  for (int s = 0; s < kSwitches; ++s) {
    dataplanes.emplace_back(um_cfg, nitro_cfg, kSharedSeed);
  }

  std::printf("simulating %d switches x %llu packets...\n", kSwitches,
              static_cast<unsigned long long>(kPacketsPerSwitch));
  for (int s = 0; s < kSwitches; ++s) {
    trace::WorkloadSpec spec;
    spec.packets = kPacketsPerSwitch;
    spec.flows = 30'000;
    spec.seed = 100 + s;  // different traffic mix per switch
    const auto stream = trace::caida_like(spec);
    for (const auto& p : stream) {
      dataplanes[s].update(p.key);
      truth.add(p.key, 1);
    }
    const auto spread = static_cast<std::int64_t>(0.0004 * kPacketsPerSwitch);
    for (std::int64_t i = 0; i < spread; ++i) {
      dataplanes[s].update(distributed);
      truth.add(distributed, 1);
    }
  }

  // Epoch boundary: pull snapshots over the (simulated) control channel.
  control::UnivMonCollector collector(um_cfg, kSharedSeed);
  sketch::UnivMon network_view(um_cfg, kSharedSeed);
  std::size_t wire_bytes = 0;
  for (int s = 0; s < kSwitches; ++s) {
    const auto snapshot = control::snapshot_univmon(dataplanes[s].univmon());
    wire_bytes += snapshot.size();
    sketch::UnivMon replica(um_cfg, kSharedSeed);
    control::load_univmon(snapshot, replica);
    network_view.merge(replica);
  }
  std::printf("collected %zu KB of snapshots from %d switches\n", wire_bytes / 1024,
              kSwitches);

  // Per-switch view: the distributed flow is under threshold everywhere.
  const auto threshold =
      static_cast<std::int64_t>(0.0005 * kSwitches * kPacketsPerSwitch);
  for (int s = 0; s < kSwitches; ++s) {
    std::printf("switch %d local estimate of the distributed flow: %lld"
                " (network threshold %lld)\n",
                s, static_cast<long long>(dataplanes[s].query(distributed)),
                static_cast<long long>(threshold));
  }

  // Network-wide view: it crosses the threshold.
  const auto est = network_view.query(distributed);
  std::printf("\nnetwork-wide estimate: %lld (true %lld) -> %s\n",
              static_cast<long long>(est),
              static_cast<long long>(truth.count(distributed)),
              est >= threshold ? "HEAVY HITTER" : "missed");

  const auto hh = control::heavy_hitters(network_view, 0.0005);
  std::printf("network-wide heavy hitters above 0.05%%: %zu flows\n", hh.size());
  bool found = false;
  for (const auto& h : hh) {
    if (h.key == distributed) found = true;
  }
  std::printf("distributed flow present in the merged report: %s\n",
              found ? "yes" : "no");
  return found ? 0 : 1;
}
