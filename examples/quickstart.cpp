// Quickstart: accelerate a Count-Min Sketch with NitroSketch.
//
// Feeds one million synthetic CAIDA-like packets through a vanilla
// Count-Min Sketch and a NitroSketch-wrapped one (fixed sampling rate
// p = 0.01), then compares per-flow estimates for the ten biggest flows.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/nitro_sketch.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace nitro;

  // 1. Synthesize a workload (deterministic from the seed).
  trace::WorkloadSpec spec;
  spec.packets = 1'000'000;
  spec.flows = 100'000;
  spec.seed = 42;
  const trace::Trace stream = trace::caida_like(spec);
  const trace::GroundTruth truth(stream);

  // 2. A vanilla Count-Min Sketch (5 rows x 10000 counters)...
  sketch::CountMinSketch vanilla(5, 10000, /*seed=*/7);

  // 3. ...and the same sketch wrapped in NitroSketch at p = 0.01.
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.01;
  core::NitroCountMin nitro(sketch::CountMinSketch(5, 10000, /*seed=*/7), cfg);

  // 4. Feed both.
  for (const auto& pkt : stream) {
    vanilla.update(pkt.key);
    nitro.update(pkt.key, 1, pkt.ts_ns);
  }

  // 5. Compare estimates for the top flows.
  std::printf("%-44s %10s %10s %10s\n", "flow", "true", "vanilla", "nitro");
  for (const auto& [key, count] : truth.top_k(10)) {
    std::printf("%-44s %10lld %10lld %10lld\n", to_string(key).c_str(),
                static_cast<long long>(count),
                static_cast<long long>(vanilla.query(key)),
                static_cast<long long>(nitro.query(key)));
  }
  std::printf("\nsampled counter updates: %llu of %llu packets x %u rows (%.2f%%)\n",
              static_cast<unsigned long long>(nitro.sampled_updates()),
              static_cast<unsigned long long>(nitro.packets()), 5U,
              100.0 * static_cast<double>(nitro.sampled_updates()) /
                  (5.0 * static_cast<double>(nitro.packets())));
  return 0;
}
