// Entropy/cardinality anomaly detection across measurement epochs.
//
// The control-plane daemon (§6) runs a NitroSketch-UnivMon data plane and,
// at each epoch boundary, pulls entropy and distinct-flow estimates —
// the classic signals for volumetric attack detection (§2, task 5).
// We replay three benign epochs, then a DDoS epoch: the detector flags
// the epoch where the source-flow cardinality and entropy jump.
//
//   ./examples/ddos_entropy_detector
#include <cstdio>
#include <vector>

#include "control/anomaly.hpp"
#include "control/daemon.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace nitro;

  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 16;
  um_cfg.depth = 5;
  um_cfg.top_width = 8192;
  um_cfg.heap_capacity = 500;

  core::NitroConfig nitro_cfg;
  nitro_cfg.mode = core::Mode::kFixedRate;
  nitro_cfg.probability = 0.05;

  control::MeasurementDaemon::Tasks tasks;
  tasks.change_detection = false;  // this example keys on entropy/distinct

  control::MeasurementDaemon daemon(um_cfg, nitro_cfg, tasks, 99);

  constexpr std::uint64_t kEpochPackets = 500'000;
  std::vector<control::EpochReport> reports;

  // Five benign epochs (baseline warmup), then the attack.
  for (int epoch = 0; epoch < 5; ++epoch) {
    trace::WorkloadSpec spec;
    spec.packets = kEpochPackets;
    spec.flows = 20'000;
    spec.seed = 100 + epoch;
    for (const auto& p : trace::caida_like(spec)) daemon.on_packet(p.key, p.ts_ns);
    reports.push_back(daemon.end_epoch());
  }
  for (const auto& p : trace::ddos(kEpochPackets, 300'000, 42)) {
    daemon.on_packet(p.key, p.ts_ns);
  }
  reports.push_back(daemon.end_epoch());

  // EWMA-baseline detector over the sketch estimates.
  control::AnomalyDetector detector(/*warmup=*/3, /*sigmas=*/3.0);
  std::printf("%-8s %12s %12s %10s %s\n", "epoch", "distinct", "entropy",
              "top HHs", "verdict");
  for (const auto& r : reports) {
    const auto v = detector.observe(r.entropy, r.distinct);
    std::printf("%-8llu %12.0f %12.3f %10zu %s%s\n",
                static_cast<unsigned long long>(r.epoch), r.distinct, r.entropy,
                r.heavy_hitters.size(),
                v.anomalous ? "*** DDoS SUSPECTED: " : "ok",
                v.anomalous ? v.reason.c_str() : "");
  }
  return 0;
}
