// Heavy-hitter monitoring on a software switch.
//
// Runs a NitroSketch-accelerated UnivMon inside the OVS-like pipeline's
// EMC stage (the all-in-one integration of §6), replays a CAIDA-like
// trace, then reports the flows above the paper's 0.05% threshold with
// their estimation error against exact ground truth.
//
//   ./examples/heavy_hitter_monitor [packets] [flows]
#include <cstdio>
#include <cstdlib>

#include "control/estimation.hpp"
#include "core/nitro_univmon.hpp"
#include "metrics/accuracy.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/ovs_pipeline.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

int main(int argc, char** argv) {
  using namespace nitro;

  trace::WorkloadSpec spec;
  spec.packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
  spec.flows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  spec.seed = 2024;

  std::printf("generating %llu-packet CAIDA-like trace (%llu flows)...\n",
              static_cast<unsigned long long>(spec.packets),
              static_cast<unsigned long long>(spec.flows));
  const auto stream = trace::caida_like(spec);
  const trace::GroundTruth truth(stream);

  // Data plane: UnivMon wrapped in NitroSketch, AlwaysLineRate mode —
  // the sampling rate adapts to the offered load every 100ms.
  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 16;
  um_cfg.depth = 5;
  um_cfg.top_width = 10000;
  um_cfg.heap_capacity = 1000;

  core::NitroConfig nitro_cfg;
  nitro_cfg.mode = core::Mode::kAlwaysLineRate;
  nitro_cfg.probability = 1.0 / 128.0;  // p_min

  core::NitroUnivMon dataplane(um_cfg, nitro_cfg, 7);
  switchsim::InlineMeasurement<core::NitroUnivMon> hook(dataplane);
  switchsim::OvsPipeline pipeline(hook);

  const auto stats = pipeline.run(switchsim::materialize(stream));
  const auto tput = stats.throughput();
  std::printf("switched %llu packets at %.2f Mpps (%.2f Gbps), EMC hit rate %.1f%%\n",
              static_cast<unsigned long long>(stats.packets), tput.mpps, tput.gbps,
              100.0 * static_cast<double>(pipeline.emc().hits()) /
                  static_cast<double>(pipeline.emc().hits() + pipeline.emc().misses()));
  std::printf("final sampling probability: %.4f\n", dataplane.level_probability(0));

  // Control plane: pull heavy hitters above 0.05% of the epoch.
  const auto hh = control::heavy_hitters(dataplane, 0.0005);
  std::printf("\n%-44s %10s %10s %8s\n", "heavy hitter", "estimate", "true",
              "err");
  std::size_t shown = 0;
  for (const auto& h : hh) {
    const auto real = truth.count(h.key);
    std::printf("%-44s %10lld %10lld %7.2f%%\n", to_string(h.key).c_str(),
                static_cast<long long>(h.estimate), static_cast<long long>(real),
                100.0 * metrics::relative_error(static_cast<double>(h.estimate),
                                                static_cast<double>(real)));
    if (++shown == 15) break;
  }

  const auto threshold = static_cast<std::int64_t>(0.0005 * spec.packets);
  const double mre = metrics::hh_mean_relative_error(
      truth, threshold, [&](const FlowKey& k) { return dataplane.query(k); });
  std::printf("\nmean relative error over all true heavy hitters: %.2f%%\n",
              100.0 * mre);
  return 0;
}
