// Run-to-completion consumer loop: poll a backend, feed the measurement.
//
// The structure of a NIC driver loop — rx_burst(); parse; update; repeat
// on the same thread — with the parse already folded into the backend's
// descriptors and the update folded into switchsim::Measurement::on_burst
// (which routes to the sketch's update_burst fast path).  Epoch drivers
// call run() with a packet budget; the loop stops exactly at the budget
// even mid-burst (it requests smaller bursts as the budget runs down), so
// epoch boundaries land on the same packet regardless of backend burst
// shapes.
#pragma once

#include <cstdint>

#include "common/flow_key.hpp"
#include "ingest/backend.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/packet.hpp"

namespace nitro::ingest {

struct IngestStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bursts = 0;
};

class IngestLoop {
 public:
  IngestLoop(IngestBackend& backend, switchsim::Measurement& measurement,
             std::size_t burst_size = switchsim::kBurstSize)
      : backend_(backend), measurement_(measurement), burst_size_(burst_size) {}

  /// Poll until the backend ends or `max_packets` have been delivered.
  /// Returns packets delivered by THIS call; cumulative totals accrue in
  /// stats().  Does not call measurement.finish() — the epoch driver owns
  /// that barrier.
  std::uint64_t run(std::uint64_t max_packets = ~0ull) {
    PacketView views[kMaxBurst];
    FlowKey keys[kMaxBurst];
    std::uint16_t wire[kMaxBurst];
    const std::size_t burst = burst_size_ < kMaxBurst ? burst_size_ : kMaxBurst;
    std::uint64_t delivered = 0;
    while (delivered < max_packets) {
      const std::uint64_t remaining = max_packets - delivered;
      const std::size_t want =
          remaining < burst ? static_cast<std::size_t>(remaining) : burst;
      const std::size_t n = backend_.next_burst(views, want);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = views[i].key;
        wire[i] = views[i].wire_bytes;
        stats_.bytes += views[i].wire_bytes;
      }
      // Whole burst stamped with the poll timestamp (= last packet's),
      // matching OvsPipeline's burst convention.
      measurement_.on_burst(keys, wire, n, views[n - 1].ts_ns);
      delivered += n;
      ++stats_.bursts;
    }
    stats_.packets += delivered;
    return delivered;
  }

  const IngestStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::size_t kMaxBurst = 256;

  IngestBackend& backend_;
  switchsim::Measurement& measurement_;
  std::size_t burst_size_;
  IngestStats stats_;
};

}  // namespace nitro::ingest
