// Pluggable burst-oriented ingest backends (ROADMAP item 1; DESIGN.md §14).
//
// A backend is a packet source with the shape of a NIC RX loop: the
// consumer thread calls next_burst() and receives up to `max` packet
// descriptors, then parses/digests/updates *on the same thread* before
// polling again (run-to-completion — no handoff between RX and sketch).
// Descriptors are BORROWED: the frame bytes they point at belong to the
// backend (an mmap'd trace, a hugepage frame pool) and remain valid only
// until the next next_burst() call on the same backend, exactly like a
// driver's RX descriptor ring.  Nothing is copied per packet except the
// 13-byte FlowKey the header decode produces.
#pragma once

#include <cstdint>

#include "common/flow_key.hpp"

namespace nitro::ingest {

/// One received packet, decoded.  `frame`/`frame_len` expose the raw
/// on-wire bytes for consumers that want to re-parse (null for backends
/// whose records were never materialized as frames, i.e. synth replay);
/// they are valid only until the next next_burst() call.
struct PacketView {
  FlowKey key{};
  std::uint16_t wire_bytes = 0;
  std::uint64_t ts_ns = 0;
  const std::uint8_t* frame = nullptr;
  std::uint32_t frame_len = 0;
};

class IngestBackend {
 public:
  virtual ~IngestBackend() = default;

  /// Fill `out[0..max)` with the next decoded packets of the stream.
  /// Returns how many were delivered; 0 means end of stream.  May return
  /// fewer than `max` without meaning EOF (a shim ring momentarily
  /// drained) — only 0 terminates.  Invalidates the previous call's
  /// descriptors.
  virtual std::size_t next_burst(PacketView* out, std::size_t max) = 0;

  /// Stable identifier stamped into bench sidecars ("synth" | "pcap" |
  /// "ntr" | "shim").
  virtual const char* name() const noexcept = 0;

  /// Total packets the backend expects to deliver across its whole
  /// lifetime (including --replay-loop repeats); 0 = unknown.  The epoch
  /// driver uses this to split the stream into equal epochs.
  virtual std::uint64_t size_hint() const noexcept { return 0; }

  /// BufferedUpdater prefetch distance matched to this backend's memory
  /// behavior (0 = prefetch the whole digest group up front).  Streaming
  /// backends whose packet bytes already flow through cache sequentially
  /// prefer a short window so counter-line hints don't compete with the
  /// stream.
  virtual std::uint32_t preferred_prefetch_window() const noexcept { return 0; }

  /// Frames that arrived but failed L2/L3 decode and were skipped.
  virtual std::uint64_t parse_errors() const noexcept { return 0; }
};

}  // namespace nitro::ingest
