// Minimal libpcap-format reader/writer (no libpcap dependency).
//
// The reader operates on a borrowed byte span — in practice an mmap'd
// capture — and hands out record views pointing straight into it.  It is
// deliberately loud: every malformed input (truncated global or record
// header, caplen above snaplen, a record straddling the end of the
// mapping, an unknown magic or link type) throws with the offending
// offset rather than silently truncating, and it never reads outside the
// span (fuzzed in tests/ingest/test_pcap_fuzz.cpp, run under ASan).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/packet_record.hpp"

namespace nitro::ingest {

constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4u;
constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4du;
constexpr std::uint32_t kPcapLinktypeEthernet = 1;
constexpr std::size_t kPcapGlobalHeaderBytes = 24;
constexpr std::size_t kPcapRecordHeaderBytes = 16;

struct PcapInfo {
  bool swapped = false;   // file endianness differs from host
  bool nanos = false;     // timestamps are (sec, nsec) not (sec, usec)
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
};

/// One capture record, borrowed from the underlying span.
struct PcapRecord {
  const std::uint8_t* data = nullptr;  // caplen bytes of frame
  std::uint32_t caplen = 0;
  std::uint32_t orig_len = 0;  // on-wire length
  std::uint64_t ts_ns = 0;
};

/// Parse and validate the 24-byte global header.  Throws std::runtime_error
/// on short input, unknown magic, or a link type other than Ethernet.
PcapInfo parse_pcap_header(std::span<const std::uint8_t> bytes);

/// Forward iterator over the records of a pcap byte span.  Construction
/// validates the global header; next() validates each record before
/// exposing it.
class PcapCursor {
 public:
  explicit PcapCursor(std::span<const std::uint8_t> bytes);

  /// Advance to the next record.  Returns false at clean end-of-capture;
  /// throws std::runtime_error on any malformed record.
  bool next(PcapRecord& out);

  /// Restart from the first record.
  void rewind() noexcept { off_ = kPcapGlobalHeaderBytes; }

  const PcapInfo& info() const noexcept { return info_; }

 private:
  std::span<const std::uint8_t> bytes_;
  PcapInfo info_;
  std::size_t off_ = kPcapGlobalHeaderBytes;
};

/// Serialize a trace as a pcap capture: one 42-byte header frame per
/// record (ingest::write_frame layout), caplen = 42, orig_len =
/// wire_bytes.  Nanosecond magic by default so NTR1 timestamps round-trip
/// exactly (microsecond pcap would truncate ts_ns and break backend
/// equivalence).  Written via the atomic tmp+fsync+rename path.  Throws
/// on I/O failure.
void write_pcap(const std::string& path, const trace::Trace& trace,
                bool nanos = true);

}  // namespace nitro::ingest
