#include "ingest/pcap.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/io.hpp"
#include "ingest/frame.hpp"

namespace nitro::ingest {

namespace {

inline std::uint32_t bswap32(std::uint32_t v) noexcept {
  return __builtin_bswap32(v);
}

/// Read a file-endian u32 at `off` (caller has bounds-checked).
inline std::uint32_t load32(const std::uint8_t* p, bool swapped) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return swapped ? bswap32(v) : v;
}

[[noreturn]] void fail(const std::string& what, std::size_t off) {
  throw std::runtime_error("pcap: " + what + " at offset " + std::to_string(off));
}

}  // namespace

PcapInfo parse_pcap_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kPcapGlobalHeaderBytes) {
    fail("truncated global header (" + std::to_string(bytes.size()) +
             " of 24 bytes)",
         0);
  }
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), sizeof magic);

  PcapInfo info;
  if (magic == kPcapMagicMicros) {
    info.swapped = false;
    info.nanos = false;
  } else if (magic == kPcapMagicNanos) {
    info.swapped = false;
    info.nanos = true;
  } else if (magic == bswap32(kPcapMagicMicros)) {
    info.swapped = true;
    info.nanos = false;
  } else if (magic == bswap32(kPcapMagicNanos)) {
    info.swapped = true;
    info.nanos = true;
  } else {
    fail("unknown magic 0x" + [magic] {
      char buf[9];
      std::snprintf(buf, sizeof buf, "%08x", magic);
      return std::string(buf);
    }(), 0);
  }
  info.snaplen = load32(bytes.data() + 16, info.swapped);
  info.linktype = load32(bytes.data() + 20, info.swapped);
  if (info.linktype != kPcapLinktypeEthernet) {
    fail("unsupported link type " + std::to_string(info.linktype) +
             " (only Ethernet/1)",
         20);
  }
  return info;
}

PcapCursor::PcapCursor(std::span<const std::uint8_t> bytes)
    : bytes_(bytes), info_(parse_pcap_header(bytes)) {}

bool PcapCursor::next(PcapRecord& out) {
  if (off_ == bytes_.size()) return false;  // clean EOF
  if (bytes_.size() - off_ < kPcapRecordHeaderBytes) {
    fail("truncated record header (" + std::to_string(bytes_.size() - off_) +
             " of 16 bytes)",
         off_);
  }
  const std::uint8_t* h = bytes_.data() + off_;
  const std::uint32_t ts_sec = load32(h + 0, info_.swapped);
  const std::uint32_t ts_frac = load32(h + 4, info_.swapped);
  const std::uint32_t caplen = load32(h + 8, info_.swapped);
  const std::uint32_t orig_len = load32(h + 12, info_.swapped);
  if (caplen > info_.snaplen) {
    fail("caplen " + std::to_string(caplen) + " exceeds snaplen " +
             std::to_string(info_.snaplen),
         off_);
  }
  if (caplen > bytes_.size() - off_ - kPcapRecordHeaderBytes) {
    fail("record of caplen " + std::to_string(caplen) +
             " straddles end of capture",
         off_);
  }
  out.data = h + kPcapRecordHeaderBytes;
  out.caplen = caplen;
  out.orig_len = orig_len;
  out.ts_ns = static_cast<std::uint64_t>(ts_sec) * 1'000'000'000ull +
              (info_.nanos ? ts_frac : static_cast<std::uint64_t>(ts_frac) * 1000ull);
  off_ += kPcapRecordHeaderBytes + caplen;
  return true;
}

void write_pcap(const std::string& path, const trace::Trace& trace, bool nanos) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kPcapGlobalHeaderBytes +
                trace.size() * (kPcapRecordHeaderBytes + kFrameHeaderBytes));

  auto push32 = [&bytes](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };
  auto push16 = [&bytes](std::uint16_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };

  push32(nanos ? kPcapMagicNanos : kPcapMagicMicros);
  push16(2);   // version major
  push16(4);   // version minor
  push32(0);   // thiszone
  push32(0);   // sigfigs
  push32(65535);  // snaplen
  push32(kPcapLinktypeEthernet);

  for (const auto& rec : trace) {
    const std::uint64_t div = nanos ? 1'000'000'000ull : 1'000'000ull;
    const std::uint64_t frac =
        nanos ? rec.ts_ns % div : (rec.ts_ns / 1000ull) % div;
    push32(static_cast<std::uint32_t>(rec.ts_ns / 1'000'000'000ull));
    push32(static_cast<std::uint32_t>(frac));
    push32(kFrameHeaderBytes);   // caplen: headers only
    push32(rec.wire_bytes);      // orig_len: full on-wire size
    std::uint8_t frame[kFrameHeaderBytes];
    write_frame(rec, frame);
    bytes.insert(bytes.end(), frame, frame + kFrameHeaderBytes);
  }

  if (!io::atomic_write_file(path, bytes)) {
    throw std::runtime_error("write_pcap: atomic write failed for " + path);
  }
}

}  // namespace nitro::ingest
