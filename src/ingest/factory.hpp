// Backend construction from a command-line spec string.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ingest/backend.hpp"
#include "trace/packet_record.hpp"

namespace nitro::ingest {

struct BackendOptions {
  std::uint32_t replay_loop = 1;  // --replay-loop
  bool paced = false;             // --paced (file replay only)
};

/// Build a backend from `spec`:
///   "synth"      — the in-process trace, zero parse cost (baseline)
///   "shim"       — burst-RX shim: producer thread + hugepage frames
///   "pcap:FILE"  — mmap'd replay of FILE (pcap or NTR1, by magic)
///   "file:FILE"  — alias of pcap:
/// `trace` backs the synth and shim backends (borrowed — keep it alive);
/// file replay ignores it.  Throws std::runtime_error on an unknown spec
/// or an unreadable/malformed file.
std::unique_ptr<IngestBackend> make_backend(const std::string& spec,
                                            const trace::Trace& trace,
                                            const BackendOptions& opts = {});

}  // namespace nitro::ingest
