// On-wire frame codec for the ingest layer.
//
// The encode side mirrors switchsim::make_raw byte-for-byte (Ethernet
// with flow-derived MACs, IPv4, L4 ports — 42 header bytes) so frames a
// backend fabricates from trace records decode to the same FlowKey the
// synthetic path produces; the decode side works on borrowed pointers
// into an mmap'd capture or a frame pool, copying nothing but the
// 13-byte key it extracts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/flow_key.hpp"
#include "trace/packet_record.hpp"

namespace nitro::ingest {

/// Bytes write_frame() emits (Eth 14 + IPv4 20 + L4 8).
constexpr std::size_t kFrameHeaderBytes = 42;

/// Serialize a trace record's headers into `out` (at least
/// kFrameHeaderBytes writable).  Same layout as switchsim::make_raw.
void write_frame(const trace::PacketRecord& rec, std::uint8_t* out) noexcept;

/// Miniflow extraction straight off borrowed frame bytes: parse
/// Ethernet/IPv4/L4 into `key`.  Returns false (key untouched) for
/// non-IPv4 EtherTypes, non-v4 IP versions, or frames shorter than the
/// 42 header bytes.  Never reads past `len`.
bool decode_frame(const std::uint8_t* data, std::size_t len, FlowKey& key) noexcept;

}  // namespace nitro::ingest
