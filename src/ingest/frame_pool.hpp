// Hugepage-backed packet frame pool (the shim's UMEM analogue).
//
// One contiguous anonymous mapping sliced into fixed-size frames, with a
// three-rung backing ladder tried in order:
//   1. MAP_HUGETLB        — explicit 2MB hugetlbfs pages (needs a
//                           configured hugepage reservation)
//   2. madvise(HUGEPAGE)  — transparent huge pages on a plain mapping
//   3. plain pages        — always works
// Each rung degrades gracefully to the next; backing() reports which one
// took so benches can attribute their numbers.
#pragma once

#include <cstdint>
#include <string>

namespace nitro::ingest {

class FramePool {
 public:
  /// Allocates `frame_count` frames of `frame_size` bytes each
  /// (frame_size must be a power of two; 2048 mirrors AF_XDP's default
  /// frame).  Throws std::runtime_error when even the plain-page rung
  /// fails.
  FramePool(std::size_t frame_count, std::size_t frame_size = 2048);
  ~FramePool();

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  std::uint8_t* frame(std::size_t idx) noexcept {
    return static_cast<std::uint8_t*>(base_) + idx * frame_size_;
  }
  const std::uint8_t* frame(std::size_t idx) const noexcept {
    return static_cast<const std::uint8_t*>(base_) + idx * frame_size_;
  }

  std::size_t frame_count() const noexcept { return frame_count_; }
  std::size_t frame_size() const noexcept { return frame_size_; }

  /// "hugetlb" | "thp" | "pages" — the rung that actually backed the pool.
  const char* backing() const noexcept { return backing_; }

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t frame_count_ = 0;
  std::size_t frame_size_ = 0;
  const char* backing_ = "pages";
};

}  // namespace nitro::ingest
