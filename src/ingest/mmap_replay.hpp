// Zero-copy trace replay off an mmap'd capture file.
//
// Accepts both capture formats this repository knows — libpcap (either
// endianness, µs or ns timestamps) and the native NTR1 record format —
// detected by magic.  Record and frame bytes are used in place from the
// mapping (MmapFile: MAP_POPULATE + madvise(SEQUENTIAL)); the only
// per-packet byte movement is the 13-byte FlowKey the L2/L3/L4 decode
// extracts.  Optional looping (--replay-loop) re-walks the mapping N
// times, and paced mode replays at the trace's own timestamp spacing
// instead of as-fast-as-possible.
#pragma once

#include <cstdint>
#include <string>

#include "ingest/backend.hpp"
#include "ingest/mmap_file.hpp"
#include "ingest/pcap.hpp"

namespace nitro::ingest {

struct ReplayOptions {
  /// Walk the capture this many times (0 is treated as 1).
  std::uint32_t loop = 1;
  /// Sleep between bursts so delivery tracks the capture's own timestamp
  /// spacing (first packet = time zero).  Off = as fast as possible.
  bool paced = false;
};

class MmapReplayBackend final : public IngestBackend {
 public:
  /// Maps and validates `path`.  Throws std::runtime_error on open/map
  /// failure, unknown magic, or a malformed capture (the whole file is
  /// scanned once up front, so corruption surfaces at construction
  /// rather than mid-replay).
  explicit MmapReplayBackend(const std::string& path, ReplayOptions opts = {});

  std::size_t next_burst(PacketView* out, std::size_t max) override;
  const char* name() const noexcept override {
    return format_ == Format::kPcap ? "pcap" : "ntr";
  }
  std::uint64_t size_hint() const noexcept override {
    return records_per_pass_ * loops_;
  }
  /// The mapping already streams through cache sequentially; keep only a
  /// few counter-line prefetches in flight so the hints don't compete
  /// with the stream for fill buffers.
  std::uint32_t preferred_prefetch_window() const noexcept override { return 4; }
  std::uint64_t parse_errors() const noexcept override { return parse_errors_; }

 private:
  enum class Format { kPcap, kNtr };

  bool fill_one(PacketView& out);   // false = current pass exhausted
  void rewind_pass();
  void pace(std::uint64_t ts_ns);

  MmapFile map_;
  Format format_ = Format::kPcap;
  PcapCursor pcap_cursor_;          // valid only for kPcap
  std::size_t ntr_off_ = 0;         // valid only for kNtr
  std::uint64_t ntr_remaining_ = 0;
  std::uint64_t records_per_pass_ = 0;
  std::uint64_t ntr_count_ = 0;
  std::uint32_t loops_ = 1;
  std::uint32_t loops_done_ = 0;
  std::uint64_t parse_errors_ = 0;
  bool paced_ = false;
  std::uint64_t first_ts_ns_ = 0;
  bool have_first_ts_ = false;
  std::uint64_t pace_start_steady_ns_ = 0;
};

}  // namespace nitro::ingest
