#include "ingest/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace nitro::ingest {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("mmap ingest: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("mmap ingest: fstat failed for " + path + ": " +
                             std::strerror(err));
  }
  if (st.st_size == 0) {
    ::close(fd);
    throw std::runtime_error("mmap ingest: empty file " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  // MAP_POPULATE is best-effort on some kernels/filesystems; if the
  // populated mapping is refused, fall back to a lazy one — replay then
  // faults pages in on first touch, still correct.
  addr_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
  if (addr_ == MAP_FAILED) {
    addr_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  const int map_err = errno;
  ::close(fd);
  if (addr_ == MAP_FAILED) {
    addr_ = nullptr;
    throw std::runtime_error("mmap ingest: mmap failed for " + path + ": " +
                             std::strerror(map_err));
  }
  // Advisory: sequential one-pass read.  Failure is harmless.
  ::madvise(addr_, size_, MADV_SEQUENTIAL);
  ::madvise(addr_, size_, MADV_WILLNEED);
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace nitro::ingest
