#include "ingest/shim.hpp"

#include "common/backoff.hpp"
#include "ingest/frame.hpp"

namespace nitro::ingest {

BurstRxShim::BurstRxShim(const trace::Trace& trace, ShimOptions opts)
    : trace_(trace),
      loops_(opts.loop == 0 ? 1 : opts.loop),
      pool_(opts.frames, opts.frame_size),
      rx_ring_(opts.ring_depth),
      free_ring_(opts.frames + 1) {
  // Seed the free ring with every frame (the producer thread hasn't
  // started yet, so this single-threaded fill is safe; thread creation
  // below publishes it).
  for (std::uint32_t i = 0; i < pool_.frame_count(); ++i) {
    free_ring_.try_push(i);
  }
  borrowed_.reserve(pool_.frame_count());
  producer_ = std::thread([this] { produce(); });
}

BurstRxShim::~BurstRxShim() {
  stop_.store(true, std::memory_order_release);
  if (producer_.joinable()) producer_.join();
}

void BurstRxShim::produce() {
  BoundedBackoff backoff;
  for (std::uint32_t pass = 0; pass < loops_; ++pass) {
    for (const auto& rec : trace_) {
      // Claim a free frame (waits for the consumer to return some when
      // the pool is exhausted — the "NIC" has nowhere to DMA into).
      std::uint32_t idx;
      backoff.reset();
      while (!free_ring_.try_pop(idx)) {
        if (stop_.load(std::memory_order_acquire)) return;
        backoff.wait();
      }
      write_frame(rec, pool_.frame(idx));
      Descriptor d;
      d.frame = idx;
      d.frame_len = static_cast<std::uint16_t>(kFrameHeaderBytes);
      d.wire_bytes = rec.wire_bytes;
      d.ts_ns = rec.ts_ns;
      backoff.reset();
      while (!rx_ring_.try_push(d)) {
        if (stop_.load(std::memory_order_acquire)) return;
        backoff.wait();
      }
    }
  }
  producer_done_.store(true, std::memory_order_release);
}

std::size_t BurstRxShim::next_burst(PacketView* out, std::size_t max) {
  // Descriptor-borrowing contract: the frames handed out last time are
  // only now known to be done with — recycle them first so the producer
  // can refill.
  for (const std::uint32_t idx : borrowed_) {
    // Cannot fail: the free ring is sized for every frame in the pool.
    free_ring_.try_push(idx);
  }
  borrowed_.clear();

  if (descs_.size() < max) descs_.resize(max);
  BoundedBackoff backoff;
  for (;;) {
    std::size_t got = rx_ring_.try_pop_bulk(descs_.data(), max);
    if (got == 0) {
      if (producer_done_.load(std::memory_order_acquire)) {
        // The done flag was set after the producer's last push; one more
        // pop observes anything that landed between our miss and the flag.
        got = rx_ring_.try_pop_bulk(descs_.data(), max);
        if (got == 0) return 0;
      } else {
        backoff.wait();
        continue;
      }
    }

    std::size_t n = 0;
    for (std::size_t i = 0; i < got; ++i) {
      const Descriptor& d = descs_[i];
      const std::uint8_t* frame = pool_.frame(d.frame);
      borrowed_.push_back(d.frame);  // returned on the next call either way
      if (!decode_frame(frame, d.frame_len, out[n].key)) {
        ++parse_errors_;
        continue;
      }
      out[n].wire_bytes = d.wire_bytes;
      out[n].ts_ns = d.ts_ns;
      out[n].frame = frame;
      out[n].frame_len = d.frame_len;
      ++n;
    }
    // 0 only when every popped frame failed decode — keep polling rather
    // than let the caller mistake it for end-of-stream.
    if (n > 0) return n;
  }
}

}  // namespace nitro::ingest
