#include "ingest/frame.hpp"

namespace nitro::ingest {

namespace {

inline void put16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void put32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline std::uint16_t get16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t get32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

void write_frame(const trace::PacketRecord& rec, std::uint8_t* h) noexcept {
  // Ethernet: MACs derived from the flow key (keeps EMC keys distinct per
  // flow, as the paper does by rewriting MACs), EtherType IPv4.
  put32(h + 0, rec.key.dst_ip);
  put16(h + 4, rec.key.dst_port);
  put32(h + 6, rec.key.src_ip);
  put16(h + 10, rec.key.src_port);
  put16(h + 12, 0x0800);
  // IPv4.
  h[14] = 0x45;
  h[15] = 0;
  put16(h + 16, static_cast<std::uint16_t>(rec.wire_bytes - 14));
  put16(h + 18, 0);
  put16(h + 20, 0x4000);  // DF
  h[22] = 64;             // TTL
  h[23] = rec.key.proto;
  put16(h + 24, 0);  // checksum (not validated by the fast path)
  put32(h + 26, rec.key.src_ip);
  put32(h + 30, rec.key.dst_ip);
  // L4 ports.
  put16(h + 34, rec.key.src_port);
  put16(h + 36, rec.key.dst_port);
  put32(h + 38, 0);  // seq / len+csum
}

bool decode_frame(const std::uint8_t* data, std::size_t len, FlowKey& key) noexcept {
  if (len < kFrameHeaderBytes) return false;
  if (get16(data + 12) != 0x0800) return false;  // not IPv4
  if ((data[14] >> 4) != 4) return false;
  key.proto = data[23];
  key.src_ip = get32(data + 26);
  key.dst_ip = get32(data + 30);
  key.src_port = get16(data + 34);
  key.dst_port = get16(data + 36);
  return true;
}

}  // namespace nitro::ingest
