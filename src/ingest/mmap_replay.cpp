#include "ingest/mmap_replay.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "ingest/frame.hpp"

namespace nitro::ingest {

namespace {

constexpr std::uint32_t kNtrMagic = 0x3152544eu;  // "NTR1"
constexpr std::size_t kNtrHeaderBytes = 4 + 8;
constexpr std::size_t kNtrRecordBytes = 13 + 2 + 8;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MmapReplayBackend::MmapReplayBackend(const std::string& path, ReplayOptions opts)
    : map_(path),
      pcap_cursor_([&]() -> std::span<const std::uint8_t> {
        // Format sniff happens before the cursor member is built, so feed
        // the cursor a minimal valid header when the file is NTR1 (the
        // cursor is never consulted for that format).
        static constexpr std::uint8_t kStub[kPcapGlobalHeaderBytes] = {
            0xd4, 0xc3, 0xb2, 0xa1, 2, 0, 4, 0, 0, 0, 0, 0,
            0,    0,    0,    0,    0xff, 0xff, 0, 0, 1, 0, 0, 0};
        const auto bytes = map_.bytes();
        std::uint32_t magic = 0;
        if (bytes.size() >= 4) std::memcpy(&magic, bytes.data(), sizeof magic);
        return magic == kNtrMagic ? std::span<const std::uint8_t>(kStub) : bytes;
      }()),
      loops_(opts.loop == 0 ? 1 : opts.loop),
      paced_(opts.paced) {
  const auto bytes = map_.bytes();
  std::uint32_t magic = 0;
  if (bytes.size() >= 4) std::memcpy(&magic, bytes.data(), sizeof magic);

  if (magic == kNtrMagic) {
    format_ = Format::kNtr;
    if (bytes.size() < kNtrHeaderBytes) {
      throw std::runtime_error("ntr ingest: truncated header in " + path);
    }
    std::memcpy(&ntr_count_, bytes.data() + 4, sizeof ntr_count_);
    const std::uint64_t need =
        kNtrHeaderBytes + ntr_count_ * static_cast<std::uint64_t>(kNtrRecordBytes);
    if (bytes.size() < need) {
      throw std::runtime_error("ntr ingest: truncated file " + path + " (" +
                               std::to_string(bytes.size()) + " of " +
                               std::to_string(need) + " bytes)");
    }
    records_per_pass_ = ntr_count_;
  } else {
    format_ = Format::kPcap;
    // Validation pass: walk every record once so malformed captures fail
    // at construction; also yields the exact per-pass count for epoch
    // splitting.  The mapping is warm afterwards (a feature).
    PcapCursor scan(bytes);
    PcapRecord rec;
    std::uint64_t n = 0;
    while (scan.next(rec)) ++n;
    records_per_pass_ = n;
  }
  rewind_pass();
}

void MmapReplayBackend::rewind_pass() {
  if (format_ == Format::kPcap) {
    pcap_cursor_.rewind();
  } else {
    ntr_off_ = kNtrHeaderBytes;
    ntr_remaining_ = ntr_count_;
  }
}

bool MmapReplayBackend::fill_one(PacketView& out) {
  if (format_ == Format::kNtr) {
    if (ntr_remaining_ == 0) return false;
    const std::uint8_t* rec = map_.bytes().data() + ntr_off_;
    std::memcpy(&out.key, rec, 13);
    std::memcpy(&out.wire_bytes, rec + 13, 2);
    std::memcpy(&out.ts_ns, rec + 15, 8);
    // NTR1 records carry no on-wire frame bytes, only the decoded tuple.
    out.frame = nullptr;
    out.frame_len = 0;
    ntr_off_ += kNtrRecordBytes;
    --ntr_remaining_;
    return true;
  }
  PcapRecord rec;
  while (pcap_cursor_.next(rec)) {
    if (!decode_frame(rec.data, rec.caplen, out.key)) {
      ++parse_errors_;  // non-IPv4 or short capture slice: skip, keep going
      continue;
    }
    out.wire_bytes = static_cast<std::uint16_t>(
        rec.orig_len < 0xffffu ? rec.orig_len : 0xffffu);
    out.ts_ns = rec.ts_ns;
    out.frame = rec.data;
    out.frame_len = rec.caplen;
    return true;
  }
  return false;
}

void MmapReplayBackend::pace(std::uint64_t ts_ns) {
  if (!have_first_ts_) {
    have_first_ts_ = true;
    first_ts_ns_ = ts_ns;
    pace_start_steady_ns_ = steady_ns();
    return;
  }
  const std::uint64_t target = ts_ns - first_ts_ns_;
  for (;;) {
    const std::uint64_t elapsed = steady_ns() - pace_start_steady_ns_;
    if (elapsed >= target) return;
    const std::uint64_t left = target - elapsed;
    if (left > 1'000'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 500'000));
    } else {
      std::this_thread::yield();  // sub-ms remainder: spin out
    }
  }
}

std::size_t MmapReplayBackend::next_burst(PacketView* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    if (!fill_one(out[n])) {
      ++loops_done_;
      if (loops_done_ >= loops_) break;
      rewind_pass();
      continue;
    }
    ++n;
  }
  if (n > 0 && paced_) pace(out[n - 1].ts_ns);
  return n;
}

}  // namespace nitro::ingest
