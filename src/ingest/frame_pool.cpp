#include "ingest/frame_pool.hpp"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace nitro::ingest {

namespace {

constexpr std::size_t kHugePageBytes = 2u << 20;

inline std::size_t round_up(std::size_t v, std::size_t align) noexcept {
  return (v + align - 1) / align * align;
}

}  // namespace

FramePool::FramePool(std::size_t frame_count, std::size_t frame_size)
    : frame_count_(frame_count), frame_size_(frame_size) {
  if (frame_count == 0 || frame_size == 0 ||
      (frame_size & (frame_size - 1)) != 0) {
    throw std::runtime_error("FramePool: frame_size must be a power of two "
                             "and counts non-zero");
  }
  bytes_ = frame_count * frame_size;

  // Rung 1: explicit hugetlb pages (size must be hugepage-rounded).
#if defined(MAP_HUGETLB)
  {
    const std::size_t huge_bytes = round_up(bytes_, kHugePageBytes);
    void* p = ::mmap(nullptr, huge_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      base_ = p;
      bytes_ = huge_bytes;
      backing_ = "hugetlb";
      return;
    }
  }
#endif

  // Rung 2/3: plain anonymous mapping, transparent huge pages if the
  // kernel grants them.
  void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    throw std::runtime_error(std::string("FramePool: mmap failed: ") +
                             std::strerror(errno));
  }
  base_ = p;
#if defined(MADV_HUGEPAGE)
  backing_ = ::madvise(base_, bytes_, MADV_HUGEPAGE) == 0 ? "thp" : "pages";
#else
  backing_ = "pages";
#endif
}

FramePool::~FramePool() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

}  // namespace nitro::ingest
