// The in-memory synthetic generator wrapped as an ingest backend.
//
// Baseline backend: delivers PacketViews straight from a materialized
// trace::Trace with no frame bytes and no parse cost.  Keeps every
// existing workload/scenario meaningful under the backend API, and is
// the reference stream the equivalence suite compares the zero-copy
// backends against.
#pragma once

#include <cstdint>

#include "ingest/backend.hpp"
#include "trace/packet_record.hpp"

namespace nitro::ingest {

class SynthReplayBackend final : public IngestBackend {
 public:
  /// Borrows `trace` (caller keeps it alive for the backend's lifetime).
  explicit SynthReplayBackend(const trace::Trace& trace, std::uint32_t loop = 1)
      : trace_(trace), loops_(loop == 0 ? 1 : loop) {}

  std::size_t next_burst(PacketView* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max) {
      if (pos_ == trace_.size()) {
        if (++loops_done_ >= loops_) break;
        pos_ = 0;
        if (trace_.empty()) break;
      }
      const auto& rec = trace_[pos_++];
      out[n].key = rec.key;
      out[n].wire_bytes = rec.wire_bytes;
      out[n].ts_ns = rec.ts_ns;
      out[n].frame = nullptr;
      out[n].frame_len = 0;
      ++n;
    }
    return n;
  }

  const char* name() const noexcept override { return "synth"; }
  std::uint64_t size_hint() const noexcept override {
    return static_cast<std::uint64_t>(trace_.size()) * loops_;
  }

 private:
  const trace::Trace& trace_;
  std::size_t pos_ = 0;
  std::uint32_t loops_ = 1;
  std::uint32_t loops_done_ = 0;
};

}  // namespace nitro::ingest
