#include "ingest/factory.hpp"

#include <stdexcept>

#include "ingest/mmap_replay.hpp"
#include "ingest/shim.hpp"
#include "ingest/synth_backend.hpp"

namespace nitro::ingest {

std::unique_ptr<IngestBackend> make_backend(const std::string& spec,
                                            const trace::Trace& trace,
                                            const BackendOptions& opts) {
  if (spec == "synth") {
    return std::make_unique<SynthReplayBackend>(trace, opts.replay_loop);
  }
  if (spec == "shim") {
    ShimOptions shim_opts;
    shim_opts.loop = opts.replay_loop;
    return std::make_unique<BurstRxShim>(trace, shim_opts);
  }
  for (const char* prefix : {"pcap:", "file:"}) {
    if (spec.rfind(prefix, 0) == 0) {
      ReplayOptions replay_opts;
      replay_opts.loop = opts.replay_loop;
      replay_opts.paced = opts.paced;
      return std::make_unique<MmapReplayBackend>(spec.substr(5), replay_opts);
    }
  }
  throw std::runtime_error("unknown ingest backend '" + spec +
                           "' (expected synth | shim | pcap:FILE)");
}

}  // namespace nitro::ingest
