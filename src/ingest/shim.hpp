// Burst-RX shim: an AF_XDP/DPDK-shaped RX ring without the NIC.
//
// A producer thread plays the role of the driver/NIC: it claims free
// frames from a hugepage-backed FramePool, serializes trace records into
// them as real Ethernet/IPv4 header bytes (ingest::write_frame), and
// publishes descriptor bursts through an SPSC RX ring.  The consumer
// (IngestLoop's thread) polls descriptors, decodes the headers straight
// out of the frames — paying the same parse cost a real RX path pays —
// and returns the frames to the free ring on its *next* poll, which is
// exactly the descriptor-borrowing contract of a driver RX ring (and of
// IngestBackend::next_burst).  Swapping this for real AF_XDP later only
// replaces the producer.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/spsc_ring.hpp"
#include "ingest/backend.hpp"
#include "ingest/frame_pool.hpp"
#include "trace/packet_record.hpp"

namespace nitro::ingest {

struct ShimOptions {
  std::uint32_t loop = 1;          // replay the trace this many times
  std::size_t frames = 4096;       // frame pool size
  std::size_t frame_size = 2048;   // AF_XDP default frame
  std::size_t ring_depth = 1024;   // RX descriptor ring depth
};

class BurstRxShim final : public IngestBackend {
 public:
  /// Borrows `trace`; the producer thread starts immediately and runs
  /// until the trace (x loop) is fully delivered or the shim is
  /// destroyed.
  explicit BurstRxShim(const trace::Trace& trace, ShimOptions opts = {});
  ~BurstRxShim() override;

  std::size_t next_burst(PacketView* out, std::size_t max) override;
  const char* name() const noexcept override { return "shim"; }
  std::uint64_t size_hint() const noexcept override {
    return static_cast<std::uint64_t>(trace_.size()) * loops_;
  }
  std::uint64_t parse_errors() const noexcept override { return parse_errors_; }

  /// Backing rung the frame pool landed on ("hugetlb" | "thp" | "pages").
  const char* pool_backing() const noexcept { return pool_.backing(); }

 private:
  struct Descriptor {
    std::uint32_t frame = 0;
    std::uint16_t frame_len = 0;
    std::uint16_t wire_bytes = 0;
    std::uint64_t ts_ns = 0;
  };

  void produce();

  const trace::Trace& trace_;
  std::uint32_t loops_;
  FramePool pool_;
  SpscRing<Descriptor> rx_ring_;
  SpscRing<std::uint32_t> free_ring_;  // consumer -> producer frame return
  std::atomic<bool> producer_done_{false};
  std::atomic<bool> stop_{false};
  std::thread producer_;

  // Consumer-side state: frames handed out by the previous next_burst,
  // returned to the free ring at the top of the next one.
  std::vector<std::uint32_t> borrowed_;
  std::vector<Descriptor> descs_;
  std::uint64_t parse_errors_ = 0;
};

}  // namespace nitro::ingest
