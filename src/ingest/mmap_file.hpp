// Read-only whole-file mapping tuned for one-pass trace replay.
//
// MAP_POPULATE pre-faults the whole file at map time (replay never takes
// a page fault on the hot path) and madvise(SEQUENTIAL|WILLNEED) tells
// readahead the access pattern, so the kernel streams pages ahead of the
// cursor and drops them behind it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace nitro::ingest {

class MmapFile {
 public:
  /// Maps `path` read-only.  Throws std::runtime_error when the file
  /// cannot be opened, is empty, or the mapping fails.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<const std::uint8_t> bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace nitro::ingest
