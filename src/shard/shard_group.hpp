// Sharded multi-core data plane: N worker threads, each owning a private
// sketch instance fed through its own SPSC ring.
//
// This is the paper's §6 scaling recipe (one sketch instance per
// forwarding thread, merged at query time) rather than a shared sketch
// with atomic counters: per-core instances keep the per-packet path free
// of cross-core cache-line contention, and the standard mergeability of
// linear sketches recovers a coherent global view at epoch boundaries.
//
// Dispatch is RSS-style: a flow-hash (independent of every sketch row
// hash) picks the shard, so all packets of a flow land on the same worker
// — per-shard heavy-hitter heaps then see whole flows, and the merged
// counters equal a single sketch fed the union stream.
//
// Threading contract (mirrors the NIC-RSS reality it models):
//  * update() is single-dispatcher: one thread fans out to all rings.
//  * update_on_shard() supports pre-partitioned producers — at most one
//    producer thread per shard (each ring stays SPSC).
//  * drain()/instance() are control-plane: call them only while producers
//    are quiescent (epoch boundary).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/flow_key.hpp"
#include "common/hash.hpp"
#include "common/spsc_ring.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::shard {

/// What a producer does when a shard's ring is full.  kBlock (default)
/// spins politely until the worker catches up — lossless, so merged
/// results match a single-instance run.  kDrop sheds the packet and
/// counts it, trading accuracy for a never-stalling forwarding thread
/// (the separate-thread integration's policy).
enum class OverflowPolicy { kBlock, kDrop };

struct ShardOptions {
  std::size_t ring_capacity = 1 << 16;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

/// One queued packet. `count` is the update weight, `ts_ns` feeds the
/// adaptive (AlwaysLineRate) modes.
struct ShardItem {
  FlowKey key;
  std::int64_t count;
  std::uint64_t ts_ns;
};

/// Generic shard fan-out over any instance with
/// `update(const FlowKey&, std::int64_t, std::uint64_t)` — NitroSketch<B>
/// and NitroUnivMon both qualify.
template <typename Instance>
class ShardGroup {
 public:
  /// `make(i)` builds worker i's instance.  Mergeability is the caller's
  /// contract: every instance must share base-sketch seeds and dimensions
  /// (the sketches' own merge() checks enforce it at merge time).
  template <typename Factory>
  ShardGroup(std::uint32_t workers, Factory&& make, ShardOptions opts = {})
      : opts_(opts) {
    if (workers == 0) {
      throw std::invalid_argument("ShardGroup: need at least one worker");
    }
    shards_.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>(make(i), opts_.ring_capacity));
    }
    burst_runs_.resize(workers);
    for (auto& s : shards_) {
      s->worker = std::thread([this, shard = s.get()] { run(*shard); });
    }
  }

  ~ShardGroup() { stop(); }

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// RSS-style shard selection: a keyed mix of the flow digest, salted so
  /// it is independent of every row hash (the digest itself seeds those).
  /// Stable per flow — a flow always lands on the same shard.
  std::uint32_t shard_of(const FlowKey& key) const noexcept {
    return shard_of_digest(flow_digest(key));
  }

  std::uint32_t shard_of_digest(std::uint64_t digest) const noexcept {
    const std::uint64_t h = mix64(digest ^ kShardSalt);
    // Multiply-shift reduction onto [0, workers) — same technique as the
    // row hashes, no modulo on the per-packet path.
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(h) * shards_.size()) >> 64);
  }

  /// Single-dispatcher entry point: hash, then enqueue on the owning
  /// shard's ring.
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    update_on_shard(shard_of(key), key, count, ts_ns);
  }

  /// Pre-partitioned entry point (one producer thread per shard, e.g. a
  /// bench emulating NIC RSS).  The caller must route each key to
  /// shard_of(key) for merged results to equal a single-instance run.
  void update_on_shard(std::uint32_t shard, const FlowKey& key,
                       std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    Shard& s = *shards_[shard];
    s.packets.inc();
    if (s.ring.try_push({key, count, ts_ns})) {
      s.pushed.inc();
      return;
    }
    if (opts_.overflow == OverflowPolicy::kDrop) {
      s.drops.inc();
      return;
    }
    BoundedBackoff backoff;
    while (!s.ring.try_push({key, count, ts_ns})) backoff.wait();
    s.pushed.inc();
  }

  /// Burst dispatch (single-dispatcher): partition the burst by shard,
  /// then enqueue each shard's run with one bulk ring reservation instead
  /// of one release store per packet.  Per-flow shard stickiness and the
  /// per-shard packet order are identical to calling update() per key.
  void update_burst(std::span<const FlowKey> keys, std::int64_t count = 1,
                    std::uint64_t ts_ns = 0) {
    for (auto& run : burst_runs_) run.clear();
    for (const FlowKey& key : keys) {
      burst_runs_[shard_of(key)].push_back({key, count, ts_ns});
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      auto& run = burst_runs_[i];
      if (run.empty()) continue;
      Shard& s = *shards_[i];
      s.packets.inc(run.size());
      std::size_t done = s.ring.try_push_bulk(run.data(), run.size());
      if (done < run.size()) {
        if (opts_.overflow == OverflowPolicy::kDrop) {
          s.drops.inc(run.size() - done);
        } else {
          BoundedBackoff backoff;
          while (done < run.size()) {
            const std::size_t more =
                s.ring.try_push_bulk(run.data() + done, run.size() - done);
            if (more == 0) {
              backoff.wait();
            } else {
              done += more;
              backoff.reset();
            }
          }
        }
      }
      s.pushed.inc(done);
    }
  }

  /// Barrier: returns once every enqueued packet has been applied by its
  /// worker.  Producers must be quiescent (this is the epoch boundary).
  void drain() const {
    for (const auto& s : shards_) {
      const std::uint64_t target = s->pushed.value();
      BoundedBackoff backoff;
      while (s->applied.load(std::memory_order_acquire) < target) backoff.wait();
    }
  }

  /// Control-plane access to worker i's instance.  Only safe after
  /// drain() with producers quiescent; the worker thread itself touches
  /// the instance only while applying ring items.
  Instance& instance(std::uint32_t i) noexcept { return shards_[i]->instance; }
  const Instance& instance(std::uint32_t i) const noexcept {
    return shards_[i]->instance;
  }

  std::uint64_t shard_packets(std::uint32_t i) const noexcept {
    return shards_[i]->packets.value();
  }
  std::uint64_t shard_drops(std::uint32_t i) const noexcept {
    return shards_[i]->drops.value();
  }

  std::uint64_t total_packets() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->packets.value();
    return n;
  }
  std::uint64_t total_drops() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->drops.value();
    return n;
  }

  /// Per-shard packet/drop counters plus a worker-count gauge, registered
  /// under `<prefix>_shard<i>_...` (ISSUE: per-shard telemetry).
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    registry.gauge(prefix + "_workers", "number of shard worker threads")
        .set(static_cast<double>(shards_.size()));
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string base = prefix + "_shard" + std::to_string(i);
      registry.register_external_counter(
          base + "_packets_total", "packets dispatched to this shard",
          shards_[i]->packets);
      registry.register_external_counter(
          base + "_drops_total", "packets shed on ring overflow (kDrop policy)",
          shards_[i]->drops);
    }
  }

  /// Join every worker (drains rings first).  Idempotent; the destructor
  /// calls it.  After stop(), instances stay readable single-threaded.
  void stop() {
    for (auto& s : shards_) {
      if (s->worker.joinable()) {
        s->done.store(true, std::memory_order_release);
        s->worker.join();
      }
    }
  }

 private:
  // Salt for the dispatch hash; any fixed odd constant distinct from the
  // digest seed works.
  static constexpr std::uint64_t kShardSalt = 0x5a4dd15bA7c4e11fULL;

  struct Shard {
    Shard(Instance inst, std::size_t ring_capacity)
        : instance(std::move(inst)), ring(ring_capacity) {}

    Instance instance;
    SpscRing<ShardItem> ring;
    std::thread worker;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> applied{0};  // worker -> control barrier
    telemetry::Counter packets;             // producer writes, control reads
    telemetry::Counter pushed;              // packets minus drops
    telemetry::Counter drops;
  };

  // Items the worker pops per bulk dequeue; matches the pipelines' rx
  // burst so a dispatched burst usually drains in one pop.
  static constexpr std::size_t kWorkerBurst = 32;

  void run(Shard& s) {
    ShardItem items[kWorkerBurst];
    std::vector<FlowKey> keys;
    keys.reserve(kWorkerBurst);
    BoundedBackoff backoff;
    while (!s.done.load(std::memory_order_acquire) || !s.ring.empty_approx()) {
      const std::size_t m = s.ring.try_pop_bulk(items, kWorkerBurst);
      if (m == 0) {
        backoff.wait();
        continue;
      }
      backoff.reset();
      std::size_t i = 0;
      while (i < m) {
        // A run of consecutive items with identical (count, ts) replays
        // through the sketch's burst fast path when it has one; the burst
        // path is update-sequence-equivalent, so results are bit-identical
        // to the per-item loop below.
        std::size_t j = i + 1;
        while (j < m && items[j].count == items[i].count &&
               items[j].ts_ns == items[i].ts_ns) {
          ++j;
        }
        bool bursted = false;
        if constexpr (requires(Instance& inst) {
                        inst.update_burst(std::span<const FlowKey>{},
                                          std::uint64_t{});
                      }) {
          if (items[i].count == 1 && j - i > 1) {
            keys.clear();
            for (std::size_t k = i; k < j; ++k) keys.push_back(items[k].key);
            s.instance.update_burst(
                std::span<const FlowKey>(keys.data(), keys.size()),
                items[i].ts_ns);
            bursted = true;
          }
        }
        if (!bursted) {
          for (std::size_t k = i; k < j; ++k) {
            s.instance.update(items[k].key, items[k].count, items[k].ts_ns);
          }
        }
        // Release pairs with drain()'s acquire: once applied covers a
        // push, the control plane sees every instance write behind it.
        s.applied.fetch_add(j - i, std::memory_order_release);
        i = j;
      }
    }
  }

  ShardOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Dispatcher-local scratch for update_burst(); one run per shard.
  std::vector<std::vector<ShardItem>> burst_runs_;
};

}  // namespace nitro::shard
