// Sharded multi-core data plane: N worker threads, each owning a private
// sketch instance fed through its own SPSC ring.
//
// This is the paper's §6 scaling recipe (one sketch instance per
// forwarding thread, merged at query time) rather than a shared sketch
// with atomic counters: per-core instances keep the per-packet path free
// of cross-core cache-line contention, and the standard mergeability of
// linear sketches recovers a coherent global view at epoch boundaries.
//
// Dispatch is RSS-style: a flow-hash (independent of every sketch row
// hash) picks the shard, so all packets of a flow land on the same worker
// — per-shard heavy-hitter heaps then see whole flows, and the merged
// counters equal a single sketch fed the union stream.
//
// Threading contract (mirrors the NIC-RSS reality it models):
//  * update() is single-dispatcher: one thread fans out to all rings.
//  * update_on_shard() supports pre-partitioned producers — at most one
//    producer thread per shard (each ring stays SPSC).
//  * drain()/instance() are control-plane: call them only while producers
//    are quiescent (epoch boundary).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/flow_key.hpp"
#include "common/hash.hpp"
#include "common/spsc_ring.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::shard {

/// What a producer does when a shard's ring is full.  kBlock (default)
/// spins politely until the worker catches up — lossless, so merged
/// results match a single-instance run.  kDrop sheds the packet and
/// counts it, trading accuracy for a never-stalling forwarding thread
/// (the separate-thread integration's policy).
enum class OverflowPolicy { kBlock, kDrop };

struct ShardOptions {
  std::size_t ring_capacity = 1 << 16;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

/// One queued packet. `count` is the update weight, `ts_ns` feeds the
/// adaptive (AlwaysLineRate) modes.
struct ShardItem {
  FlowKey key;
  std::int64_t count;
  std::uint64_t ts_ns;
};

/// Generic shard fan-out over any instance with
/// `update(const FlowKey&, std::int64_t, std::uint64_t)` — NitroSketch<B>
/// and NitroUnivMon both qualify.
template <typename Instance>
class ShardGroup {
 public:
  /// `make(i)` builds worker i's instance.  Mergeability is the caller's
  /// contract: every instance must share base-sketch seeds and dimensions
  /// (the sketches' own merge() checks enforce it at merge time).
  template <typename Factory>
  ShardGroup(std::uint32_t workers, Factory&& make, ShardOptions opts = {})
      : opts_(opts) {
    if (workers == 0) {
      throw std::invalid_argument("ShardGroup: need at least one worker");
    }
    shards_.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>(make(i), opts_.ring_capacity));
    }
    for (auto& s : shards_) {
      s->worker = std::thread([this, shard = s.get()] { run(*shard); });
    }
  }

  ~ShardGroup() { stop(); }

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// RSS-style shard selection: a keyed mix of the flow digest, salted so
  /// it is independent of every row hash (the digest itself seeds those).
  /// Stable per flow — a flow always lands on the same shard.
  std::uint32_t shard_of(const FlowKey& key) const noexcept {
    return shard_of_digest(flow_digest(key));
  }

  std::uint32_t shard_of_digest(std::uint64_t digest) const noexcept {
    const std::uint64_t h = mix64(digest ^ kShardSalt);
    // Multiply-shift reduction onto [0, workers) — same technique as the
    // row hashes, no modulo on the per-packet path.
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(h) * shards_.size()) >> 64);
  }

  /// Single-dispatcher entry point: hash, then enqueue on the owning
  /// shard's ring.
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    update_on_shard(shard_of(key), key, count, ts_ns);
  }

  /// Pre-partitioned entry point (one producer thread per shard, e.g. a
  /// bench emulating NIC RSS).  The caller must route each key to
  /// shard_of(key) for merged results to equal a single-instance run.
  void update_on_shard(std::uint32_t shard, const FlowKey& key,
                       std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    Shard& s = *shards_[shard];
    s.packets.inc();
    if (s.ring.try_push({key, count, ts_ns})) {
      s.pushed.inc();
      return;
    }
    if (opts_.overflow == OverflowPolicy::kDrop) {
      s.drops.inc();
      return;
    }
    BoundedBackoff backoff;
    while (!s.ring.try_push({key, count, ts_ns})) backoff.wait();
    s.pushed.inc();
  }

  /// Barrier: returns once every enqueued packet has been applied by its
  /// worker.  Producers must be quiescent (this is the epoch boundary).
  void drain() const {
    for (const auto& s : shards_) {
      const std::uint64_t target = s->pushed.value();
      BoundedBackoff backoff;
      while (s->applied.load(std::memory_order_acquire) < target) backoff.wait();
    }
  }

  /// Control-plane access to worker i's instance.  Only safe after
  /// drain() with producers quiescent; the worker thread itself touches
  /// the instance only while applying ring items.
  Instance& instance(std::uint32_t i) noexcept { return shards_[i]->instance; }
  const Instance& instance(std::uint32_t i) const noexcept {
    return shards_[i]->instance;
  }

  std::uint64_t shard_packets(std::uint32_t i) const noexcept {
    return shards_[i]->packets.value();
  }
  std::uint64_t shard_drops(std::uint32_t i) const noexcept {
    return shards_[i]->drops.value();
  }

  std::uint64_t total_packets() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->packets.value();
    return n;
  }
  std::uint64_t total_drops() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->drops.value();
    return n;
  }

  /// Per-shard packet/drop counters plus a worker-count gauge, registered
  /// under `<prefix>_shard<i>_...` (ISSUE: per-shard telemetry).
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    registry.gauge(prefix + "_workers", "number of shard worker threads")
        .set(static_cast<double>(shards_.size()));
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string base = prefix + "_shard" + std::to_string(i);
      registry.register_external_counter(
          base + "_packets_total", "packets dispatched to this shard",
          shards_[i]->packets);
      registry.register_external_counter(
          base + "_drops_total", "packets shed on ring overflow (kDrop policy)",
          shards_[i]->drops);
    }
  }

  /// Join every worker (drains rings first).  Idempotent; the destructor
  /// calls it.  After stop(), instances stay readable single-threaded.
  void stop() {
    for (auto& s : shards_) {
      if (s->worker.joinable()) {
        s->done.store(true, std::memory_order_release);
        s->worker.join();
      }
    }
  }

 private:
  // Salt for the dispatch hash; any fixed odd constant distinct from the
  // digest seed works.
  static constexpr std::uint64_t kShardSalt = 0x5a4dd15bA7c4e11fULL;

  struct Shard {
    Shard(Instance inst, std::size_t ring_capacity)
        : instance(std::move(inst)), ring(ring_capacity) {}

    Instance instance;
    SpscRing<ShardItem> ring;
    std::thread worker;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> applied{0};  // worker -> control barrier
    telemetry::Counter packets;             // producer writes, control reads
    telemetry::Counter pushed;              // packets minus drops
    telemetry::Counter drops;
  };

  void run(Shard& s) {
    ShardItem item;
    BoundedBackoff backoff;
    while (!s.done.load(std::memory_order_acquire) || !s.ring.empty_approx()) {
      if (!s.ring.try_pop(item)) {
        backoff.wait();
        continue;
      }
      backoff.reset();
      s.instance.update(item.key, item.count, item.ts_ns);
      // Release pairs with drain()'s acquire: once applied covers a push,
      // the control plane sees every instance write behind it.
      s.applied.fetch_add(1, std::memory_order_release);
    }
  }

  ShardOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nitro::shard
