// Sharded multi-core data plane: N worker threads, each owning a private
// sketch instance fed through its own SPSC ring.
//
// This is the paper's §6 scaling recipe (one sketch instance per
// forwarding thread, merged at query time) rather than a shared sketch
// with atomic counters: per-core instances keep the per-packet path free
// of cross-core cache-line contention, and the standard mergeability of
// linear sketches recovers a coherent global view at epoch boundaries.
//
// Dispatch is RSS-style: a flow-hash (independent of every sketch row
// hash) picks the shard, so all packets of a flow land on the same worker
// — per-shard heavy-hitter heaps then see whole flows, and the merged
// counters equal a single sketch fed the union stream.
//
// Threading contract (mirrors the NIC-RSS reality it models):
//  * update() is single-dispatcher: one thread fans out to all rings.
//  * update_on_shard() supports pre-partitioned producers — at most one
//    producer thread per shard (each ring stays SPSC).
//  * drain()/instance() are control-plane: call them only while producers
//    are quiescent (epoch boundary).
//
// Supervision (DESIGN.md §10): each worker publishes a heartbeat per poll
// iteration; drain() doubles as a watchdog — a shard whose worker makes no
// progress for drain_timeout_ns (wedged, or killed by fault injection) is
// *quarantined*: its producer paths start shedding, its worker (if merely
// stalled) is told to abort without touching its instance again, and the
// epoch completes from the surviving shards.  Quarantine is one-way within
// a group's lifetime — the safe recovery point for a lost core is a
// process restart from the last checkpoint, not an in-place resurrection.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/flow_key.hpp"
#include "common/hash.hpp"
#include "common/spsc_ring.hpp"
#include "fault/fault.hpp"
#include "shard/admission.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace nitro::shard {

/// What a producer does when a shard's ring is full.  kBlock (default)
/// spins politely until the worker catches up — lossless, so merged
/// results match a single-instance run.  kDrop sheds the packet and
/// counts it, trading accuracy for a never-stalling forwarding thread
/// (the separate-thread integration's policy).  kDegrade first steps the
/// overloaded shard's sampling probability down (halving per step, which
/// halves the worker's counter work at a ~sqrt(2)× stddev cost per
/// Theorem 1) and only sheds once the ring stays full through a bounded
/// retry window — accuracy is *spent*, measurably, before any packet is
/// silently lost.
enum class OverflowPolicy { kBlock, kDrop, kDegrade };

struct ShardOptions {
  std::size_t ring_capacity = 1 << 16;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Watchdog: drain() quarantines a shard after this long with no
  /// forward progress on its applied counter.
  std::uint64_t drain_timeout_ns = 5'000'000'000ULL;
  /// kDegrade stops escalating past this level (p floor = base·2^-steps).
  std::uint32_t max_degrade_steps = 7;
  /// Churn admission valve (admission.hpp): when enabled, each shard
  /// watches its arrival stream's new-flow fraction and a tripped window
  /// escalates the same degrade ladder ring overflow does — the defense
  /// against unique-flow storms fires *before* the ring fills.
  ValveOptions valve;
};

/// One queued packet. `count` is the update weight, `ts_ns` feeds the
/// adaptive (AlwaysLineRate) modes.
struct ShardItem {
  FlowKey key;
  std::int64_t count;
  std::uint64_t ts_ns;
};

/// Generic shard fan-out over any instance with
/// `update(const FlowKey&, std::int64_t, std::uint64_t)` — NitroSketch<B>
/// and NitroUnivMon both qualify.
template <typename Instance>
class ShardGroup {
 public:
  /// `make(i)` builds worker i's instance.  Mergeability is the caller's
  /// contract: every instance must share base-sketch seeds and dimensions
  /// (the sketches' own merge() checks enforce it at merge time).
  template <typename Factory>
  ShardGroup(std::uint32_t workers, Factory&& make, ShardOptions opts = {})
      : opts_(opts) {
    if (workers == 0) {
      throw std::invalid_argument("ShardGroup: need at least one worker");
    }
    shards_.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>(make(i), opts_));
      shards_.back()->index = i;
      shards_.back()->ring.set_fault_lane(i);
    }
    burst_runs_.resize(workers);
    for (auto& s : shards_) {
      s->worker = std::thread([this, shard = s.get()] { run(*shard); });
    }
  }

  ~ShardGroup() { stop(); }

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// RSS-style shard selection: a keyed mix of the flow digest, salted so
  /// it is independent of every row hash (the digest itself seeds those).
  /// Stable per flow — a flow always lands on the same shard.
  std::uint32_t shard_of(const FlowKey& key) const noexcept {
    return shard_of_digest(flow_digest(key));
  }

  std::uint32_t shard_of_digest(std::uint64_t digest) const noexcept {
    const std::uint64_t h = mix64(digest ^ kShardSalt);
    // Multiply-shift reduction onto [0, workers) — same technique as the
    // row hashes, no modulo on the per-packet path.
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(h) * shards_.size()) >> 64);
  }

  /// Single-dispatcher entry point: hash, then enqueue on the owning
  /// shard's ring.
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    update_on_shard(shard_of(key), key, count, ts_ns);
  }

  /// Pre-partitioned entry point (one producer thread per shard, e.g. a
  /// bench emulating NIC RSS).  The caller must route each key to
  /// shard_of(key) for merged results to equal a single-instance run.
  void update_on_shard(std::uint32_t shard, const FlowKey& key,
                       std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    Shard& s = *shards_[shard];
    s.packets.inc();
    if (halted(s)) {
      s.drops.inc();
      return;
    }
    if (s.valve.enabled() && s.valve.on_packet(flow_digest(key))) {
      valve_trip(s);
    }
    if (s.ring.try_push({key, count, ts_ns})) {
      s.pushed.inc();
      return;
    }
    switch (opts_.overflow) {
      case OverflowPolicy::kDrop:
        s.drops.inc();
        return;
      case OverflowPolicy::kDegrade: {
        escalate_degradation(s);
        BoundedBackoff backoff;
        for (std::uint32_t attempt = 0; attempt < kDegradeRetries; ++attempt) {
          if (halted(s)) break;
          if (s.ring.try_push({key, count, ts_ns})) {
            s.pushed.inc();
            return;
          }
          backoff.wait();
        }
        s.drops.inc();
        return;
      }
      case OverflowPolicy::kBlock: {
        // Bounded-liveness blocking: never spin on a dead or quarantined
        // worker — the push that will never drain becomes a counted drop
        // instead of a wedged forwarding thread.
        BoundedBackoff backoff;
        while (!s.ring.try_push({key, count, ts_ns})) {
          if (halted(s)) {
            s.drops.inc();
            return;
          }
          backoff.wait();
        }
        s.pushed.inc();
        return;
      }
    }
  }

  /// Burst dispatch (single-dispatcher): partition the burst by shard,
  /// then enqueue each shard's run with one bulk ring reservation instead
  /// of one release store per packet.  Per-flow shard stickiness and the
  /// per-shard packet order are identical to calling update() per key.
  /// Accounting invariant (all policies): packets == pushed + drops.
  void update_burst(std::span<const FlowKey> keys, std::int64_t count = 1,
                    std::uint64_t ts_ns = 0) {
    for (auto& run : burst_runs_) run.clear();
    for (const FlowKey& key : keys) {
      burst_runs_[shard_of(key)].push_back({key, count, ts_ns});
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      auto& run = burst_runs_[i];
      if (run.empty()) continue;
      Shard& s = *shards_[i];
      s.packets.inc(run.size());
      if (halted(s)) {
        s.drops.inc(run.size());
        continue;
      }
      if (s.valve.enabled()) {
        for (const ShardItem& item : run) {
          if (s.valve.on_packet(flow_digest(item.key))) valve_trip(s);
        }
      }
      std::size_t done = s.ring.try_push_bulk(run.data(), run.size());
      if (done < run.size()) {
        switch (opts_.overflow) {
          case OverflowPolicy::kDrop:
            s.drops.inc(run.size() - done);
            break;
          case OverflowPolicy::kDegrade: {
            escalate_degradation(s);
            BoundedBackoff backoff;
            std::uint32_t attempts = 0;
            while (done < run.size() && attempts < kDegradeRetries && !halted(s)) {
              const std::size_t more =
                  s.ring.try_push_bulk(run.data() + done, run.size() - done);
              if (more == 0) {
                backoff.wait();
                ++attempts;
              } else {
                done += more;
                backoff.reset();
              }
            }
            if (done < run.size()) s.drops.inc(run.size() - done);
            break;
          }
          case OverflowPolicy::kBlock: {
            BoundedBackoff backoff;
            while (done < run.size()) {
              if (halted(s)) {
                s.drops.inc(run.size() - done);
                break;
              }
              const std::size_t more =
                  s.ring.try_push_bulk(run.data() + done, run.size() - done);
              if (more == 0) {
                backoff.wait();
              } else {
                done += more;
                backoff.reset();
              }
            }
            break;
          }
        }
      }
      s.pushed.inc(done);
    }
  }

  /// Barrier + watchdog: returns true once every enqueued packet has been
  /// applied by its worker.  A shard whose worker dies or makes no
  /// progress for drain_timeout_ns is quarantined (producers shed to it,
  /// its in-flight items are abandoned, a stalled worker is told to abort
  /// without touching its instance) and the drain moves on — the epoch
  /// then closes from the survivors, returning false.  Producers must be
  /// quiescent (this is the epoch boundary).
  bool drain() {
    using clock = std::chrono::steady_clock;
    // Ambient keys: the epoch loop sets (source, epoch) on the tracer at
    // each boundary before draining.
    telemetry::ScopedSpan trace(telemetry::Stage::kShardDrain);
    bool complete = true;
    for (auto& sp : shards_) {
      Shard& s = *sp;
      if (s.quarantined.load(std::memory_order_acquire)) {
        complete = false;
        continue;
      }
      const std::uint64_t target = s.pushed.value();
      std::uint64_t last = s.applied.load(std::memory_order_acquire);
      auto last_progress = clock::now();
      BoundedBackoff backoff;
      for (;;) {
        const std::uint64_t applied = s.applied.load(std::memory_order_acquire);
        if (applied >= target) break;
        if (applied != last) {
          last = applied;
          last_progress = clock::now();
          backoff.reset();
        }
        const bool dead = s.dead.load(std::memory_order_acquire);
        const auto stagnant_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     clock::now() - last_progress)
                                     .count();
        if (dead ||
            static_cast<std::uint64_t>(stagnant_ns) >= opts_.drain_timeout_ns) {
          quarantine(s);
          complete = false;
          break;
        }
        backoff.wait();
      }
    }
    publish_supervision_telemetry();
    return complete;
  }

  /// Control-plane access to worker i's instance.  Only safe after
  /// drain() with producers quiescent; the worker thread itself touches
  /// the instance only while applying ring items.  A quarantined shard's
  /// instance is frozen (its worker aborted without further writes) and
  /// reflects only the packets applied before the fault.
  Instance& instance(std::uint32_t i) noexcept { return shards_[i]->instance; }
  const Instance& instance(std::uint32_t i) const noexcept {
    return shards_[i]->instance;
  }

  std::uint64_t shard_packets(std::uint32_t i) const noexcept {
    return shards_[i]->packets.value();
  }
  std::uint64_t shard_drops(std::uint32_t i) const noexcept {
    return shards_[i]->drops.value();
  }
  std::uint64_t shard_applied(std::uint32_t i) const noexcept {
    return shards_[i]->applied.load(std::memory_order_acquire);
  }

  // --- Supervision observability -----------------------------------------

  bool quarantined(std::uint32_t i) const noexcept {
    return shards_[i]->quarantined.load(std::memory_order_acquire);
  }
  bool worker_alive(std::uint32_t i) const noexcept {
    return !shards_[i]->dead.load(std::memory_order_acquire);
  }
  /// Monotonic per-worker liveness: increments once per poll iteration.
  std::uint64_t worker_heartbeat(std::uint32_t i) const noexcept {
    return shards_[i]->heartbeat.load(std::memory_order_relaxed);
  }
  std::uint32_t quarantined_shards() const noexcept {
    std::uint32_t n = 0;
    for (const auto& s : shards_) {
      if (s->quarantined.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }
  std::uint64_t quarantines() const noexcept { return quarantines_.value(); }

  std::uint32_t degrade_level(std::uint32_t i) const noexcept {
    return shards_[i]->degrade_level.load(std::memory_order_acquire);
  }

  /// Admission-valve observability.  valve_trips is thread-safe (atomic
  /// counter); the fraction reads the valve's producer-side state and is
  /// only meaningful from the producer thread or with producers quiescent.
  std::uint64_t valve_trips(std::uint32_t i) const noexcept {
    return shards_[i]->valve_trips.value();
  }
  double valve_new_flow_fraction(std::uint32_t i) const noexcept {
    return shards_[i]->valve.last_new_flow_fraction();
  }
  std::uint64_t total_valve_trips() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->valve_trips.value();
    return n;
  }

  /// Estimated accuracy impact of the current degradation: Theorem 1 puts
  /// the estimator stddev at ∝ 1/sqrt(p), so level L inflates it by
  /// sqrt(2^L).  Reported for the worst (live) shard.
  double estimated_error_inflation() const noexcept {
    std::uint32_t max_level = 0;
    for (const auto& s : shards_) {
      if (s->quarantined.load(std::memory_order_acquire)) continue;
      const std::uint32_t l = s->degrade_level.load(std::memory_order_acquire);
      if (l > max_level) max_level = l;
    }
    return std::sqrt(std::ldexp(1.0, static_cast<int>(max_level)));
  }

  /// Control-plane, post-drain: lift degradation for the next epoch (the
  /// overload that triggered it was epoch-local).  Safe single-threaded:
  /// after drain() workers only poll their rings.
  void reset_degradation() {
    for (auto& sp : shards_) {
      Shard& s = *sp;
      s.degrade_level.store(0, std::memory_order_release);
      if constexpr (requires { s.instance.apply_degradation(0u); }) {
        if (!s.quarantined.load(std::memory_order_acquire)) {
          s.instance.apply_degradation(0u);
        }
      }
      // Tell the worker its cached applied level is void (see
      // degrade_resets).  Release pairs with the worker's acquire load.
      s.degrade_resets.fetch_add(1, std::memory_order_release);
    }
    publish_supervision_telemetry();
  }

  std::uint64_t total_packets() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->packets.value();
    return n;
  }
  std::uint64_t total_drops() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->drops.value();
    return n;
  }

  /// Per-shard packet/drop/degrade counters plus group-level supervision
  /// instruments, registered under `<prefix>_...` (ISSUE: per-shard
  /// telemetry + degraded-mode accounting).
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    registry.gauge(prefix + "_workers", "number of shard worker threads")
        .set(static_cast<double>(shards_.size()));
    registry.register_external_counter(
        prefix + "_quarantines_total",
        "shards quarantined by the drain watchdog (dead or wedged worker)",
        quarantines_);
    quarantined_gauge_ =
        &registry.gauge(prefix + "_quarantined_shards",
                        "shards currently quarantined (degraded-coverage mode)");
    inflation_gauge_ = &registry.gauge(
        prefix + "_degrade_error_inflation",
        "estimated stddev inflation from overload degradation, sqrt(2^level)");
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string base = prefix + "_shard" + std::to_string(i);
      registry.register_external_counter(
          base + "_packets_total", "packets dispatched to this shard",
          shards_[i]->packets);
      registry.register_external_counter(
          base + "_drops_total",
          "packets shed on ring overflow or to a quarantined shard",
          shards_[i]->drops);
      registry.register_external_counter(
          base + "_degrade_steps_total",
          "overload-driven sampling-probability halvings on this shard",
          shards_[i]->degrade_steps);
      registry.register_external_counter(
          base + "_valve_trips_total",
          "admission-valve windows that closed above the new-flow threshold",
          shards_[i]->valve_trips);
    }
    publish_supervision_telemetry();
  }

  /// Join every worker (drains rings first).  Idempotent; the destructor
  /// calls it.  After stop(), instances stay readable single-threaded.
  void stop() {
    for (auto& s : shards_) {
      if (s->worker.joinable()) {
        s->done.store(true, std::memory_order_release);
        s->worker.join();
      }
    }
  }

 private:
  // Salt for the dispatch hash; any fixed odd constant distinct from the
  // digest seed works.
  static constexpr std::uint64_t kShardSalt = 0x5a4dd15bA7c4e11fULL;

  /// Full-ring retry budget under kDegrade before the producer sheds.
  static constexpr std::uint32_t kDegradeRetries = 128;

  struct Shard {
    Shard(Instance inst, const ShardOptions& opts)
        : instance(std::move(inst)), ring(opts.ring_capacity), valve(opts.valve) {}

    Instance instance;
    SpscRing<ShardItem> ring;
    ChurnValve valve;  // producer-side only (SPSC: one producer per shard)
    std::thread worker;
    std::uint32_t index = 0;
    std::atomic<bool> done{false};
    std::atomic<bool> abort{false};        // quarantine: exit, don't touch instance
    std::atomic<bool> dead{false};         // worker exited (fault kDie or abort)
    std::atomic<bool> quarantined{false};  // excluded from merges, producers shed
    std::atomic<std::uint64_t> heartbeat{0};      // one tick per poll iteration
    std::atomic<std::uint32_t> degrade_level{0};  // producer raises, worker applies
    /// Generation counter bumped by reset_degradation(): the worker
    /// re-syncs its locally cached applied level to 0 when it changes.
    /// Without it, a reset followed by re-escalation back to the *same*
    /// level would be skipped by the worker's level != applied_level
    /// check, leaving the instance at full probability while the
    /// producers believe it degraded.
    std::atomic<std::uint64_t> degrade_resets{0};
    std::atomic<std::uint64_t> applied{0};  // worker -> control barrier
    telemetry::Counter packets;             // producer writes, control reads
    telemetry::Counter pushed;              // packets minus drops
    telemetry::Counter drops;
    telemetry::Counter degrade_steps;
    telemetry::Counter valve_trips;         // admission-valve window trips
  };

  bool halted(const Shard& s) const noexcept {
    return s.dead.load(std::memory_order_acquire) ||
           s.quarantined.load(std::memory_order_acquire);
  }

  /// Admission-valve trip (admission.hpp): escalate the tripped shard's
  /// degrade ladder, exactly like a ring overflow would — the churn storm
  /// pays in sampling probability before it can fill the ring.  The fault
  /// site lets chaos tests blind the defense (kReject suppresses the
  /// escalation, the trip is still counted) to measure the attack's
  /// undefended damage.
  void valve_trip(Shard& s) {
    s.valve_trips.inc();
    if constexpr (fault::kEnabled) {
      if (fault::point(fault::Site::kAdmissionValve, s.index) ==
          fault::Action::kReject) {
        return;
      }
    }
    escalate_degradation(s);
  }

  /// Producer side of kDegrade: raise the shard's level by one (bounded);
  /// the worker applies the matching probability before its next item.
  void escalate_degradation(Shard& s) {
    std::uint32_t level = s.degrade_level.load(std::memory_order_relaxed);
    while (level < opts_.max_degrade_steps) {
      if (s.degrade_level.compare_exchange_weak(level, level + 1,
                                                std::memory_order_acq_rel)) {
        s.degrade_steps.inc();
        return;
      }
    }
  }

  void quarantine(Shard& s) {
    s.quarantined.store(true, std::memory_order_release);
    // An injected-stall worker wakes from its 1ms slice, sees abort, and
    // exits without another instance write — the quarantined sketch stays
    // frozen at its pre-fault contents.
    s.abort.store(true, std::memory_order_release);
    quarantines_.inc();
  }

  void publish_supervision_telemetry() {
    if (quarantined_gauge_) {
      quarantined_gauge_->set(static_cast<double>(quarantined_shards()));
    }
    if (inflation_gauge_) inflation_gauge_->set(estimated_error_inflation());
  }

  // Items the worker pops per bulk dequeue; matches the pipelines' rx
  // burst so a dispatched burst usually drains in one pop.
  static constexpr std::size_t kWorkerBurst = 32;

  void run(Shard& s) {
    ShardItem items[kWorkerBurst];
    std::vector<FlowKey> keys;
    keys.reserve(kWorkerBurst);
    BoundedBackoff backoff;
    std::uint32_t applied_level = 0;
    std::uint64_t seen_resets = 0;
    while (!s.done.load(std::memory_order_acquire) || !s.ring.empty_approx()) {
      s.heartbeat.fetch_add(1, std::memory_order_relaxed);
      if (s.abort.load(std::memory_order_acquire)) break;
      if constexpr (fault::kEnabled) {
        std::uint64_t param = 0;
        switch (fault::point(fault::Site::kWorkerLoop, s.index, &param)) {
          case fault::Action::kDie:
            s.dead.store(true, std::memory_order_release);
            return;
          case fault::Action::kStall:
            fault::stall_ns(param, [&s] {
              return s.abort.load(std::memory_order_acquire) ||
                     s.done.load(std::memory_order_acquire);
            });
            continue;  // re-check abort/done before touching the instance
          default:
            break;
        }
      }
      const std::size_t m = s.ring.try_pop_bulk(items, kWorkerBurst);
      if (m == 0) {
        backoff.wait();
        continue;
      }
      backoff.reset();
      // Sync the degrade level only when there are items to apply it to.
      // An idle worker must never touch its instance: the control plane
      // owns instances between drain() and the next producer activity
      // (reset_degradation, epoch reads), and a popped batch proves the
      // producers are active again, i.e. the control plane is not.
      if constexpr (requires { s.instance.apply_degradation(0u); }) {
        const std::uint64_t resets =
            s.degrade_resets.load(std::memory_order_acquire);
        if (resets != seen_resets) {
          // The control plane reset the instance to level 0 itself; just
          // invalidate the local cache so a re-escalation to the old
          // level is re-applied rather than skipped.
          seen_resets = resets;
          applied_level = 0;
        }
        const std::uint32_t level =
            s.degrade_level.load(std::memory_order_acquire);
        if (level != applied_level) {
          s.instance.apply_degradation(level);
          applied_level = level;
        }
      }
      std::size_t i = 0;
      while (i < m) {
        // A run of consecutive items with identical (count, ts) replays
        // through the sketch's burst fast path when it has one; the burst
        // path is update-sequence-equivalent, so results are bit-identical
        // to the per-item loop below.
        std::size_t j = i + 1;
        while (j < m && items[j].count == items[i].count &&
               items[j].ts_ns == items[i].ts_ns) {
          ++j;
        }
        bool bursted = false;
        if constexpr (requires(Instance& inst) {
                        inst.update_burst(std::span<const FlowKey>{},
                                          std::uint64_t{});
                      }) {
          if (items[i].count == 1 && j - i > 1) {
            keys.clear();
            for (std::size_t k = i; k < j; ++k) keys.push_back(items[k].key);
            s.instance.update_burst(
                std::span<const FlowKey>(keys.data(), keys.size()),
                items[i].ts_ns);
            bursted = true;
          }
        }
        if (!bursted) {
          for (std::size_t k = i; k < j; ++k) {
            s.instance.update(items[k].key, items[k].count, items[k].ts_ns);
          }
        }
        // Release pairs with drain()'s acquire: once applied covers a
        // push, the control plane sees every instance write behind it.
        s.applied.fetch_add(j - i, std::memory_order_release);
        i = j;
      }
    }
    if (s.abort.load(std::memory_order_acquire)) {
      s.dead.store(true, std::memory_order_release);
    }
  }

  ShardOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Dispatcher-local scratch for update_burst(); one run per shard.
  std::vector<std::vector<ShardItem>> burst_runs_;
  telemetry::Counter quarantines_;
  telemetry::Gauge* quarantined_gauge_ = nullptr;
  telemetry::Gauge* inflation_gauge_ = nullptr;
};

}  // namespace nitro::shard
