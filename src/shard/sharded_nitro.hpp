// ShardedNitroSketch<Base>: N NitroSketch<Base> workers behind a
// ShardGroup, with epoch-boundary snapshot()/query() that merge the
// per-shard counters into one coherent global sketch.
//
// Mergeability requirements handled here:
//  * every shard's Base is built by one caller-supplied factory, so all
//    shards share seeds and dimensions (CounterMatrix::merge checks);
//  * the per-shard Nitro sampler seeds are decorrelated (seed ^ shard id)
//    so shards do not sample the same geometric schedule in lockstep;
//  * K-ary stream totals add up because KArySketch::merge folds them, and
//    each shard's Traits::on_packet counted only its own packets.
//
// Snapshot consistency: snapshot() first drains every ring (barrier),
// then flushes each worker's Idea-D buffer, then merges.  Because
// producers are quiescent at the epoch boundary, the merged view reflects
// exactly the packets dispatched before the call — a flow is never split
// across "before" and "after" (dispatch is per-flow sticky).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/nitro_config.hpp"
#include "core/nitro_sketch.hpp"
#include "shard/shard_group.hpp"
#include "sketch/topk.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::shard {

template <typename Base, bool WithTelemetry = telemetry::kDefaultEnabled>
class ShardedNitroSketch {
 public:
  using Nitro = core::NitroSketch<Base, WithTelemetry>;
  using Traits = core::SketchTraitsFor<Base>;

  /// Coherent global view merged from all shards at one epoch boundary.
  /// Self-contained (owns copies), so it stays valid while the shards run
  /// the next epoch.
  struct Snapshot {
    Base base;
    sketch::TopKHeap heap;
    std::uint64_t packets = 0;
    std::uint64_t drops = 0;
    std::uint32_t quarantined_shards = 0;  // shards excluded from this merge

    std::int64_t query(const FlowKey& key) const { return Traits::query(base, key); }

    std::vector<sketch::TopKHeap::Entry> top_keys() const {
      std::vector<sketch::TopKHeap::Entry> out;
      for (const auto& e : heap.entries_sorted()) {
        out.push_back({e.key, Traits::query(base, e.key)});
      }
      return out;
    }
  };

  /// `make_base()` must return identically-seeded Base sketches (it is
  /// called once per shard).  The per-shard NitroConfig only differs in
  /// its sampler seed.
  template <typename MakeBase>
  ShardedNitroSketch(std::uint32_t workers, MakeBase&& make_base,
                     const core::NitroConfig& cfg, ShardOptions opts = {})
      : cfg_(cfg),
        group_(
            workers,
            [&](std::uint32_t i) {
              core::NitroConfig shard_cfg = cfg;
              shard_cfg.seed = mix64(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
              return Nitro(make_base(), shard_cfg);
            },
            opts) {}

  std::uint32_t workers() const noexcept { return group_.workers(); }
  std::uint32_t shard_of(const FlowKey& key) const noexcept {
    return group_.shard_of(key);
  }

  /// Data-plane entry points — see ShardGroup for the threading contract.
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    group_.update(key, count, ts_ns);
  }
  void update_on_shard(std::uint32_t shard, const FlowKey& key,
                       std::int64_t count = 1, std::uint64_t ts_ns = 0) {
    group_.update_on_shard(shard, key, count, ts_ns);
  }

  /// Burst dispatch: one shard partition + bulk ring reservation per
  /// shard; workers replay their runs through NitroSketch::update_burst.
  void update_burst(std::span<const FlowKey> keys, std::int64_t count = 1,
                    std::uint64_t ts_ns = 0) {
    group_.update_burst(keys, count, ts_ns);
  }

  /// Wait until every dispatched packet is applied by its worker.  Returns
  /// false when the watchdog quarantined a shard (the snapshot will then
  /// exclude it and degrade coverage rather than hang).
  bool drain() { return group_.drain(); }

  /// Merge all live shards into a global view (drains first).  Cached:
  /// repeated calls without intervening traffic reuse the previous merge.
  /// Quarantined shards are excluded — their counters stop at the fault
  /// and merging them would double-count nothing but under-count
  /// everything after it in an unquantifiable way; skipping them keeps the
  /// merged view exactly "the union stream of the surviving shards", for
  /// which Theorem 1 still holds.
  const Snapshot& snapshot() {
    group_.drain();
    const std::uint64_t seen = group_.total_packets();
    const std::uint32_t lost = group_.quarantined_shards();
    if (cached_ && cached_packets_ == seen &&
        cached_->quarantined_shards == lost) {
      return *cached_;
    }

    // Post-drain, workers only poll their rings; touching the instances
    // from this thread is single-threaded (release/acquire on the applied
    // counters ordered the workers' writes before the drain() return).
    for (std::uint32_t i = 0; i < group_.workers(); ++i) {
      if (group_.quarantined(i)) continue;
      group_.instance(i).flush();  // drain Idea-D buffered updates
    }

    std::uint32_t first_live = 0;
    while (first_live + 1 < group_.workers() && group_.quarantined(first_live)) {
      ++first_live;
    }
    Snapshot snap{group_.instance(first_live).base(),
                  sketch::TopKHeap(cfg_.track_top_keys ? cfg_.top_keys : 0),
                  0, 0, lost};
    for (std::uint32_t i = first_live + 1; i < group_.workers(); ++i) {
      if (group_.quarantined(i)) continue;
      snap.base.merge(group_.instance(i).base());
    }
    if (cfg_.track_top_keys) {
      for (std::uint32_t i = first_live; i < group_.workers(); ++i) {
        if (i != first_live && group_.quarantined(i)) continue;
        // Re-estimate against the merged counters: per-shard estimates do
        // not account for collisions contributed by other shards' flows.
        snap.heap.merge(group_.instance(i).heap(),
                        [&snap](const FlowKey& k, std::int64_t) {
                          return Traits::query(snap.base, k);
                        });
      }
    }
    snap.packets = seen;
    snap.drops = group_.total_drops();
    cached_ = std::move(snap);
    cached_packets_ = seen;
    publish_merged_telemetry();
    return *cached_;
  }

  /// Epoch-boundary point query against the merged view.
  std::int64_t query(const FlowKey& key) { return snapshot().query(key); }

  /// Heavy keys of the merged view, estimates from the merged counters.
  std::vector<sketch::TopKHeap::Entry> top_keys() { return snapshot().top_keys(); }

  std::uint64_t packets() const noexcept { return group_.total_packets(); }
  std::uint64_t drops() const noexcept { return group_.total_drops(); }

  /// Control-plane access to one shard's NitroSketch (post-drain only).
  Nitro& shard_sketch(std::uint32_t i) noexcept { return group_.instance(i); }
  const Nitro& shard_sketch(std::uint32_t i) const noexcept {
    return group_.instance(i);
  }

  // --- Supervision passthroughs (see ShardGroup) --------------------------
  bool quarantined(std::uint32_t i) const noexcept { return group_.quarantined(i); }
  bool worker_alive(std::uint32_t i) const noexcept {
    return group_.worker_alive(i);
  }
  std::uint32_t quarantined_shard_count() const noexcept {
    return group_.quarantined_shards();
  }
  double estimated_error_inflation() const noexcept {
    return group_.estimated_error_inflation();
  }
  /// Post-drain: lift overload degradation for the next epoch.
  void reset_degradation() { group_.reset_degradation(); }

  ShardGroup<Nitro>& group() noexcept { return group_; }
  const ShardGroup<Nitro>& group() const noexcept { return group_; }

  /// Per-shard counters via ShardGroup plus merged-view gauges refreshed
  /// on every snapshot().
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    group_.attach_telemetry(registry, prefix);
    merged_packets_ = &registry.gauge(prefix + "_merged_packets",
                                      "packets covered by the last merged snapshot");
    merged_heavy_keys_ = &registry.gauge(prefix + "_merged_heavy_keys",
                                         "heavy keys tracked in the last merged snapshot");
    merges_ = &registry.counter(prefix + "_snapshot_merges_total",
                                "epoch-boundary shard merges performed");
  }

  void stop() { group_.stop(); }

 private:
  void publish_merged_telemetry() {
    if (merges_) merges_->inc();
    if (merged_packets_) merged_packets_->set(static_cast<double>(cached_->packets));
    if (merged_heavy_keys_) {
      merged_heavy_keys_->set(static_cast<double>(cached_->heap.size()));
    }
  }

  core::NitroConfig cfg_;
  ShardGroup<Nitro> group_;
  std::optional<Snapshot> cached_;
  std::uint64_t cached_packets_ = ~std::uint64_t{0};
  telemetry::Gauge* merged_packets_ = nullptr;
  telemetry::Gauge* merged_heavy_keys_ = nullptr;
  telemetry::Counter* merges_ = nullptr;
};

using ShardedNitroCountMin = ShardedNitroSketch<sketch::CountMinSketch>;
using ShardedNitroCountSketch = ShardedNitroSketch<sketch::CountSketch>;
using ShardedNitroKAry = ShardedNitroSketch<sketch::KArySketch>;

}  // namespace nitro::shard
