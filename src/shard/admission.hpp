// Flow-arrival admission valve (DESIGN.md §16): the shard layer's defense
// against high-churn unique-flow storms.
//
// A churn attack does not need hash collisions: a firehose of never-seen
// flow keys inflates every level's distinct count, floods the TopK heaps
// with one-packet flows, and buries real heavy hitters under eviction
// noise.  The valve watches the *new-flow fraction* of each shard's
// arrival stream through a direct-mapped tag table — a few KB per shard,
// O(1) per packet, no allocation — and when a decision window closes with
// more new flows than the threshold allows, it trips.  A trip escalates
// the shard's existing kDegrade ladder (shard_group.hpp): the sampling
// probability halves, so the storm's per-packet work and its heap churn
// are cut before the ring ever overflows, and the accuracy cost is the
// same measured sqrt(2)-per-step stddev inflation the overload path
// already accounts for.
//
// Benign traffic keeps a low new-flow fraction (Zipf streams revisit
// their head constantly; the tag table holds the working set), so a
// disabled or untripped valve costs one table probe per packet and the
// degrade ladder stays at level 0.
//
// Thread contract: on_packet() is called from a shard's producer path
// only — at most one thread per shard (the SPSC contract of the owning
// ring) — so the valve needs no synchronization.  Control-plane reads
// (trips(), last_new_flow_fraction()) are epoch-boundary, post-drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nitro::shard {

struct ValveOptions {
  bool enabled = false;
  /// Packets per decision window; the trip decision is made when the
  /// window closes.  Small windows react faster, large windows smooth
  /// over benign bursts of new flows (a flash crowd's first packets).
  std::uint32_t window = 4096;
  /// Trip when the window's new-flow fraction exceeds this.  Benign Zipf
  /// traffic sits well under 0.3 once the table warms up; a unique-flow
  /// storm pushes it towards 1.0.
  double new_flow_threshold = 0.5;
  /// log2 of the recent-flow tag table size (12 -> 4096 slots, 16 KiB).
  std::uint32_t table_bits = 12;
};

/// Windowed new-flow-fraction detector over a direct-mapped tag table.
class ChurnValve {
 public:
  explicit ChurnValve(const ValveOptions& opts)
      : opts_(opts),
        mask_((std::size_t{1} << (opts.table_bits == 0 ? 1 : opts.table_bits)) - 1),
        tags_(opts.enabled ? mask_ + 1 : 0, 0) {
    if (opts_.window == 0) opts_.window = 1;
  }

  bool enabled() const noexcept { return opts_.enabled; }

  /// Feed one packet's flow digest.  Returns true exactly when this
  /// packet closed a decision window whose new-flow fraction exceeded the
  /// threshold — the caller escalates its degrade ladder on true.
  bool on_packet(std::uint64_t digest) noexcept {
    if (!opts_.enabled) return false;
    // Index and tag from disjoint digest bits; a zero tag means "empty
    // slot", so force the tag odd (costs nothing detection-wise).
    const std::size_t idx = static_cast<std::size_t>(digest >> 32) & mask_;
    const std::uint32_t tag = static_cast<std::uint32_t>(digest) | 1u;
    if (tags_[idx] != tag) {
      tags_[idx] = tag;
      ++window_new_;
    }
    if (++window_seen_ < opts_.window) return false;
    last_fraction_ =
        static_cast<double>(window_new_) / static_cast<double>(window_seen_);
    window_seen_ = 0;
    window_new_ = 0;
    if (last_fraction_ > opts_.new_flow_threshold) {
      ++trips_;
      return true;
    }
    return false;
  }

  std::uint64_t trips() const noexcept { return trips_; }
  /// New-flow fraction of the last *closed* window (0 before the first).
  double last_new_flow_fraction() const noexcept { return last_fraction_; }

 private:
  ValveOptions opts_;
  std::size_t mask_;
  std::vector<std::uint32_t> tags_;
  std::uint32_t window_seen_ = 0;
  std::uint32_t window_new_ = 0;
  std::uint64_t trips_ = 0;
  double last_fraction_ = 0.0;
};

}  // namespace nitro::shard
