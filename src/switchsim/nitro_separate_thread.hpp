// NitroSketch separate-thread integration (§4.3 + §6).
//
// The paper splits the data plane into a *pre-processing stage* (geometric
// selection of which packets/rows update a counter — runs inside the
// vswitchd forwarding thread) and a *sketch-updating stage* (hashing and
// counter writes — runs in a dedicated thread fed through a shared SPSC
// buffer).  Because only ~p of packets are selected, the ring carries a
// tiny fraction of the traffic and the forwarding thread's measurement
// cost collapses to the geometric countdown.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/flow_key.hpp"
#include "common/spsc_ring.hpp"
#include "core/nitro_config.hpp"
#include "core/nitro_sketch.hpp"
#include "core/rate_controller.hpp"
#include "core/row_sampler.hpp"
#include "sketch/topk.hpp"
#include "switchsim/measurement.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::switchsim {

template <typename Base>
class NitroSeparateThread final : public Measurement {
 public:
  using Traits = core::SketchTraitsFor<Base>;

  NitroSeparateThread(Base base, const core::NitroConfig& cfg,
                      std::size_t ring_capacity = 1 << 16)
      : base_(std::move(base)),
        cfg_(cfg),
        sampler_(base_.depth(),
                 cfg.mode == core::Mode::kFixedRate ? cfg.probability : 1.0,
                 cfg.seed ^ 0x51e9a7eULL),
        rate_(cfg.target_sampled_rate_pps, cfg.rate_epoch_ns, cfg.probability),
        heap_(cfg.track_top_keys ? cfg.top_keys : 0),
        ring_(ring_capacity) {
    consumer_ = std::thread([this] { run(); });
  }

  ~NitroSeparateThread() override { stop(); }

  /// Pre-processing stage: geometric selection only; selected (key, row,
  /// delta) tuples go to the ring.  The exact per-packet bookkeeping that
  /// the inline integration does via Traits::on_packet (K-ary's stream
  /// total S) is accumulated producer-side and folded into the base at
  /// finish(), after the consumer has been joined.
  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    packets_.inc();
    ++pending_stream_count_;
    if (cfg_.mode == core::Mode::kAlwaysLineRate && rate_.on_packet(ts_ns)) {
      sampler_.set_probability(rate_.probability());
    }
    std::uint32_t rows[64];
    const std::uint32_t n = sampler_.rows_for_packet(rows);
    if (n == 0) return;
    const std::int64_t delta = sampler_.increment();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!ring_.try_push({key, rows[i], delta})) drops_.inc();
    }
  }

  /// Burst pre-processing: one geometric advance across the whole burst
  /// (segmented into constant-p runs under AlwaysLineRate), then only the
  /// selected (key, row, delta) tuples touch the ring.  Same selections
  /// and drop policy as per-packet on_packet with a shared timestamp.
  void on_burst(const FlowKey* keys, const std::uint16_t*, std::size_t n,
                std::uint64_t ts_ns) override {
    packets_.inc(n);
    pending_stream_count_ += static_cast<std::int64_t>(n);
    std::size_t i = 0;
    bool head_fed = false;
    while (i < n) {
      std::size_t seg = n - i;
      if (cfg_.mode == core::Mode::kAlwaysLineRate) {
        if (!head_fed && rate_.on_packet(ts_ns)) {
          sampler_.set_probability(rate_.probability());
        }
        head_fed = false;
        seg = 1;
        while (i + seg < n) {
          if (rate_.on_packet(ts_ns)) {
            sampler_.set_probability(rate_.probability());
            head_fed = true;
            break;
          }
          ++seg;
        }
      }
      const std::uint32_t selected =
          sampler_.sample_burst(static_cast<std::uint32_t>(seg), burst_slots_);
      if (selected > 0) {
        const std::int64_t delta = sampler_.increment();
        for (std::uint32_t s = 0; s < selected; ++s) {
          if (!ring_.try_push({keys[i + burst_slots_[s].packet],
                               burst_slots_[s].row, delta})) {
            drops_.inc();
          }
        }
      }
      i += seg;
    }
  }

  void finish() override { stop(); }

  /// Expose ring counters and wire the rate controller's p-timeline into
  /// `registry` (same layout as SeparateThreadMeasurement).
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    registry.register_external_counter(prefix + "_packets_total",
                                       "packets seen by the pre-processing stage",
                                       packets_);
    registry.register_external_counter(prefix + "_drops_total",
                                       "ring overruns: samples dropped", drops_);
    registry.register_external_counter(
        prefix + "_idle_spins_total",
        "consumer poll rounds that found the ring empty", idle_spins_);
    rate_.attach_telemetry(&registry.event_log(prefix + "_events"),
                           &registry.gauge(prefix + "_sampling_probability",
                                           "current geometric sampling probability p"));
  }

  /// Queries run on the control path after finish().
  std::int64_t query(const FlowKey& key) const { return Traits::query(base_, key); }
  const Base& base() const noexcept { return base_; }
  const sketch::TopKHeap& heap() const noexcept { return heap_; }
  std::uint64_t packets() const noexcept { return packets_.value(); }
  std::uint64_t drops() const noexcept { return drops_.value(); }
  std::uint64_t idle_spins() const noexcept { return idle_spins_.value(); }
  std::uint64_t applied() const noexcept { return applied_.load(std::memory_order_relaxed); }

 private:
  struct Item {
    FlowKey key;
    std::uint32_t row;
    std::int64_t delta;
  };

  void run() {
    Item item;
    std::uint32_t idle = 0;
    while (!done_.load(std::memory_order_acquire) || !ring_.empty_approx()) {
      if (!ring_.try_pop(item)) {
        // Bounded backoff: PAUSE for a while, then hand the core back to
        // the scheduler instead of burning it on an empty ring.
        idle_spins_.inc();
        if (idle < kSpinsBeforeYield) {
          ++idle;
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      idle = 0;
      base_.matrix().update_row(item.row, item.key, item.delta);
      applied_.fetch_add(1, std::memory_order_relaxed);
      if (heap_.capacity() > 0) heap_.offer(item.key, Traits::query(base_, item.key));
    }
  }

  void stop() {
    if (consumer_.joinable()) {
      done_.store(true, std::memory_order_release);
      consumer_.join();
    }
    // Consumer joined: folding the producer-side stream total into the
    // base is single-threaded here.  Without this, K-ary's unbiased
    // estimator sees S = 0 and every estimate is shifted by S/w.
    if (pending_stream_count_ != 0) {
      Traits::on_packet(base_, pending_stream_count_);
      pending_stream_count_ = 0;
    }
  }

  Base base_;
  core::NitroConfig cfg_;
  core::RowSampler sampler_;       // producer-side
  core::RateController rate_;      // producer-side
  std::vector<core::BurstSlot> burst_slots_;  // producer-side burst scratch
  sketch::TopKHeap heap_;          // consumer-side
  SpscRing<Item> ring_;
  std::thread consumer_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> applied_{0};
  // Relaxed atomic (same pattern as drops_): the producer writes while a
  // control thread may read packets() mid-run.
  telemetry::Counter packets_;
  std::int64_t pending_stream_count_ = 0;  // producer-side, folded in stop()
  telemetry::Counter drops_;  // relaxed atomic: producer writes, control reads
  telemetry::Counter idle_spins_;
};

}  // namespace nitro::switchsim
