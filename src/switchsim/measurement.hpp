// Measurement-hook interface between a switch pipeline and a sketch.
//
// A pipeline invokes the hook once per parsed packet on its forwarding
// thread ("all-in-one" / AIO integration), or the hook's pre-processing
// stage pushes selected flow keys into an SPSC ring drained by a separate
// sketching thread ("separate-thread" integration, §6).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "common/backoff.hpp"
#include "common/flow_key.hpp"
#include "common/spsc_ring.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::switchsim {

// The backoff primitives moved to common/backoff.hpp so the shard layer
// can share them; these aliases keep existing switchsim call sites intact.
using nitro::cpu_relax;
using nitro::kSpinsBeforeYield;

class Measurement {
 public:
  virtual ~Measurement() = default;

  /// Called on the forwarding thread for every successfully parsed packet.
  virtual void on_packet(const FlowKey& key, std::uint16_t wire_bytes,
                         std::uint64_t ts_ns) = 0;

  /// Called once per rx burst with the successfully parsed keys (and the
  /// parallel wire-byte array), all stamped with the burst's poll
  /// timestamp.  The default unrolls to on_packet() so every existing
  /// hook keeps working; burst-aware hooks override it to reach the
  /// sketch's update_burst() fast path.
  virtual void on_burst(const FlowKey* keys, const std::uint16_t* wire_bytes,
                        std::size_t n, std::uint64_t ts_ns) {
    for (std::size_t i = 0; i < n; ++i) on_packet(keys[i], wire_bytes[i], ts_ns);
  }

  /// End-of-run barrier: flush buffers / drain rings so queries observe
  /// every packet.
  virtual void finish() {}
};

/// Null hook — the plain-switch baselines ("OVS-DPDK" bars in Figure 2/8).
class NoMeasurement final : public Measurement {
 public:
  void on_packet(const FlowKey&, std::uint16_t, std::uint64_t) override {}
};

/// AIO adapter: calls Sketch::update(key, 1, ts) inline.  Works for every
/// sketch in this repository (vanilla and Nitro-wrapped).  Bursts route to
/// Sketch::update_burst when the sketch has one (NitroSketch,
/// NitroUnivMon), otherwise unroll to per-packet updates.
template <typename Sketch>
class InlineMeasurement final : public Measurement {
 public:
  explicit InlineMeasurement(Sketch& sketch) : sketch_(sketch) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    sketch_.update(key, 1, ts_ns);
  }

  void on_burst(const FlowKey* keys, const std::uint16_t*, std::size_t n,
                std::uint64_t ts_ns) override {
    if constexpr (requires(Sketch& s) {
                    s.update_burst(std::span<const FlowKey>{}, std::uint64_t{});
                  }) {
      sketch_.update_burst(std::span<const FlowKey>(keys, n), ts_ns);
    } else {
      for (std::size_t i = 0; i < n; ++i) sketch_.update(keys[i], 1, ts_ns);
    }
  }

 private:
  Sketch& sketch_;
};

/// AIO adapter for sketches whose update() takes (key, count) only.
template <typename Sketch>
class InlineMeasurementNoTs final : public Measurement {
 public:
  explicit InlineMeasurementNoTs(Sketch& sketch) : sketch_(sketch) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t) override {
    sketch_.update(key, 1);
  }

 private:
  Sketch& sketch_;
};

/// Separate-thread integration: the forwarding thread enqueues every flow
/// key (vanilla sketches) or lets the sketch's own sampling decide later;
/// a dedicated thread drains the ring and updates the sketch.  If the ring
/// fills, samples are dropped and counted — matching the shared-buffer
/// design modified from moodycamel's queue in the paper.
template <typename Sketch>
class SeparateThreadMeasurement final : public Measurement {
 public:
  struct Item {
    FlowKey key;
    std::uint64_t ts_ns;
  };

  /// The consumer samples ring occupancy into the telemetry histogram once
  /// every this many pops.
  static constexpr std::uint64_t kOccupancySampleInterval = 256;

  /// Items staged per bulk ring push on the burst path (covers the
  /// pipelines' rx burst of 32 in one reservation).
  static constexpr std::size_t kPushChunk = 32;

  explicit SeparateThreadMeasurement(Sketch& sketch, std::size_t ring_capacity = 1 << 16)
      : sketch_(sketch), ring_(ring_capacity) {
    consumer_ = std::thread([this] { run(); });
  }

  ~SeparateThreadMeasurement() override { stop(); }

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    if (ring_.try_push({key, ts_ns})) {
      ++pushed_;
      return;
    }
    // Overruns are dropped and counted, never blocked on (§6: losing a
    // sample costs accuracy, stalling the forwarding thread costs packets).
    drops_.inc();
    const std::uint64_t n = drops_.value();
    // Acquire pairs with the release store in attach_telemetry() so the
    // log's construction is visible before first use.
    telemetry::EventLog* events = events_.load(std::memory_order_acquire);
    if (events && (n == 1 || (n & 0xffff) == 0)) {
      events->append(telemetry::EventKind::kRingDrop, ts_ns,
                     static_cast<double>(n));
    }
  }

  /// Burst fast path: one bulk ring reservation per chunk instead of one
  /// release store per packet.  Whatever a full ring rejects is shed and
  /// counted — the same policy as on_packet.
  void on_burst(const FlowKey* keys, const std::uint16_t*, std::size_t n,
                std::uint64_t ts_ns) override {
    Item items[kPushChunk];
    std::size_t i = 0;
    while (i < n) {
      const std::size_t chunk = std::min(n - i, kPushChunk);
      for (std::size_t j = 0; j < chunk; ++j) items[j] = {keys[i + j], ts_ns};
      const std::size_t accepted = ring_.try_push_bulk(items, chunk);
      pushed_ += accepted;
      const std::size_t shed = chunk - accepted;
      if (shed > 0) {
        const std::uint64_t before = drops_.value();
        drops_.inc(shed);
        telemetry::EventLog* events = events_.load(std::memory_order_acquire);
        // Same rate limit as the scalar path: log the first drop and then
        // once per 64Ki (detected as a 2^16 boundary crossing).
        if (events &&
            (before == 0 || (before >> 16) != ((before + shed) >> 16))) {
          events->append(telemetry::EventKind::kRingDrop, ts_ns,
                         static_cast<double>(before + shed));
        }
      }
      i += chunk;
    }
  }

  /// Drain barrier: blocks until the consumer has applied every pushed
  /// item, then returns with the consumer still running, so a pipeline can
  /// run multiple epochs against one measurement.  The thread itself stops
  /// in the destructor.
  void finish() override {
    while (applied_.load(std::memory_order_acquire) < pushed_) cpu_relax();
  }

  /// Expose the internal counters in `registry` (the drop and idle-spin
  /// counters live here and are registered by reference; occupancy
  /// histogram and the event log are registry-owned).
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix) {
    registry.register_external_counter(prefix + "_drops_total",
                                       "ring overruns: samples dropped", drops_);
    registry.register_external_counter(
        prefix + "_idle_spins_total",
        "consumer poll rounds that found the ring empty", idle_spins_);
    occupancy_.store(&registry.histogram(prefix + "_occupancy",
                                         "ring occupancy sampled by the consumer"),
                     std::memory_order_release);
    events_.store(&registry.event_log(prefix + "_events"), std::memory_order_release);
  }

  std::uint64_t drops() const noexcept { return drops_.value(); }
  std::uint64_t idle_spins() const noexcept { return idle_spins_.value(); }
  std::uint64_t applied() const noexcept {
    return applied_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    Item item;
    std::uint32_t idle = 0;
    std::uint64_t pops_since_sample = 0;
    while (!done_.load(std::memory_order_acquire) || !ring_.empty_approx()) {
      if (ring_.try_pop(item)) {
        idle = 0;
        if constexpr (requires { sketch_.update(item.key, std::int64_t{1}, item.ts_ns); }) {
          sketch_.update(item.key, 1, item.ts_ns);
        } else {
          sketch_.update(item.key, 1);
        }
        telemetry::Histogram* occ = occupancy_.load(std::memory_order_acquire);
        if (occ && ++pops_since_sample >= kOccupancySampleInterval) {
          pops_since_sample = 0;
          occ->observe(ring_.size_approx());
        }
        applied_.fetch_add(1, std::memory_order_release);
      } else {
        idle_spins_.inc();
        if (idle < kSpinsBeforeYield) {
          ++idle;
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  void stop() {
    if (consumer_.joinable()) {
      done_.store(true, std::memory_order_release);
      consumer_.join();
    }
  }

  Sketch& sketch_;
  SpscRing<Item> ring_;
  std::thread consumer_;
  std::atomic<bool> done_{false};
  std::uint64_t pushed_ = 0;                   // producer-thread only
  std::atomic<std::uint64_t> applied_{0};      // consumer -> producer barrier
  telemetry::Counter drops_;  // relaxed atomic (was a racy plain u64)
  telemetry::Counter idle_spins_;
  // Atomic because attach_telemetry() may run after the consumer started.
  std::atomic<telemetry::Histogram*> occupancy_{nullptr};
  std::atomic<telemetry::EventLog*> events_{nullptr};
};

}  // namespace nitro::switchsim
