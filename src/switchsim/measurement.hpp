// Measurement-hook interface between a switch pipeline and a sketch.
//
// A pipeline invokes the hook once per parsed packet on its forwarding
// thread ("all-in-one" / AIO integration), or the hook's pre-processing
// stage pushes selected flow keys into an SPSC ring drained by a separate
// sketching thread ("separate-thread" integration, §6).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/flow_key.hpp"
#include "common/spsc_ring.hpp"

namespace nitro::switchsim {

class Measurement {
 public:
  virtual ~Measurement() = default;

  /// Called on the forwarding thread for every successfully parsed packet.
  virtual void on_packet(const FlowKey& key, std::uint16_t wire_bytes,
                         std::uint64_t ts_ns) = 0;

  /// End-of-run barrier: flush buffers / drain rings so queries observe
  /// every packet.
  virtual void finish() {}
};

/// Null hook — the plain-switch baselines ("OVS-DPDK" bars in Figure 2/8).
class NoMeasurement final : public Measurement {
 public:
  void on_packet(const FlowKey&, std::uint16_t, std::uint64_t) override {}
};

/// AIO adapter: calls Sketch::update(key, 1, ts) inline.  Works for every
/// sketch in this repository (vanilla and Nitro-wrapped).
template <typename Sketch>
class InlineMeasurement final : public Measurement {
 public:
  explicit InlineMeasurement(Sketch& sketch) : sketch_(sketch) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    sketch_.update(key, 1, ts_ns);
  }

 private:
  Sketch& sketch_;
};

/// AIO adapter for sketches whose update() takes (key, count) only.
template <typename Sketch>
class InlineMeasurementNoTs final : public Measurement {
 public:
  explicit InlineMeasurementNoTs(Sketch& sketch) : sketch_(sketch) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t) override {
    sketch_.update(key, 1);
  }

 private:
  Sketch& sketch_;
};

/// Separate-thread integration: the forwarding thread enqueues every flow
/// key (vanilla sketches) or lets the sketch's own sampling decide later;
/// a dedicated thread drains the ring and updates the sketch.  If the ring
/// fills, samples are dropped and counted — matching the shared-buffer
/// design modified from moodycamel's queue in the paper.
template <typename Sketch>
class SeparateThreadMeasurement final : public Measurement {
 public:
  struct Item {
    FlowKey key;
    std::uint64_t ts_ns;
  };

  explicit SeparateThreadMeasurement(Sketch& sketch, std::size_t ring_capacity = 1 << 16)
      : sketch_(sketch), ring_(ring_capacity) {
    consumer_ = std::thread([this] { run(); });
  }

  ~SeparateThreadMeasurement() override { stop(); }

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    if (!ring_.try_push({key, ts_ns})) ++drops_;
  }

  void finish() override { stop(); }

  std::uint64_t drops() const noexcept { return drops_; }

 private:
  void run() {
    Item item;
    while (!done_.load(std::memory_order_acquire) || !ring_.empty_approx()) {
      if (ring_.try_pop(item)) {
        if constexpr (requires { sketch_.update(item.key, std::int64_t{1}, item.ts_ns); }) {
          sketch_.update(item.key, 1, item.ts_ns);
        } else {
          sketch_.update(item.key, 1);
        }
      }
    }
  }

  void stop() {
    if (consumer_.joinable()) {
      done_.store(true, std::memory_order_release);
      consumer_.join();
    }
  }

  Sketch& sketch_;
  SpscRing<Item> ring_;
  std::thread consumer_;
  std::atomic<bool> done_{false};
  std::uint64_t drops_ = 0;
};

}  // namespace nitro::switchsim
