#include "switchsim/packet.hpp"

namespace nitro::switchsim {

namespace {

inline void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

RawPacket make_raw(const trace::PacketRecord& rec) {
  RawPacket pkt;
  std::uint8_t* h = pkt.header.data();
  // Ethernet: dst MAC / src MAC derived from the flow key (keeps EMC keys
  // distinct per flow, as the paper does by rewriting MACs), EtherType.
  put32(h + 0, rec.key.dst_ip);
  put16(h + 4, rec.key.dst_port);
  put32(h + 6, rec.key.src_ip);
  put16(h + 10, rec.key.src_port);
  put16(h + 12, 0x0800);
  // IPv4: version/IHL, ToS, total length, id, flags, TTL, proto, checksum.
  h[14] = 0x45;
  h[15] = 0;
  put16(h + 16, static_cast<std::uint16_t>(rec.wire_bytes - 14));
  put16(h + 18, 0);
  put16(h + 20, 0x4000);  // DF
  h[22] = 64;             // TTL
  h[23] = rec.key.proto;
  put16(h + 24, 0);  // checksum (not validated by the fast path)
  put32(h + 26, rec.key.src_ip);
  put32(h + 30, rec.key.dst_ip);
  // L4 ports.
  put16(h + 34, rec.key.src_port);
  put16(h + 36, rec.key.dst_port);
  put32(h + 38, 0);  // seq / len+csum
  pkt.wire_bytes = rec.wire_bytes;
  pkt.ts_ns = rec.ts_ns;
  return pkt;
}

std::optional<FlowKey> extract_miniflow(const RawPacket& pkt) {
  const std::uint8_t* h = pkt.header.data();
  if (get16(h + 12) != 0x0800) return std::nullopt;  // not IPv4
  if ((h[14] >> 4) != 4) return std::nullopt;
  FlowKey key;
  key.proto = h[23];
  key.src_ip = get32(h + 26);
  key.dst_ip = get32(h + 30);
  key.src_port = get16(h + 34);
  key.dst_port = get16(h + 36);
  return key;
}

std::vector<RawPacket> materialize(const trace::Trace& trace) {
  std::vector<RawPacket> out;
  out.reserve(trace.size());
  for (const auto& rec : trace) out.push_back(make_raw(rec));
  return out;
}

}  // namespace nitro::switchsim
