// BESS-like modular pipeline (§6).
//
// BESS composes a dataflow of small modules; we model the measurement
// deployment of the paper: PortInc -> Parser -> (sketching module) ->
// L2Forward -> PortOut.  Modules hand whole batches downstream.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/ovs_pipeline.hpp"  // RunStats
#include "switchsim/packet.hpp"

namespace nitro::switchsim {

struct BessContext {
  std::span<const RawPacket> batch;
  std::vector<FlowKey> keys;       // filled by the parser module
  std::vector<bool> valid;
  RunStats* stats = nullptr;
};

class BessModule {
 public:
  explicit BessModule(std::string name) : name_(std::move(name)) {}
  virtual ~BessModule() = default;
  virtual void process(BessContext& ctx) = 0;
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class BessParser final : public BessModule {
 public:
  BessParser() : BessModule("parser") {}
  void process(BessContext& ctx) override {
    ctx.keys.resize(ctx.batch.size());
    ctx.valid.assign(ctx.batch.size(), false);
    for (std::size_t i = 0; i < ctx.batch.size(); ++i) {
      if (auto key = extract_miniflow(ctx.batch[i])) {
        ctx.keys[i] = *key;
        ctx.valid[i] = true;
      }
    }
  }
};

class BessSketchModule final : public BessModule {
 public:
  explicit BessSketchModule(Measurement& m) : BessModule("nitrosketch"), m_(m) {}

  /// Batch-native module: compact the parsed keys of the batch and hand
  /// them to the hook in one on_burst() call, stamped with the batch's
  /// last valid packet timestamp.
  void process(BessContext& ctx) override {
    keys_.clear();
    bytes_.clear();
    std::uint64_t batch_ts = 0;
    for (std::size_t i = 0; i < ctx.batch.size(); ++i) {
      if (!ctx.valid[i]) continue;
      keys_.push_back(ctx.keys[i]);
      bytes_.push_back(ctx.batch[i].wire_bytes);
      batch_ts = ctx.batch[i].ts_ns;
    }
    if (!keys_.empty()) {
      m_.on_burst(keys_.data(), bytes_.data(), keys_.size(), batch_ts);
    }
  }

 private:
  Measurement& m_;
  std::vector<FlowKey> keys_;
  std::vector<std::uint16_t> bytes_;
};

class BessL2Forward final : public BessModule {
 public:
  BessL2Forward() : BessModule("l2_forward") {}
  void process(BessContext& ctx) override {
    for (std::size_t i = 0; i < ctx.batch.size(); ++i) {
      if (ctx.valid[i]) {
        ++ctx.stats->packets;
        ctx.stats->bytes += ctx.batch[i].wire_bytes;
      } else {
        ++ctx.stats->drops;
      }
    }
  }
};

class BessPipeline {
 public:
  explicit BessPipeline(Measurement& measurement) : measurement_(&measurement) {
    modules_.push_back(std::make_unique<BessParser>());
    modules_.push_back(std::make_unique<BessSketchModule>(measurement));
    modules_.push_back(std::make_unique<BessL2Forward>());
  }

  /// Bind registry counters; folded in once per run().
  void set_telemetry(const telemetry::PipelineTelemetry& tel) { tel_ = tel; }

  RunStats run(std::span<const RawPacket> packets) {
    RunStats stats;
    WallTimer timer;
    BessContext ctx;
    ctx.stats = &stats;
    std::size_t i = 0;
    std::uint64_t bursts = 0;
    while (i < packets.size()) {
      const std::size_t burst = std::min(kBurstSize, packets.size() - i);
      ctx.batch = packets.subspan(i, burst);
      for (auto& m : modules_) m->process(ctx);
      i += burst;
      ++bursts;
    }
    measurement_->finish();
    stats.seconds = timer.seconds();
    tel_.add_run(stats.packets, stats.bytes, stats.drops, bursts);
    return stats;
  }

 private:
  std::vector<std::unique_ptr<BessModule>> modules_;
  Measurement* measurement_ = nullptr;
  telemetry::PipelineTelemetry tel_{};
};

}  // namespace nitro::switchsim
