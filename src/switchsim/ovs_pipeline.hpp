// OVS-DPDK-like forwarding pipeline (§6).
//
// Per burst of kBurstSize packets the pipeline: (1) assembles the burst
// from the replay buffer (DPDK PMD poll), (2) runs miniflow extraction,
// (3) resolves the action through the EMC with classifier fallback,
// (4) invokes the measurement hook (the AIO integration point inside the
// EMC module of dpif-netdev), and (5) applies the forwarding action.
// Everything runs on the calling thread, matching a single vswitchd PMD.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/timing.hpp"
#include "switchsim/emc.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/packet.hpp"
#include "switchsim/profile.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::switchsim {

struct RunStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
  double seconds = 0.0;
  Throughput throughput() const { return Throughput::from(packets, bytes, seconds); }
};

class OvsPipeline {
 public:
  /// `burst_size` is the rx poll batch (DPDK's default 32).  Parsed keys
  /// of a burst are handed to the measurement hook in one on_burst() call
  /// stamped with the burst's poll timestamp; burst_size = 1 degenerates
  /// to the per-packet on_packet() path (the scalar baseline benches use
  /// it to isolate the burst win).
  explicit OvsPipeline(Measurement& measurement, std::size_t emc_entries = 8192,
                       std::size_t burst_size = kBurstSize)
      : measurement_(measurement), emc_(emc_entries),
        burst_size_(burst_size == 0 ? 1 : burst_size) {
    // Bench setup from §7: two bidirectional forwarding rules + catch-all.
    classifier_.add_subtable({0xff000000u, 0xff000000u, false, false});
    classifier_.set_default_action(1);
    burst_keys_.reserve(burst_size_);
    burst_bytes_.reserve(burst_size_);
  }

  TupleSpaceClassifier& classifier() { return classifier_; }

  /// Bind registry counters for forwarded packets/bytes/drops/bursts;
  /// folded in once per run(), so the per-packet path is untouched.
  void set_telemetry(const telemetry::PipelineTelemetry& tel) { tel_ = tel; }

  /// Replay a materialized trace through the pipeline.  `profile` may be
  /// null to skip instrumentation (lower overhead for pure throughput).
  RunStats run(std::span<const RawPacket> packets, Profile* profile = nullptr) {
    RunStats stats;
    WallTimer timer;
    std::size_t i = 0;
    std::uint64_t bursts = 0;
    const std::size_t n = packets.size();
    while (i < n) {
      const std::size_t burst = std::min(burst_size_, n - i);
      if (profile) {
        run_burst_profiled(packets.subspan(i, burst), stats, *profile);
      } else {
        run_burst(packets.subspan(i, burst), stats);
      }
      i += burst;
      ++bursts;
    }
    measurement_.finish();
    stats.seconds = timer.seconds();
    tel_.add_run(stats.packets, stats.bytes, stats.drops, bursts);
    return stats;
  }

  const Emc& emc() const noexcept { return emc_; }

 private:
  void run_burst(std::span<const RawPacket> burst, RunStats& stats) {
    burst_keys_.clear();
    burst_bytes_.clear();
    std::uint64_t burst_ts = 0;
    for (const RawPacket& pkt : burst) {
      const auto key = extract_miniflow(pkt);
      if (!key) {
        ++stats.drops;
        continue;
      }
      const std::uint64_t digest = flow_digest(*key);
      auto action = emc_.lookup(*key, digest);
      if (!action) {
        action = classifier_.classify(*key);
        emc_.insert(*key, digest, *action);
      }
      if (burst_size_ == 1) {
        measurement_.on_packet(*key, pkt.wire_bytes, pkt.ts_ns);
      } else {
        burst_keys_.push_back(*key);
        burst_bytes_.push_back(pkt.wire_bytes);
        burst_ts = pkt.ts_ns;  // poll timestamp = last packet of the burst
      }
      apply_action(*action, pkt, stats);
    }
    if (!burst_keys_.empty()) {
      measurement_.on_burst(burst_keys_.data(), burst_bytes_.data(),
                            burst_keys_.size(), burst_ts);
    }
  }

  void run_burst_profiled(std::span<const RawPacket> burst, RunStats& stats,
                          Profile& prof) {
    // Stage timings bracket the same code as run_burst; the split mirrors
    // the function granularity of the VTune rows in Table 2.  On the burst
    // path the measurement row is one bracket around the whole on_burst
    // call, so the per-burst amortization shows up in the profile.
    burst_keys_.clear();
    burst_bytes_.clear();
    std::uint64_t burst_ts = 0;
    for (const RawPacket& pkt : burst) {
      std::uint64_t t0 = rdtsc();
      const auto key = extract_miniflow(pkt);
      std::uint64_t t1 = rdtsc();
      prof.parse.add(t1 - t0);
      if (!key) {
        ++stats.drops;
        continue;
      }
      const std::uint64_t digest = flow_digest(*key);
      auto action = emc_.lookup(*key, digest);
      if (!action) {
        action = classifier_.classify(*key);
        emc_.insert(*key, digest, *action);
      }
      std::uint64_t t2 = rdtsc();
      prof.lookup.add(t2 - t1);
      std::uint64_t t3 = t2;
      if (burst_size_ == 1) {
        measurement_.on_packet(*key, pkt.wire_bytes, pkt.ts_ns);
        t3 = rdtsc();
        prof.measurement.add(t3 - t2);
      } else {
        burst_keys_.push_back(*key);
        burst_bytes_.push_back(pkt.wire_bytes);
        burst_ts = pkt.ts_ns;
      }
      apply_action(*action, pkt, stats);
      prof.action.add(rdtsc() - t3);
    }
    if (!burst_keys_.empty()) {
      const std::uint64_t t0 = rdtsc();
      measurement_.on_burst(burst_keys_.data(), burst_bytes_.data(),
                            burst_keys_.size(), burst_ts);
      prof.measurement.add(rdtsc() - t0);
    }
  }

  void apply_action(ActionId action, const RawPacket& pkt, RunStats& stats) {
    if (action == kActionDrop) {
      ++stats.drops;
      return;
    }
    // Port TX accounting — the substrate's stand-in for the egress path.
    port_packets_[action & 0x3] += 1;
    port_bytes_[action & 0x3] += pkt.wire_bytes;
    ++stats.packets;
    stats.bytes += pkt.wire_bytes;
  }

  Measurement& measurement_;
  Emc emc_;
  std::size_t burst_size_;
  std::vector<FlowKey> burst_keys_;          // parsed keys of the current burst
  std::vector<std::uint16_t> burst_bytes_;   // parallel wire-byte array
  TupleSpaceClassifier classifier_;
  telemetry::PipelineTelemetry tel_{};
  std::uint64_t port_packets_[4] = {0, 0, 0, 0};
  std::uint64_t port_bytes_[4] = {0, 0, 0, 0};
};

}  // namespace nitro::switchsim
