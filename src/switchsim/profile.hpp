// Per-stage CPU accounting — the substitute for Intel VTune (Table 2,
// Figure 10).  Each pipeline stage accumulates TSC cycles; shares are
// reported over the run's total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::switchsim {

struct Profile {
  CycleAccumulator recv;         // burst assembly ("recv_pkts_vecs")
  CycleAccumulator parse;        // miniflow_extract
  CycleAccumulator lookup;       // EMC + classifier
  CycleAccumulator measurement;  // the sketch hook (all of it)
  CycleAccumulator action;       // forwarding/output

  std::uint64_t total_cycles() const noexcept {
    return recv.cycles() + parse.cycles() + lookup.cycles() + measurement.cycles() +
           action.cycles();
  }

  struct Share {
    std::string stage;
    double percent;
  };

  std::vector<Share> shares() const {
    const double total = static_cast<double>(total_cycles());
    auto pct = [total](const CycleAccumulator& a) {
      return total > 0 ? 100.0 * static_cast<double>(a.cycles()) / total : 0.0;
    };
    return {
        {"recv", pct(recv)},       {"parse(miniflow)", pct(parse)},
        {"lookup(EMC+cls)", pct(lookup)}, {"measurement", pct(measurement)},
        {"action", pct(action)},
    };
  }

  void reset() {
    recv.reset();
    parse.reset();
    lookup.reset();
    measurement.reset();
    action.reset();
  }

  /// Fold the stage accounting into a telemetry registry (the one source
  /// Table 2 / Figure 10 and the exporters read): absolute cycles as
  /// counters `<prefix>_cycles_total_<stage>` and the percentage shares as
  /// gauges `<prefix>_share_percent_<stage>`.  Idempotent — repeated calls
  /// refresh the same instruments.
  void publish(telemetry::Registry& registry,
               const std::string& prefix = "nitro_stage") const {
    struct StageRef {
      const char* id;
      const CycleAccumulator* acc;
    };
    const StageRef stages[] = {
        {"recv", &recv},
        {"parse", &parse},
        {"lookup", &lookup},
        {"measurement", &measurement},
        {"action", &action},
    };
    const double total = static_cast<double>(total_cycles());
    for (const auto& s : stages) {
      registry
          .counter(prefix + "_cycles_total_" + s.id,
                   "TSC cycles accumulated in the pipeline stage")
          .store(s.acc->cycles());
      registry
          .gauge(prefix + "_share_percent_" + s.id,
                 "stage share of total pipeline cycles")
          .set(total > 0 ? 100.0 * static_cast<double>(s.acc->cycles()) / total : 0.0);
    }
  }
};

}  // namespace nitro::switchsim
