// Instrumented UnivMon measurement hook for the Table 2 reproduction.
//
// Performs exactly the work of a vanilla UnivMon update, but brackets the
// three bottleneck classes of §3 with cycle counters:
//   (1) hash computations        (bottleneck 1: d1·H)
//   (2) counter updates          (bottleneck 2: d2·C)
//   (3) heavy-key heap queries   (bottleneck 3: P)
// The pipeline adds parse/lookup/recv shares, giving the full VTune-style
// hotspot table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/math_util.hpp"
#include "common/timing.hpp"
#include "sketch/univmon.hpp"
#include "switchsim/measurement.hpp"

namespace nitro::switchsim {

class InstrumentedUnivMon final : public Measurement {
 public:
  InstrumentedUnivMon(const sketch::UnivMonConfig& cfg, std::uint64_t seed)
      : um_(cfg, seed) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t) override {
    um_.add_total(1);
    for (std::uint32_t j = 0; j < um_.num_levels(); ++j) {
      if (!um_.level_passes(j, key)) break;
      auto& cs = um_.level_sketch_mut(j);
      auto& m = cs.matrix();

      // (1) Hash: flow digest + per-row index/sign hashes.
      std::uint64_t t0 = rdtsc();
      const std::uint64_t digest = flow_digest(key);
      cols_.resize(m.depth());
      signs_.resize(m.depth());
      for (std::uint32_t r = 0; r < m.depth(); ++r) {
        cols_[r] = m.row_hash(r).index_of_digest(digest);
        signs_[r] = m.sign_hash(r).sign_of_digest(digest);
      }
      std::uint64_t t1 = rdtsc();
      hash_.add(t1 - t0);

      // (2) Counter updates (one random access per row; columns and signs
      // were precomputed in the hash stage).  The fresh estimate (median
      // of the touched counters) falls out of the same pass.
      est_buf_.resize(m.depth());
      for (std::uint32_t r = 0; r < m.depth(); ++r) {
        m.add_at(r, cols_[r], signs_[r]);
        est_buf_[r] = m.row(r)[cols_[r]] * signs_[r];
      }
      std::uint64_t t2 = rdtsc();
      counters_.add(t2 - t1);

      // (2b) Estimate assembly (median of the touched rows) — the paper's
      // "univmon_proc" bucket.
      const auto mid =
          est_buf_.begin() + static_cast<std::ptrdiff_t>(est_buf_.size() / 2);
      std::nth_element(est_buf_.begin(), mid, est_buf_.end());
      const std::int64_t estimate = *mid;
      std::uint64_t t3 = rdtsc();
      proc_.add(t3 - t2);

      // (3) Heap query + maintenance (pure heap cost; no re-hash).
      um_.offer_to_heap_with_estimate(j, key, estimate);
      heap_.add(rdtsc() - t3);
    }
  }

  const sketch::UnivMon& univmon() const noexcept { return um_; }
  std::uint64_t hash_cycles() const noexcept { return hash_.cycles(); }
  std::uint64_t counter_cycles() const noexcept { return counters_.cycles(); }
  std::uint64_t heap_cycles() const noexcept { return heap_.cycles(); }
  std::uint64_t proc_cycles() const noexcept { return proc_.cycles(); }

 private:
  sketch::UnivMon um_;
  CycleAccumulator hash_;
  CycleAccumulator counters_;
  CycleAccumulator heap_;
  CycleAccumulator proc_;
  std::vector<std::uint32_t> cols_;
  std::vector<std::int32_t> signs_;
  std::vector<std::int64_t> est_buf_;
};

}  // namespace nitro::switchsim
