// Wire-level packet representation for the software-switch substrate.
//
// To charge the same per-packet CPU costs a real vSwitch pays, packets are
// materialized as raw Ethernet/IPv4/L4 header bytes that the pipeline must
// actually parse (miniflow extraction), rather than pre-parsed structs.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/flow_key.hpp"
#include "trace/packet_record.hpp"

namespace nitro::switchsim {

constexpr std::size_t kHeaderBytes = 42;  // 14 (Eth) + 20 (IPv4) + 8 (UDP/TCP ports+)

struct RawPacket {
  std::array<std::uint8_t, kHeaderBytes> header{};
  std::uint16_t wire_bytes = 64;
  std::uint64_t ts_ns = 0;
};

/// Serialize a trace record into on-wire header bytes (big-endian fields,
/// EtherType 0x0800).
RawPacket make_raw(const trace::PacketRecord& rec);

/// Miniflow extraction (the `miniflow_extract` of OVS, Table 2): parse the
/// L2/L3/L4 headers back into a FlowKey.  Returns nullopt for non-IPv4.
std::optional<FlowKey> extract_miniflow(const RawPacket& pkt);

/// Materialize a whole trace.
std::vector<RawPacket> materialize(const trace::Trace& trace);

/// DPDK-style burst view: pointers into the materialized trace.
constexpr std::size_t kBurstSize = 32;

}  // namespace nitro::switchsim
