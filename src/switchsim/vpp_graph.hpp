// FD.io-VPP-like packet-processing graph (§6 "VPP and BESS Integration").
//
// VPP moves *vectors* of packets node-to-node; each node does one job on
// the whole batch (amortizing I-cache misses).  We model the simple L3
// vSwitch of the paper: ethernet-input -> ip4-input -> ip4-lookup ->
// measurement -> interface-output, with the measurement node added after
// the IP stack exactly as the paper's VPP 18.02 plugin.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timing.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/ovs_pipeline.hpp"  // RunStats
#include "switchsim/packet.hpp"

namespace nitro::switchsim {

/// Work item flowing through the graph: parsed lazily by ethernet-input.
struct VppBuffer {
  const RawPacket* pkt = nullptr;
  FlowKey key;
  bool valid = false;
  std::uint32_t next_hop = 0;
};

class VppNode {
 public:
  explicit VppNode(std::string name) : name_(std::move(name)) {}
  virtual ~VppNode() = default;
  virtual void process(std::span<VppBuffer> frame) = 0;
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class EthernetInputNode final : public VppNode {
 public:
  EthernetInputNode() : VppNode("ethernet-input") {}
  void process(std::span<VppBuffer> frame) override {
    for (auto& b : frame) {
      const auto key = extract_miniflow(*b.pkt);
      b.valid = key.has_value();
      if (b.valid) b.key = *key;
    }
  }
};

class Ip4InputNode final : public VppNode {
 public:
  Ip4InputNode() : VppNode("ip4-input") {}
  void process(std::span<VppBuffer> frame) override {
    for (auto& b : frame) {
      // TTL and header sanity (already parsed; check the live fields).
      if (b.valid && b.pkt->header[22] == 0) b.valid = false;
    }
  }
};

/// Longest-prefix-match stand-in: /8 route table with default route.
class Ip4LookupNode final : public VppNode {
 public:
  Ip4LookupNode() : VppNode("ip4-lookup") {}

  void add_route(std::uint8_t dst_prefix, std::uint32_t next_hop) {
    routes_[dst_prefix] = next_hop;
  }

  void process(std::span<VppBuffer> frame) override {
    for (auto& b : frame) {
      if (!b.valid) continue;
      auto it = routes_.find(static_cast<std::uint8_t>(b.key.dst_ip >> 24));
      b.next_hop = it == routes_.end() ? 1 : it->second;
    }
  }

 private:
  std::unordered_map<std::uint8_t, std::uint32_t> routes_;
};

class MeasurementNode final : public VppNode {
 public:
  explicit MeasurementNode(Measurement& m) : VppNode("nitro-measure"), m_(m) {}

  /// Vector-native node: the valid keys of the frame go to the hook in one
  /// on_burst() call (this is exactly VPP's per-node batch amortization),
  /// stamped with the frame's last valid packet timestamp.
  void process(std::span<VppBuffer> frame) override {
    keys_.clear();
    bytes_.clear();
    std::uint64_t frame_ts = 0;
    for (auto& b : frame) {
      if (!b.valid) continue;
      keys_.push_back(b.key);
      bytes_.push_back(b.pkt->wire_bytes);
      frame_ts = b.pkt->ts_ns;
    }
    if (!keys_.empty()) {
      m_.on_burst(keys_.data(), bytes_.data(), keys_.size(), frame_ts);
    }
  }

 private:
  Measurement& m_;
  std::vector<FlowKey> keys_;
  std::vector<std::uint16_t> bytes_;
};

class VppGraph {
 public:
  explicit VppGraph(Measurement& measurement) {
    nodes_.push_back(std::make_unique<EthernetInputNode>());
    nodes_.push_back(std::make_unique<Ip4InputNode>());
    auto lookup = std::make_unique<Ip4LookupNode>();
    lookup_ = lookup.get();
    nodes_.push_back(std::move(lookup));
    nodes_.push_back(std::make_unique<MeasurementNode>(measurement));
    measurement_ = &measurement;
  }

  Ip4LookupNode& ip4_lookup() { return *lookup_; }

  /// Bind registry counters; folded in once per run().
  void set_telemetry(const telemetry::PipelineTelemetry& tel) { tel_ = tel; }

  RunStats run(std::span<const RawPacket> packets) {
    RunStats stats;
    WallTimer timer;
    std::vector<VppBuffer> frame(kBurstSize);
    std::size_t i = 0;
    std::uint64_t bursts = 0;
    while (i < packets.size()) {
      const std::size_t burst = std::min(kBurstSize, packets.size() - i);
      for (std::size_t j = 0; j < burst; ++j) frame[j].pkt = &packets[i + j];
      const std::span<VppBuffer> view(frame.data(), burst);
      for (auto& node : nodes_) node->process(view);
      for (std::size_t j = 0; j < burst; ++j) {
        if (frame[j].valid) {
          ++stats.packets;
          stats.bytes += frame[j].pkt->wire_bytes;
        } else {
          ++stats.drops;
        }
      }
      i += burst;
      ++bursts;
    }
    measurement_->finish();
    stats.seconds = timer.seconds();
    tel_.add_run(stats.packets, stats.bytes, stats.drops, bursts);
    return stats;
  }

 private:
  std::vector<std::unique_ptr<VppNode>> nodes_;
  Ip4LookupNode* lookup_ = nullptr;
  Measurement* measurement_ = nullptr;
  telemetry::PipelineTelemetry tel_{};
};

}  // namespace nitro::switchsim
