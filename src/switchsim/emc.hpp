// OVS-style three-tier lookup: Exact Match Cache (EMC) backed by a
// tuple-space classifier backed by a slow OpenFlow table (§6 "OVS-DPDK
// Integration").  The EMC is a fixed-size open-addressing table keyed on
// the miniflow; a hit resolves the action in one probe, a miss walks the
// classifier's subtables and installs the result.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::switchsim {

using ActionId = std::uint32_t;
constexpr ActionId kActionDrop = 0xffffffffu;

/// Exact Match Cache: fixed 8192-entry table, 2-way probing.
class Emc {
 public:
  explicit Emc(std::size_t entries = 8192) : slots_(entries) {}

  /// nullopt on miss.
  std::optional<ActionId> lookup(const FlowKey& key, std::uint64_t digest) {
    const std::size_t a = digest % slots_.size();
    if (slots_[a].valid && slots_[a].key == key) {
      ++hits_;
      return slots_[a].action;
    }
    const std::size_t b = (digest >> 32) % slots_.size();
    if (slots_[b].valid && slots_[b].key == key) {
      ++hits_;
      return slots_[b].action;
    }
    ++misses_;
    return std::nullopt;
  }

  /// Install after classifier resolution (evicts the first probe slot).
  void insert(const FlowKey& key, std::uint64_t digest, ActionId action) {
    Slot& s = slots_[digest % slots_.size()];
    s.valid = true;
    s.key = key;
    s.action = action;
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    FlowKey key;
    ActionId action = kActionDrop;
    bool valid = false;
  };

  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Tuple-space classifier: ordered subtables, each matching under a mask.
/// Rules here are forwarding rules ("src subnet X -> port N"); the bench
/// setups install two bidirectional rules plus a catch-all, as in §7.
class TupleSpaceClassifier {
 public:
  struct Mask {
    std::uint32_t src_ip_mask = 0;
    std::uint32_t dst_ip_mask = 0;
    bool match_ports = false;
    bool match_proto = false;
  };

  void add_subtable(const Mask& mask) { subtables_.push_back({mask, {}}); }

  void add_rule(std::size_t subtable, const FlowKey& match, ActionId action) {
    auto& st = subtables_.at(subtable);
    st.rules[masked(match, st.mask)] = action;
  }

  void set_default_action(ActionId a) { default_action_ = a; }

  ActionId classify(const FlowKey& key) {
    ++lookups_;
    for (auto& st : subtables_) {
      auto it = st.rules.find(masked(key, st.mask));
      if (it != st.rules.end()) return it->second;
    }
    return default_action_;
  }

  std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  static FlowKey masked(const FlowKey& k, const Mask& m) {
    FlowKey out;
    out.src_ip = k.src_ip & m.src_ip_mask;
    out.dst_ip = k.dst_ip & m.dst_ip_mask;
    out.src_port = m.match_ports ? k.src_port : 0;
    out.dst_port = m.match_ports ? k.dst_port : 0;
    out.proto = m.match_proto ? k.proto : 0;
    return out;
  }

  struct Subtable {
    Mask mask;
    std::unordered_map<FlowKey, ActionId> rules;
  };

  std::vector<Subtable> subtables_;
  ActionId default_action_ = 1;  // forward to port 1 (bench default)
  std::uint64_t lookups_ = 0;
};

}  // namespace nitro::switchsim
