// Measurement hook routing a pipeline's packets into the sharded
// multi-core data plane (src/shard/).
//
// The pipeline's forwarding thread becomes the dispatcher: per packet it
// pays one flow-hash + one SPSC push, while the d-row sketch work runs on
// the shard workers.  finish() is the pipeline's end-of-run barrier and
// maps to drain(), so post-run queries observe every forwarded packet —
// the same contract as SeparateThreadMeasurement, scaled to N consumers.
#pragma once

#include <cstdint>
#include <span>

#include "shard/sharded_nitro.hpp"
#include "switchsim/measurement.hpp"

namespace nitro::switchsim {

template <typename Base>
class ShardedNitroMeasurement final : public Measurement {
 public:
  explicit ShardedNitroMeasurement(shard::ShardedNitroSketch<Base>& sharded)
      : sharded_(sharded) {}

  void on_packet(const FlowKey& key, std::uint16_t, std::uint64_t ts_ns) override {
    sharded_.update(key, 1, ts_ns);
  }

  /// Burst dispatch: partition the whole rx burst by shard and enqueue
  /// each shard's run with one bulk ring reservation.
  void on_burst(const FlowKey* keys, const std::uint16_t*, std::size_t n,
                std::uint64_t ts_ns) override {
    sharded_.update_burst(std::span<const FlowKey>(keys, n), 1, ts_ns);
  }

  void finish() override { sharded_.drain(); }

 private:
  shard::ShardedNitroSketch<Base>& sharded_;
};

}  // namespace nitro::switchsim
