// ElasticSketch (Yang et al., SIGCOMM 2018) — reimplemented baseline.
//
// Heavy part: an array of buckets with (key, positive vote, negative
// vote, flag); elephants live here, and a flow is evicted to the light
// part when the negative/positive vote ratio reaches λ = 8.  Light part:
// a Count-Min Sketch for the mice.  Worst-case per-packet cost is
// 1 hash + 1 counter + 1 table op — fast, but the light part only gives
// an L1 guarantee, and the distinct-flow estimator (linear counting over
// the light counters) overflows once the flow count approaches the
// counter count.  Both limitations are what Figure 3b demonstrates.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "sketch/count_min.hpp"

namespace nitro::baseline {

class ElasticSketch {
 public:
  /// `heavy_buckets` buckets + a CM light part of `light_depth x light_width`.
  /// The paper's Figure 3b instance is ~2.7MB total.
  ElasticSketch(std::size_t heavy_buckets, std::uint32_t light_depth,
                std::uint32_t light_width, std::uint64_t seed)
      : buckets_(heavy_buckets), light_(light_depth, light_width, seed) {}

  void update(const FlowKey& key, std::int64_t count = 1) {
    total_ += count;
    Bucket& b = buckets_[bucket_index(key)];
    if (b.pvote == 0) {  // empty bucket: claim it
      b.key = key;
      b.pvote = count;
      b.nvote = 0;
      b.flag = false;
      return;
    }
    if (b.key == key) {
      b.pvote += count;
      return;
    }
    b.nvote += count;
    if (b.nvote >= kLambda * b.pvote) {
      // Eviction: the incumbent's count moves to the light part; the
      // challenger takes the bucket, flagged because part of its history
      // is now in the light part too.
      light_.update(b.key, b.pvote);
      b.key = key;
      b.pvote = count;
      b.nvote = 0;
      b.flag = true;
    } else {
      light_.update(key, count);
    }
  }

  std::int64_t query(const FlowKey& key) const {
    const Bucket& b = buckets_[bucket_index(key)];
    if (b.pvote > 0 && b.key == key) {
      return b.pvote + (b.flag ? light_.query(key) : 0);
    }
    return light_.query(key);
  }

  /// Linear-counting cardinality over the light part's row-0 counters plus
  /// the heavy-part residents.  Breaks down (ln of ~0) when flows ≫
  /// counters — the Figure 3b failure mode.
  double estimate_distinct() const {
    const auto row = light_.matrix().row(0);
    std::size_t zeros = 0;
    for (std::int64_t c : row) {
      if (c == 0) ++zeros;
    }
    const double w = static_cast<double>(row.size());
    double light_distinct;
    if (zeros == 0) {
      // Linear counting has overflowed; the estimator saturates and the
      // reported cardinality is unusable (error > 100% in the paper).
      light_distinct = w * std::log(w);
    } else {
      light_distinct = w * std::log(w / static_cast<double>(zeros));
    }
    double heavy = 0;
    for (const auto& b : buckets_) {
      if (b.pvote > 0 && !b.flag) heavy += 1.0;
    }
    return light_distinct + heavy;
  }

  /// Entropy from the heavy flows (exact keys) plus the light part's
  /// counter histogram used as a proxy flow-size distribution.  The proxy
  /// collapses once many mice share counters — accuracy degrades with the
  /// flow count, as in Figure 3b.
  double estimate_entropy() const;

  std::vector<std::pair<FlowKey, std::int64_t>> heavy_hitters(std::int64_t threshold) const {
    std::vector<std::pair<FlowKey, std::int64_t>> out;
    for (const auto& b : buckets_) {
      if (b.pvote > 0) {
        const std::int64_t est = b.pvote + (b.flag ? light_.query(b.key) : 0);
        if (est >= threshold) out.emplace_back(b.key, est);
      }
    }
    return out;
  }

  std::int64_t total() const noexcept { return total_; }
  std::size_t memory_bytes() const noexcept {
    return buckets_.size() * sizeof(Bucket) + light_.memory_bytes();
  }
  const sketch::CountMinSketch& light_part() const noexcept { return light_; }

 private:
  static constexpr std::int64_t kLambda = 8;

  struct Bucket {
    FlowKey key;
    std::int64_t pvote = 0;
    std::int64_t nvote = 0;
    bool flag = false;
  };

  std::size_t bucket_index(const FlowKey& key) const {
    return static_cast<std::size_t>(flow_digest(key) % buckets_.size());
  }

  std::vector<Bucket> buckets_;
  sketch::CountMinSketch light_;
  std::int64_t total_ = 0;
};

}  // namespace nitro::baseline
