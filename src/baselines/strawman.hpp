// The two strawman designs the paper analyzes and rejects (§4.1).
//
// Strawman 1 — One-array sketch: a single hash-indexed counter array with
// one sign hash.  1H, 1C per packet, but needs O(ε⁻²δ⁻¹) counters to match
// the d-row sketch's (ε, δ) guarantee (~50x the memory for δ = 0.01),
// losing LLC residency.
//
// Strawman 2 — Uniform packet sampling in front of an unmodified sketch:
// cuts work by p, but still pays a per-packet coin flip, converges slowly,
// and (Appendix B) needs Ω(ε⁻²p⁻¹ log δ⁻¹ + ε⁻²p⁻¹·⁵m⁻⁰·⁵ log¹·⁵ δ⁻¹)
// counters — asymptotically more than NitroSketch's row sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "common/geometric.hpp"
#include "common/tabulation.hpp"
#include "sketch/count_sketch.hpp"

namespace nitro::baseline {

/// Strawman 1: single-row Count Sketch.
class OneArrayCountSketch {
 public:
  OneArrayCountSketch(std::uint32_t width, std::uint64_t seed)
      : hash_(width, seed), sign_(mix64(seed), /*signed_updates=*/true),
        counters_(width, 0) {}

  void update(const FlowKey& key, std::int64_t count = 1) noexcept {
    const std::uint64_t digest = flow_digest(key);
    counters_[hash_.index_of_digest(digest)] += count * sign_.sign_of_digest(digest);
  }

  std::int64_t query(const FlowKey& key) const noexcept {
    const std::uint64_t digest = flow_digest(key);
    return counters_[hash_.index_of_digest(digest)] * sign_.sign_of_digest(digest);
  }

  std::size_t memory_bytes() const noexcept {
    return counters_.size() * sizeof(std::int64_t);
  }
  std::uint32_t width() const noexcept { return hash_.width(); }

 private:
  RowHash hash_;
  SignHash sign_;
  std::vector<std::int64_t> counters_;
};

/// Strawman 2: uniform packet sampling feeding a vanilla Count Sketch.
/// (Geometric skips stand in for the per-packet coin flips so the sampled
/// set is distributed identically; the *cost* of per-packet coin flips is
/// modeled in the throughput benchmarks, which charge one PRNG draw per
/// packet for this baseline.)
class UniformSampledCountSketch {
 public:
  UniformSampledCountSketch(std::uint32_t depth, std::uint32_t width, double p,
                            std::uint64_t seed)
      : cs_(depth, width, seed), p_(p), rng_(mix64(seed ^ 0x5a3b1eULL)) {}

  void update(const FlowKey& key, std::int64_t count = 1) {
    // Per-packet coin flip — the overhead §4.1 calls out.
    if (rng_.next_double() < p_) {
      cs_.update(key, static_cast<std::int64_t>(static_cast<double>(count) / p_ + 0.5));
    }
  }

  std::int64_t query(const FlowKey& key) const { return cs_.query(key); }
  double probability() const noexcept { return p_; }
  const sketch::CountSketch& sketch() const noexcept { return cs_; }
  std::size_t memory_bytes() const noexcept { return cs_.memory_bytes(); }

 private:
  sketch::CountSketch cs_;
  double p_;
  Pcg32 rng_;
};

}  // namespace nitro::baseline
