#include "baselines/netflow.hpp"

#include <algorithm>

namespace nitro::baseline {

std::vector<std::pair<FlowKey, std::int64_t>> NetFlowSampler::top_k(std::size_t k) const {
  std::vector<std::pair<FlowKey, std::int64_t>> out;
  out.reserve(cache_.size());
  for (const auto& [key, sampled] : cache_) {
    out.emplace_back(key, static_cast<std::int64_t>(
                              static_cast<double>(sampled) / rate_ + 0.5));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace nitro::baseline
