// SketchVisor (Huang et al., SIGCOMM 2017) — reimplemented baseline.
//
// Packets take either a *fast path* (a k-entry table updated with an
// improved Misra-Gries kick-out scheme: amortized 1 hash, 1 counter, 1
// heap op per packet) or the *normal path* (a full sketch — UnivMon here,
// as in the paper's §7.4 comparison).  The control plane later merges the
// fast path's residuals into the normal-path sketch, an operation the
// paper notes is computationally intensive.
//
// The source of SketchVisor is not public; like the paper's authors we
// reimplement the fast-path algorithm and drive the fast-path fraction
// explicitly (20% / 50% / 100%) from the benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sketch/misra_gries.hpp"
#include "sketch/univmon.hpp"

namespace nitro::baseline {

class SketchVisor {
 public:
  /// `fast_entries`: fast-path table size (paper benchmark: 900 counters).
  /// `fast_fraction`: share of traffic diverted to the fast path.
  SketchVisor(const sketch::UnivMonConfig& normal_cfg, std::size_t fast_entries,
              double fast_fraction, std::uint64_t seed)
      : normal_(normal_cfg, seed),
        fast_(fast_entries),
        fast_fraction_(fast_fraction),
        rng_(mix64(seed ^ 0xfa57ULL)) {}

  void update(const FlowKey& key, std::int64_t count = 1) {
    // The real system diverts to the fast path on queue buildup; we model
    // the resulting traffic split probabilistically, as in §7.4.
    if (rng_.next_double() < fast_fraction_) {
      fast_.update(key, count);
      ++fast_packets_;
    } else {
      normal_.update(key, count);
      ++normal_packets_;
    }
  }

  /// Control-plane merge: folds every fast-path residual counter into the
  /// normal-path sketch.  Quadratic-ish in practice on a busy fast path —
  /// this is the "computationally intensive" merge of §4.3.
  void merge() {
    for (const auto& [key, v] : fast_.entries()) {
      normal_.update(key, v);
    }
    fast_.clear();
    ++merges_;
  }

  /// Point query after merge (callers should merge() at epoch end first).
  std::int64_t query(const FlowKey& key) const {
    return normal_.query(key) + fast_.query(key);
  }

  std::vector<sketch::TopKHeap::Entry> heavy_hitters(std::int64_t threshold) const {
    auto out = normal_.heavy_hitters(threshold);
    for (const auto& [key, v] : fast_.entries()) {
      if (v >= threshold && normal_.query(key) < threshold) out.push_back({key, v});
    }
    return out;
  }

  const sketch::UnivMon& normal_path() const noexcept { return normal_; }
  const sketch::MisraGries& fast_path() const noexcept { return fast_; }
  std::uint64_t fast_packets() const noexcept { return fast_packets_; }
  std::uint64_t normal_packets() const noexcept { return normal_packets_; }
  std::uint64_t merges() const noexcept { return merges_; }

 private:
  sketch::UnivMon normal_;
  sketch::MisraGries fast_;
  double fast_fraction_;
  Pcg32 rng_;
  std::uint64_t fast_packets_ = 0;
  std::uint64_t normal_packets_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace nitro::baseline
