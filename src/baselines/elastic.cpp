#include "baselines/elastic.hpp"

#include <map>

#include "common/math_util.hpp"

namespace nitro::baseline {

double ElasticSketch::estimate_entropy() const {
  if (total_ <= 0) return 0.0;
  const double m = static_cast<double>(total_);

  // Σ f log2 f over the heavy residents...
  double sum = 0.0;
  for (const auto& b : buckets_) {
    if (b.pvote > 0) {
      const double f = static_cast<double>(b.pvote + (b.flag ? light_.query(b.key) : 0));
      sum += xlog2x(f);
    }
  }
  // ...plus the light part: each nonzero row-0 counter value v is treated
  // as one flow of size v (ElasticSketch's flow-size-distribution proxy).
  // Hash collisions merge mice into one bigger pseudo-flow, so the proxy
  // and the entropy drift as the flow count grows.
  for (std::int64_t c : light_.matrix().row(0)) {
    if (c > 0) sum += xlog2x(static_cast<double>(c));
  }
  double h = std::log2(m) - sum / m;
  return std::max(h, 0.0);
}

}  // namespace nitro::baseline
