// NetFlow/sFlow-style uniform packet sampling with a flow cache (§7.4).
//
// Every packet is kept with probability `rate`; kept packets insert/bump
// an exact flow-cache entry.  Estimates are scaled by 1/rate.  Memory
// grows with the number of *sampled distinct flows*, which is what makes
// NetFlow at rate 0.01 far more memory-hungry than NitroSketch at the
// same sampling rate (Figure 13b), while recall of mid-sized heavy
// hitters suffers on heavy-tailed traces (Figure 15).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"
#include "common/geometric.hpp"

namespace nitro::baseline {

class NetFlowSampler {
 public:
  NetFlowSampler(double rate, std::uint64_t seed)
      : rate_(rate), geo_(rate, seed) {
    skip_ = geo_.next() - 1;
  }

  void update(const FlowKey& key, std::int64_t count = 1) {
    total_ += count;
    if (skip_ > 0) {
      --skip_;
      return;
    }
    skip_ = geo_.next() - 1;
    cache_[key] += count;
    ++sampled_;
  }

  /// Scaled estimate of a flow's packet count.
  std::int64_t query(const FlowKey& key) const {
    auto it = cache_.find(key);
    if (it == cache_.end()) return 0;
    return static_cast<std::int64_t>(static_cast<double>(it->second) / rate_ + 0.5);
  }

  /// Largest flows by scaled estimate.
  std::vector<std::pair<FlowKey, std::int64_t>> top_k(std::size_t k) const;

  double rate() const noexcept { return rate_; }
  std::uint64_t sampled_packets() const noexcept { return sampled_; }
  std::int64_t total() const noexcept { return total_; }
  std::size_t cache_entries() const noexcept { return cache_.size(); }

  /// Flow-cache memory: per-entry key + counter + hash-table overhead
  /// (pointers + bucket array), mirroring a production flow cache record.
  std::size_t memory_bytes() const noexcept {
    constexpr std::size_t kPerEntry = sizeof(FlowKey) + sizeof(std::int64_t) + 32;
    return cache_.size() * kPerEntry;
  }

 private:
  double rate_;
  GeometricSampler geo_;  // geometric skips == per-packet Bernoulli(rate)
  std::uint64_t skip_ = 0;
  std::uint64_t sampled_ = 0;
  std::int64_t total_ = 0;
  std::unordered_map<FlowKey, std::int64_t> cache_;
};

}  // namespace nitro::baseline
