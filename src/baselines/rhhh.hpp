// R-HHH — Randomized Hierarchical Heavy Hitters (Ben Basat et al.,
// SIGCOMM 2017), the paper's Table 1 "fast but task-specific" baseline.
//
// The deterministic HHH algorithm updates one Space-Saving instance per
// prefix level of the source-IP hierarchy (O(H) per packet).  R-HHH picks
// ONE random level per packet and updates only it, recovering the HHH set
// at query time by scaling estimates by H.  O(1) per packet, robust for
// HHH — but, as the paper stresses, it answers only this one task.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "common/rng.hpp"
#include "sketch/space_saving.hpp"

namespace nitro::baseline {

class Rhhh {
 public:
  /// Byte-granularity source-IP hierarchy: levels /32, /24, /16, /8.
  static constexpr std::uint32_t kLevels = 4;

  struct Hhh {
    std::uint32_t prefix;       // network-order prefix bits
    std::uint32_t prefix_len;   // 8/16/24/32
    std::int64_t estimate;
  };

  Rhhh(std::size_t counters_per_level, std::uint64_t seed)
      : rng_(mix64(seed ^ 0x4444ULL)) {
    levels_.reserve(kLevels);
    for (std::uint32_t i = 0; i < kLevels; ++i) {
      levels_.emplace_back(counters_per_level);
    }
  }

  /// O(1): one level drawn uniformly, one Space-Saving update.
  void update(const FlowKey& key, std::int64_t count = 1) {
    ++packets_;
    const std::uint32_t level = rng_.next_below(kLevels);
    levels_[level].update(generalize(key, level), count);
  }

  /// Estimated count of a specific prefix (scaled by the level fan-out).
  std::int64_t query(std::uint32_t prefix, std::uint32_t prefix_len) const {
    const std::uint32_t level = level_of(prefix_len);
    FlowKey k;
    k.src_ip = prefix & mask_of(prefix_len);
    return levels_[level].query(k) * static_cast<std::int64_t>(kLevels);
  }

  /// Hierarchical heavy hitters above `fraction` of the traffic: for each
  /// level, prefixes whose *conditioned* count (minus descendant HHHs)
  /// crosses the threshold.
  std::vector<Hhh> hierarchical_heavy_hitters(double fraction) const {
    const auto threshold = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(fraction * static_cast<double>(packets_)));
    std::vector<Hhh> out;
    std::vector<Hhh> deeper;  // HHHs from more-specific levels
    for (std::uint32_t level = 0; level < kLevels; ++level) {  // /32 first
      const std::uint32_t plen = 32 - 8 * level;
      std::vector<Hhh> found_here;
      for (const auto& [key, count] :
           levels_[level].heavy_hitters(1)) {
        std::int64_t est = count * static_cast<std::int64_t>(kLevels);
        // Condition on already-reported descendants (standard HHH
        // discounting: a /16 is only interesting beyond its heavy /24s).
        for (const auto& d : deeper) {
          if (d.prefix_len > plen &&
              (d.prefix & mask_of(plen)) == (key.src_ip & mask_of(plen))) {
            est -= d.estimate;
          }
        }
        if (est >= threshold) {
          found_here.push_back({key.src_ip & mask_of(plen), plen, est});
        }
      }
      out.insert(out.end(), found_here.begin(), found_here.end());
      deeper.insert(deeper.end(), found_here.begin(), found_here.end());
    }
    return out;
  }

  std::uint64_t packets() const noexcept { return packets_; }
  const sketch::SpaceSaving& level(std::uint32_t i) const { return levels_[i]; }

 private:
  static constexpr std::uint32_t mask_of(std::uint32_t prefix_len) {
    return prefix_len == 0 ? 0u
                           : (prefix_len >= 32 ? 0xffffffffu
                                               : ~((1u << (32 - prefix_len)) - 1u));
  }

  /// level 0 = /32 ... level 3 = /8.
  static constexpr std::uint32_t level_of(std::uint32_t prefix_len) {
    return (32 - prefix_len) / 8;
  }

  /// Generalize the flow to the level's prefix (non-source fields zeroed).
  static FlowKey generalize(const FlowKey& key, std::uint32_t level) {
    FlowKey out;
    out.src_ip = key.src_ip & mask_of(32 - 8 * level);
    return out;
  }

  Pcg32 rng_;
  std::vector<sketch::SpaceSaving> levels_;
  std::uint64_t packets_ = 0;
};

}  // namespace nitro::baseline
