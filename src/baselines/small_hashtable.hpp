// Small-hash-table monitoring (Alipourfard et al., HotNets'15 / SOSR'18).
//
// Keeps an exact per-flow counter table, betting on workload skew to keep
// it small and cache-resident.  Open addressing with linear probing; the
// table is sized for the expected flow count, so throughput degrades as
// the working set leaves the LLC (reproduced in Figure 3a) — exactly the
// robustness criticism the paper levels at this design.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "common/math_util.hpp"

namespace nitro::baseline {

class SmallHashTable {
 public:
  /// Sized with 2x headroom over the expected flow count.
  explicit SmallHashTable(std::size_t expected_flows) {
    capacity_ = next_pow2(std::max<std::uint64_t>(expected_flows * 2, 16));
    mask_ = capacity_ - 1;
    slots_.resize(capacity_);
  }

  void update(const FlowKey& key, std::int64_t count = 1) {
    total_ += count;
    const std::uint64_t digest = flow_digest(key);
    std::size_t idx = digest & mask_;
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      Slot& s = slots_[idx];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.count = count;
        ++size_;
        return;
      }
      if (s.key == key) {
        s.count += count;
        return;
      }
      idx = (idx + 1) & mask_;
    }
    ++dropped_;  // table full: the skew assumption failed
  }

  std::int64_t query(const FlowKey& key) const {
    const std::uint64_t digest = flow_digest(key);
    std::size_t idx = digest & mask_;
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const Slot& s = slots_[idx];
      if (!s.used) return 0;
      if (s.key == key) return s.count;
      idx = (idx + 1) & mask_;
    }
    return 0;
  }

  std::vector<std::pair<FlowKey, std::int64_t>> entries() const {
    std::vector<std::pair<FlowKey, std::int64_t>> out;
    out.reserve(size_);
    for (const auto& s : slots_) {
      if (s.used) out.emplace_back(s.key, s.count);
    }
    return out;
  }

  std::size_t size() const noexcept { return size_; }
  std::int64_t total() const noexcept { return total_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t memory_bytes() const noexcept { return capacity_ * sizeof(Slot); }

 private:
  struct Slot {
    FlowKey key;
    std::int64_t count = 0;
    bool used = false;
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::int64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace nitro::baseline
