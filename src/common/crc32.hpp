// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for snapshot and
// checkpoint integrity.  Table-driven, one byte per step — this runs on
// control-plane buffers (epoch snapshots, checkpoint frames), never on the
// per-packet path, so portability beats peak throughput here.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace nitro {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC-32 of `data`.  Pass a previous result as `seed` to checksum a
/// buffer in chunks: crc32(b) == crc32(b2, crc32(b1)) for b = b1 || b2.
inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0) noexcept {
  std::uint32_t c = ~seed;
  for (std::uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace nitro
