#include "common/simd_hash.hpp"

#include <cstring>

#include "common/hash.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace nitro {

#if defined(__AVX2__)

namespace {

constexpr std::uint32_t kP32_1 = 0x9E3779B1u;
constexpr std::uint32_t kP32_3 = 0xC2B2AE3Du;
constexpr std::uint32_t kP32_4 = 0x27D4EB2Fu;
constexpr std::uint32_t kP32_5 = 0x165667B1u;

inline __m256i rotl32x8(__m256i v, int r) {
  return _mm256_or_si256(_mm256_slli_epi32(v, r), _mm256_srli_epi32(v, 32 - r));
}

/// Gathers the same dword (offset `byte_off`) of each of the 8 keys.
inline __m256i gather_dword(const FlowKey keys[8], std::size_t byte_off) {
  alignas(32) std::uint32_t lanes[8];
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&lanes[i], reinterpret_cast<const std::uint8_t*>(&keys[i]) + byte_off,
                sizeof(std::uint32_t));
  }
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

}  // namespace

void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept {
  static_assert(sizeof(FlowKey) == 13);
  // len = 13 < 16: xxHash32 takes the short-input path —
  //   h = seed + P5 + len; three 4-byte rounds; one 1-byte round; avalanche.
  __m256i h = _mm256_set1_epi32(static_cast<int>(seed + kP32_5 + 13));

  const __m256i p3 = _mm256_set1_epi32(static_cast<int>(kP32_3));
  const __m256i p4 = _mm256_set1_epi32(static_cast<int>(kP32_4));
  const __m256i p1 = _mm256_set1_epi32(static_cast<int>(kP32_1));
  const __m256i p5 = _mm256_set1_epi32(static_cast<int>(kP32_5));

  for (std::size_t off = 0; off + 4 <= sizeof(FlowKey); off += 4) {
    const __m256i w = gather_dword(keys, off);
    h = _mm256_add_epi32(h, _mm256_mullo_epi32(w, p3));
    h = _mm256_mullo_epi32(rotl32x8(h, 17), p4);
  }
  {  // tail byte (offset 12)
    alignas(32) std::uint32_t lanes[8];
    for (int i = 0; i < 8; ++i) {
      lanes[i] = reinterpret_cast<const std::uint8_t*>(&keys[i])[12];
    }
    const __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    h = _mm256_add_epi32(h, _mm256_mullo_epi32(b, p5));
    h = _mm256_mullo_epi32(rotl32x8(h, 11), p1);
  }

  // Avalanche: h ^= h>>15; h *= P2; h ^= h>>13; h *= P3; h ^= h>>16.
  const __m256i p2 = _mm256_set1_epi32(static_cast<int>(0x85EBCA77u));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 15));
  h = _mm256_mullo_epi32(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 13));
  h = _mm256_mullo_epi32(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), h);
}

bool simd_hash_available() noexcept { return true; }

#else  // !__AVX2__

void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = xxhash32(&keys[i], sizeof(FlowKey), seed);
  }
}

bool simd_hash_available() noexcept { return false; }

#endif

}  // namespace nitro
