#include "common/simd_hash.hpp"

#include <cstring>

#include "common/hash.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace nitro {

#if defined(__AVX2__)

namespace {

constexpr std::uint32_t kP32_1 = 0x9E3779B1u;
constexpr std::uint32_t kP32_3 = 0xC2B2AE3Du;
constexpr std::uint32_t kP32_4 = 0x27D4EB2Fu;
constexpr std::uint32_t kP32_5 = 0x165667B1u;

inline __m256i rotl32x8(__m256i v, int r) {
  return _mm256_or_si256(_mm256_slli_epi32(v, r), _mm256_srli_epi32(v, 32 - r));
}

/// Gathers the same dword (offset `byte_off`) of each of the 8 keys.
inline __m256i gather_dword(const FlowKey keys[8], std::size_t byte_off) {
  alignas(32) std::uint32_t lanes[8];
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&lanes[i], reinterpret_cast<const std::uint8_t*>(&keys[i]) + byte_off,
                sizeof(std::uint32_t));
  }
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

}  // namespace

void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept {
  static_assert(sizeof(FlowKey) == 13);
  // len = 13 < 16: xxHash32 takes the short-input path —
  //   h = seed + P5 + len; three 4-byte rounds; one 1-byte round; avalanche.
  __m256i h = _mm256_set1_epi32(static_cast<int>(seed + kP32_5 + 13));

  const __m256i p3 = _mm256_set1_epi32(static_cast<int>(kP32_3));
  const __m256i p4 = _mm256_set1_epi32(static_cast<int>(kP32_4));
  const __m256i p1 = _mm256_set1_epi32(static_cast<int>(kP32_1));
  const __m256i p5 = _mm256_set1_epi32(static_cast<int>(kP32_5));

  for (std::size_t off = 0; off + 4 <= sizeof(FlowKey); off += 4) {
    const __m256i w = gather_dword(keys, off);
    h = _mm256_add_epi32(h, _mm256_mullo_epi32(w, p3));
    h = _mm256_mullo_epi32(rotl32x8(h, 17), p4);
  }
  {  // tail byte (offset 12)
    alignas(32) std::uint32_t lanes[8];
    for (int i = 0; i < 8; ++i) {
      lanes[i] = reinterpret_cast<const std::uint8_t*>(&keys[i])[12];
    }
    const __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    h = _mm256_add_epi32(h, _mm256_mullo_epi32(b, p5));
    h = _mm256_mullo_epi32(rotl32x8(h, 11), p1);
  }

  // Avalanche: h ^= h>>15; h *= P2; h ^= h>>13; h *= P3; h ^= h>>16.
  const __m256i p2 = _mm256_set1_epi32(static_cast<int>(0x85EBCA77u));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 15));
  h = _mm256_mullo_epi32(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 13));
  h = _mm256_mullo_epi32(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), h);
}

namespace {

constexpr std::uint64_t kP64_1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP64_2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP64_3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP64_4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP64_5 = 0x27D4EB2F165667C5ULL;

inline __m256i rotl64x4(__m256i v, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(v, r), _mm256_srli_epi64(v, 64 - r));
}

/// Full 64-bit lane-wise multiply.  AVX2 has no _mm256_mullo_epi64, so the
/// low 64 bits are assembled from 32x32 partial products:
///   lo(a*b) = lo32(a)*lo32(b) + ((hi32(a)*lo32(b) + lo32(a)*hi32(b)) << 32).
inline __m256i mullo64x4(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Gathers the same qword (offset `byte_off`, 8 readable bytes) of 4 keys.
inline __m256i gather_qword4(const FlowKey* keys, std::size_t byte_off) {
  alignas(32) std::uint64_t lanes[4];
  for (int i = 0; i < 4; ++i) {
    std::memcpy(&lanes[i], reinterpret_cast<const std::uint8_t*>(&keys[i]) + byte_off,
                sizeof(std::uint64_t));
  }
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

/// xxHash64 of 4 contiguous 13-byte keys, one per 64-bit lane.
__m256i xxh64_13bytes_x4(const FlowKey* keys, std::uint64_t seed) {
  static_assert(sizeof(FlowKey) == 13);
  const __m256i p1 = _mm256_set1_epi64x(static_cast<long long>(kP64_1));
  const __m256i p2 = _mm256_set1_epi64x(static_cast<long long>(kP64_2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<long long>(kP64_3));
  const __m256i p4 = _mm256_set1_epi64x(static_cast<long long>(kP64_4));
  const __m256i p5 = _mm256_set1_epi64x(static_cast<long long>(kP64_5));

  // len = 13 < 32: the scalar short path is h = seed + P5 + len, then one
  // 8-byte round, one 4-byte round, one tail byte, avalanche.
  __m256i h = _mm256_set1_epi64x(static_cast<long long>(seed + kP64_5 + 13));

  {  // 8-byte round: h ^= round64(0, k); h = rotl(h,27)*P1 + P4.
    const __m256i k = gather_qword4(keys, 0);
    const __m256i r = mullo64x4(rotl64x4(mullo64x4(k, p2), 31), p1);
    h = _mm256_xor_si256(h, r);
    h = _mm256_add_epi64(mullo64x4(rotl64x4(h, 27), p1), p4);
  }
  {  // 4-byte round on the dword at offset 8 (zero-extended to 64 bits).
    alignas(32) std::uint64_t lanes[4];
    for (int i = 0; i < 4; ++i) {
      std::uint32_t w;
      std::memcpy(&w, reinterpret_cast<const std::uint8_t*>(&keys[i]) + 8, sizeof w);
      lanes[i] = w;
    }
    const __m256i k = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    h = _mm256_xor_si256(h, mullo64x4(k, p1));
    h = _mm256_add_epi64(mullo64x4(rotl64x4(h, 23), p2), p3);
  }
  {  // tail byte (offset 12): h ^= b*P5; h = rotl(h,11)*P1.
    alignas(32) std::uint64_t lanes[4];
    for (int i = 0; i < 4; ++i) {
      lanes[i] = reinterpret_cast<const std::uint8_t*>(&keys[i])[12];
    }
    const __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    h = _mm256_xor_si256(h, mullo64x4(b, p5));
    h = mullo64x4(rotl64x4(h, 11), p1);
  }

  // Avalanche: h ^= h>>33; h *= P2; h ^= h>>29; h *= P3; h ^= h>>32.
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = mullo64x4(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
  h = mullo64x4(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
  return h;
}

}  // namespace

void xxhash64_x8_flowkeys(const FlowKey keys[8], std::uint64_t seed,
                          std::uint64_t out[8]) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), xxh64_13bytes_x4(keys, seed));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                      xxh64_13bytes_x4(keys + 4, seed));
}

bool simd_hash_available() noexcept { return true; }

#else  // !__AVX2__ (scalar fallback lanes)

void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = xxhash32(&keys[i], sizeof(FlowKey), seed);
  }
}

void xxhash64_x8_flowkeys(const FlowKey keys[8], std::uint64_t seed,
                          std::uint64_t out[8]) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = xxhash64(&keys[i], sizeof(FlowKey), seed);
  }
}

bool simd_hash_available() noexcept { return false; }

#endif

namespace {

/// CPUID says the cores can run the AVX-512 kernel (F for the registers,
/// DQ for vpmullq).  Cached: cpu_supports compiles to a flag test but the
/// call sits on a per-flush path.
bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool ok =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq");
  return ok;
#else
  return false;
#endif
}

}  // namespace

void xxhash64_x16_flowkeys(const FlowKey keys[16], std::uint64_t seed,
                           std::uint64_t out[16]) noexcept {
  if (detail::avx512_kernel_compiled() && cpu_has_avx512()) {
    detail::xxhash64_x16_flowkeys_avx512(keys, seed, out);
    return;
  }
  xxhash64_x8_flowkeys(keys, seed, out);
  xxhash64_x8_flowkeys(keys + 8, seed, out + 8);
}

SimdIsa simd_isa() noexcept {
  if (detail::avx512_kernel_compiled() && cpu_has_avx512()) return SimdIsa::kAvx512;
  if (simd_hash_available()) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
}

const char* simd_isa_name() noexcept {
  switch (simd_isa()) {
    case SimdIsa::kAvx512: return "avx512";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kScalar: return "scalar";
  }
  return "scalar";
}

std::size_t simd_digest_batch() noexcept {
  return simd_isa() == SimdIsa::kAvx512 ? 16 : 8;
}

}  // namespace nitro
