// Geometric sampling (paper Idea B).
//
// Instead of flipping a Bernoulli(p) coin per counter array, NitroSketch
// draws a single Geometric(p) variable telling it how many (packet, row)
// slots to skip until the next update.  The two processes are
// mathematically equivalent but the geometric draw amortizes the PRNG cost
// over 1/p slots.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace nitro {

/// Draws Geometric(p) variables on {1, 2, 3, ...}: the index of the first
/// success in a Bernoulli(p) sequence.  Uses the inversion method
///   G = 1 + floor(ln(U) / ln(1 - p)),  U ~ Uniform(0, 1],
/// which costs one PRNG draw and one log per sample.
class GeometricSampler {
 public:
  GeometricSampler(double p, std::uint64_t seed) : rng_(seed) { set_probability(p); }

  /// Changes the success probability; used by the adaptive modes when the
  /// sampling rate is re-tuned at an epoch boundary.
  void set_probability(double p) {
    p_ = p;
    // Degenerate endpoints: p >= 1 always succeeds, and the log recurrence
    // below would divide by log(0).
    if (p_ >= 1.0) {
      inv_log1p_ = 0.0;
    } else {
      inv_log1p_ = 1.0 / std::log1p(-p_);
    }
  }

  double probability() const noexcept { return p_; }

  /// Next inter-arrival gap (>= 1).
  std::uint64_t next() {
    if (p_ >= 1.0) return 1;
    double u = rng_.next_double_open0();
    double g = 1.0 + std::floor(std::log(u) * inv_log1p_);
    // Guard against pathological rounding for u ~ 1.0 or tiny p.
    if (g < 1.0) return 1;
    if (g > 1e18) return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(g);
  }

 private:
  Pcg32 rng_;
  double p_ = 1.0;
  double inv_log1p_ = 0.0;  // 1 / ln(1-p)
};

}  // namespace nitro
