// Flow identifiers.  Sketches in this repository key on the classic
// 5-tuple (src/dst IPv4 address, src/dst transport port, IP protocol),
// packed into a 13-byte trivially-copyable struct so it can be hashed and
// copied with plain memory operations.
#pragma once

#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/hash.hpp"

namespace nitro {

#pragma pack(push, 1)
/// IPv4 5-tuple flow key.  Packed to 13 bytes; field order matches the
/// common on-wire extraction order.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};
#pragma pack(pop)

static_assert(sizeof(FlowKey) == 13, "FlowKey must be a packed 13-byte 5-tuple");

/// Fixed seed of flow_digest(); exposed so the batched AVX2 digest kernel
/// (common/simd_hash.hpp) provably hashes with the same function.
inline constexpr std::uint64_t kFlowDigestSeed = 0x9c0ffee5u;

/// Stable 64-bit digest of a flow key (xxHash64 with a fixed seed); used
/// by hash-map baselines and the exact-match cache.
inline std::uint64_t flow_digest(const FlowKey& k) noexcept {
  return xxhash64(&k, sizeof k, kFlowDigestSeed);
}

/// Human-readable "a.b.c.d:p -> a.b.c.d:p/proto" form for logs and examples.
std::string to_string(const FlowKey& k);

}  // namespace nitro

template <>
struct std::hash<nitro::FlowKey> {
  std::size_t operator()(const nitro::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(nitro::flow_digest(k));
  }
};
