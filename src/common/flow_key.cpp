#include "common/flow_key.hpp"

#include <cstdio>

namespace nitro {

namespace {
void format_ip(char* buf, std::size_t n, std::uint32_t ip) {
  std::snprintf(buf, n, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
}
}  // namespace

std::string to_string(const FlowKey& k) {
  char src[16];
  char dst[16];
  format_ip(src, sizeof src, k.src_ip);
  format_ip(dst, sizeof dst, k.dst_ip);
  char out[64];
  std::snprintf(out, sizeof out, "%s:%u -> %s:%u/%u", src, k.src_port, dst, k.dst_port,
                k.proto);
  return out;
}

}  // namespace nitro
