// SIMD (AVX2) batched hashing — paper Idea D.
//
// Eight 13-byte flow keys are hashed with xxHash32 in parallel: one AVX2
// lane per key, the whole mixing chain kept in YMM registers.  Falls back
// to the scalar implementation when AVX2 is not compiled in.  Produces
// bit-identical results to nitro::xxhash32 (verified in tests).
#pragma once

#include <cstdint>

#include "common/flow_key.hpp"

namespace nitro {

/// Hash 8 contiguous flow keys with xxHash32(seed); out[i] corresponds to
/// keys[i].  Results match xxhash32(&keys[i], sizeof(FlowKey), seed).
void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept;

/// Hash 8 contiguous flow keys with xxHash64(seed); out[i] corresponds to
/// keys[i].  Results match xxhash64(&keys[i], sizeof(FlowKey), seed).  The
/// AVX2 path keeps four 64-bit lanes per YMM register (two registers for
/// the batch) and emulates the missing 64-bit vector multiply with
/// 32x32-bit partial products.
void xxhash64_x8_flowkeys(const FlowKey keys[8], std::uint64_t seed,
                          std::uint64_t out[8]) noexcept;

/// Batched flow_digest(): out[i] == flow_digest(keys[i]).  This is the
/// kernel BufferedUpdater::flush feeds full batches of 8 through (Idea D:
/// the hash mixing chains of a batch run in parallel lanes).
inline void flow_digest_x8(const FlowKey keys[8], std::uint64_t out[8]) noexcept {
  xxhash64_x8_flowkeys(keys, kFlowDigestSeed, out);
}

/// True when the build carries the AVX2 code path (informational; the
/// function above is always correct either way).
bool simd_hash_available() noexcept;

}  // namespace nitro
