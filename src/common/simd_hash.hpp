// SIMD batched hashing — paper Idea D.
//
// Flow keys are hashed with xxHash in parallel lanes, the whole mixing
// chain kept in vector registers.  Three tiers, all bit-identical to the
// scalar nitro::xxhash32/xxhash64 (verified in tests):
//   x8  — AVX2, one YMM lane per key (compile-time: -mavx2)
//   x16 — AVX-512F/DQ, one ZMM lane per key, runtime-dispatched: the
//         binary carries the kernel whenever the compiler can target
//         AVX-512, and falls back to two x8 calls (or scalar lanes) on
//         hardware without it
// The active tier is reported by simd_isa(); BufferedUpdater sizes its
// digest batch from simd_digest_batch() so the widest available kernel is
// the one full groups flow through.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/flow_key.hpp"

namespace nitro {

/// Hash 8 contiguous flow keys with xxHash32(seed); out[i] corresponds to
/// keys[i].  Results match xxhash32(&keys[i], sizeof(FlowKey), seed).
void xxhash32_x8_flowkeys(const FlowKey keys[8], std::uint32_t seed,
                          std::uint32_t out[8]) noexcept;

/// Hash 8 contiguous flow keys with xxHash64(seed); out[i] corresponds to
/// keys[i].  Results match xxhash64(&keys[i], sizeof(FlowKey), seed).  The
/// AVX2 path keeps four 64-bit lanes per YMM register (two registers for
/// the batch) and emulates the missing 64-bit vector multiply with
/// 32x32-bit partial products.
void xxhash64_x8_flowkeys(const FlowKey keys[8], std::uint64_t seed,
                          std::uint64_t out[8]) noexcept;

/// Hash 16 contiguous flow keys with xxHash64(seed).  Runtime-dispatched:
/// on AVX-512F/DQ hardware (when the build carries the kernel) the batch
/// runs eight 64-bit lanes per ZMM register with native vpmullq; otherwise
/// it decomposes into two x8 calls.  Always bit-identical to the scalar
/// xxhash64 per lane.
void xxhash64_x16_flowkeys(const FlowKey keys[16], std::uint64_t seed,
                           std::uint64_t out[16]) noexcept;

/// Batched flow_digest(): out[i] == flow_digest(keys[i]).  This is the
/// kernel BufferedUpdater::flush feeds full batches of 8 through (Idea D:
/// the hash mixing chains of a batch run in parallel lanes).
inline void flow_digest_x8(const FlowKey keys[8], std::uint64_t out[8]) noexcept {
  xxhash64_x8_flowkeys(keys, kFlowDigestSeed, out);
}

/// Widened batched flow_digest(): out[i] == flow_digest(keys[i]) for 16
/// keys.  Full 16-groups of BufferedUpdater flow through this on AVX-512
/// hardware.
inline void flow_digest_x16(const FlowKey keys[16], std::uint64_t out[16]) noexcept {
  xxhash64_x16_flowkeys(keys, kFlowDigestSeed, out);
}

/// True when the build carries the AVX2 code path (informational; the
/// functions above are always correct either way).
bool simd_hash_available() noexcept;

/// The widest batched-hash tier usable on THIS machine with THIS binary
/// (build capability AND runtime CPUID agree).
enum class SimdIsa { kScalar, kAvx2, kAvx512 };
SimdIsa simd_isa() noexcept;

/// "scalar" | "avx2" | "avx512" — stamped into bench JSON sidecars so
/// recorded numbers are attributable to the kernel that produced them.
const char* simd_isa_name() noexcept;

/// Digest batch width the widest available kernel wants (16 on AVX-512,
/// 8 otherwise).  BufferedUpdater's auto width.
std::size_t simd_digest_batch() noexcept;

namespace detail {
/// AVX-512 kernel entry (only defined when the build carries it); callers
/// go through xxhash64_x16_flowkeys, which owns the runtime dispatch.
void xxhash64_x16_flowkeys_avx512(const FlowKey keys[16], std::uint64_t seed,
                                  std::uint64_t out[16]) noexcept;
bool avx512_kernel_compiled() noexcept;
}  // namespace detail

}  // namespace nitro
