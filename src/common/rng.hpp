// Small, fast pseudo-random generators used by samplers and workload
// generators.  All generators are deterministic from their seed so every
// experiment in the repository is reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace nitro {

/// SplitMix64 — used to seed other generators and as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (pcg_xsh_rr_64_32) — the repository's default RNG.  Satisfies the
/// UniformRandomBitGenerator requirements so it plugs into <random>.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0x14057b7ef767814fULL) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  std::uint32_t next() noexcept {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  std::uint32_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double next_double_open0() noexcept {
    return (static_cast<double>(next()) + 1.0) * (1.0 / 4294967296.0);
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint32_t next_below(std::uint32_t bound) noexcept {
    auto m = static_cast<std::uint64_t>(next()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// 64-bit draw composed of two 32-bit outputs.
  std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace nitro
