// Fast non-cryptographic hashing for sketch row indexing.
//
// The paper's implementation uses the xxHash library; we reimplement
// xxHash32 and xxHash64 from the published specification so the repository
// has no external dependencies.  Both functions are deterministic,
// seedable, and match the reference test vectors (see tests/common).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace nitro {

/// xxHash32 of an arbitrary byte buffer.
std::uint32_t xxhash32(const void* data, std::size_t len, std::uint32_t seed) noexcept;

/// xxHash64 of an arbitrary byte buffer.
std::uint64_t xxhash64(const void* data, std::size_t len, std::uint64_t seed) noexcept;

inline std::uint32_t xxhash32(std::string_view s, std::uint32_t seed) noexcept {
  return xxhash32(s.data(), s.size(), seed);
}

inline std::uint64_t xxhash64(std::string_view s, std::uint64_t seed) noexcept {
  return xxhash64(s.data(), s.size(), seed);
}

/// Convenience overload for hashing a trivially-copyable value.
template <typename T>
std::uint32_t xxhash32_value(const T& v, std::uint32_t seed) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return xxhash32(&v, sizeof(T), seed);
}

template <typename T>
std::uint64_t xxhash64_value(const T& v, std::uint64_t seed) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return xxhash64(&v, sizeof(T), seed);
}

/// Hash eight fixed-size keys with distinct per-lane data in one call.
/// This is the batch entry point used by the buffered/SIMD update path
/// (paper Idea D): hashing several pending flow keys back to back keeps
/// the mixing state in registers and lets the compiler vectorize.
void xxhash32_batch8(const void* const keys[8], std::size_t len, std::uint32_t seed,
                     std::uint32_t out[8]) noexcept;

/// SplitMix64 finalizer — cheap integer mixer used to derive seeds.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace nitro
