// Pairwise-independent hash families for the sketch rows.
//
// The analysis of NitroSketch (Theorems 1, 2 and 5) requires the row hashes
// h_i : [n] -> [w] and the sign hashes g_i : [n] -> {-1, +1} to be drawn
// from pairwise-independent families.  Simple tabulation hashing is
// 3-independent, cheap (four table lookups + XORs per 32-bit key digest),
// and cache friendly (4 x 256 x 8B = 8KB of tables).
#pragma once

#include <array>
#include <cstdint>

#include "common/flow_key.hpp"
#include "common/rng.hpp"

namespace nitro {

/// Simple tabulation hash over a 64-bit input digest, producing 64 bits.
class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& table : tables_) {
      for (auto& cell : table) cell = sm.next();
    }
  }

  std::uint64_t operator()(std::uint64_t x) const noexcept {
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

/// Row-index hash h_i : FlowKey -> [width).  The flow key is first reduced
/// to a 64-bit digest (xxHash64), then tabulated; the composition remains
/// pairwise independent over the digests.
class RowHash {
 public:
  RowHash() : RowHash(1, 0) {}
  RowHash(std::uint32_t width, std::uint64_t seed) : tab_(seed), width_(width) {}

  std::uint32_t width() const noexcept { return width_; }

  std::uint32_t operator()(const FlowKey& key) const noexcept {
    return index_of_digest(flow_digest(key));
  }

  std::uint32_t index_of_digest(std::uint64_t digest) const noexcept {
    // Multiply-shift reduction of the tabulated value onto [0, width).
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(tab_(digest)) * width_) >> 64);
  }

 private:
  TabulationHash tab_;
  std::uint32_t width_;
};

/// Sign hash g_i : FlowKey -> {-1, +1} (Count Sketch style).  Constructed
/// with `signed_updates = false` it degenerates to the constant +1, giving
/// the Count-Min / L1 behaviour described under Algorithm 1 line 3.
class SignHash {
 public:
  SignHash() : SignHash(0, true) {}
  SignHash(std::uint64_t seed, bool signed_updates)
      : tab_(mix64(seed ^ 0x5167a11bu)), signed_(signed_updates) {}

  std::int32_t operator()(const FlowKey& key) const noexcept {
    return sign_of_digest(flow_digest(key));
  }

  std::int32_t sign_of_digest(std::uint64_t digest) const noexcept {
    if (!signed_) return +1;
    return (tab_(digest) & 1u) ? +1 : -1;
  }

  bool is_signed() const noexcept { return signed_; }

 private:
  TabulationHash tab_;
  bool signed_;
};

/// One-bit level hash used by UnivMon's recursive sub-sampling.
class LevelHash {
 public:
  explicit LevelHash(std::uint64_t seed) : tab_(mix64(seed ^ 0x1e7e1b17ULL)) {}

  bool operator()(const FlowKey& key) const noexcept {
    return tab_(flow_digest(key)) & 1u;
  }

 private:
  TabulationHash tab_;
};

}  // namespace nitro
