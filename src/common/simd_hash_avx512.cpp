// AVX-512 x16 xxHash64 kernel (one ZMM lane per key, native vpmullq).
//
// Compiled into every binary when the toolchain can target AVX-512F/DQ
// (function-level target attributes — the rest of the build stays -mavx2);
// xxhash64_x16_flowkeys in simd_hash.cpp decides at runtime whether the
// CPU may enter it.  Bit-identical to scalar xxhash64 per lane.
#include "common/simd_hash.hpp"

#include <cstring>

#if defined(NITRO_HAVE_AVX512_BUILD)
#include <immintrin.h>
#endif

namespace nitro::detail {

#if defined(NITRO_HAVE_AVX512_BUILD)

namespace {

constexpr std::uint64_t kP64_1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP64_2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP64_3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP64_4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP64_5 = 0x27D4EB2F165667C5ULL;

#define NITRO_AVX512_FN __attribute__((target("avx512f,avx512dq")))
// The helpers and the per-8-key hash body MUST collapse into one straight
// dependency chain: at -O2 GCC neither unrolls the 8-lane gather loops
// nor inlines a twice-called function on its own, and the rolled loops
// defeat store-to-load forwarding into the 64-byte vector loads — a
// measured 5x slowdown (84 -> 430 Mkeys/s on Sapphire Rapids).  Force
// both instead of depending on the optimizer level.
#define NITRO_AVX512_INLINE \
  __attribute__((target("avx512f,avx512dq"), always_inline)) inline

NITRO_AVX512_INLINE __m512i rotl64x8(__m512i v, int r) {
  return _mm512_rolv_epi64(v, _mm512_set1_epi64(r));
}

/// Gathers the same qword (offset `byte_off`, 8 readable bytes) of 8 keys.
NITRO_AVX512_INLINE __m512i gather_qword8(const FlowKey* keys,
                                          std::size_t byte_off) {
  alignas(64) std::uint64_t lanes[8];
#pragma GCC unroll 8
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&lanes[i], reinterpret_cast<const std::uint8_t*>(&keys[i]) + byte_off,
                sizeof(std::uint64_t));
  }
  return _mm512_load_si512(lanes);
}

/// xxHash64 of 8 contiguous 13-byte keys, one per 64-bit ZMM lane.  Same
/// short-input structure as the AVX2 xxh64_13bytes_x4, but the 64-bit
/// multiplies are single vpmullq instructions instead of three 32x32
/// partial products.
NITRO_AVX512_INLINE __m512i xxh64_13bytes_x8(const FlowKey* keys,
                                             std::uint64_t seed) {
  static_assert(sizeof(FlowKey) == 13);
  const __m512i p1 = _mm512_set1_epi64(static_cast<long long>(kP64_1));
  const __m512i p2 = _mm512_set1_epi64(static_cast<long long>(kP64_2));
  const __m512i p3 = _mm512_set1_epi64(static_cast<long long>(kP64_3));
  const __m512i p4 = _mm512_set1_epi64(static_cast<long long>(kP64_4));
  const __m512i p5 = _mm512_set1_epi64(static_cast<long long>(kP64_5));

  // len = 13 < 32: h = seed + P5 + len, then one 8-byte round, one 4-byte
  // round, one tail byte, avalanche.
  __m512i h = _mm512_set1_epi64(static_cast<long long>(seed + kP64_5 + 13));

  {  // 8-byte round: h ^= round64(0, k); h = rotl(h,27)*P1 + P4.
    const __m512i k = gather_qword8(keys, 0);
    const __m512i r =
        _mm512_mullo_epi64(rotl64x8(_mm512_mullo_epi64(k, p2), 31), p1);
    h = _mm512_xor_si512(h, r);
    h = _mm512_add_epi64(_mm512_mullo_epi64(rotl64x8(h, 27), p1), p4);
  }
  {  // 4-byte round on the dword at offset 8 (zero-extended to 64 bits).
    alignas(64) std::uint64_t lanes[8];
#pragma GCC unroll 8
    for (int i = 0; i < 8; ++i) {
      std::uint32_t w;
      std::memcpy(&w, reinterpret_cast<const std::uint8_t*>(&keys[i]) + 8, sizeof w);
      lanes[i] = w;
    }
    const __m512i k = _mm512_load_si512(lanes);
    h = _mm512_xor_si512(h, _mm512_mullo_epi64(k, p1));
    h = _mm512_add_epi64(_mm512_mullo_epi64(rotl64x8(h, 23), p2), p3);
  }
  {  // tail byte (offset 12): h ^= b*P5; h = rotl(h,11)*P1.
    alignas(64) std::uint64_t lanes[8];
#pragma GCC unroll 8
    for (int i = 0; i < 8; ++i) {
      lanes[i] = reinterpret_cast<const std::uint8_t*>(&keys[i])[12];
    }
    const __m512i b = _mm512_load_si512(lanes);
    h = _mm512_xor_si512(h, _mm512_mullo_epi64(b, p5));
    h = _mm512_mullo_epi64(rotl64x8(h, 11), p1);
  }

  // Avalanche: h ^= h>>33; h *= P2; h ^= h>>29; h *= P3; h ^= h>>32.
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
  h = _mm512_mullo_epi64(h, p2);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
  h = _mm512_mullo_epi64(h, p3);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 32));
  return h;
}

}  // namespace

NITRO_AVX512_FN
void xxhash64_x16_flowkeys_avx512(const FlowKey keys[16], std::uint64_t seed,
                                  std::uint64_t out[16]) noexcept {
  _mm512_storeu_si512(out, xxh64_13bytes_x8(keys, seed));
  _mm512_storeu_si512(out + 8, xxh64_13bytes_x8(keys + 8, seed));
}

bool avx512_kernel_compiled() noexcept { return true; }

#else  // !NITRO_HAVE_AVX512_BUILD

void xxhash64_x16_flowkeys_avx512(const FlowKey keys[16], std::uint64_t seed,
                                  std::uint64_t out[16]) noexcept {
  // Never reached: dispatch requires avx512_kernel_compiled().  Kept
  // well-defined anyway.
  xxhash64_x8_flowkeys(keys, seed, out);
  xxhash64_x8_flowkeys(keys + 8, seed, out + 8);
}

bool avx512_kernel_compiled() noexcept { return false; }

#endif

}  // namespace nitro::detail
