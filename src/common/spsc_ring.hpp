// Single-producer / single-consumer lock-free ring buffer.
//
// The separate-thread integration (paper §6, "Separate-thread version")
// pushes sampled flow keys from the switch's forwarding thread into a
// shared buffer that a dedicated sketching thread drains.  The paper uses
// moodycamel::ReaderWriterQueue; this is an equivalent bounded SPSC ring
// with acquire/release synchronization and a cached-index optimization to
// avoid cache-line ping-pong on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <vector>

#include "fault/fault.hpp"

namespace nitro {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; the ring holds capacity-1
  /// elements (one slot is sacrificed to distinguish full from empty).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when the ring is full (callers either
  /// spin or, like the AlwaysLineRate integration, drop the sample, which
  /// only costs accuracy, never correctness).
  bool try_push(const T& value) {
    if constexpr (fault::kEnabled) {
      // Overflow-storm injection: a kReject fault makes the ring report
      // full, exercising every caller's overflow policy deterministically.
      if (fault::point(fault::Site::kRingPush, fault_lane_) ==
          fault::Action::kReject) [[unlikely]] {
        return false;
      }
    }
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (next == cached_tail_) return false;
    }
    slots_[head] = value;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side, bulk: enqueue up to `n` items from `items` with one
  /// release store (one reservation for the whole run instead of one per
  /// element).  Returns how many were enqueued — fewer than `n` only when
  /// the ring filled up; the prefix that fit is visible to the consumer.
  std::size_t try_push_bulk(const T* items, std::size_t n) {
    if constexpr (fault::kEnabled) {
      if (fault::point(fault::Site::kRingPush, fault_lane_) ==
          fault::Action::kReject) [[unlikely]] {
        return 0;
      }
    }
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t free = (cached_tail_ - head - 1) & mask_;
    if (free < n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = (cached_tail_ - head - 1) & mask_;
    }
    const std::size_t m = n < free ? n : free;
    for (std::size_t i = 0; i < m; ++i) {
      slots_[(head + i) & mask_] = items[i];
    }
    if (m > 0) head_.store((head + m) & mask_, std::memory_order_release);
    return m;
  }

  /// Consumer side.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = slots_[tail];
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: dequeue up to `max_n` items into `out` with one
  /// release store.  Returns how many were dequeued (0 when empty).
  std::size_t try_pop_bulk(T* out, std::size_t max_n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = (cached_head_ - tail) & mask_;
    if (avail < max_n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = (cached_head_ - tail) & mask_;
    }
    const std::size_t m = max_n < avail ? max_n : avail;
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = slots_[(tail + i) & mask_];
    }
    if (m > 0) tail_.store((tail + m) & mask_, std::memory_order_release);
    return m;
  }

  /// Approximate occupancy (exact only when both threads are quiescent).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

  std::size_t capacity() const { return mask_; }

  /// Lane reported by this ring's fault points (the owning shard's index);
  /// purely diagnostic, set once before producers start.
  void set_fault_lane(std::uint32_t lane) noexcept { fault_lane_ = lane; }

 private:
  // 64B on every mainstream x86/ARM server part; fixed rather than
  // std::hardware_destructive_interference_size to keep the layout ABI-stable.
  static constexpr std::size_t kCacheLine = 64;

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::uint32_t fault_lane_ = 0;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // written by producer
  alignas(kCacheLine) std::size_t cached_tail_ = 0;       // producer-local
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // written by consumer
  alignas(kCacheLine) std::size_t cached_head_ = 0;       // consumer-local
};

}  // namespace nitro
