// EINTR-safe file-descriptor I/O helpers shared by every syscall-level
// reader/writer in the tree (checkpoint files, stats snapshots, export
// sockets).
//
// POSIX read()/write() may transfer fewer bytes than asked and may be
// interrupted by signals; each call site used to re-implement the retry
// loop (and some forgot the short-write case).  These helpers centralize
// the policy: loop until the full count transferred, retry EINTR, report
// EOF and hard errors distinctly.  All header-only so any library can use
// them without a link-order dance.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nitro::io {

/// read() retrying EINTR.  Returns bytes read (0 = EOF) or -1 on error.
inline ssize_t read_some(int fd, void* buf, std::size_t n) noexcept {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Read exactly `n` bytes.  Returns true only when all arrived; false on
/// EOF-before-n or a hard error (a signal mid-read is retried, not failed).
inline bool read_full(int fd, void* buf, std::size_t n) noexcept {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = read_some(fd, p + off, n - off);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

/// Write exactly `n` bytes, retrying EINTR and short writes.
inline bool write_full(int fd, const void* buf, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// send() counterpart for sockets: MSG_NOSIGNAL so a dead peer surfaces as
/// EPIPE instead of killing the process, EINTR and short sends retried.
inline bool send_full(int fd, const void* buf, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// poll() one fd for `events` (POLLIN/POLLOUT), retrying EINTR.  Returns
/// >0 when ready, 0 on timeout, -1 on error.
inline int poll_fd(int fd, short events, int timeout_ms) noexcept {
  struct pollfd pfd{fd, events, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r >= 0 || errno != EINTR) return r;
  }
}

// --- Whole-file helpers (checkpoints, stats snapshots) ----------------------

/// Write `bytes` to `path` and fsync before close.  No atomicity on its
/// own — callers rename a tmp file into place (atomic_write_file below, or
/// CheckpointStore's generation rotation).
inline bool write_file_fsync(const std::string& path,
                             std::span<const std::uint8_t> bytes) noexcept {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (!write_full(fd, bytes.data(), bytes.size())) {
    ::close(fd);
    return false;
  }
  const bool synced = ::fsync(fd) == 0;
  return (::close(fd) == 0) && synced;
}

/// Slurp `path` into `out`.  Returns false when the file cannot be opened
/// or a read fails (out may hold a prefix then; callers treat false as
/// "no file").
inline bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = read_some(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

/// fsync the directory so a just-renamed entry survives a crash.  Best
/// effort: some filesystems refuse directory fsync.
inline void fsync_dir(const std::string& dir) noexcept {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Crash-safe whole-file replace: write `<path>.tmp`, fsync, rename over
/// `path`.  A reader (or a crash at any point) sees either the old
/// complete file or the new complete file, never a torn mix.
inline bool atomic_write_file(const std::string& path,
                              std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  if (!write_file_fsync(tmp, bytes)) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
  return true;
}

}  // namespace nitro::io
