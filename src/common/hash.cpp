#include "common/hash.hpp"

#include <cstring>

namespace nitro {
namespace {

constexpr std::uint32_t kP32_1 = 0x9E3779B1u;
constexpr std::uint32_t kP32_2 = 0x85EBCA77u;
constexpr std::uint32_t kP32_3 = 0xC2B2AE3Du;
constexpr std::uint32_t kP32_4 = 0x27D4EB2Fu;
constexpr std::uint32_t kP32_5 = 0x165667B1u;

constexpr std::uint64_t kP64_1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP64_2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP64_3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP64_4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP64_5 = 0x27D4EB2F165667C5ULL;

inline std::uint32_t rotl32(std::uint32_t x, int r) noexcept {
  return (x << r) | (x >> (32 - r));
}
inline std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

inline std::uint32_t read32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // little-endian hosts only (x86-64)
}
inline std::uint64_t read64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint32_t round32(std::uint32_t acc, std::uint32_t input) noexcept {
  acc += input * kP32_2;
  acc = rotl32(acc, 13);
  acc *= kP32_1;
  return acc;
}

inline std::uint64_t round64(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kP64_2;
  acc = rotl64(acc, 31);
  acc *= kP64_1;
  return acc;
}

inline std::uint64_t merge_round64(std::uint64_t acc, std::uint64_t val) noexcept {
  val = round64(0, val);
  acc ^= val;
  acc = acc * kP64_1 + kP64_4;
  return acc;
}

}  // namespace

std::uint32_t xxhash32(const void* data, std::size_t len, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  std::uint32_t h;

  if (len >= 16) {
    const unsigned char* limit = end - 16;
    std::uint32_t v1 = seed + kP32_1 + kP32_2;
    std::uint32_t v2 = seed + kP32_2;
    std::uint32_t v3 = seed + 0;
    std::uint32_t v4 = seed - kP32_1;
    do {
      v1 = round32(v1, read32(p));
      v2 = round32(v2, read32(p + 4));
      v3 = round32(v3, read32(p + 8));
      v4 = round32(v4, read32(p + 12));
      p += 16;
    } while (p <= limit);
    h = rotl32(v1, 1) + rotl32(v2, 7) + rotl32(v3, 12) + rotl32(v4, 18);
  } else {
    h = seed + kP32_5;
  }

  h += static_cast<std::uint32_t>(len);

  while (p + 4 <= end) {
    h += read32(p) * kP32_3;
    h = rotl32(h, 17) * kP32_4;
    p += 4;
  }
  while (p < end) {
    h += (*p) * kP32_5;
    h = rotl32(h, 11) * kP32_1;
    ++p;
  }

  h ^= h >> 15;
  h *= kP32_2;
  h ^= h >> 13;
  h *= kP32_3;
  h ^= h >> 16;
  return h;
}

std::uint64_t xxhash64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    const unsigned char* limit = end - 32;
    std::uint64_t v1 = seed + kP64_1 + kP64_2;
    std::uint64_t v2 = seed + kP64_2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kP64_1;
    do {
      v1 = round64(v1, read64(p));
      v2 = round64(v2, read64(p + 8));
      v3 = round64(v3, read64(p + 16));
      v4 = round64(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round64(h, v1);
    h = merge_round64(h, v2);
    h = merge_round64(h, v3);
    h = merge_round64(h, v4);
  } else {
    h = seed + kP64_5;
  }

  h += static_cast<std::uint64_t>(len);

  while (p + 8 <= end) {
    h ^= round64(0, read64(p));
    h = rotl64(h, 27) * kP64_1 + kP64_4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kP64_1;
    h = rotl64(h, 23) * kP64_2 + kP64_3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kP64_5;
    h = rotl64(h, 11) * kP64_1;
    ++p;
  }

  h ^= h >> 33;
  h *= kP64_2;
  h ^= h >> 29;
  h *= kP64_3;
  h ^= h >> 32;
  return h;
}

void xxhash32_batch8(const void* const keys[8], std::size_t len, std::uint32_t seed,
                     std::uint32_t out[8]) noexcept {
  // A straight per-lane loop: with -mavx2 the compiler keeps the eight
  // independent mixing chains in vector registers for fixed small `len`.
  for (int i = 0; i < 8; ++i) {
    out[i] = xxhash32(keys[i], len, seed);
  }
}

}  // namespace nitro
