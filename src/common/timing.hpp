// Timing utilities for throughput and CPU-share measurements.
//
// Benchmarks report Mpps / Gbps from wall-clock time, and the Table 2 /
// Figure 10 reproductions report per-component CPU shares from accumulated
// per-stage cycle counts (our stand-in for Intel VTune).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace nitro {

/// Raw CPU timestamp counter; monotonic on modern x86 (constant_tsc).
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates cycles attributed to one pipeline stage.  Scoped guards make
/// the instrumentation hard to misuse.
class CycleAccumulator {
 public:
  class Scope {
   public:
    explicit Scope(CycleAccumulator& acc) noexcept : acc_(acc), start_(rdtsc()) {}
    ~Scope() { acc_.cycles_ += rdtsc() - start_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    CycleAccumulator& acc_;
    std::uint64_t start_;
  };

  Scope scope() noexcept { return Scope(*this); }
  void add(std::uint64_t cycles) noexcept { cycles_ += cycles; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  void reset() noexcept { cycles_ = 0; }

 private:
  std::uint64_t cycles_ = 0;
};

/// Converts a packet count + elapsed seconds to the units the paper plots.
struct Throughput {
  double mpps = 0.0;
  double gbps = 0.0;

  static Throughput from(std::uint64_t packets, std::uint64_t bytes, double seconds) {
    Throughput t;
    if (seconds > 0) {
      t.mpps = static_cast<double>(packets) / seconds / 1e6;
      // Line-rate convention: payload + 20B Ethernet framing overhead
      // (preamble + IFG) so 64B packets at 14.88Mpps == 10GbE.
      t.gbps = (static_cast<double>(bytes) + 20.0 * static_cast<double>(packets)) *
               8.0 / seconds / 1e9;
    }
    return t;
  }
};

}  // namespace nitro
