// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace nitro {

/// Median of a mutable span, partially reordering it in place (no copy —
/// for callers holding their own scratch, e.g. per-query stack buffers).
/// For even sizes the lower-middle element is returned, matching the
/// sketch literature's convention for row medians.
template <typename T>
T median_in_place(std::span<T> values) {
  if (values.empty()) throw std::invalid_argument("median of empty range");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

/// Median of a span (copies; inputs stay untouched).
template <typename T>
T median(std::span<const T> values) {
  std::vector<T> tmp(values.begin(), values.end());
  return median_in_place(std::span<T>(tmp));
}

template <typename T>
T median(const std::vector<T>& values) {
  return median(std::span<const T>(values));
}

inline double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

inline double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

/// Round up to the next power of two (minimum 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

/// Snap a probability into {1, 2^-1, ..., 2^-maxShift} (paper §4.3:
/// AlwaysLineRate chooses p from eight power-of-two rates).
inline double snap_probability_pow2(double p, int max_shift = 7) {
  // A hair of tolerance so measured rates that land exactly on a
  // power-of-two boundary (e.g. 625Kpps/10Mpps = 1/16) snap to it instead
  // of the next smaller rate.
  constexpr double kTol = 1.0 + 1e-4;
  if (p * kTol >= 1.0) return 1.0;
  double snapped = 1.0;
  for (int s = 1; s <= max_shift; ++s) {
    snapped = std::ldexp(1.0, -s);
    if (p * kTol >= snapped) return snapped;
  }
  return snapped;  // 2^-max_shift floor
}

/// x * log2(x) with the streaming convention 0 log 0 = 0.
inline double xlog2x(double x) {
  return x > 0.0 ? x * std::log2(x) : 0.0;
}

}  // namespace nitro
