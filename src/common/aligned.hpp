// Cache-line-aligned storage for hot counter arrays.
//
// CounterMatrix keeps its rows 64-byte aligned and padded to whole cache
// lines so (a) a counter never straddles two lines and (b) the burst
// path's prefetch distance is deterministic (one line per prefetch).  A
// std::allocator drop-in keeps std::vector's value semantics — sketches
// stay copyable/movable, which the shard snapshot machinery relies on.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace nitro {

/// 64B is the destructive-interference line size on every mainstream
/// x86-64/ARM server part (the same constant SpscRing pins down rather
/// than using std::hardware_destructive_interference_size, to keep
/// layouts ABI-stable across toolchains).
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, kCacheLineBytes>>;

}  // namespace nitro
