// Polite busy-wait primitives shared by every thread-coordination loop
// (separate-thread consumer, shard workers, drain barriers).
//
// The policy is bounded backoff: PAUSE-granularity spinning while a
// response is expected within a cache miss or two, escalating to yielding
// the core so an empty ring costs scheduler quanta, not a spinning CPU —
// which matters doubly on machines with fewer cores than threads.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace nitro {

/// One polite busy-wait iteration (PAUSE on x86; plain yield elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Consecutive empty polls tolerated at PAUSE granularity before a
/// waiting thread escalates to yielding the core.
inline constexpr std::uint32_t kSpinsBeforeYield = 64;

/// Stateful helper wrapping the spin-then-yield policy: call wait() once
/// per failed poll, reset() on success.
class BoundedBackoff {
 public:
  void wait() noexcept {
    if (spins_ < kSpinsBeforeYield) {
      ++spins_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 0; }

 private:
  std::uint32_t spins_ = 0;
};

}  // namespace nitro
