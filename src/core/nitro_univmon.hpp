// NitroSketch applied to UnivMon (§6, §8).
//
// Each of UnivMon's L Count-Sketch levels is wrapped in its own Nitro row
// sampler that advances only on the packets belonging to that level's
// substream — exactly "replace each Count Sketch instance in UnivMon with
// NitroSketch".  A packet costs one level hash (trailing-ones selector)
// plus, for each of its ~2 expected member levels, a single geometric
// countdown; counter, heap and further hash work only happens on sampled
// slots.  In AlwaysCorrect mode every level carries its own convergence
// detector (deeper levels see exponentially fewer packets and converge
// later); unconverged levels run vanilla while converged ones sample.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/timing.hpp"
#include "core/convergence.hpp"
#include "core/nitro_config.hpp"
#include "core/rate_controller.hpp"
#include "core/row_sampler.hpp"
#include "sketch/univmon.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::core {

class NitroUnivMon {
 public:
  NitroUnivMon(const sketch::UnivMonConfig& um_cfg, const NitroConfig& cfg,
               std::uint64_t seed = 0x0417c0deULL)
      : um_(um_cfg, seed), cfg_(cfg) {
    SplitMix64 sm(mix64(cfg.seed ^ seed));
    const double p0 = initial_probability(cfg);
    for (std::uint32_t j = 0; j < um_.num_levels(); ++j) {
      samplers_.emplace_back(um_cfg.depth, p0, sm.next());
      detectors_.emplace_back(cfg.epsilon, cfg.probability,
                              cfg.convergence_check_interval,
                              /*signed_rows=*/true, um_cfg.depth);
    }
    rate_ = std::make_unique<RateController>(cfg.target_sampled_rate_pps,
                                             cfg.rate_epoch_ns, cfg.probability);
  }

  /// Bind registry instruments.  The rate controller logs the p timeline,
  /// each level's convergence detector logs its flip tagged with the level
  /// index, and 1-in-1024 packets feed the update-cycle histogram.
  void attach_telemetry(const telemetry::SketchTelemetry& tel) {
    tel_ = tel;
    rate_->attach_telemetry(tel_.events, tel_.probability);
    for (std::uint32_t j = 0; j < detectors_.size(); ++j) {
      detectors_[j].attach_telemetry(tel_.events, j);
    }
    if (tel_.probability) tel_.probability->set(level_probability(0));
    if (tel_.events) {
      tel_.events->append(telemetry::EventKind::kProbabilityChange, 0,
                          level_probability(0));
    }
    publish_telemetry();
  }

  /// Copy internal counters into the bound instruments (epoch boundaries /
  /// export time; the per-packet path never touches an atomic).
  void publish_telemetry() {
    if (tel_.packets) tel_.packets->store(packets_);
    if (tel_.sampled_updates) tel_.sampled_updates->store(sampled_updates_);
    if (tel_.probability) tel_.probability->set(level_probability(0));
  }

  /// Same 1-in-1024 cycle-sampling policy as NitroSketch::update.
  static constexpr std::uint64_t kCycleSampleMask = 1023;

  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t now_ns = 0) {
    if (tel_.update_cycles != nullptr && (packets_ & kCycleSampleMask) == 0)
        [[unlikely]] {
      update_timed(key, count, now_ns);
      return;
    }
    update_impl(key, count, now_ns);
  }

  /// Burst entry point — API parity with NitroSketch::update_burst, so
  /// burst-aware integrations (pipelines, shard workers) can feed either
  /// uniformly.  UnivMon's work is already level-partitioned with a
  /// per-level geometric skip, so this simply forwards per packet.
  void update_burst(std::span<const FlowKey> keys, std::uint64_t now_ns = 0) {
    for (const FlowKey& key : keys) update(key, 1, now_ns);
  }

 private:
#if defined(__GNUC__)
  __attribute__((noinline, cold))
#endif
  void update_timed(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    const std::uint64_t t0 = rdtsc();
    update_impl(key, count, now_ns);
    tel_.update_cycles->observe(rdtsc() - t0);
  }

  void update_impl(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    um_.add_total(count);
    ++packets_;

    if (cfg_.mode == Mode::kAlwaysLineRate && rate_->on_packet(now_ns)) {
      for (auto& s : samplers_) s.set_probability(rate_->probability());
    }

    // One hash decides the deepest level this packet belongs to.
    const std::uint32_t z = um_.level_of(key);

    for (std::uint32_t j = 0; j <= z; ++j) {
      const bool vanilla =
          cfg_.mode == Mode::kVanilla ||
          (cfg_.mode == Mode::kAlwaysCorrect && !detectors_[j].converged());
      if (vanilla) {
        um_.level_sketch_mut(j).update(key, count);
        um_.offer_to_heap(j, key);
        if (cfg_.mode == Mode::kAlwaysCorrect &&
            detectors_[j].on_packet(um_.level_sketch(j).matrix(), now_ns)) {
          samplers_[j].set_probability(cfg_.probability);
        }
        continue;
      }
      // Sampled regime: this level's sampler advances only for its
      // substream (this packet is a member), d slots per packet.
      std::uint32_t rows[64];
      const std::uint32_t n = samplers_[j].rows_for_packet(rows);
      if (n == 0) continue;
      const std::int64_t delta = count * samplers_[j].increment();
      auto& matrix = um_.level_sketch_mut(j).matrix();
      const std::uint64_t digest = flow_digest(key);
      for (std::uint32_t i = 0; i < n; ++i) {
        matrix.update_row_digest(rows[i], digest, delta);
      }
      sampled_updates_ += n;
      um_.offer_to_heap(j, key);
    }
  }

 public:
  // --- Queries (all reuse UnivMon's estimators) ---------------------------
  std::int64_t query(const FlowKey& key) const { return um_.query(key); }
  double estimate_entropy() const { return um_.estimate_entropy(); }
  double estimate_distinct() const { return um_.estimate_distinct(); }
  double estimate_l2() const { return um_.estimate_l2(); }
  std::vector<sketch::TopKHeap::Entry> heavy_hitters(std::int64_t threshold) const {
    return um_.heavy_hitters(threshold);
  }

  const sketch::UnivMon& univmon() const noexcept { return um_; }
  sketch::UnivMon& univmon_mut() noexcept { return um_; }
  std::int64_t total() const noexcept { return um_.total(); }
  /// Construction seed of the underlying UnivMon (generation-derived when
  /// seed rotation is active; see core/seed_schedule.hpp).
  std::uint64_t seed() const noexcept { return um_.seed(); }
  std::uint64_t sampled_updates() const noexcept { return sampled_updates_; }
  std::size_t memory_bytes() const { return um_.memory_bytes(); }

  bool level_converged(std::uint32_t j) const { return detectors_[j].converged(); }

  // --- Shard support (src/shard/) -----------------------------------------

  /// Fold another instance's UnivMon state (level counters, stream total,
  /// per-level heavy keys) into this one.  Both instances must be built
  /// from the same UnivMonConfig and UnivMon seed — the per-level
  /// CounterMatrix merge checks enforce it.  Sampler/convergence state
  /// stays per-instance (it is data-plane, not query, state).
  void merge_from(const NitroUnivMon& other) {
    um_.merge(other.um_);
    sampled_updates_ += other.sampled_updates_;
  }

  /// Reset counters, heaps and the stream total for the next epoch while
  /// keeping samplers, detectors and telemetry bindings.
  void clear() {
    um_.clear();
    packets_ = 0;
    sampled_updates_ = 0;
  }

  /// Effective sampling probability of level j's counter arrays.
  double level_probability(std::uint32_t j) const {
    if (cfg_.mode == Mode::kVanilla) return 1.0;
    if (cfg_.mode == Mode::kAlwaysCorrect && !detectors_[j].converged()) return 1.0;
    return samplers_[j].probability();
  }

  // --- Graceful degradation + checkpoint support --------------------------

  /// Same contract as NitroSketch::apply_degradation, applied to every
  /// level's sampler: p_j = base_j·2^-level floored at kDegradeFloor,
  /// level 0 restores the captured per-level baselines.
  static constexpr double kDegradeFloor = 1.0 / 1024.0;

  void apply_degradation(std::uint32_t level) {
    if (level == 0) {
      if (degrade_level_ != 0) {
        for (std::size_t j = 0; j < samplers_.size(); ++j) {
          samplers_[j].set_probability(degrade_base_[j]);
        }
      }
      degrade_level_ = 0;
      return;
    }
    if (degrade_level_ == 0) {
      degrade_base_.clear();
      for (const auto& s : samplers_) degrade_base_.push_back(s.probability());
    }
    degrade_level_ = level;
    for (std::size_t j = 0; j < samplers_.size(); ++j) {
      const double p = std::ldexp(degrade_base_[j], -static_cast<int>(level));
      samplers_[j].set_probability(p < kDegradeFloor ? kDegradeFloor : p);
    }
  }

  std::uint32_t degrade_level() const noexcept { return degrade_level_; }

  std::uint64_t ingest_packets() const noexcept { return packets_; }

  /// Restore ingestion counters from a checkpoint; the UnivMon levels and
  /// heaps are restored separately through codec load_univmon.
  void set_ingest_counts(std::uint64_t packets, std::uint64_t sampled) noexcept {
    packets_ = packets;
    sampled_updates_ = sampled;
  }

  /// Delta checkpoints: per-segment dirty tracking on every level matrix.
  void enable_dirty_tracking() { um_.enable_dirty_tracking(); }
  bool dirty_tracking() const noexcept { return um_.dirty_tracking(); }
  void clear_dirty() noexcept { um_.clear_dirty(); }

 private:
  static double initial_probability(const NitroConfig& cfg) {
    switch (cfg.mode) {
      case Mode::kVanilla:
      case Mode::kAlwaysLineRate:  // first epoch runs at p = 1
        return 1.0;
      case Mode::kAlwaysCorrect:  // sampled path only serves converged levels
      case Mode::kFixedRate:
        return cfg.probability;
    }
    return 1.0;
  }

  sketch::UnivMon um_;
  NitroConfig cfg_;
  std::vector<RowSampler> samplers_;  // one per level, advanced per member packet
  std::vector<ConvergenceDetector> detectors_;
  std::vector<double> degrade_base_;  // per-level p captured at first degrade
  std::uint32_t degrade_level_ = 0;
  std::unique_ptr<RateController> rate_;
  std::uint64_t sampled_updates_ = 0;
  std::uint64_t packets_ = 0;
  telemetry::SketchTelemetry tel_{};
};

}  // namespace nitro::core
