// Configuration of the NitroSketch framework (paper §4).
#pragma once

#include <cstdint>

namespace nitro::core {

/// Operating modes of Algorithm 1.
enum class Mode {
  /// No sampling: behaves exactly like the wrapped vanilla sketch.
  kVanilla,
  /// Fixed geometric sampling probability (the evaluation's "NitroSketch
  /// w/0.01" configurations use this).
  kFixedRate,
  /// Adapt p to the packet arrival rate every epoch (paper Idea C.1);
  /// converges fast, constant work per time unit.
  kAlwaysLineRate,
  /// Start at p = 1 and switch to sampling once convergence is provable
  /// (paper Idea C.2); accuracy guarantees from the first packet.
  kAlwaysCorrect,
};

struct NitroConfig {
  Mode mode = Mode::kFixedRate;

  /// Sampling probability for kFixedRate, and the floor p_min for the
  /// adaptive modes.  The paper uses p_min = 2^-7.
  double probability = 1.0 / 128.0;

  /// ε used to size the AlwaysCorrect convergence threshold
  /// T = 121·(1+ε√p)·ε⁻⁴·p⁻² (Algorithm 1 line 11).
  double epsilon = 0.05;

  /// Q: convergence is tested once every Q packets (Algorithm 1 line 14).
  std::uint64_t convergence_check_interval = 1000;

  /// AlwaysLineRate epoch length in nanoseconds (paper: 100ms).
  std::uint64_t rate_epoch_ns = 100'000'000;

  /// AlwaysLineRate's work budget: the sampled-update rate it tries to
  /// hold, in packets/second.  p is snapped to {1, 2^-1, ..., 2^-7} so
  /// that rate·p ≈ budget (paper Figure 6: 40Mpps -> 1/64, 10Mpps -> 1/16).
  double target_sampled_rate_pps = 625'000.0;

  /// Enable the Idea-D buffered/batched update path (ablated in Fig. 9b).
  bool buffered_updates = true;

  /// Buffered-update group width: 0 picks the widest digest kernel the
  /// machine has (16 on AVX-512, 8 on AVX2/scalar); explicit values are
  /// clamped to BufferedUpdater::kBatchMax.  Changing the width changes
  /// flush cadence (and thus top-key heap offer timing) but never the
  /// counter values.
  std::uint32_t digest_batch = 0;

  /// Counter-line prefetch distance inside BufferedUpdater::flush: 0
  /// prefetches the whole group during the resolve pass; smaller values
  /// software-pipeline the hints through the write pass.  Ingest backends
  /// publish a preferred distance (IngestBackend::preferred_prefetch_window)
  /// matched to their memory behavior.
  std::uint32_t prefetch_window = 0;

  /// Track heavy keys in a TopK heap on sampled updates (bottleneck 3
  /// mitigation).  Disable for pure frequency-estimation deployments.
  bool track_top_keys = true;
  std::uint32_t top_keys = 1000;

  std::uint64_t seed = 0x5eed5eedULL;
};

}  // namespace nitro::core
