// Keyed per-generation seed derivation (DESIGN.md §16).
//
// Theorem 1's error bound assumes traffic that is oblivious to the hash
// functions, but a sketch whose seed is fixed at construction leaks it over
// time: an adversary who learns (or guesses) the seed can craft keys that
// collide in a majority of rows and blow the bound silently.  The defense
// is to derive the seed from a secret master key and rotate it on a fixed
// epoch cadence, so crafted collision sets go stale at the next boundary.
//
//   generation(e) = e / rotation_epochs
//   seed(g)       = mix64(master_key ^ mix64(g ^ salt))
//
// Seeds are a pure function of (master_key, generation): a restarted
// monitor, a checkpoint restore and the collector's replica all re-derive
// the same seed for the same generation without shipping key material on
// the wire — frames carry only the generation number.
//
// rotation_epochs == 0 disables rotation entirely: every epoch uses
// base_seed, which is bit-identical to the pre-rotation behavior (all
// legacy checkpoints, wire frames and tests are generation 0).
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace nitro::core {

struct SeedSchedule {
  /// Seed used when rotation is disabled (the classic construction seed).
  std::uint64_t base_seed = 0;
  /// Secret key mixed into every derived seed.  Only meaningful with
  /// rotation enabled; must match between a monitor and any replica that
  /// re-derives its seeds (collector, checkpoint restore).
  std::uint64_t master_key = 0;
  /// Epochs per generation; 0 disables rotation.
  std::uint64_t rotation_epochs = 0;

  bool enabled() const noexcept { return rotation_epochs != 0; }

  std::uint64_t generation_of(std::uint64_t epoch) const noexcept {
    return enabled() ? epoch / rotation_epochs : 0;
  }

  std::uint64_t seed_for(std::uint64_t generation) const noexcept {
    if (!enabled()) return base_seed;
    return mix64(master_key ^ mix64(generation ^ 0x5eedc0de5a17ULL));
  }

  std::uint64_t seed_for_epoch(std::uint64_t epoch) const noexcept {
    return seed_for(generation_of(epoch));
  }

  bool operator==(const SeedSchedule&) const noexcept = default;
};

}  // namespace nitro::core
