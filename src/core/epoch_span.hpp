// Epoch-span metadata carried by exported snapshots.
//
// A snapshot normally covers exactly one measurement epoch, but the
// export path may *coalesce* backlogged epochs into one merged sketch
// (lossless for counters) when the collector link is down.  The span
// records which contiguous range of epochs a snapshot covers, so the
// collector can report coverage honestly instead of pretending a merged
// blob was a single epoch.
#pragma once

#include <cstdint>

namespace nitro::core {

struct EpochSpan {
  std::uint64_t first = 0;  // inclusive
  std::uint64_t last = 0;   // inclusive

  static EpochSpan single(std::uint64_t epoch) noexcept { return {epoch, epoch}; }

  std::uint64_t count() const noexcept { return last - first + 1; }

  /// Widen to cover `other` as well (coalescing adjacent snapshots).
  void widen(const EpochSpan& other) noexcept {
    if (other.first < first) first = other.first;
    if (other.last > last) last = other.last;
  }

  friend bool operator==(const EpochSpan& a, const EpochSpan& b) noexcept {
    return a.first == b.first && a.last == b.last;
  }
};

}  // namespace nitro::core
