// Counter-array sampling with a single geometric draw (Ideas A + B).
//
// Conceptually every packet offers d update slots, one per counter array.
// NitroSketch walks this infinite slot sequence and updates only the slots
// selected by a Bernoulli(p) process, realized as Geometric(p) gaps so the
// PRNG is touched once per *sampled* slot rather than once per slot.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometric.hpp"

namespace nitro::core {

/// One selected update slot of a burst: packet index within the burst and
/// the row it updates.  Emitted in slot order (packet-major, rows
/// ascending within a packet).
struct BurstSlot {
  std::uint32_t packet;
  std::uint32_t row;
};

class RowSampler {
 public:
  RowSampler(std::uint32_t depth, double p, std::uint64_t seed)
      : depth_(depth), geo_(1.0, seed) {
    set_probability(p);
    // Position the first update: slot Geo(p)-1 of the slot sequence,
    // so each slot (including the very first) is selected w.p. p.
    next_slot_ = geo_.next() - 1;
  }

  /// Re-tunes p.  Takes effect from the next drawn gap; increments stay
  /// consistent because callers read `increment()` at update time.
  void set_probability(double p) {
    if (p >= 1.0) {
      increment_ = 1;
      effective_p_ = 1.0;
    } else {
      // Round 1/p to an integer so sampled counter updates (+p⁻¹·g) stay
      // exactly unbiased; the geometric draw uses the matching p.
      increment_ = static_cast<std::int64_t>(1.0 / p + 0.5);
      if (increment_ < 1) increment_ = 1;
      effective_p_ = 1.0 / static_cast<double>(increment_);
    }
    geo_.set_probability(effective_p_);
  }

  double probability() const noexcept { return effective_p_; }

  /// p⁻¹: the value added to a sampled counter (Algorithm 1 line 20).
  std::int64_t increment() const noexcept { return increment_; }

  /// Rows of the *current* packet to update.  Call exactly once per
  /// packet; returns the number of rows written into `rows_out` (size
  /// must be >= depth).  Zero means the packet is skipped entirely —
  /// the common case for small p.
  std::uint32_t rows_for_packet(std::uint32_t* rows_out) {
    if (next_slot_ >= depth_) {
      next_slot_ -= depth_;
      return 0;
    }
    std::uint32_t n = 0;
    do {
      rows_out[n++] = static_cast<std::uint32_t>(next_slot_);
      next_slot_ += geo_.next();
    } while (next_slot_ < depth_);
    next_slot_ -= depth_;
    return n;
  }

  /// Burst counterpart of rows_for_packet(): advances the geometric skip
  /// across `packets` whole packets in one pass, appending every selected
  /// slot to `out` (cleared first).  Consumes exactly the same PRNG draws
  /// and leaves the same skip position as `packets` consecutive
  /// rows_for_packet() calls, so per-packet and burst ingestion stay
  /// bit-identical.  The per-packet version pays a compare-and-subtract
  /// per packet even when nothing is sampled; this pays one division per
  /// *sampled* slot, which at small p is ~d·p per packet.
  std::uint32_t sample_burst(std::uint32_t packets, std::vector<BurstSlot>& out) {
    out.clear();
    const std::uint64_t total = std::uint64_t{packets} * depth_;
    while (next_slot_ < total) {
      out.push_back({static_cast<std::uint32_t>(next_slot_ / depth_),
                     static_cast<std::uint32_t>(next_slot_ % depth_)});
      next_slot_ += geo_.next();
    }
    next_slot_ -= total;
    return static_cast<std::uint32_t>(out.size());
  }

  /// Fast check used by integrations that want to skip even key extraction
  /// for unsampled packets: true iff the current packet updates >= 1 row.
  bool current_packet_sampled() const noexcept { return next_slot_ < depth_; }

  /// Number of whole packets guaranteed to be skipped before the next
  /// sampled one (lets batch pre-processing jump ahead).
  std::uint64_t packets_until_next_sample() const noexcept {
    return next_slot_ / depth_;
  }

  std::uint32_t depth() const noexcept { return depth_; }

 private:
  std::uint32_t depth_;
  GeometricSampler geo_;
  std::uint64_t next_slot_ = 0;  // slots from row 0 of the current packet
  std::int64_t increment_ = 1;
  double effective_p_ = 1.0;
};

}  // namespace nitro::core
