// Buffered counter updates with batched hashing (Idea D, §4.2).
//
// Sampled updates are queued and applied in groups of eight: the flow-key
// digests of a full group are computed back-to-back (xxhash32_batch8-style
// batching keeps the hash mixing chains independent so the compiler can
// vectorize them with AVX2), then the counters are touched in one pass,
// which also gives the prefetcher a window.  Ablated in Figure 9b.
#pragma once

#include <array>
#include <cstdint>

#include "common/flow_key.hpp"
#include "sketch/counter_matrix.hpp"

namespace nitro::core {

class BufferedUpdater {
 public:
  static constexpr std::size_t kBatch = 8;

  struct Pending {
    FlowKey key;
    std::uint32_t row = 0;
    std::int64_t delta = 0;
  };

  /// Queue one sampled update.  Returns true when the batch filled up and
  /// was flushed into `matrix` (callers that track top keys refresh their
  /// heap after a flush).
  bool push(sketch::CounterMatrix& matrix, const FlowKey& key, std::uint32_t row,
            std::int64_t delta) {
    pending_[count_++] = {key, row, delta};
    if (count_ < kBatch) return false;
    flush(matrix);
    return true;
  }

  /// Apply all queued updates.  Digests are computed for the whole batch
  /// first, then counters are updated.
  void flush(sketch::CounterMatrix& matrix) {
    if (count_ == 0) return;
    std::array<std::uint64_t, kBatch> digests;
    for (std::size_t i = 0; i < count_; ++i) {
      digests[i] = flow_digest(pending_[i].key);
    }
    for (std::size_t i = 0; i < count_; ++i) {
      matrix.update_row_digest(pending_[i].row, digests[i], pending_[i].delta);
    }
    count_ = 0;
    ++flushes_;
  }

  std::size_t pending() const noexcept { return count_; }

  /// Batches drained so far (telemetry publishes this as
  /// `*_buffer_batch_flushes_total`).
  std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  std::array<Pending, kBatch> pending_{};
  std::size_t count_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace nitro::core
