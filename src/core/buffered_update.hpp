// Buffered counter updates with batched hashing (Idea D, §4.2).
//
// Sampled updates are queued and applied in groups of eight.  A full
// group's flow-key digests go through the batched AVX2 xxHash64 kernel
// (flow_digest_x8 — one lane per key, the mixing chains kept in YMM
// registers); a partial group, which only an external flush() produces,
// takes the scalar tail.  Columns and signs are then resolved for the
// whole group and the target counter lines prefetched before the write
// pass, giving the memory system a full batch of overlap.  Ablated in
// Figure 9b.
#pragma once

#include <array>
#include <cstdint>

#include "common/flow_key.hpp"
#include "common/simd_hash.hpp"
#include "sketch/counter_matrix.hpp"

namespace nitro::core {

class BufferedUpdater {
 public:
  static constexpr std::size_t kBatch = 8;

  struct Pending {
    FlowKey key;
    std::uint32_t row = 0;
    std::int64_t delta = 0;
  };

  /// Queue one sampled update.  Returns true when the batch filled up and
  /// was flushed into `matrix` (callers that track top keys refresh their
  /// heap after a flush).
  bool push(sketch::CounterMatrix& matrix, const FlowKey& key, std::uint32_t row,
            std::int64_t delta) {
    // Overflow guard: if a caller (or a reentrant external flush) ever
    // leaves the batch full without resetting count_, drain it before
    // admitting the new entry instead of writing past the array.
    if (count_ == kBatch) flush(matrix);
    pending_[count_++] = {key, row, delta};
    if (count_ < kBatch) return false;
    flush(matrix);
    return true;
  }

  /// Apply all queued updates in three passes: digest the whole group,
  /// resolve (column, sign) and prefetch the counter lines, then write.
  void flush(sketch::CounterMatrix& matrix) {
    if (count_ == 0) return;
    std::array<std::uint64_t, kBatch> digests;
    if (count_ == kBatch) {
      // Full group: batched 64-bit digest kernel.  The keys must be
      // contiguous for the gather loads, so copy them out of Pending.
      std::array<FlowKey, kBatch> keys;
      for (std::size_t i = 0; i < kBatch; ++i) keys[i] = pending_[i].key;
      flow_digest_x8(keys.data(), digests.data());
    } else {
      // Partial group (external flush mid-batch): scalar tail.
      for (std::size_t i = 0; i < count_; ++i) {
        digests[i] = flow_digest(pending_[i].key);
      }
    }
    std::array<std::uint32_t, kBatch> cols;
    std::array<std::int32_t, kBatch> signs;
    for (std::size_t i = 0; i < count_; ++i) {
      const std::uint32_t r = pending_[i].row;
      cols[i] = matrix.column_of_digest(r, digests[i]);
      signs[i] = matrix.sign_of_digest(r, digests[i]);
#if defined(__GNUC__)
      // Rows are cache-line aligned (CounterMatrix padding), so each
      // resolved counter is one line: prefetch it now, write it a batch
      // later, when the load has had the whole resolve pass to complete.
      __builtin_prefetch(matrix.counter_addr(r, cols[i]), 1, 3);
#endif
    }
    for (std::size_t i = 0; i < count_; ++i) {
      matrix.add_at(pending_[i].row, cols[i], pending_[i].delta * signs[i]);
    }
    count_ = 0;
    ++flushes_;
  }

  std::size_t pending() const noexcept { return count_; }

  /// Batches drained so far (telemetry publishes this as
  /// `*_buffer_batch_flushes_total`).
  std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  std::array<Pending, kBatch> pending_{};
  std::size_t count_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace nitro::core
