// Buffered counter updates with batched hashing (Idea D, §4.2).
//
// Sampled updates are queued and applied in groups.  A full group's
// flow-key digests go through the widest batched xxHash64 kernel the
// machine has (flow_digest_x16 on AVX-512, flow_digest_x8 on AVX2 — one
// lane per key, the mixing chains kept in vector registers); a partial
// group, which only an external flush() produces, takes the scalar tail.
// Columns and signs are then resolved for the whole group and the target
// counter lines prefetched ahead of the write pass.  The group width and
// the prefetch distance are runtime-configurable (NitroConfig
// digest_batch / prefetch_window) so ingest backends with different
// memory behavior can tune how much overlap the memory system is given.
// Ablated in Figure 9b.
#pragma once

#include <array>
#include <cstdint>

#include "common/flow_key.hpp"
#include "common/simd_hash.hpp"
#include "sketch/counter_matrix.hpp"

namespace nitro::core {

class BufferedUpdater {
 public:
  /// Widest group the queue can hold (the x16 kernel's width).
  static constexpr std::size_t kBatchMax = 16;

  struct Pending {
    FlowKey key;
    std::uint32_t row = 0;
    std::int64_t delta = 0;
  };

  /// `batch` 0 picks the widest kernel available at runtime
  /// (simd_digest_batch(): 16 on AVX-512, 8 otherwise); explicit values
  /// are clamped to [1, kBatchMax].  `prefetch_window` 0 prefetches the
  /// whole group during the resolve pass (maximum overlap); a smaller
  /// window software-pipelines the prefetches through the write pass,
  /// keeping at most `window` lines in flight — backends whose packets
  /// already stream through cache (mmap replay) want a short window so
  /// the hints don't evict their own working set.
  explicit BufferedUpdater(std::size_t batch = 0, std::size_t prefetch_window = 0)
      : batch_(batch == 0 ? simd_digest_batch() : batch) {
    if (batch_ > kBatchMax) batch_ = kBatchMax;
    if (batch_ == 0) batch_ = 1;
    window_ = (prefetch_window == 0 || prefetch_window > batch_) ? batch_
                                                                 : prefetch_window;
  }

  /// Queue one sampled update.  Returns true when the batch filled up and
  /// was flushed into `matrix` (callers that track top keys refresh their
  /// heap after a flush).
  bool push(sketch::CounterMatrix& matrix, const FlowKey& key, std::uint32_t row,
            std::int64_t delta) {
    // Overflow guard: if a caller (or a reentrant external flush) ever
    // leaves the batch full without resetting count_, drain it before
    // admitting the new entry instead of writing past the array.
    if (count_ == batch_) flush(matrix);
    pending_[count_++] = {key, row, delta};
    if (count_ < batch_) return false;
    flush(matrix);
    return true;
  }

  /// Apply all queued updates in three passes: digest the whole group,
  /// resolve (column, sign) and prefetch up to `window` counter lines,
  /// then write (prefetching the line `window` slots ahead as each
  /// counter is retired).
  void flush(sketch::CounterMatrix& matrix) {
    if (count_ == 0) return;
    std::array<std::uint64_t, kBatchMax> digests;
    {
      // Widest-kernel-first: a full 16-group takes one x16 call, a full
      // 8-group one x8 call; anything left (external flush mid-batch, or
      // an odd configured width) takes the scalar tail.  The keys must be
      // contiguous for the gather loads, so copy them out of Pending.
      std::array<FlowKey, kBatchMax> keys;
      for (std::size_t i = 0; i < count_; ++i) keys[i] = pending_[i].key;
      std::size_t i = 0;
      if (count_ - i >= 16) {
        flow_digest_x16(keys.data() + i, digests.data() + i);
        i += 16;
      }
      if (count_ - i >= 8) {
        flow_digest_x8(keys.data() + i, digests.data() + i);
        i += 8;
      }
      for (; i < count_; ++i) digests[i] = flow_digest(keys[i]);
    }
    std::array<std::uint32_t, kBatchMax> cols;
    std::array<std::int32_t, kBatchMax> signs;
    for (std::size_t i = 0; i < count_; ++i) {
      const std::uint32_t r = pending_[i].row;
      cols[i] = matrix.column_of_digest(r, digests[i]);
      signs[i] = matrix.sign_of_digest(r, digests[i]);
#if defined(__GNUC__)
      // Rows are cache-line aligned (CounterMatrix padding), so each
      // resolved counter is one line: prefetch the first `window` lines
      // now; the rest are issued from the write pass as slots free up.
      if (i < window_) __builtin_prefetch(matrix.counter_addr(r, cols[i]), 1, 3);
#endif
    }
    for (std::size_t i = 0; i < count_; ++i) {
#if defined(__GNUC__)
      if (i + window_ < count_) {
        __builtin_prefetch(
            matrix.counter_addr(pending_[i + window_].row, cols[i + window_]), 1, 3);
      }
#endif
      matrix.add_at(pending_[i].row, cols[i], pending_[i].delta * signs[i]);
    }
    count_ = 0;
    ++flushes_;
  }

  std::size_t pending() const noexcept { return count_; }

  /// Configured group width (8 or 16 in the auto modes).
  std::size_t batch() const noexcept { return batch_; }

  /// Lines kept in flight by the prefetch pipeline (== batch() when the
  /// whole group is prefetched up front).
  std::size_t prefetch_window() const noexcept { return window_; }

  /// Batches drained so far (telemetry publishes this as
  /// `*_buffer_batch_flushes_total`).
  std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  std::array<Pending, kBatchMax> pending_{};
  std::size_t count_ = 0;
  std::size_t batch_ = 8;
  std::size_t window_ = 8;
  std::uint64_t flushes_ = 0;
};

}  // namespace nitro::core
