// NitroSketch framework — the paper's primary contribution (§4).
//
// `NitroSketch<Base>` wraps any canonical multi-row sketch (Count-Min,
// Count Sketch, K-ary) and accelerates it by sampling the counter arrays
// with a single geometric draw, adapting the sampling rate to the arrival
// rate (AlwaysLineRate) or gating it on provable convergence
// (AlwaysCorrect), buffering updates for batched hashing, and touching the
// heavy-key heap only on sampled updates.
//
// Per-packet cost: o(1) hashes + o(1) counter updates + o(1) heap ops in
// the sampled regime (expected d·p row updates per packet), versus the
// vanilla d1·H + d2·C + P (§3).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/flow_key.hpp"
#include "common/timing.hpp"
#include "core/buffered_update.hpp"
#include "core/convergence.hpp"
#include "core/nitro_config.hpp"
#include "core/rate_controller.hpp"
#include "core/row_sampler.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/kary.hpp"
#include "sketch/topk.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::core {

/// Per-base-sketch glue: estimator combination and row signedness.
template <typename Base>
struct SketchTraits;

/// Public alias for integrations outside the core (e.g. the
/// separate-thread measurement in switchsim).
template <typename Base>
using SketchTraitsFor = SketchTraits<Base>;

template <>
struct SketchTraits<sketch::CountMinSketch> {
  static constexpr bool kSignedRows = false;
  static std::int64_t query(const sketch::CountMinSketch& s, const FlowKey& k) {
    return s.query(k);
  }
  static void on_packet(sketch::CountMinSketch&, std::int64_t) {}
};

template <>
struct SketchTraits<sketch::CountSketch> {
  static constexpr bool kSignedRows = true;
  static std::int64_t query(const sketch::CountSketch& s, const FlowKey& k) {
    return s.query(k);
  }
  static void on_packet(sketch::CountSketch&, std::int64_t) {}
};

template <>
struct SketchTraits<sketch::KArySketch> {
  static constexpr bool kSignedRows = false;
  static std::int64_t query(const sketch::KArySketch& s, const FlowKey& k) {
    // llround, not floor(x + 0.5): K-ary's unbiased estimate is legitimately
    // negative for absent keys, and floor-style rounding biases those
    // toward zero (e.g. -0.7 must round to -1, not 0).
    return std::llround(s.query(k));
  }
  // K-ary's unbiased estimator needs the exact stream length S; counting
  // it is a single add per packet and involves no hashing.
  static void on_packet(sketch::KArySketch& s, std::int64_t count) { s.add_total(count); }
};

/// `WithTelemetry = false` compiles every instrumentation site out of the
/// update path (verified byte-for-byte cheap by
/// bench/micro_telemetry_overhead); the default follows the
/// NITRO_TELEMETRY_DISABLED macro.  Enabled-but-detached telemetry costs
/// one predicted null check per sampled timing site.
template <typename Base, bool WithTelemetry = telemetry::kDefaultEnabled>
class NitroSketch {
 public:
  using Traits = SketchTraits<Base>;

  /// 1-in-1024 packets get their update() bracketed by rdtsc for the
  /// per-packet cycle histogram.  The bracket costs ~200 cycles (two
  /// serializing reads + a cold call), so at 1/1024 it amortizes to well
  /// under 1% of a ~16-cycle sampled-mode update.
  static constexpr std::uint64_t kCycleSampleMask = 1023;

  NitroSketch(Base base, const NitroConfig& cfg)
      : base_(std::move(base)),
        cfg_(cfg),
        sampler_(base_.depth(), initial_probability(cfg), cfg.seed ^ 0x9a3f7d11ULL),
        rate_(cfg.target_sampled_rate_pps, cfg.rate_epoch_ns, cfg.probability),
        detector_(cfg.epsilon, cfg.probability, cfg.convergence_check_interval,
                  Traits::kSignedRows, base_.depth()),
        heap_(cfg.track_top_keys ? cfg.top_keys : 0),
        buffer_(cfg.digest_batch, cfg.prefetch_window) {}

  /// Process one packet (`count` = packet or byte weight, `now_ns` = its
  /// timestamp; only AlwaysLineRate consults the clock).
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t now_ns = 0) {
    if constexpr (WithTelemetry) {
      if (tel_.update_cycles != nullptr && (packets_ & kCycleSampleMask) == 0)
          [[unlikely]] {
        // Out-of-line so the rdtsc bracket's spills stay off the fast path.
        update_timed(key, count, now_ns);
        return;
      }
    }
    update_impl(key, count, now_ns);
  }

  /// Process a whole rx burst of unit-weight packets sharing one arrival
  /// timestamp (a DPDK/BESS/VPP poll batch).  Bit-identical to calling
  /// update() once per key in order — same PRNG draws, counter values,
  /// heap contents and controller decisions — but amortized: the geometric
  /// skip advances across the burst in one pass (one compare per *sampled*
  /// slot instead of per packet), buffered updates flow through the
  /// batched digest kernel, and the heap refreshes at flush boundaries
  /// (once per ~kBatch sampled slots) rather than per sampled packet.
  /// (The 1-in-1024 cycle histogram is not sampled on this path; its
  /// counters still publish.)
  void update_burst(std::span<const FlowKey> keys, std::uint64_t now_ns = 0) {
    const std::size_t n = keys.size();
    std::size_t i = 0;
    // Exact regimes stay per-packet: kVanilla always, kAlwaysCorrect until
    // its detector flips (possibly mid-burst — the remainder then falls
    // through to the sampled fast path).
    if (cfg_.mode == Mode::kVanilla) {
      for (; i < n; ++i) update_impl(keys[i], 1, now_ns);
      return;
    }
    if (cfg_.mode == Mode::kAlwaysCorrect) {
      while (i < n && !detector_.converged()) update_impl(keys[i++], 1, now_ns);
      if (i == n) return;
    }
    if (cfg_.mode == Mode::kAlwaysLineRate) {
      // p may retune mid-burst (epoch boundary).  Feed the controller one
      // packet at a time exactly as update() would, but run the sampler
      // over maximal runs of constant p.  A retune fires *before* the
      // triggering packet samples, so that packet heads the next segment
      // with its controller feed already consumed.
      bool head_fed = false;
      while (i < n) {
        if (!head_fed && rate_.on_packet(now_ns)) {
          sampler_.set_probability(rate_.probability());
        }
        head_fed = false;
        std::size_t seg = 1;
        while (i + seg < n) {
          if (rate_.on_packet(now_ns)) {
            sampler_.set_probability(rate_.probability());
            head_fed = true;
            break;
          }
          ++seg;
        }
        sampled_burst(keys.subspan(i, seg));
        i += seg;
      }
      return;
    }
    if (i < n) sampled_burst(keys.subspan(i, n - i));
  }

  /// Bind registry instruments (see telemetry::SketchTelemetry).  The
  /// adaptive controllers get their event sinks wired here, and the
  /// current probability is logged as the timeline's starting point.
  void attach_telemetry(const telemetry::SketchTelemetry& tel) {
    if constexpr (WithTelemetry) {
      tel_ = tel;
      rate_.attach_telemetry(tel_.events, tel_.probability);
      detector_.attach_telemetry(tel_.events);
      if (tel_.probability) tel_.probability->set(sampler_.probability());
      if (tel_.events) {
        tel_.events->append(telemetry::EventKind::kProbabilityChange, 0,
                            sampler_.probability());
      }
      publish_telemetry();
    } else {
      (void)tel;
    }
  }

  /// Copy the internal (single-threaded) counters into the bound registry
  /// instruments.  Called at epoch boundaries / before export; keeps the
  /// per-packet path free of atomic increments.
  void publish_telemetry() {
    if constexpr (WithTelemetry) {
      if (tel_.packets) tel_.packets->store(packets_);
      if (tel_.sampled_updates) tel_.sampled_updates->store(sampled_updates_);
      if (tel_.batch_flushes) tel_.batch_flushes->store(buffer_.flushes());
      if (tel_.probability) tel_.probability->set(sampler_.probability());
    }
  }

  /// Point frequency estimate.  Flushes pending buffered updates first so
  /// queries always observe every processed packet.
  std::int64_t query(const FlowKey& key) const {
    const_cast<NitroSketch*>(this)->flush();
    return Traits::query(base_, key);
  }

  /// Drain the Idea-D buffer and apply any heap offers queued behind it
  /// (call at epoch end; queries do it implicitly).
  void flush() {
    const std::size_t drained = buffer_.pending();
    if (drained > 0) {
      buffer_.flush(base_.matrix());
      if constexpr (WithTelemetry) {
        if (tel_.explicit_flushes) tel_.explicit_flushes->inc();
        if (tel_.events) {
          tel_.events->append(telemetry::EventKind::kBufferFlush, 0,
                              static_cast<double>(drained));
        }
      }
    }
    if (!pending_offers_.empty()) drain_pending_offers();
  }

  /// Heavy keys observed so far (empty when track_top_keys is off).
  std::vector<sketch::TopKHeap::Entry> top_keys() const {
    const_cast<NitroSketch*>(this)->flush();
    std::vector<sketch::TopKHeap::Entry> out;
    for (const auto& e : heap_.entries_sorted()) {
      out.push_back({e.key, Traits::query(base_, e.key)});
    }
    return out;
  }

  const Base& base() const noexcept { return base_; }
  Base& base() noexcept { return base_; }
  const sketch::TopKHeap& heap() const noexcept { return heap_; }
  sketch::TopKHeap& heap_mut() noexcept { return heap_; }

  // --- Graceful degradation (shard OverflowPolicy::kDegrade) --------------

  /// Probability never degrades below this; past it the shard sheds.
  static constexpr double kDegradeFloor = 1.0 / 1024.0;

  /// Step the sampling probability to base_p·2^-level (floored at
  /// kDegradeFloor); level 0 restores the pre-degradation probability.
  /// The "base" is captured at the first nonzero level, so repeated steps
  /// compound against the original p, not against each other.  Estimator
  /// variance scales as 1/p (Theorem 1), so each step trades ~sqrt(2)×
  /// stddev for half the counter-update work — a measured accuracy cost
  /// instead of unaccounted drops.  In AlwaysLineRate mode the rate
  /// controller may override at its next retune; degradation is meant for
  /// the fixed-rate shard configuration where nothing else adapts p.
  void apply_degradation(std::uint32_t level) {
    if (level == 0) {
      if (degrade_level_ != 0) sampler_.set_probability(degrade_base_p_);
      degrade_level_ = 0;
      return;
    }
    if (degrade_level_ == 0) degrade_base_p_ = sampler_.probability();
    degrade_level_ = level;
    const double p = std::ldexp(degrade_base_p_, -static_cast<int>(level));
    sampler_.set_probability(p < kDegradeFloor ? kDegradeFloor : p);
  }

  std::uint32_t degrade_level() const noexcept { return degrade_level_; }

  /// Restore ingestion counters from a checkpoint (control/checkpoint.hpp);
  /// counters and heap are restored separately through the codec.
  void set_ingest_counts(std::uint64_t packets, std::uint64_t sampled) noexcept {
    packets_ = packets;
    sampled_updates_ = sampled;
  }

  double current_probability() const noexcept { return sampler_.probability(); }
  bool converged() const noexcept {
    return cfg_.mode != Mode::kAlwaysCorrect || detector_.converged();
  }
  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t sampled_updates() const noexcept { return sampled_updates_; }
  const NitroConfig& config() const noexcept { return cfg_; }

  std::size_t memory_bytes() const noexcept {
    return base_.memory_bytes() + heap_.memory_bytes();
  }

 private:
#if defined(__GNUC__)
  __attribute__((noinline, cold))
#endif
  void update_timed(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    if constexpr (WithTelemetry) {
      const std::uint64_t t0 = rdtsc();
      update_impl(key, count, now_ns);
      tel_.update_cycles->observe(rdtsc() - t0);
    }
  }

  // Force-inlined: with telemetry enabled update_impl has two call sites
  // (fast path + timed path), which otherwise defeats the "called once"
  // inlining heuristic and costs ~25% on the per-packet path.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline void update_impl(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    Traits::on_packet(base_, count);
    ++packets_;

    if (cfg_.mode == Mode::kVanilla ||
        (cfg_.mode == Mode::kAlwaysCorrect && !detector_.converged())) {
      vanilla_update(key, count);
      if (cfg_.mode == Mode::kAlwaysCorrect &&
          detector_.on_packet(base_.matrix(), now_ns)) {
        // Converged: fall into the sampled regime (Algorithm 1 line 15).
        sampler_.set_probability(cfg_.probability);
        if constexpr (WithTelemetry) {
          if (tel_.probability) tel_.probability->set(cfg_.probability);
        }
      }
      return;
    }

    if (cfg_.mode == Mode::kAlwaysLineRate && rate_.on_packet(now_ns)) {
      sampler_.set_probability(rate_.probability());
    }

    sampled_update(key, count);
  }

  static double initial_probability(const NitroConfig& cfg) {
    switch (cfg.mode) {
      case Mode::kVanilla:
      case Mode::kAlwaysCorrect:   // p = 1 until converged
      case Mode::kAlwaysLineRate:  // first epoch runs at p = 1
        return 1.0;
      case Mode::kFixedRate:
        return cfg.probability;
    }
    return 1.0;
  }

  void vanilla_update(const FlowKey& key, std::int64_t count) {
    for (std::uint32_t r = 0; r < base_.depth(); ++r) {
      base_.matrix().update_row(r, key, count);
    }
    sampled_updates_ += base_.depth();
    if (heap_.capacity() > 0) heap_.offer(key, Traits::query(base_, key));
  }

  // Bottleneck-3 mitigation: the heap is consulted only for sampled
  // packets, i.e. with probability <= d·p per packet.  With buffering
  // enabled the offer is additionally *deferred* to the next batch flush
  // (at most kBatch pushes away) so it estimates against fully-applied
  // counters and the heap work batches with the counter work; burst and
  // per-packet ingestion share this protocol, which is what makes them
  // bit-identical.  Without buffering the offer stays inline.
  void sampled_update(const FlowKey& key, std::int64_t count) {
    std::uint32_t rows[64];
    const std::uint32_t n = sampler_.rows_for_packet(rows);
    if (n == 0) return;
    const std::int64_t delta = count * sampler_.increment();
    if (cfg_.buffered_updates) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (buffer_.push(base_.matrix(), key, rows[i], delta)) {
          drain_pending_offers();
        }
      }
      if (heap_.capacity() > 0) pending_offers_.push_back(key);
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        base_.matrix().update_row(rows[i], key, delta);
      }
      if (heap_.capacity() > 0) heap_.offer(key, Traits::query(base_, key));
    }
    sampled_updates_ += n;
  }

  /// Sampled fast path over a run of unit-weight packets at constant p.
  /// One sample_burst() call advances the skip across the whole run; the
  /// selected slots come back packet-major, so per-packet semantics
  /// (stream-total accounting before a packet's writes, heap offer after
  /// them) replay exactly.
  void sampled_burst(std::span<const FlowKey> keys) {
    const std::uint32_t m = static_cast<std::uint32_t>(keys.size());
    packets_ += m;
    const std::uint32_t nslots = sampler_.sample_burst(m, burst_slots_);
    if (nslots == 0) {
      Traits::on_packet(base_, m);
      return;
    }
    sampled_updates_ += nslots;
    const std::int64_t delta = sampler_.increment();
    // K-ary's stream total S feeds its estimator, which heap offers query
    // mid-stream — so S must grow exactly as in the per-packet path: fold
    // in each packet's contribution just before its first write.  (For
    // CM/CS on_packet is a no-op and this folds away.)
    std::uint32_t accounted = 0;
    std::size_t s = 0;
    while (s < nslots) {
      const std::uint32_t pkt = burst_slots_[s].packet;
      const FlowKey& key = keys[pkt];
      Traits::on_packet(base_, pkt + 1 - accounted);
      accounted = pkt + 1;
      if (cfg_.buffered_updates) {
        do {
          if (buffer_.push(base_.matrix(), key, burst_slots_[s].row, delta)) {
            drain_pending_offers();
          }
          ++s;
        } while (s < nslots && burst_slots_[s].packet == pkt);
        if (heap_.capacity() > 0) pending_offers_.push_back(key);
      } else {
        do {
          base_.matrix().update_row(burst_slots_[s].row, key, delta);
          ++s;
        } while (s < nslots && burst_slots_[s].packet == pkt);
        if (heap_.capacity() > 0) heap_.offer(key, Traits::query(base_, key));
      }
    }
    Traits::on_packet(base_, m - accounted);  // trailing skipped packets
  }

  /// Apply deferred heavy-key offers against the just-flushed counters.
  /// A key sampled more than once since the last flush is offered once:
  /// no counters changed between the would-be duplicates, so they would
  /// see identical estimates and leave the heap unchanged anyway.
  void drain_pending_offers() {
    const std::size_t n = pending_offers_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const FlowKey& key = pending_offers_[i];
      bool duplicate = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (pending_offers_[j] == key) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) heap_.offer(key, Traits::query(base_, key));
    }
    pending_offers_.clear();
  }

  Base base_;
  NitroConfig cfg_;
  RowSampler sampler_;
  RateController rate_;
  ConvergenceDetector detector_;
  sketch::TopKHeap heap_;
  BufferedUpdater buffer_;
  // Scratch for update_burst (reused across bursts to avoid allocation)
  // and the offers deferred to the next buffer flush.  pending_offers_ is
  // bounded by the batch size: every kBatch-th push drains it.
  std::vector<BurstSlot> burst_slots_;
  std::vector<FlowKey> pending_offers_;
  std::uint64_t packets_ = 0;
  std::uint64_t sampled_updates_ = 0;
  double degrade_base_p_ = 1.0;
  std::uint32_t degrade_level_ = 0;
  [[no_unique_address]] std::conditional_t<WithTelemetry, telemetry::SketchTelemetry,
                                           telemetry::Disabled>
      tel_{};
};

using NitroCountMin = NitroSketch<sketch::CountMinSketch>;
using NitroCountSketch = NitroSketch<sketch::CountSketch>;
using NitroKAry = NitroSketch<sketch::KArySketch>;

}  // namespace nitro::core
