// NitroSketch framework — the paper's primary contribution (§4).
//
// `NitroSketch<Base>` wraps any canonical multi-row sketch (Count-Min,
// Count Sketch, K-ary) and accelerates it by sampling the counter arrays
// with a single geometric draw, adapting the sampling rate to the arrival
// rate (AlwaysLineRate) or gating it on provable convergence
// (AlwaysCorrect), buffering updates for batched hashing, and touching the
// heavy-key heap only on sampled updates.
//
// Per-packet cost: o(1) hashes + o(1) counter updates + o(1) heap ops in
// the sampled regime (expected d·p row updates per packet), versus the
// vanilla d1·H + d2·C + P (§3).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "common/flow_key.hpp"
#include "common/timing.hpp"
#include "core/buffered_update.hpp"
#include "core/convergence.hpp"
#include "core/nitro_config.hpp"
#include "core/rate_controller.hpp"
#include "core/row_sampler.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/kary.hpp"
#include "sketch/topk.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::core {

/// Per-base-sketch glue: estimator combination and row signedness.
template <typename Base>
struct SketchTraits;

/// Public alias for integrations outside the core (e.g. the
/// separate-thread measurement in switchsim).
template <typename Base>
using SketchTraitsFor = SketchTraits<Base>;

template <>
struct SketchTraits<sketch::CountMinSketch> {
  static constexpr bool kSignedRows = false;
  static std::int64_t query(const sketch::CountMinSketch& s, const FlowKey& k) {
    return s.query(k);
  }
  static void on_packet(sketch::CountMinSketch&, std::int64_t) {}
};

template <>
struct SketchTraits<sketch::CountSketch> {
  static constexpr bool kSignedRows = true;
  static std::int64_t query(const sketch::CountSketch& s, const FlowKey& k) {
    return s.query(k);
  }
  static void on_packet(sketch::CountSketch&, std::int64_t) {}
};

template <>
struct SketchTraits<sketch::KArySketch> {
  static constexpr bool kSignedRows = false;
  static std::int64_t query(const sketch::KArySketch& s, const FlowKey& k) {
    // llround, not floor(x + 0.5): K-ary's unbiased estimate is legitimately
    // negative for absent keys, and floor-style rounding biases those
    // toward zero (e.g. -0.7 must round to -1, not 0).
    return std::llround(s.query(k));
  }
  // K-ary's unbiased estimator needs the exact stream length S; counting
  // it is a single add per packet and involves no hashing.
  static void on_packet(sketch::KArySketch& s, std::int64_t count) { s.add_total(count); }
};

/// `WithTelemetry = false` compiles every instrumentation site out of the
/// update path (verified byte-for-byte cheap by
/// bench/micro_telemetry_overhead); the default follows the
/// NITRO_TELEMETRY_DISABLED macro.  Enabled-but-detached telemetry costs
/// one predicted null check per sampled timing site.
template <typename Base, bool WithTelemetry = telemetry::kDefaultEnabled>
class NitroSketch {
 public:
  using Traits = SketchTraits<Base>;

  /// 1-in-1024 packets get their update() bracketed by rdtsc for the
  /// per-packet cycle histogram.  The bracket costs ~200 cycles (two
  /// serializing reads + a cold call), so at 1/1024 it amortizes to well
  /// under 1% of a ~16-cycle sampled-mode update.
  static constexpr std::uint64_t kCycleSampleMask = 1023;

  NitroSketch(Base base, const NitroConfig& cfg)
      : base_(std::move(base)),
        cfg_(cfg),
        sampler_(base_.depth(), initial_probability(cfg), cfg.seed ^ 0x9a3f7d11ULL),
        rate_(cfg.target_sampled_rate_pps, cfg.rate_epoch_ns, cfg.probability),
        detector_(cfg.epsilon, cfg.probability, cfg.convergence_check_interval,
                  Traits::kSignedRows, base_.depth()),
        heap_(cfg.track_top_keys ? cfg.top_keys : 0) {}

  /// Process one packet (`count` = packet or byte weight, `now_ns` = its
  /// timestamp; only AlwaysLineRate consults the clock).
  void update(const FlowKey& key, std::int64_t count = 1, std::uint64_t now_ns = 0) {
    if constexpr (WithTelemetry) {
      if (tel_.update_cycles != nullptr && (packets_ & kCycleSampleMask) == 0)
          [[unlikely]] {
        // Out-of-line so the rdtsc bracket's spills stay off the fast path.
        update_timed(key, count, now_ns);
        return;
      }
    }
    update_impl(key, count, now_ns);
  }

  /// Bind registry instruments (see telemetry::SketchTelemetry).  The
  /// adaptive controllers get their event sinks wired here, and the
  /// current probability is logged as the timeline's starting point.
  void attach_telemetry(const telemetry::SketchTelemetry& tel) {
    if constexpr (WithTelemetry) {
      tel_ = tel;
      rate_.attach_telemetry(tel_.events, tel_.probability);
      detector_.attach_telemetry(tel_.events);
      if (tel_.probability) tel_.probability->set(sampler_.probability());
      if (tel_.events) {
        tel_.events->append(telemetry::EventKind::kProbabilityChange, 0,
                            sampler_.probability());
      }
      publish_telemetry();
    } else {
      (void)tel;
    }
  }

  /// Copy the internal (single-threaded) counters into the bound registry
  /// instruments.  Called at epoch boundaries / before export; keeps the
  /// per-packet path free of atomic increments.
  void publish_telemetry() {
    if constexpr (WithTelemetry) {
      if (tel_.packets) tel_.packets->store(packets_);
      if (tel_.sampled_updates) tel_.sampled_updates->store(sampled_updates_);
      if (tel_.batch_flushes) tel_.batch_flushes->store(buffer_.flushes());
      if (tel_.probability) tel_.probability->set(sampler_.probability());
    }
  }

  /// Point frequency estimate.  Flushes pending buffered updates first so
  /// queries always observe every processed packet.
  std::int64_t query(const FlowKey& key) const {
    const_cast<NitroSketch*>(this)->flush();
    return Traits::query(base_, key);
  }

  /// Drain the Idea-D buffer (call at epoch end; queries do it implicitly).
  void flush() {
    const std::size_t drained = buffer_.pending();
    if (drained == 0) return;
    buffer_.flush(base_.matrix());
    if constexpr (WithTelemetry) {
      if (tel_.explicit_flushes) tel_.explicit_flushes->inc();
      if (tel_.events) {
        tel_.events->append(telemetry::EventKind::kBufferFlush, 0,
                            static_cast<double>(drained));
      }
    }
  }

  /// Heavy keys observed so far (empty when track_top_keys is off).
  std::vector<sketch::TopKHeap::Entry> top_keys() const {
    const_cast<NitroSketch*>(this)->flush();
    std::vector<sketch::TopKHeap::Entry> out;
    for (const auto& e : heap_.entries_sorted()) {
      out.push_back({e.key, Traits::query(base_, e.key)});
    }
    return out;
  }

  const Base& base() const noexcept { return base_; }
  Base& base() noexcept { return base_; }
  const sketch::TopKHeap& heap() const noexcept { return heap_; }

  double current_probability() const noexcept { return sampler_.probability(); }
  bool converged() const noexcept {
    return cfg_.mode != Mode::kAlwaysCorrect || detector_.converged();
  }
  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t sampled_updates() const noexcept { return sampled_updates_; }
  const NitroConfig& config() const noexcept { return cfg_; }

  std::size_t memory_bytes() const noexcept {
    return base_.memory_bytes() + heap_.memory_bytes();
  }

 private:
#if defined(__GNUC__)
  __attribute__((noinline, cold))
#endif
  void update_timed(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    if constexpr (WithTelemetry) {
      const std::uint64_t t0 = rdtsc();
      update_impl(key, count, now_ns);
      tel_.update_cycles->observe(rdtsc() - t0);
    }
  }

  // Force-inlined: with telemetry enabled update_impl has two call sites
  // (fast path + timed path), which otherwise defeats the "called once"
  // inlining heuristic and costs ~25% on the per-packet path.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline void update_impl(const FlowKey& key, std::int64_t count, std::uint64_t now_ns) {
    Traits::on_packet(base_, count);
    ++packets_;

    if (cfg_.mode == Mode::kVanilla ||
        (cfg_.mode == Mode::kAlwaysCorrect && !detector_.converged())) {
      vanilla_update(key, count);
      if (cfg_.mode == Mode::kAlwaysCorrect &&
          detector_.on_packet(base_.matrix(), now_ns)) {
        // Converged: fall into the sampled regime (Algorithm 1 line 15).
        sampler_.set_probability(cfg_.probability);
        if constexpr (WithTelemetry) {
          if (tel_.probability) tel_.probability->set(cfg_.probability);
        }
      }
      return;
    }

    if (cfg_.mode == Mode::kAlwaysLineRate && rate_.on_packet(now_ns)) {
      sampler_.set_probability(rate_.probability());
    }

    sampled_update(key, count);
  }

  static double initial_probability(const NitroConfig& cfg) {
    switch (cfg.mode) {
      case Mode::kVanilla:
      case Mode::kAlwaysCorrect:   // p = 1 until converged
      case Mode::kAlwaysLineRate:  // first epoch runs at p = 1
        return 1.0;
      case Mode::kFixedRate:
        return cfg.probability;
    }
    return 1.0;
  }

  void vanilla_update(const FlowKey& key, std::int64_t count) {
    for (std::uint32_t r = 0; r < base_.depth(); ++r) {
      base_.matrix().update_row(r, key, count);
    }
    sampled_updates_ += base_.depth();
    if (heap_.capacity() > 0) heap_.offer(key, Traits::query(base_, key));
  }

  void sampled_update(const FlowKey& key, std::int64_t count) {
    std::uint32_t rows[64];
    const std::uint32_t n = sampler_.rows_for_packet(rows);
    if (n == 0) return;
    const std::int64_t delta = count * sampler_.increment();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (cfg_.buffered_updates) {
        buffer_.push(base_.matrix(), key, rows[i], delta);
      } else {
        base_.matrix().update_row(rows[i], key, delta);
      }
    }
    sampled_updates_ += n;
    // Bottleneck-3 mitigation: the heap is consulted only here, i.e. with
    // probability <= d·p per packet.  With buffering enabled the estimate
    // may lag by at most kBatch-1 pending deltas; top_keys() re-queries
    // through a flush, so reported estimates are always current.
    if (heap_.capacity() > 0) {
      heap_.offer(key, Traits::query(base_, key));
    }
  }

  Base base_;
  NitroConfig cfg_;
  RowSampler sampler_;
  RateController rate_;
  ConvergenceDetector detector_;
  sketch::TopKHeap heap_;
  BufferedUpdater buffer_;
  std::uint64_t packets_ = 0;
  std::uint64_t sampled_updates_ = 0;
  [[no_unique_address]] std::conditional_t<WithTelemetry, telemetry::SketchTelemetry,
                                           telemetry::Disabled>
      tel_{};
};

using NitroCountMin = NitroSketch<sketch::CountMinSketch>;
using NitroCountSketch = NitroSketch<sketch::CountSketch>;
using NitroKAry = NitroSketch<sketch::KArySketch>;

}  // namespace nitro::core
