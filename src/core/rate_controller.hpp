// AlwaysLineRate adaptation (Idea C.1, Algorithm 1 lines 5-9).
//
// Every fixed time epoch (100ms by default) the controller measures the
// packet arrival rate and sets the sampling probability inversely
// proportional to it, snapped to {1, 2^-1, ..., 2^-7}.  The effect is a
// roughly constant number of sampled updates per second regardless of the
// offered load, which is what lets a single core keep up with 40GbE.
#pragma once

#include <cstdint>

#include "common/math_util.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace nitro::core {

class RateController {
 public:
  RateController(double target_sampled_rate_pps, std::uint64_t epoch_ns, double p_min)
      : target_pps_(target_sampled_rate_pps), epoch_ns_(epoch_ns), p_min_(p_min) {}

  /// Observability hooks (all optional): every epoch retune bumps
  /// `retunes`, every *change* of p appends a kProbabilityChange event
  /// (timestamped with the packet clock) and refreshes the gauge.
  void attach_telemetry(telemetry::EventLog* events,
                        telemetry::Gauge* probability_gauge = nullptr,
                        telemetry::Counter* retunes = nullptr) noexcept {
    events_ = events;
    probability_gauge_ = probability_gauge;
    retunes_ = retunes;
    if (probability_gauge_) probability_gauge_->set(probability_);
  }

  /// Feed one packet arrival.  Returns true when an epoch boundary was
  /// crossed and `probability()` was re-tuned.
  bool on_packet(std::uint64_t now_ns) {
    if (epoch_start_ns_ == 0) epoch_start_ns_ = now_ns;
    ++epoch_packets_;
    if (now_ns - epoch_start_ns_ < epoch_ns_) return false;

    // epoch_start is the first packet's own timestamp, so the elapsed time
    // spans epoch_packets-1 inter-arrival gaps.
    const double seconds = static_cast<double>(now_ns - epoch_start_ns_) * 1e-9;
    const double rate_pps = static_cast<double>(epoch_packets_ - 1) / seconds;
    last_now_ns_ = now_ns;
    retune(rate_pps);
    epoch_start_ns_ = now_ns;
    epoch_packets_ = 0;
    return true;
  }

  /// Direct retune from a measured rate (used by tests and by integrations
  /// that already track their own arrival rate).
  void retune(double rate_pps) {
    double p = rate_pps > 0 ? target_pps_ / rate_pps : 1.0;
    p = snap_probability_pow2(p, max_shift_);
    p = std::max(p, p_min_);
    if (retunes_) retunes_->inc();
    if (p != probability_) {
      probability_ = p;
      if (events_) {
        events_->append(telemetry::EventKind::kProbabilityChange, last_now_ns_, p);
      }
      if (probability_gauge_) probability_gauge_->set(p);
    }
  }

  double probability() const noexcept { return probability_; }

  /// p_min determines the memory provisioning (§4.3: "this mode is
  /// allocated with the space required for sampling with p_min = 2^-7").
  double p_min() const noexcept { return p_min_; }

 private:
  static constexpr int max_shift_ = 7;  // p ∈ {1 ... 2^-7}

  double target_pps_;
  std::uint64_t epoch_ns_;
  double p_min_;
  double probability_ = 1.0;
  std::uint64_t epoch_start_ns_ = 0;
  std::uint64_t epoch_packets_ = 0;
  std::uint64_t last_now_ns_ = 0;
  telemetry::EventLog* events_ = nullptr;
  telemetry::Gauge* probability_gauge_ = nullptr;
  telemetry::Counter* retunes_ = nullptr;
};

}  // namespace nitro::core
