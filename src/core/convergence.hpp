// AlwaysCorrect convergence detection (Idea C.2, Algorithm 1 lines 10-15).
//
// Before convergence the sketch runs at p = 1 and is bit-identical to the
// vanilla sketch, so accuracy guarantees hold from the first packet.  Once
// the stream's norm is provably large enough that sampling at p_min keeps
// the εL2 (resp. εL1) guarantee, the detector fires and the framework
// drops to the sampled regime.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/math_util.hpp"
#include "sketch/counter_matrix.hpp"
#include "telemetry/event_log.hpp"

namespace nitro::core {

class ConvergenceDetector {
 public:
  /// `signed_rows` selects the L2 criterion (Count-Sketch-style rows,
  /// Lemma 6: median_i Σ_y C²_{i,y} > T with T = 121(1+ε√p)ε⁻⁴p⁻²) versus
  /// the L1 criterion for Count-Min-style rows (Theorem 1:
  /// L1 ≥ c·ε⁻²p⁻¹√(log δ⁻¹)).
  ConvergenceDetector(double epsilon, double p_min, std::uint64_t check_interval,
                      bool signed_rows, std::uint32_t depth)
      : check_interval_(check_interval), signed_rows_(signed_rows) {
    const double eps4 = epsilon * epsilon * epsilon * epsilon;
    l2_threshold_ = 121.0 * (1.0 + epsilon * std::sqrt(p_min)) / (eps4 * p_min * p_min);
    // Theorem 1's "sufficiently large constant c": we use c = 16, which is
    // conservative for the d <= 8 row counts used in practice.
    const double log_delta_inv = static_cast<double>(depth) * std::log(2.0);
    l1_threshold_ = 16.0 / (epsilon * epsilon * p_min) * std::sqrt(log_delta_inv);
  }

  bool converged() const noexcept { return converged_; }

  /// Observability hook: the exact->sampled flip appends a kConvergence
  /// event (value = packets seen at the flip, arg = `level`, which
  /// NitroUnivMon uses to tag the UnivMon level this detector guards).
  void attach_telemetry(telemetry::EventLog* events, std::uint32_t level = 0) noexcept {
    events_ = events;
    level_ = level;
  }

  /// The Σ C² threshold T (exposed for tests and EXPERIMENTS.md).
  double l2_threshold() const noexcept { return l2_threshold_; }
  double l1_threshold() const noexcept { return l1_threshold_; }

  /// Called once per packet; performs the (amortized) convergence test
  /// every Q packets.  Returns true on the packet where convergence is
  /// first declared.  `now_ns` (optional) timestamps the flip event.
  bool on_packet(const sketch::CounterMatrix& matrix, std::uint64_t now_ns = 0) {
    if (converged_) return false;
    if (++packets_ % check_interval_ != 0) return false;
    if (signed_rows_) {
      sums_.clear();
      for (std::uint32_t r = 0; r < matrix.depth(); ++r) {
        sums_.push_back(matrix.row_sum_squares(r));
      }
      converged_ = median(sums_) > l2_threshold_;
    } else {
      // For unsigned rows every counter increment is +1 per packet per
      // row, so row 0's sum is exactly the L1 processed so far.
      converged_ = static_cast<double>(matrix.row_sum(0)) > l1_threshold_;
    }
    if (converged_ && events_) {
      events_->append(telemetry::EventKind::kConvergence, now_ns,
                      static_cast<double>(packets_), level_);
    }
    return converged_;
  }

  std::uint64_t packets_seen() const noexcept { return packets_; }

 private:
  std::uint64_t check_interval_;
  bool signed_rows_;
  double l2_threshold_ = 0.0;
  double l1_threshold_ = 0.0;
  bool converged_ = false;
  std::uint64_t packets_ = 0;
  std::vector<double> sums_;
  telemetry::EventLog* events_ = nullptr;
  std::uint32_t level_ = 0;
};

}  // namespace nitro::core
