#include "control/codec.hpp"

#include <algorithm>
#include <string>

namespace nitro::control {

namespace {
constexpr std::uint32_t kMatrixMagic = 0x4e4d5458;  // "NMTX"
constexpr std::uint32_t kHeapMagic = 0x4e484150;    // "NHAP"
constexpr std::uint32_t kUnivMagic = 0x4e554d31;    // "NUM1"
constexpr std::uint32_t kMatrixDeltaMagic = 0x4e4d4458;  // "NMDX"
constexpr std::uint32_t kUnivDeltaMagic = 0x4e554d44;    // "NUMD"

/// Live counters segment `seg` covers in a matrix of width `width`
/// (the last segment may be short; padding is never serialized).
std::uint32_t segment_live(std::uint32_t seg, std::uint32_t width) {
  const std::uint32_t first = seg * sketch::CounterMatrix::kSegmentCounters;
  const std::uint32_t last =
      std::min(first + sketch::CounterMatrix::kSegmentCounters, width);
  return last > first ? last - first : 0;
}
}  // namespace

std::vector<std::uint8_t> seal_frame(std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.put_u32(kFrameMagic);
  w.put_u32(kFrameVersion);
  w.put_u64(payload.size());
  w.put_u32(crc32(payload));
  std::vector<std::uint8_t> out = std::move(w).take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    throw std::invalid_argument("frame: zero-length buffer");
  }
  if (bytes.size() < kFrameHeaderBytes) {
    throw std::invalid_argument("frame: truncated header");
  }
  ByteReader r(bytes);
  if (r.get_u32() != kFrameMagic) {
    throw std::invalid_argument("frame: bad magic");
  }
  FrameHeader h;
  h.version = r.get_u32();
  if (h.version != kFrameVersion) {
    throw std::invalid_argument("frame: unsupported version " +
                                std::to_string(h.version));
  }
  h.payload_len = r.get_u64();
  h.crc = r.get_u32();
  return h;
}

std::span<const std::uint8_t> open_frame(std::span<const std::uint8_t> bytes) {
  const FrameHeader h = parse_frame_header(bytes);
  const std::span<const std::uint8_t> payload = bytes.subspan(kFrameHeaderBytes);
  if (h.payload_len != payload.size()) {
    throw std::invalid_argument(
        h.payload_len > payload.size() ? "frame: truncated payload"
                                       : "frame: trailing bytes after payload");
  }
  if (crc32(payload) != h.crc) {
    throw std::invalid_argument("frame: CRC mismatch (corrupt payload)");
  }
  return payload;
}

void write_matrix(ByteWriter& w, const sketch::CounterMatrix& m) {
  w.put_u32(kMatrixMagic);
  w.put_u32(m.depth());
  w.put_u32(m.width());
  w.put_u8(m.signed_updates() ? 1 : 0);
  for (std::uint32_t r = 0; r < m.depth(); ++r) {
    for (std::int64_t c : m.row(r)) w.put_i64(c);
  }
}

void read_matrix_into(ByteReader& r, sketch::CounterMatrix& m) {
  if (r.get_u32() != kMatrixMagic) {
    throw std::invalid_argument("snapshot: bad matrix magic");
  }
  const std::uint32_t depth = r.get_u32();
  const std::uint32_t width = r.get_u32();
  const bool is_signed = r.get_u8() != 0;
  if (depth != m.depth() || width != m.width() || is_signed != m.signed_updates()) {
    throw std::invalid_argument("snapshot: matrix shape mismatch with replica");
  }
  for (std::uint32_t row = 0; row < depth; ++row) {
    auto dst = m.row_mut(row);
    for (std::uint32_t col = 0; col < width; ++col) dst[col] = r.get_i64();
  }
}

void write_matrix_delta(ByteWriter& w, const sketch::CounterMatrix& m) {
  if (!m.dirty_tracking()) {
    throw std::logic_error(
        "delta: dirty tracking not enabled on the source matrix");
  }
  w.put_u32(kMatrixDeltaMagic);
  w.put_u32(m.depth());
  w.put_u32(m.width());
  w.put_u8(m.signed_updates() ? 1 : 0);
  const std::uint32_t segs = m.segments_per_row();
  for (std::uint32_t r = 0; r < m.depth(); ++r) {
    // Coalesce adjacent dirty segments into (start, len) runs.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    for (std::uint32_t s = 0; s < segs; ++s) {
      if (!m.segment_dirty(r, s)) continue;
      if (!runs.empty() && runs.back().first + runs.back().second == s) {
        ++runs.back().second;
      } else {
        runs.emplace_back(s, 1);
      }
    }
    w.put_u32(static_cast<std::uint32_t>(runs.size()));
    for (const auto& [start, len] : runs) {
      w.put_u32(start);
      w.put_u32(len);
    }
    const auto row = m.row(r);
    for (const auto& [start, len] : runs) {
      for (std::uint32_t s = start; s < start + len; ++s) {
        const std::uint32_t first = s * sketch::CounterMatrix::kSegmentCounters;
        const std::uint32_t live = segment_live(s, m.width());
        for (std::uint32_t c = 0; c < live; ++c) w.put_i64(row[first + c]);
      }
    }
  }
}

void apply_matrix_delta(ByteReader& r, sketch::CounterMatrix& m) {
  if (r.get_u32() != kMatrixDeltaMagic) {
    throw std::invalid_argument("delta: bad matrix-delta magic");
  }
  const std::uint32_t depth = r.get_u32();
  const std::uint32_t width = r.get_u32();
  const bool is_signed = r.get_u8() != 0;
  if (depth != m.depth() || width != m.width() || is_signed != m.signed_updates()) {
    throw std::invalid_argument("delta: matrix shape mismatch with replica");
  }
  const std::uint32_t segs =
      (width + sketch::CounterMatrix::kSegmentCounters - 1) /
      sketch::CounterMatrix::kSegmentCounters;
  for (std::uint32_t row = 0; row < depth; ++row) {
    const std::uint32_t run_count = r.get_u32();
    if (run_count > segs) {
      throw std::invalid_argument("delta: run count exceeds segments per row");
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    runs.reserve(run_count);
    std::uint32_t next_free = 0;  // runs must be ordered and disjoint
    for (std::uint32_t i = 0; i < run_count; ++i) {
      const std::uint32_t start = r.get_u32();
      const std::uint32_t len = r.get_u32();
      if (len == 0) throw std::invalid_argument("delta: zero-length run");
      if (i > 0 && start < next_free) {
        throw std::invalid_argument("delta: unordered or overlapping runs");
      }
      if (start >= segs || len > segs - start) {
        throw std::invalid_argument("delta: run past the end of the row");
      }
      next_free = start + len;
      runs.emplace_back(start, len);
    }
    auto dst = m.row_mut(row);
    for (const auto& [start, len] : runs) {
      for (std::uint32_t s = start; s < start + len; ++s) {
        const std::uint32_t first = s * sketch::CounterMatrix::kSegmentCounters;
        const std::uint32_t live = segment_live(s, width);
        for (std::uint32_t c = 0; c < live; ++c) dst[first + c] = r.get_i64();
      }
    }
  }
}

void write_heap(ByteWriter& w, const sketch::TopKHeap& heap) {
  w.put_u32(kHeapMagic);
  const auto entries = heap.entries_sorted();
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.put_key(e.key);
    w.put_i64(e.estimate);
  }
}

void read_heap_into(ByteReader& r, sketch::TopKHeap& heap) {
  if (r.get_u32() != kHeapMagic) {
    throw std::invalid_argument("snapshot: bad heap magic");
  }
  const std::uint32_t n = r.get_u32();
  heap.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const FlowKey key = r.get_key();
    const std::int64_t est = r.get_i64();
    heap.offer(key, est);
  }
}

std::vector<std::uint8_t> snapshot_univmon(const sketch::UnivMon& um) {
  ByteWriter w;
  w.put_u32(kUnivMagic);
  w.put_u32(um.num_levels());
  w.put_i64(um.total());
  for (std::uint32_t j = 0; j < um.num_levels(); ++j) {
    write_matrix(w, um.level_sketch(j).matrix());
    write_heap(w, um.level_heap(j));
  }
  return seal_frame(w.bytes());
}

void load_univmon(std::span<const std::uint8_t> bytes, sketch::UnivMon& replica) {
  ByteReader r(open_frame(bytes));
  if (r.get_u32() != kUnivMagic) {
    throw std::invalid_argument("snapshot: bad UnivMon magic");
  }
  const std::uint32_t levels = r.get_u32();
  if (levels != replica.num_levels()) {
    throw std::invalid_argument("snapshot: level count mismatch with replica");
  }
  replica.set_total(r.get_i64());
  for (std::uint32_t j = 0; j < levels; ++j) {
    read_matrix_into(r, replica.level_sketch_mut(j).matrix());
    read_heap_into(r, replica.level_heap_mut(j));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("snapshot: trailing bytes");
  }
}

std::vector<std::uint8_t> snapshot_univmon_delta(const sketch::UnivMon& um) {
  ByteWriter w;
  w.put_u32(kUnivDeltaMagic);
  w.put_u32(um.num_levels());
  w.put_i64(um.total());
  for (std::uint32_t j = 0; j < um.num_levels(); ++j) {
    write_matrix_delta(w, um.level_sketch(j).matrix());
    write_heap(w, um.level_heap(j));
  }
  return seal_frame(w.bytes());
}

void apply_univmon_delta(std::span<const std::uint8_t> bytes,
                         sketch::UnivMon& replica) {
  ByteReader r(open_frame(bytes));
  if (r.get_u32() != kUnivDeltaMagic) {
    throw std::invalid_argument("delta: bad UnivMon-delta magic");
  }
  const std::uint32_t levels = r.get_u32();
  if (levels != replica.num_levels()) {
    throw std::invalid_argument("delta: level count mismatch with replica");
  }
  replica.set_total(r.get_i64());
  for (std::uint32_t j = 0; j < levels; ++j) {
    apply_matrix_delta(r, replica.level_sketch_mut(j).matrix());
    read_heap_into(r, replica.level_heap_mut(j));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("delta: trailing bytes");
  }
}

}  // namespace nitro::control
