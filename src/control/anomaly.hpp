// Entropy/cardinality anomaly detection (paper §2 task 5; [52][66]).
//
// Classic control-plane consumer of sketch estimates: keep an EWMA
// baseline of per-epoch entropy and distinct-flow counts and raise an
// alert when the current epoch deviates by more than `sigmas` standard
// deviations (volumetric attacks crush destination entropy and inflate
// source cardinality).  Consumes the numbers any of this library's
// sketches produce — it does not care which data plane fed it.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace nitro::control {

class AnomalyDetector {
 public:
  struct Verdict {
    bool anomalous = false;
    double entropy_score = 0.0;   // deviations from baseline (signed)
    double distinct_score = 0.0;  // deviations from baseline (signed)
    std::string reason;
  };

  /// `warmup` epochs establish the baseline before any alerting;
  /// `sigmas` is the alert threshold in baseline standard deviations.
  AnomalyDetector(std::size_t warmup = 3, double sigmas = 3.0)
      : warmup_(warmup), sigmas_(sigmas) {}

  /// Feed one epoch's estimates; returns the verdict for that epoch.
  Verdict observe(double entropy, double distinct) {
    Verdict v;
    if (seen_ >= warmup_) {
      v.entropy_score = score(entropy, ent_mean_, ent_var_);
      v.distinct_score = score(distinct, dis_mean_, dis_var_);
      if (std::abs(v.entropy_score) >= sigmas_) {
        v.anomalous = true;
        v.reason = v.entropy_score < 0 ? "entropy collapse" : "entropy surge";
      }
      if (std::abs(v.distinct_score) >= sigmas_) {
        v.anomalous = true;
        if (!v.reason.empty()) v.reason += " + ";
        v.reason += v.distinct_score > 0 ? "cardinality surge" : "cardinality collapse";
      }
    }
    // Baseline update: anomalous epochs are excluded so an ongoing attack
    // does not poison the baseline.
    if (!v.anomalous) {
      ewma(entropy, ent_mean_, ent_var_);
      ewma(distinct, dis_mean_, dis_var_);
      ++seen_;
    }
    return v;
  }

  std::size_t baseline_epochs() const noexcept { return seen_; }
  double entropy_baseline() const noexcept { return ent_mean_; }
  double distinct_baseline() const noexcept { return dis_mean_; }

 private:
  static constexpr double kAlpha = 0.25;  // EWMA weight of the newest epoch

  void ewma(double x, double& mean, double& var) {
    if (seen_ == 0) {
      mean = x;
      var = 0.0;
      return;
    }
    const double d = x - mean;
    mean += kAlpha * d;
    var = (1.0 - kAlpha) * (var + kAlpha * d * d);
  }

  double score(double x, double mean, double var) const {
    // Floor the deviation at 5% of the mean so a near-constant warmup
    // doesn't make every later epoch "infinitely" anomalous.
    const double sd = std::max(std::sqrt(var), 0.05 * std::abs(mean) + 1e-9);
    return (x - mean) / sd;
  }

  std::size_t warmup_;
  double sigmas_;
  std::size_t seen_ = 0;
  double ent_mean_ = 0.0, ent_var_ = 0.0;
  double dis_mean_ = 0.0, dis_var_ = 0.0;
};

}  // namespace nitro::control
