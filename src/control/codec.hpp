// Wire codec for data-plane -> control-plane sketch transfer (§6: the
// control plane "periodically receives sketching data from the data plane
// module through a 1GbE link").
//
// Snapshots carry counters, heavy-key entries, and stream totals — not the
// hash functions.  The control plane therefore keeps an identically
// seeded *replica* sketch (see Collector) and loads the snapshot into it;
// this mirrors how the real system shares seeds between vswitchd and the
// monitoring controller.  All integers little-endian, bounds-checked on
// read.
//
// Every snapshot is wrapped in a versioned frame with a CRC-32 over the
// payload (seal_frame / open_frame below), so a truncated, bit-flipped or
// torn buffer is rejected with a clear error instead of loading a silently
// wrong sketch — the transfer link and the checkpoint files share this
// armor.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/crc32.hpp"
#include "sketch/counter_matrix.hpp"
#include "sketch/topk.hpp"
#include "sketch/univmon.hpp"

namespace nitro::control {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }

  void put_key(const FlowKey& k) { put_raw(&k, sizeof k); }

  /// Length-prefixed byte string (nested snapshots inside checkpoints).
  void put_blob(std::span<const std::uint8_t> bytes) {
    put_u64(bytes.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() { return get_raw<std::uint8_t>(); }
  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return get_raw<std::int64_t>(); }
  double get_f64() { return get_raw<double>(); }
  FlowKey get_key() { return get_raw<FlowKey>(); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

  /// Length-prefixed byte string written by ByteWriter::put_blob.
  std::vector<std::uint8_t> get_blob() {
    const std::uint64_t n = get_u64();
    if (n > remaining()) {
      throw std::out_of_range("ByteReader: truncated blob");
    }
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }

 private:
  template <typename T>
  T get_raw() {
    if (pos_ + sizeof(T) > data_.size()) {
      throw std::out_of_range("ByteReader: truncated snapshot");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- Integrity frames ------------------------------------------------------

/// Frame layout: magic u32 | version u32 | payload_len u64 | crc32 u32 |
/// payload.  The CRC covers the payload only; the fixed-size header fields
/// are each validated explicitly so every corruption mode gets a distinct,
/// debuggable error.
inline constexpr std::uint32_t kFrameMagic = 0x4e46524du;  // "NFRM"
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

/// Wrap `payload` in a versioned, CRC-protected frame.
std::vector<std::uint8_t> seal_frame(std::span<const std::uint8_t> payload);

/// Decoded fixed-size frame header (magic already validated and stripped).
/// Stream transports read kFrameHeaderBytes, call this to learn
/// payload_len, then read exactly that many payload bytes — the frame is
/// self-delimiting on a byte stream.
struct FrameHeader {
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
};

/// Validate magic and version of the first kFrameHeaderBytes of `bytes`
/// and return the parsed header.  Throws std::invalid_argument on a short
/// buffer, bad magic or unsupported version — a stream reader treats any
/// throw as a poisoned connection.
FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes);

/// Validate and strip the frame, returning a view of the payload.  Throws
/// std::invalid_argument with a specific reason for zero-length input,
/// truncated headers/payloads, bad magic, unknown versions, trailing
/// garbage and CRC mismatches — never UB, never a silently bad sketch.
std::span<const std::uint8_t> open_frame(std::span<const std::uint8_t> bytes);

// --- Counter matrices ------------------------------------------------------

/// Serializes shape + counters (hash seeds travel out of band).
void write_matrix(ByteWriter& w, const sketch::CounterMatrix& m);

/// Loads counters into an identically shaped replica; throws
/// std::invalid_argument on shape mismatch.
void read_matrix_into(ByteReader& r, sketch::CounterMatrix& m);

// --- Counter-matrix deltas (delta checkpoints, DESIGN.md §15) --------------

/// Serializes only the dirty segments of `m` (kSegmentCounters-counter
/// runs touched since the last clear_dirty), as run-length-encoded
/// (start_segment, length) runs followed by the live counters each run
/// covers.  Requires dirty tracking enabled; throws std::logic_error
/// otherwise.  Padding counters are never written.
void write_matrix_delta(ByteWriter& w, const sketch::CounterMatrix& m);

/// Overwrites the touched segments of `m` with the delta's counters (the
/// untouched rest of the base is left intact — dirty means "may have
/// changed", so overwrite-onto-base reproduces the source exactly).
/// Throws std::invalid_argument on shape mismatch, out-of-range runs,
/// unordered/overlapping runs or a bad magic.
void apply_matrix_delta(ByteReader& r, sketch::CounterMatrix& m);

// --- Heavy-key stores ------------------------------------------------------

void write_heap(ByteWriter& w, const sketch::TopKHeap& heap);
void read_heap_into(ByteReader& r, sketch::TopKHeap& heap);

// --- UnivMon snapshots ------------------------------------------------------

/// Full data-plane snapshot: every level's counters + heap + the total.
std::vector<std::uint8_t> snapshot_univmon(const sketch::UnivMon& um);

/// Loads a snapshot into a replica constructed with the same config+seed.
void load_univmon(std::span<const std::uint8_t> bytes, sketch::UnivMon& replica);

/// Delta snapshot: per-level dirty-segment runs plus full heaps (heaps are
/// already traffic-bounded, so they are replaced whole) and the total.
/// CRC-framed like snapshot_univmon.  Requires dirty tracking on `um`.
std::vector<std::uint8_t> snapshot_univmon_delta(const sketch::UnivMon& um);

/// Applies a delta snapshot onto `replica`, which must hold the exact
/// state of the frame the delta was cut against (the base).  Touched
/// segments are overwritten, heaps replaced, total overwritten.
void apply_univmon_delta(std::span<const std::uint8_t> bytes,
                         sketch::UnivMon& replica);

// --- Single-sketch snapshots -------------------------------------------------

/// Snapshot of any CounterMatrix-backed sketch (Count-Min, Count Sketch,
/// K-ary, or a Nitro wrapper's base): counters + the stream total where
/// the sketch tracks one.
template <typename Sketch>
std::vector<std::uint8_t> snapshot_sketch(const Sketch& s) {
  ByteWriter w;
  w.put_u32(0x4e534b31u);  // "NSK1"
  if constexpr (requires { s.total(); }) {
    w.put_i64(s.total());
  } else {
    w.put_i64(0);
  }
  write_matrix(w, s.matrix());
  return seal_frame(w.bytes());
}

/// Loads a single-sketch snapshot into an identically configured replica.
template <typename Sketch>
void load_sketch(std::span<const std::uint8_t> bytes, Sketch& replica) {
  ByteReader r(open_frame(bytes));
  if (r.get_u32() != 0x4e534b31u) {
    throw std::invalid_argument("snapshot: bad sketch magic");
  }
  const std::int64_t total = r.get_i64();
  read_matrix_into(r, replica.matrix());
  if constexpr (requires { replica.clear(); replica.add_total(total); }) {
    // K-ary style: restore the exact stream length used by its estimator.
    replica.add_total(total - replica.total());
  }
  if (!r.exhausted()) throw std::invalid_argument("snapshot: trailing bytes");
}

/// Control-plane endpoint: owns the replica and answers queries from the
/// last ingested snapshot.
class UnivMonCollector {
 public:
  UnivMonCollector(const sketch::UnivMonConfig& cfg, std::uint64_t dataplane_seed)
      : replica_(cfg, dataplane_seed) {}

  void ingest(std::span<const std::uint8_t> snapshot) {
    replica_.clear();
    load_univmon(snapshot, replica_);
    ++epochs_;
  }

  const sketch::UnivMon& view() const noexcept { return replica_; }
  std::uint64_t epochs_ingested() const noexcept { return epochs_; }

 private:
  sketch::UnivMon replica_;
  std::uint64_t epochs_ = 0;
};

}  // namespace nitro::control
