// Control-plane estimation (§4.3 "Scope", §6 "Control Plane Module").
//
// The data plane only maintains sketch state; every statistic the paper
// reports — heavy hitters, change detection, entropy, distinct count — is
// computed here by querying the collected sketches at the end of an epoch.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/flow_key.hpp"
#include "sketch/kary.hpp"
#include "sketch/topk.hpp"

namespace nitro::control {

struct HeavyHitter {
  FlowKey key;
  std::int64_t estimate = 0;
};

/// Heavy hitters above `fraction` of the epoch's total traffic
/// (paper threshold: 0.05%).  Works with UnivMon, NitroUnivMon, or any
/// object exposing heavy_hitters(threshold) and total().
template <typename Sketch>
std::vector<HeavyHitter> heavy_hitters(const Sketch& s, double fraction) {
  const auto threshold = static_cast<std::int64_t>(
      fraction * static_cast<double>(s.total()) + 0.5);
  std::vector<HeavyHitter> out;
  for (const auto& e : s.heavy_hitters(std::max<std::int64_t>(threshold, 1))) {
    out.push_back({e.key, e.estimate});
  }
  return out;
}

/// Change detection over two consecutive epochs of any point-queryable
/// sketch: for each candidate key, report |f̂_cur - f̂_prev| when it
/// crosses `fraction` of the combined epoch volume.
template <typename Sketch>
std::vector<HeavyHitter> changes(const Sketch& prev, const Sketch& cur,
                                 std::span<const FlowKey> candidates, double fraction) {
  const double volume = static_cast<double>(prev.total() + cur.total());
  const auto threshold = static_cast<std::int64_t>(fraction * volume + 0.5);
  std::vector<HeavyHitter> out;
  std::unordered_set<FlowKey> seen;
  for (const FlowKey& key : candidates) {
    if (!seen.insert(key).second) continue;
    const std::int64_t delta = std::llabs(cur.query(key) - prev.query(key));
    if (delta >= std::max<std::int64_t>(threshold, 1)) out.push_back({key, delta});
  }
  return out;
}

/// Candidate keys for change detection: the union of two epochs' heavy-key
/// stores.
inline std::vector<FlowKey> candidate_union(
    const std::vector<sketch::TopKHeap::Entry>& a,
    const std::vector<sketch::TopKHeap::Entry>& b) {
  std::vector<FlowKey> out;
  out.reserve(a.size() + b.size());
  for (const auto& e : a) out.push_back(e.key);
  for (const auto& e : b) out.push_back(e.key);
  return out;
}

/// K-ary change detection exactly as Krishnamurthy et al.: sketch the two
/// epochs, subtract, and query the difference sketch for candidates.
class KAryChangeDetector {
 public:
  KAryChangeDetector(std::uint32_t depth, std::uint32_t width, std::uint64_t seed)
      : prev_(depth, width, seed), cur_(depth, width, seed) {}

  sketch::KArySketch& current_epoch() noexcept { return cur_; }
  const sketch::KArySketch& previous_epoch() const noexcept { return prev_; }

  /// Rotate epochs (typically every measurement interval).
  void end_epoch() {
    prev_ = cur_;
    cur_.clear();
  }

  /// |change| estimate for one key, from the forecast-difference sketch.
  std::int64_t change_estimate(const FlowKey& key) const {
    const auto diff = cur_.difference(prev_);
    return static_cast<std::int64_t>(std::llabs(
        static_cast<std::int64_t>(diff.query(key))));
  }

  std::vector<HeavyHitter> detect(std::span<const FlowKey> candidates,
                                  double fraction) const {
    const auto diff = cur_.difference(prev_);
    const double volume =
        static_cast<double>(std::llabs(prev_.total()) + std::llabs(cur_.total()));
    const auto threshold =
        std::max<std::int64_t>(static_cast<std::int64_t>(fraction * volume + 0.5), 1);
    std::vector<HeavyHitter> out;
    std::unordered_set<FlowKey> seen;
    for (const FlowKey& key : candidates) {
      if (!seen.insert(key).second) continue;
      const auto delta = static_cast<std::int64_t>(std::llabs(
          static_cast<std::int64_t>(diff.query(key))));
      if (delta >= threshold) out.push_back({key, delta});
    }
    return out;
  }

 private:
  sketch::KArySketch prev_;
  sketch::KArySketch cur_;
};

}  // namespace nitro::control
