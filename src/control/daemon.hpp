// Measurement daemon: the per-epoch control loop of §6.
//
// Owns a data-plane NitroUnivMon, and at each epoch boundary (i) pulls the
// sketch state, (ii) runs the user's configured tasks (HH / entropy /
// distinct / change), and (iii) resets the data plane for the next epoch.
// This is the object the examples program against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "control/estimation.hpp"
#include "core/nitro_univmon.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::control {

struct EpochReport {
  std::uint64_t epoch = 0;
  std::int64_t packets = 0;
  std::vector<HeavyHitter> heavy_hitters;
  std::vector<HeavyHitter> changed_flows;
  double entropy = 0.0;
  double distinct = 0.0;
};

class MeasurementDaemon {
 public:
  struct Tasks {
    bool heavy_hitters = true;
    double hh_fraction = 0.0005;  // paper: 0.05% of epoch volume
    bool change_detection = true;
    double change_fraction = 0.0005;
    bool entropy = true;
    bool distinct = true;
  };

  MeasurementDaemon(const sketch::UnivMonConfig& um_cfg, const core::NitroConfig& nitro_cfg,
                    const Tasks& tasks, std::uint64_t seed = 0xdae11011ULL)
      : um_cfg_(um_cfg), nitro_cfg_(nitro_cfg), tasks_(tasks), seed_(seed),
        current_(um_cfg, nitro_cfg, seed) {}

  /// Data-plane entry point.
  void on_packet(const FlowKey& key, std::uint64_t ts_ns = 0) {
    current_.update(key, 1, ts_ns);
  }

  /// Burst data-plane entry point: a whole rx burst of parsed keys with
  /// the burst's poll timestamp.
  void on_burst(std::span<const FlowKey> keys, std::uint64_t ts_ns = 0) {
    current_.update_burst(keys, ts_ns);
  }

  /// Bind the daemon (and its rotating data plane) to a registry.  The
  /// sketch-level instruments live under "nitro_univmon"; because the data
  /// plane is rotated every epoch, the daemon re-attaches after each
  /// rotation and folds per-epoch counts into cumulative counters, so the
  /// exported counters stay monotonic across epochs.
  void attach_telemetry(telemetry::Registry& registry) {
    registry_ = &registry;
    tel_ = telemetry::SketchTelemetry::in(registry, "nitro_univmon");
    current_.attach_telemetry(tel_);
    publish_telemetry();
  }

  /// Refresh exported counters/gauges from the live data plane (cheap;
  /// call before any scrape/snapshot).
  void publish_telemetry() {
    if (!registry_) return;
    if (tel_.packets) {
      tel_.packets->store(cum_packets_ + static_cast<std::uint64_t>(current_.total()));
    }
    if (tel_.sampled_updates) {
      tel_.sampled_updates->store(cum_sampled_ + current_.sampled_updates());
    }
    if (tel_.probability) tel_.probability->set(current_.level_probability(0));
    registry_->gauge("nitro_daemon_epoch", "epochs closed so far")
        .set(static_cast<double>(epoch_));
  }

  /// Close the epoch: compute all configured task results, rotate sketches.
  EpochReport end_epoch() {
    EpochReport report;
    report.epoch = epoch_++;
    report.packets = current_.total();

    if (tasks_.heavy_hitters) {
      report.heavy_hitters = heavy_hitters(current_, tasks_.hh_fraction);
    }
    if (tasks_.entropy) report.entropy = current_.estimate_entropy();
    if (tasks_.distinct) report.distinct = current_.estimate_distinct();

    if (tasks_.change_detection && previous_) {
      const auto candidates =
          candidate_union(current_.heavy_hitters(1), previous_->heavy_hitters(1));
      report.changed_flows =
          changes(*previous_, current_, candidates, tasks_.change_fraction);
    }

    // Fold this epoch's counts into the cumulative totals before the data
    // plane is rotated away, so exported counters never move backwards.
    cum_packets_ += static_cast<std::uint64_t>(current_.total());
    cum_sampled_ += current_.sampled_updates();

    // Rotate: current becomes previous; fresh sketch for the next epoch.
    previous_ = std::make_unique<core::NitroUnivMon>(std::move(current_));
    current_ = core::NitroUnivMon(um_cfg_, nitro_cfg_, seed_);
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
    return report;
  }

  const core::NitroUnivMon& data_plane() const noexcept { return current_; }

  /// Mutable data-plane access for the sharded integration: at each epoch
  /// boundary the monitor merges every quiesced shard instance into the
  /// daemon's (otherwise idle) data plane, then runs end_epoch() as usual
  /// so task estimation and rotation see the global merged view.
  core::NitroUnivMon& data_plane_mut() noexcept { return current_; }

 private:
  sketch::UnivMonConfig um_cfg_;
  core::NitroConfig nitro_cfg_;
  Tasks tasks_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 0;
  core::NitroUnivMon current_;
  std::unique_ptr<core::NitroUnivMon> previous_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::SketchTelemetry tel_{};
  std::uint64_t cum_packets_ = 0;
  std::uint64_t cum_sampled_ = 0;
};

}  // namespace nitro::control
