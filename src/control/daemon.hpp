// Measurement daemon: the per-epoch control loop of §6.
//
// Owns a data-plane NitroUnivMon, and at each epoch boundary (i) pulls the
// sketch state, (ii) runs the user's configured tasks (HH / entropy /
// distinct / change), and (iii) resets the data plane for the next epoch.
// This is the object the examples program against.
#pragma once

#include <cstdint>
#include <vector>

#include "control/estimation.hpp"
#include "core/nitro_univmon.hpp"

namespace nitro::control {

struct EpochReport {
  std::uint64_t epoch = 0;
  std::int64_t packets = 0;
  std::vector<HeavyHitter> heavy_hitters;
  std::vector<HeavyHitter> changed_flows;
  double entropy = 0.0;
  double distinct = 0.0;
};

class MeasurementDaemon {
 public:
  struct Tasks {
    bool heavy_hitters = true;
    double hh_fraction = 0.0005;  // paper: 0.05% of epoch volume
    bool change_detection = true;
    double change_fraction = 0.0005;
    bool entropy = true;
    bool distinct = true;
  };

  MeasurementDaemon(const sketch::UnivMonConfig& um_cfg, const core::NitroConfig& nitro_cfg,
                    const Tasks& tasks, std::uint64_t seed = 0xdae11011ULL)
      : um_cfg_(um_cfg), nitro_cfg_(nitro_cfg), tasks_(tasks), seed_(seed),
        current_(um_cfg, nitro_cfg, seed) {}

  /// Data-plane entry point.
  void on_packet(const FlowKey& key, std::uint64_t ts_ns = 0) {
    current_.update(key, 1, ts_ns);
  }

  /// Close the epoch: compute all configured task results, rotate sketches.
  EpochReport end_epoch() {
    EpochReport report;
    report.epoch = epoch_++;
    report.packets = current_.total();

    if (tasks_.heavy_hitters) {
      report.heavy_hitters = heavy_hitters(current_, tasks_.hh_fraction);
    }
    if (tasks_.entropy) report.entropy = current_.estimate_entropy();
    if (tasks_.distinct) report.distinct = current_.estimate_distinct();

    if (tasks_.change_detection && previous_) {
      const auto candidates =
          candidate_union(current_.heavy_hitters(1), previous_->heavy_hitters(1));
      report.changed_flows =
          changes(*previous_, current_, candidates, tasks_.change_fraction);
    }

    // Rotate: current becomes previous; fresh sketch for the next epoch.
    previous_ = std::make_unique<core::NitroUnivMon>(std::move(current_));
    current_ = core::NitroUnivMon(um_cfg_, nitro_cfg_, seed_);
    return report;
  }

  const core::NitroUnivMon& data_plane() const noexcept { return current_; }

 private:
  sketch::UnivMonConfig um_cfg_;
  core::NitroConfig nitro_cfg_;
  Tasks tasks_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 0;
  core::NitroUnivMon current_;
  std::unique_ptr<core::NitroUnivMon> previous_;
};

}  // namespace nitro::control
