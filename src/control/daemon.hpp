// Measurement daemon: the per-epoch control loop of §6.
//
// Owns a data-plane NitroUnivMon, and at each epoch boundary (i) pulls the
// sketch state, (ii) runs the user's configured tasks (HH / entropy /
// distinct / change), and (iii) resets the data plane for the next epoch.
// This is the object the examples program against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "control/codec.hpp"
#include "control/estimation.hpp"
#include "core/epoch_span.hpp"
#include "core/nitro_univmon.hpp"
#include "core/seed_schedule.hpp"
#include "fault/fault.hpp"
#include "sketch/anomaly.hpp"
#include "telemetry/accuracy.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace nitro::control {

/// Thrown when the fault framework kills the daemon at an epoch boundary
/// (Site::kDaemonEpoch, Action::kDie).  Tests catch it where a real
/// deployment would crash the process and restart from the checkpoint.
struct DaemonCrash : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct EpochReport {
  std::uint64_t epoch = 0;
  std::int64_t packets = 0;
  std::vector<HeavyHitter> heavy_hitters;
  std::vector<HeavyHitter> changed_flows;
  double entropy = 0.0;
  double distinct = 0.0;
  /// Online bound check (telemetry/accuracy.hpp); tracked_flows == 0 when
  /// no observer is attached (or nothing got sampled this epoch).
  telemetry::EpochAccuracy accuracy{};
  // --- Adversarial-pressure signals (DESIGN.md §16) -----------------------
  /// Residual row-concentration of the level-0 Count Sketch at epoch
  /// close; benign traffic sits at a small constant, a crafted collision
  /// flood is orders of magnitude above it.
  double collision_pressure = 0.0;
  /// Untracked-evicts-tracked heap events this epoch (churn velocity).
  std::uint64_t heap_evictions = 0;
  /// True when a configured anomaly threshold (Tasks) was exceeded.
  bool anomaly_alarm = false;
};

/// One closed epoch handed to an export sink: the sealed UnivMon snapshot
/// plus span/packets metadata for the wire message.  The span is a single
/// epoch here; the exporter widens it when it coalesces a backlog.
struct ExportedEpoch {
  core::EpochSpan span;
  std::int64_t packets = 0;
  /// Steady-clock time the epoch closed; rides the v2 wire so the
  /// collector can compute end-to-end freshness.
  std::uint64_t close_ns = 0;
  std::vector<std::uint8_t> snapshot;  // snapshot_univmon() frame
  /// Seed generation of the closed epoch (0 unless rotation is enabled);
  /// rides the v4 wire so the collector can merge into the right replica.
  std::uint64_t seed_gen = 0;
};

class MeasurementDaemon {
 public:
  struct Tasks {
    bool heavy_hitters = true;
    double hh_fraction = 0.0005;  // paper: 0.05% of epoch volume
    bool change_detection = true;
    double change_fraction = 0.0005;
    bool entropy = true;
    bool distinct = true;
    /// Anomaly alarm thresholds (0 = that alarm disabled): the epoch
    /// report's anomaly_alarm flag and the nitro_anomaly_alarms_total
    /// counter fire when a gauge exceeds its threshold.
    double collision_alarm_threshold = 0.0;
    std::uint64_t eviction_alarm_threshold = 0;
  };

  MeasurementDaemon(const sketch::UnivMonConfig& um_cfg, const core::NitroConfig& nitro_cfg,
                    const Tasks& tasks, std::uint64_t seed = 0xdae11011ULL)
      : um_cfg_(um_cfg), nitro_cfg_(nitro_cfg), tasks_(tasks), seed_(seed),
        sched_{seed, 0, 0}, current_(um_cfg, nitro_cfg, seed) {}

  /// Turn on keyed per-generation seed rotation (core/seed_schedule.hpp):
  /// every `rotation_epochs` epochs the data plane rotates onto a seed
  /// derived from `master_key` and the generation number, invalidating any
  /// collision set crafted against an earlier seed.  Must be called before
  /// any traffic or rotation — the live sketch is rebuilt on the keyed
  /// generation-0 seed.  Checkpoints, delta frames and recovery responses
  /// re-derive seeds from the same schedule, so restores only work on a
  /// daemon configured with the same (master_key, rotation_epochs).
  void enable_seed_rotation(std::uint64_t master_key, std::uint64_t rotation_epochs) {
    if (current_.total() != 0 || previous_ || epoch_ != 0) {
      throw std::logic_error(
          "enable_seed_rotation: must be called on a fresh daemon");
    }
    sched_.master_key = master_key;
    sched_.rotation_epochs = rotation_epochs;
    current_ = core::NitroUnivMon(um_cfg_, nitro_cfg_, sched_.seed_for_epoch(0));
    if (delta_tracking_) {
      current_.enable_dirty_tracking();
      current_.clear_dirty();
    }
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
  }

  const core::SeedSchedule& seed_schedule() const noexcept { return sched_; }
  /// Seed generation of the epoch currently accumulating.
  std::uint64_t seed_generation() const noexcept {
    return sched_.generation_of(epoch_);
  }
  /// Construction seed of the live data plane.
  std::uint64_t active_seed() const noexcept { return current_.seed(); }

  /// Data-plane entry point.
  void on_packet(const FlowKey& key, std::uint64_t ts_ns = 0) {
    current_.update(key, 1, skewed(ts_ns));
    if (accuracy_ != nullptr) accuracy_->observe(key);
  }

  /// Burst data-plane entry point: a whole rx burst of parsed keys with
  /// the burst's poll timestamp.
  void on_burst(std::span<const FlowKey> keys, std::uint64_t ts_ns = 0) {
    telemetry::ScopedSpan trace(telemetry::Stage::kBurstFlush);
    current_.update_burst(keys, skewed(ts_ns));
    if (accuracy_ != nullptr) accuracy_->observe_burst(keys);
  }

  /// Bind the daemon (and its rotating data plane) to a registry.  The
  /// sketch-level instruments live under "nitro_univmon"; because the data
  /// plane is rotated every epoch, the daemon re-attaches after each
  /// rotation and folds per-epoch counts into cumulative counters, so the
  /// exported counters stay monotonic across epochs.
  void attach_telemetry(telemetry::Registry& registry) {
    registry_ = &registry;
    tel_ = telemetry::SketchTelemetry::in(registry, "nitro_univmon");
    current_.attach_telemetry(tel_);
    publish_telemetry();
  }

  /// Refresh exported counters/gauges from the live data plane (cheap;
  /// call before any scrape/snapshot).
  void publish_telemetry() {
    if (!registry_) return;
    if (tel_.packets) {
      tel_.packets->store(cum_packets_ + static_cast<std::uint64_t>(current_.total()));
    }
    if (tel_.sampled_updates) {
      tel_.sampled_updates->store(cum_sampled_ + current_.sampled_updates());
    }
    if (tel_.probability) tel_.probability->set(current_.level_probability(0));
    registry_->gauge("nitro_daemon_epoch", "epochs closed so far")
        .set(static_cast<double>(epoch_));
  }

  /// Close the epoch: compute all configured task results, rotate sketches.
  /// May throw DaemonCrash under fault injection — callers that persist
  /// checkpoints do so *before* calling this, so a crash here loses at
  /// most the current (un-closed) epoch, never a reported one.
  EpochReport end_epoch() {
    if (fault::point(fault::Site::kDaemonEpoch) == fault::Action::kDie) {
      throw DaemonCrash("injected daemon crash at epoch boundary");
    }
    EpochReport report;
    report.epoch = epoch_++;
    report.packets = current_.total();

    // Bound check against the *current* sketch before rotation wipes it:
    // empirical |estimate - exact| over the sampled reservoir vs the
    // eps*sqrt(n) bound, inflated by sqrt(2^level) while degraded.
    if (accuracy_ != nullptr) {
      report.accuracy = accuracy_->close_epoch(
          [this](const FlowKey& k) { return current_.query(k); },
          report.packets, static_cast<int>(current_.degrade_level()));
    }

    if (tasks_.heavy_hitters) {
      report.heavy_hitters = heavy_hitters(current_, tasks_.hh_fraction);
    }
    if (tasks_.entropy) report.entropy = current_.estimate_entropy();
    if (tasks_.distinct) report.distinct = current_.estimate_distinct();

    if (tasks_.change_detection && previous_) {
      const auto candidates =
          candidate_union(current_.heavy_hitters(1), previous_->heavy_hitters(1));
      report.changed_flows =
          changes(*previous_, current_, candidates, tasks_.change_fraction);
    }

    // Adversarial-pressure signals, before rotation wipes the counters:
    // residual row concentration (collision floods) and heap eviction
    // velocity (churn storms).  The per-epoch sketch is fresh, so the raw
    // eviction counter IS this epoch's velocity.
    report.collision_pressure = sketch::collision_pressure(current_.univmon());
    report.heap_evictions = current_.univmon().heap_evictions();
    report.anomaly_alarm =
        (tasks_.collision_alarm_threshold > 0.0 &&
         report.collision_pressure > tasks_.collision_alarm_threshold) ||
        (tasks_.eviction_alarm_threshold > 0 &&
         report.heap_evictions > tasks_.eviction_alarm_threshold);
    if (registry_) {
      registry_->gauge("nitro_anomaly_collision_pressure",
                       "residual level-0 row concentration at epoch close")
          .set(report.collision_pressure);
      registry_->gauge("nitro_anomaly_heap_evictions",
                       "TopK heap evictions in the closed epoch")
          .set(static_cast<double>(report.heap_evictions));
      if (report.anomaly_alarm) {
        registry_->counter("nitro_anomaly_alarms_total",
                           "epochs whose anomaly gauges exceeded a threshold")
            .inc();
      }
    }

    // Hand the closed epoch to the export sink before rotation destroys
    // the counters.  The sink (an EpochExporter queue push) must not
    // block the epoch loop on a slow collector.
    if (export_sink_) {
      std::vector<std::uint8_t> snap;
      {
        telemetry::ScopedSpan trace(telemetry::Stage::kSnapshot);
        snap = snapshot_univmon(current_.univmon());
      }
      export_sink_(ExportedEpoch{core::EpochSpan::single(report.epoch),
                                 report.packets, telemetry::Tracer::now_ns(),
                                 std::move(snap),
                                 sched_.generation_of(report.epoch)});
    }

    // Fold this epoch's counts into the cumulative totals before the data
    // plane is rotated away, so exported counters never move backwards.
    cum_packets_ += static_cast<std::uint64_t>(current_.total());
    cum_sampled_ += current_.sampled_updates();

    // If a delta base is live, seal the closing window's changes now: the
    // rotation moves them into previous_, which a rotated delta frame must
    // still be able to reconstruct on the restore side (DESIGN.md §15).
    if (delta_tracking_ && delta_ok_ && rotations_since_cut_ == 0) {
      pre_rotation_delta_ = snapshot_univmon_delta(current_.univmon());
    }

    // Rotate: current becomes previous; fresh sketch for the next epoch,
    // on the next epoch's (possibly new-generation) seed.  previous_ keeps
    // the closed epoch's seed — change detection queries both sketches by
    // key, so a cross-generation pair is fine.
    previous_ = std::make_unique<core::NitroUnivMon>(std::move(current_));
    current_ = core::NitroUnivMon(um_cfg_, nitro_cfg_, sched_.seed_for_epoch(epoch_));
    // The delta frame format encodes at most one rotation (its `rotated`
    // flag).  A fresh sketch is all-zero, so its dirty state starts clean:
    // the next delta then carries exactly the segments traffic touches.
    ++rotations_since_cut_;
    if (rotations_since_cut_ > 1) delta_ok_ = false;
    if (delta_tracking_) {
      current_.enable_dirty_tracking();
      current_.clear_dirty();
    }
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
    return report;
  }

  const core::NitroUnivMon& data_plane() const noexcept { return current_; }

  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Register a network-export sink: every end_epoch() hands it the closed
  /// epoch's sealed snapshot (see ExportedEpoch).  Pass an empty function
  /// to detach.  Kept as std::function so the control plane does not
  /// depend on the export subsystem.
  using ExportSink = std::function<void(ExportedEpoch&&)>;
  void set_export_sink(ExportSink sink) { export_sink_ = std::move(sink); }

  /// Attach an online accuracy observer (telemetry/accuracy.hpp): the
  /// daemon mirrors every data-plane update into it and closes it each
  /// epoch against the live sketch.  Caller keeps ownership; pass null to
  /// detach.  Single-threaded like the data plane itself.
  void set_accuracy_observer(telemetry::AccuracyObserver* observer) noexcept {
    accuracy_ = observer;
  }
  telemetry::AccuracyObserver* accuracy_observer() const noexcept {
    return accuracy_;
  }

  // --- Crash-safe checkpointing (control/checkpoint.hpp) ------------------

  /// Serialize the daemon's full measurement state — epoch counter,
  /// cumulative telemetry totals, the live data plane, and the previous
  /// epoch's sketch (change detection needs it) — as a checkpoint payload.
  /// Pair with CheckpointStore::save, which adds the CRC frame.
  std::vector<std::uint8_t> checkpoint_bytes() const {
    ByteWriter w;
    w.put_u32(kCheckpointMagic);
    w.put_u32(kCheckpointVersion);
    w.put_u64(epoch_);
    w.put_u64(cum_packets_);
    w.put_u64(cum_sampled_);
    // v2: the live sketch's seed generation, so a restore can verify the
    // restoring daemon derives the same seed before loading counters that
    // are meaningless under any other hash functions — plus the live
    // sketch's ingest counters, so a restored daemon's next epoch report
    // accounts packets/sampled-updates exactly like the uninterrupted one
    // (total() is not a substitute once sampling skips updates).
    w.put_u64(sched_.generation_of(epoch_));
    w.put_u64(current_.ingest_packets());
    w.put_u64(current_.sampled_updates());
    w.put_blob(snapshot_univmon(current_.univmon()));
    w.put_u8(previous_ ? 1 : 0);
    if (previous_) w.put_blob(snapshot_univmon(previous_->univmon()));
    return std::move(w).take();
  }

  /// Restore from a payload produced by checkpoint_bytes() on a daemon
  /// built with the same configs and seed (the snapshot codec's shape
  /// checks enforce it).  Throws std::invalid_argument on a malformed
  /// payload — corruption is rejected loudly, never half-loaded.
  void restore_checkpoint(std::span<const std::uint8_t> payload) {
    ByteReader r(payload);
    if (r.get_u32() != kCheckpointMagic) {
      throw std::invalid_argument("daemon checkpoint: bad magic");
    }
    const std::uint32_t version = r.get_u32();
    if (version == 0 || version > kCheckpointVersion) {
      throw std::invalid_argument("daemon checkpoint: unsupported version");
    }
    const std::uint64_t epoch = r.get_u64();
    const std::uint64_t cum_packets = r.get_u64();
    const std::uint64_t cum_sampled = r.get_u64();
    // v1 payloads predate seed rotation (implicitly generation 0); a
    // rotation-enabled daemon cannot restore one — its counters were
    // written under the un-keyed base seed.
    const std::uint64_t gen = version >= 2 ? r.get_u64() : 0;
    if (version < 2 && sched_.enabled()) {
      throw std::invalid_argument(
          "daemon checkpoint: v1 payload predates seed rotation");
    }
    if (gen != sched_.generation_of(epoch)) {
      throw std::invalid_argument(
          "daemon checkpoint: seed generation does not match this daemon's "
          "rotation schedule");
    }
    const bool has_counts = version >= 2;
    const std::uint64_t ingest_packets = has_counts ? r.get_u64() : 0;
    const std::uint64_t ingest_sampled = has_counts ? r.get_u64() : 0;
    const auto current_snap = r.get_blob();

    core::NitroUnivMon restored(um_cfg_, nitro_cfg_, sched_.seed_for_epoch(epoch));
    load_univmon(current_snap, restored.univmon_mut());
    std::unique_ptr<core::NitroUnivMon> prev;
    if (r.get_u8() != 0) {
      // previous_ holds the last closed epoch (epoch - 1), whose seed may
      // be one generation behind the live sketch's.
      const std::uint64_t prev_seed =
          sched_.seed_for_epoch(epoch > 0 ? epoch - 1 : 0);
      prev = std::make_unique<core::NitroUnivMon>(um_cfg_, nitro_cfg_, prev_seed);
      load_univmon(r.get_blob(), prev->univmon_mut());
    }
    if (!r.exhausted()) {
      throw std::invalid_argument("daemon checkpoint: trailing bytes");
    }

    // Validated end-to-end: only now mutate the daemon.
    epoch_ = epoch;
    cum_packets_ = cum_packets;
    cum_sampled_ = cum_sampled;
    current_ = std::move(restored);
    if (has_counts) {
      current_.set_ingest_counts(ingest_packets, ingest_sampled);
    } else {
      // v1 never carried the counters; total() is exact for unsampled
      // (vanilla) state, the best available approximation otherwise.
      current_.set_ingest_counts(static_cast<std::uint64_t>(current_.total()), 0);
    }
    previous_ = std::move(prev);
    // A restored sketch's relation to any delta base is unknown; the next
    // checkpoint frame must be a full one.
    delta_ok_ = false;
    rotations_since_cut_ = 0;
    pre_rotation_delta_.clear();
    if (delta_tracking_) current_.enable_dirty_tracking();
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
  }

  // --- Delta checkpoints (DESIGN.md §15) ----------------------------------

  /// Turn on dirty-segment tracking so delta_checkpoint_bytes() becomes
  /// available.  Call once at startup; survives epoch rotations.
  void enable_delta_checkpoints() {
    delta_tracking_ = true;
    current_.enable_dirty_tracking();
  }

  /// True when the state since the last cut_checkpoint_frame() is
  /// expressible as a delta: tracking is on, a frame was cut, and at most
  /// one rotation happened since (the frame format encodes one).
  bool delta_ready() const noexcept {
    return delta_tracking_ && delta_ok_ && rotations_since_cut_ <= 1;
  }

  /// Serialize the changes since the last frame cut: dirty segments of
  /// the live sketch, full heaps, and whether one rotation happened (the
  /// restore side then replays the rotation before applying the delta).
  /// Requires delta_ready().
  std::vector<std::uint8_t> delta_checkpoint_bytes() const {
    if (!delta_ready()) {
      throw std::logic_error("daemon delta checkpoint: no valid base frame");
    }
    ByteWriter w;
    w.put_u32(kDeltaCkptMagic);
    w.put_u32(kCheckpointVersion);
    w.put_u64(epoch_);
    w.put_u64(cum_packets_);
    w.put_u64(cum_sampled_);
    // v2: live ingest counters, same rationale as the full frame.
    w.put_u64(current_.ingest_packets());
    w.put_u64(current_.sampled_updates());
    const bool rotated = rotations_since_cut_ == 1;
    w.put_u8(rotated ? 1 : 0);
    // A rotated frame carries two deltas: the closing window's changes
    // (sealed by end_epoch before it moved them into previous_) and the
    // post-rotation live sketch relative to zero.
    if (rotated) w.put_blob(pre_rotation_delta_);
    w.put_blob(snapshot_univmon_delta(current_.univmon()));
    return std::move(w).take();
  }

  /// Mark the just-serialized state as the new delta base.  Call after
  /// every *successful* checkpoint save (full or delta); subsequent dirty
  /// bits are relative to that frame.
  void cut_checkpoint_frame() {
    if (!delta_tracking_) return;
    current_.clear_dirty();
    pre_rotation_delta_.clear();
    rotations_since_cut_ = 0;
    delta_ok_ = true;
  }

  /// Replay one delta frame onto the restored base state (chain restore:
  /// restore_checkpoint(base) then apply_delta_checkpoint per frame, in
  /// sequence order).  Validates the payload fully before mutating.
  void apply_delta_checkpoint(std::span<const std::uint8_t> payload) {
    ByteReader r(payload);
    if (r.get_u32() != kDeltaCkptMagic) {
      throw std::invalid_argument("daemon delta checkpoint: bad magic");
    }
    const std::uint32_t version = r.get_u32();
    if (version == 0 || version > kCheckpointVersion) {
      throw std::invalid_argument("daemon delta checkpoint: unsupported version");
    }
    if (version < 2 && sched_.enabled()) {
      throw std::invalid_argument(
          "daemon delta checkpoint: v1 payload predates seed rotation");
    }
    const std::uint64_t epoch = r.get_u64();
    const std::uint64_t cum_packets = r.get_u64();
    const std::uint64_t cum_sampled = r.get_u64();
    const bool has_counts = version >= 2;
    const std::uint64_t ingest_packets = has_counts ? r.get_u64() : 0;
    const std::uint64_t ingest_sampled = has_counts ? r.get_u64() : 0;
    const bool rotated = r.get_u8() != 0;
    decltype(r.get_blob()) closing{};
    if (rotated) closing = r.get_blob();
    const auto delta = r.get_blob();
    if (!r.exhausted()) {
      throw std::invalid_argument("daemon delta checkpoint: trailing bytes");
    }

    if (rotated) {
      // Replay the rotation the source performed: base state + the sealed
      // closing-window delta becomes previous_, and the new live sketch is
      // rebuilt from zero + the post-rotation delta.  Both applies target
      // scratch objects so a malformed frame never half-applies.
      sketch::UnivMon closed = current_.univmon();
      apply_univmon_delta(closing, closed);
      // The rotation may have crossed a generation boundary: the fresh
      // sketch gets the frame epoch's seed, while previous_ keeps the base
      // sketch's (the closed window was accumulated under it).
      core::NitroUnivMon fresh(um_cfg_, nitro_cfg_, sched_.seed_for_epoch(epoch));
      apply_univmon_delta(delta, fresh.univmon_mut());
      auto prev =
          std::make_unique<core::NitroUnivMon>(um_cfg_, nitro_cfg_, current_.seed());
      prev->univmon_mut() = std::move(closed);
      previous_ = std::move(prev);
      current_ = std::move(fresh);
    } else {
      // Same epoch as the base frame: overwrite touched segments in place
      // (via a scratch copy so a malformed frame never half-applies).
      sketch::UnivMon scratch = current_.univmon();
      apply_univmon_delta(delta, scratch);
      current_.univmon_mut() = std::move(scratch);
    }
    epoch_ = epoch;
    cum_packets_ = cum_packets;
    cum_sampled_ = cum_sampled;
    if (has_counts) {
      current_.set_ingest_counts(ingest_packets, ingest_sampled);
    } else {
      current_.set_ingest_counts(static_cast<std::uint64_t>(current_.total()), 0);
    }
    delta_ok_ = false;
    rotations_since_cut_ = 0;
    pre_rotation_delta_.clear();
    if (delta_tracking_) current_.enable_dirty_tracking();
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
  }

  // --- Rebuild-from-collector (wire v3 rejoin, DESIGN.md §15) -------------

  /// Seed a state-less restart from the collector's last-applied replica:
  /// the cumulative replica becomes previous_ (the change-detection
  /// baseline — an approximation, documented in DESIGN.md §15), the live
  /// sketch starts fresh, and the epoch counter resumes at `next_epoch` so
  /// re-exported sequence numbers continue where the collector left off.
  /// `replica_seed_gen` is the seed generation the collector reported for
  /// its replica (RecoverResponse.seed_gen, 0 on pre-rotation wire
  /// versions); the previous_ baseline is rebuilt under that generation's
  /// seed while the live sketch starts on next_epoch's.
  void seed_from_recovery(std::uint64_t next_epoch,
                          std::span<const std::uint8_t> univmon_snapshot,
                          std::int64_t packets,
                          std::uint64_t replica_seed_gen = 0) {
    auto prev = std::make_unique<core::NitroUnivMon>(
        um_cfg_, nitro_cfg_, sched_.seed_for(replica_seed_gen));
    load_univmon(univmon_snapshot, prev->univmon_mut());
    epoch_ = next_epoch;
    cum_packets_ = static_cast<std::uint64_t>(packets);
    cum_sampled_ = 0;
    previous_ = std::move(prev);
    current_ = core::NitroUnivMon(um_cfg_, nitro_cfg_, sched_.seed_for_epoch(next_epoch));
    delta_ok_ = false;
    rotations_since_cut_ = 0;
    pre_rotation_delta_.clear();
    if (delta_tracking_) {
      current_.enable_dirty_tracking();
      current_.clear_dirty();
    }
    if (registry_) {
      current_.attach_telemetry(tel_);
      publish_telemetry();
    }
  }

  /// Mutable data-plane access for the sharded integration: at each epoch
  /// boundary the monitor merges every quiesced shard instance into the
  /// daemon's (otherwise idle) data plane, then runs end_epoch() as usual
  /// so task estimation and rotation see the global merged view.
  core::NitroUnivMon& data_plane_mut() noexcept { return current_; }

 private:
  static constexpr std::uint32_t kCheckpointMagic = 0x4e44434bu;  // "NDCK"
  static constexpr std::uint32_t kDeltaCkptMagic = 0x4e44444cu;   // "NDDL"
  /// v2 adds the seed generation (keyed rotation, DESIGN.md §16); v1
  /// payloads are still accepted by rotation-disabled daemons.
  static constexpr std::uint32_t kCheckpointVersion = 2;

  /// Clock-skew fault point: timestamps entering the daemon can be shifted
  /// by a scheduled signed offset, exercising the AlwaysLineRate rate
  /// controller's tolerance to non-monotonic clocks.
  static std::uint64_t skewed(std::uint64_t ts_ns) noexcept {
    if constexpr (fault::kEnabled) {
      std::uint64_t param = 0;
      if (fault::point(fault::Site::kDaemonClock, 0, &param) ==
          fault::Action::kClockSkew) [[unlikely]] {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(ts_ns) +
                                          static_cast<std::int64_t>(param));
      }
    }
    return ts_ns;
  }

  sketch::UnivMonConfig um_cfg_;
  core::NitroConfig nitro_cfg_;
  Tasks tasks_;
  std::uint64_t seed_;
  /// Keyed seed-rotation schedule (DESIGN.md §16).  Disabled by default
  /// (rotation_epochs == 0): every generation derives to seed_, which is
  /// bit-identical to the pre-rotation behaviour.
  core::SeedSchedule sched_;
  std::uint64_t epoch_ = 0;
  core::NitroUnivMon current_;
  std::unique_ptr<core::NitroUnivMon> previous_;
  telemetry::Registry* registry_ = nullptr;
  telemetry::SketchTelemetry tel_{};
  std::uint64_t cum_packets_ = 0;
  std::uint64_t cum_sampled_ = 0;
  // Delta-checkpoint state: tracking enabled at all, whether a base frame
  // exists that deltas can be cut against, and rotations since that cut
  // (the frame format encodes at most one).
  bool delta_tracking_ = false;
  bool delta_ok_ = false;
  std::uint32_t rotations_since_cut_ = 0;
  // Sealed by end_epoch when a live base rotates away: the closing
  // window's changes since the cut, carried by the next rotated frame so
  // the restore side can reconstruct previous_.
  std::vector<std::uint8_t> pre_rotation_delta_;
  ExportSink export_sink_;
  telemetry::AccuracyObserver* accuracy_ = nullptr;
};

}  // namespace nitro::control
