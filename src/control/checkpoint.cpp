#include "control/checkpoint.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/io.hpp"
#include "control/codec.hpp"
#include "fault/fault.hpp"
#include "telemetry/trace.hpp"

namespace nitro::control {

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  struct stat st{};
  if (::stat(dir_.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      throw std::runtime_error("CheckpointStore: not a directory: " + dir_);
    }
    return;
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("CheckpointStore: cannot create " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::string CheckpointStore::current_path(const std::string& name) const {
  return dir_ + "/" + name + ".ckpt";
}

std::string CheckpointStore::previous_path(const std::string& name) const {
  return dir_ + "/" + name + ".prev";
}

std::string CheckpointStore::tmp_path(const std::string& name) const {
  return dir_ + "/" + name + ".tmp";
}

bool CheckpointStore::save(const std::string& name,
                           std::span<const std::uint8_t> payload) {
  telemetry::ScopedSpan trace(telemetry::Stage::kCheckpoint);
  std::vector<std::uint8_t> frame = seal_frame(payload);

  // Torn-write injection: persist only a prefix of the frame.  The rename
  // sequence still completes, modelling a crash where metadata (the
  // rename) reached the journal but the data blocks did not — exactly the
  // corruption the CRC exists to catch at restore time.
  std::uint64_t keep = frame.size();
  if (fault::point(fault::Site::kCheckpointWrite, 0, &keep) ==
      fault::Action::kTornWrite) {
    if (keep > frame.size()) keep = frame.size() / 2;
    frame.resize(static_cast<std::size_t>(keep));
  }

  const std::string tmp = tmp_path(name);
  const std::string cur = current_path(name);
  const std::string prev = previous_path(name);
  if (!io::write_file_fsync(tmp, frame)) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  // Keep the last good checkpoint as the fallback generation.  ENOENT
  // (first save) is fine; any other rename failure aborts with the old
  // current still in place.
  if (::rename(cur.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  if (::rename(tmp.c_str(), cur.c_str()) != 0) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  io::fsync_dir(dir_);
  if (saves_) saves_->inc();
  if (last_bytes_) last_bytes_->set(static_cast<double>(frame.size()));
  return true;
}

CheckpointStore::Restored CheckpointStore::load(const std::string& name) const {
  Restored result;
  std::vector<std::uint8_t> bytes;

  auto try_one = [&](const std::string& path, Source source) -> bool {
    if (!io::read_file(path, bytes)) return false;
    // Read-side bit-rot injection happens after the disk read so the CRC
    // check is what stands between the corruption and the sketch.
    if (fault::point(fault::Site::kCheckpointRead) == fault::Action::kCorrupt) {
      const fault::Schedule* s = fault::installed();
      fault::corrupt_bytes(bytes, s != nullptr ? s->seed() : 0);
    }
    try {
      const auto payload = open_frame(bytes);
      result.payload.assign(payload.begin(), payload.end());
      result.source = source;
      return true;
    } catch (const std::invalid_argument& e) {
      if (result.error.empty()) result.error = path + ": " + e.what();
      if (source == Source::kCurrent) {
        result.current_rejected = true;
        if (corrupt_rejected_) corrupt_rejected_->inc();
      }
      return false;
    }
  };

  if (!try_one(current_path(name), Source::kCurrent)) {
    try_one(previous_path(name), Source::kPrevious);
  }
  if (result.source != Source::kNone && restores_) restores_->inc();
  return result;
}

// --- Delta-checkpoint chains (DESIGN.md §15) --------------------------------

namespace {

/// Inner chain header, CRC-framed like every other checkpoint: kind, the
/// frame's own sequence number and the base generation it is rooted at.
/// Seq and base_gen live *inside* the frame so a file renamed or swapped
/// on disk fails validation instead of silently joining the wrong chain.
constexpr std::uint32_t kChainMagic = 0x4e434831u;  // "NCH1"
constexpr std::uint8_t kChainKindFull = 1;
constexpr std::uint8_t kChainKindDelta = 2;

struct ChainEntry {
  std::uint64_t seq = 0;
  bool full = false;
  std::string path;
};

/// Parse `<name>.NNNNNN.full|.delta` file names belonging to `name`.
bool parse_chain_entry(const std::string& filename, const std::string& name,
                       ChainEntry* out) {
  if (filename.size() <= name.size() + 1 ||
      filename.compare(0, name.size(), name) != 0 ||
      filename[name.size()] != '.') {
    return false;
  }
  const std::string rest = filename.substr(name.size() + 1);
  const auto dot = rest.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  const std::string seq_str = rest.substr(0, dot);
  const std::string kind = rest.substr(dot + 1);
  if (kind != "full" && kind != "delta") return false;
  std::uint64_t seq = 0;
  for (char c : seq_str) {
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out->seq = seq;
  out->full = kind == "full";
  out->path = filename;
  return true;
}

/// All chain frames of `name` in `dir`, sorted by sequence number.
std::vector<ChainEntry> scan_chain(const std::string& dir, const std::string& name) {
  std::vector<ChainEntry> entries;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    ChainEntry e;
    if (parse_chain_entry(de.path().filename().string(), name, &e)) {
      e.path = dir + "/" + e.path;
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ChainEntry& a, const ChainEntry& b) { return a.seq < b.seq; });
  return entries;
}

/// Decoded chain header + payload of one validated frame.
struct ChainFrame {
  std::uint8_t kind = 0;
  std::uint64_t seq = 0;
  std::uint64_t base_gen = 0;
  std::vector<std::uint8_t> payload;
};

/// Read + validate one chain frame (CRC, header, self-declared seq).
/// Throws std::invalid_argument on any mismatch; the kChainLoad fault
/// point (lane = seq) can rot the bytes before validation.
ChainFrame read_chain_frame(const std::string& path, std::uint64_t want_seq) {
  std::vector<std::uint8_t> bytes;
  if (!io::read_file(path, bytes)) {
    throw std::invalid_argument(path + ": unreadable");
  }
  if (fault::point(fault::Site::kChainLoad,
                   static_cast<std::uint32_t>(want_seq)) ==
      fault::Action::kCorrupt) {
    const fault::Schedule* s = fault::installed();
    fault::corrupt_bytes(bytes, s != nullptr ? s->seed() : 0);
  }
  ByteReader r(open_frame(bytes));
  ChainFrame f;
  if (r.get_u32() != kChainMagic) {
    throw std::invalid_argument(path + ": bad chain magic");
  }
  f.kind = r.get_u8();
  if (f.kind != kChainKindFull && f.kind != kChainKindDelta) {
    throw std::invalid_argument(path + ": unknown chain frame kind");
  }
  f.seq = r.get_u64();
  f.base_gen = r.get_u64();
  if (f.seq != want_seq) {
    throw std::invalid_argument(path + ": frame seq does not match file name");
  }
  f.payload = r.get_blob();
  if (!r.exhausted()) {
    throw std::invalid_argument(path + ": trailing bytes");
  }
  return f;
}

}  // namespace

std::string CheckpointStore::chain_path(const std::string& name,
                                        std::uint64_t seq, bool full) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%06" PRIu64, seq);
  return dir_ + "/" + name + "." + buf + (full ? ".full" : ".delta");
}

CheckpointStore::ChainState& CheckpointStore::chain_state(const std::string& name) {
  ChainState& st = chains_[name];
  if (!st.scanned) {
    // Lazy resume scan: a restarted process continues the on-disk chain
    // instead of recycling sequence numbers.
    for (const ChainEntry& e : scan_chain(dir_, name)) {
      if (e.seq >= st.next_seq) st.next_seq = e.seq + 1;
      if (e.full && e.seq > st.base_gen) st.base_gen = e.seq;
    }
    st.scanned = true;
  }
  return st;
}

CheckpointStore::ChainSave CheckpointStore::save_frame(
    const std::string& name, bool full, std::span<const std::uint8_t> payload) {
  telemetry::ScopedSpan trace(telemetry::Stage::kCheckpoint);
  ChainState& st = chain_state(name);
  ChainSave out;
  if (!full && st.base_gen == 0) {
    // A delta with no reachable base can never be restored; refuse it so
    // the caller falls back to a full frame.
    if (save_failures_) save_failures_->inc();
    return out;
  }
  out.seq = st.next_seq;
  out.base_gen = full ? out.seq : st.base_gen;

  ByteWriter w;
  w.put_u32(kChainMagic);
  w.put_u8(full ? kChainKindFull : kChainKindDelta);
  w.put_u64(out.seq);
  w.put_u64(out.base_gen);
  w.put_blob(payload);
  std::vector<std::uint8_t> frame = seal_frame(w.bytes());

  // Same torn-write model as save(): the rename dance completes but only
  // a prefix of the data blocks reached disk.
  std::uint64_t keep = frame.size();
  if (fault::point(fault::Site::kCheckpointWrite, 0, &keep) ==
      fault::Action::kTornWrite) {
    if (keep > frame.size()) keep = frame.size() / 2;
    frame.resize(static_cast<std::size_t>(keep));
  }

  const std::string tmp = tmp_path(name);
  const std::string final_path = chain_path(name, out.seq, full);
  if (!io::write_file_fsync(tmp, frame)) {
    if (save_failures_) save_failures_->inc();
    return out;
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    if (save_failures_) save_failures_->inc();
    return out;
  }
  io::fsync_dir(dir_);
  st.next_seq = out.seq + 1;
  if (full) st.base_gen = out.seq;
  out.ok = true;
  if (chain_frames_) chain_frames_->inc();
  if (last_bytes_) last_bytes_->set(static_cast<double>(frame.size()));
  gc_chain(name);
  return out;
}

void CheckpointStore::gc_chain(const std::string& name) {
  const ChainState& st = chains_[name];
  std::vector<ChainEntry> entries = scan_chain(dir_, name);
  if (entries.size() <= retention_) return;
  std::uint64_t excess = entries.size() - retention_;
  for (const ChainEntry& e : entries) {
    if (excess == 0) break;
    // Never delete the live chain: the newest full frame and everything
    // after it must stay restorable regardless of the retention budget.
    if (e.seq >= st.base_gen) break;
    std::error_code ec;
    if (std::filesystem::remove(e.path, ec)) {
      if (chain_gc_deleted_) chain_gc_deleted_->inc();
      --excess;
    }
  }
}

CheckpointStore::ChainRestored CheckpointStore::load_chain(
    const std::string& name) const {
  ChainRestored out;
  const std::vector<ChainEntry> entries = scan_chain(dir_, name);
  if (entries.empty()) return out;

  // Newest full first; fall back across corrupt bases.
  for (std::size_t fi = entries.size(); fi-- > 0;) {
    if (!entries[fi].full) continue;
    ChainFrame base;
    try {
      base = read_chain_frame(entries[fi].path, entries[fi].seq);
      if (base.kind != kChainKindFull || base.base_gen != base.seq) {
        throw std::invalid_argument(entries[fi].path +
                                    ": full frame with foreign base_gen");
      }
    } catch (const std::invalid_argument& e) {
      ++out.frames_rejected;
      if (chain_rejected_) chain_rejected_->inc();
      if (out.error.empty()) out.error = e.what();
      continue;  // older full, if any
    }

    out.found = true;
    out.base = std::move(base.payload);
    out.base_gen = base.seq;
    out.last_seq = base.seq;

    // Contiguous deltas rooted at this base; the first gap, torn frame or
    // forged base-generation truncates the chain (prefix still valid).
    std::uint64_t want = base.seq + 1;
    for (std::size_t di = fi + 1; di < entries.size(); ++di) {
      const ChainEntry& e = entries[di];
      if (e.seq != want || e.full) break;
      try {
        ChainFrame d = read_chain_frame(e.path, e.seq);
        if (d.kind != kChainKindDelta) {
          throw std::invalid_argument(e.path + ": expected a delta frame");
        }
        if (d.base_gen != out.base_gen) {
          throw std::invalid_argument(e.path +
                                      ": delta rooted at a different base");
        }
        out.deltas.push_back(std::move(d.payload));
        out.last_seq = e.seq;
        ++want;
      } catch (const std::invalid_argument& ex) {
        ++out.frames_rejected;
        if (chain_rejected_) chain_rejected_->inc();
        if (out.error.empty()) out.error = ex.what();
        break;
      }
    }
    break;
  }
  if (out.found && restores_) restores_->inc();
  return out;
}

void CheckpointStore::attach_telemetry(telemetry::Registry& registry,
                                       const std::string& prefix) {
  saves_ = &registry.counter(prefix + "_saves_total",
                             "checkpoints written (atomic tmp+fsync+rename)");
  save_failures_ = &registry.counter(prefix + "_save_failures_total",
                                     "checkpoint writes that failed");
  restores_ = &registry.counter(prefix + "_restores_total",
                                "checkpoints successfully restored");
  corrupt_rejected_ =
      &registry.counter(prefix + "_corrupt_rejected_total",
                        "checkpoints rejected by frame/CRC validation");
  chain_frames_ = &registry.counter(prefix + "_chain_frames_total",
                                    "delta-chain frames written (full + delta)");
  chain_rejected_ =
      &registry.counter(prefix + "_chain_rejected_total",
                        "chain frames rejected at restore (torn/corrupt/forged)");
  chain_gc_deleted_ = &registry.counter(
      prefix + "_chain_gc_deleted_total",
      "chain frames deleted by retention GC (never the live chain)");
  last_bytes_ = &registry.gauge(prefix + "_last_bytes",
                                "size of the last checkpoint frame written");
}

}  // namespace nitro::control
