#include "control/checkpoint.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/io.hpp"
#include "control/codec.hpp"
#include "fault/fault.hpp"
#include "telemetry/trace.hpp"

namespace nitro::control {

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  struct stat st{};
  if (::stat(dir_.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      throw std::runtime_error("CheckpointStore: not a directory: " + dir_);
    }
    return;
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("CheckpointStore: cannot create " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::string CheckpointStore::current_path(const std::string& name) const {
  return dir_ + "/" + name + ".ckpt";
}

std::string CheckpointStore::previous_path(const std::string& name) const {
  return dir_ + "/" + name + ".prev";
}

std::string CheckpointStore::tmp_path(const std::string& name) const {
  return dir_ + "/" + name + ".tmp";
}

bool CheckpointStore::save(const std::string& name,
                           std::span<const std::uint8_t> payload) {
  telemetry::ScopedSpan trace(telemetry::Stage::kCheckpoint);
  std::vector<std::uint8_t> frame = seal_frame(payload);

  // Torn-write injection: persist only a prefix of the frame.  The rename
  // sequence still completes, modelling a crash where metadata (the
  // rename) reached the journal but the data blocks did not — exactly the
  // corruption the CRC exists to catch at restore time.
  std::uint64_t keep = frame.size();
  if (fault::point(fault::Site::kCheckpointWrite, 0, &keep) ==
      fault::Action::kTornWrite) {
    if (keep > frame.size()) keep = frame.size() / 2;
    frame.resize(static_cast<std::size_t>(keep));
  }

  const std::string tmp = tmp_path(name);
  const std::string cur = current_path(name);
  const std::string prev = previous_path(name);
  if (!io::write_file_fsync(tmp, frame)) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  // Keep the last good checkpoint as the fallback generation.  ENOENT
  // (first save) is fine; any other rename failure aborts with the old
  // current still in place.
  if (::rename(cur.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  if (::rename(tmp.c_str(), cur.c_str()) != 0) {
    if (save_failures_) save_failures_->inc();
    return false;
  }
  io::fsync_dir(dir_);
  if (saves_) saves_->inc();
  if (last_bytes_) last_bytes_->set(static_cast<double>(frame.size()));
  return true;
}

CheckpointStore::Restored CheckpointStore::load(const std::string& name) const {
  Restored result;
  std::vector<std::uint8_t> bytes;

  auto try_one = [&](const std::string& path, Source source) -> bool {
    if (!io::read_file(path, bytes)) return false;
    // Read-side bit-rot injection happens after the disk read so the CRC
    // check is what stands between the corruption and the sketch.
    if (fault::point(fault::Site::kCheckpointRead) == fault::Action::kCorrupt) {
      const fault::Schedule* s = fault::installed();
      fault::corrupt_bytes(bytes, s != nullptr ? s->seed() : 0);
    }
    try {
      const auto payload = open_frame(bytes);
      result.payload.assign(payload.begin(), payload.end());
      result.source = source;
      return true;
    } catch (const std::invalid_argument& e) {
      if (result.error.empty()) result.error = path + ": " + e.what();
      if (source == Source::kCurrent) {
        result.current_rejected = true;
        if (corrupt_rejected_) corrupt_rejected_->inc();
      }
      return false;
    }
  };

  if (!try_one(current_path(name), Source::kCurrent)) {
    try_one(previous_path(name), Source::kPrevious);
  }
  if (result.source != Source::kNone && restores_) restores_->inc();
  return result;
}

void CheckpointStore::attach_telemetry(telemetry::Registry& registry,
                                       const std::string& prefix) {
  saves_ = &registry.counter(prefix + "_saves_total",
                             "checkpoints written (atomic tmp+fsync+rename)");
  save_failures_ = &registry.counter(prefix + "_save_failures_total",
                                     "checkpoint writes that failed");
  restores_ = &registry.counter(prefix + "_restores_total",
                                "checkpoints successfully restored");
  corrupt_rejected_ =
      &registry.counter(prefix + "_corrupt_rejected_total",
                        "checkpoints rejected by frame/CRC validation");
  last_bytes_ = &registry.gauge(prefix + "_last_bytes",
                                "size of the last checkpoint frame written");
}

}  // namespace nitro::control
