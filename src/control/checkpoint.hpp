// Crash-safe checkpoint/restore for sketch state (DESIGN.md §10).
//
// A daemon crash must not lose the measurement epoch: at every epoch
// boundary the control plane persists its sketch state through this store
// and restores it on restart.  Durability recipe per save:
//
//   1. the payload is sealed in a versioned CRC-32 frame (codec.hpp);
//   2. the frame is written to `<name>.tmp` and fsync'd;
//   3. the previous `<name>.ckpt` (if any) is renamed to `<name>.prev`;
//   4. `<name>.tmp` is atomically renamed to `<name>.ckpt`.
//
// load() validates `<name>.ckpt` and, when it is missing, truncated or
// fails the CRC (a torn write), falls back to `<name>.prev` — corruption
// is always *detected and reported*, never silently loaded.  The fault
// framework can inject torn writes (persist only a prefix of the frame)
// and read-side bit rot to exercise exactly these paths.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "control/codec.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::control {

class CheckpointStore {
 public:
  /// `dir` is created if missing (single level).  Throws std::runtime_error
  /// when the directory cannot be created or is not writable.
  explicit CheckpointStore(std::string dir);

  /// Atomically persist `payload` under `name`.  Returns false when a
  /// filesystem operation fails (the previous checkpoint stays intact).
  /// An injected torn write persists only a prefix of the frame but still
  /// completes the rename dance — simulating a crash where the rename was
  /// journaled before the data blocks hit disk — and reports success, as
  /// the real crash would have.
  bool save(const std::string& name, std::span<const std::uint8_t> payload);

  enum class Source { kNone, kCurrent, kPrevious };

  struct Restored {
    std::vector<std::uint8_t> payload;  // frame-validated, header stripped
    Source source = Source::kNone;
    bool current_rejected = false;  // <name>.ckpt existed but failed validation
    std::string error;              // why the best candidate was rejected
  };

  /// Load the newest valid checkpoint for `name`.  Never throws for
  /// missing/corrupt files: the outcome (including the rejection reason)
  /// is reported in Restored so callers can log it loudly.
  Restored load(const std::string& name) const;

  std::string current_path(const std::string& name) const;
  std::string previous_path(const std::string& name) const;
  std::string tmp_path(const std::string& name) const;

  const std::string& dir() const noexcept { return dir_; }

  /// saves/failures/corrupt-rejections counters + last checkpoint size.
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  // --- Delta-checkpoint chains (DESIGN.md §15) ----------------------------
  //
  // A chain is a sequence of numbered frames `<name>.NNNNNN.full` /
  // `<name>.NNNNNN.delta`: a periodic full base plus the deltas cut
  // against it.  Every frame is written with the same atomic durability
  // recipe as save(), and carries an inner chain header (kind, its own
  // sequence number, and the base generation — the sequence number of the
  // full frame the chain is rooted at) inside the CRC frame, so a frame
  // renamed or substituted on disk is detected at restore time.

  struct ChainSave {
    bool ok = false;
    std::uint64_t seq = 0;       // this frame's sequence number
    std::uint64_t base_gen = 0;  // sequence number of the live full base
  };

  /// Append one frame to `name`'s chain.  `full` starts a new base
  /// generation; a delta is refused (ok = false) when no full base exists
  /// yet.  A fault-injected torn write truncates the frame but reports
  /// success, exactly like save().  Successful saves trigger retention GC
  /// (see set_retention).
  ChainSave save_frame(const std::string& name, bool full,
                       std::span<const std::uint8_t> payload);

  struct ChainRestored {
    bool found = false;                           // a usable base was restored
    std::vector<std::uint8_t> base;               // full-frame payload
    std::vector<std::vector<std::uint8_t>> deltas;  // contiguous, in order
    std::uint64_t base_gen = 0;   // seq of the restored full frame
    std::uint64_t last_seq = 0;   // seq of the last restored frame
    std::uint64_t frames_rejected = 0;  // torn/corrupt/forged frames skipped
    std::string error;            // first rejection reason, for logging
  };

  /// Restore the longest valid chain for `name`: starting from the newest
  /// full frame, collect the contiguous run of deltas rooted at it; a
  /// torn/corrupt/mis-rooted delta truncates the chain there (the earlier
  /// prefix is still returned), and a corrupt full frame falls back to the
  /// next older one.  Never throws; rejections are counted and reported.
  ChainRestored load_chain(const std::string& name) const;

  /// Keep at most `keep_frames` chain frames per name, deleting oldest
  /// first — but never a frame of the live chain (seq >= the newest valid
  /// full frame's seq), so a restorable base is always retained.
  void set_retention(std::uint64_t keep_frames) noexcept {
    retention_ = keep_frames < 2 ? 2 : keep_frames;
  }
  std::uint64_t retention() const noexcept { return retention_; }

  std::string chain_path(const std::string& name, std::uint64_t seq,
                         bool full) const;

 private:
  struct ChainState {
    std::uint64_t next_seq = 1;
    std::uint64_t base_gen = 0;  // 0 = no full frame yet
    bool scanned = false;
  };

  ChainState& chain_state(const std::string& name);
  void gc_chain(const std::string& name);

  std::string dir_;
  std::uint64_t retention_ = 16;
  std::map<std::string, ChainState> chains_;
  telemetry::Counter* saves_ = nullptr;
  telemetry::Counter* save_failures_ = nullptr;
  telemetry::Counter* restores_ = nullptr;
  telemetry::Counter* corrupt_rejected_ = nullptr;
  telemetry::Counter* chain_frames_ = nullptr;
  telemetry::Counter* chain_rejected_ = nullptr;
  telemetry::Counter* chain_gc_deleted_ = nullptr;
  telemetry::Gauge* last_bytes_ = nullptr;
};

// --- Checkpoint payload builders --------------------------------------------
//
// These serialize *measurement state* (counters, heaps, stream totals,
// ingestion counts); samplers and convergence detectors are data-plane
// state that a restarted process re-derives.  The replica passed to each
// restore_* must be built with the same configs and seeds — the codec's
// shape checks reject anything else.

inline constexpr std::uint32_t kNitroCkptMagic = 0x4e4e434bu;    // "NNCK"
inline constexpr std::uint32_t kShardedCkptMagic = 0x4e53434bu;  // "NSCK"
inline constexpr std::uint32_t kCkptVersion = 1;

/// Checkpoint one NitroSketch<Base>: ingestion counters + base-sketch
/// counters + heavy-key heap.  Flushes pending buffered updates first so
/// the payload reflects every processed packet.
template <typename Nitro>
std::vector<std::uint8_t> checkpoint_nitro(Nitro& sketch) {
  sketch.flush();
  ByteWriter w;
  w.put_u32(kNitroCkptMagic);
  w.put_u32(kCkptVersion);
  w.put_u64(sketch.packets());
  w.put_u64(sketch.sampled_updates());
  w.put_blob(snapshot_sketch(sketch.base()));
  write_heap(w, sketch.heap());
  return std::move(w).take();
}

/// Restore a checkpoint_nitro payload into an identically configured
/// replica.  Throws std::invalid_argument on malformed input; the replica
/// is only mutated after the payload parses.
template <typename Nitro>
void restore_nitro(std::span<const std::uint8_t> payload, Nitro& replica) {
  ByteReader r(payload);
  if (r.get_u32() != kNitroCkptMagic) {
    throw std::invalid_argument("nitro checkpoint: bad magic");
  }
  if (r.get_u32() != kCkptVersion) {
    throw std::invalid_argument("nitro checkpoint: unsupported version");
  }
  const std::uint64_t packets = r.get_u64();
  const std::uint64_t sampled = r.get_u64();
  const auto base_snap = r.get_blob();
  load_sketch(base_snap, replica.base());
  read_heap_into(r, replica.heap_mut());
  if (!r.exhausted()) {
    throw std::invalid_argument("nitro checkpoint: trailing bytes");
  }
  replica.set_ingest_counts(packets, sampled);
}

/// Checkpoint a ShardedNitroSketch: one checkpoint_nitro payload per
/// shard plus its quarantine flag (a quarantined shard's frozen pre-fault
/// counters are still valid measurement state and are preserved).  Call
/// only at an epoch boundary: drains first.
template <typename Sharded>
std::vector<std::uint8_t> checkpoint_sharded(Sharded& sharded) {
  sharded.drain();
  ByteWriter w;
  w.put_u32(kShardedCkptMagic);
  w.put_u32(kCkptVersion);
  w.put_u32(sharded.workers());
  for (std::uint32_t i = 0; i < sharded.workers(); ++i) {
    w.put_u8(sharded.quarantined(i) ? 1 : 0);
    w.put_blob(checkpoint_nitro(sharded.shard_sketch(i)));
  }
  return std::move(w).take();
}

/// Restore into a quiescent, identically configured sharded replica (same
/// worker count, base factory and seeds).  Quarantine is not re-imposed:
/// the restored process has fresh, healthy workers — the flag travels in
/// the payload purely so operators can see what the checkpoint lived
/// through.  Returns the number of shards that were quarantined at save
/// time.
template <typename Sharded>
std::uint32_t restore_sharded(std::span<const std::uint8_t> payload,
                              Sharded& replica) {
  ByteReader r(payload);
  if (r.get_u32() != kShardedCkptMagic) {
    throw std::invalid_argument("sharded checkpoint: bad magic");
  }
  if (r.get_u32() != kCkptVersion) {
    throw std::invalid_argument("sharded checkpoint: unsupported version");
  }
  const std::uint32_t workers = r.get_u32();
  if (workers != replica.workers()) {
    throw std::invalid_argument("sharded checkpoint: worker count mismatch");
  }
  std::uint32_t was_quarantined = 0;
  for (std::uint32_t i = 0; i < workers; ++i) {
    was_quarantined += r.get_u8() != 0 ? 1u : 0u;
    const auto shard_payload = r.get_blob();
    restore_nitro(shard_payload, replica.shard_sketch(i));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("sharded checkpoint: trailing bytes");
  }
  return was_quarantined;
}

}  // namespace nitro::control
