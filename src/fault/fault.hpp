// Deterministic fault-injection framework (DESIGN.md §10).
//
// NitroSketch's pitch is *robust* monitoring, so the data plane must keep
// its guarantees when the machine misbehaves, not just when inputs are
// adversarial.  This header provides compile-time zero-cost fault points
// (same pattern as the telemetry templates: a macro compiles every site
// out) woven into the SPSC rings, the shard workers, the measurement
// daemon's epoch loop and the checkpoint I/O path.  A seeded Schedule
// decides which hits of which site fire which fault, so every failure —
// a worker dying mid-epoch, a torn checkpoint write, an overflow storm —
// is exactly reproducible from (schedule, seed).
//
// Overhead policy:
//  * compiled out (-DNITRO_FAULT_DISABLED): every fault::point() call is
//    `if constexpr`-eliminated; the surrounding code is the same machine
//    code as before this subsystem existed.
//  * compiled in, no schedule installed (the default at runtime): one
//    well-predicted acquire load + null check per site.  No site sits on
//    the per-packet sketch update path — rings, worker loops, epoch
//    boundaries and file I/O only.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace nitro::fault {

/// Compile-time master switch.  Define NITRO_FAULT_DISABLED project-wide
/// to remove every fault point from the build.
#if defined(NITRO_FAULT_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Instrumented locations.  A "lane" disambiguates parallel instances of
/// a site (the shard index for rings/workers; 0 elsewhere).
enum class Site : std::uint8_t {
  kRingPush = 0,     // SpscRing producer side (single + bulk)
  kWorkerLoop,       // ShardGroup worker, once per poll iteration
  kDaemonEpoch,      // MeasurementDaemon::end_epoch entry
  kDaemonClock,      // packet timestamps entering the daemon
  kCheckpointWrite,  // CheckpointStore::save, before the tmp write
  kCheckpointRead,   // CheckpointStore::load, after reading a file
  kExportConnect,    // EpochExporter, before each connect attempt
  kExportSend,       // EpochExporter, before each epoch frame send
  kCollectorIngest,  // collector connection, per decoded epoch frame
  kCollectorDecode,  // CollectorCore::ingest, before the (lock-free) decode
  kChainLoad,        // CheckpointStore::load_chain, after reading a frame
  kRecoverServe,     // collector connection, per decoded recover request
  kAdmissionValve,   // ChurnValve trip on a shard's producer path
  kSiteCount_,       // sentinel
};

inline constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kSiteCount_);

inline const char* to_string(Site s) noexcept {
  switch (s) {
    case Site::kRingPush: return "ring_push";
    case Site::kWorkerLoop: return "worker_loop";
    case Site::kDaemonEpoch: return "daemon_epoch";
    case Site::kDaemonClock: return "daemon_clock";
    case Site::kCheckpointWrite: return "checkpoint_write";
    case Site::kCheckpointRead: return "checkpoint_read";
    case Site::kExportConnect: return "export_connect";
    case Site::kExportSend: return "export_send";
    case Site::kCollectorIngest: return "collector_ingest";
    case Site::kCollectorDecode: return "collector_decode";
    case Site::kChainLoad: return "chain_load";
    case Site::kRecoverServe: return "recover_serve";
    case Site::kAdmissionValve: return "admission_valve";
    case Site::kSiteCount_: break;
  }
  return "unknown";
}

/// What a firing fault point does.  The *site* interprets the action (a
/// ring rejects the push, a worker stalls or exits, the checkpoint writer
/// truncates); the framework only selects and counts.
enum class Action : std::uint8_t {
  kNone = 0,
  kStall,      // param = nanoseconds to stall (interruptible, see stall_ns)
  kDie,        // worker: exit its loop; daemon: throw DaemonCrash
  kReject,     // ring: report full (overflow storm)
  kTornWrite,  // checkpoint save: persist only `param` bytes of the frame
  kCorrupt,    // checkpoint read: flip bits (seeded) before validation
  kClockSkew,  // param = ns offset added to the timestamp (as int64)
  kDuplicate,  // exporter: transmit the epoch frame twice (dedup test)
};

inline constexpr std::uint32_t kAnyLane = 0xffffffffu;

/// One deterministic trigger: at the `at_hit`-th visit (1-based, counted
/// per site *and* lane) of `site` on `lane`, perform `action`; with
/// `every` > 0 the rule re-fires on every `every`-th visit after that
/// (overflow storms, periodic stalls).
struct Rule {
  Site site = Site::kRingPush;
  std::uint64_t at_hit = 1;
  std::uint64_t every = 0;  // 0 = fire once
  std::uint32_t lane = kAnyLane;
  Action action = Action::kNone;
  std::uint64_t param = 0;
};

/// A seeded, immutable-after-install fault plan.  Hit counters are kept
/// per (site, lane) so "kill worker 2 at its 5000th loop iteration" means
/// the same thing on every run regardless of thread interleaving.
class Schedule {
 public:
  /// Lanes above this share the last counter (shard counts are far below).
  static constexpr std::uint32_t kMaxLanes = 64;

  explicit Schedule(std::uint64_t seed = 0xfa017ULL) : seed_(seed) {}

  Schedule(const Schedule&) = delete;
  Schedule& operator=(const Schedule&) = delete;

  Schedule& add(const Rule& rule) {
    rules_.push_back(rule);
    return *this;
  }

  // --- convenience builders (tests read better with these) --------------
  Schedule& stall_worker(std::uint32_t lane, std::uint64_t at_hit, std::uint64_t ns) {
    return add({Site::kWorkerLoop, at_hit, 0, lane, Action::kStall, ns});
  }
  Schedule& kill_worker(std::uint32_t lane, std::uint64_t at_hit) {
    return add({Site::kWorkerLoop, at_hit, 0, lane, Action::kDie, 0});
  }
  Schedule& reject_ring_pushes(std::uint32_t lane, std::uint64_t at_hit,
                               std::uint64_t every) {
    return add({Site::kRingPush, at_hit, every, lane, Action::kReject, 0});
  }
  Schedule& torn_checkpoint_write(std::uint64_t at_hit, std::uint64_t keep_bytes) {
    return add({Site::kCheckpointWrite, at_hit, 0, kAnyLane, Action::kTornWrite,
                keep_bytes});
  }
  Schedule& corrupt_checkpoint_read(std::uint64_t at_hit) {
    return add({Site::kCheckpointRead, at_hit, 0, kAnyLane, Action::kCorrupt, 0});
  }
  Schedule& crash_daemon_epoch(std::uint64_t at_hit) {
    return add({Site::kDaemonEpoch, at_hit, 0, kAnyLane, Action::kDie, 0});
  }
  Schedule& skew_clock(std::uint64_t at_hit, std::uint64_t every,
                       std::int64_t skew_ns) {
    return add({Site::kDaemonClock, at_hit, every, kAnyLane, Action::kClockSkew,
                static_cast<std::uint64_t>(skew_ns)});
  }
  // Export-path injections (lane = exporter source id, truncated to u32,
  // so per-monitor rules compose in multi-source tests).
  Schedule& fail_export_connect(std::uint64_t at_hit, std::uint64_t every = 0,
                                std::uint32_t lane = kAnyLane) {
    return add({Site::kExportConnect, at_hit, every, lane, Action::kReject, 0});
  }
  Schedule& fail_export_send(std::uint64_t at_hit, std::uint64_t every = 0,
                             std::uint32_t lane = kAnyLane) {
    return add({Site::kExportSend, at_hit, every, lane, Action::kReject, 0});
  }
  Schedule& stall_export_send(std::uint64_t at_hit, std::uint64_t ns,
                              std::uint64_t every = 0) {
    return add({Site::kExportSend, at_hit, every, kAnyLane, Action::kStall, ns});
  }
  Schedule& duplicate_export_send(std::uint64_t at_hit, std::uint64_t every = 0,
                                  std::uint32_t lane = kAnyLane) {
    return add({Site::kExportSend, at_hit, every, lane, Action::kDuplicate, 0});
  }
  Schedule& drop_collector_frame(std::uint64_t at_hit, std::uint64_t every = 0) {
    return add({Site::kCollectorIngest, at_hit, every, kAnyLane, Action::kReject, 0});
  }
  Schedule& kill_collector_conn(std::uint64_t at_hit) {
    return add({Site::kCollectorIngest, at_hit, 0, kAnyLane, Action::kDie, 0});
  }
  /// Stall one source's snapshot decode inside CollectorCore::ingest
  /// (lane = source id): proves decode runs outside every lock — other
  /// sources must keep applying while this one sleeps.
  Schedule& stall_collector_decode(std::uint32_t lane, std::uint64_t at_hit,
                                   std::uint64_t ns) {
    return add({Site::kCollectorDecode, at_hit, 0, lane, Action::kStall, ns});
  }
  // Distributed-recovery injections (DESIGN.md §15).  Chain-load lane =
  // the frame's sequence number (so one specific frame of the delta chain
  // can be rotted); recover-serve lane = the requesting source id.
  Schedule& corrupt_chain_frame(std::uint64_t at_hit,
                                std::uint32_t lane = kAnyLane) {
    return add({Site::kChainLoad, at_hit, 0, lane, Action::kCorrupt, 0});
  }
  Schedule& drop_recover_request(std::uint64_t at_hit, std::uint64_t every = 0,
                                 std::uint32_t lane = kAnyLane) {
    return add({Site::kRecoverServe, at_hit, every, lane, Action::kReject, 0});
  }
  Schedule& kill_recover_conn(std::uint64_t at_hit, std::uint32_t lane = kAnyLane) {
    return add({Site::kRecoverServe, at_hit, 0, lane, Action::kDie, 0});
  }

  /// Called by the woven fault points.  Thread-safe; returns the action to
  /// perform (kNone almost always) and its parameter via `param_out`.
  Action check(Site site, std::uint32_t lane, std::uint64_t* param_out) noexcept {
    const std::size_t s = static_cast<std::size_t>(site);
    const std::uint32_t l = lane < kMaxLanes ? lane : kMaxLanes - 1;
    const std::uint64_t h =
        hits_[s][l].fetch_add(1, std::memory_order_relaxed) + 1;
    for (const Rule& r : rules_) {
      if (r.site != site) continue;
      if (r.lane != kAnyLane && r.lane != lane) continue;
      const bool fires = r.every == 0
                             ? h == r.at_hit
                             : h >= r.at_hit && (h - r.at_hit) % r.every == 0;
      if (!fires) continue;
      fired_[s].fetch_add(1, std::memory_order_relaxed);
      if (param_out != nullptr) *param_out = r.param;
      return r.action;
    }
    return Action::kNone;
  }

  /// Visits of `site` so far, summed over lanes (observability for tests).
  std::uint64_t hits(Site site) const noexcept {
    const std::size_t s = static_cast<std::size_t>(site);
    std::uint64_t n = 0;
    for (const auto& lane : hits_[s]) n += lane.load(std::memory_order_relaxed);
    return n;
  }

  std::uint64_t hits(Site site, std::uint32_t lane) const noexcept {
    const std::size_t s = static_cast<std::size_t>(site);
    const std::uint32_t l = lane < kMaxLanes ? lane : kMaxLanes - 1;
    return hits_[s][l].load(std::memory_order_relaxed);
  }

  /// Rules of `site` that actually fired (tests assert the injection
  /// happened rather than silently missing its trigger).
  std::uint64_t fired(Site site) const noexcept {
    return fired_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
  }

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<Rule> rules_;
  std::array<std::array<std::atomic<std::uint64_t>, kMaxLanes>, kNumSites> hits_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> fired_{};
};

namespace detail {
inline std::atomic<Schedule*>& schedule_slot() noexcept {
  static std::atomic<Schedule*> slot{nullptr};
  return slot;
}
}  // namespace detail

/// Install a schedule process-wide.  The caller keeps ownership and must
/// uninstall before destroying it (ScopedFaultInjection does both).
inline void install(Schedule* schedule) noexcept {
  detail::schedule_slot().store(schedule, std::memory_order_release);
}

inline void uninstall() noexcept { install(nullptr); }

inline Schedule* installed() noexcept {
  return detail::schedule_slot().load(std::memory_order_acquire);
}

/// The fault point.  Compiled out entirely under NITRO_FAULT_DISABLED;
/// otherwise a null check when no schedule is installed.
inline Action point(Site site, std::uint32_t lane = 0,
                    std::uint64_t* param_out = nullptr) noexcept {
  if constexpr (!kEnabled) {
    (void)site, (void)lane, (void)param_out;
    return Action::kNone;
  } else {
    Schedule* s = detail::schedule_slot().load(std::memory_order_acquire);
    if (s == nullptr) [[likely]] return Action::kNone;
    return s->check(site, lane, param_out);
  }
}

/// RAII installer for tests: the schedule is active for the scope's
/// lifetime and guaranteed uninstalled on exit (also on test failure).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(Schedule& schedule) { install(&schedule); }
  ~ScopedFaultInjection() { uninstall(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Interruptible stall used by kStall sites: sleeps in 1ms slices until
/// `total_ns` elapsed or `abort()` turns true, so supervision (quarantine,
/// stop()) never waits out a long injected stall.
template <typename AbortFn>
void stall_ns(std::uint64_t total_ns, AbortFn&& abort) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::nanoseconds(total_ns);
  while (clock::now() < deadline) {
    if (abort()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Deterministic bit rot: flips one seeded bit per 64-byte window (and at
/// least one bit overall), so corruption tests are reproducible and CRC
/// validation has something to catch in every cache line sized region.
inline void corrupt_bytes(std::span<std::uint8_t> bytes, std::uint64_t seed) {
  if (bytes.empty()) return;
  SplitMix64 rng(seed ^ 0xbadc0ffee0ddf00dULL);
  for (std::size_t base = 0; base < bytes.size(); base += 64) {
    const std::size_t window = std::min<std::size_t>(64, bytes.size() - base);
    const std::uint64_t r = rng.next();
    bytes[base + (r % window)] ^=
        static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
  }
}

}  // namespace nitro::fault
