#include "trace/ground_truth.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace nitro::trace {

double GroundTruth::l2() const {
  double s = 0.0;
  for (const auto& [k, v] : counts_) {
    const double f = static_cast<double>(v);
    s += f * f;
  }
  return std::sqrt(s);
}

double GroundTruth::entropy() const {
  if (total_ <= 0) return 0.0;
  const double m = static_cast<double>(total_);
  double sum = 0.0;
  for (const auto& [k, v] : counts_) sum += xlog2x(static_cast<double>(v));
  return std::log2(m) - sum / m;
}

std::vector<std::pair<FlowKey, std::int64_t>> GroundTruth::heavy_hitters(
    std::int64_t threshold) const {
  std::vector<std::pair<FlowKey, std::int64_t>> out;
  for (const auto& [k, v] : counts_) {
    if (v >= threshold) out.emplace_back(k, v);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::vector<std::pair<FlowKey, std::int64_t>> GroundTruth::top_k(std::size_t k) const {
  std::vector<std::pair<FlowKey, std::int64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::pair<FlowKey, std::int64_t>> GroundTruth::changes(
    const GroundTruth& prev, const GroundTruth& cur, std::int64_t threshold) {
  std::vector<std::pair<FlowKey, std::int64_t>> out;
  for (const auto& [k, v] : cur.counts_) {
    const std::int64_t delta = std::llabs(v - prev.count(k));
    if (delta >= threshold) out.emplace_back(k, delta);
  }
  // Flows that disappeared entirely.
  for (const auto& [k, v] : prev.counts_) {
    if (cur.counts_.find(k) == cur.counts_.end() && v >= threshold) {
      out.emplace_back(k, v);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace nitro::trace
