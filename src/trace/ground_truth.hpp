// Exact stream statistics, used as the reference for every accuracy
// experiment (relative error, recall, entropy, distinct count, change).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"
#include "trace/packet_record.hpp"

namespace nitro::trace {

class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const Trace& trace) { add(trace); }

  void add(const Trace& trace) {
    for (const auto& p : trace) add(p.key, 1);
  }

  void add(const FlowKey& key, std::int64_t count) {
    counts_[key] += count;
    total_ += count;
  }

  std::int64_t count(const FlowKey& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::int64_t total() const noexcept { return total_; }
  std::size_t distinct() const noexcept { return counts_.size(); }

  /// First and second norms of the frequency vector.
  double l1() const noexcept { return static_cast<double>(total_); }
  double l2() const;

  /// Empirical entropy of the flow-size distribution, in bits.
  double entropy() const;

  /// Flows with count >= threshold, sorted by descending count.
  std::vector<std::pair<FlowKey, std::int64_t>> heavy_hitters(std::int64_t threshold) const;

  /// The k largest flows, descending.
  std::vector<std::pair<FlowKey, std::int64_t>> top_k(std::size_t k) const;

  /// Flows whose |count_this - count_prev| >= threshold (exact change
  /// ground truth between two epochs).
  static std::vector<std::pair<FlowKey, std::int64_t>> changes(
      const GroundTruth& prev, const GroundTruth& cur, std::int64_t threshold);

  const std::unordered_map<FlowKey, std::int64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::unordered_map<FlowKey, std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace nitro::trace
