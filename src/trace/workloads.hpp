// Synthetic workloads standing in for the paper's traces (§7 "Workloads").
//
// | Paper trace            | Generator here     | Character                          |
// |------------------------|--------------------|------------------------------------|
// | CAIDA 2016/2018        | caida_like()       | Zipf s≈1.0, ~714B mean packets     |
// | UNI1/UNI2 data center  | datacenter()       | high skew (s≈1.3), ~747B packets   |
// | MACCDC DDoS/malware    | ddos()             | near-uniform sources → one victim, |
// |                        |                    | 272B packets, huge flow count      |
// | MoonGen 64B stress     | min_sized_stress() | random 64B packets, worst case     |
//
// All generators are fully deterministic from their seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flow_key.hpp"
#include "trace/packet_record.hpp"

namespace nitro::trace {

/// Parameters shared by the generators.
struct WorkloadSpec {
  std::uint64_t packets = 1'000'000;
  std::uint64_t flows = 100'000;  // flow-space size (Zipf support)
  double zipf_s = 1.0;            // skew
  double mean_packet_bytes = 714.0;
  double rate_pps = 14'880'000.0;  // arrival rate used for timestamps
  std::uint64_t seed = 1;
};

/// CAIDA-like backbone trace: Zipf-distributed flow sizes, heavy tail.
Trace caida_like(const WorkloadSpec& spec);

/// Data-center trace: few elephants carry most bytes (higher skew).
Trace datacenter(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// DDoS trace: `flows` distinct sources hammering one destination with
/// small packets; source popularity is near-uniform (heavy-tailed regime
/// where skew-dependent baselines break).
Trace ddos(std::uint64_t packets, std::uint64_t sources, std::uint64_t seed);

/// Min-sized 64B stress traffic with `flows` uniformly random flows.
Trace min_sized_stress(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// Uniform flow popularity over exactly `flows` keys (Figure 3a sweeps).
Trace uniform_flows(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// Deterministic flow key for rank `i` within a workload family.
FlowKey flow_key_for_rank(std::uint64_t rank, std::uint64_t family_seed);

// --- Adversarial workloads (DESIGN.md §16) ---------------------------------
//
// Each attack generator interleaves a benign Zipf background (the same key
// family and skew as caida_like over the same spec) with attack traffic,
// deterministically from its seeds, and reports ground truth about the
// attack so harnesses can measure its effect on the *benign* flows.

/// Attack mixed into a benign background.
struct AttackSpec {
  WorkloadSpec benign;            // background traffic (caida_like semantics)
  double attack_fraction = 0.5;   // fraction of packets that are attack traffic
  std::uint64_t attack_seed = 0x0a77acc4ULL;
};

struct AttackTrace {
  Trace trace;
  /// Crafted keys (collision flood); empty for churn/skew attacks where
  /// the attack keys are unbounded or implicit.
  std::vector<FlowKey> attack_keys;
  std::uint64_t attack_packets = 0;
  std::uint64_t benign_packets = 0;
};

/// Hash-collision flood: attack packets spread uniformly over `crafted`
/// keys (see trace/adversary.hpp — all colliding in a majority of rows of
/// the targeted sketch), mixed into the benign background.  Against the
/// targeted seed every crafted key's estimate ≈ the whole flood volume.
AttackTrace collision_flood(const AttackSpec& spec,
                            const std::vector<FlowKey>& crafted);

/// High-churn arrival storm: every attack packet carries a never-repeating
/// flow key, grinding the TopK heap minimum and the distinct-flow rate.
AttackTrace churn_storm(const AttackSpec& spec);

/// Sudden skew flip: the first `flip_at` fraction of packets follow the
/// spec's Zipf skew over its key family; the remainder switch to skew
/// `flipped_s` over a *different* family (the hot set is replaced
/// wholesale).  benign_packets counts phase 1, attack_packets phase 2.
AttackTrace skew_flip(const WorkloadSpec& spec, double flip_at = 0.5,
                      double flipped_s = 0.2);

/// Human-readable workload name -> generator, for bench CLI symmetry.
/// Adversarial names: "churn", "skewflip" (collision floods need a target
/// sketch's parameters, so they are only reachable through
/// collision_flood()).
Trace by_name(const std::string& name, const WorkloadSpec& spec);

}  // namespace nitro::trace
