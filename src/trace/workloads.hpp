// Synthetic workloads standing in for the paper's traces (§7 "Workloads").
//
// | Paper trace            | Generator here     | Character                          |
// |------------------------|--------------------|------------------------------------|
// | CAIDA 2016/2018        | caida_like()       | Zipf s≈1.0, ~714B mean packets     |
// | UNI1/UNI2 data center  | datacenter()       | high skew (s≈1.3), ~747B packets   |
// | MACCDC DDoS/malware    | ddos()             | near-uniform sources → one victim, |
// |                        |                    | 272B packets, huge flow count      |
// | MoonGen 64B stress     | min_sized_stress() | random 64B packets, worst case     |
//
// All generators are fully deterministic from their seed.
#pragma once

#include <cstdint>
#include <string>

#include "trace/packet_record.hpp"

namespace nitro::trace {

/// Parameters shared by the generators.
struct WorkloadSpec {
  std::uint64_t packets = 1'000'000;
  std::uint64_t flows = 100'000;  // flow-space size (Zipf support)
  double zipf_s = 1.0;            // skew
  double mean_packet_bytes = 714.0;
  double rate_pps = 14'880'000.0;  // arrival rate used for timestamps
  std::uint64_t seed = 1;
};

/// CAIDA-like backbone trace: Zipf-distributed flow sizes, heavy tail.
Trace caida_like(const WorkloadSpec& spec);

/// Data-center trace: few elephants carry most bytes (higher skew).
Trace datacenter(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// DDoS trace: `flows` distinct sources hammering one destination with
/// small packets; source popularity is near-uniform (heavy-tailed regime
/// where skew-dependent baselines break).
Trace ddos(std::uint64_t packets, std::uint64_t sources, std::uint64_t seed);

/// Min-sized 64B stress traffic with `flows` uniformly random flows.
Trace min_sized_stress(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// Uniform flow popularity over exactly `flows` keys (Figure 3a sweeps).
Trace uniform_flows(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed);

/// Deterministic flow key for rank `i` within a workload family.
FlowKey flow_key_for_rank(std::uint64_t rank, std::uint64_t family_seed);

/// Human-readable workload name -> generator, for bench CLI symmetry.
Trace by_name(const std::string& name, const WorkloadSpec& spec);

}  // namespace nitro::trace
