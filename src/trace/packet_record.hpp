// A replayable packet record: everything the measurement path consumes.
//
// Real traces (CAIDA, UNI1/2, MACCDC) reduce to exactly this for every
// algorithm in the paper — a 5-tuple, a wire length, and an arrival time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::trace {

struct PacketRecord {
  FlowKey key;
  std::uint16_t wire_bytes = 64;
  std::uint64_t ts_ns = 0;
};

using Trace = std::vector<PacketRecord>;

}  // namespace nitro::trace
