#include "trace/workloads.hpp"

#include <stdexcept>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "trace/zipf.hpp"

namespace nitro::trace {

namespace {

/// Two-point packet-size mix of 64B and 1500B hitting a target mean —
/// reproduces the bimodal size distributions of real traces well enough
/// for byte-rate accounting.
std::uint16_t draw_packet_size(Pcg32& rng, double mean_bytes) {
  if (mean_bytes <= 64.0) return 64;
  if (mean_bytes >= 1500.0) return 1500;
  const double q = (mean_bytes - 64.0) / (1500.0 - 64.0);
  return rng.next_double() < q ? 1500 : 64;
}

std::uint64_t ts_for(std::uint64_t i, double rate_pps) {
  return static_cast<std::uint64_t>(static_cast<double>(i) * 1e9 / rate_pps);
}

}  // namespace

FlowKey flow_key_for_rank(std::uint64_t rank, std::uint64_t family_seed) {
  const std::uint64_t a = mix64(rank * 0x9e3779b97f4a7c15ULL ^ family_seed);
  const std::uint64_t b = mix64(a ^ 0xc0ffee123456789ULL);
  FlowKey k;
  k.src_ip = static_cast<std::uint32_t>(a);
  k.dst_ip = static_cast<std::uint32_t>(a >> 32);
  k.src_port = static_cast<std::uint16_t>(b);
  k.dst_port = static_cast<std::uint16_t>(b >> 16);
  k.proto = (b >> 32) & 1 ? 6 : 17;  // TCP/UDP mix
  return k;
}

Trace caida_like(const WorkloadSpec& spec) {
  Trace out;
  out.reserve(spec.packets);
  ZipfSampler zipf(spec.flows, spec.zipf_s, spec.seed);
  Pcg32 rng(mix64(spec.seed ^ 0xca1daULL));
  for (std::uint64_t i = 0; i < spec.packets; ++i) {
    PacketRecord p;
    p.key = flow_key_for_rank(zipf.next(), spec.seed);
    p.wire_bytes = draw_packet_size(rng, spec.mean_packet_bytes);
    p.ts_ns = ts_for(i, spec.rate_pps);
    out.push_back(p);
  }
  return out;
}

Trace datacenter(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = flows;
  spec.zipf_s = 1.3;  // UNI1/UNI2 are markedly more skewed than CAIDA
  spec.mean_packet_bytes = 747.0;
  spec.seed = mix64(seed ^ 0xdc01ULL);
  return caida_like(spec);
}

Trace ddos(std::uint64_t packets, std::uint64_t sources, std::uint64_t seed) {
  Trace out;
  out.reserve(packets);
  // Two-layer attack, as in real captures: ~10% of packets come from 100
  // "master" sources (each ~0.1% of traffic — genuine heavy hitters), the
  // rest from a near-uniform swarm (s = 0.4) of `sources` bots — the
  // heavy-tailed regime that breaks skew-dependent baselines (Fig. 3b, 14).
  ZipfSampler zipf(sources, 0.4, mix64(seed ^ 0xddddULL));
  Pcg32 rng(mix64(seed ^ 0xdd05ULL));
  const std::uint64_t master_family = mix64(seed ^ 0x3a57e125ULL);
  const FlowKey victim = flow_key_for_rank(0, mix64(seed ^ 0x1c71ULL));
  for (std::uint64_t i = 0; i < packets; ++i) {
    PacketRecord p;
    if (rng.next_double() < 0.10) {
      p.key = flow_key_for_rank(1 + rng.next_below(100), master_family);
    } else {
      p.key = flow_key_for_rank(zipf.next(), mix64(seed ^ 0xa77acc3aULL));
    }
    p.key.dst_ip = victim.dst_ip;  // all traffic converges on one host
    p.key.dst_port = 80;
    p.wire_bytes = draw_packet_size(rng, 272.0);
    p.ts_ns = ts_for(i, 20'000'000.0);
    out.push_back(p);
  }
  return out;
}

Trace min_sized_stress(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  Trace out;
  out.reserve(packets);
  Pcg32 rng(mix64(seed ^ 0x64b64bULL));
  for (std::uint64_t i = 0; i < packets; ++i) {
    PacketRecord p;
    p.key = flow_key_for_rank(rng.next_u64() % flows, seed);
    p.wire_bytes = 64;
    p.ts_ns = ts_for(i, 59'530'000.0);  // 40GbE worst case
    out.push_back(p);
  }
  return out;
}

Trace uniform_flows(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  Trace out;
  out.reserve(packets);
  Pcg32 rng(mix64(seed ^ 0x0f10f1ULL));
  for (std::uint64_t i = 0; i < packets; ++i) {
    PacketRecord p;
    p.key = flow_key_for_rank(rng.next_u64() % flows, seed);
    p.wire_bytes = 714;
    p.ts_ns = ts_for(i, 14'880'000.0);
    out.push_back(p);
  }
  return out;
}

AttackTrace collision_flood(const AttackSpec& spec,
                            const std::vector<FlowKey>& crafted) {
  if (crafted.empty()) {
    throw std::invalid_argument("collision_flood: empty crafted key set");
  }
  AttackTrace out;
  out.attack_keys = crafted;
  out.trace.reserve(spec.benign.packets);
  ZipfSampler zipf(spec.benign.flows, spec.benign.zipf_s, spec.benign.seed);
  Pcg32 rng(mix64(spec.benign.seed ^ spec.attack_seed ^ 0xc011f100dULL));
  for (std::uint64_t i = 0; i < spec.benign.packets; ++i) {
    PacketRecord p;
    if (rng.next_double() < spec.attack_fraction) {
      // Uniform spray over the crafted set: each member stays individually
      // small (well under any heavy-hitter threshold) while the targeted
      // buckets absorb the whole flood.
      p.key = crafted[rng.next_below(static_cast<std::uint32_t>(crafted.size()))];
      p.wire_bytes = 64;
      ++out.attack_packets;
    } else {
      p.key = flow_key_for_rank(zipf.next(), spec.benign.seed);
      p.wire_bytes = draw_packet_size(rng, spec.benign.mean_packet_bytes);
      ++out.benign_packets;
    }
    p.ts_ns = ts_for(i, spec.benign.rate_pps);
    out.trace.push_back(p);
  }
  return out;
}

AttackTrace churn_storm(const AttackSpec& spec) {
  AttackTrace out;
  out.trace.reserve(spec.benign.packets);
  ZipfSampler zipf(spec.benign.flows, spec.benign.zipf_s, spec.benign.seed);
  Pcg32 rng(mix64(spec.benign.seed ^ spec.attack_seed ^ 0xc4112152ULL));
  const std::uint64_t churn_family = mix64(spec.attack_seed ^ 0x51025ULL);
  std::uint64_t next_unique = 0;
  for (std::uint64_t i = 0; i < spec.benign.packets; ++i) {
    PacketRecord p;
    if (rng.next_double() < spec.attack_fraction) {
      // Monotone rank in a dedicated family: no attack key ever repeats.
      p.key = flow_key_for_rank(next_unique++, churn_family);
      p.wire_bytes = 64;
      ++out.attack_packets;
    } else {
      p.key = flow_key_for_rank(zipf.next(), spec.benign.seed);
      p.wire_bytes = draw_packet_size(rng, spec.benign.mean_packet_bytes);
      ++out.benign_packets;
    }
    p.ts_ns = ts_for(i, spec.benign.rate_pps);
    out.trace.push_back(p);
  }
  return out;
}

AttackTrace skew_flip(const WorkloadSpec& spec, double flip_at, double flipped_s) {
  AttackTrace out;
  out.trace.reserve(spec.packets);
  const auto flip_point =
      static_cast<std::uint64_t>(static_cast<double>(spec.packets) * flip_at);
  ZipfSampler before(spec.flows, spec.zipf_s, spec.seed);
  ZipfSampler after(spec.flows, flipped_s, mix64(spec.seed ^ 0xf11bULL));
  const std::uint64_t flipped_family = mix64(spec.seed ^ 0xf11bfa3ULL);
  Pcg32 rng(mix64(spec.seed ^ 0x5f11b5ULL));
  for (std::uint64_t i = 0; i < spec.packets; ++i) {
    PacketRecord p;
    if (i < flip_point) {
      p.key = flow_key_for_rank(before.next(), spec.seed);
      ++out.benign_packets;
    } else {
      p.key = flow_key_for_rank(after.next(), flipped_family);
      ++out.attack_packets;
    }
    p.wire_bytes = draw_packet_size(rng, spec.mean_packet_bytes);
    p.ts_ns = ts_for(i, spec.rate_pps);
    out.trace.push_back(p);
  }
  return out;
}

Trace by_name(const std::string& name, const WorkloadSpec& spec) {
  if (name == "caida") return caida_like(spec);
  if (name == "datacenter" || name == "dc") return datacenter(spec.packets, spec.flows, spec.seed);
  if (name == "ddos") return ddos(spec.packets, spec.flows, spec.seed);
  if (name == "minsized" || name == "64b") return min_sized_stress(spec.packets, spec.flows, spec.seed);
  if (name == "uniform") return uniform_flows(spec.packets, spec.flows, spec.seed);
  if (name == "churn") {
    return churn_storm(AttackSpec{spec, 0.5, mix64(spec.seed ^ 0xadeULL)}).trace;
  }
  if (name == "skewflip") return skew_flip(spec).trace;
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace nitro::trace
