// Binary trace persistence.
//
// Generated workloads can be saved and replayed so experiments are
// repeatable without regenerating (and so real packet captures, reduced
// to 5-tuple records, can be fed in).  Format: little-endian
//   magic "NTR1" (u32) | record count (u64) | records
// with each record = FlowKey (13B) + wire_bytes (u16) + ts_ns (u64).
#pragma once

#include <string>

#include "trace/packet_record.hpp"

namespace nitro::trace {

/// Writes the trace; throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const Trace& trace);

/// Reads a trace written by save_trace; throws std::runtime_error on
/// missing file, bad magic, or truncation.
Trace load_trace(const std::string& path);

}  // namespace nitro::trace
