// Zipf(N, s) sampling by rejection-inversion (Hörmann & Derflinger 1996).
//
// Draws ranks in [1, N] with P(k) ∝ k^-s in O(1) time and O(1) memory —
// no CDF table, so workloads with tens of millions of flows (Figure 3)
// cost nothing to set up.  Internet traffic flow sizes are classically
// Zipf-like, which is how we synthesize CAIDA-like traces.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace nitro::trace {

class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s, std::uint64_t seed)
      : n_(n), s_(s), rng_(seed) {
    inverse_s_ = 1.0 - s;  // must precede the h_integral() calls below
    h_integral_x1_ = h_integral(1.5) - 1.0;
    h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  }

  std::uint64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

  /// One rank sample in [1, n].
  std::uint64_t next() {
    for (;;) {
      const double u = h_integral_n_ +
                       rng_.next_double() * (h_integral_x1_ - h_integral_n_);
      const double x = h_integral_inverse(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      if (k - x <= s_acceptance_ ||
          u >= h_integral(static_cast<double>(k) + 0.5) - h(static_cast<double>(k))) {
        return k;
      }
    }
  }

 private:
  // H(x) = integral of x^-s; helper(x) = (exp(x·(1-s)) - 1)/(1-s) handled
  // via expm1/log1p for numerical stability near s = 1.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2(inverse_s_ * log_x) * log_x;
  }

  double h(double x) const { return std::exp(-s_ * std::log(x)); }

  double h_integral_inverse(double x) const {
    double t = x * inverse_s_;
    if (t < -1.0) t = -1.0;  // numerical guard
    return std::exp(helper1(t) * x);
  }

  // helper1(x) = log1p(x)/x, helper2(x) = expm1(x)/x, both -> 1 as x -> 0.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
  }
  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 + x * x / 6.0;
  }

  std::uint64_t n_;
  double s_;
  Pcg32 rng_;
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double inverse_s_ = 0.0;
  static constexpr double s_acceptance_ = 0.5;
};

}  // namespace nitro::trace
