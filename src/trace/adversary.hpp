// Hash-collision crafting oracle (DESIGN.md §16, threat model T1).
//
// The sketch's hash chain is public code: a flow key is digested with
// xxHash64 under a fixed public seed, then each CounterMatrix row derives
// its index/sign hashes from a SplitMix64 chain over the matrix seed.  An
// adversary who learns (depth, width, seed) — by reading a config file, a
// checkpoint, or this repository — can therefore evaluate the exact same
// hashes offline and search the key space for a set of flows that land in
// the same buckets with the same signs in a majority of rows.  Spraying
// traffic over that set concentrates its whole volume into a few cells and
// makes every member's median estimate ≈ the full flood volume, poisoning
// the TopK heap and the error bound.
//
// This header IS that attacker: it replicates the repo's own seed
// derivation to craft deterministic collision sets, used by the attack
// workload generators (trace/workloads.hpp) and the chaos harness.  The
// defense that invalidates it is keyed seed rotation
// (core/seed_schedule.hpp): crafted sets go stale at the next generation
// boundary because the attacker does not know the master key.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "common/tabulation.hpp"
#include "sketch/univmon.hpp"

namespace nitro::trace::adversary {

/// What the attacker learned about one CounterMatrix.
struct TargetSketch {
  std::uint32_t depth = 0;
  std::uint32_t width = 0;
  std::uint64_t seed = 0;
  bool signed_updates = true;
};

/// Parameters of the level-0 Count Sketch of a UnivMon built as
/// UnivMon(cfg, seed) — the level every packet updates, and the one whose
/// heap reports heavy hitters.  Mirrors UnivMon's SplitMix64 seed chain.
TargetSketch univmon_level0_target(const sketch::UnivMonConfig& cfg,
                                   std::uint64_t seed);

/// Offline replica of a CounterMatrix's row/sign hash functions.
class HashOracle {
 public:
  explicit HashOracle(const TargetSketch& target);

  std::uint32_t depth() const noexcept {
    return static_cast<std::uint32_t>(row_hash_.size());
  }
  std::uint32_t column(std::uint32_t r, std::uint64_t digest) const noexcept {
    return row_hash_[r].index_of_digest(digest);
  }
  std::int32_t sign(std::uint32_t r, std::uint64_t digest) const noexcept {
    return sign_hash_[r].sign_of_digest(digest);
  }

  /// Rows where `a` and `b` share both bucket and sign — the rows whose
  /// counters cannot distinguish the two keys.
  std::uint32_t colliding_rows(const FlowKey& a, const FlowKey& b) const noexcept;

 private:
  std::vector<RowHash> row_hash_;
  std::vector<SignHash> sign_hash_;
};

struct CollisionSet {
  FlowKey anchor;               // reference key the set collides with
  std::vector<FlowKey> keys;    // crafted keys (anchor included, index 0)
  std::uint32_t min_rows = 0;   // every key matches the anchor on >= this many rows
  std::uint64_t candidates_tried = 0;
};

/// Enumerate deterministic candidate keys (flow_key_for_rank over
/// `attack_seed`) and keep those colliding with the anchor on at least
/// `min_rows` rows (bucket and sign).  min_rows should be a majority of
/// the depth so the median estimator cannot vote the flood out.  Stops
/// after `max_candidates` evaluations even if `count` keys were not found
/// — check keys.size() on return.  Fully deterministic in attack_seed.
CollisionSet craft_collision_set(const TargetSketch& target, std::size_t count,
                                 std::uint32_t min_rows, std::uint64_t attack_seed,
                                 std::uint64_t max_candidates = 200'000'000);

}  // namespace nitro::trace::adversary
