#include "trace/adversary.hpp"

#include "common/hash.hpp"
#include "trace/workloads.hpp"

namespace nitro::trace::adversary {

TargetSketch univmon_level0_target(const sketch::UnivMonConfig& cfg,
                                   std::uint64_t seed) {
  // UnivMon's ctor draws one SplitMix64 value per level, in level order,
  // and hands it to that level's CountSketch (signed CounterMatrix).
  SplitMix64 sm(seed);
  TargetSketch t;
  t.depth = cfg.depth;
  t.width = cfg.width_at(0);
  t.seed = sm.next();
  t.signed_updates = true;
  return t;
}

HashOracle::HashOracle(const TargetSketch& target) {
  // Byte-for-byte the CounterMatrix constructor's derivation: one chain,
  // alternating row-index and sign draws.
  row_hash_.reserve(target.depth);
  sign_hash_.reserve(target.depth);
  SplitMix64 sm(target.seed);
  for (std::uint32_t r = 0; r < target.depth; ++r) {
    row_hash_.emplace_back(target.width, sm.next());
    sign_hash_.emplace_back(sm.next(), target.signed_updates);
  }
}

std::uint32_t HashOracle::colliding_rows(const FlowKey& a, const FlowKey& b) const noexcept {
  const std::uint64_t da = flow_digest(a);
  const std::uint64_t db = flow_digest(b);
  std::uint32_t n = 0;
  for (std::uint32_t r = 0; r < depth(); ++r) {
    if (column(r, da) == column(r, db) && sign(r, da) == sign(r, db)) ++n;
  }
  return n;
}

CollisionSet craft_collision_set(const TargetSketch& target, std::size_t count,
                                 std::uint32_t min_rows, std::uint64_t attack_seed,
                                 std::uint64_t max_candidates) {
  HashOracle oracle(target);
  CollisionSet set;
  set.min_rows = min_rows;
  set.anchor = flow_key_for_rank(0, attack_seed);
  set.keys.push_back(set.anchor);

  const std::uint64_t anchor_digest = flow_digest(set.anchor);
  const std::uint32_t d = oracle.depth();
  std::vector<std::uint32_t> anchor_col(d);
  std::vector<std::int32_t> anchor_sign(d);
  for (std::uint32_t r = 0; r < d; ++r) {
    anchor_col[r] = oracle.column(r, anchor_digest);
    anchor_sign[r] = oracle.sign(r, anchor_digest);
  }

  for (std::uint64_t i = 1;
       set.keys.size() < count && set.candidates_tried < max_candidates; ++i) {
    ++set.candidates_tried;
    const FlowKey key = flow_key_for_rank(i, attack_seed);
    const std::uint64_t digest = flow_digest(key);
    std::uint32_t matched = 0;
    for (std::uint32_t r = 0; r < d; ++r) {
      if (oracle.column(r, digest) == anchor_col[r] &&
          oracle.sign(r, digest) == anchor_sign[r]) {
        ++matched;
      } else if (matched + (d - r - 1) < min_rows) {
        break;  // cannot reach min_rows with the rows left
      }
    }
    if (matched >= min_rows) set.keys.push_back(key);
  }
  return set;
}

}  // namespace nitro::trace::adversary
