#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/io.hpp"

namespace nitro::trace {

namespace {

constexpr std::uint32_t kMagic = 0x3152544eu;  // "NTR1"
constexpr std::size_t kRecordBytes = 13 + 2 + 8;

void pack_record(const PacketRecord& rec, std::uint8_t* out) {
  std::memcpy(out, &rec.key, 13);
  std::memcpy(out + 13, &rec.wire_bytes, 2);
  std::memcpy(out + 15, &rec.ts_ns, 8);
}

PacketRecord unpack_record(const std::uint8_t* in) {
  PacketRecord rec;
  std::memcpy(&rec.key, in, 13);
  std::memcpy(&rec.wire_bytes, in + 13, 2);
  std::memcpy(&rec.ts_ns, in + 15, 8);
  return rec;
}

}  // namespace

void save_trace(const std::string& path, const Trace& trace) {
  // Serialized fully in memory, then written through the same atomic
  // tmp + fsync + rename pattern as CheckpointStore: a crash mid-write
  // must never leave a truncated file behind a valid magic (a reader
  // would silently load a shortened trace), and a failed rewrite must
  // leave any previous trace at `path` intact.
  std::vector<std::uint8_t> bytes;
  bytes.reserve(sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                kRecordBytes * trace.size());
  const std::uint32_t magic = kMagic;
  const std::uint64_t count = trace.size();
  bytes.insert(bytes.end(), reinterpret_cast<const std::uint8_t*>(&magic),
               reinterpret_cast<const std::uint8_t*>(&magic) + sizeof magic);
  bytes.insert(bytes.end(), reinterpret_cast<const std::uint8_t*>(&count),
               reinterpret_cast<const std::uint8_t*>(&count) + sizeof count);
  for (const auto& pr : trace) {
    std::uint8_t rec[kRecordBytes];
    pack_record(pr, rec);
    bytes.insert(bytes.end(), rec, rec + kRecordBytes);
  }
  if (!io::atomic_write_file(path, bytes)) {
    throw std::runtime_error("save_trace: atomic write failed for " + path);
  }
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);

  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_trace: bad magic in " + path);
  }

  Trace trace;
  trace.reserve(count);
  std::vector<std::uint8_t> chunk(kRecordBytes * 65536);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(remaining, chunk.size() / kRecordBytes);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(batch * kRecordBytes));
    if (!in) throw std::runtime_error("load_trace: truncated file " + path);
    for (std::uint64_t i = 0; i < batch; ++i) {
      trace.push_back(unpack_record(chunk.data() + i * kRecordBytes));
    }
    remaining -= batch;
  }
  return trace;
}

}  // namespace nitro::trace
