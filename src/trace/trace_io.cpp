#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace nitro::trace {

namespace {

constexpr std::uint32_t kMagic = 0x3152544eu;  // "NTR1"
constexpr std::size_t kRecordBytes = 13 + 2 + 8;

void pack_record(const PacketRecord& rec, std::uint8_t* out) {
  std::memcpy(out, &rec.key, 13);
  std::memcpy(out + 13, &rec.wire_bytes, 2);
  std::memcpy(out + 15, &rec.ts_ns, 8);
}

PacketRecord unpack_record(const std::uint8_t* in) {
  PacketRecord rec;
  std::memcpy(&rec.key, in, 13);
  std::memcpy(&rec.wire_bytes, in + 13, 2);
  std::memcpy(&rec.ts_ns, in + 15, 8);
  return rec;
}

}  // namespace

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);

  const std::uint32_t magic = kMagic;
  const std::uint64_t count = trace.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);

  // Buffered in 64K-record chunks to keep write() syscalls amortized.
  std::vector<std::uint8_t> chunk;
  chunk.reserve(kRecordBytes * 65536);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::uint8_t rec[kRecordBytes];
    pack_record(trace[i], rec);
    chunk.insert(chunk.end(), rec, rec + kRecordBytes);
    if (chunk.size() >= kRecordBytes * 65536) {
      out.write(reinterpret_cast<const char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size()));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size()));
  }
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);

  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_trace: bad magic in " + path);
  }

  Trace trace;
  trace.reserve(count);
  std::vector<std::uint8_t> chunk(kRecordBytes * 65536);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(remaining, chunk.size() / kRecordBytes);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(batch * kRecordBytes));
    if (!in) throw std::runtime_error("load_trace: truncated file " + path);
    for (std::uint64_t i = 0; i < batch; ++i) {
      trace.push_back(unpack_record(chunk.data() + i * kRecordBytes));
    }
    remaining -= batch;
  }
  return trace;
}

}  // namespace nitro::trace
