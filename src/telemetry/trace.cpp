#include "telemetry/trace.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace nitro::telemetry {

namespace detail {

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace detail

namespace {

std::size_t round_up_pow2(std::size_t v) {
  if (v < 8) v = 8;
  return std::bit_ceil(v);
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : mask_(round_up_pow2(capacity) - 1) {}

Tracer::~Tracer() {
  // A still-installed tracer dying is a use-after-free waiting to happen in
  // any thread racing a record(); clear the slot defensively.
  Tracer* self = this;
  detail::tracer_slot().compare_exchange_strong(self, nullptr,
                                                std::memory_order_acq_rel);
  for (auto& slot : bufs_) {
    delete slot.load(std::memory_order_acquire);
  }
}

Tracer::ThreadBuf& Tracer::buffer_for_thread() noexcept {
  std::uint32_t idx = detail::thread_index();
  if (idx >= kMaxThreads) idx = kMaxThreads - 1;
  ThreadBuf* buf = bufs_[idx].load(std::memory_order_acquire);
  if (buf == nullptr) {
    auto* fresh = new ThreadBuf(mask_ + 1);
    // Threads beyond kMaxThreads can race on the shared last index; the
    // loser frees its allocation and uses the winner's buffer.
    if (bufs_[idx].compare_exchange_strong(buf, fresh,
                                           std::memory_order_acq_rel)) {
      return *fresh;
    }
    delete fresh;
  }
  return *buf;
}

void Tracer::record(Stage stage, std::uint64_t source_id, std::uint64_t epoch,
                    std::uint64_t start_ns, std::uint64_t end_ns) noexcept {
  ThreadBuf& buf = buffer_for_thread();
  const std::uint64_t ticket = buf.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = buf.slots[ticket & mask_];

  // Seqlock write: odd seq marks the slot in-flight so a concurrent
  // snapshot discards it, the final release store republishes it whole.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.source_id.store(source_id, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_relaxed);
  slot.stage.store(static_cast<std::uint64_t>(stage), std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);

  recorded_.fetch_add(1, std::memory_order_relaxed);
  const auto si = static_cast<std::size_t>(stage);
  if (si < kNumStages && stage_ns_[si] != nullptr) {
    stage_ns_[si]->observe(end_ns >= start_ns ? end_ns - start_ns : 0);
  }
  if (spans_total_ != nullptr) spans_total_->inc();
}

void Tracer::attach_telemetry(Registry& registry, const std::string& prefix) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stage_ns_[i] = &registry.histogram(prefix + "_span_" +
                                       to_string(static_cast<Stage>(i)) + "_ns");
  }
  spans_total_ = &registry.counter(prefix + "_spans_recorded_total");
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<Span> out;
  for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
    const ThreadBuf* buf = bufs_[t].load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    const std::uint64_t next = buf->next.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t first = next > cap ? next - cap : 0;
    for (std::uint64_t ticket = first; ticket < next; ++ticket) {
      const Slot& slot = buf->slots[ticket & mask_];
      const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before != 2 * ticket + 2) continue;  // torn or overwritten
      Span s;
      s.tid = t;
      s.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      s.end_ns = slot.end_ns.load(std::memory_order_relaxed);
      s.source_id = slot.source_id.load(std::memory_order_relaxed);
      s.epoch = slot.epoch.load(std::memory_order_relaxed);
      const std::uint64_t raw_stage = slot.stage.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
      if (raw_stage >= kNumStages) continue;
      s.stage = static_cast<Stage>(raw_stage);
      out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t lost = 0;
  const std::uint64_t cap = mask_ + 1;
  for (const auto& slot : bufs_) {
    const ThreadBuf* buf = slot.load(std::memory_order_acquire);
    if (buf == nullptr) continue;
    const std::uint64_t next = buf->next.load(std::memory_order_relaxed);
    if (next > cap) lost += next - cap;
  }
  return lost;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

void append_span_event(std::string& out, const Span& s) {
  // Chrome trace-event "complete" event; ts/dur are microseconds (double).
  const double ts_us = static_cast<double>(s.start_ns) / 1e3;
  const double dur_us =
      static_cast<double>(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0) /
      1e3;
  append_fmt(out,
             "{\"name\":\"%s\",\"cat\":\"epoch\",\"ph\":\"X\","
             "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRIu64 ",\"tid\":%u,"
             "\"args\":{\"source_id\":%" PRIu64 ",\"epoch\":%" PRIu64 "}}",
             to_string(s.stage), ts_us, dur_us, s.source_id, s.tid,
             s.source_id, s.epoch);
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer, const std::string& process_name) {
  const auto spans = tracer.snapshot();

  std::string out = "{\"traceEvents\":[";
  // Name each pid (= source_id) track once so Perfetto shows
  // "<process_name> src <id>" instead of a bare number.
  std::vector<std::uint64_t> pids;
  for (const auto& s : spans) {
    if (std::find(pids.begin(), pids.end(), s.source_id) == pids.end()) {
      pids.push_back(s.source_id);
    }
  }
  bool first = true;
  for (std::uint64_t pid : pids) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_fmt(out, "%" PRIu64, pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, process_name);
    append_fmt(out, " src %" PRIu64, pid);
    out += "\"}}";
  }
  for (const auto& s : spans) {
    if (!first) out += ",";
    first = false;
    append_span_event(out, s);
  }
  out += "]}";
  return out;
}

std::string merge_chrome_traces(const std::vector<std::string>& traces) {
  static const std::string kPrefix = "{\"traceEvents\":[";
  std::string out = kPrefix;
  bool first = true;
  for (const auto& t : traces) {
    if (t.rfind(kPrefix, 0) != 0) continue;  // not one of ours
    const std::size_t end = t.rfind("]}");
    if (end == std::string::npos || end <= kPrefix.size()) continue;
    const std::string body = t.substr(kPrefix.size(), end - kPrefix.size());
    if (body.empty()) continue;
    if (!first) out += ",";
    first = false;
    out += body;
  }
  out += "]}";
  return out;
}

}  // namespace nitro::telemetry
