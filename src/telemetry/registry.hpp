// Named registry of telemetry instruments.
//
// The registry is the export surface: everything registered here shows up
// in the Prometheus / JSON snapshots (export.hpp).  Instruments are either
// *owned* (created via counter()/gauge()/histogram()/event_log(), stored
// behind stable unique_ptrs) or *external* (register_external_counter():
// the instrument lives inside a data-plane object — e.g. the separate
// thread's drop counter — and the registry only points at it).
//
// Naming follows Prometheus conventions: [a-zA-Z_:][a-zA-Z0-9_:]*, units
// spelled out, counters suffixed `_total`.  Registering an existing name
// with the same type returns the existing instrument; re-registering under
// a different type (or aliasing an owned name with an external pointer)
// throws std::invalid_argument — collisions are bugs, not data.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace nitro::telemetry {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "") {
    return get_or_create<Counter>(name, help, counters_, owned_counters_);
  }

  Gauge& gauge(const std::string& name, const std::string& help = "") {
    return get_or_create<Gauge>(name, help, gauges_, owned_gauges_);
  }

  Histogram& histogram(const std::string& name, const std::string& help = "") {
    return get_or_create<Histogram>(name, help, histograms_, owned_histograms_);
  }

  EventLog& event_log(const std::string& name, std::size_t capacity = 1024) {
    std::lock_guard<std::mutex> lk(mu_);
    validate_name(name);
    auto it = event_logs_.find(name);
    if (it != event_logs_.end()) return *it->second.log;
    reserve_name(name, "event_log");
    auto log = std::make_unique<EventLog>(capacity);
    EventLog& ref = *log;
    event_logs_.emplace(name, EventLogEntry{&ref, std::move(log)});
    return ref;
  }

  /// Expose a counter owned by a data-plane component (it must outlive the
  /// registry or be deregistered by destroying the registry first).
  void register_external_counter(const std::string& name, const std::string& help,
                                 Counter& external) {
    std::lock_guard<std::mutex> lk(mu_);
    validate_name(name);
    auto it = counters_.find(name);
    if (it != counters_.end()) {
      if (it->second.instrument == &external) return;
      throw std::invalid_argument("telemetry name already registered: " + name);
    }
    reserve_name(name, "counter");
    counters_.emplace(name, Entry<Counter>{&external, help});
  }

  // --- Snapshot access (exporters, tests) --------------------------------

  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, e] : counters_) fn(name, e.help, *e.instrument);
  }

  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, e] : gauges_) fn(name, e.help, *e.instrument);
  }

  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, e] : histograms_) fn(name, e.help, *e.instrument);
  }

  template <typename Fn>
  void for_each_event_log(Fn&& fn) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, e] : event_logs_) fn(name, *e.log);
  }

  bool contains(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    return types_.count(name) > 0;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return types_.size();
  }

  /// Prometheus metric-name validation, exposed for tests.
  static bool valid_name(const std::string& name) noexcept {
    if (name.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    };
    if (!head(name[0])) return false;
    for (char c : name) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  }

 private:
  template <typename T>
  struct Entry {
    T* instrument = nullptr;
    std::string help;
  };

  struct EventLogEntry {
    EventLog* log = nullptr;
    std::unique_ptr<EventLog> owned;
  };

  static void validate_name(const std::string& name) {
    if (!valid_name(name)) {
      throw std::invalid_argument("invalid telemetry metric name: '" + name + "'");
    }
  }

  void reserve_name(const std::string& name, const char* type) {
    auto [it, inserted] = types_.emplace(name, type);
    if (!inserted) {
      throw std::invalid_argument("telemetry name already registered as " +
                                  it->second + ": " + name);
    }
  }

  template <typename T>
  T& get_or_create(const std::string& name, const std::string& help,
                   std::map<std::string, Entry<T>>& table,
                   std::vector<std::unique_ptr<T>>& owned) {
    std::lock_guard<std::mutex> lk(mu_);
    validate_name(name);
    auto it = table.find(name);
    if (it != table.end()) return *it->second.instrument;
    reserve_name(name, type_name<T>());
    owned.push_back(std::make_unique<T>());
    T& ref = *owned.back();
    table.emplace(name, Entry<T>{&ref, help});
    return ref;
  }

  template <typename T>
  static const char* type_name() noexcept {
    if constexpr (std::is_same_v<T, Counter>) return "counter";
    if constexpr (std::is_same_v<T, Gauge>) return "gauge";
    if constexpr (std::is_same_v<T, Histogram>) return "histogram";
    return "instrument";
  }

  mutable std::mutex mu_;
  std::map<std::string, std::string> types_;  // name -> type (collision check)
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, EventLogEntry> event_logs_;
  std::vector<std::unique_ptr<Counter>> owned_counters_;
  std::vector<std::unique_ptr<Gauge>> owned_gauges_;
  std::vector<std::unique_ptr<Histogram>> owned_histograms_;
};

}  // namespace nitro::telemetry
