// Online accuracy observer: is the sketch inside the paper's bound *right
// now*?
//
// NitroSketch's Theorem 1 promises per-flow error within eps*sqrt(n) of a
// plain Count-Min/UnivMon, and the kDegrade overload ladder trades that
// for throughput by halving the sampling probability — inflating the error
// stddev by sqrt(2^level).  Offline evaluations measure this after the
// fact; this observer measures it live: it exactly counts a small
// digest-sampled reservoir of flows in the data plane, and at every epoch
// close compares each tracked flow's sketch estimate against its exact
// count, exporting the empirical error next to the theoretical bound so an
// operator (or a fault test) can watch the bound hold, inflate, and break.
//
// Sampling: a flow is tracked iff (flow_digest(key) & mask) == 0 — an
// unbiased 1-in-2^bits hash sample, not "first N flows", so heavy and
// light flows are both represented — capped at `capacity` tracked flows
// per epoch.  Because admission happens at a flow's *first* packet of the
// epoch, tracked counts are exact for the epoch.  The per-packet cost for
// non-sampled flows is one 64-bit hash and a mask test.
//
// Not thread-safe: feed it from the same single thread that owns the data
// plane (the daemon path), mirroring every update the sketch sees.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/flow_key.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

namespace nitro::telemetry {

/// One epoch's verdict, produced by AccuracyObserver::close_epoch.
struct EpochAccuracy {
  std::uint64_t epoch = 0;
  std::size_t tracked_flows = 0;   // reservoir size this epoch
  double mean_abs_error = 0.0;     // mean |estimate - exact| over reservoir
  double max_abs_error = 0.0;
  double bound = 0.0;              // eps * sqrt(n) * sqrt(2^level)
  double inflation = 1.0;          // sqrt(2^level), 1.0 when undegraded
  int degrade_level = 0;
  // mean_abs_error <= bound.  The Theorem-1 bound is per-flow at
  // confidence 1-delta, so the *max* over dozens of tracked flows is
  // expected to poke past it occasionally even when the sketch is
  // healthy; the mean sits far below it unless something is wrong.
  bool within_bound = true;
};

class AccuracyObserver {
 public:
  /// `sample_bits`: track flows whose digest's low `sample_bits` bits are
  /// zero (1-in-2^bits of the flow space); 0 tracks every flow up to
  /// capacity.  `capacity` caps per-epoch reservoir memory.
  explicit AccuracyObserver(double epsilon, unsigned sample_bits = 6,
                            std::size_t capacity = 64)
      : epsilon_(epsilon),
        mask_((1ULL << sample_bits) - 1),
        capacity_(capacity) {
    // Open addressing wants head-room: 2x capacity, power of two.
    std::size_t buckets = 8;
    while (buckets < capacity_ * 2) buckets <<= 1;
    slots_.resize(buckets);
  }

  /// Mirror one data-plane update.  O(1); near-free for unsampled flows.
  void observe(const FlowKey& key, std::int64_t count = 1) noexcept {
    const std::uint64_t digest = flow_digest(key);
    if ((digest & mask_) != 0) return;
    upsert(key, digest, count);
  }

  void observe_burst(std::span<const FlowKey> keys) noexcept {
    for (const auto& k : keys) observe(k);
  }

  /// Close the epoch: query the sketch for every tracked flow, compare
  /// with exact counts, reset the reservoir for the next epoch.
  ///
  /// `query` maps a flow key to the sketch's estimate; `stream_total` is n
  /// in the eps*sqrt(n) bound; `degrade_level` scales it by sqrt(2^level).
  EpochAccuracy close_epoch(const std::function<std::int64_t(const FlowKey&)>& query,
                            std::int64_t stream_total, int degrade_level) {
    EpochAccuracy acc;
    acc.epoch = epochs_closed_++;
    acc.degrade_level = degrade_level;
    acc.inflation = std::sqrt(static_cast<double>(1ULL << degrade_level));
    acc.bound = epsilon_ *
                std::sqrt(static_cast<double>(stream_total > 0 ? stream_total : 0)) *
                acc.inflation;

    double sum_abs = 0.0;
    for (auto& s : slots_) {
      if (!s.used) continue;
      const double err = std::abs(static_cast<double>(query(s.key) - s.count));
      sum_abs += err;
      if (err > acc.max_abs_error) acc.max_abs_error = err;
      ++acc.tracked_flows;
      s = Slot{};  // reset for next epoch
    }
    size_ = 0;
    if (acc.tracked_flows > 0) {
      acc.mean_abs_error = sum_abs / static_cast<double>(acc.tracked_flows);
    }
    acc.within_bound = acc.mean_abs_error <= acc.bound;
    last_ = acc;
    publish(acc);
    return acc;
  }

  /// Export gauges under `<prefix>_accuracy_*`, refreshed at every
  /// close_epoch: empirical mean/max error, the theoretical bound, the
  /// degradation inflation factor, reservoir size, and a 0/1 bound-held
  /// flag a dashboard can alert on.
  void attach_telemetry(Registry& registry, const std::string& prefix) {
    mean_err_ = &registry.gauge(prefix + "_accuracy_mean_abs_error",
                                "mean |estimate-exact| over the sampled reservoir");
    max_err_ = &registry.gauge(prefix + "_accuracy_max_abs_error",
                               "max |estimate-exact| over the sampled reservoir");
    bound_ = &registry.gauge(prefix + "_accuracy_bound",
                             "theoretical eps*sqrt(n)*sqrt(2^level) bound");
    inflation_ = &registry.gauge(prefix + "_accuracy_error_inflation",
                                 "sqrt(2^level) degradation inflation");
    tracked_ = &registry.gauge(prefix + "_accuracy_tracked_flows",
                               "flows exactly tracked this epoch");
    within_ = &registry.gauge(prefix + "_accuracy_within_bound",
                              "1 when mean empirical error <= bound");
  }

  const EpochAccuracy& last() const noexcept { return last_; }
  std::size_t tracked_flows() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    FlowKey key{};
    std::uint64_t digest = 0;
    std::int64_t count = 0;
    bool used = false;
  };

  void upsert(const FlowKey& key, std::uint64_t digest, std::int64_t count) noexcept {
    const std::size_t n = slots_.size();
    std::size_t i = static_cast<std::size_t>(digest) & (n - 1);
    for (std::size_t probes = 0; probes < n; ++probes) {
      Slot& s = slots_[i];
      if (s.used) {
        if (s.digest == digest && s.key == key) {
          s.count += count;
          return;
        }
      } else {
        if (size_ >= capacity_) return;  // reservoir full this epoch
        s.key = key;
        s.digest = digest;
        s.count = count;
        s.used = true;
        ++size_;
        return;
      }
      i = (i + 1) & (n - 1);
    }
  }

  void publish(const EpochAccuracy& acc) noexcept {
    if (mean_err_ != nullptr) mean_err_->set(acc.mean_abs_error);
    if (max_err_ != nullptr) max_err_->set(acc.max_abs_error);
    if (bound_ != nullptr) bound_->set(acc.bound);
    if (inflation_ != nullptr) inflation_->set(acc.inflation);
    if (tracked_ != nullptr) tracked_->set(static_cast<double>(acc.tracked_flows));
    if (within_ != nullptr) within_->set(acc.within_bound ? 1.0 : 0.0);
  }

  double epsilon_;
  std::uint64_t mask_;
  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t epochs_closed_ = 0;
  EpochAccuracy last_{};

  Gauge* mean_err_ = nullptr;
  Gauge* max_err_ = nullptr;
  Gauge* bound_ = nullptr;
  Gauge* inflation_ = nullptr;
  Gauge* tracked_ = nullptr;
  Gauge* within_ = nullptr;
};

}  // namespace nitro::telemetry
