// Umbrella header + instrument-binding structs for the data plane.
//
// Hot-path components do not talk to the Registry directly (that would put
// a map lookup and a mutex on the packet path).  Instead a binding struct
// of raw instrument pointers is resolved once, at attach time, and handed
// to the component.  All pointers may be null individually; components
// only touch the ones they own.
//
// Overhead policy (DESIGN.md "Observability"):
//  * compiled-out:  NitroSketch<Base, /*WithTelemetry=*/false> removes every
//    instrumentation site via `if constexpr` — the update path is the same
//    machine code as before this subsystem existed.
//  * enabled, detached: one well-predicted null check per site.
//  * enabled, attached: counters are *published* (copied) at snapshot time
//    rather than incremented per packet; only the sampled cycle histogram
//    (1 in 64 packets) and rare events (p changes, convergence, flushes)
//    write from the hot path.  Budget: <5% on the NitroSketch update path,
//    enforced by bench/micro_telemetry_overhead.
#pragma once

#include <string>

#include "telemetry/event_log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

namespace nitro::telemetry {

/// Compile-time default for telemetry-capable templates.  Define
/// NITRO_TELEMETRY_DISABLED project-wide to compile every instrumentation
/// site out of the default instantiations.
#if defined(NITRO_TELEMETRY_DISABLED)
inline constexpr bool kDefaultEnabled = false;
#else
inline constexpr bool kDefaultEnabled = true;
#endif

/// Empty stand-in stored by telemetry-capable templates compiled with
/// WithTelemetry = false ([[no_unique_address]] makes it free).
struct Disabled {};

/// Instruments consumed by the NitroSketch / NitroUnivMon update paths.
struct SketchTelemetry {
  Counter* packets = nullptr;          // published, not hot-incremented
  Counter* sampled_updates = nullptr;  // published
  Counter* batch_flushes = nullptr;    // published from BufferedUpdater
  Counter* explicit_flushes = nullptr; // epoch/query-driven drains
  Gauge* probability = nullptr;        // current sampling probability p
  Histogram* update_cycles = nullptr;  // sampled 1-in-64 per-packet cost
  EventLog* events = nullptr;          // p changes, convergence, flushes

  /// Resolve the standard instrument set under `prefix` (e.g.
  /// "nitro_sketch") in `registry`.
  static SketchTelemetry in(Registry& registry, const std::string& prefix) {
    SketchTelemetry t;
    t.packets = &registry.counter(prefix + "_packets_total",
                                  "packets processed by the sketch update path");
    t.sampled_updates =
        &registry.counter(prefix + "_sampled_updates_total",
                          "row-counter updates applied (sampled regime)");
    t.batch_flushes =
        &registry.counter(prefix + "_buffer_batch_flushes_total",
                          "Idea-D buffered-update batches drained into counters");
    t.explicit_flushes =
        &registry.counter(prefix + "_buffer_explicit_flushes_total",
                          "explicit buffer drains (epoch end / query)");
    t.probability = &registry.gauge(prefix + "_sampling_probability",
                                    "current geometric sampling probability p");
    t.update_cycles =
        &registry.histogram(prefix + "_update_cycles",
                            "TSC cycles per update() call (1-in-64 sampled)");
    t.events = &registry.event_log(prefix + "_events");
    return t;
  }
};

/// Per-pipeline forwarding counters (OVS / VPP / BESS switchsim).
struct PipelineTelemetry {
  Counter* packets = nullptr;
  Counter* bytes = nullptr;
  Counter* drops = nullptr;
  Counter* bursts = nullptr;

  static PipelineTelemetry in(Registry& registry, const std::string& prefix) {
    PipelineTelemetry t;
    t.packets = &registry.counter(prefix + "_packets_total", "packets forwarded");
    t.bytes = &registry.counter(prefix + "_bytes_total", "bytes forwarded");
    t.drops = &registry.counter(prefix + "_drops_total",
                                "packets dropped (parse failure or drop action)");
    t.bursts = &registry.counter(prefix + "_bursts_total", "bursts processed");
    return t;
  }

  /// Fold one finished run's RunStats-style totals into the counters.
  void add_run(std::uint64_t packets_n, std::uint64_t bytes_n, std::uint64_t drops_n,
               std::uint64_t bursts_n) noexcept {
    if (packets) packets->inc(packets_n);
    if (bytes) bytes->inc(bytes_n);
    if (drops) drops->inc(drops_n);
    if (bursts) bursts->inc(bursts_n);
  }
};

}  // namespace nitro::telemetry
