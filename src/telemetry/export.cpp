#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>

#include "common/io.hpp"

namespace nitro::telemetry {

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

/// Escape a HELP string per the exposition format (backslash and newline).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Double formatting that is valid in both exposition text and JSON.
void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "0";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    append_fmt(out, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    append_fmt(out, "%.9g", v);
  }
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  out.reserve(4096);

  registry.for_each_counter([&](const std::string& name, const std::string& help,
                                const Counter& c) {
    append_fmt(out, "# HELP %s %s\n", name.c_str(), escape_help(help).c_str());
    append_fmt(out, "# TYPE %s counter\n", name.c_str());
    append_fmt(out, "%s %" PRIu64 "\n", name.c_str(), c.value());
  });

  registry.for_each_gauge([&](const std::string& name, const std::string& help,
                              const Gauge& g) {
    append_fmt(out, "# HELP %s %s\n", name.c_str(), escape_help(help).c_str());
    append_fmt(out, "# TYPE %s gauge\n", name.c_str());
    append_fmt(out, "%s ", name.c_str());
    append_double(out, g.value());
    out += "\n";
  });

  registry.for_each_histogram([&](const std::string& name, const std::string& help,
                                  const Histogram& h) {
    append_fmt(out, "# HELP %s %s\n", name.c_str(), escape_help(help).c_str());
    append_fmt(out, "# TYPE %s histogram\n", name.c_str());
    const std::size_t top = h.populated_buckets();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < top; ++i) {
      cumulative += h.bucket_count(i);
      append_fmt(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name.c_str(),
                 Histogram::bucket_upper_bound(i), cumulative);
    }
    append_fmt(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(), cumulative);
    append_fmt(out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum());
    append_fmt(out, "%s_count %" PRIu64 "\n", name.c_str(), cumulative);
  });

  // Event logs surface as counters of recorded events; the timeline itself
  // is JSON-only.
  registry.for_each_event_log([&](const std::string& name, const EventLog& log) {
    append_fmt(out, "# HELP %s_total events recorded in the %s log\n", name.c_str(),
               name.c_str());
    append_fmt(out, "# TYPE %s_total counter\n", name.c_str());
    append_fmt(out, "%s_total %" PRIu64 "\n", name.c_str(), log.total_recorded());
  });

  return out;
}

std::string to_json(const Registry& registry, bool indent) {
  const char* nl = indent ? "\n" : "";
  const char* pad1 = indent ? "  " : "";
  const char* pad2 = indent ? "    " : "";
  const char* pad3 = indent ? "      " : "";
  std::string out = "{";
  out += nl;

  bool first_section = true;
  auto open_section = [&](const char* key) {
    if (!first_section) {
      out += ",";
      out += nl;
    }
    first_section = false;
    append_fmt(out, "%s\"%s\": {", pad1, key);
    out += nl;
  };
  auto close_section = [&]() {
    out += nl;
    out += pad1;
    out += "}";
  };

  open_section("counters");
  {
    bool first = true;
    registry.for_each_counter([&](const std::string& name, const std::string&,
                                  const Counter& c) {
      if (!first) {
        out += ",";
        out += nl;
      }
      first = false;
      append_fmt(out, "%s\"%s\": %" PRIu64, pad2, escape_json(name).c_str(), c.value());
    });
  }
  close_section();

  open_section("gauges");
  {
    bool first = true;
    registry.for_each_gauge([&](const std::string& name, const std::string&,
                                const Gauge& g) {
      if (!first) {
        out += ",";
        out += nl;
      }
      first = false;
      append_fmt(out, "%s\"%s\": ", pad2, escape_json(name).c_str());
      append_double(out, g.value());
    });
  }
  close_section();

  open_section("histograms");
  {
    bool first = true;
    registry.for_each_histogram([&](const std::string& name, const std::string&,
                                    const Histogram& h) {
      if (!first) {
        out += ",";
        out += nl;
      }
      first = false;
      append_fmt(out, "%s\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                      ", \"buckets\": [",
                 pad2, escape_json(name).c_str(), h.count(), h.sum());
      const std::size_t top = h.populated_buckets();
      for (std::size_t i = 0; i < top; ++i) {
        if (i > 0) out += ", ";
        append_fmt(out, "{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                   Histogram::bucket_upper_bound(i), h.bucket_count(i));
      }
      out += "]}";
    });
  }
  close_section();

  open_section("events");
  {
    bool first = true;
    registry.for_each_event_log([&](const std::string& name, const EventLog& log) {
      if (!first) {
        out += ",";
        out += nl;
      }
      first = false;
      append_fmt(out, "%s\"%s\": {\"recorded\": %" PRIu64 ", \"overwritten\": %" PRIu64
                      ", \"entries\": [",
                 pad2, escape_json(name).c_str(), log.total_recorded(),
                 log.overwritten());
      out += nl;
      const auto events = log.snapshot();
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0) {
          out += ",";
          out += nl;
        }
        const Event& e = events[i];
        append_fmt(out, "%s{\"ts_ns\": %" PRIu64 ", \"kind\": \"%s\", \"value\": ",
                   pad3, e.ts_ns, to_string(e.kind));
        append_double(out, e.value);
        append_fmt(out, ", \"arg\": %u}", e.arg);
      }
      out += nl;
      out += pad2;
      out += "]}";
    });
  }
  close_section();

  out += nl;
  out += "}";
  out += nl;
  return out;
}

bool write_file(const std::string& path, const std::string& text) {
  // Same durability recipe as the checkpoint store (tmp + fsync + rename):
  // a crash mid-write leaves either the previous complete snapshot or the
  // new one, never a torn stats file for a scraper to choke on.
  return io::atomic_write_file(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace nitro::telemetry
