// Low-overhead metric primitives for the data-plane telemetry subsystem.
//
// All instruments are safe to write from the hot path: Counter and
// Histogram use relaxed atomics (no ordering, just atomicity — readers see
// a slightly stale but never torn value), Gauge uses relaxed stores.  None
// of them allocate after construction.  Exporters read concurrently; every
// exported number is a monotonic-counter or last-written snapshot, which is
// the usual Prometheus contract.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace nitro::telemetry {

/// Monotonically increasing event count (wraps at 2^64 like every
/// Prometheus counter).  `store()` exists for publish-style instruments
/// that mirror an internal single-threaded counter at snapshot time; it
/// must only be used by a single publisher.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void store(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written floating-point level (ring occupancy, current sampling
/// probability, CPU share, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram of unsigned values (cycle counts, queue
/// depths).  Bucket index of value v is bit_width(v): bucket 0 holds only
/// v == 0, bucket i (i >= 1) holds v in [2^(i-1), 2^i - 1].  65 buckets
/// cover the full u64 range, so observe() never clamps.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket i (the Prometheus `le` value);
  /// bucket 64's bound is u64 max.
  static std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Highest non-empty bucket index + 1 (export trims trailing zeros).
  std::size_t populated_buckets() const noexcept {
    for (std::size_t i = kBuckets; i > 0; --i) {
      if (bucket_count(i - 1) > 0) return i;
    }
    return 0;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace nitro::telemetry
