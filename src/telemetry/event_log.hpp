// Bounded ring of timestamped data-plane events.
//
// Records the *adaptive* behavior of the framework — the things a mean or
// a counter cannot show: every sampling-probability change decided by the
// RateController (the paper's AlwaysLineRate `p` timeline, §4 Idea C.1),
// every exact->sampled flip of a ConvergenceDetector (AlwaysCorrect, Idea
// C.2), explicit buffer flushes, and (rate-limited) ring overruns.
//
// Appends are lock-free: a relaxed fetch_add claims a slot, the slot is
// written, and a per-slot sequence number is published with release order
// so snapshot() can skip slots that are mid-write.  The ring keeps the
// most recent `capacity` events; older ones are overwritten (wraparound is
// reported via overwritten()).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace nitro::telemetry {

enum class EventKind : std::uint8_t {
  kProbabilityChange,  // value = new sampling probability p
  kConvergence,        // value = packets seen when the detector fired; arg = level
  kBufferFlush,        // value = entries drained by an explicit flush
  kRingDrop,           // value = cumulative drop count at the time of logging
  kModeChange,         // value = numeric Mode; arg = previous Mode
};

inline const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kProbabilityChange: return "probability_change";
    case EventKind::kConvergence: return "convergence";
    case EventKind::kBufferFlush: return "buffer_flush";
    case EventKind::kRingDrop: return "ring_drop";
    case EventKind::kModeChange: return "mode_change";
  }
  return "unknown";
}

struct Event {
  std::uint64_t ts_ns = 0;
  double value = 0.0;
  std::uint32_t arg = 0;
  EventKind kind = EventKind::kProbabilityChange;
};

class EventLog {
 public:
  /// Capacity is rounded up to a power of two (min 8).
  explicit EventLog(std::size_t capacity = 1024) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
  }

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void append(EventKind kind, std::uint64_t ts_ns, double value,
              std::uint32_t arg = 0) noexcept {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    // Payload words are individually atomic (relaxed) so concurrent
    // snapshots never tear a field; the sequence check below discards
    // slots whose words belong to different events.
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.value_bits.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
    s.arg_kind.store(static_cast<std::uint64_t>(arg) << 8 |
                         static_cast<std::uint64_t>(kind),
                     std::memory_order_relaxed);
    // Publishing seq+1 marks the slot as "written by sequence seq"; a
    // reader that observes a stale sequence treats the slot as invalid.
    s.seq.store(seq + 1, std::memory_order_release);
  }

  /// Events appended so far (including overwritten ones).
  std::uint64_t total_recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Events lost to wraparound.
  std::uint64_t overwritten() const noexcept {
    const std::uint64_t n = total_recorded();
    const std::uint64_t cap = capacity();
    return n > cap ? n - cap : 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// The retained events, oldest first.  Safe to call concurrently with
  /// appenders: slots being overwritten mid-snapshot are skipped.
  std::vector<Event> snapshot() const {
    const std::uint64_t end = total_recorded();
    const std::uint64_t cap = capacity();
    const std::uint64_t begin = end > cap ? end - cap : 0;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t seq = begin; seq < end; ++seq) {
      const Slot& s = slots_[seq & mask_];
      if (s.seq.load(std::memory_order_acquire) != seq + 1) continue;
      Event e;
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.value = std::bit_cast<double>(s.value_bits.load(std::memory_order_relaxed));
      const std::uint64_t ak = s.arg_kind.load(std::memory_order_relaxed);
      e.arg = static_cast<std::uint32_t>(ak >> 8);
      e.kind = static_cast<EventKind>(ak & 0xff);
      // Re-check: if an appender lapped us while copying, drop the slot.
      if (s.seq.load(std::memory_order_acquire) != seq + 1) continue;
      out.push_back(e);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> value_bits{0};
    std::atomic<std::uint64_t> arg_kind{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace nitro::telemetry
