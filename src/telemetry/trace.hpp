// Span-based epoch lifecycle tracing (DESIGN.md §12).
//
// A Span is one timed stage of an epoch's journey through the pipeline —
// ingest, burst flush, shard drain/merge, snapshot, checkpoint, export
// enqueue, wire send/retry, collector apply, network-view merge — keyed by
// (source_id, epoch) so the monitor-side and collector-side halves of the
// same epoch stitch together even across processes.  Tracer::to_chrome_json
// (trace.cpp) emits the Chrome trace-event format, which both
// chrome://tracing and Perfetto load directly; merge_chrome_traces()
// combines per-process files into one timeline.
//
// Writer path: each thread owns a private ring buffer (claimed on first
// record, identified by a process-wide thread index), so record() is a
// handful of relaxed stores plus one release store publishing the slot's
// sequence number — no locks, no allocation, no cross-thread contention.
// Readers (snapshot/export) walk all buffers and skip slots that are
// mid-write, exactly like the EventLog seqlock.
//
// Overhead policy (matches telemetry/fault):
//  * compiled out (-DNITRO_TRACE_DISABLED): every site is `if constexpr`
//    eliminated — zero cost, same machine code as before the subsystem.
//  * compiled in, no tracer installed (default): one well-predicted
//    acquire-load + null check per site.  Enforced at <= 5% on a
//    per-burst-span replay loop by bench/micro_telemetry_overhead.
//  * installed: two steady_clock reads and one ring write per span; spans
//    are per *stage* (per burst at the finest), never per packet.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

namespace nitro::telemetry {

/// Compile-time master switch.  Define NITRO_TRACE_DISABLED project-wide
/// to remove every span site from the build.
#if defined(NITRO_TRACE_DISABLED)
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

/// Lifecycle stages, in pipeline order.  The names double as the Chrome
/// trace-event `name` field and the per-stage histogram suffix.
enum class Stage : std::uint8_t {
  kIngest = 0,      // one epoch's packets through the switch pipeline
  kBurstFlush,      // one rx burst through the measurement hook
  kShardDrain,      // epoch-boundary drain barrier over the worker rings
  kShardMerge,      // folding quiesced shards into the daemon's data plane
  kSnapshot,        // sealing the UnivMon snapshot for export/checkpoint
  kCheckpoint,      // crash-safe checkpoint write (tmp+fsync+rename)
  kExportEnqueue,   // handing the closed epoch to the exporter queue
  kWireSend,        // one delivery attempt: encode + send + await ack
  kCollectorApply,  // collector-side decode-validated merge into a source
  kNetworkMerge,    // folding live sources into the network-wide view
  kStageCount_,     // sentinel
};

inline constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kStageCount_);

inline const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kIngest: return "ingest";
    case Stage::kBurstFlush: return "burst_flush";
    case Stage::kShardDrain: return "shard_drain";
    case Stage::kShardMerge: return "shard_merge";
    case Stage::kSnapshot: return "snapshot";
    case Stage::kCheckpoint: return "checkpoint";
    case Stage::kExportEnqueue: return "export_enqueue";
    case Stage::kWireSend: return "wire_send";
    case Stage::kCollectorApply: return "collector_apply";
    case Stage::kNetworkMerge: return "network_merge";
    case Stage::kStageCount_: break;
  }
  return "unknown";
}

struct Span {
  Stage stage = Stage::kIngest;
  std::uint32_t tid = 0;         // process-wide thread index (Chrome `tid`)
  std::uint64_t source_id = 0;   // Chrome `pid`: one track per source
  std::uint64_t epoch = 0;       // stitch key with source_id
  std::uint64_t start_ns = 0;    // steady clock
  std::uint64_t end_ns = 0;
};

class Tracer {
 public:
  /// Threads above this share the last buffer (worker counts are far
  /// below; correctness is kept by the per-slot sequence check).
  static constexpr std::uint32_t kMaxThreads = 64;

  /// `capacity` spans retained per writer thread (rounded up to a power
  /// of two, min 8); older spans are overwritten, counted by dropped().
  explicit Tracer(std::size_t capacity = 4096);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one completed span.  Lock-free; safe from any thread.
  void record(Stage stage, std::uint64_t source_id, std::uint64_t epoch,
              std::uint64_t start_ns, std::uint64_t end_ns) noexcept;

  /// Ambient (source, epoch) used by sites too deep to thread the keys
  /// through (shard drain, checkpoint writes).  Set by the epoch loop at
  /// each boundary; reads are relaxed atomics.
  void set_context(std::uint64_t source_id, std::uint64_t epoch) noexcept {
    ctx_source_.store(source_id, std::memory_order_relaxed);
    ctx_epoch_.store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t context_source() const noexcept {
    return ctx_source_.load(std::memory_order_relaxed);
  }
  std::uint64_t context_epoch() const noexcept {
    return ctx_epoch_.load(std::memory_order_relaxed);
  }

  /// Per-stage duration histograms (`<prefix>_span_<stage>_ns`) plus a
  /// recorded-spans counter, fed on every record() once attached.
  void attach_telemetry(Registry& registry, const std::string& prefix);

  /// Retained spans from every thread buffer, sorted by start time.  Safe
  /// to call concurrently with writers (mid-write slots are skipped).
  std::vector<Span> snapshot() const;

  std::uint64_t total_recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans lost to per-thread ring wraparound.
  std::uint64_t dropped() const noexcept;

  std::size_t capacity_per_thread() const noexcept { return mask_ + 1; }

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<std::uint64_t> source_id{0};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> stage{0};
  };

  struct ThreadBuf {
    explicit ThreadBuf(std::size_t cap) : slots(cap) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> next{0};
  };

  ThreadBuf& buffer_for_thread() noexcept;

  std::size_t mask_;
  std::array<std::atomic<ThreadBuf*>, kMaxThreads> bufs_{};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> ctx_source_{0};
  std::atomic<std::uint64_t> ctx_epoch_{0};

  std::array<Histogram*, kNumStages> stage_ns_{};
  Counter* spans_total_ = nullptr;
};

// --- Ambient installation (same pattern as fault::install) ------------------

namespace detail {
inline std::atomic<Tracer*>& tracer_slot() noexcept {
  static std::atomic<Tracer*> slot{nullptr};
  return slot;
}
/// Process-wide small thread index (Chrome `tid`, buffer selector).
std::uint32_t thread_index() noexcept;
}  // namespace detail

/// Install a tracer process-wide.  The caller keeps ownership and must
/// uninstall before destroying it.
inline void install_tracer(Tracer* tracer) noexcept {
  detail::tracer_slot().store(tracer, std::memory_order_release);
}
inline void uninstall_tracer() noexcept { install_tracer(nullptr); }

/// The ambient tracer, or null when tracing is off (the common case).
inline Tracer* tracer() noexcept {
  if constexpr (!kTraceCompiled) return nullptr;
  return detail::tracer_slot().load(std::memory_order_acquire);
}

/// RAII span: stamps start at construction, records at destruction.  All
/// cost is behind the installed-tracer null check; compiled out entirely
/// under NITRO_TRACE_DISABLED.
class ScopedSpan {
 public:
  /// Explicit keys (export/collector sites know their message's ids).
  /// `override_tracer` lets a component with its own tracer (a collector
  /// embedded in a test next to monitor-side tracing) bypass the ambient
  /// slot; pass nullptr to use the ambient tracer.
  ScopedSpan(Stage stage, std::uint64_t source_id, std::uint64_t epoch,
             Tracer* override_tracer = nullptr) noexcept {
    if constexpr (kTraceCompiled) {
      t_ = override_tracer != nullptr ? override_tracer : tracer();
      if (t_ != nullptr) {
        stage_ = stage;
        source_ = source_id;
        epoch_ = epoch;
        start_ns_ = Tracer::now_ns();
      }
    }
  }

  /// Ambient keys (sites inside the epoch loop's machinery).
  explicit ScopedSpan(Stage stage) noexcept {
    if constexpr (kTraceCompiled) {
      t_ = tracer();
      if (t_ != nullptr) {
        stage_ = stage;
        source_ = t_->context_source();
        epoch_ = t_->context_epoch();
        start_ns_ = Tracer::now_ns();
      }
    }
  }

  ~ScopedSpan() {
    if constexpr (kTraceCompiled) {
      if (t_ != nullptr) {
        t_->record(stage_, source_, epoch_, start_ns_, Tracer::now_ns());
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* t_ = nullptr;
  Stage stage_ = Stage::kIngest;
  std::uint64_t source_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t start_ns_ = 0;
};

// --- Chrome trace-event / Perfetto export (trace.cpp) -----------------------

/// One process's spans as a Chrome trace-event JSON object
/// (`{"traceEvents":[...]}`): complete ("ph":"X") events with
/// pid = source_id, tid = thread index, args = {source_id, epoch}, plus
/// process_name metadata built from `process_name`.  Loadable by
/// chrome://tracing and ui.perfetto.dev as-is.
std::string to_chrome_json(const Tracer& tracer, const std::string& process_name);

/// Merge trace files produced by to_chrome_json (one per process) into a
/// single loadable timeline: the traceEvents arrays are concatenated.
/// Inputs that do not look like to_chrome_json output are skipped.
std::string merge_chrome_traces(const std::vector<std::string>& traces);

}  // namespace nitro::telemetry
