// Registry exporters: Prometheus text exposition format and JSON.
//
// Prometheus output follows the exposition-format rules the scrapers
// actually enforce: one `# HELP` + `# TYPE` pair per metric family, all
// samples of a family contiguous, no duplicate names, histogram `le`
// buckets cumulative and terminated by `+Inf`.  EventLogs have no
// Prometheus representation beyond a `<name>_total` counter; the full
// timeline is exported in JSON only.
//
// JSON output is a single object:
//   { "counters": {...}, "gauges": {...},
//     "histograms": { name: {count, sum, buckets:[{le, count}, ...]}, ... },
//     "events": { name: {recorded, overwritten,
//                        entries:[{ts_ns, kind, value, arg}, ...]}, ... } }
#pragma once

#include <string>

#include "telemetry/registry.hpp"

namespace nitro::telemetry {

std::string to_prometheus(const Registry& registry);

/// `indent` pretty-prints (2 spaces) when true; compact otherwise.
std::string to_json(const Registry& registry, bool indent = true);

/// Write `text` to `path` atomically enough for a scraper (tmp + rename).
/// Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& text);

}  // namespace nitro::telemetry
