#include "export/exporter.hpp"

#include <algorithm>
#include <chrono>

#include "control/codec.hpp"
#include "fault/fault.hpp"
#include "telemetry/trace.hpp"

namespace nitro::xport {

std::uint64_t backoff_delay_ns(std::uint32_t attempt, std::uint64_t base_ns,
                               std::uint64_t max_ns, SplitMix64& rng) {
  if (base_ns == 0) base_ns = 1;
  if (max_ns < base_ns) max_ns = base_ns;
  const std::uint32_t doublings = attempt > 1 ? std::min(attempt - 1, 62u) : 0;
  // Detect the overflow before shifting instead of after.
  std::uint64_t d = base_ns > (max_ns >> doublings) ? max_ns : base_ns << doublings;
  if (d > max_ns) d = max_ns;
  const std::uint64_t half = d / 2;
  return d - half + (half != 0 ? rng.next() % (half + 1) : 0);
}

Coalescer univmon_coalescer(const sketch::UnivMonConfig& cfg, std::uint64_t seed) {
  return [cfg, seed](std::span<const std::uint8_t> older,
                     std::span<const std::uint8_t> newer, std::uint64_t) {
    sketch::UnivMon acc(cfg, seed);
    sketch::UnivMon tmp(cfg, seed);
    control::load_univmon(older, acc);
    control::load_univmon(newer, tmp);
    acc.merge(tmp);
    return control::snapshot_univmon(acc);
  };
}

Coalescer univmon_coalescer(const sketch::UnivMonConfig& cfg,
                            const core::SeedSchedule& sched) {
  return [cfg, sched](std::span<const std::uint8_t> older,
                      std::span<const std::uint8_t> newer,
                      std::uint64_t seed_gen) {
    const std::uint64_t seed = sched.seed_for(seed_gen);
    sketch::UnivMon acc(cfg, seed);
    sketch::UnivMon tmp(cfg, seed);
    control::load_univmon(older, acc);
    control::load_univmon(newer, tmp);
    acc.merge(tmp);
    return control::snapshot_univmon(acc);
  };
}

EpochExporter::EpochExporter(const ExporterConfig& cfg, Coalescer coalescer)
    : cfg_(cfg),
      coalescer_(std::move(coalescer)),
      assembler_(cfg.max_frame_bytes),
      breaker_(cfg.breaker_threshold, cfg.breaker_cooldown_ns) {
  if (cfg_.queue_capacity < 2) cfg_.queue_capacity = 2;
}

EpochExporter::~EpochExporter() { stop(); }

void EpochExporter::attach_telemetry(telemetry::Registry& registry,
                                     const std::string& prefix) {
  published_ = &registry.counter(prefix + "_published_epochs_total",
                                 "epochs handed to the exporter");
  acked_ = &registry.counter(prefix + "_acked_epochs_total",
                             "epochs acknowledged by the collector");
  sent_frames_ = &registry.counter(prefix + "_sent_frames_total",
                                   "epoch frames written to the socket");
  coalesce_merges_ = &registry.counter(prefix + "_coalesce_merges_total",
                                       "backlog merges of two queued epochs");
  coalesced_epochs_ = &registry.counter(
      prefix + "_coalesced_epochs_total",
      "epochs that were absorbed into a wider coalesced message");
  coalesce_failures_ = &registry.counter(
      prefix + "_coalesce_failures_total",
      "coalesce attempts that failed (queue grows past capacity instead)");
  overlap_nacks_ = &registry.counter(
      prefix + "_overlap_nacks_total",
      "overlap-dropped acks treated as hard delivery failures");
  send_failures_ = &registry.counter(prefix + "_send_failures_total",
                                     "frame sends that failed or timed out");
  connect_failures_ = &registry.counter(prefix + "_connect_failures_total",
                                        "connect attempts that failed");
  reconnects_ = &registry.counter(prefix + "_reconnects_total",
                                  "successful (re)connects to the collector");
  retries_ = &registry.counter(prefix + "_retries_total",
                               "delivery attempts after the first");
  ack_timeouts_ = &registry.counter(prefix + "_ack_timeouts_total",
                                    "deliveries that timed out waiting for an ack");
  breaker_opens_ = &registry.counter(prefix + "_breaker_opens_total",
                                     "circuit breaker open transitions");
  injected_send_faults_ = &registry.counter(
      prefix + "_injected_send_faults_total", "fault-injected connect/send failures");
  injected_dup_frames_ = &registry.counter(
      prefix + "_injected_dup_frames_total", "fault-injected duplicate frame sends");
  queue_depth_gauge_ = &registry.gauge(prefix + "_queue_depth",
                                       "epochs queued awaiting acknowledgement");
  breaker_state_gauge_ = &registry.gauge(
      prefix + "_breaker_state", "circuit breaker state (0 closed, 1 open, 2 half-open)");
  delivery_ns_ = &registry.histogram(prefix + "_delivery_ns",
                                     "publish-to-ack latency per epoch message");
}

void EpochExporter::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  sender_ = std::thread([this] { run(); });
}

void EpochExporter::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
  {
    std::lock_guard lk(mu_);
    started_ = false;
  }
  sock_.close();
}

void EpochExporter::publish(core::EpochSpan span, std::int64_t packets,
                            std::vector<std::uint8_t> snapshot,
                            std::uint64_t epoch_close_ns,
                            std::uint64_t seed_gen) {
  telemetry::ScopedSpan trace(telemetry::Stage::kExportEnqueue, cfg_.source_id,
                              span.first);
  {
    std::unique_lock lk(mu_);
    while (queue_.size() >= cfg_.queue_capacity && !coalescing_) {
      if (!coalesce_backlog(lk)) break;  // nothing coalescible; grow instead
    }
    Pending p;
    p.msg.source_id = cfg_.source_id;
    p.msg.seq_first = p.msg.seq_last = next_seq_++;
    p.msg.span = span;
    p.msg.packets = packets;
    p.msg.epoch_close_ns = epoch_close_ns;
    p.msg.seed_gen = seed_gen;
    p.msg.snapshot = std::move(snapshot);
    p.enqueue_ns = now_ns();
    queue_.push_back(std::move(p));
    if (published_ != nullptr) published_->inc();
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();
}

bool EpochExporter::coalesce_backlog(std::unique_lock<std::mutex>& lk) {
  // Merge the two oldest entries whose bytes never touched the wire.  An
  // entry that was sent at least once may already sit in the collector's
  // accumulator even though its ack was lost; widening it would make the
  // retry straddle the applied boundary, which the collector must drop
  // whole — permanent data loss.  Only the front can have been sent (the
  // sender works strictly in order), so at most one entry is excluded.
  // Entries from different seed generations are never merged: their
  // sketches do not share hash functions, so a counter merge would be
  // garbage.  Rotation makes generations monotone in the queue, so only
  // the boundary pair is blocked — the scan skips past it.
  std::size_t i = 0;
  while (i < queue_.size() && (queue_[i].in_flight || queue_[i].ever_sent)) ++i;
  while (i + 1 < queue_.size() &&
         queue_[i].msg.seed_gen != queue_[i + 1].msg.seed_gen) {
    ++i;
  }
  if (i + 1 >= queue_.size()) return false;
  // Remember the pair by identity; snapshot copies survive the unlock.
  const std::uint64_t a_first = queue_[i].msg.seq_first;
  const std::uint64_t a_last = queue_[i].msg.seq_last;
  const std::uint64_t b_last = queue_[i + 1].msg.seq_last;
  const std::uint64_t gen = queue_[i].msg.seed_gen;
  const std::vector<std::uint8_t> older = queue_[i].msg.snapshot;
  const std::vector<std::uint8_t> newer = queue_[i + 1].msg.snapshot;

  // The sketch merge is the expensive part (potentially MBs of counters);
  // run it unlocked so the sender and the epoch loop keep moving.
  coalescing_ = true;
  lk.unlock();
  std::vector<std::uint8_t> merged;
  bool merge_ok = true;
  try {
    merged = coalescer_(older, newer, gen);
  } catch (const std::exception&) {
    merge_ok = false;
  }
  lk.lock();
  coalescing_ = false;
  if (!merge_ok) {
    // A failed merge must not lose an epoch: leave both entries queued and
    // let the queue exceed capacity (graceful degradation is memory, not
    // data loss).
    if (coalesce_failures_ != nullptr) coalesce_failures_->inc();
    return false;
  }

  // Re-find the pair: while unlocked the sender may have popped entries or
  // put the older one on the wire.  If the pair is gone or the older entry
  // is no longer coalescible, abandon the merge (the epochs are intact in
  // their original entries — only the merge work is wasted).
  std::size_t j = 0;
  while (j < queue_.size() && (queue_[j].msg.seq_first != a_first ||
                               queue_[j].msg.seq_last != a_last)) {
    ++j;
  }
  if (j + 1 >= queue_.size() || queue_[j].in_flight || queue_[j].ever_sent ||
      queue_[j + 1].msg.seq_last != b_last ||
      queue_[j].msg.seed_gen != queue_[j + 1].msg.seed_gen) {
    return false;
  }
  Pending& a = queue_[j];
  Pending& b = queue_[j + 1];
  const std::uint64_t absorbed = b.msg.epochs_covered();
  a.msg.seq_last = b.msg.seq_last;
  a.msg.span.widen(b.msg.span);
  a.msg.packets += b.msg.packets;
  // Freshness follows the newest covered epoch.
  a.msg.epoch_close_ns = std::max(a.msg.epoch_close_ns, b.msg.epoch_close_ns);
  a.msg.snapshot = std::move(merged);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(j) + 1);
  if (coalesce_merges_ != nullptr) coalesce_merges_->inc();
  if (coalesced_epochs_ != nullptr) coalesced_epochs_->inc(absorbed);
  return true;
}

void EpochExporter::set_next_seq(std::uint64_t seq) {
  std::lock_guard lk(mu_);
  if (seq == 0) seq = 1;  // sequence numbers are 1-based
  next_seq_ = seq;
}

bool EpochExporter::flush(int timeout_ms) {
  std::unique_lock lk(mu_);
  return drained_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                           [this] { return queue_.empty(); });
}

std::size_t EpochExporter::queue_depth() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

CircuitBreaker::State EpochExporter::breaker_state() const {
  std::lock_guard lk(breaker_mu_);
  return breaker_.state();
}

std::uint64_t EpochExporter::epochs_acked() const {
  std::lock_guard lk(mu_);
  return acked_epochs_;
}

std::vector<EpochMessage> EpochExporter::pending_messages() const {
  std::lock_guard lk(mu_);
  std::vector<EpochMessage> out;
  out.reserve(queue_.size());
  for (const Pending& p : queue_) out.push_back(p.msg);
  return out;
}

std::uint64_t EpochExporter::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void EpochExporter::interruptible_sleep_ns(std::uint64_t ns) {
  std::unique_lock lk(mu_);
  // Publishes also notify cv_, waking this early; the predicate only
  // releases on stop, so a wakeup re-waits for the remaining time.
  cv_.wait_for(lk, std::chrono::nanoseconds(ns), [this] { return stop_; });
}

void EpochExporter::run() {
  SplitMix64 rng(cfg_.jitter_seed ^ cfg_.source_id);
  std::uint32_t attempt = 0;
  for (;;) {
    EpochMessage msg;
    std::uint64_t enqueue_ns = 0;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      queue_.front().in_flight = true;
      msg = queue_.front().msg;  // copy: publish may coalesce behind us
      enqueue_ns = queue_.front().enqueue_ns;
    }

    // Circuit breaker gate: while open, wait out the cooldown without
    // touching the network (no failure recorded — no attempt was made).
    bool gated;
    std::uint64_t wait_ns = 0;
    {
      std::lock_guard lk(breaker_mu_);
      const std::uint64_t now = now_ns();
      gated = !breaker_.allow_attempt(now);
      if (gated) {
        wait_ns = breaker_.open_until_ns() > now
                      ? breaker_.open_until_ns() - now
                      : 1'000'000;
      }
      if (breaker_state_gauge_ != nullptr) {
        breaker_state_gauge_->set(static_cast<double>(breaker_.state()));
      }
    }
    if (gated) {
      {
        std::lock_guard lk(mu_);
        queue_.front().in_flight = false;
        if (stop_) return;
      }
      interruptible_sleep_ns(std::min<std::uint64_t>(wait_ns, 50'000'000));
      continue;
    }

    if (attempt > 0 && retries_ != nullptr) retries_->inc();
    const bool ok = attempt_delivery(msg);

    {
      std::lock_guard lk(breaker_mu_);
      if (ok) {
        breaker_.record_success();
      } else {
        const std::uint64_t opens_before = breaker_.opens();
        breaker_.record_failure(now_ns());
        if (breaker_.opens() != opens_before && breaker_opens_ != nullptr) {
          breaker_opens_->inc();
        }
      }
      if (breaker_state_gauge_ != nullptr) {
        breaker_state_gauge_->set(static_cast<double>(breaker_.state()));
      }
    }

    if (ok) {
      bool notify = false;
      {
        std::lock_guard lk(mu_);
        acked_epochs_ += msg.epochs_covered();
        queue_.pop_front();
        notify = queue_.empty();
        if (queue_depth_gauge_ != nullptr) {
          queue_depth_gauge_->set(static_cast<double>(queue_.size()));
        }
      }
      if (acked_ != nullptr) acked_->inc(msg.epochs_covered());
      if (delivery_ns_ != nullptr) delivery_ns_->observe(now_ns() - enqueue_ns);
      if (notify) drained_.notify_all();
      attempt = 0;
      continue;
    }

    {
      std::lock_guard lk(mu_);
      queue_.front().in_flight = false;
      if (stop_) return;
    }
    sock_.close();  // reconnect fresh on the next attempt
    ++attempt;
    interruptible_sleep_ns(
        backoff_delay_ns(attempt, cfg_.backoff_base_ns, cfg_.backoff_max_ns, rng));
  }
}

bool EpochExporter::attempt_delivery(EpochMessage& msg) {
  // One span per attempt (retries show as repeated wire_send bars in the
  // trace), keyed by the message's oldest covered epoch.
  telemetry::ScopedSpan trace(telemetry::Stage::kWireSend, msg.source_id,
                              msg.span.first);
  const std::uint32_t lane = static_cast<std::uint32_t>(cfg_.source_id);
  if (!sock_.valid()) {
    std::uint64_t param = 0;
    const auto action = fault::point(fault::Site::kExportConnect, lane, &param);
    if (action == fault::Action::kReject) {
      if (injected_send_faults_ != nullptr) injected_send_faults_->inc();
      if (connect_failures_ != nullptr) connect_failures_->inc();
      return false;
    }
    if (action == fault::Action::kStall) {
      fault::stall_ns(param, [this] {
        std::lock_guard lk(mu_);
        return stop_;
      });
    }
    sock_ = connect_endpoint(cfg_.endpoint, cfg_.connect_timeout_ms);
    if (!sock_.valid()) {
      if (connect_failures_ != nullptr) connect_failures_->inc();
      return false;
    }
    // Acks from the previous connection died with it.
    assembler_ = FrameAssembler(cfg_.max_frame_bytes);
    if (reconnects_ != nullptr) reconnects_->inc();
  }

  std::uint64_t param = 0;
  const auto action = fault::point(fault::Site::kExportSend, lane, &param);
  if (action == fault::Action::kReject) {
    if (injected_send_faults_ != nullptr) injected_send_faults_->inc();
    if (send_failures_ != nullptr) send_failures_->inc();
    return false;
  }
  if (action == fault::Action::kStall) {
    fault::stall_ns(param, [this] {
      std::lock_guard lk(mu_);
      return stop_;
    });
  }

  {
    // From here on bytes may reach the collector: mark the entry sticky
    // so publish() never widens it (see coalesce_backlog).  The front is
    // still our entry — only the sender pops, and we are the sender.
    std::lock_guard lk(mu_);
    if (!queue_.empty()) queue_.front().ever_sent = true;
  }

  // Stamp the send time per attempt (the collector's close->send gap then
  // reflects queue + retry delay, not just the first try).
  msg.send_ns = now_ns();
  const std::vector<std::uint8_t> frame = encode_epoch(msg);
  const int sends = action == fault::Action::kDuplicate ? 2 : 1;
  for (int s = 0; s < sends; ++s) {
    if (!sock_.send_all(frame, cfg_.io_timeout_ms)) {
      if (send_failures_ != nullptr) send_failures_->inc();
      return false;
    }
    if (sent_frames_ != nullptr) sent_frames_->inc();
  }
  if (sends == 2 && injected_dup_frames_ != nullptr) injected_dup_frames_->inc();

  if (await_ack(msg.seq_last)) return true;
  if (ack_timeouts_ != nullptr) ack_timeouts_->inc();
  return false;
}

bool EpochExporter::await_ack(std::uint64_t want_seq_last) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(cfg_.ack_timeout_ms);
  std::uint8_t buf[4096];
  std::vector<std::uint8_t> frame;
  for (;;) {
    // Drain whatever is already assembled (a duplicated send produces two
    // acks; the stale one carries an older seq_last and is skipped).
    try {
      while (assembler_.next_frame(frame)) {
        if (peek_message_magic(frame) != kAckMsgMagic) continue;
        const AckMessage ack = decode_ack(frame);
        if (ack.source_id != cfg_.source_id) continue;
        if (ack.seq_last < want_seq_last) continue;
        if (ack.status == AckStatus::kOverlapDropped) {
          // The collector dropped the message whole to avoid a double
          // count.  Treating this as delivered would silently lose every
          // epoch past its applied boundary; fail hard instead (a correct
          // exporter never provokes this — it refuses to widen a message
          // that was ever sent).
          if (overlap_nacks_ != nullptr) overlap_nacks_->inc();
          return false;
        }
        return true;
      }
    } catch (const std::exception&) {
      return false;  // poisoned ack stream: drop the connection
    }

    {
      std::lock_guard lk(mu_);
      if (stop_) return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (left.count() <= 0) return false;
    // Short slices keep stop() responsive during a long ack wait.
    const int slice = static_cast<int>(std::min<long long>(left.count(), 100));
    std::size_t got = 0;
    switch (sock_.recv_some(buf, sizeof buf, slice, &got)) {
      case Socket::RecvResult::kData:
        assembler_.feed(std::span<const std::uint8_t>(buf, got));
        break;
      case Socket::RecvResult::kTimeout:
        break;
      case Socket::RecvResult::kClosed:
      case Socket::RecvResult::kError:
        return false;
    }
  }
}

}  // namespace nitro::xport
