// Idempotent network-wide collector (DESIGN.md §11) + versioned query
// serving plane (DESIGN.md §13): the aggregation side of the epoch-export
// pipeline.
//
// CollectorCore is the thread-safe aggregation state: per-source
// accumulated sketches keyed by source id, deduplicated by contiguous
// sequence ranges so at-least-once redelivery never double-counts an
// epoch.  The rules per incoming message [seq_first, seq_last] against a
// source's last applied sequence A:
//
//   seq_last  <= A            duplicate  — acked, dropped, no state change
//   seq_first == A + 1        applied    — merged, A := seq_last
//   seq_first <= A < seq_last overlap    — a coalesced message straddling
//                                          applied epochs; applying it
//                                          would double-count, so the
//                                          whole message is dropped (and
//                                          counted — the exporter never
//                                          produces this because it
//                                          refuses to coalesce a message
//                                          it ever put on the wire, and
//                                          treats this ack as a hard
//                                          failure; a forged or corrupt
//                                          peer might still send one)
//   seq_first  > A + 1        applied with a gap — the missing epochs are
//                                          counted as lost (gap_epochs)
//
// Sources that stop reporting go *stale* after `staleness_ns` and are
// quarantined out of the merged network-wide view (their counters are
// kept; they rejoin on the next message — counted per transition in both
// directions, wherever the transition is first observed).
//
// Read/write separation (the serving plane):
//
//  * Ingest decodes the wire snapshot with NO lock held (decode needs
//    only the config), then takes a per-source mutex — two sources never
//    serialize on each other's decode or merge.
//  * The network-wide view is a sequence of immutable *generations*
//    (NetworkView), published RCU-style through a pointer slot whose
//    leaf mutex covers only the shared_ptr copy (detail::SnapshotSlot).
//    current_view() is that one pointer copy — any number of readers,
//    no contention with ingest.  view(now) additionally refreshes: if
//    nothing changed it returns the published generation (the fast path
//    is an atomic version check plus a lock-free staleness scan); if
//    sources changed it re-folds *only the dirty sources* into a
//    continuously maintained accumulator (per-source pending deltas),
//    falling back to a full re-fold only when the live set itself changed
//    (quarantine/rejoin).  One builder at a time; builders take only the
//    per-source locks of the sources they fold, never a global one.
//  * Conservation: within any generation, merged.total() equals the sum
//    of gen_packets over its folded sources — the per-source fold copies
//    the stats under the same lock hold as the sketch delta.  With keyed
//    seed rotation (DESIGN.md §16) the fold covers only live sources at
//    the newest seed generation; a lagging source rejoins the fold when
//    its next rotated message arrives.
//
// CollectorServer wraps the core with a socket front end: an accept loop
// plus one handler thread per monitor connection, each reassembling
// frames, acking every decoded message, and tearing the connection down
// on the first undecodable byte.  QueryServer (query_server.hpp) serves
// the generations over HTTP/JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/seed_schedule.hpp"
#include "export/transport.hpp"
#include "export/wire.hpp"
#include "sketch/univmon.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace nitro::xport {

namespace detail {

/// Publication slot for an immutable snapshot: a shared_ptr behind a
/// dedicated leaf mutex held only for the pointer copy / swap itself
/// (a refcount bump and two words) — never while building, folding, or
/// rendering.  Semantically this is std::atomic<std::shared_ptr<T>>;
/// libstdc++'s lock-free _Sp_atomic reads the pointer word under an
/// embedded spin bit whose load-path unlock is relaxed, which
/// ThreadSanitizer reports as a data race (correctly, per the formal
/// memory model — there is no release edge back to the next writer).  A
/// plain mutex gives the tsan suite real happens-before edges at the
/// cost of ~20 uncontended nanoseconds per load.
template <typename T>
class SnapshotSlot {
 public:
  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ptr_;
  }

  void store(std::shared_ptr<T> next) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ptr_.swap(next);
    }
    // `next` (now the displaced snapshot) is released here, outside the
    // lock: dropping the last reference destroys a whole generation,
    // which must not run while holding a lock on every reader's path.
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
};

}  // namespace detail

struct CollectorConfig {
  sketch::UnivMonConfig um_cfg;
  std::uint64_t seed = 1;  // must match the monitors' sketch seed
  /// Keyed seed rotation (DESIGN.md §16) — must match the monitors'
  /// schedule exactly, or cross-generation snapshots decode into replicas
  /// with the wrong hash functions.  rotation_epochs == 0 disables
  /// rotation: every frame carries generation 0 and the derived seed is
  /// `seed`, bit-identical to the pre-rotation collector.
  std::uint64_t master_key = 0;
  std::uint64_t rotation_epochs = 0;
  std::uint64_t staleness_ns = 10'000'000'000ULL;  // 10 s
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Minimum age of the published generation before view(now) builds a
  /// new one (0 = always exact).  A non-zero interval turns a reader pool
  /// hammering view() into at most one fold pass per interval; readers in
  /// between serve the published generation lock-free.
  std::uint64_t min_refresh_interval_ns = 0;
};

class CollectorCore {
 public:
  enum class Ingest { kApplied, kDuplicate, kOverlapDropped };

  struct SourceStats {
    std::uint64_t source_id = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t epochs_applied = 0;
    std::uint64_t messages_applied = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t overlap_dropped = 0;
    std::uint64_t gap_epochs = 0;
    std::uint64_t coalesced_epochs = 0;  // epochs arriving in width>1 messages
    std::uint64_t rejoins = 0;           // stale -> live transitions
    std::uint64_t last_seen_ns = 0;
    core::EpochSpan span;  // union of applied spans
    std::int64_t packets = 0;
    bool stale = false;
    // Freshness (v2 wire timestamps; all 0 when the peer speaks v1).
    // e2e lag = receive - epoch close at the source: how old the newest
    // applied data was on arrival.  wire lag = receive - last send stamp:
    // the transport share of it (the rest is queue + retry delay).
    std::uint64_t last_epoch_close_ns = 0;
    std::uint64_t last_send_ns = 0;
    std::uint64_t e2e_lag_ns = 0;
    std::uint64_t wire_lag_ns = 0;
    // Keyed seed rotation (wire v4, DESIGN.md §16).  The per-source
    // replica holds exactly one seed generation: a higher-generation
    // message resets it (the old generation's counters cannot be merged
    // with the new hash functions), a lower-generation message is dropped
    // whole and counted — an honest monitor's generations only advance.
    std::uint64_t seed_gen = 0;          // generation the replica holds
    std::int64_t gen_packets = 0;        // packets within that generation
    std::uint64_t generation_rotations = 0;  // replica resets seen
    std::uint64_t stale_generation_dropped = 0;  // backward-gen messages
  };

  /// One immutable generation of the network-wide view.  Published
  /// through a SnapshotSlot; everything here is frozen at build time.
  struct NetworkView {
    NetworkView(const sketch::UnivMonConfig& cfg, std::uint64_t seed)
        : merged(cfg, seed) {}

    std::uint64_t generation = 0;   // monotonic across builds
    std::uint64_t built_at_ns = 0;  // the now_ns the build saw
    /// Seed generation this view folded (the max over live sources); live
    /// sources still on an older generation are excluded from the fold
    /// and the packet sum until they rotate, exactly like stale ones.
    std::uint64_t seed_gen = 0;
    sketch::UnivMon merged;         // fold over the live, current-gen sources
    std::int64_t packets = 0;       // sum of gen_packets over folded sources
    std::uint64_t epochs_applied = 0;  // global counter at build time
    std::uint64_t folds = 0;           // per-source folds this build did
    bool full_rebuild = false;         // live set changed -> re-fold all
    std::vector<SourceStats> sources;  // sorted by id, staleness at built_at_ns

   private:
    friend class CollectorCore;
    std::uint64_t version = 0;  // change-version this build folded in
  };

  using ViewPtr = std::shared_ptr<const NetworkView>;

  explicit CollectorCore(const CollectorConfig& cfg);

  /// Apply one decoded epoch message (already CRC/shape-validated by
  /// decode_epoch).  `now_ns` drives liveness.  Thread-safe; decode runs
  /// outside any lock and apply holds only this source's lock.
  Ingest ingest(const EpochMessage& msg, std::uint64_t now_ns);

  /// The published generation — one pointer copy out of the publication
  /// slot (a leaf mutex held for nanoseconds; see detail::SnapshotSlot).
  /// Never waits on ingest or a build.  May lag ingest by whatever
  /// changed since the last view() call.
  ViewPtr current_view() const { return view_.load(); }

  /// An up-to-date generation for `now_ns`: returns the published one
  /// when nothing changed (lock-free fast path), otherwise folds the
  /// dirty sources and publishes a new generation.
  ViewPtr view(std::uint64_t now_ns) const;

  /// Per-source stats with staleness evaluated at `now_ns`, sorted by id.
  std::vector<SourceStats> sources(std::uint64_t now_ns) const;

  /// Network-wide merged sketch over the *live* sources (stale sources are
  /// quarantined out until they report again).  Compatibility wrapper over
  /// view(now_ns) — prefer holding the ViewPtr to avoid the copy.
  sketch::UnivMon merged_view(std::uint64_t now_ns) const {
    return view(now_ns)->merged;
  }

  /// Sum of applied packet counts over live sources — the exact cross-check
  /// against the merged sketch's total.
  std::int64_t merged_packets(std::uint64_t now_ns) const {
    return view(now_ns)->packets;
  }

  std::uint64_t epochs_applied() const {
    return epochs_applied_.load(std::memory_order_relaxed);
  }

  /// Incremental-merge observability: per-source folds performed over all
  /// generation builds, full re-folds (live-set changes), and generations
  /// published.  Also exported as telemetry counters.
  std::uint64_t folds_total() const {
    return folds_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t full_rebuilds_total() const {
    return full_rebuilds_.load(std::memory_order_relaxed);
  }
  std::uint64_t generations_built() const {
    return generations_.load(std::memory_order_relaxed);
  }

  /// Rebuild-from-collector (wire v3, DESIGN.md §15): the last-applied
  /// replica for `source_id` — the cumulative per-source accumulator, its
  /// settled sequence number and applied span/packets — packaged as a
  /// RecoverResponse.  found = false for a source the collector has never
  /// applied an epoch from.  Thread-safe: lock-free index lookup (never
  /// creates a source) plus that source's lock for a consistent snapshot.
  RecoverResponse recovery_snapshot(std::uint64_t source_id) const;

  /// Attach counters/gauges.  Call before traffic: the instrument
  /// pointers are read without synchronization on the ingest path.
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  /// Refresh liveness gauges (sources_live/sources_stale/merged_packets)
  /// in one pass over the sources; called by the server loop and by
  /// exporters' scrape paths.
  void publish_telemetry(std::uint64_t now_ns);

  /// Route this core's apply/merge spans to a specific tracer instead of
  /// the ambient one (a test hosting monitor- and collector-side tracing
  /// in one process needs two "processes" worth of spans).  Set before
  /// traffic; not synchronized against in-flight ingests.
  void set_tracer(telemetry::Tracer* tracer) noexcept { tracer_ = tracer; }

  const CollectorConfig& config() const noexcept { return cfg_; }
  const core::SeedSchedule& seed_schedule() const noexcept { return sched_; }

 private:
  struct Source {
    /// `seed0` is the generation-0 seed from the collector's SeedSchedule
    /// (== cfg.seed only when rotation is off); a replica must never be
    /// built at the raw base seed while rotation keys generation 0.
    Source(const CollectorConfig& cfg, std::uint64_t seed0)
        : acc(cfg.um_cfg, seed0), pending(cfg.um_cfg, seed0) {}

    mutable std::mutex mu;  // guards everything below except last_seen_ns
    /// Atomic so the lock-free staleness scan on the view() fast path can
    /// read it without touching `mu` (also mirrored into stats copies).
    std::atomic<std::uint64_t> last_seen_ns{0};
    sketch::UnivMon acc;      // every applied epoch (for full re-folds)
    sketch::UnivMon pending;  // applied but not yet folded into net_acc_
    bool dirty = false;       // pending is non-empty
    SourceStats stats;
    // Lazily created per-source gauges (null until first applied message
    // with v2 timestamps / until attach_telemetry).
    telemetry::Gauge* e2e_lag_gauge = nullptr;
    telemetry::Gauge* freshness_gauge = nullptr;
  };

  /// Copy-on-write, sorted-by-id source index: readers binary-search /
  /// scan it lock-free; map_mu_ serializes the (rare) insert that swaps
  /// in a new vector.  Sources are never removed, so raw pointers into
  /// the map's unique_ptrs stay valid for the core's lifetime.
  struct IndexEntry {
    std::uint64_t id = 0;
    Source* src = nullptr;
  };
  using Index = std::vector<IndexEntry>;
  using IndexPtr = std::shared_ptr<const Index>;

  bool is_stale(std::uint64_t last_seen_ns, std::uint64_t now_ns) const noexcept {
    return now_ns > last_seen_ns && now_ns - last_seen_ns > cfg_.staleness_ns;
  }

  /// Unified transition accounting (src.mu must be held): evaluates
  /// staleness at `now_ns`, flips stats.stale on a transition, counts it
  /// (quarantine or rejoin) and bumps the change version so the published
  /// generation is invalidated.  Every observer — ingest, sources(),
  /// publish_telemetry(), the view builder — goes through here, so a
  /// transition is counted wherever it is first seen.  Returns the
  /// staleness at `now_ns`.
  bool refresh_staleness(Source& src, std::uint64_t now_ns) const;

  Source* find_or_create(std::uint64_t source_id);

  /// Is the published generation still valid for `now_ns`?  Lock-free.
  bool is_current(const NetworkView& v, std::uint64_t now_ns) const;

  /// Build + publish a new generation (build_mu_ must be held).
  ViewPtr rebuild(std::uint64_t now_ns) const;

  /// Copy stats out of a source (src.mu must be held), mirroring the
  /// atomic last_seen.
  static SourceStats copy_stats(const Source& src) {
    SourceStats s = src.stats;
    s.last_seen_ns = src.last_seen_ns.load(std::memory_order_relaxed);
    return s;
  }

  CollectorConfig cfg_;
  /// Derived from cfg_ (seed, master_key, rotation_epochs); maps a wire
  /// seed generation to the hash seed its snapshots were built under.
  core::SeedSchedule sched_;

  mutable std::mutex map_mu_;  // guards sources_ + index_ swap (inserts only)
  std::map<std::uint64_t, std::unique_ptr<Source>> sources_;
  detail::SnapshotSlot<const Index> index_;

  /// Bumped on every change that can alter the network view: an applied
  /// epoch, a staleness transition, a rejoin.  The published generation
  /// records the version it folded; equality means the fold is current.
  mutable std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> epochs_applied_{0};

  // --- the serving plane (build side) ------------------------------------
  mutable std::mutex build_mu_;  // one generation builder at a time
  /// Continuously maintained fold over `folded_live_`; incremental builds
  /// merge only dirty sources' pending deltas into it.
  mutable std::unique_ptr<sketch::UnivMon> net_acc_;
  mutable std::vector<std::uint64_t> folded_live_;  // ids folded in, sorted
  /// Seed generation net_acc_ is folded at; a newer generation among the
  /// live sources forces a reseeded full re-fold.
  mutable std::uint64_t folded_gen_ = 0;
  mutable std::uint64_t generation_seq_ = 0;
  mutable detail::SnapshotSlot<const NetworkView> view_;

  mutable std::atomic<std::uint64_t> folds_total_{0};
  mutable std::atomic<std::uint64_t> full_rebuilds_{0};
  mutable std::atomic<std::uint64_t> generations_{0};

  telemetry::Counter* messages_applied_ = nullptr;
  telemetry::Counter* epochs_applied_ctr_ = nullptr;
  telemetry::Counter* duplicates_ = nullptr;
  telemetry::Counter* overlap_dropped_ = nullptr;
  telemetry::Counter* gap_epochs_ = nullptr;
  telemetry::Counter* coalesced_epochs_ = nullptr;
  telemetry::Counter* quarantines_ = nullptr;
  telemetry::Counter* rejoins_ = nullptr;
  telemetry::Counter* gen_rotations_ = nullptr;
  telemetry::Counter* stale_gen_dropped_ = nullptr;
  mutable telemetry::Counter* folds_ctr_ = nullptr;
  mutable telemetry::Counter* full_rebuilds_ctr_ = nullptr;
  mutable telemetry::Counter* generations_ctr_ = nullptr;
  telemetry::Gauge* sources_live_ = nullptr;
  telemetry::Gauge* sources_stale_ = nullptr;
  telemetry::Gauge* merged_packets_gauge_ = nullptr;
  /// Anomaly surface on /stats (DESIGN.md §16): level-0 residual
  /// concentration of the merged view and its cumulative heap-eviction
  /// count — a crafted collision flood spikes the first, a churn storm
  /// the second.  Refreshed on every generation build.
  mutable telemetry::Gauge* collision_pressure_gauge_ = nullptr;
  mutable telemetry::Gauge* merged_heap_evictions_gauge_ = nullptr;
  mutable telemetry::Gauge* seed_gen_gauge_ = nullptr;
  telemetry::Histogram* e2e_lag_ns_ = nullptr;
  telemetry::Histogram* wire_lag_ns_ = nullptr;
  telemetry::Registry* registry_ = nullptr;  // for lazy per-source gauges
  std::string prefix_;
  telemetry::Tracer* tracer_ = nullptr;  // override; ambient when null
};

class CollectorServer {
 public:
  /// Owns its core.
  CollectorServer(const CollectorConfig& cfg, const Endpoint& listen_ep);
  /// Shares an externally owned core — lets a test (or a restarted server)
  /// keep aggregation state across server instances.
  CollectorServer(CollectorCore& core, const Endpoint& listen_ep);
  ~CollectorServer();
  CollectorServer(const CollectorServer&) = delete;
  CollectorServer& operator=(const CollectorServer&) = delete;

  /// Bind + listen + start the accept loop.  False if binding failed.
  bool start();
  void stop();

  CollectorCore& core() noexcept { return *core_; }
  /// Resolved listen endpoint (tcp:HOST:0 gets its kernel-assigned port).
  Endpoint endpoint() const;

  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  /// Handler threads currently tracked (live + finished-but-unreaped).
  /// Tests pin that a churning exporter cannot accumulate threads.
  std::size_t tracked_connections() const;

 private:
  /// One tracked handler thread; `done` is set by the thread itself just
  /// before it exits, telling the acceptor the thread is joinable without
  /// blocking.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle_connection(Socket sock);
  /// Join and forget finished handler threads (all of them when
  /// `join_all`, e.g. from stop() once stop_ is set).  Called from the
  /// accept loop on every iteration so a flaky exporter that reconnects
  /// forever cannot accumulate unjoined threads.
  void reap_connections(bool join_all);
  static std::uint64_t now_ns() noexcept;

  CollectorCore* core_;                   // owned_core_ or external
  std::unique_ptr<CollectorCore> owned_core_;
  Endpoint listen_ep_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;
  mutable std::mutex conn_mu_;
  std::vector<Conn> conns_;

  telemetry::Counter* connections_ = nullptr;
  telemetry::Counter* frames_rejected_ = nullptr;
  telemetry::Counter* injected_drops_ = nullptr;
  telemetry::Counter* injected_conn_kills_ = nullptr;
  telemetry::Counter* acks_sent_ = nullptr;
  telemetry::Counter* recover_requests_ = nullptr;
  telemetry::Counter* recover_served_ = nullptr;
  telemetry::Counter* injected_recover_drops_ = nullptr;
  telemetry::Gauge* active_connections_ = nullptr;
  std::atomic<std::int64_t> active_conns_{0};
};

}  // namespace nitro::xport
