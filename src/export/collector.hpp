// Idempotent network-wide collector (DESIGN.md §11): the aggregation side
// of the epoch-export pipeline.
//
// CollectorCore is the pure, thread-safe aggregation state: per-source
// accumulated sketches keyed by source id, deduplicated by contiguous
// sequence ranges so at-least-once redelivery never double-counts an
// epoch.  The rules per incoming message [seq_first, seq_last] against a
// source's last applied sequence A:
//
//   seq_last  <= A            duplicate  — acked, dropped, no state change
//   seq_first == A + 1        applied    — merged, A := seq_last
//   seq_first <= A < seq_last overlap    — a coalesced message straddling
//                                          applied epochs; applying it
//                                          would double-count, so the
//                                          whole message is dropped (and
//                                          counted — the exporter never
//                                          produces this because it
//                                          refuses to coalesce a message
//                                          it ever put on the wire, and
//                                          treats this ack as a hard
//                                          failure; a forged or corrupt
//                                          peer might still send one)
//   seq_first  > A + 1        applied with a gap — the missing epochs are
//                                          counted as lost (gap_epochs)
//
// Sources that stop reporting go *stale* after `staleness_ns` and are
// quarantined out of the merged network-wide view (their counters are
// kept; they rejoin on the next applied message).
//
// CollectorServer wraps the core with a socket front end: an accept loop
// plus one handler thread per monitor connection, each reassembling
// frames, acking every decoded message, and tearing the connection down
// on the first undecodable byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "export/transport.hpp"
#include "export/wire.hpp"
#include "sketch/univmon.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace nitro::xport {

struct CollectorConfig {
  sketch::UnivMonConfig um_cfg;
  std::uint64_t seed = 1;  // must match the monitors' sketch seed
  std::uint64_t staleness_ns = 10'000'000'000ULL;  // 10 s
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class CollectorCore {
 public:
  enum class Ingest { kApplied, kDuplicate, kOverlapDropped };

  struct SourceStats {
    std::uint64_t source_id = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t epochs_applied = 0;
    std::uint64_t messages_applied = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t overlap_dropped = 0;
    std::uint64_t gap_epochs = 0;
    std::uint64_t coalesced_epochs = 0;  // epochs arriving in width>1 messages
    std::uint64_t last_seen_ns = 0;
    core::EpochSpan span;  // union of applied spans
    std::int64_t packets = 0;
    bool stale = false;
    // Freshness (v2 wire timestamps; all 0 when the peer speaks v1).
    // e2e lag = receive - epoch close at the source: how old the newest
    // applied data was on arrival.  wire lag = receive - last send stamp:
    // the transport share of it (the rest is queue + retry delay).
    std::uint64_t last_epoch_close_ns = 0;
    std::uint64_t last_send_ns = 0;
    std::uint64_t e2e_lag_ns = 0;
    std::uint64_t wire_lag_ns = 0;
  };

  explicit CollectorCore(const CollectorConfig& cfg);

  /// Apply one decoded epoch message (already CRC/shape-validated by
  /// decode_epoch).  `now_ns` drives liveness.  Thread-safe.
  Ingest ingest(const EpochMessage& msg, std::uint64_t now_ns);

  /// Per-source stats with staleness evaluated at `now_ns`, sorted by id.
  std::vector<SourceStats> sources(std::uint64_t now_ns) const;

  /// Network-wide merged sketch over the *live* sources (stale sources are
  /// quarantined out until they report again).
  sketch::UnivMon merged_view(std::uint64_t now_ns) const;

  /// Sum of applied packet counts over live sources — the exact cross-check
  /// against the merged sketch's total.
  std::int64_t merged_packets(std::uint64_t now_ns) const;

  std::uint64_t epochs_applied() const;

  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  /// Refresh liveness gauges (sources_live/sources_stale/merged_packets);
  /// called by the server loop and by exporters' scrape paths.
  void publish_telemetry(std::uint64_t now_ns);

  /// Route this core's apply/merge spans to a specific tracer instead of
  /// the ambient one (a test hosting monitor- and collector-side tracing
  /// in one process needs two "processes" worth of spans).  Set before
  /// traffic; not synchronized against in-flight ingests.
  void set_tracer(telemetry::Tracer* tracer) noexcept { tracer_ = tracer; }

  const CollectorConfig& config() const noexcept { return cfg_; }

 private:
  struct Source {
    explicit Source(const CollectorConfig& cfg)
        : acc(cfg.um_cfg, cfg.seed) {}
    sketch::UnivMon acc;
    SourceStats stats;
    // Lazily created per-source gauges (null until first applied message
    // with v2 timestamps / until attach_telemetry).
    telemetry::Gauge* e2e_lag_gauge = nullptr;
    telemetry::Gauge* freshness_gauge = nullptr;
  };

  bool is_stale(const SourceStats& s, std::uint64_t now_ns) const noexcept {
    return now_ns > s.last_seen_ns && now_ns - s.last_seen_ns > cfg_.staleness_ns;
  }

  CollectorConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<Source>> sources_;
  std::uint64_t epochs_applied_ = 0;

  telemetry::Counter* messages_applied_ = nullptr;
  telemetry::Counter* epochs_applied_ctr_ = nullptr;
  telemetry::Counter* duplicates_ = nullptr;
  telemetry::Counter* overlap_dropped_ = nullptr;
  telemetry::Counter* gap_epochs_ = nullptr;
  telemetry::Counter* coalesced_epochs_ = nullptr;
  telemetry::Counter* quarantines_ = nullptr;
  telemetry::Gauge* sources_live_ = nullptr;
  telemetry::Gauge* sources_stale_ = nullptr;
  telemetry::Gauge* merged_packets_gauge_ = nullptr;
  telemetry::Histogram* e2e_lag_ns_ = nullptr;
  telemetry::Histogram* wire_lag_ns_ = nullptr;
  telemetry::Registry* registry_ = nullptr;  // for lazy per-source gauges
  std::string prefix_;
  telemetry::Tracer* tracer_ = nullptr;  // override; ambient when null
};

class CollectorServer {
 public:
  /// Owns its core.
  CollectorServer(const CollectorConfig& cfg, const Endpoint& listen_ep);
  /// Shares an externally owned core — lets a test (or a restarted server)
  /// keep aggregation state across server instances.
  CollectorServer(CollectorCore& core, const Endpoint& listen_ep);
  ~CollectorServer();
  CollectorServer(const CollectorServer&) = delete;
  CollectorServer& operator=(const CollectorServer&) = delete;

  /// Bind + listen + start the accept loop.  False if binding failed.
  bool start();
  void stop();

  CollectorCore& core() noexcept { return *core_; }
  /// Resolved listen endpoint (tcp:HOST:0 gets its kernel-assigned port).
  Endpoint endpoint() const;

  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  /// Handler threads currently tracked (live + finished-but-unreaped).
  /// Tests pin that a churning exporter cannot accumulate threads.
  std::size_t tracked_connections() const;

 private:
  /// One tracked handler thread; `done` is set by the thread itself just
  /// before it exits, telling the acceptor the thread is joinable without
  /// blocking.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle_connection(Socket sock);
  /// Join and forget finished handler threads (all of them when
  /// `join_all`, e.g. from stop() once stop_ is set).  Called from the
  /// accept loop on every iteration so a flaky exporter that reconnects
  /// forever cannot accumulate unjoined threads.
  void reap_connections(bool join_all);
  static std::uint64_t now_ns() noexcept;

  CollectorCore* core_;                   // owned_core_ or external
  std::unique_ptr<CollectorCore> owned_core_;
  Endpoint listen_ep_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;
  mutable std::mutex conn_mu_;
  std::vector<Conn> conns_;

  telemetry::Counter* connections_ = nullptr;
  telemetry::Counter* frames_rejected_ = nullptr;
  telemetry::Counter* injected_drops_ = nullptr;
  telemetry::Counter* injected_conn_kills_ = nullptr;
  telemetry::Counter* acks_sent_ = nullptr;
  telemetry::Gauge* active_connections_ = nullptr;
  std::atomic<std::int64_t> active_conns_{0};
};

}  // namespace nitro::xport
