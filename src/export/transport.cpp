#include "export/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/io.hpp"

namespace nitro::xport {

namespace {

using clock = std::chrono::steady_clock;

int remaining_ms(clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) == 0;
}

// Resolves `ep` to a socket address; `family` is the domain to pass to
// socket(2) (AF_INET, AF_INET6 or AF_UNIX).  TCP hosts go through
// getaddrinfo, so hostnames and IPv6 literals work, not just dotted
// quads; the first result wins.
bool fill_sockaddr(const Endpoint& ep, sockaddr_storage& ss, socklen_t& len,
                   int& family) {
  std::memset(&ss, 0, sizeof ss);
  if (ep.kind == Endpoint::Kind::kTcp) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(ep.host.c_str(), std::to_string(ep.port).c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      return false;
    }
    std::memcpy(&ss, res->ai_addr, res->ai_addrlen);
    len = res->ai_addrlen;
    family = res->ai_family;
    ::freeaddrinfo(res);
    return true;
  }
  auto* un = reinterpret_cast<sockaddr_un*>(&ss);
  un->sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(un->sun_path)) return false;
  std::memcpy(un->sun_path, ep.path.c_str(), ep.path.size() + 1);
  len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + ep.path.size() + 1);
  family = AF_UNIX;
  return true;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kTcp) return "tcp:" + host + ":" + std::to_string(port);
  return "unix:" + path;
}

std::optional<Endpoint> parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) return std::nullopt;
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.find_last_of(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
      return std::nullopt;
    }
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = rest.substr(0, colon);
    // Bracketed IPv6 literals: "tcp:[::1]:9000" -> host "::1".
    if (ep.host.size() >= 2 && ep.host.front() == '[' && ep.host.back() == ']') {
      ep.host = ep.host.substr(1, ep.host.size() - 2);
    }
    if (ep.host.empty()) return std::nullopt;
    char* end = nullptr;
    const unsigned long port = std::strtoul(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) return std::nullopt;
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  return std::nullopt;
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::span<const std::uint8_t> bytes, int timeout_ms) noexcept {
  if (fd_ < 0) return false;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const int ready = io::poll_fd(fd_, POLLOUT, remaining_ms(deadline));
    if (ready <= 0) return false;  // timeout or poll error
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Socket::RecvResult Socket::recv_some(std::uint8_t* buf, std::size_t cap,
                                     int timeout_ms, std::size_t* got) noexcept {
  if (fd_ < 0) return RecvResult::kError;
  const int ready = io::poll_fd(fd_, POLLIN, timeout_ms);
  if (ready < 0) return RecvResult::kError;
  if (ready == 0) return RecvResult::kTimeout;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return RecvResult::kData;
    }
    if (n == 0) return RecvResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvResult::kTimeout;
    return RecvResult::kError;
  }
}

Socket connect_endpoint(const Endpoint& ep, int timeout_ms) {
  sockaddr_storage ss;
  socklen_t len = 0;
  int domain = AF_UNIX;
  if (!fill_sockaddr(ep, ss, len, domain)) return Socket();
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  Socket sock(fd);
  if (!set_nonblocking(fd, true)) return Socket();
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&ss), len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) return Socket();
    if (io::poll_fd(fd, POLLOUT, timeout_ms) <= 0) return Socket();
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      return Socket();
    }
  }
  return sock;  // left non-blocking: send/recv poll first
}

bool Listener::open(const Endpoint& ep) {
  close();
  sockaddr_storage ss;
  socklen_t len = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    ::unlink(ep.path.c_str());  // stale socket file must not block restart
  }
  int domain = AF_UNIX;
  if (!fill_sockaddr(ep, ss, len, domain)) return false;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&ss), len) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  if (ep.kind == Endpoint::Kind::kTcp) {
    sockaddr_storage bound{};
    socklen_t blen = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      bound_port_ =
          bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    }
  } else {
    unlink_path_ = ep.path;
  }
  fd_ = fd;
  return true;
}

Socket Listener::accept_conn(int timeout_ms) {
  if (fd_ < 0) return Socket();
  if (io::poll_fd(fd_, POLLIN, timeout_ms) <= 0) return Socket();
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      Socket s(cfd);
      // Accepted sockets inherit blocking mode on Linux; make explicit.
      const int flags = ::fcntl(cfd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
      return s;
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
  bound_port_ = 0;
}

}  // namespace nitro::xport
