#include "export/collector.hpp"

#include <chrono>

#include "control/codec.hpp"
#include "fault/fault.hpp"

namespace nitro::xport {

// ---------------------------------------------------------------------------
// CollectorCore

CollectorCore::CollectorCore(const CollectorConfig& cfg) : cfg_(cfg) {}

CollectorCore::Ingest CollectorCore::ingest(const EpochMessage& msg,
                                            std::uint64_t now_ns) {
  // Collector-side half of the epoch's trace: keyed by the message's
  // oldest covered epoch, matching the exporter's wire_send span.
  telemetry::ScopedSpan trace(telemetry::Stage::kCollectorApply, msg.source_id,
                              msg.span.first, tracer_);
  std::lock_guard lk(mu_);
  auto it = sources_.find(msg.source_id);
  if (it == sources_.end()) {
    auto src = std::make_unique<Source>(cfg_);
    src->stats.source_id = msg.source_id;
    it = sources_.emplace(msg.source_id, std::move(src)).first;
  }
  Source& src = *it->second;
  // Any message — even a duplicate — proves the source is alive.
  src.stats.last_seen_ns = now_ns;
  if (src.stats.stale) {
    src.stats.stale = false;  // rejoin the merged view
  }

  const std::uint64_t applied_up_to = src.stats.last_seq;
  if (msg.seq_last <= applied_up_to) {
    ++src.stats.duplicates;
    if (duplicates_ != nullptr) duplicates_->inc();
    return Ingest::kDuplicate;
  }
  if (msg.seq_first <= applied_up_to) {
    // Straddles the applied boundary: part of this coalesced sketch is
    // already in the accumulator and a merged sketch cannot be split, so
    // applying any of it would double-count.  Drop whole, loudly.
    ++src.stats.overlap_dropped;
    if (overlap_dropped_ != nullptr) overlap_dropped_->inc();
    return Ingest::kOverlapDropped;
  }

  sketch::UnivMon tmp(cfg_.um_cfg, cfg_.seed);
  control::load_univmon(msg.snapshot, tmp);  // throws on corruption
  src.acc.merge(tmp);

  if (msg.seq_first > applied_up_to + 1) {
    const std::uint64_t lost = msg.seq_first - applied_up_to - 1;
    src.stats.gap_epochs += lost;
    if (gap_epochs_ != nullptr) gap_epochs_->inc(lost);
  }
  const std::uint64_t covered = msg.epochs_covered();
  src.stats.last_seq = msg.seq_last;
  src.stats.epochs_applied += covered;
  ++src.stats.messages_applied;
  if (covered > 1) {
    src.stats.coalesced_epochs += covered;
    if (coalesced_epochs_ != nullptr) coalesced_epochs_->inc(covered);
  }
  if (src.stats.epochs_applied == covered) {
    src.stats.span = msg.span;
  } else {
    src.stats.span.widen(msg.span);
  }
  src.stats.packets += msg.packets;
  epochs_applied_ += covered;
  if (messages_applied_ != nullptr) messages_applied_->inc();
  if (epochs_applied_ctr_ != nullptr) epochs_applied_ctr_->inc(covered);

  // End-to-end freshness from the v2 timestamps (0 = v1 peer, skip).
  // Clocks are compared across processes: meaningful for same-host
  // steady clocks (this repo's deployments/tests); clamp to 0 otherwise.
  if (msg.epoch_close_ns != 0) {
    src.stats.last_epoch_close_ns = msg.epoch_close_ns;
    src.stats.e2e_lag_ns =
        now_ns > msg.epoch_close_ns ? now_ns - msg.epoch_close_ns : 0;
    if (e2e_lag_ns_ != nullptr) e2e_lag_ns_->observe(src.stats.e2e_lag_ns);
    if (registry_ != nullptr && src.e2e_lag_gauge == nullptr) {
      const std::string id = std::to_string(msg.source_id);
      src.e2e_lag_gauge =
          &registry_->gauge(prefix_ + "_source_" + id + "_e2e_lag_ns",
                            "epoch close -> applied latency, last message");
      src.freshness_gauge =
          &registry_->gauge(prefix_ + "_source_" + id + "_freshness_ns",
                            "age of the newest applied epoch (grows while silent)");
    }
    if (src.e2e_lag_gauge != nullptr) {
      src.e2e_lag_gauge->set(static_cast<double>(src.stats.e2e_lag_ns));
    }
    if (src.freshness_gauge != nullptr) {
      src.freshness_gauge->set(static_cast<double>(src.stats.e2e_lag_ns));
    }
  }
  if (msg.send_ns != 0) {
    src.stats.last_send_ns = msg.send_ns;
    src.stats.wire_lag_ns = now_ns > msg.send_ns ? now_ns - msg.send_ns : 0;
    if (wire_lag_ns_ != nullptr) wire_lag_ns_->observe(src.stats.wire_lag_ns);
  }
  return Ingest::kApplied;
}

std::vector<CollectorCore::SourceStats> CollectorCore::sources(
    std::uint64_t now_ns) const {
  std::lock_guard lk(mu_);
  std::vector<SourceStats> out;
  out.reserve(sources_.size());
  for (const auto& [id, src] : sources_) {
    SourceStats s = src->stats;
    s.stale = is_stale(s, now_ns);
    out.push_back(s);
  }
  return out;
}

sketch::UnivMon CollectorCore::merged_view(std::uint64_t now_ns) const {
  std::lock_guard lk(mu_);
  sketch::UnivMon merged(cfg_.um_cfg, cfg_.seed);
  for (const auto& [id, src] : sources_) {
    if (is_stale(src->stats, now_ns)) continue;
    // One merge span per folded source, keyed by its newest applied
    // epoch — the final stage of that epoch's end-to-end trace.
    telemetry::ScopedSpan trace(telemetry::Stage::kNetworkMerge, id,
                                src->stats.span.last, tracer_);
    merged.merge(src->acc);
  }
  return merged;
}

std::int64_t CollectorCore::merged_packets(std::uint64_t now_ns) const {
  std::lock_guard lk(mu_);
  std::int64_t total = 0;
  for (const auto& [id, src] : sources_) {
    if (is_stale(src->stats, now_ns)) continue;
    total += src->stats.packets;
  }
  return total;
}

std::uint64_t CollectorCore::epochs_applied() const {
  std::lock_guard lk(mu_);
  return epochs_applied_;
}

void CollectorCore::attach_telemetry(telemetry::Registry& registry,
                                     const std::string& prefix) {
  std::lock_guard lk(mu_);
  messages_applied_ = &registry.counter(prefix + "_messages_applied_total",
                                        "epoch messages merged into a source");
  epochs_applied_ctr_ = &registry.counter(prefix + "_epochs_applied_total",
                                          "epochs merged (coalesced count as many)");
  duplicates_ = &registry.counter(prefix + "_duplicate_messages_total",
                                  "redelivered messages dropped idempotently");
  overlap_dropped_ = &registry.counter(
      prefix + "_overlap_dropped_total",
      "messages straddling the applied boundary, dropped to avoid double-count");
  gap_epochs_ = &registry.counter(prefix + "_gap_epochs_total",
                                  "epochs lost to sequence gaps");
  coalesced_epochs_ = &registry.counter(
      prefix + "_coalesced_epochs_total", "epochs that arrived pre-merged");
  quarantines_ = &registry.counter(prefix + "_quarantine_transitions_total",
                                   "live -> stale source transitions");
  sources_live_ = &registry.gauge(prefix + "_sources_live", "sources in the merged view");
  sources_stale_ = &registry.gauge(prefix + "_sources_stale",
                                   "sources quarantined for staleness");
  merged_packets_gauge_ = &registry.gauge(prefix + "_merged_packets",
                                          "packet total over live sources");
  e2e_lag_ns_ = &registry.histogram(
      prefix + "_e2e_lag_ns",
      "epoch close at source -> applied here, per applied message");
  wire_lag_ns_ = &registry.histogram(
      prefix + "_wire_lag_ns", "send stamp -> applied here, per applied message");
  registry_ = &registry;
  prefix_ = prefix;
}

void CollectorCore::publish_telemetry(std::uint64_t now_ns) {
  std::lock_guard lk(mu_);
  std::int64_t packets = 0;
  double live = 0, stale = 0;
  for (auto& [id, src] : sources_) {
    const bool s = is_stale(src->stats, now_ns);
    if (s && !src->stats.stale) {
      src->stats.stale = true;
      if (quarantines_ != nullptr) quarantines_->inc();
    }
    if (s) {
      stale += 1;
    } else {
      live += 1;
      packets += src->stats.packets;
    }
    // Freshness keeps growing while a source is silent — the gauge makes
    // the staleness-quarantine decision visible as it approaches.
    if (src->freshness_gauge != nullptr && src->stats.last_epoch_close_ns != 0 &&
        now_ns > src->stats.last_epoch_close_ns) {
      src->freshness_gauge->set(
          static_cast<double>(now_ns - src->stats.last_epoch_close_ns));
    }
  }
  if (sources_live_ != nullptr) sources_live_->set(live);
  if (sources_stale_ != nullptr) sources_stale_->set(stale);
  if (merged_packets_gauge_ != nullptr) {
    merged_packets_gauge_->set(static_cast<double>(packets));
  }
}

// ---------------------------------------------------------------------------
// CollectorServer

CollectorServer::CollectorServer(const CollectorConfig& cfg, const Endpoint& listen_ep)
    : owned_core_(std::make_unique<CollectorCore>(cfg)), listen_ep_(listen_ep) {
  core_ = owned_core_.get();
}

CollectorServer::CollectorServer(CollectorCore& core, const Endpoint& listen_ep)
    : core_(&core), listen_ep_(listen_ep) {}

CollectorServer::~CollectorServer() { stop(); }

bool CollectorServer::start() {
  if (started_) return true;
  if (!listener_.open(listen_ep_)) return false;
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void CollectorServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  reap_connections(/*join_all=*/true);  // handlers exit on stop_
  started_ = false;
}

std::size_t CollectorServer::tracked_connections() const {
  std::lock_guard lk(conn_mu_);
  return conns_.size();
}

void CollectorServer::reap_connections(bool join_all) {
  // Move joinable threads out of the registry first so the (possibly
  // blocking) joins run without conn_mu_ held.
  std::vector<std::thread> finished;
  {
    std::lock_guard lk(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

Endpoint CollectorServer::endpoint() const {
  Endpoint ep = listen_ep_;
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    ep.port = listener_.bound_port();
  }
  return ep;
}

void CollectorServer::attach_telemetry(telemetry::Registry& registry,
                                       const std::string& prefix) {
  core_->attach_telemetry(registry, prefix);
  connections_ = &registry.counter(prefix + "_connections_total",
                                   "monitor connections accepted");
  frames_rejected_ = &registry.counter(
      prefix + "_frames_rejected_total",
      "undecodable frames/messages (each poisons its connection)");
  injected_drops_ = &registry.counter(prefix + "_injected_drops_total",
                                      "fault-injected frame drops (no ack sent)");
  injected_conn_kills_ = &registry.counter(prefix + "_injected_conn_kills_total",
                                           "fault-injected connection kills");
  acks_sent_ = &registry.counter(prefix + "_acks_sent_total", "acks written back");
  active_connections_ = &registry.gauge(prefix + "_active_connections",
                                        "currently connected monitors");
}

std::uint64_t CollectorServer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CollectorServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Reap before (possibly) blocking in accept: handler threads of
    // disconnected monitors are joined here, so a flaky link that
    // reconnects forever holds a bounded number of threads.
    reap_connections(/*join_all=*/false);
    Socket sock = listener_.accept_conn(100);
    if (!sock.valid()) continue;
    if (connections_ != nullptr) connections_->inc();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lk(conn_mu_);
    conns_.push_back(Conn{
        std::thread([this, s = std::move(sock), done]() mutable {
          handle_connection(std::move(s));
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void CollectorServer::handle_connection(Socket sock) {
  active_conns_.fetch_add(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
  FrameAssembler assembler(core_->config().max_frame_bytes);
  std::uint8_t buf[64 * 1024];
  std::vector<std::uint8_t> frame;
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_relaxed)) {
    std::size_t got = 0;
    switch (sock.recv_some(buf, sizeof buf, 200, &got)) {
      case Socket::RecvResult::kData:
        assembler.feed(std::span<const std::uint8_t>(buf, got));
        break;
      case Socket::RecvResult::kTimeout:
        core_->publish_telemetry(now_ns());
        continue;
      case Socket::RecvResult::kClosed:
      case Socket::RecvResult::kError:
        alive = false;
        continue;
    }
    try {
      while (alive && assembler.next_frame(frame)) {
        if (peek_message_magic(frame) != kEpochMsgMagic) {
          // Monitors only send epoch messages; anything else is garbage
          // the CRC happened to bless.  Poison the connection.
          if (frames_rejected_ != nullptr) frames_rejected_->inc();
          alive = false;
          break;
        }
        const EpochMessage msg = decode_epoch(frame);

        std::uint64_t param = 0;
        const auto action = fault::point(fault::Site::kCollectorIngest,
                                         static_cast<std::uint32_t>(msg.source_id),
                                         &param);
        if (action == fault::Action::kReject) {
          // Simulated receive-side loss: no ack, the exporter must retry.
          if (injected_drops_ != nullptr) injected_drops_->inc();
          continue;
        }
        if (action == fault::Action::kDie) {
          if (injected_conn_kills_ != nullptr) injected_conn_kills_->inc();
          alive = false;  // abrupt close mid-stream
          break;
        }
        if (action == fault::Action::kStall) {
          fault::stall_ns(param, [this] {
            return stop_.load(std::memory_order_relaxed);
          });
        }

        AckMessage ack;
        ack.source_id = msg.source_id;
        ack.seq_last = msg.seq_last;
        switch (core_->ingest(msg, now_ns())) {
          case CollectorCore::Ingest::kApplied:
            ack.status = AckStatus::kApplied;
            break;
          case CollectorCore::Ingest::kDuplicate:
            ack.status = AckStatus::kDuplicate;
            break;
          case CollectorCore::Ingest::kOverlapDropped:
            ack.status = AckStatus::kOverlapDropped;
            break;
        }
        if (!sock.send_all(encode_ack(ack), 2000)) {
          alive = false;
          break;
        }
        if (acks_sent_ != nullptr) acks_sent_->inc();
      }
    } catch (const std::exception&) {
      // Undecodable frame or corrupt snapshot: the stream cannot resync.
      if (frames_rejected_ != nullptr) frames_rejected_->inc();
      alive = false;
    }
    core_->publish_telemetry(now_ns());
  }
  sock.close();
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
}

}  // namespace nitro::xport
