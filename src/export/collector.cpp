#include "export/collector.hpp"

#include <algorithm>
#include <chrono>

#include "control/codec.hpp"
#include "fault/fault.hpp"
#include "sketch/anomaly.hpp"

namespace nitro::xport {

// ---------------------------------------------------------------------------
// CollectorCore

CollectorCore::CollectorCore(const CollectorConfig& cfg)
    : cfg_(cfg),
      sched_{cfg.seed, cfg.master_key, cfg.rotation_epochs},
      net_acc_(std::make_unique<sketch::UnivMon>(cfg.um_cfg, sched_.seed_for(0))) {
  index_.store(std::make_shared<const Index>());
  // Generation 0: empty view, valid until the first source appears.  With
  // rotation on, generation 0 is already keyed — replicas must start at
  // seed_for(0), not the raw base seed, or the first ingest can't merge.
  auto v = std::make_shared<NetworkView>(cfg_.um_cfg, sched_.seed_for(0));
  view_.store(ViewPtr(std::move(v)));
}

bool CollectorCore::refresh_staleness(Source& src, std::uint64_t now_ns) const {
  const bool stale_now =
      is_stale(src.last_seen_ns.load(std::memory_order_relaxed), now_ns);
  if (stale_now && !src.stats.stale) {
    src.stats.stale = true;
    if (quarantines_ != nullptr) quarantines_->inc();
    version_.fetch_add(1, std::memory_order_release);
  } else if (!stale_now && src.stats.stale) {
    src.stats.stale = false;
    ++src.stats.rejoins;
    if (rejoins_ != nullptr) rejoins_->inc();
    version_.fetch_add(1, std::memory_order_release);
  }
  return stale_now;
}

CollectorCore::Source* CollectorCore::find_or_create(std::uint64_t source_id) {
  const IndexPtr idx = index_.load();
  const auto it = std::lower_bound(
      idx->begin(), idx->end(), source_id,
      [](const IndexEntry& e, std::uint64_t id) { return e.id < id; });
  if (it != idx->end() && it->id == source_id) return it->src;

  std::lock_guard lk(map_mu_);
  auto [map_it, inserted] =
      sources_.try_emplace(source_id, nullptr);
  if (inserted) {
    map_it->second = std::make_unique<Source>(cfg_, sched_.seed_for(0));
    map_it->second->stats.source_id = source_id;
    // Publish a new sorted index (copy-on-write; map iteration is sorted).
    auto fresh = std::make_shared<Index>();
    fresh->reserve(sources_.size());
    for (const auto& [id, src] : sources_) fresh->push_back({id, src.get()});
    index_.store(IndexPtr(std::move(fresh)));
  }
  return map_it->second.get();
}

RecoverResponse CollectorCore::recovery_snapshot(std::uint64_t source_id) const {
  RecoverResponse resp;
  resp.source_id = source_id;
  const IndexPtr idx = index_.load();
  const auto it = std::lower_bound(
      idx->begin(), idx->end(), source_id,
      [](const IndexEntry& e, std::uint64_t id) { return e.id < id; });
  if (it == idx->end() || it->id != source_id) return resp;  // found = false
  Source& src = *it->src;
  std::lock_guard lk(src.mu);
  if (src.stats.last_seq == 0) return resp;  // known but nothing applied yet
  resp.found = true;
  resp.last_seq = src.stats.last_seq;
  resp.span = src.stats.span;
  // The replica holds exactly one seed generation (rotation resets it),
  // so the packet count describing its contents is the per-generation
  // one — identical to the cumulative count when rotation is off.
  resp.packets = src.stats.gen_packets;
  resp.seed_gen = src.stats.seed_gen;
  // The cumulative accumulator *is* the last-applied replica; serializing
  // it under src.mu keeps it consistent with last_seq/span/packets.
  resp.snapshot = control::snapshot_univmon(src.acc);
  return resp;
}

CollectorCore::Ingest CollectorCore::ingest(const EpochMessage& msg,
                                            std::uint64_t now_ns) {
  // Collector-side half of the epoch's trace: keyed by the message's
  // oldest covered epoch, matching the exporter's wire_send span.
  telemetry::ScopedSpan trace(telemetry::Stage::kCollectorApply, msg.source_id,
                              msg.span.first, tracer_);

  // Decode with NO lock held — it needs only the config, and it is the
  // expensive part of ingest.  A stall here (injected or real) must never
  // block another source's apply.
  std::uint64_t param = 0;
  if (fault::point(fault::Site::kCollectorDecode,
                   static_cast<std::uint32_t>(msg.source_id),
                   &param) == fault::Action::kStall) {
    fault::stall_ns(param, [] { return false; });
  }
  sketch::UnivMon tmp(cfg_.um_cfg, sched_.seed_for(msg.seed_gen));
  control::load_univmon(msg.snapshot, tmp);  // throws on corruption

  Source* src_ptr = find_or_create(msg.source_id);
  Source& src = *src_ptr;
  std::lock_guard lk(src.mu);
  // Any message — even a duplicate — proves the source is alive; a
  // quarantined source rejoins here (counted by refresh_staleness).
  src.last_seen_ns.store(now_ns, std::memory_order_relaxed);
  refresh_staleness(src, now_ns);

  const std::uint64_t applied_up_to = src.stats.last_seq;
  if (msg.seq_last <= applied_up_to) {
    ++src.stats.duplicates;
    if (duplicates_ != nullptr) duplicates_->inc();
    return Ingest::kDuplicate;
  }
  if (msg.seq_first <= applied_up_to) {
    // Straddles the applied boundary: part of this coalesced sketch is
    // already in the accumulator and a merged sketch cannot be split, so
    // applying any of it would double-count.  Drop whole, loudly.
    ++src.stats.overlap_dropped;
    if (overlap_dropped_ != nullptr) overlap_dropped_->inc();
    return Ingest::kOverlapDropped;
  }
  if (msg.seed_gen < src.stats.seed_gen) {
    // A backward seed generation with a fresh sequence number: an honest
    // monitor's generations only advance (a checkpoint rollback also
    // rolls the sequence back, which the duplicate check above already
    // settled), so this sketch was hashed under a seed the replica no
    // longer holds.  Drop whole and count; ack as duplicate so a
    // confused-but-live exporter settles the entry instead of wedging
    // in retries.
    ++src.stats.stale_generation_dropped;
    if (stale_gen_dropped_ != nullptr) stale_gen_dropped_->inc();
    return Ingest::kDuplicate;
  }
  if (msg.seed_gen > src.stats.seed_gen) {
    // The source rotated onto a new keyed seed (DESIGN.md §16).  The
    // replica's counters are hashed under the old seed and can never be
    // merged with the new generation — reset to fresh sketches at the
    // derived seed.  The network view re-folds at the new generation on
    // its next build.
    const std::uint64_t rotated_seed = sched_.seed_for(msg.seed_gen);
    src.acc = sketch::UnivMon(cfg_.um_cfg, rotated_seed);
    src.pending = sketch::UnivMon(cfg_.um_cfg, rotated_seed);
    src.dirty = false;
    src.stats.seed_gen = msg.seed_gen;
    src.stats.gen_packets = 0;
    ++src.stats.generation_rotations;
    if (gen_rotations_ != nullptr) gen_rotations_->inc();
  }

  src.acc.merge(tmp);      // full accumulator (full re-folds)
  src.pending.merge(tmp);  // delta since the last fold (incremental builds)
  src.dirty = true;

  if (msg.seq_first > applied_up_to + 1) {
    const std::uint64_t lost = msg.seq_first - applied_up_to - 1;
    src.stats.gap_epochs += lost;
    if (gap_epochs_ != nullptr) gap_epochs_->inc(lost);
  }
  const std::uint64_t covered = msg.epochs_covered();
  src.stats.last_seq = msg.seq_last;
  src.stats.epochs_applied += covered;
  ++src.stats.messages_applied;
  if (covered > 1) {
    src.stats.coalesced_epochs += covered;
    if (coalesced_epochs_ != nullptr) coalesced_epochs_->inc(covered);
  }
  if (src.stats.epochs_applied == covered) {
    src.stats.span = msg.span;
  } else {
    src.stats.span.widen(msg.span);
  }
  src.stats.packets += msg.packets;
  src.stats.gen_packets += msg.packets;
  epochs_applied_.fetch_add(covered, std::memory_order_relaxed);
  if (messages_applied_ != nullptr) messages_applied_->inc();
  if (epochs_applied_ctr_ != nullptr) epochs_applied_ctr_->inc(covered);

  // End-to-end freshness from the v2 timestamps (0 = v1 peer, skip).
  // Clocks are compared across processes: meaningful for same-host
  // steady clocks (this repo's deployments/tests); clamp to 0 otherwise.
  if (msg.epoch_close_ns != 0) {
    src.stats.last_epoch_close_ns = msg.epoch_close_ns;
    src.stats.e2e_lag_ns =
        now_ns > msg.epoch_close_ns ? now_ns - msg.epoch_close_ns : 0;
    if (e2e_lag_ns_ != nullptr) e2e_lag_ns_->observe(src.stats.e2e_lag_ns);
    if (registry_ != nullptr && src.e2e_lag_gauge == nullptr) {
      const std::string id = std::to_string(msg.source_id);
      src.e2e_lag_gauge =
          &registry_->gauge(prefix_ + "_source_" + id + "_e2e_lag_ns",
                            "epoch close -> applied latency, last message");
      src.freshness_gauge =
          &registry_->gauge(prefix_ + "_source_" + id + "_freshness_ns",
                            "age of the newest applied epoch (grows while silent)");
    }
    if (src.e2e_lag_gauge != nullptr) {
      src.e2e_lag_gauge->set(static_cast<double>(src.stats.e2e_lag_ns));
    }
    if (src.freshness_gauge != nullptr) {
      src.freshness_gauge->set(static_cast<double>(src.stats.e2e_lag_ns));
    }
  }
  if (msg.send_ns != 0) {
    src.stats.last_send_ns = msg.send_ns;
    src.stats.wire_lag_ns = now_ns > msg.send_ns ? now_ns - msg.send_ns : 0;
    if (wire_lag_ns_ != nullptr) wire_lag_ns_->observe(src.stats.wire_lag_ns);
  }
  // The applied epoch changed the network view: invalidate the published
  // generation.  Release-ordered after every state write above so a
  // reader that observes the new version also observes the new state.
  version_.fetch_add(1, std::memory_order_release);
  return Ingest::kApplied;
}

std::vector<CollectorCore::SourceStats> CollectorCore::sources(
    std::uint64_t now_ns) const {
  const IndexPtr idx = index_.load();
  std::vector<SourceStats> out;
  out.reserve(idx->size());
  for (const IndexEntry& e : *idx) {
    std::lock_guard lk(e.src->mu);
    refresh_staleness(*e.src, now_ns);
    out.push_back(copy_stats(*e.src));
  }
  return out;
}

bool CollectorCore::is_current(const NetworkView& v, std::uint64_t now_ns) const {
  // Optional rate limit: a young-enough generation is served as-is even
  // if ingest moved on (bounded, configured staleness for read scaling).
  if (cfg_.min_refresh_interval_ns != 0 && now_ns > v.built_at_ns &&
      now_ns - v.built_at_ns < cfg_.min_refresh_interval_ns) {
    return true;
  }
  if (v.version != version_.load(std::memory_order_acquire)) return false;
  // Same data — but staleness is a function of time: re-evaluate each
  // source's liveness at now_ns against what the generation folded.
  // No source lock taken: last_seen is atomic and the index is
  // copy-on-write (its slot mutex covers only the pointer copy).
  const IndexPtr idx = index_.load();
  if (idx->size() != v.sources.size()) return false;  // new source appeared
  for (std::size_t i = 0; i < idx->size(); ++i) {
    const std::uint64_t seen =
        (*idx)[i].src->last_seen_ns.load(std::memory_order_relaxed);
    if (is_stale(seen, now_ns) != v.sources[i].stale) return false;
  }
  return true;
}

CollectorCore::ViewPtr CollectorCore::view(std::uint64_t now_ns) const {
  ViewPtr cur = view_.load();
  if (is_current(*cur, now_ns)) return cur;
  std::lock_guard bl(build_mu_);
  cur = view_.load();
  if (is_current(*cur, now_ns)) return cur;  // a racing reader built it
  return rebuild(now_ns);
}

CollectorCore::ViewPtr CollectorCore::rebuild(std::uint64_t now_ns) const {
  // Capture the version BEFORE reading any source state: changes applied
  // during the build bump past v0 and invalidate this generation, so a
  // fold can include more than v0 promised but never less.
  const std::uint64_t v0 = version_.load(std::memory_order_acquire);
  const IndexPtr idx = index_.load();

  std::shared_ptr<NetworkView> next;
  std::uint64_t folds = 0;
  std::uint64_t fold_gen = 0;
  bool full = false;
  std::vector<std::uint64_t> fold_ids;
  // Rotation retry: if a source rotates its seed generation between the
  // passes, the pass-2 fold would mix hash generations — abort and redo
  // the build as a full reseeded re-fold (from the accumulators, so any
  // pending deltas already cleared by the aborted pass are harmless).
  // Rotations are epoch-scale events, so this loop retries at most once
  // in practice.
  bool force_full = false;
  for (bool retry = true; retry;) {
    retry = false;

    // Pass 1 (cheap): staleness accounting, this build's liveness
    // decision, and each source's seed generation.  The fold covers the
    // newest generation among the live sources; a live source still on an
    // older generation is excluded (like a stale one) until it rotates.
    std::vector<char> alive_flags(idx->size(), 0);
    std::vector<std::uint64_t> gens(idx->size(), 0);
    {
      std::size_t i = 0;
      for (const IndexEntry& e : *idx) {
        std::lock_guard lk(e.src->mu);
        if (!refresh_staleness(*e.src, now_ns)) alive_flags[i] = 1;
        gens[i] = e.src->stats.seed_gen;
        ++i;
      }
    }
    fold_gen = 0;
    for (std::size_t i = 0; i < idx->size(); ++i) {
      if (alive_flags[i]) fold_gen = std::max(fold_gen, gens[i]);
    }
    std::vector<char> fold_flags(idx->size(), 0);
    fold_ids.clear();
    fold_ids.reserve(idx->size());
    for (std::size_t i = 0; i < idx->size(); ++i) {
      if (alive_flags[i] && gens[i] == fold_gen) {
        fold_flags[i] = 1;
        fold_ids.push_back((*idx)[i].id);
      }
    }

    full = force_full || fold_ids != folded_live_ || fold_gen != folded_gen_;
    if (full) {
      // The folded set changed (quarantine, rejoin, first build, seed
      // rotation): the running fold contains sources or a hash generation
      // it must no longer contain, and sketch merges cannot be
      // subtracted — re-fold every covered source from its full
      // accumulator.  A generation change also reseeds the accumulator:
      // counters only merge between identically hashed sketches.
      if (fold_gen != folded_gen_) {
        *net_acc_ = sketch::UnivMon(cfg_.um_cfg, sched_.seed_for(fold_gen));
      } else {
        net_acc_->clear();
      }
    }

    next = std::make_shared<NetworkView>(cfg_.um_cfg, sched_.seed_for(fold_gen));
    next->sources.reserve(idx->size());
    folds = 0;

    // Pass 2: fold + copy stats under the SAME lock hold, so each folded
    // source's (sketch delta, gen_packets) pair is coherent — the
    // conservation invariant merged.total() == sum(folded gen_packets)
    // holds per generation even under concurrent ingest.  The dirty flag
    // is re-read under the lock: an epoch applied between the passes is
    // folded AND counted.  Liveness sticks to the pass-1 decision — a
    // source rejoining mid-build is excluded from both the fold and the
    // packet sum of this generation (its version bump invalidates the
    // generation immediately anyway).
    for (std::size_t i = 0; i < idx->size(); ++i) {
      Source& src = *(*idx)[i].src;
      std::lock_guard lk(src.mu);
      if (src.stats.seed_gen != gens[i]) {
        // Rotated since pass 1: this source's sketches changed hash
        // generation mid-build.  Restart as a full re-fold.
        retry = true;
        force_full = true;
        break;
      }
      if (fold_flags[i] && (full || src.dirty)) {
        // One merge span per folded source, keyed by its newest applied
        // epoch — the final stage of that epoch's end-to-end trace.
        telemetry::ScopedSpan span(telemetry::Stage::kNetworkMerge,
                                   (*idx)[i].id, src.stats.span.last, tracer_);
        net_acc_->merge(full ? src.acc : src.pending);
        src.pending.clear();
        src.dirty = false;
        ++folds;
      }
      SourceStats s = copy_stats(src);
      s.stale = alive_flags[i] == 0;  // this build's decision, not the current flag
      if (fold_flags[i]) next->packets += s.gen_packets;
      next->sources.push_back(std::move(s));
    }
  }

  next->merged = *net_acc_;
  next->generation = ++generation_seq_;
  next->version = v0;
  next->built_at_ns = now_ns;
  next->seed_gen = fold_gen;
  next->epochs_applied = epochs_applied_.load(std::memory_order_relaxed);
  next->folds = folds;
  next->full_rebuild = full;

  folded_live_ = std::move(fold_ids);
  folded_gen_ = fold_gen;
  folds_total_.fetch_add(folds, std::memory_order_relaxed);
  generations_.fetch_add(1, std::memory_order_relaxed);
  if (full) full_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  if (folds_ctr_ != nullptr) folds_ctr_->inc(folds);
  if (generations_ctr_ != nullptr) generations_ctr_->inc();
  if (full && full_rebuilds_ctr_ != nullptr) full_rebuilds_ctr_->inc();

  // Anomaly surface (DESIGN.md §16), refreshed per generation build: a
  // crafted collision flood concentrates level-0 row mass into a few
  // buckets (pressure way above its benign baseline), a churn storm
  // drives the merged heaps' eviction count.
  if (collision_pressure_gauge_ != nullptr) {
    collision_pressure_gauge_->set(sketch::collision_pressure(next->merged));
  }
  if (merged_heap_evictions_gauge_ != nullptr) {
    merged_heap_evictions_gauge_->set(
        static_cast<double>(next->merged.heap_evictions()));
  }
  if (seed_gen_gauge_ != nullptr) {
    seed_gen_gauge_->set(static_cast<double>(fold_gen));
  }

  ViewPtr published(std::move(next));
  view_.store(published);
  return published;
}

void CollectorCore::attach_telemetry(telemetry::Registry& registry,
                                     const std::string& prefix) {
  messages_applied_ = &registry.counter(prefix + "_messages_applied_total",
                                        "epoch messages merged into a source");
  epochs_applied_ctr_ = &registry.counter(prefix + "_epochs_applied_total",
                                          "epochs merged (coalesced count as many)");
  duplicates_ = &registry.counter(prefix + "_duplicate_messages_total",
                                  "redelivered messages dropped idempotently");
  overlap_dropped_ = &registry.counter(
      prefix + "_overlap_dropped_total",
      "messages straddling the applied boundary, dropped to avoid double-count");
  gap_epochs_ = &registry.counter(prefix + "_gap_epochs_total",
                                  "epochs lost to sequence gaps");
  coalesced_epochs_ = &registry.counter(
      prefix + "_coalesced_epochs_total", "epochs that arrived pre-merged");
  quarantines_ = &registry.counter(prefix + "_quarantine_transitions_total",
                                   "live -> stale source transitions");
  rejoins_ = &registry.counter(prefix + "_rejoin_transitions_total",
                               "stale -> live source transitions");
  gen_rotations_ = &registry.counter(
      prefix + "_generation_rotations_total",
      "per-source replica resets onto a newer seed generation");
  stale_gen_dropped_ = &registry.counter(
      prefix + "_stale_generation_dropped_total",
      "messages dropped for carrying an already-retired seed generation");
  folds_ctr_ = &registry.counter(
      prefix + "_source_folds_total",
      "per-source folds into the network view (dirty-only when incremental)");
  full_rebuilds_ctr_ = &registry.counter(
      prefix + "_full_rebuilds_total",
      "generation builds that re-folded every live source (live set changed)");
  generations_ctr_ = &registry.counter(prefix + "_generations_total",
                                       "network-view generations published");
  sources_live_ = &registry.gauge(prefix + "_sources_live", "sources in the merged view");
  sources_stale_ = &registry.gauge(prefix + "_sources_stale",
                                   "sources quarantined for staleness");
  merged_packets_gauge_ = &registry.gauge(prefix + "_merged_packets",
                                          "packet total over live sources");
  collision_pressure_gauge_ = &registry.gauge(
      prefix + "_collision_pressure",
      "level-0 residual row concentration of the merged view (crafted "
      "collision floods spike this far above the benign baseline)");
  merged_heap_evictions_gauge_ = &registry.gauge(
      prefix + "_merged_heap_evictions",
      "cumulative heavy-hitter heap evictions in the merged view (churn "
      "storms drive the velocity of this)");
  seed_gen_gauge_ = &registry.gauge(prefix + "_seed_generation",
                                    "seed generation the merged view folds");
  e2e_lag_ns_ = &registry.histogram(
      prefix + "_e2e_lag_ns",
      "epoch close at source -> applied here, per applied message");
  wire_lag_ns_ = &registry.histogram(
      prefix + "_wire_lag_ns", "send stamp -> applied here, per applied message");
  registry_ = &registry;
  prefix_ = prefix;
}

void CollectorCore::publish_telemetry(std::uint64_t now_ns) {
  const IndexPtr idx = index_.load();
  std::int64_t packets = 0;
  double live = 0, stale = 0;
  for (const IndexEntry& e : *idx) {
    Source& src = *e.src;
    std::lock_guard lk(src.mu);
    if (refresh_staleness(src, now_ns)) {
      stale += 1;
    } else {
      live += 1;
      packets += src.stats.packets;
    }
    // Freshness keeps growing while a source is silent — the gauge makes
    // the staleness-quarantine decision visible as it approaches.
    if (src.freshness_gauge != nullptr && src.stats.last_epoch_close_ns != 0 &&
        now_ns > src.stats.last_epoch_close_ns) {
      src.freshness_gauge->set(
          static_cast<double>(now_ns - src.stats.last_epoch_close_ns));
    }
  }
  if (sources_live_ != nullptr) sources_live_->set(live);
  if (sources_stale_ != nullptr) sources_stale_->set(stale);
  if (merged_packets_gauge_ != nullptr) {
    merged_packets_gauge_->set(static_cast<double>(packets));
  }
}

// ---------------------------------------------------------------------------
// CollectorServer

CollectorServer::CollectorServer(const CollectorConfig& cfg, const Endpoint& listen_ep)
    : owned_core_(std::make_unique<CollectorCore>(cfg)), listen_ep_(listen_ep) {
  core_ = owned_core_.get();
}

CollectorServer::CollectorServer(CollectorCore& core, const Endpoint& listen_ep)
    : core_(&core), listen_ep_(listen_ep) {}

CollectorServer::~CollectorServer() { stop(); }

bool CollectorServer::start() {
  if (started_) return true;
  if (!listener_.open(listen_ep_)) return false;
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void CollectorServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  reap_connections(/*join_all=*/true);  // handlers exit on stop_
  started_ = false;
}

std::size_t CollectorServer::tracked_connections() const {
  std::lock_guard lk(conn_mu_);
  return conns_.size();
}

void CollectorServer::reap_connections(bool join_all) {
  // Move joinable threads out of the registry first so the (possibly
  // blocking) joins run without conn_mu_ held.
  std::vector<std::thread> finished;
  {
    std::lock_guard lk(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

Endpoint CollectorServer::endpoint() const {
  Endpoint ep = listen_ep_;
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    ep.port = listener_.bound_port();
  }
  return ep;
}

void CollectorServer::attach_telemetry(telemetry::Registry& registry,
                                       const std::string& prefix) {
  core_->attach_telemetry(registry, prefix);
  connections_ = &registry.counter(prefix + "_connections_total",
                                   "monitor connections accepted");
  frames_rejected_ = &registry.counter(
      prefix + "_frames_rejected_total",
      "undecodable frames/messages (each poisons its connection)");
  injected_drops_ = &registry.counter(prefix + "_injected_drops_total",
                                      "fault-injected frame drops (no ack sent)");
  injected_conn_kills_ = &registry.counter(prefix + "_injected_conn_kills_total",
                                           "fault-injected connection kills");
  acks_sent_ = &registry.counter(prefix + "_acks_sent_total", "acks written back");
  recover_requests_ = &registry.counter(prefix + "_recover_requests_total",
                                        "wire-v3 recover requests received");
  recover_served_ = &registry.counter(
      prefix + "_recover_served_total",
      "recover responses written back (found or not)");
  injected_recover_drops_ =
      &registry.counter(prefix + "_injected_recover_drops_total",
                        "fault-injected recover-request drops (no response)");
  active_connections_ = &registry.gauge(prefix + "_active_connections",
                                        "currently connected monitors");
}

std::uint64_t CollectorServer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CollectorServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Reap before (possibly) blocking in accept: handler threads of
    // disconnected monitors are joined here, so a flaky link that
    // reconnects forever holds a bounded number of threads.
    reap_connections(/*join_all=*/false);
    Socket sock = listener_.accept_conn(100);
    if (!sock.valid()) continue;
    if (connections_ != nullptr) connections_->inc();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lk(conn_mu_);
    conns_.push_back(Conn{
        std::thread([this, s = std::move(sock), done]() mutable {
          handle_connection(std::move(s));
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void CollectorServer::handle_connection(Socket sock) {
  active_conns_.fetch_add(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
  FrameAssembler assembler(core_->config().max_frame_bytes);
  std::uint8_t buf[64 * 1024];
  std::vector<std::uint8_t> frame;
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_relaxed)) {
    std::size_t got = 0;
    switch (sock.recv_some(buf, sizeof buf, 200, &got)) {
      case Socket::RecvResult::kData:
        assembler.feed(std::span<const std::uint8_t>(buf, got));
        break;
      case Socket::RecvResult::kTimeout:
        core_->publish_telemetry(now_ns());
        continue;
      case Socket::RecvResult::kClosed:
      case Socket::RecvResult::kError:
        alive = false;
        continue;
    }
    try {
      while (alive && assembler.next_frame(frame)) {
        const std::uint32_t magic = peek_message_magic(frame);
        if (magic == kRecoverReqMagic) {
          // Wire v3 rejoin handshake: a restarting monitor asks for its
          // last-applied replica (DESIGN.md §15).
          const RecoverRequest req = decode_recover_request(frame);
          if (recover_requests_ != nullptr) recover_requests_->inc();
          const auto action =
              fault::point(fault::Site::kRecoverServe,
                           static_cast<std::uint32_t>(req.source_id));
          if (action == fault::Action::kReject) {
            // Simulated recover-request loss: no response, the monitor's
            // recovery client times out and retries.
            if (injected_recover_drops_ != nullptr) injected_recover_drops_->inc();
            continue;
          }
          if (action == fault::Action::kDie) {
            if (injected_conn_kills_ != nullptr) injected_conn_kills_->inc();
            alive = false;
            break;
          }
          const RecoverResponse resp = core_->recovery_snapshot(req.source_id);
          if (!sock.send_all(encode_recover_response(resp), 2000)) {
            alive = false;
            break;
          }
          if (recover_served_ != nullptr) recover_served_->inc();
          continue;
        }
        if (magic != kEpochMsgMagic) {
          // Monitors only send epoch and recover messages; anything else
          // is garbage the CRC happened to bless.  Poison the connection.
          if (frames_rejected_ != nullptr) frames_rejected_->inc();
          alive = false;
          break;
        }
        const EpochMessage msg = decode_epoch(frame);

        std::uint64_t param = 0;
        const auto action = fault::point(fault::Site::kCollectorIngest,
                                         static_cast<std::uint32_t>(msg.source_id),
                                         &param);
        if (action == fault::Action::kReject) {
          // Simulated receive-side loss: no ack, the exporter must retry.
          if (injected_drops_ != nullptr) injected_drops_->inc();
          continue;
        }
        if (action == fault::Action::kDie) {
          if (injected_conn_kills_ != nullptr) injected_conn_kills_->inc();
          alive = false;  // abrupt close mid-stream
          break;
        }
        if (action == fault::Action::kStall) {
          fault::stall_ns(param, [this] {
            return stop_.load(std::memory_order_relaxed);
          });
        }

        AckMessage ack;
        ack.source_id = msg.source_id;
        ack.seq_last = msg.seq_last;
        switch (core_->ingest(msg, now_ns())) {
          case CollectorCore::Ingest::kApplied:
            ack.status = AckStatus::kApplied;
            break;
          case CollectorCore::Ingest::kDuplicate:
            ack.status = AckStatus::kDuplicate;
            break;
          case CollectorCore::Ingest::kOverlapDropped:
            ack.status = AckStatus::kOverlapDropped;
            break;
        }
        if (!sock.send_all(encode_ack(ack), 2000)) {
          alive = false;
          break;
        }
        if (acks_sent_ != nullptr) acks_sent_->inc();
      }
    } catch (const std::exception&) {
      // Undecodable frame or corrupt snapshot: the stream cannot resync.
      if (frames_rejected_ != nullptr) frames_rejected_->inc();
      alive = false;
    }
    core_->publish_telemetry(now_ns());
  }
  sock.close();
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
}

}  // namespace nitro::xport
