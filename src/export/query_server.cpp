#include "export/query_server.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/flow_key.hpp"
#include "telemetry/export.hpp"

namespace nitro::xport {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) {
    if (static_cast<std::size_t>(n) < sizeof buf) {
      out.append(buf, static_cast<std::size_t>(n));
    } else {
      // Fragment outgrew the stack buffer: render it straight into the
      // string — truncating would emit malformed JSON.
      const std::size_t old = out.size();
      out.resize(old + static_cast<std::size_t>(n) + 1);
      std::vsnprintf(&out[old], static_cast<std::size_t>(n) + 1, fmt, ap2);
      out.resize(old + static_cast<std::size_t>(n));
    }
  }
  va_end(ap2);
}

/// "a.b.c.d" -> host-order u32 (the FlowKey convention used by
/// to_string).  False on anything else.
bool parse_ip(const std::string& s, std::uint32_t& out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return false;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = (a << 24) | (b << 16) | (c << 8) | d;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Split "/path?k=v&k2=v2" (no percent-decoding: every parameter this API
/// takes is an IP, a number or a fraction).
void split_target(const std::string& target, std::string& path,
                  std::unordered_map<std::string, std::string>& params) {
  const auto q = target.find('?');
  path = target.substr(0, q);
  if (q == std::string::npos) return;
  std::size_t pos = q + 1;
  while (pos <= target.size()) {
    auto amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    const auto eq = pair.find('=');
    if (eq != std::string::npos) {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      params[pair] = "";
    }
    pos = amp + 1;
  }
}

std::string param(const std::unordered_map<std::string, std::string>& params,
                  const char* key, const std::string& fallback = "") {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

const char* status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

std::string http_response(int code, const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  appendf(out, "HTTP/1.1 %d %s\r\n", code, status_text(code));
  out += "Content-Type: application/json\r\n";
  appendf(out, "Content-Length: %zu\r\n", body.size());
  out += "Connection: keep-alive\r\n\r\n";
  out += body;
  return out;
}

std::string error_body(const char* message) {
  std::string body = "{\"error\":\"";
  body += message;
  body += "\"}\n";
  return body;
}

void append_flow_fields(std::string& out, const FlowKey& k) {
  appendf(out, "\"flow\":\"%s\",\"src\":\"%u.%u.%u.%u\",\"dst\":\"%u.%u.%u.%u\","
               "\"sport\":%u,\"dport\":%u,\"proto\":%u",
          nitro::to_string(k).c_str(), (k.src_ip >> 24) & 0xff,
          (k.src_ip >> 16) & 0xff, (k.src_ip >> 8) & 0xff, k.src_ip & 0xff,
          (k.dst_ip >> 24) & 0xff, (k.dst_ip >> 16) & 0xff,
          (k.dst_ip >> 8) & 0xff, k.dst_ip & 0xff, k.src_port, k.dst_port,
          k.proto);
}

/// Heap entries of every level-0 tracked flow with estimates re-read from
/// the generation's merged counters, sorted by estimate descending.
std::vector<sketch::TopKHeap::Entry> ranked_hitters(const sketch::UnivMon& merged,
                                                    std::int64_t threshold) {
  auto rows = merged.heavy_hitters(threshold);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.estimate > b.estimate; });
  return rows;
}

}  // namespace

QueryServer::QueryServer(CollectorCore& core, const Endpoint& listen_ep,
                         const QueryServerConfig& cfg)
    : core_(core), cfg_(cfg), listen_ep_(listen_ep) {}

QueryServer::~QueryServer() { stop(); }

bool QueryServer::start() {
  if (started_) return true;
  if (!listener_.open(listen_ep_)) return false;
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void QueryServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  reap_connections(/*join_all=*/true);
  started_ = false;
}

Endpoint QueryServer::endpoint() const {
  Endpoint ep = listen_ep_;
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    ep.port = listener_.bound_port();
  }
  return ep;
}

void QueryServer::attach_telemetry(telemetry::Registry& registry,
                                   const std::string& prefix) {
  requests_ = &registry.counter(prefix + "_requests_total", "HTTP requests served");
  cache_hits_ = &registry.counter(prefix + "_cache_hits_total",
                                  "responses served from the generation cache");
  cache_misses_ = &registry.counter(prefix + "_cache_misses_total",
                                    "responses rendered fresh");
  bad_requests_ = &registry.counter(prefix + "_bad_requests_total",
                                    "4xx/5xx responses");
  connections_ = &registry.counter(prefix + "_connections_total",
                                   "query connections accepted");
  latency_ns_ = &registry.histogram(prefix + "_latency_ns",
                                    "request receipt -> response rendered");
  active_connections_ = &registry.gauge(prefix + "_active_connections",
                                        "currently connected query clients");
}

std::size_t QueryServer::tracked_connections() const {
  std::lock_guard lk(conn_mu_);
  return conns_.size();
}

void QueryServer::reap_connections(bool join_all) {
  std::vector<std::thread> finished;
  {
    std::lock_guard lk(conn_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t QueryServer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void QueryServer::remember(const CollectorCore::ViewPtr& view) {
  std::lock_guard lk(history_mu_);
  // Handlers race: one that resolved an older generation may land here
  // after a newer one already did.  Insert in newest-first position and
  // dedup by generation, so /change's front-first "previous generation"
  // scan stays correct and duplicates never evict retained generations.
  auto it = history_.begin();
  while (it != history_.end() && (*it)->generation > view->generation) ++it;
  if (it != history_.end() && (*it)->generation == view->generation) return;
  history_.insert(it, view);
  while (history_.size() > cfg_.history_generations) history_.pop_back();
}

CollectorCore::ViewPtr QueryServer::recall(std::uint64_t generation) const {
  std::lock_guard lk(history_mu_);
  for (const auto& v : history_) {
    if (v->generation == generation) return v;
  }
  return nullptr;
}

int QueryServer::render(const std::string& path,
                        const std::unordered_map<std::string, std::string>& params,
                        const CollectorCore::ViewPtr& view, std::string& body) {
  const sketch::UnivMon& merged = view->merged;

  if (path == "/view") {
    appendf(body,
            "{\"generation\":%" PRIu64 ",\"built_at_ns\":%" PRIu64
            ",\"packets\":%lld,\"epochs_applied\":%" PRIu64
            ",\"folds\":%" PRIu64 ",\"full_rebuild\":%s",
            view->generation, view->built_at_ns,
            static_cast<long long>(view->packets), view->epochs_applied,
            view->folds, view->full_rebuild ? "true" : "false");
    appendf(body, ",\"entropy_bits\":%.6f,\"distinct_flows\":%.1f,\"l2\":%.1f",
            merged.estimate_entropy(), merged.estimate_distinct(),
            merged.estimate_l2());
    body += ",\"sources\":[";
    bool first = true;
    for (const auto& s : view->sources) {
      if (!first) body += ",";
      first = false;
      appendf(body,
              "{\"id\":%" PRIu64 ",\"packets\":%lld,\"epochs_applied\":%" PRIu64
              ",\"span\":[%" PRIu64 ",%" PRIu64
              "],\"stale\":%s,\"rejoins\":%" PRIu64 ",\"gap_epochs\":%" PRIu64
              ",\"e2e_lag_ns\":%" PRIu64 "}",
              s.source_id, static_cast<long long>(s.packets), s.epochs_applied,
              s.span.first, s.span.last, s.stale ? "true" : "false", s.rejoins,
              s.gap_epochs, s.e2e_lag_ns);
    }
    body += "]}\n";
    return 200;
  }

  if (path == "/heavy-hitters") {
    double frac = cfg_.default_hh_threshold;
    const std::string t = param(params, "threshold");
    if (!t.empty()) frac = std::atof(t.c_str());
    int top = cfg_.default_top;
    const std::string n = param(params, "top");
    if (!n.empty()) top = std::atoi(n.c_str());
    const auto threshold = static_cast<std::int64_t>(
        frac * static_cast<double>(view->packets));
    const auto rows = ranked_hitters(merged, threshold);
    appendf(body,
            "{\"generation\":%" PRIu64 ",\"packets\":%lld,\"threshold\":%lld,"
            "\"flows\":[",
            view->generation, static_cast<long long>(view->packets),
            static_cast<long long>(threshold));
    int shown = 0;
    for (const auto& h : rows) {
      if (shown >= top) break;
      if (shown != 0) body += ",";
      body += "{";
      append_flow_fields(body, h.key);
      const double share =
          view->packets > 0
              ? static_cast<double>(h.estimate) / static_cast<double>(view->packets)
              : 0.0;
      appendf(body, ",\"estimate\":%lld,\"fraction\":%.8f}",
              static_cast<long long>(h.estimate), share);
      ++shown;
    }
    body += "]}\n";
    return 200;
  }

  if (path == "/flow") {
    FlowKey key;
    std::uint64_t sport = 0, dport = 0, proto = 0;
    if (!parse_ip(param(params, "src"), key.src_ip) ||
        !parse_ip(param(params, "dst"), key.dst_ip) ||
        !parse_u64(param(params, "sport", "0"), sport) || sport > 0xffff ||
        !parse_u64(param(params, "dport", "0"), dport) || dport > 0xffff ||
        !parse_u64(param(params, "proto", "0"), proto) || proto > 0xff) {
      body = error_body("want src=a.b.c.d&dst=a.b.c.d[&sport=N&dport=N&proto=N]");
      return 400;
    }
    key.src_port = static_cast<std::uint16_t>(sport);
    key.dst_port = static_cast<std::uint16_t>(dport);
    key.proto = static_cast<std::uint8_t>(proto);
    const std::int64_t estimate = merged.query(key);
    appendf(body, "{\"generation\":%" PRIu64 ",", view->generation);
    append_flow_fields(body, key);
    const double share =
        view->packets > 0
            ? static_cast<double>(estimate) / static_cast<double>(view->packets)
            : 0.0;
    appendf(body, ",\"estimate\":%lld,\"fraction\":%.8f}\n",
            static_cast<long long>(estimate), share);
    return 200;
  }

  if (path == "/entropy") {
    appendf(body,
            "{\"generation\":%" PRIu64 ",\"entropy_bits\":%.6f,"
            "\"distinct_flows\":%.1f,\"total\":%lld}\n",
            view->generation, merged.estimate_entropy(),
            merged.estimate_distinct(), static_cast<long long>(merged.total()));
    return 200;
  }

  if (path == "/change") {
    std::uint64_t from = 0;
    const std::string f = param(params, "from");
    if (f.empty()) {
      // Default: the previous retained generation, if any.
      std::lock_guard lk(history_mu_);
      for (const auto& v : history_) {
        if (v->generation < view->generation) {
          from = v->generation;
          break;
        }
      }
      if (from == 0) {
        body = error_body("no earlier generation retained yet; pass ?from=G");
        return 404;
      }
    } else if (!parse_u64(f, from)) {
      body = error_body("bad from= generation");
      return 400;
    }
    const CollectorCore::ViewPtr old = recall(from);
    if (old == nullptr || old->generation >= view->generation) {
      body = error_body("generation not retained (history is bounded)");
      return 404;
    }
    int top = cfg_.default_top;
    const std::string n = param(params, "top");
    if (!n.empty()) top = std::atoi(n.c_str());
    double frac = 0.0;
    const std::string t = param(params, "threshold");
    if (!t.empty()) frac = std::atof(t.c_str());
    const std::int64_t packets_delta = view->packets - old->packets;
    const auto min_delta = static_cast<std::int64_t>(
        frac * static_cast<double>(packets_delta > 0 ? packets_delta : 1));

    // Candidates: every flow tracked by either generation's level-0 heap.
    struct Change {
      FlowKey key;
      std::int64_t before, after, delta;
    };
    std::vector<Change> changes;
    std::unordered_map<FlowKey, bool> seen;
    auto consider = [&](const FlowKey& key) {
      if (!seen.emplace(key, true).second) return;
      const std::int64_t after = merged.query(key);
      const std::int64_t before = old->merged.query(key);
      const std::int64_t delta = after - before;
      if (delta == 0) return;
      if (delta < min_delta && -delta < min_delta) return;
      changes.push_back({key, before, after, delta});
    };
    for (const auto& h : merged.heavy_hitters(1)) consider(h.key);
    for (const auto& h : old->merged.heavy_hitters(1)) consider(h.key);
    std::sort(changes.begin(), changes.end(), [](const Change& a, const Change& b) {
      return std::llabs(a.delta) > std::llabs(b.delta);
    });

    appendf(body,
            "{\"from\":%" PRIu64 ",\"to\":%" PRIu64
            ",\"packets_delta\":%lld,\"min_delta\":%lld,\"changes\":[",
            from, view->generation, static_cast<long long>(packets_delta),
            static_cast<long long>(min_delta));
    int shown = 0;
    for (const auto& c : changes) {
      if (shown >= top) break;
      if (shown != 0) body += ",";
      body += "{";
      append_flow_fields(body, c.key);
      appendf(body, ",\"before\":%lld,\"after\":%lld,\"delta\":%lld}",
              static_cast<long long>(c.before), static_cast<long long>(c.after),
              static_cast<long long>(c.delta));
      ++shown;
    }
    body += "]}\n";
    return 200;
  }

  return 0;  // not a view endpoint
}

std::string QueryServer::handle(const std::string& method,
                                const std::string& target,
                                std::uint64_t now_ns_val) {
  const std::uint64_t t0 = now_ns();
  if (requests_ != nullptr) requests_->inc();
  auto finish = [&](int code, std::string body) {
    if (code >= 400 && bad_requests_ != nullptr) bad_requests_->inc();
    if (latency_ns_ != nullptr) latency_ns_->observe(now_ns() - t0);
    return http_response(code, std::move(body));
  };

  if (method != "GET") {
    return finish(405, error_body("GET only"));
  }
  std::string path;
  std::unordered_map<std::string, std::string> params;
  split_target(target, path, params);

  if (path == "/healthz") {
    return finish(200, "{\"ok\":true}\n");
  }
  if (path == "/stats") {
    if (stats_registry_ == nullptr) {
      return finish(404, error_body("no telemetry registry attached"));
    }
    return finish(200, telemetry::to_json(*stats_registry_));
  }

  // View endpoints: resolve a generation (lock-free when current), then
  // serve from the per-generation cache or render fresh.
  const CollectorCore::ViewPtr view = core_.view(now_ns_val);
  remember(view);
  {
    std::lock_guard lk(cache_mu_);
    if (cache_generation_ != view->generation) {
      cache_.clear();
      cache_generation_ = view->generation;
    } else {
      const auto it = cache_.find(target);
      if (it != cache_.end()) {
        if (cache_hits_ != nullptr) cache_hits_->inc();
        return finish(200, it->second);
      }
    }
  }
  if (cache_misses_ != nullptr) cache_misses_->inc();

  std::string body;  // rendered with no lock held
  const int code = render(path, params, view, body);
  if (code == 0) {
    return finish(404, error_body("unknown endpoint"));
  }
  if (code == 200) {
    std::lock_guard lk(cache_mu_);
    if (cache_generation_ == view->generation &&
        cache_.size() < cfg_.max_cached_responses) {
      cache_.emplace(target, body);
    }
  }
  return finish(code, std::move(body));
}

void QueryServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_connections(/*join_all=*/false);
    Socket sock = listener_.accept_conn(100);
    if (!sock.valid()) continue;
    if (connections_ != nullptr) connections_->inc();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lk(conn_mu_);
    conns_.push_back(Conn{
        std::thread([this, s = std::move(sock), done]() mutable {
          handle_connection(std::move(s));
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void QueryServer::handle_connection(Socket sock) {
  active_conns_.fetch_add(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
  std::string buf;
  std::uint8_t chunk[8 * 1024];
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_relaxed)) {
    std::size_t got = 0;
    switch (sock.recv_some(chunk, sizeof chunk, 200, &got)) {
      case Socket::RecvResult::kData:
        buf.append(reinterpret_cast<const char*>(chunk), got);
        break;
      case Socket::RecvResult::kTimeout:
        continue;  // idle keep-alive connection
      case Socket::RecvResult::kClosed:
      case Socket::RecvResult::kError:
        alive = false;
        continue;
    }
    // Serve every complete request head in the buffer (pipelining-safe;
    // GET has no body to skip).
    for (;;) {
      const auto head_end = buf.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        if (buf.size() > cfg_.max_request_bytes) {
          static constexpr std::string_view kTooBig =
              "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
              "Connection: close\r\n\r\n";
          (void)sock.send_all(
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(kTooBig.data()),
                  kTooBig.size()),
              cfg_.io_timeout_ms);
          alive = false;
        }
        break;
      }
      const std::string head = buf.substr(0, head_end);
      buf.erase(0, head_end + 4);

      const auto line_end = head.find("\r\n");
      const std::string request_line =
          line_end == std::string::npos ? head : head.substr(0, line_end);
      const auto sp1 = request_line.find(' ');
      const auto sp2 =
          sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        alive = false;
        break;
      }
      const std::string method = request_line.substr(0, sp1);
      const std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

      // Case-insensitive "connection: close" scan of the header block.
      std::string lowered = head;
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      const bool close_requested =
          lowered.find("connection: close") != std::string::npos ||
          request_line.find("HTTP/1.0") != std::string::npos;

      const std::string response = handle(method, target, now_ns());
      if (!sock.send_all(
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(response.data()),
                  response.size()),
              cfg_.io_timeout_ms)) {
        alive = false;
        break;
      }
      if (close_requested) {
        alive = false;
        break;
      }
    }
  }
  sock.close();
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  if (active_connections_ != nullptr) {
    active_connections_->set(static_cast<double>(active_conns_.load()));
  }
}

}  // namespace nitro::xport
