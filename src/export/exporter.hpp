// Resilient epoch exporter (DESIGN.md §11): the monitor side of the
// network-wide aggregation pipeline.
//
// Each closed measurement epoch is queued as a sequence-numbered wire
// message and pushed to the collector over TCP or a Unix socket.  The
// design goal is that a misbehaving peer can never hurt the data plane:
//
//   * every socket operation is bounded by a timeout (transport.hpp);
//   * failures retry with exponential backoff + jitter, capped at a
//     ceiling, so a dead collector costs a bounded, decorrelated trickle
//     of connect attempts;
//   * a circuit breaker opens after `breaker_threshold` consecutive
//     failures and stops even attempting until a cooldown passes
//     (half-open probe, then closed on success / reopen on failure);
//   * the send queue is bounded: under backlog the two oldest queued
//     epochs are *coalesced* — their sketches merged (lossless for
//     counters, Theorem 1 holds across merges), sequence range and epoch
//     span widened — instead of silently dropping an epoch.  Only entries
//     whose bytes never touched the wire are coalescible: a message that
//     was sent at least once may already be applied on the collector, and
//     widening it would make the retry straddle the collector's applied
//     boundary (dropped whole as an overlap — data loss).  The sketch
//     merge itself runs with the queue lock released so the epoch loop
//     and the sender never stall behind it;
//   * an epoch leaves the queue only when the collector acknowledged it,
//     giving at-least-once delivery; the collector dedupes by sequence
//     range, so redelivery never double-counts.  An overlap-dropped ack
//     (which a correct exporter can never provoke, see above) is treated
//     as a hard delivery failure, never as success.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/epoch_span.hpp"
#include "core/seed_schedule.hpp"
#include "export/transport.hpp"
#include "export/wire.hpp"
#include "sketch/univmon.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::xport {

/// Exponential backoff with jitter.  `attempt` is 1-based; the delay
/// doubles per attempt from `base_ns`, is capped at `max_ns`, and the
/// returned value is drawn uniformly from [d/2, d] so a fleet of monitors
/// that failed together does not retry in lockstep.  Never exceeds
/// `max_ns` — the ceiling tests pin this.
std::uint64_t backoff_delay_ns(std::uint32_t attempt, std::uint64_t base_ns,
                               std::uint64_t max_ns, SplitMix64& rng);

/// Three-state circuit breaker, clock injected for testability.  Used
/// single-threaded from the sender loop.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(std::uint32_t threshold, std::uint64_t cooldown_ns)
      : threshold_(threshold == 0 ? 1 : threshold), cooldown_ns_(cooldown_ns) {}

  /// May this attempt proceed?  Open -> HalfOpen once the cooldown has
  /// elapsed (the single probe); Open before that refuses.
  bool allow_attempt(std::uint64_t now_ns) noexcept {
    if (state_ == State::kClosed || state_ == State::kHalfOpen) return true;
    if (now_ns >= open_until_ns_) {
      state_ = State::kHalfOpen;
      return true;
    }
    return false;
  }

  void record_success() noexcept {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
  }

  /// A HalfOpen probe failure reopens immediately; in Closed the breaker
  /// opens after `threshold` consecutive failures.
  void record_failure(std::uint64_t now_ns) noexcept {
    ++consecutive_failures_;
    if (state_ == State::kHalfOpen || consecutive_failures_ >= threshold_) {
      state_ = State::kOpen;
      open_until_ns_ = now_ns + cooldown_ns_;
      ++opens_;
    }
  }

  State state() const noexcept { return state_; }
  std::uint64_t opens() const noexcept { return opens_; }
  std::uint32_t consecutive_failures() const noexcept { return consecutive_failures_; }
  std::uint64_t open_until_ns() const noexcept { return open_until_ns_; }

 private:
  std::uint32_t threshold_;
  std::uint64_t cooldown_ns_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t open_until_ns_ = 0;
  std::uint64_t opens_ = 0;
};

/// Merges the sealed snapshots of two adjacent queued epochs into one
/// (older first).  Supplied by the integration because only it knows the
/// sketch type behind the snapshot bytes.  `seed_gen` is the seed
/// generation both snapshots were built under (the exporter never merges
/// across generations), so a rotation-aware coalescer can derive the
/// matching hash seed for its merge replicas.
using Coalescer = std::function<std::vector<std::uint8_t>(
    std::span<const std::uint8_t> older, std::span<const std::uint8_t> newer,
    std::uint64_t seed_gen)>;

/// Coalescer for UnivMon snapshots (the measurement daemon's export
/// format): load both into identically seeded replicas, merge counters +
/// heaps, re-snapshot.  Lossless for counters.  The fixed-seed overload
/// ignores the generation (correct when rotation is off); the
/// schedule-aware overload seeds its replicas per generation so heap
/// re-estimates during the merge use the right hash functions.
Coalescer univmon_coalescer(const sketch::UnivMonConfig& cfg, std::uint64_t seed);
Coalescer univmon_coalescer(const sketch::UnivMonConfig& cfg,
                            const core::SeedSchedule& sched);

struct ExporterConfig {
  Endpoint endpoint;
  std::uint64_t source_id = 1;
  int connect_timeout_ms = 1000;
  int io_timeout_ms = 2000;    // whole-frame send / single recv slice cap
  int ack_timeout_ms = 3000;   // send -> ack deadline
  std::uint64_t backoff_base_ns = 2'000'000;     // 2 ms
  std::uint64_t backoff_max_ns = 500'000'000;    // 500 ms ceiling
  std::uint32_t breaker_threshold = 8;           // consecutive failures
  std::uint64_t breaker_cooldown_ns = 1'000'000'000;  // 1 s
  std::size_t queue_capacity = 8;                // >= 2; then coalescing
  std::uint64_t jitter_seed = 0x5eedf00dULL;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class EpochExporter {
 public:
  /// Does not start the sender; call start() after attach_telemetry().
  EpochExporter(const ExporterConfig& cfg, Coalescer coalescer);
  ~EpochExporter();
  EpochExporter(const EpochExporter&) = delete;
  EpochExporter& operator=(const EpochExporter&) = delete;

  /// Bind instruments under `prefix` (e.g. "nitro_export").  Call before
  /// start(); the sender thread reads the pointers unsynchronized.
  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  void start();
  void stop();  // stops the sender; queued-but-unsent epochs stay queued

  /// Queue one closed epoch (called from the epoch loop; never blocks on
  /// the network).  If the queue is at capacity the two oldest never-sent
  /// entries are coalesced first — lossless, wider span; the merge runs
  /// outside the queue lock so the sender keeps draining meanwhile.
  /// `epoch_close_ns` (steady clock, 0 = unknown) rides the v2 wire so the
  /// collector can compute end-to-end freshness; coalescing keeps the
  /// newest covered epoch's close time.  `seed_gen` is the snapshot's seed
  /// generation (v4 wire; 0 when rotation is off) — only entries of the
  /// same generation are ever coalesced, since cross-generation sketches
  /// do not share hash functions.
  void publish(core::EpochSpan span, std::int64_t packets,
               std::vector<std::uint8_t> snapshot,
               std::uint64_t epoch_close_ns = 0,
               std::uint64_t seed_gen = 0);

  /// Block until every queued epoch is acked or `timeout_ms` passes.
  bool flush(int timeout_ms);

  /// Seed the next sequence number (recovery rejoin, DESIGN.md §15): a
  /// restarted monitor resumes at the collector's last applied seq + 1 so
  /// its re-exports stay contiguous and are never double-counted.  Call
  /// before the first publish(); the queue must be empty.
  void set_next_seq(std::uint64_t seq);

  std::size_t queue_depth() const;
  CircuitBreaker::State breaker_state() const;
  std::uint64_t epochs_acked() const;

  /// Copies of the queued wire messages, oldest first (tests inspect
  /// coalescing results without a live collector).
  std::vector<EpochMessage> pending_messages() const;

 private:
  struct Pending {
    EpochMessage msg;
    std::uint64_t enqueue_ns = 0;
    bool in_flight = false;
    // Sticky: any byte of this message may have reached the collector.
    // Such an entry is never coalesced — a retried wider message could
    // straddle the collector's applied boundary and be dropped whole.
    bool ever_sent = false;
  };

  void run();
  /// Mutates msg only to stamp send_ns at the moment of this attempt.
  bool attempt_delivery(EpochMessage& msg);
  bool await_ack(std::uint64_t want_seq_last);
  /// Merge the two oldest coalescible entries; `lk` (held on entry and
  /// exit) is released around the sketch merge.  True iff the queue
  /// shrank by one.
  bool coalesce_backlog(std::unique_lock<std::mutex>& lk);
  /// Sleep up to `ns`, waking early only on stop().
  void interruptible_sleep_ns(std::uint64_t ns);
  static std::uint64_t now_ns() noexcept;

  ExporterConfig cfg_;
  Coalescer coalescer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // sender wakeups (publish/stop)
  std::condition_variable drained_;  // flush waiters
  std::deque<Pending> queue_;
  std::uint64_t next_seq_ = 1;
  bool stop_ = false;
  bool started_ = false;
  bool coalescing_ = false;  // a publisher is merging outside the lock

  std::thread sender_;
  Socket sock_;
  FrameAssembler assembler_;
  CircuitBreaker breaker_;
  mutable std::mutex breaker_mu_;  // state read from other threads

  std::uint64_t acked_epochs_ = 0;

  // Telemetry (null when not attached; sender-side writes only).
  telemetry::Counter* published_ = nullptr;
  telemetry::Counter* acked_ = nullptr;
  telemetry::Counter* sent_frames_ = nullptr;
  telemetry::Counter* coalesce_merges_ = nullptr;
  telemetry::Counter* coalesced_epochs_ = nullptr;
  telemetry::Counter* coalesce_failures_ = nullptr;
  telemetry::Counter* overlap_nacks_ = nullptr;
  telemetry::Counter* send_failures_ = nullptr;
  telemetry::Counter* connect_failures_ = nullptr;
  telemetry::Counter* reconnects_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* ack_timeouts_ = nullptr;
  telemetry::Counter* breaker_opens_ = nullptr;
  telemetry::Counter* injected_send_faults_ = nullptr;
  telemetry::Counter* injected_dup_frames_ = nullptr;
  telemetry::Gauge* queue_depth_gauge_ = nullptr;
  telemetry::Gauge* breaker_state_gauge_ = nullptr;
  telemetry::Histogram* delivery_ns_ = nullptr;
};

}  // namespace nitro::xport
