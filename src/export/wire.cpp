#include "export/wire.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace nitro::xport {

using control::ByteReader;
using control::ByteWriter;
using control::kFrameHeaderBytes;

std::vector<std::uint8_t> encode_epoch(const EpochMessage& msg) {
  ByteWriter w;
  w.put_u32(kEpochMsgMagic);
  w.put_u32(kWireVersion);
  w.put_u64(msg.source_id);
  w.put_u64(msg.seq_first);
  w.put_u64(msg.seq_last);
  w.put_u64(msg.span.first);
  w.put_u64(msg.span.last);
  w.put_i64(msg.packets);
  w.put_u64(msg.epoch_close_ns);
  w.put_u64(msg.send_ns);
  w.put_u64(msg.seed_gen);
  w.put_blob(msg.snapshot);
  return control::seal_frame(w.bytes());
}

std::vector<std::uint8_t> encode_ack(const AckMessage& ack) {
  ByteWriter w;
  w.put_u32(kAckMsgMagic);
  w.put_u32(kWireVersion);
  w.put_u64(ack.source_id);
  w.put_u64(ack.seq_last);
  w.put_u8(static_cast<std::uint8_t>(ack.status));
  return control::seal_frame(w.bytes());
}

EpochMessage decode_epoch(std::span<const std::uint8_t> frame) {
  ByteReader r(control::open_frame(frame));
  if (r.get_u32() != kEpochMsgMagic) {
    throw std::invalid_argument("epoch msg: bad magic");
  }
  // Version gate before any field decode: a frame from a newer peer is
  // rejected by name here, never interpreted through an older layout.
  const std::uint32_t version = r.get_u32();
  if (version < kWireVersionMin || version > kWireVersion) {
    throw std::invalid_argument("epoch msg: unsupported version " +
                                std::to_string(version) + " (speaks " +
                                std::to_string(kWireVersionMin) + ".." +
                                std::to_string(kWireVersion) + ")");
  }
  EpochMessage msg;
  msg.source_id = r.get_u64();
  msg.seq_first = r.get_u64();
  msg.seq_last = r.get_u64();
  msg.span.first = r.get_u64();
  msg.span.last = r.get_u64();
  msg.packets = r.get_i64();
  if (version >= 2) {
    msg.epoch_close_ns = r.get_u64();
    msg.send_ns = r.get_u64();
  }
  if (version >= 4) msg.seed_gen = r.get_u64();
  msg.snapshot = r.get_blob();
  if (!r.exhausted()) {
    throw std::invalid_argument("epoch msg: trailing bytes");
  }
  if (msg.seq_first == 0 || msg.seq_first > msg.seq_last) {
    throw std::invalid_argument("epoch msg: bad sequence range");
  }
  if (msg.span.first > msg.span.last) {
    throw std::invalid_argument("epoch msg: bad epoch span");
  }
  // The sequence range and the epoch span both count coalesced epochs;
  // a mismatch means a corrupt or forged header the CRC happened to bless.
  if (msg.seq_last - msg.seq_first != msg.span.last - msg.span.first) {
    throw std::invalid_argument("epoch msg: sequence/span width mismatch");
  }
  return msg;
}

AckMessage decode_ack(std::span<const std::uint8_t> frame) {
  ByteReader r(control::open_frame(frame));
  if (r.get_u32() != kAckMsgMagic) {
    throw std::invalid_argument("ack msg: bad magic");
  }
  // The ack layout is unchanged since v1; accept the whole speakable
  // range so mixed-version pairs still complete the handshake.
  const std::uint32_t version = r.get_u32();
  if (version < kWireVersionMin || version > kWireVersion) {
    throw std::invalid_argument("ack msg: unsupported version " +
                                std::to_string(version) + " (speaks " +
                                std::to_string(kWireVersionMin) + ".." +
                                std::to_string(kWireVersion) + ")");
  }
  AckMessage ack;
  ack.source_id = r.get_u64();
  ack.seq_last = r.get_u64();
  const std::uint8_t status = r.get_u8();
  if (!r.exhausted()) {
    throw std::invalid_argument("ack msg: trailing bytes");
  }
  if (status < static_cast<std::uint8_t>(AckStatus::kApplied) ||
      status > static_cast<std::uint8_t>(AckStatus::kOverlapDropped)) {
    throw std::invalid_argument("ack msg: unknown status");
  }
  ack.status = static_cast<AckStatus>(status);
  return ack;
}

std::vector<std::uint8_t> encode_recover_request(const RecoverRequest& req) {
  ByteWriter w;
  w.put_u32(kRecoverReqMagic);
  w.put_u32(kWireVersion);
  w.put_u64(req.source_id);
  return control::seal_frame(w.bytes());
}

std::vector<std::uint8_t> encode_recover_response(const RecoverResponse& resp) {
  ByteWriter w;
  w.put_u32(kRecoverRespMagic);
  w.put_u32(kWireVersion);
  w.put_u64(resp.source_id);
  w.put_u8(resp.found ? 1 : 0);
  w.put_u64(resp.last_seq);
  w.put_u64(resp.span.first);
  w.put_u64(resp.span.last);
  w.put_i64(resp.packets);
  w.put_u64(resp.seed_gen);
  w.put_blob(resp.snapshot);
  return control::seal_frame(w.bytes());
}

namespace {
/// Shared version gate for the v3 recover messages: they did not exist
/// before v3, so a frame tagged older is forged, and one tagged newer
/// than we speak is rejected by name before any field decode.
void check_recover_version(std::uint32_t version, const char* what) {
  if (version < kRecoverVersionMin || version > kWireVersion) {
    throw std::invalid_argument(std::string(what) + ": unsupported version " +
                                std::to_string(version) + " (speaks " +
                                std::to_string(kRecoverVersionMin) + ".." +
                                std::to_string(kWireVersion) + ")");
  }
}
}  // namespace

RecoverRequest decode_recover_request(std::span<const std::uint8_t> frame) {
  ByteReader r(control::open_frame(frame));
  if (r.get_u32() != kRecoverReqMagic) {
    throw std::invalid_argument("recover req: bad magic");
  }
  check_recover_version(r.get_u32(), "recover req");
  RecoverRequest req;
  req.source_id = r.get_u64();
  if (!r.exhausted()) {
    throw std::invalid_argument("recover req: trailing bytes");
  }
  return req;
}

RecoverResponse decode_recover_response(std::span<const std::uint8_t> frame) {
  ByteReader r(control::open_frame(frame));
  if (r.get_u32() != kRecoverRespMagic) {
    throw std::invalid_argument("recover resp: bad magic");
  }
  const std::uint32_t version = r.get_u32();
  check_recover_version(version, "recover resp");
  RecoverResponse resp;
  resp.source_id = r.get_u64();
  resp.found = r.get_u8() != 0;
  resp.last_seq = r.get_u64();
  resp.span.first = r.get_u64();
  resp.span.last = r.get_u64();
  resp.packets = r.get_i64();
  if (version >= 4) resp.seed_gen = r.get_u64();
  resp.snapshot = r.get_blob();
  if (!r.exhausted()) {
    throw std::invalid_argument("recover resp: trailing bytes");
  }
  if (resp.found && resp.last_seq == 0) {
    throw std::invalid_argument("recover resp: found with zero last_seq");
  }
  if (resp.span.first > resp.span.last) {
    throw std::invalid_argument("recover resp: bad epoch span");
  }
  return resp;
}

std::uint32_t peek_message_magic(std::span<const std::uint8_t> frame) {
  const auto payload = control::open_frame(frame);
  if (payload.size() < 4) {
    throw std::invalid_argument("wire msg: payload too short for magic");
  }
  std::uint32_t magic;
  std::memcpy(&magic, payload.data(), sizeof magic);
  return magic;
}

bool FrameAssembler::next_frame(std::vector<std::uint8_t>& out) {
  if (buf_.size() < kFrameHeaderBytes) return false;
  // Throws on bad magic/version: a byte stream cannot resync after
  // garbage, so the connection is poisoned and the caller drops it.
  const control::FrameHeader h = control::parse_frame_header(buf_);
  if (h.payload_len > max_frame_bytes_) {
    throw std::invalid_argument("frame: oversized payload (corrupt length?)");
  }
  const std::size_t total = kFrameHeaderBytes + static_cast<std::size_t>(h.payload_len);
  if (buf_.size() < total) return false;
  out.assign(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

}  // namespace nitro::xport
