#include "export/recovery.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace nitro::xport {

namespace {

// One connect + request + response exchange.  Returns true on a decoded
// response; on false, `error` says why so the retry loop can report the
// last failure.
bool one_attempt(const Endpoint& ep, std::uint64_t source_id, int timeout_ms,
                 RecoverResponse& out, std::string& error) {
  Socket sock = connect_endpoint(ep, timeout_ms);
  if (!sock.valid()) {
    error = "connect to " + ep.to_string() + " failed";
    return false;
  }

  RecoverRequest req;
  req.source_id = source_id;
  const std::vector<std::uint8_t> frame = encode_recover_request(req);
  if (!sock.send_all(frame, timeout_ms)) {
    error = "sending recover request failed";
    return false;
  }

  // The response is one sealed frame; a collector that injected a request
  // drop simply never answers, so the deadline below converts that into a
  // retry instead of a hang.
  FrameAssembler assembler;
  std::vector<std::uint8_t> resp_frame;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[16 * 1024];
  for (;;) {
    try {
      if (assembler.next_frame(resp_frame)) break;
    } catch (const std::exception& e) {
      error = std::string("recover response framing: ") + e.what();
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      error = "timed out waiting for recover response";
      return false;
    }
    const int slice_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() + 1);
    std::size_t got = 0;
    switch (sock.recv_some(buf, sizeof(buf), slice_ms, &got)) {
      case Socket::RecvResult::kData:
        assembler.feed({buf, got});
        break;
      case Socket::RecvResult::kTimeout:
        error = "timed out waiting for recover response";
        return false;
      case Socket::RecvResult::kClosed:
        error = "collector closed the connection before responding";
        return false;
      case Socket::RecvResult::kError:
        error = "socket error while waiting for recover response";
        return false;
    }
  }

  try {
    out = decode_recover_response(resp_frame);
  } catch (const std::exception& e) {
    error = std::string("recover response rejected: ") + e.what();
    return false;
  }
  if (out.source_id != source_id) {
    error = "recover response for a different source id";
    return false;
  }
  return true;
}

}  // namespace

RecoveryResult request_recovery(const Endpoint& ep, std::uint64_t source_id,
                                int timeout_ms, int attempts) {
  RecoveryResult res;
  if (attempts < 1) attempts = 1;
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (one_attempt(ep, source_id, timeout_ms, res.resp, res.error)) {
      res.ok = true;
      res.error.clear();
      return res;
    }
  }
  return res;
}

}  // namespace nitro::xport
