// Wire messages of the network-wide aggregation layer (DESIGN.md §11).
//
// Two message kinds travel over a monitor->collector byte stream, each
// wrapped in the codec's versioned CRC-32 frame (control/codec.hpp) so
// the stream shares the checkpoint/transfer armor — truncation, bit rot
// and torn buffers are rejected, never half-applied:
//
//   EpochMessage  monitor -> collector.  One sealed sketch snapshot plus
//                 delivery metadata: the sender's source id, a contiguous
//                 1-based sequence range [seq_first, seq_last] (a range
//                 wider than one element means backlogged epochs were
//                 coalesced into this snapshot), the covered epoch span,
//                 and the packet total for cross-checks.
//   AckMessage    collector -> monitor.  Acknowledges everything up to
//                 seq_last for the source; the exporter holds an epoch in
//                 its queue until acked, giving at-least-once delivery.
//                 The collector deduplicates by sequence range, so
//                 redelivery is idempotent (at-least-once + idempotent =
//                 effectively-once for the merged counters).
//
// FrameAssembler turns an arbitrary byte stream (TCP/Unix sockets chunk
// however they like) back into whole sealed frames, with a hard cap on
// the frame size so a corrupt length field cannot balloon memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "control/codec.hpp"
#include "core/epoch_span.hpp"

namespace nitro::xport {

inline constexpr std::uint32_t kEpochMsgMagic = 0x4e45504du;    // "NEPM"
inline constexpr std::uint32_t kAckMsgMagic = 0x4e45504bu;      // "NEPK"
inline constexpr std::uint32_t kRecoverReqMagic = 0x4e525251u;  // "NRRQ"
inline constexpr std::uint32_t kRecoverRespMagic = 0x4e525250u; // "NRRP"
/// v2 adds epoch-close and send timestamps to EpochMessage (freshness
/// observability, DESIGN.md §12).  v3 adds the reverse-direction rejoin
/// handshake (recover-request / recover-response, DESIGN.md §15); the
/// epoch/ack layouts are unchanged.  v4 adds the seed generation to
/// EpochMessage and RecoverResponse (keyed seed rotation, DESIGN.md §16);
/// pre-v4 frames decode with generation 0, which is exactly what a
/// rotation-disabled monitor runs at.  Decoders accept [kWireVersionMin,
/// kWireVersion]; v1 frames decode with zeroed timestamps, and anything
/// newer than kWireVersion is rejected by name *before* any field is
/// read, so an old peer never garbage-decodes a newer layout.  The
/// recover messages themselves require version >= 3: they did not exist
/// before, so an older-tagged frame claiming to be one is forged.
inline constexpr std::uint32_t kWireVersion = 4;
inline constexpr std::uint32_t kWireVersionMin = 1;
inline constexpr std::uint32_t kRecoverVersionMin = 3;

/// Frames larger than this are treated as stream corruption (a UnivMon
/// snapshot at paper scale is a few MB; 64 MiB leaves generous headroom).
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

struct EpochMessage {
  std::uint64_t source_id = 0;
  std::uint64_t seq_first = 1;  // 1-based, inclusive
  std::uint64_t seq_last = 1;   // inclusive; > seq_first after coalescing
  core::EpochSpan span;
  std::int64_t packets = 0;
  /// v2 freshness timestamps (monitor steady clock; 0 = unknown / v1 peer).
  /// epoch_close_ns is when the *newest* covered epoch closed at the
  /// source; send_ns is stamped at each delivery attempt, so close->send
  /// is queue+retry delay and send->receive is the wire.
  std::uint64_t epoch_close_ns = 0;
  std::uint64_t send_ns = 0;
  /// v4: seed generation of the snapshot (keyed rotation, DESIGN.md §16);
  /// 0 from pre-v4 peers and rotation-disabled monitors.  The collector
  /// merges each generation into its own replica — cross-generation
  /// sketches do not share hash functions and must never be merged.
  std::uint64_t seed_gen = 0;
  std::vector<std::uint8_t> snapshot;  // sealed sketch snapshot (codec frame)

  std::uint64_t epochs_covered() const noexcept { return seq_last - seq_first + 1; }
};

enum class AckStatus : std::uint8_t {
  kApplied = 1,         // merged into the collector's view
  kDuplicate = 2,       // already covered; dropped idempotently
  kOverlapDropped = 3,  // partial overlap with applied range; dropped whole
};

struct AckMessage {
  std::uint64_t source_id = 0;
  std::uint64_t seq_last = 0;  // everything <= seq_last is settled
  AckStatus status = AckStatus::kApplied;
};

/// Reverse-direction rejoin handshake (wire v3, DESIGN.md §15).  A monitor
/// restarting with no usable local state asks the collector for its
/// last-applied replica; the response carries the collector's cumulative
/// sketch for the source plus the settled sequence number, so the monitor
/// can seed its state and resume exporting at last_seq + 1 without the
/// collector ever double-counting an epoch.
struct RecoverRequest {
  std::uint64_t source_id = 0;
};

struct RecoverResponse {
  std::uint64_t source_id = 0;
  /// False when the collector has never applied an epoch from this
  /// source — the monitor then starts fresh at seq 1.
  bool found = false;
  std::uint64_t last_seq = 0;  // everything <= last_seq is applied
  core::EpochSpan span;        // union of applied epoch spans
  std::int64_t packets = 0;    // cumulative applied packet count
  /// v4: seed generation of the replica snapshot, so the rejoining
  /// monitor rebuilds its baseline under the right derived seed.
  std::uint64_t seed_gen = 0;
  std::vector<std::uint8_t> snapshot;  // sealed UnivMon replica (empty if !found)
};

/// Serialize to a sealed frame ready for the socket.
std::vector<std::uint8_t> encode_epoch(const EpochMessage& msg);
std::vector<std::uint8_t> encode_ack(const AckMessage& ack);
std::vector<std::uint8_t> encode_recover_request(const RecoverRequest& req);
std::vector<std::uint8_t> encode_recover_response(const RecoverResponse& resp);

/// Validate (CRC frame + inner magic/version/sequence sanity) and decode.
/// Throws std::invalid_argument with a specific reason on any corruption.
EpochMessage decode_epoch(std::span<const std::uint8_t> frame);
AckMessage decode_ack(std::span<const std::uint8_t> frame);
RecoverRequest decode_recover_request(std::span<const std::uint8_t> frame);
RecoverResponse decode_recover_response(std::span<const std::uint8_t> frame);

/// Is this sealed frame an epoch message (vs an ack)?  Peeks the inner
/// magic without full validation; throws like open_frame on a bad frame.
std::uint32_t peek_message_magic(std::span<const std::uint8_t> frame);

/// Incremental reassembly of sealed frames from a byte stream.
///
///   FrameAssembler fa;
///   fa.feed(bytes_from_socket);
///   std::vector<std::uint8_t> frame;
///   while (fa.next_frame(frame)) { ... open/decode frame ... }
///
/// next_frame() returns complete frames (header + payload) in arrival
/// order.  A malformed header (bad magic/version, oversized length)
/// throws std::invalid_argument: framing on a byte stream cannot resync
/// after garbage, so the caller must drop the connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  bool next_frame(std::vector<std::uint8_t>& out);

  std::size_t buffered_bytes() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t max_frame_bytes_;
};

}  // namespace nitro::xport
