// Rebuild-from-collector client (wire v3, DESIGN.md §15).
//
// A monitor that restarts with no usable local checkpoint asks the
// collector — over the same endpoint the exporter ships epochs to — for
// its last-applied replica: the cumulative per-source sketch, the settled
// sequence number and the applied epoch span.  The monitor seeds its
// daemon from the response (MeasurementDaemon::seed_from_recovery) and
// resumes exporting at last_seq + 1, so the collector never sees a
// duplicated or gapped sequence from the rejoined source.
//
// The request can be lost (the fault framework injects exactly that at
// Site::kRecoverServe), so request_recovery retries with fresh
// connections; each attempt is bounded by `timeout_ms`.
#pragma once

#include <cstdint>
#include <string>

#include "export/transport.hpp"
#include "export/wire.hpp"

namespace nitro::xport {

struct RecoveryResult {
  bool ok = false;          // a valid response arrived (resp.found may be false)
  RecoverResponse resp;
  std::string error;        // why every attempt failed, for logging
};

/// Synchronous recover-request/response exchange with the collector at
/// `ep`.  Retries up to `attempts` times on connect failure, timeout, a
/// dropped request or a poisoned response stream.  Never throws.
RecoveryResult request_recovery(const Endpoint& ep, std::uint64_t source_id,
                                int timeout_ms, int attempts = 3);

}  // namespace nitro::xport
