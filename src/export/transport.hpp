// Minimal socket transport for the epoch-export pipeline: TCP and
// Unix-domain stream sockets, all operations bounded by timeouts.
//
// The exporter must never hang on a misbehaving peer — a connect that
// blackholes, a receive window that stops draining, an ack that never
// comes.  Every call here is non-blocking under the hood (non-blocking
// connect + poll; poll-before-write; poll-before-read) and returns within
// its timeout so the retry/backoff/circuit-breaker ladder above stays in
// control.  EINTR and short transfers are handled by common/io.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace nitro::xport {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;         // kTcp
  std::uint16_t port = 0;   // kTcp (0 = ephemeral, listeners only)
  std::string path;         // kUnix

  std::string to_string() const;
};

/// Parse "tcp:HOST:PORT" or "unix:PATH".  HOST may be an IPv4 literal, a
/// hostname (resolved via getaddrinfo at connect/bind time) or a
/// bracketed IPv6 literal ("tcp:[::1]:9000").  Returns nullopt (never
/// throws) on a malformed spec so CLI code can print usage.
std::optional<Endpoint> parse_endpoint(const std::string& spec);

/// A connected stream socket (client side or accepted).  Move-only owner
/// of the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Send all of `bytes` within `timeout_ms` (wall clock across the whole
  /// buffer).  False on error, peer close or timeout.
  bool send_all(std::span<const std::uint8_t> bytes, int timeout_ms) noexcept;

  enum class RecvResult { kData, kTimeout, kClosed, kError };

  /// Receive up to `cap` bytes within `timeout_ms`; `*got` is set on kData.
  RecvResult recv_some(std::uint8_t* buf, std::size_t cap, int timeout_ms,
                       std::size_t* got) noexcept;

 private:
  int fd_ = -1;
};

/// Connect with a bounded timeout (non-blocking connect + poll).  Returns
/// an invalid Socket on refusal, unreachability or timeout.
Socket connect_endpoint(const Endpoint& ep, int timeout_ms);

/// Listening socket.  For tcp:HOST:0 the kernel picks a port; bound_port()
/// reports it so tests can listen ephemerally.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen.  Unix paths are unlinked first (stale socket files
  /// from a crashed collector must not block restart).  False on failure.
  bool open(const Endpoint& ep);

  /// Accept one connection, waiting at most `timeout_ms`.  Invalid Socket
  /// on timeout or error — callers loop, checking their stop flag.
  Socket accept_conn(int timeout_ms);

  void close() noexcept;

  bool valid() const noexcept { return fd_ >= 0; }
  std::uint16_t bound_port() const noexcept { return bound_port_; }

 private:
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unlink_path_;  // unix socket file removed on close
};

}  // namespace nitro::xport
