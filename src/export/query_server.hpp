// HTTP/JSON query front-end over the collector's versioned network view
// (DESIGN.md §13).
//
// Serves any number of concurrent readers WITHOUT ever blocking ingest:
// every request resolves a generation via CollectorCore::view(now) —
// lock-free when nothing changed, an incremental dirty-source fold when
// something did — then renders JSON from that immutable generation.
// Responses are cached per (generation, request target): a dashboard
// fleet asking the same question between epochs costs one render and N-1
// string copies.  The cache is invalidated wholesale when a new
// generation is published (generation number mismatch), which is the
// only invalidation rule needed — generations are immutable.
//
// Endpoints (GET, JSON bodies):
//   /healthz                         liveness probe
//   /view                            generation summary: id, packets,
//                                    entropy, distinct flows, L2, sources
//   /heavy-hitters?threshold=F&top=N flows with estimate >= F * packets
//   /flow?src=A&dst=B&sport=P&dport=Q&proto=R   per-flow point estimate
//   /entropy                         entropy / distinct / total
//   /change?from=G&top=N&threshold=F change detection: per-flow estimate
//                                    deltas between retained generation G
//                                    and the current one
//   /stats                           telemetry registry JSON (if attached)
//
// Transport is the same bounded-timeout socket layer the epoch stream
// uses (HTTP/1.1, keep-alive, Content-Length framing; GET only).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "export/collector.hpp"
#include "export/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace nitro::xport {

struct QueryServerConfig {
  double default_hh_threshold = 0.0005;  // fraction of merged packets
  int default_top = 100;                 // row cap for list endpoints
  std::size_t max_cached_responses = 256;  // per generation
  std::size_t history_generations = 8;     // retained for /change
  std::size_t max_request_bytes = 16 * 1024;  // request head cap
  int io_timeout_ms = 2000;              // per send / response write
};

class QueryServer {
 public:
  QueryServer(CollectorCore& core, const Endpoint& listen_ep,
              const QueryServerConfig& cfg = {});
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Bind + listen + start the accept loop.  False if binding failed.
  bool start();
  void stop();

  /// Resolved listen endpoint (tcp:HOST:0 gets its kernel-assigned port).
  Endpoint endpoint() const;

  void attach_telemetry(telemetry::Registry& registry, const std::string& prefix);

  /// Registry rendered by /stats (usually the process-wide one).  Set
  /// before start(); read unsynchronized by handler threads.
  void serve_stats_from(const telemetry::Registry* registry) noexcept {
    stats_registry_ = registry;
  }

  /// Handler threads currently tracked (live + finished-but-unreaped).
  std::size_t tracked_connections() const;

  /// Testable seam (also what handler threads call): the full HTTP
  /// response — status line, headers, body — for one request line.
  std::string handle(const std::string& method, const std::string& target,
                     std::uint64_t now_ns);

 private:
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle_connection(Socket sock);
  void reap_connections(bool join_all);
  static std::uint64_t now_ns() noexcept;

  /// Render (uncached) the JSON body for `path` against one generation.
  /// Returns an HTTP status code; 0 means "not a view endpoint".
  int render(const std::string& path,
             const std::unordered_map<std::string, std::string>& params,
             const CollectorCore::ViewPtr& view, std::string& body);

  /// Remember `view` in the /change history ring (newest first).
  void remember(const CollectorCore::ViewPtr& view);
  CollectorCore::ViewPtr recall(std::uint64_t generation) const;

  CollectorCore& core_;
  QueryServerConfig cfg_;
  Endpoint listen_ep_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;
  mutable std::mutex conn_mu_;
  std::vector<Conn> conns_;

  // Per-generation response cache: valid only while `cache_generation_`
  // matches the served generation.  Rendering happens OUTSIDE the cache
  // lock — a slow render never serializes other readers.
  mutable std::mutex cache_mu_;
  std::uint64_t cache_generation_ = 0;
  std::unordered_map<std::string, std::string> cache_;

  mutable std::mutex history_mu_;
  std::deque<CollectorCore::ViewPtr> history_;  // newest first

  const telemetry::Registry* stats_registry_ = nullptr;

  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* cache_misses_ = nullptr;
  telemetry::Counter* bad_requests_ = nullptr;
  telemetry::Counter* connections_ = nullptr;
  telemetry::Histogram* latency_ns_ = nullptr;
  telemetry::Gauge* active_connections_ = nullptr;
  std::atomic<std::int64_t> active_conns_{0};
};

}  // namespace nitro::xport
