#include "metrics/accuracy.hpp"

#include <unordered_set>

namespace nitro::metrics {

double hh_mean_relative_error(const trace::GroundTruth& truth, std::int64_t threshold,
                              const std::function<std::int64_t(const FlowKey&)>& query) {
  const auto hh = truth.heavy_hitters(threshold);
  if (hh.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [key, count] : hh) {
    sum += relative_error(static_cast<double>(query(key)), static_cast<double>(count));
  }
  return sum / static_cast<double>(hh.size());
}

double topk_recall(const trace::GroundTruth& truth, std::size_t k,
                   const std::vector<FlowKey>& reported) {
  const auto top = truth.top_k(k);
  if (top.empty()) return 1.0;
  std::unordered_set<FlowKey> got(reported.begin(), reported.end());
  std::size_t hits = 0;
  for (const auto& [key, count] : top) {
    if (got.count(key)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(top.size());
}

double hh_precision(const trace::GroundTruth& truth, std::int64_t threshold,
                    const std::vector<FlowKey>& reported) {
  if (reported.empty()) return 1.0;
  std::size_t correct = 0;
  for (const auto& key : reported) {
    if (truth.count(key) >= threshold) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(reported.size());
}

double change_mean_relative_error(
    const trace::GroundTruth& prev, const trace::GroundTruth& cur, std::int64_t threshold,
    const std::function<std::int64_t(const FlowKey&)>& query_change) {
  const auto changed = trace::GroundTruth::changes(prev, cur, threshold);
  if (changed.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [key, delta] : changed) {
    sum += relative_error(static_cast<double>(query_change(key)),
                          static_cast<double>(delta));
  }
  return sum / static_cast<double>(changed.size());
}

}  // namespace nitro::metrics
