// Accuracy metrics used throughout the evaluation (§7 "Sketches and
// metrics"): relative error, mean relative error over the detected heavy
// hitters, and recall/precision of heavy-hitter sets.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flow_key.hpp"
#include "trace/ground_truth.hpp"

namespace nitro::metrics {

/// |t - t_real| / t_real, the paper's relative-error definition.
inline double relative_error(double measured, double truth) {
  if (truth == 0.0) return measured == 0.0 ? 0.0 : 1.0;
  return std::abs(measured - truth) / std::abs(truth);
}

/// Mean relative error of per-flow estimates over the true heavy hitters
/// at `threshold` (the paper's "HH" error metric: mean relative error on
/// the detected heavy flows).
double hh_mean_relative_error(const trace::GroundTruth& truth, std::int64_t threshold,
                              const std::function<std::int64_t(const FlowKey&)>& query);

/// Recall of a reported set against the true top-k flows (Figure 15).
double topk_recall(const trace::GroundTruth& truth, std::size_t k,
                   const std::vector<FlowKey>& reported);

/// Precision of a reported HH set against truth at `threshold`.
double hh_precision(const trace::GroundTruth& truth, std::int64_t threshold,
                    const std::vector<FlowKey>& reported);

/// F-measure aggregates for change detection: mean relative error of the
/// estimated change magnitudes of the true changed flows.
double change_mean_relative_error(
    const trace::GroundTruth& prev, const trace::GroundTruth& cur, std::int64_t threshold,
    const std::function<std::int64_t(const FlowKey&)>& query_change);

}  // namespace nitro::metrics
