// Space-Saving (Metwally, Agrawal & El Abbadi, ICDT 2005).
//
// Deterministic top-k summary: k counters; a miss when full takes over the
// minimum counter and inherits its value as error.  Guarantees
// f̂_x ∈ [f_x, f_x + L1/k] and finds every flow above L1/k.  Cited by the
// paper as the classic heavy-hitter structure [61] and the building block
// of the deterministic HHH algorithm that R-HHH randomizes [64].
//
// Layout: stable cells + a heap of cell ids + a position table, so heap
// sifts move 32-bit ids and never re-hash keys — the per-packet cost is
// one hash-map find (plus one erase/insert on takeover).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::sketch {

class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    cells_.reserve(capacity);
    heap_.reserve(capacity);
    pos_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  void update(const FlowKey& key, std::int64_t count = 1) {
    total_ += count;
    auto it = index_.find(key);
    if (it != index_.end()) {
      cells_[it->second].count += count;
      sift_down(pos_[it->second]);
      return;
    }
    if (cells_.size() < capacity_) {
      const auto id = static_cast<std::uint32_t>(cells_.size());
      cells_.push_back({key, count, 0});
      heap_.push_back(id);
      pos_.push_back(static_cast<std::uint32_t>(heap_.size() - 1));
      index_.emplace(key, id);
      sift_up(heap_.size() - 1);
      return;
    }
    // Take over the minimum: new key inherits min's count as its error.
    const std::uint32_t id = heap_[0];
    Cell& min = cells_[id];
    index_.erase(min.key);
    min.error = min.count;
    min.count += count;
    min.key = key;
    index_.emplace(key, id);
    sift_down(0);
  }

  /// Upper-bound estimate (0 if untracked).
  std::int64_t query(const FlowKey& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? 0 : cells_[it->second].count;
  }

  /// Guaranteed lower bound: count - error.
  std::int64_t guaranteed(const FlowKey& key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return 0;
    return cells_[it->second].count - cells_[it->second].error;
  }

  /// All flows whose estimate reaches `threshold`, sorted descending.
  std::vector<std::pair<FlowKey, std::int64_t>> heavy_hitters(
      std::int64_t threshold) const {
    std::vector<std::pair<FlowKey, std::int64_t>> out;
    for (const auto& c : cells_) {
      if (c.count >= threshold) out.emplace_back(c.key, c.count);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return out;
  }

  std::int64_t total() const noexcept { return total_; }
  std::size_t size() const noexcept { return cells_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::int64_t min_count() const noexcept {
    return heap_.empty() ? 0 : cells_[heap_[0]].count;
  }

  void clear() {
    cells_.clear();
    heap_.clear();
    pos_.clear();
    index_.clear();
    total_ = 0;
  }

 private:
  struct Cell {
    FlowKey key;
    std::int64_t count = 0;
    std::int64_t error = 0;
  };

  std::int64_t count_at(std::size_t heap_idx) const { return cells_[heap_[heap_idx]].count; }

  void place(std::size_t heap_idx, std::uint32_t id) {
    heap_[heap_idx] = id;
    pos_[id] = static_cast<std::uint32_t>(heap_idx);
  }

  void sift_up(std::size_t i) {
    const std::uint32_t id = heap_[i];
    const std::int64_t c = cells_[id].count;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (count_at(parent) <= c) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, id);
  }

  void sift_down(std::size_t i) {
    const std::uint32_t id = heap_[i];
    const std::int64_t c = cells_[id].count;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && count_at(child + 1) < count_at(child)) ++child;
      if (count_at(child) >= c) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, id);
  }

  std::size_t capacity_;
  std::int64_t total_ = 0;
  std::vector<Cell> cells_;          // stable cell storage
  std::vector<std::uint32_t> heap_;  // min-heap of cell ids (on count)
  std::vector<std::uint32_t> pos_;   // cell id -> heap index
  std::unordered_map<FlowKey, std::uint32_t> index_;  // key -> cell id
};

}  // namespace nitro::sketch
