// Count-Min Sketch (Cormode & Muthukrishnan, 2005).
//
// d rows of w counters; Update adds the packet count to one counter per
// row, Query returns the minimum over rows.  Guarantees
// f̂_x ∈ [f_x, f_x + εL1] with probability 1-δ for w = e/ε, d = ln(1/δ).
// This is the paper's εL1 workhorse (Figure 1) and the light part of
// ElasticSketch.
#pragma once

#include <cstdint>

#include "sketch/counter_matrix.hpp"

namespace nitro::sketch {

class CountMinSketch {
 public:
  CountMinSketch(std::uint32_t depth, std::uint32_t width, std::uint64_t seed)
      : matrix_(depth, width, seed, /*signed_updates=*/false) {}

  void update(const FlowKey& key, std::int64_t count = 1) noexcept {
    for (std::uint32_t r = 0; r < matrix_.depth(); ++r) matrix_.update_row(r, key, count);
  }

  /// Point query: min over rows.  Never underestimates when all updates
  /// are non-negative.
  std::int64_t query(const FlowKey& key) const noexcept {
    std::int64_t best = matrix_.row_estimate(0, key);
    for (std::uint32_t r = 1; r < matrix_.depth(); ++r) {
      best = std::min(best, matrix_.row_estimate(r, key));
    }
    return best;
  }

  /// Total stream count (exact for unsigned unit updates).
  std::int64_t total() const noexcept { return matrix_.row_sum(0); }

  void clear() noexcept { matrix_.clear(); }
  void merge(const CountMinSketch& other) { matrix_.merge(other.matrix_); }

  std::uint32_t depth() const noexcept { return matrix_.depth(); }
  std::uint32_t width() const noexcept { return matrix_.width(); }
  std::size_t memory_bytes() const noexcept { return matrix_.memory_bytes(); }

  CounterMatrix& matrix() noexcept { return matrix_; }
  const CounterMatrix& matrix() const noexcept { return matrix_; }

 private:
  CounterMatrix matrix_;
};

}  // namespace nitro::sketch
