// Adversarial-pressure signals computed from sketch state (DESIGN.md §16).
//
// A hash-collision flood crafted against the sketch's seed concentrates
// its volume into a handful of (row, bucket) cells, while benign traffic —
// once the tracked heavy hitters are subtracted — spreads residual mass
// near-uniformly across each row.  The collision-pressure gauge measures
// exactly that: the per-row maximum residual bucket magnitude over the
// mean residual magnitude, median'd across rows so a single unlucky bucket
// does not fire it.  Benign traffic sits at a small constant; a crafted
// flood is orders of magnitude above it.
//
// The companion churn signal (heap-eviction velocity) lives on TopKHeap /
// UnivMon::heap_evictions(); both are exported as telemetry gauges by the
// daemon and the collector.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/math_util.hpp"
#include "sketch/univmon.hpp"

namespace nitro::sketch {

/// Residual row-concentration ratio of one counter matrix, with the given
/// tracked entries (estimate-weighted) subtracted from their buckets first.
inline double collision_pressure(const CounterMatrix& m,
                                 const std::vector<TopKHeap::Entry>& tracked) {
  if (m.width() == 0 || m.depth() == 0) return 0.0;
  std::vector<double> ratios;
  ratios.reserve(m.depth());
  std::vector<std::int64_t> scratch(m.width());
  for (std::uint32_t r = 0; r < m.depth(); ++r) {
    const auto row = m.row(r);
    scratch.assign(row.begin(), row.end());
    for (const auto& e : tracked) {
      const std::uint64_t digest = flow_digest(e.key);
      scratch[m.column_of_digest(r, digest)] -=
          m.sign_of_digest(r, digest) * e.estimate;
    }
    std::int64_t max_abs = 0;
    double l1 = 0.0;
    for (std::int64_t c : scratch) {
      const std::int64_t a = std::abs(c);
      if (a > max_abs) max_abs = a;
      l1 += static_cast<double>(a);
    }
    const double mean = l1 / static_cast<double>(m.width());
    ratios.push_back(static_cast<double>(max_abs) / (mean + 1.0));
  }
  return median(ratios);
}

/// Collision pressure of a UnivMon's level-0 Count Sketch — the level every
/// key updates, and therefore the one a crafted flood must poison.
inline double collision_pressure(const UnivMon& um) {
  if (um.num_levels() == 0) return 0.0;
  return collision_pressure(um.level_sketch(0).matrix(),
                            um.level_heap(0).entries_sorted());
}

}  // namespace nitro::sketch
