// K-ary Sketch (Krishnamurthy, Sen, Zhang & Chen, IMC 2003).
//
// Count-Min-shaped structure with an unbiased per-row estimator
//   est_r(x) = (C[r][h_r(x)] - S/w) / (1 - 1/w)
// (S = total count), combined by the row median.  Built for sketch-based
// change detection: subtract two epochs' sketches and query the
// difference.  One of the four sketches the paper integrates (§6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/math_util.hpp"
#include "sketch/counter_matrix.hpp"

namespace nitro::sketch {

class KArySketch {
 public:
  KArySketch(std::uint32_t depth, std::uint32_t width, std::uint64_t seed)
      : matrix_(depth, width, seed, /*signed_updates=*/false) {}

  void update(const FlowKey& key, std::int64_t count = 1) noexcept {
    total_ += count;
    for (std::uint32_t r = 0; r < matrix_.depth(); ++r) matrix_.update_row(r, key, count);
  }

  /// Unbiased point estimate (may be negative for absent keys).  Only
  /// local scratch, so concurrent const queries are thread-safe (same
  /// contract as CountSketch::query).
  double query(const FlowKey& key) const noexcept {
    constexpr std::uint32_t kStackRows = 16;
    const double w = matrix_.width();
    const std::uint32_t d = matrix_.depth();
    double stack_buf[kStackRows];
    std::vector<double> heap_buf;
    double* est = stack_buf;
    if (d > kStackRows) {
      heap_buf.resize(d);
      est = heap_buf.data();
    }
    for (std::uint32_t r = 0; r < d; ++r) {
      const double raw = static_cast<double>(matrix_.row_estimate(r, key));
      est[r] = (raw - static_cast<double>(total_) / w) / (1.0 - 1.0 / w);
    }
    return median_in_place(std::span<double>(est, d));
  }

  /// Forecast-difference sketch for change detection: this - prev,
  /// element-wise.  Both sketches must share shape and seed.
  KArySketch difference(const KArySketch& prev) const {
    KArySketch out = *this;
    for (std::uint32_t r = 0; r < out.matrix_.depth(); ++r) {
      auto dst = out.matrix_.row(r);
      auto src = prev.matrix_.row(r);
      // Rows are only exposed const; mutate through update-free access.
      auto* raw = const_cast<std::int64_t*>(dst.data());
      for (std::uint32_t c = 0; c < out.matrix_.width(); ++c) raw[c] -= src[c];
    }
    out.total_ -= prev.total_;
    return out;
  }

  std::int64_t total() const noexcept { return total_; }

  /// Shard/epoch merge: counters element-wise (checked for identical shape
  /// and seed) plus the stream totals, so the merged unbiased estimator
  /// sees the union stream's S.
  void merge(const KArySketch& other) {
    matrix_.merge(other.matrix_);
    total_ += other.total_;
  }

  /// Adds `count` to the running total without touching counters — used by
  /// the Nitro wrapper, which performs row updates itself but must keep
  /// the unbiased estimator's S term consistent.
  void add_total(std::int64_t count) noexcept { total_ += count; }

  void clear() noexcept {
    matrix_.clear();
    total_ = 0;
  }

  std::uint32_t depth() const noexcept { return matrix_.depth(); }
  std::uint32_t width() const noexcept { return matrix_.width(); }
  std::size_t memory_bytes() const noexcept { return matrix_.memory_bytes(); }

  CounterMatrix& matrix() noexcept { return matrix_; }
  const CounterMatrix& matrix() const noexcept { return matrix_; }

 private:
  CounterMatrix matrix_;
  std::int64_t total_ = 0;
};

}  // namespace nitro::sketch
