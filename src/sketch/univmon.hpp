// UnivMon (Liu et al., SIGCOMM 2016) — universal sketching.
//
// L levels of Count Sketch; level j sees the substream of keys sampled
// into levels 1..j (level j keeps ~2^-j of the flow space).  Following
// the reference implementation, the level of a key is derived from ONE
// pairwise-independent hash — the number of trailing one bits — which is
// distributionally identical to j independent one-bit hashes but costs a
// single hash per packet.  Each level tracks its heavy hitters in a
// TopKHeap.
// Any G-sum Σ g(f_x) (entropy, distinct count, L2, ...) is estimated with
// the recursive estimator
//   Y_{L-1} = Σ_{x ∈ HH_{L-1}} g(f̂_x)
//   Y_j     = 2·Y_{j+1} + Σ_{x ∈ HH_j} g(f̂_x)·(1 − 2·sampled_{j+1}(x))
// This is the paper's flagship "general" sketch: one structure serving
// heavy hitters, change detection, entropy and cardinality.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/tabulation.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/topk.hpp"

namespace nitro::sketch {

struct UnivMonConfig {
  std::uint32_t levels = 16;
  std::uint32_t depth = 5;
  /// Width of the level-0 Count Sketch.  Deeper levels shrink by
  /// `width_decay` down to `min_width` — matching the paper's §7 setup
  /// (4MB, 2MB, 1MB, 500KB for the first sketches, 250KB for the rest).
  std::uint32_t top_width = 10000;
  double width_decay = 0.5;
  std::uint32_t min_width = 512;
  std::uint32_t heap_capacity = 1000;
  /// TopKHeap churn-guard hysteresis (counts): an untracked key must beat
  /// a full heap's minimum by more than this to evict a tracked one.
  /// 0 = guard off (classic behavior).  Does not affect mergeability —
  /// only seeds and shapes must match.
  std::int64_t heap_margin = 0;

  std::uint32_t width_at(std::uint32_t level) const {
    double w = top_width;
    for (std::uint32_t j = 0; j < level; ++j) w = std::max<double>(w * width_decay, min_width);
    return static_cast<std::uint32_t>(w);
  }
};

class UnivMon {
 public:
  UnivMon(const UnivMonConfig& cfg, std::uint64_t seed);

  /// Feeds one packet of `count` units.  Touches levels 0..level_of(x).
  void update(const FlowKey& key, std::int64_t count = 1);

  /// Point frequency estimate (level-0 Count Sketch).
  std::int64_t query(const FlowKey& key) const { return levels_[0].cs.query(key); }

  /// Deepest level this key belongs to: trailing ones of the level hash,
  /// capped at levels-1.  Membership is prefix-closed by construction.
  std::uint32_t level_of(const FlowKey& key) const;

  /// Level membership: is `key` sampled into levels 0..j?
  bool sampled_to_level(const FlowKey& key, std::uint32_t j) const {
    return level_of(key) >= j;
  }

  /// Recursive G-sum estimator over the per-level heavy hitters.
  double estimate_gsum(const std::function<double(double)>& g) const;

  /// Entropy of the flow-size distribution (bits):
  ///   H = log2(m) - (1/m) Σ f_x log2 f_x, via the g(f)=f·log2(f) G-sum.
  double estimate_entropy() const;

  /// Number of distinct flows, via the g(f)=1 G-sum.
  double estimate_distinct() const;

  /// k-th frequency moment F_k = Σ f_x^k, via the g(f)=f^k G-sum
  /// (F_0 = distinct count, F_1 = stream length, F_2 = self-join size).
  double estimate_moment(double k) const;

  /// L2 norm of the frequency vector (level-0 AMS estimate).
  double estimate_l2() const { return levels_[0].cs.l2_estimate(); }

  /// Heavy hitters with estimate >= threshold (from the level-0 heap).
  std::vector<TopKHeap::Entry> heavy_hitters(std::int64_t threshold) const;

  std::int64_t total() const noexcept { return total_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint32_t num_levels() const noexcept { return static_cast<std::uint32_t>(levels_.size()); }
  const CountSketch& level_sketch(std::uint32_t j) const { return levels_[j].cs; }
  const TopKHeap& level_heap(std::uint32_t j) const { return levels_[j].heap; }

  // --- Raw per-level hooks -------------------------------------------------
  // Used by NitroUnivMon, which replaces each level's vanilla update with a
  // sampled one (the paper's "replace each Count Sketch instance in UnivMon
  // with NitroSketch", §8) while reusing this class's estimators.

  /// Does `key` pass the promotion hash *into* level j (j >= 1)?
  bool level_passes(std::uint32_t j, const FlowKey& key) const {
    return level_of(key) >= j;
  }

  /// Mutable access to level j's Count Sketch (bypasses heap maintenance).
  CountSketch& level_sketch_mut(std::uint32_t j) { return levels_[j].cs; }

  /// Refresh level j's heavy-key heap with the current estimate of `key`.
  void offer_to_heap(std::uint32_t j, const FlowKey& key) {
    levels_[j].heap.offer(key, levels_[j].cs.query(key));
  }

  /// Same, with a caller-computed estimate (instrumented paths separate
  /// the hash cost of re-querying from the pure heap cost).
  void offer_to_heap_with_estimate(std::uint32_t j, const FlowKey& key,
                                   std::int64_t estimate) {
    levels_[j].heap.offer(key, estimate);
  }

  /// Account stream length without touching any counters.
  void add_total(std::int64_t count) noexcept { total_ += count; }

  /// Overwrite the stream total (snapshot loading).
  void set_total(std::int64_t total) noexcept { total_ = total; }

  /// Mutable heap access for snapshot loading.
  TopKHeap& level_heap_mut(std::uint32_t j) { return levels_[j].heap; }

  /// Network-wide aggregation: element-wise counter merge plus heavy-key
  /// union (estimates re-queried from the merged counters).  Both sketches
  /// must be built with the same config and seed — the standard
  /// same-hash-functions requirement for mergeable sketches.
  void merge(const UnivMon& other);

  std::size_t memory_bytes() const;
  void clear();

  /// Heap churn velocity: untracked-evicts-tracked events summed over all
  /// level heaps since construction / clear().  On a per-epoch sketch this
  /// is the epoch's eviction count — the churn-rate anomaly gauge.
  std::uint64_t heap_evictions() const noexcept;

  // --- Dirty-segment tracking passthrough (delta checkpoints) --------------

  /// Enable per-segment dirty tracking on every level's counter matrix.
  void enable_dirty_tracking() {
    for (Level& l : levels_) l.cs.matrix().enable_dirty_tracking();
  }

  bool dirty_tracking() const noexcept {
    return !levels_.empty() && levels_[0].cs.matrix().dirty_tracking();
  }

  /// Checkpoint frame cut: subsequent dirty bits are relative to the frame
  /// the caller just serialized.
  void clear_dirty() noexcept {
    for (Level& l : levels_) l.cs.matrix().clear_dirty();
  }

 private:
  struct Level {
    Level(std::uint32_t depth, std::uint32_t width, std::uint32_t heap_cap,
          std::uint64_t cs_seed, std::int64_t heap_margin)
        : cs(depth, width, cs_seed), heap(heap_cap, heap_margin) {}
    CountSketch cs;
    TopKHeap heap;
  };

  UnivMonConfig cfg_;
  std::vector<Level> levels_;
  std::uint64_t seed_;        // construction seed (generation-derived under rotation)
  std::uint64_t level_seed_;  // trailing ones of mix64(digest^seed) = level
  std::int64_t total_ = 0;
};

}  // namespace nitro::sketch
