#include "sketch/univmon.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace nitro::sketch {

UnivMon::UnivMon(const UnivMonConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed), level_seed_(mix64(seed ^ 0x1e7e15e1ULL)) {
  SplitMix64 sm(seed);
  levels_.reserve(cfg.levels);
  for (std::uint32_t j = 0; j < cfg.levels; ++j) {
    levels_.emplace_back(cfg.depth, cfg.width_at(j), cfg.heap_capacity, sm.next(),
                         cfg.heap_margin);
  }
}

std::uint32_t UnivMon::level_of(const FlowKey& key) const {
  // Seeded finalizer over the flow digest: one multiply-xor chain instead
  // of a table-based hash — this sits on the every-packet path of
  // NitroUnivMon, where the 8 tabulation lookups were the dominant cost.
  const std::uint64_t h = mix64(flow_digest(key) ^ level_seed_);
  const auto z = static_cast<std::uint32_t>(std::countr_one(h));
  return std::min(z, static_cast<std::uint32_t>(levels_.size()) - 1);
}

void UnivMon::update(const FlowKey& key, std::int64_t count) {
  total_ += count;
  const std::uint32_t z = level_of(key);
  for (std::uint32_t j = 0; j <= z; ++j) {
    Level& lv = levels_[j];
    lv.cs.update(key, count);
    lv.heap.offer(key, lv.cs.query(key));
  }
}

double UnivMon::estimate_gsum(const std::function<double(double)>& g) const {
  const auto L = static_cast<std::int32_t>(levels_.size());
  double y_next = 0.0;  // Y_{j+1}

  for (std::int32_t j = L - 1; j >= 0; --j) {
    const Level& lv = levels_[static_cast<std::size_t>(j)];
    double y = (j == L - 1) ? 0.0 : 2.0 * y_next;
    for (const auto& e : lv.heap.entries_sorted()) {
      const double fx = static_cast<double>(std::max<std::int64_t>(e.estimate, 1));
      if (j == L - 1) {
        y += g(fx);
      } else {
        const bool promoted =
            level_of(e.key) >= static_cast<std::uint32_t>(j) + 1;
        y += g(fx) * (1.0 - 2.0 * (promoted ? 1.0 : 0.0));
      }
    }
    y_next = y;
  }
  return y_next;
}

double UnivMon::estimate_entropy() const {
  if (total_ <= 0) return 0.0;
  const double m = static_cast<double>(total_);
  const double gsum = estimate_gsum([](double f) { return xlog2x(f); });
  // Entropy is bounded by [0, log2(m)]; estimator noise at deep levels can
  // push the raw G-sum outside the feasible range, so clamp.
  const double h = std::log2(m) - gsum / m;
  return std::clamp(h, 0.0, std::log2(m));
}

double UnivMon::estimate_distinct() const {
  const double d = estimate_gsum([](double) { return 1.0; });
  return std::max(d, 0.0);
}

double UnivMon::estimate_moment(double k) const {
  const double m = estimate_gsum([k](double f) { return std::pow(f, k); });
  return std::max(m, 0.0);
}

std::vector<TopKHeap::Entry> UnivMon::heavy_hitters(std::int64_t threshold) const {
  std::vector<TopKHeap::Entry> out;
  for (const auto& e : levels_[0].heap.entries_sorted()) {
    if (e.estimate >= threshold) out.push_back(e);
  }
  return out;
}

void UnivMon::merge(const UnivMon& other) {
  if (other.levels_.size() != levels_.size()) {
    throw std::invalid_argument("UnivMon::merge: level count mismatch");
  }
  total_ += other.total_;
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    levels_[j].cs.merge(other.levels_[j].cs);
  }
  // Union the heavy keys; their estimates come from the merged counters.
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    auto& level = levels_[j];
    level.heap.merge(other.levels_[j].heap,
                     [&level](const FlowKey& k, std::int64_t) {
                       return level.cs.query(k);
                     });
    // Refresh survivors too: merged counters changed every estimate.
    for (const auto& e : level.heap.entries_sorted()) {
      level.heap.offer(e.key, level.cs.query(e.key));
    }
  }
}

std::uint64_t UnivMon::heap_evictions() const noexcept {
  std::uint64_t n = 0;
  for (const auto& lv : levels_) n += lv.heap.evictions();
  return n;
}

std::size_t UnivMon::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lv : levels_) bytes += lv.cs.memory_bytes() + lv.heap.memory_bytes();
  return bytes;
}

void UnivMon::clear() {
  for (auto& lv : levels_) {
    lv.cs.clear();
    lv.heap.clear();
  }
  total_ = 0;
}

}  // namespace nitro::sketch
