// Shared d x w counter structure underlying every sketch in this library.
//
// The paper's key observation (§1, §4.2) is that Count-Min, Count Sketch,
// K-ary and UnivMon's components all share the same canonical layout:
// d independent counter arrays of width w, each paired with a
// pairwise-independent index hash h_i and (for L2 sketches) a sign hash
// g_i.  Centralizing the layout lets the NitroSketch framework wrap any of
// them uniformly, and keeps rows contiguous for cache-friendly updates.
//
// Storage is 64-byte aligned with each row padded to whole cache lines, so
// a counter never straddles two lines and the burst ingestion path can
// prefetch exactly one line per resolved update.  Padding counters are
// permanently zero; row()/row_mut() expose only the live width, so codec,
// merge and estimation observe the unpadded layout.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/aligned.hpp"
#include "common/flow_key.hpp"
#include "common/tabulation.hpp"

namespace nitro::sketch {

class CounterMatrix {
 public:
  /// Counters per 64-byte cache line; rows are padded to a multiple of
  /// this so every row starts on a line boundary.
  static constexpr std::uint32_t kLineCounters =
      static_cast<std::uint32_t>(kCacheLineBytes / sizeof(std::int64_t));

  /// `signed_updates` selects between Count-Sketch-style ±1 updates (an
  /// εL2 guarantee) and Count-Min-style +1 updates (εL1); see Algorithm 1
  /// line 3 of the paper.
  CounterMatrix(std::uint32_t depth, std::uint32_t width, std::uint64_t seed,
                bool signed_updates)
      : depth_(depth), width_(width),
        stride_((width + kLineCounters - 1) / kLineCounters * kLineCounters),
        seed_(seed),
        counters_(std::size_t{depth} * stride_, 0) {
    row_hash_.reserve(depth);
    sign_hash_.reserve(depth);
    SplitMix64 sm(seed);
    for (std::uint32_t r = 0; r < depth; ++r) {
      row_hash_.emplace_back(width, sm.next());
      sign_hash_.emplace_back(sm.next(), signed_updates);
    }
  }

  /// Granularity of dirty tracking: one bit covers this many consecutive
  /// counters (8 cache lines).  Coarse on purpose — the bitmap must stay
  /// small enough that marking it on the update path is a single OR into
  /// a word that is almost always already cached.
  static constexpr std::uint32_t kSegmentCounters = 64;

  std::uint32_t depth() const noexcept { return depth_; }
  std::uint32_t width() const noexcept { return width_; }
  /// Counters per row as stored (width rounded up to whole cache lines).
  std::uint32_t stride() const noexcept { return stride_; }
  std::uint64_t seed() const noexcept { return seed_; }
  bool signed_updates() const noexcept { return !sign_hash_.empty() && sign_hash_[0].is_signed(); }

  /// C[r][h_r(key)] += delta * g_r(key).
  void update_row(std::uint32_t r, const FlowKey& key, std::int64_t delta) noexcept {
    const std::uint64_t digest = flow_digest(key);
    update_row_digest(r, digest, delta);
  }

  /// Same as update_row but with the 64-bit digest precomputed (the
  /// buffered batch path hashes keys up front).
  void update_row_digest(std::uint32_t r, std::uint64_t digest, std::int64_t delta) noexcept {
    const std::uint32_t col = row_hash_[r].index_of_digest(digest);
    counters_[std::size_t{r} * stride_ + col] += delta * sign_hash_[r].sign_of_digest(digest);
    if (!dirty_.empty()) mark_dirty(r, col);
  }

  /// Column of `digest` in row r — hash only, no write.  Batch paths
  /// resolve columns for a whole group, prefetch the counter lines, then
  /// write in a second pass.
  std::uint32_t column_of_digest(std::uint32_t r, std::uint64_t digest) const noexcept {
    return row_hash_[r].index_of_digest(digest);
  }

  /// Sign of `digest` in row r (±1 for signed sketches, +1 otherwise).
  std::int32_t sign_of_digest(std::uint32_t r, std::uint64_t digest) const noexcept {
    return sign_hash_[r].sign_of_digest(digest);
  }

  /// Address of counter (r, col), for __builtin_prefetch by batch writers.
  const std::int64_t* counter_addr(std::uint32_t r, std::uint32_t col) const noexcept {
    return counters_.data() + std::size_t{r} * stride_ + col;
  }

  /// Raw counter write with a precomputed column (used by instrumented
  /// paths that separate hash cost from memory cost).
  void add_at(std::uint32_t r, std::uint32_t col, std::int64_t value) noexcept {
    counters_[std::size_t{r} * stride_ + col] += value;
    if (!dirty_.empty()) mark_dirty(r, col);
  }

  /// Per-row frequency estimate C[r][h_r(key)] * g_r(key).
  std::int64_t row_estimate(std::uint32_t r, const FlowKey& key) const noexcept {
    const std::uint64_t digest = flow_digest(key);
    const std::uint32_t col = row_hash_[r].index_of_digest(digest);
    return counters_[std::size_t{r} * stride_ + col] * sign_hash_[r].sign_of_digest(digest);
  }

  std::span<const std::int64_t> row(std::uint32_t r) const noexcept {
    return {counters_.data() + std::size_t{r} * stride_, width_};
  }

  /// Mutable row view — used by the control-plane codec to load snapshots
  /// into a replica and by epoch-difference computations.  The caller may
  /// write any counter through the span, so with tracking enabled the
  /// whole row is conservatively marked dirty.
  std::span<std::int64_t> row_mut(std::uint32_t r) noexcept {
    if (!dirty_.empty()) mark_row_dirty(r);
    return {counters_.data() + std::size_t{r} * stride_, width_};
  }

  /// Sum of squared counters of row r — the per-row L2² estimator used by
  /// the AlwaysCorrect convergence test (Algorithm 1 line 14).
  /// Neumaier-compensated: on long streams the squared heavy-hitter
  /// counters dwarf the tail's, and naive left-to-right accumulation
  /// silently drops the small terms (everything below the running sum's
  /// ulp), perturbing the T = 121(1+ε√p)ε⁻⁴p⁻² threshold comparison.
  double row_sum_squares(std::uint32_t r) const noexcept {
    double sum = 0.0;
    double comp = 0.0;
    for (std::int64_t c : row(r)) {
      const double d = static_cast<double>(c);
      const double term = d * d;
      const double t = sum + term;
      if (std::abs(sum) >= term) {
        comp += (sum - t) + term;
      } else {
        comp += (term - t) + sum;
      }
      sum = t;
    }
    return sum + comp;
  }

  /// Sum of counters of row r (equals the L1 processed by that row when
  /// updates are unsigned).
  std::int64_t row_sum(std::uint32_t r) const noexcept {
    std::int64_t s = 0;
    for (std::int64_t c : row(r)) s += c;
    return s;
  }

  void clear() noexcept {
    std::fill(counters_.begin(), counters_.end(), 0);
    // Zeroing changes every counter that was nonzero; without scanning,
    // "everything may have changed" is the only safe dirty state.
    if (!dirty_.empty()) {
      for (std::uint32_t r = 0; r < depth_; ++r) mark_row_dirty(r);
    }
  }

  /// Two matrices are mergeable iff they were constructed with the same
  /// shape, seed and signedness — i.e. they share hash functions, so
  /// corresponding counters count the same (key, row) events.
  bool mergeable_with(const CounterMatrix& other) const noexcept {
    return depth_ == other.depth_ && width_ == other.width_ &&
           seed_ == other.seed_ && signed_updates() == other.signed_updates();
  }

  /// Element-wise accumulate (epoch / per-shard merging).  Throws unless
  /// `mergeable_with(other)`: merging sketches with different hash
  /// functions silently produces garbage, so the mismatch is an error.
  /// Identical shapes imply identical strides, and padding counters are
  /// zero on both sides, so accumulating the whole padded storage is
  /// exact.
  void merge(const CounterMatrix& other) {
    if (!mergeable_with(other)) {
      throw std::invalid_argument(
          "CounterMatrix::merge: shape/seed mismatch (sketches must be "
          "constructed identically to share hash functions)");
    }
    if (dirty_.empty()) {
      for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
    } else {
      // Mark exactly the segments the merge perturbs (other != 0), so an
      // epoch-boundary shard merge keeps the next delta frame proportional
      // to traffic rather than sketch size.
      for (std::uint32_t r = 0; r < depth_; ++r) {
        const std::size_t base = std::size_t{r} * stride_;
        for (std::uint32_t c = 0; c < stride_; ++c) {
          const std::int64_t v = other.counters_[base + c];
          if (v != 0) {
            counters_[base + c] += v;
            mark_dirty(r, c);
          }
        }
      }
    }
  }

  std::size_t memory_bytes() const noexcept { return counters_.size() * sizeof(std::int64_t); }

  const RowHash& row_hash(std::uint32_t r) const noexcept { return row_hash_[r]; }
  const SignHash& sign_hash(std::uint32_t r) const noexcept { return sign_hash_[r]; }

  // --- Dirty-segment tracking (delta checkpoints, DESIGN.md §15) -------
  //
  // One bit per kSegmentCounters-counter segment per row, set by every
  // counter write and cleared only at a checkpoint frame cut.  "Dirty"
  // means "may have changed since the last clear_dirty()" — conservative
  // over-marking (row_mut, clear, merge) is always safe because the delta
  // codec overwrites touched segments onto the base rather than adding.

  /// Turn tracking on (all-dirty initially: nothing is known about the
  /// counters relative to any earlier frame).  Idempotent.
  void enable_dirty_tracking() {
    if (!dirty_.empty()) return;
    segment_words_per_row_ = (segments_per_row() + 63) / 64;
    dirty_.assign(std::size_t{depth_} * segment_words_per_row_, 0);
    for (std::uint32_t r = 0; r < depth_; ++r) mark_row_dirty(r);
  }

  bool dirty_tracking() const noexcept { return !dirty_.empty(); }

  /// Segments per row as stored (covers the padded stride, so the last
  /// segment may extend past width() into permanently-zero padding).
  std::uint32_t segments_per_row() const noexcept {
    return (stride_ + kSegmentCounters - 1) / kSegmentCounters;
  }

  bool segment_dirty(std::uint32_t r, std::uint32_t seg) const noexcept {
    const std::size_t w = std::size_t{r} * segment_words_per_row_ + seg / 64;
    return (dirty_[w] >> (seg % 64)) & 1u;
  }

  /// Frame cut: from here on, dirty bits track changes relative to the
  /// checkpoint frame the caller just serialized.
  void clear_dirty() noexcept {
    std::fill(dirty_.begin(), dirty_.end(), 0);
  }

  std::uint64_t dirty_segment_count() const noexcept {
    std::uint64_t n = 0;
    for (std::uint64_t w : dirty_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
  }

 private:
  void mark_dirty(std::uint32_t r, std::uint32_t col) noexcept {
    const std::uint32_t seg = col / kSegmentCounters;
    dirty_[std::size_t{r} * segment_words_per_row_ + seg / 64] |= std::uint64_t{1}
                                                                  << (seg % 64);
  }

  /// All-ones over the *live* segment bits of bitmap word `w` — padding
  /// bits beyond segments_per_row() stay zero, so dirty_segment_count()
  /// popcounts are exact and "mark everything" never invents segments.
  std::uint64_t live_word_mask(std::uint32_t w) const noexcept {
    const std::uint32_t segs = segments_per_row();
    const std::uint32_t first = w * 64;
    if (first + 64 <= segs) return ~std::uint64_t{0};
    return (std::uint64_t{1} << (segs - first)) - 1;
  }

  void mark_row_dirty(std::uint32_t r) noexcept {
    const std::size_t base = std::size_t{r} * segment_words_per_row_;
    for (std::uint32_t w = 0; w < segment_words_per_row_; ++w) {
      dirty_[base + w] = live_word_mask(w);
    }
  }

  std::uint32_t depth_;
  std::uint32_t width_;
  std::uint32_t stride_;
  std::uint64_t seed_;
  CacheAlignedVector<std::int64_t> counters_;
  std::vector<RowHash> row_hash_;
  std::vector<SignHash> sign_hash_;
  // Empty when tracking is off (the common case: only checkpointing
  // monitors enable it).
  std::vector<std::uint64_t> dirty_;
  std::uint32_t segment_words_per_row_ = 0;
};

}  // namespace nitro::sketch
