// Shared d x w counter structure underlying every sketch in this library.
//
// The paper's key observation (§1, §4.2) is that Count-Min, Count Sketch,
// K-ary and UnivMon's components all share the same canonical layout:
// d independent counter arrays of width w, each paired with a
// pairwise-independent index hash h_i and (for L2 sketches) a sign hash
// g_i.  Centralizing the layout lets the NitroSketch framework wrap any of
// them uniformly, and keeps rows contiguous for cache-friendly updates.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/flow_key.hpp"
#include "common/tabulation.hpp"

namespace nitro::sketch {

class CounterMatrix {
 public:
  /// `signed_updates` selects between Count-Sketch-style ±1 updates (an
  /// εL2 guarantee) and Count-Min-style +1 updates (εL1); see Algorithm 1
  /// line 3 of the paper.
  CounterMatrix(std::uint32_t depth, std::uint32_t width, std::uint64_t seed,
                bool signed_updates)
      : depth_(depth), width_(width), seed_(seed),
        counters_(std::size_t{depth} * width, 0) {
    row_hash_.reserve(depth);
    sign_hash_.reserve(depth);
    SplitMix64 sm(seed);
    for (std::uint32_t r = 0; r < depth; ++r) {
      row_hash_.emplace_back(width, sm.next());
      sign_hash_.emplace_back(sm.next(), signed_updates);
    }
  }

  std::uint32_t depth() const noexcept { return depth_; }
  std::uint32_t width() const noexcept { return width_; }
  std::uint64_t seed() const noexcept { return seed_; }
  bool signed_updates() const noexcept { return !sign_hash_.empty() && sign_hash_[0].is_signed(); }

  /// C[r][h_r(key)] += delta * g_r(key).
  void update_row(std::uint32_t r, const FlowKey& key, std::int64_t delta) noexcept {
    const std::uint64_t digest = flow_digest(key);
    update_row_digest(r, digest, delta);
  }

  /// Same as update_row but with the 64-bit digest precomputed (the
  /// buffered batch path hashes keys up front).
  void update_row_digest(std::uint32_t r, std::uint64_t digest, std::int64_t delta) noexcept {
    const std::uint32_t col = row_hash_[r].index_of_digest(digest);
    counters_[std::size_t{r} * width_ + col] += delta * sign_hash_[r].sign_of_digest(digest);
  }

  /// Raw counter write with a precomputed column (used by instrumented
  /// paths that separate hash cost from memory cost).
  void add_at(std::uint32_t r, std::uint32_t col, std::int64_t value) noexcept {
    counters_[std::size_t{r} * width_ + col] += value;
  }

  /// Per-row frequency estimate C[r][h_r(key)] * g_r(key).
  std::int64_t row_estimate(std::uint32_t r, const FlowKey& key) const noexcept {
    const std::uint64_t digest = flow_digest(key);
    const std::uint32_t col = row_hash_[r].index_of_digest(digest);
    return counters_[std::size_t{r} * width_ + col] * sign_hash_[r].sign_of_digest(digest);
  }

  std::span<const std::int64_t> row(std::uint32_t r) const noexcept {
    return {counters_.data() + std::size_t{r} * width_, width_};
  }

  /// Mutable row view — used by the control-plane codec to load snapshots
  /// into a replica and by epoch-difference computations.
  std::span<std::int64_t> row_mut(std::uint32_t r) noexcept {
    return {counters_.data() + std::size_t{r} * width_, width_};
  }

  /// Sum of squared counters of row r — the per-row L2² estimator used by
  /// the AlwaysCorrect convergence test (Algorithm 1 line 14).
  double row_sum_squares(std::uint32_t r) const noexcept {
    double s = 0.0;
    for (std::int64_t c : row(r)) {
      const double d = static_cast<double>(c);
      s += d * d;
    }
    return s;
  }

  /// Sum of counters of row r (equals the L1 processed by that row when
  /// updates are unsigned).
  std::int64_t row_sum(std::uint32_t r) const noexcept {
    std::int64_t s = 0;
    for (std::int64_t c : row(r)) s += c;
    return s;
  }

  void clear() noexcept { std::fill(counters_.begin(), counters_.end(), 0); }

  /// Two matrices are mergeable iff they were constructed with the same
  /// shape, seed and signedness — i.e. they share hash functions, so
  /// corresponding counters count the same (key, row) events.
  bool mergeable_with(const CounterMatrix& other) const noexcept {
    return depth_ == other.depth_ && width_ == other.width_ &&
           seed_ == other.seed_ && signed_updates() == other.signed_updates();
  }

  /// Element-wise accumulate (epoch / per-shard merging).  Throws unless
  /// `mergeable_with(other)`: merging sketches with different hash
  /// functions silently produces garbage, so the mismatch is an error.
  void merge(const CounterMatrix& other) {
    if (!mergeable_with(other)) {
      throw std::invalid_argument(
          "CounterMatrix::merge: shape/seed mismatch (sketches must be "
          "constructed identically to share hash functions)");
    }
    for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  }

  std::size_t memory_bytes() const noexcept { return counters_.size() * sizeof(std::int64_t); }

  const RowHash& row_hash(std::uint32_t r) const noexcept { return row_hash_[r]; }
  const SignHash& sign_hash(std::uint32_t r) const noexcept { return sign_hash_[r]; }

 private:
  std::uint32_t depth_;
  std::uint32_t width_;
  std::uint64_t seed_;
  std::vector<std::int64_t> counters_;
  std::vector<RowHash> row_hash_;
  std::vector<SignHash> sign_hash_;
};

}  // namespace nitro::sketch
