// Streaming entropy estimation (Lall, Sekar, Ogihara, Xu & Zhang,
// SIGMETRICS 2006) — the specialized entropy substrate the paper cites
// for task 4 ([52]).
//
// AMS-style estimator for Σ f log f: z sampled stream positions; for each,
// count the tail occurrences r of the sampled flow after its position;
// the unbiased per-sample estimate is m·(r·log r − (r−1)·log(r−1)).
// Entropy H = log(m) − E[X]/m.  Used as an accuracy reference against
// UnivMon's G-sum entropy in tests and experiments.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"
#include "common/rng.hpp"

namespace nitro::sketch {

class EntropySketch {
 public:
  /// `samples` = z, the estimator count (error ~ 1/sqrt(z)).  Positions
  /// are chosen by reservoir sampling, so the stream length need not be
  /// known in advance.
  EntropySketch(std::size_t samples, std::uint64_t seed)
      : target_(samples), rng_(mix64(seed ^ 0xe47ULL)) {
    slots_.reserve(samples);
  }

  void update(const FlowKey& key) {
    ++m_;
    // Grow tail counters of slots already tracking this flow.
    auto range = by_key_.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      slots_[it->second].tail += 1;
    }
    // Reservoir step: position m_ replaces a random slot w.p. z/m_.
    if (slots_.size() < target_) {
      add_slot(key);
    } else if (rng_.next_double() <
               static_cast<double>(target_) / static_cast<double>(m_)) {
      replace_slot(rng_.next_below(static_cast<std::uint32_t>(slots_.size())), key);
    }
  }

  /// Entropy of the flow-size distribution, in bits.
  double estimate() const {
    if (m_ == 0 || slots_.empty()) return 0.0;
    const double m = static_cast<double>(m_);
    double sum = 0.0;
    for (const auto& s : slots_) {
      const double r = static_cast<double>(s.tail);
      const double x =
          m * (r * std::log2(r) - (r - 1.0) * ((r > 1.0) ? std::log2(r - 1.0) : 0.0));
      sum += x;
    }
    const double mean_x = sum / static_cast<double>(slots_.size());
    const double h = std::log2(m) - mean_x / m;
    return std::max(h, 0.0);
  }

  std::uint64_t stream_length() const noexcept { return m_; }
  std::size_t sample_count() const noexcept { return slots_.size(); }
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           by_key_.size() * (sizeof(FlowKey) + sizeof(std::size_t) + 16);
  }

 private:
  struct Slot {
    FlowKey key;
    std::int64_t tail = 1;  // occurrences from the sampled position onward
  };

  void add_slot(const FlowKey& key) {
    slots_.push_back({key, 1});
    by_key_.emplace(key, slots_.size() - 1);
  }

  void replace_slot(std::size_t idx, const FlowKey& key) {
    // Drop the old key -> idx mapping.
    auto range = by_key_.equal_range(slots_[idx].key);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == idx) {
        by_key_.erase(it);
        break;
      }
    }
    slots_[idx] = {key, 1};
    by_key_.emplace(key, idx);
  }

  std::size_t target_;
  Pcg32 rng_;
  std::uint64_t m_ = 0;
  std::vector<Slot> slots_;
  std::unordered_multimap<FlowKey, std::size_t> by_key_;
};

}  // namespace nitro::sketch
