// Misra-Gries frequent-items summary (Misra & Gries, 1982).
//
// Deterministic k-counter summary with error ≤ L1/k per key.  It is the
// algorithmic core of SketchVisor's fast path (§2, [43][63]) and a useful
// exact-ish baseline for small key sets.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::sketch {

class MisraGries {
 public:
  explicit MisraGries(std::size_t capacity) : capacity_(capacity) {
    counters_.reserve(capacity * 2);
  }

  void update(const FlowKey& key, std::int64_t count = 1) {
    total_ += count;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second += count;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, count);
      return;
    }
    // Decrement-all step: subtract the smallest stored count (classic MG
    // batches the unit decrements; subtracting min keeps amortized O(1)).
    std::int64_t dec = count;
    for (const auto& [k, v] : counters_) dec = std::min(dec, v);
    for (auto it2 = counters_.begin(); it2 != counters_.end();) {
      it2->second -= dec;
      if (it2->second <= 0) {
        it2 = counters_.erase(it2);
      } else {
        ++it2;
      }
    }
    if (count > dec) counters_.emplace(key, count - dec);
  }

  /// Lower-bound estimate; true count is within [est, est + total/capacity].
  std::int64_t query(const FlowKey& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  std::int64_t total() const noexcept { return total_; }
  std::size_t size() const noexcept { return counters_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  const std::unordered_map<FlowKey, std::int64_t>& entries() const noexcept {
    return counters_;
  }

  void clear() {
    counters_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::int64_t total_ = 0;
  std::unordered_map<FlowKey, std::int64_t> counters_;
};

}  // namespace nitro::sketch
