// Count Sketch (Charikar, Chen & Farach-Colton, 2002).
//
// d rows of w counters with ±1 sign hashes; Query returns the median of
// the per-row signed estimates.  Unbiased, with |f̂_x - f_x| ≤ εL2 w.h.p.
// for w = O(ε⁻²), d = O(log 1/δ).  The row structure doubles as an L2-norm
// estimator (median of per-row Σ C² — used by AlwaysCorrect convergence).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/math_util.hpp"
#include "sketch/counter_matrix.hpp"

namespace nitro::sketch {

class CountSketch {
 public:
  CountSketch(std::uint32_t depth, std::uint32_t width, std::uint64_t seed)
      : matrix_(depth, width, seed, /*signed_updates=*/true) {}

  void update(const FlowKey& key, std::int64_t count = 1) noexcept {
    for (std::uint32_t r = 0; r < matrix_.depth(); ++r) matrix_.update_row(r, key, count);
  }

  /// Point query: median over the per-row signed estimates.  Only local
  /// scratch — concurrent const queries on a shared immutable sketch are
  /// thread-safe (the collector's query plane renders /flow and /change
  /// from one shared generation across handler threads).
  std::int64_t query(const FlowKey& key) const noexcept {
    constexpr std::uint32_t kStackRows = 16;
    const std::uint32_t d = matrix_.depth();
    std::int64_t stack_buf[kStackRows];
    std::vector<std::int64_t> heap_buf;
    std::int64_t* est = stack_buf;
    if (d > kStackRows) {
      heap_buf.resize(d);
      est = heap_buf.data();
    }
    for (std::uint32_t r = 0; r < d; ++r) est[r] = matrix_.row_estimate(r, key);
    return median_in_place(std::span<std::int64_t>(est, d));
  }

  /// (1+ε)-approximate L2² of the processed stream: median over rows of
  /// the row's sum of squared counters (AMS-style; paper §4.3 and Lemma 6).
  double l2_squared_estimate() const noexcept {
    std::vector<double> sums;
    sums.reserve(matrix_.depth());
    for (std::uint32_t r = 0; r < matrix_.depth(); ++r) {
      sums.push_back(matrix_.row_sum_squares(r));
    }
    return median(sums);
  }

  double l2_estimate() const noexcept { return std::sqrt(l2_squared_estimate()); }

  void clear() noexcept { matrix_.clear(); }
  void merge(const CountSketch& other) { matrix_.merge(other.matrix_); }

  std::uint32_t depth() const noexcept { return matrix_.depth(); }
  std::uint32_t width() const noexcept { return matrix_.width(); }
  std::size_t memory_bytes() const noexcept { return matrix_.memory_bytes(); }

  CounterMatrix& matrix() noexcept { return matrix_; }
  const CounterMatrix& matrix() const noexcept { return matrix_; }

 private:
  CounterMatrix matrix_;
};

}  // namespace nitro::sketch
