// Top-K heavy-key store ("TopKeys" in the paper's figures).
//
// Sketches only answer point queries; to report heavy hitters you must
// also remember *which* keys are heavy.  The classic companion structure
// is a min-heap of the K largest estimates plus a membership hash map
// (paper Bottleneck 3).  NitroSketch reduces its cost by consulting it
// only on sampled updates.
//
// Layout: stable entries + a heap of ids + a position table so heap sifts
// move 32-bit ids without re-hashing keys.  Untracked mice that cannot
// displace the current minimum are rejected after a single hash-map probe;
// tracked keys are always refreshed, in either direction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::sketch {

class TopKHeap {
 public:
  struct Entry {
    FlowKey key;
    std::int64_t estimate = 0;
  };

  /// `admission_margin` is the churn-guard hysteresis (DESIGN.md §16): an
  /// untracked key must beat the full heap's minimum by more than the
  /// margin to evict it.  0 keeps the classic displace-on-any-improvement
  /// behavior; a positive margin makes a churn storm of one-hit flows —
  /// whose sketch estimates hover just above the minimum on collision
  /// noise — unable to grind real heavy hitters out of the heap.
  explicit TopKHeap(std::size_t capacity, std::int64_t admission_margin = 0)
      : capacity_(capacity), margin_(admission_margin) {
    entries_.reserve(capacity);
    heap_.reserve(capacity);
    pos_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::int64_t admission_margin() const noexcept { return margin_; }

  /// Evictions of a tracked key by an untracked one since construction or
  /// clear().  The heap-churn velocity signal: a fresh per-epoch heap that
  /// evicts orders of magnitude more than the benign baseline is under a
  /// churn storm.
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Untracked keys that beat the minimum but not the admission margin.
  std::uint64_t margin_rejects() const noexcept { return margin_rejects_; }

  /// Offer a (key, fresh-estimate) pair.  If the key is tracked its
  /// estimate is refreshed; otherwise it displaces the current minimum
  /// when larger by more than the admission margin.  O(log K) worst case,
  /// O(1) for rejected mice.
  void offer(const FlowKey& key, std::int64_t estimate) {
    auto it = index_.find(key);
    // Reject only *untracked* keys at or below the full heap's admission
    // bar: they cannot (or, within the hysteresis margin, may not)
    // displace anything.  Tracked keys must fall through so a lower fresh
    // estimate still refreshes the stored one downward (the branch below
    // sifts in both directions).
    if (it == index_.end() && entries_.size() == capacity_) {
      if (estimate <= min_estimate()) return;
      if (estimate <= min_estimate() + margin_) {
        ++margin_rejects_;
        return;
      }
    }
    if (it != index_.end()) {
      const std::uint32_t id = it->second;
      if (estimate > entries_[id].estimate) {
        entries_[id].estimate = estimate;
        sift_down(pos_[id]);
      } else if (estimate < entries_[id].estimate) {
        entries_[id].estimate = estimate;
        sift_up(pos_[id]);
      }
      return;
    }
    if (entries_.size() < capacity_) {
      const auto id = static_cast<std::uint32_t>(entries_.size());
      entries_.push_back({key, estimate});
      heap_.push_back(id);
      pos_.push_back(static_cast<std::uint32_t>(heap_.size() - 1));
      index_.emplace(key, id);
      sift_up(heap_.size() - 1);
      return;
    }
    if (capacity_ == 0) return;
    ++evictions_;
    const std::uint32_t id = heap_[0];
    index_.erase(entries_[id].key);
    entries_[id] = {key, estimate};
    index_.emplace(key, id);
    sift_down(0);
  }

  bool contains(const FlowKey& key) const { return index_.count(key) != 0; }

  /// Union-merge: offer every entry tracked by `other`, keeping this heap's
  /// capacity.  With the default identity re-estimator the other heap's
  /// stored estimates are taken as-is; shard merges pass a callable that
  /// re-queries each key against the merged counters (a per-shard estimate
  /// undercounts a key whose packets were split across shards).
  template <typename Reestimate>
  void merge(const TopKHeap& other, Reestimate&& estimate_of) {
    for (const auto& e : other.entries_) offer(e.key, estimate_of(e.key, e.estimate));
  }

  void merge(const TopKHeap& other) {
    merge(other, [](const FlowKey&, std::int64_t est) { return est; });
  }

  std::int64_t min_estimate() const noexcept {
    return heap_.empty() ? 0 : entries_[heap_[0]].estimate;
  }

  /// All tracked entries, largest first.  Ties break on the key so the
  /// order — and therefore any serialization built from it — is canonical:
  /// two heaps holding the same (key, estimate) set produce identical
  /// bytes regardless of insertion history.
  std::vector<Entry> entries_sorted() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.estimate != b.estimate) return a.estimate > b.estimate;
      return a.key < b.key;
    });
    return out;
  }

  void clear() {
    entries_.clear();
    heap_.clear();
    pos_.clear();
    index_.clear();
    evictions_ = 0;
    margin_rejects_ = 0;
  }

  /// Approximate resident memory, for the Figure 13b comparison.
  std::size_t memory_bytes() const noexcept {
    return entries_.capacity() * sizeof(Entry) +
           heap_.capacity() * sizeof(std::uint32_t) * 2 +
           index_.size() * (sizeof(FlowKey) + sizeof(std::uint32_t) + 16);
  }

 private:
  /// Strict total order: estimate, ties broken on the key.  The tie-break
  /// matters for reproducibility — it makes the heap minimum (and hence
  /// *which* tracked key an eviction removes) a function of the tracked
  /// (key, estimate) set alone, never of the internal array layout.  A
  /// heap rebuilt from a checkpoint in canonical order then evolves
  /// bit-identically to the live heap it was saved from.
  bool id_less(std::uint32_t a, std::uint32_t b) const {
    if (entries_[a].estimate != entries_[b].estimate) {
      return entries_[a].estimate < entries_[b].estimate;
    }
    return entries_[a].key < entries_[b].key;
  }

  void place(std::size_t heap_idx, std::uint32_t id) {
    heap_[heap_idx] = id;
    pos_[id] = static_cast<std::uint32_t>(heap_idx);
  }

  void sift_up(std::size_t i) {
    const std::uint32_t id = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!id_less(id, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, id);
  }

  void sift_down(std::size_t i) {
    const std::uint32_t id = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && id_less(heap_[child + 1], heap_[child])) ++child;
      if (!id_less(heap_[child], id)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, id);
  }

  std::size_t capacity_;
  std::int64_t margin_ = 0;          // churn-guard admission hysteresis
  std::uint64_t evictions_ = 0;      // untracked-displaces-tracked events
  std::uint64_t margin_rejects_ = 0;
  std::vector<Entry> entries_;       // stable entry storage
  std::vector<std::uint32_t> heap_;  // min-heap of entry ids, (estimate, key) order
  std::vector<std::uint32_t> pos_;   // entry id -> heap index
  std::unordered_map<FlowKey, std::uint32_t> index_;  // key -> entry id
};

}  // namespace nitro::sketch
