// HyperLogLog (Flajolet et al., 2007) — cardinality estimation substrate.
//
// The paper lists counting distinct flows among the measurement tasks
// sketches serve ([6, 7, 55]).  UnivMon answers it through a G-sum; HLL is
// the standard special-purpose structure and serves as the reference
// baseline for the distinct-count experiments.  2^precision 6-bit
// registers; standard bias correction for the small- and large-range
// regimes.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"

namespace nitro::sketch {

class HyperLogLog {
 public:
  /// `precision` in [4, 18]: 2^precision registers (~0.5KB at 12).
  explicit HyperLogLog(std::uint32_t precision = 12, std::uint64_t seed = 0)
      : precision_(precision), seed_(seed), registers_(1u << precision, 0) {}

  void update(const FlowKey& key) {
    const std::uint64_t h = mix64(flow_digest(key) ^ seed_);
    const std::uint32_t idx = static_cast<std::uint32_t>(h >> (64 - precision_));
    // Rank of the first set bit in the remaining 64-p bits (1-based).
    const std::uint64_t rest = (h << precision_) | (1ull << (precision_ - 1));
    const auto rank = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  double estimate() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0.0;
    std::uint32_t zeros = 0;
    for (std::uint8_t r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double alpha = alpha_for(registers_.size());
    double est = alpha * m * m / sum;
    if (est <= 2.5 * m && zeros != 0) {
      // Small-range correction: linear counting.
      est = m * std::log(m / static_cast<double>(zeros));
    } else if (est > (1.0 / 30.0) * 4294967296.0) {
      // Large-range correction (32-bit hash-space convention).
      est = -4294967296.0 * std::log1p(-est / 4294967296.0);
    }
    return est;
  }

  /// Registers merge by max: union semantics across switches.
  void merge(const HyperLogLog& other) {
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] = std::max(registers_[i], other.registers_[i]);
    }
  }

  void clear() { std::fill(registers_.begin(), registers_.end(), 0); }

  std::uint32_t precision() const noexcept { return precision_; }
  std::size_t memory_bytes() const noexcept { return registers_.size(); }

 private:
  static double alpha_for(std::size_t m) {
    if (m <= 16) return 0.673;
    if (m <= 32) return 0.697;
    if (m <= 64) return 0.709;
    return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }

  std::uint32_t precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace nitro::sketch
