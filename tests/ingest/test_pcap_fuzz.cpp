// Adversarial inputs for the pcap parser (satellite of ROADMAP item 1).
//
// The parser's contract: every malformed capture is rejected with a loud
// std::runtime_error naming the offending offset, and no input — however
// mangled — makes it read outside the byte span.  The structured cases
// below pin each validation branch; the mutation sweep at the end drives
// thousands of random corruptions through the cursor and relies on ASan
// (tier-1 runs this suite under NITRO_SANITIZE=address in CI) to catch
// any out-of-bounds access.
#include "ingest/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.hpp"
#include "ingest/frame.hpp"
#include "ingest/mmap_replay.hpp"
#include "trace/workloads.hpp"

namespace nitro::ingest {
namespace {

class Bytes {
 public:
  explicit Bytes(bool big_endian = false) : big_(big_endian) {}

  Bytes& u16(std::uint16_t v) {
    if (big_) {
      data_.push_back(static_cast<std::uint8_t>(v >> 8));
      data_.push_back(static_cast<std::uint8_t>(v));
    } else {
      data_.push_back(static_cast<std::uint8_t>(v));
      data_.push_back(static_cast<std::uint8_t>(v >> 8));
    }
    return *this;
  }
  Bytes& u32(std::uint32_t v) {
    if (big_) {
      for (int s = 24; s >= 0; s -= 8)
        data_.push_back(static_cast<std::uint8_t>(v >> s));
    } else {
      for (int s = 0; s <= 24; s += 8)
        data_.push_back(static_cast<std::uint8_t>(v >> s));
    }
    return *this;
  }
  Bytes& raw(const std::uint8_t* p, std::size_t n) {
    data_.insert(data_.end(), p, p + n);
    return *this;
  }
  Bytes& fill(std::size_t n, std::uint8_t b) {
    data_.insert(data_.end(), n, b);
    return *this;
  }

  /// Standard global header with the given magic/snaplen/linktype.
  Bytes& global_header(std::uint32_t magic, std::uint32_t snaplen = 65535,
                       std::uint32_t linktype = kPcapLinktypeEthernet) {
    return u32(magic).u16(2).u16(4).u32(0).u32(0).u32(snaplen).u32(linktype);
  }

  std::span<const std::uint8_t> span() const { return data_; }
  std::vector<std::uint8_t>& vec() { return data_; }

 private:
  std::vector<std::uint8_t> data_;
  bool big_;
};

std::uint8_t sample_frame_bytes[kFrameHeaderBytes];

trace::PacketRecord sample_record() {
  trace::PacketRecord rec;
  rec.key = trace::flow_key_for_rank(1, 2);
  rec.wire_bytes = 512;
  rec.ts_ns = 3'000'000'123ull;
  return rec;
}

TEST(PcapFuzz, EmptyInputThrows) {
  EXPECT_THROW(parse_pcap_header({}), std::runtime_error);
}

TEST(PcapFuzz, TruncatedGlobalHeaderThrowsAtEveryLength) {
  Bytes b;
  b.global_header(kPcapMagicNanos);
  for (std::size_t len = 0; len < kPcapGlobalHeaderBytes; ++len) {
    EXPECT_THROW(parse_pcap_header(b.span().subspan(0, len)), std::runtime_error)
        << len;
  }
  EXPECT_NO_THROW(parse_pcap_header(b.span()));
}

TEST(PcapFuzz, UnknownMagicThrows) {
  for (std::uint32_t magic : {0u, 0xdeadbeefu, 0xa1b2c3d5u, 0x0a0d0d0au}) {
    Bytes b;
    b.global_header(magic);
    EXPECT_THROW(parse_pcap_header(b.span()), std::runtime_error) << magic;
  }
}

TEST(PcapFuzz, AllFourMagicVariantsParse) {
  struct Case {
    std::uint32_t magic;
    bool big;
    bool want_swapped;
    bool want_nanos;
  };
  // A little-endian host reads a big-endian-written file as "swapped".
  const Case cases[] = {
      {kPcapMagicMicros, false, false, false},
      {kPcapMagicNanos, false, false, true},
      {kPcapMagicMicros, true, true, false},
      {kPcapMagicNanos, true, true, true},
  };
  for (const auto& c : cases) {
    Bytes b(c.big);
    b.global_header(c.magic, 4096);
    const auto info = parse_pcap_header(b.span());
    EXPECT_EQ(info.swapped, c.want_swapped) << c.magic;
    EXPECT_EQ(info.nanos, c.want_nanos) << c.magic;
    EXPECT_EQ(info.snaplen, 4096u);
    EXPECT_EQ(info.linktype, kPcapLinktypeEthernet);
  }
}

TEST(PcapFuzz, NonEthernetLinkTypesThrow) {
  // 101 = RAW, 113 = LINUX_SLL, 127 = IEEE802_11_RADIOTAP, 0xffffffff.
  for (std::uint32_t lt : {0u, 101u, 113u, 127u, 0xffffffffu}) {
    Bytes b;
    b.global_header(kPcapMagicMicros, 65535, lt);
    EXPECT_THROW(parse_pcap_header(b.span()), std::runtime_error) << lt;
  }
}

TEST(PcapFuzz, TruncatedRecordHeaderThrows) {
  write_frame(sample_record(), sample_frame_bytes);
  for (std::size_t partial = 1; partial < kPcapRecordHeaderBytes; ++partial) {
    Bytes b;
    b.global_header(kPcapMagicNanos);
    b.fill(partial, 0x01);  // a few bytes of a record header, then EOF
    PcapCursor cur(b.span());
    PcapRecord rec;
    EXPECT_THROW((void)cur.next(rec), std::runtime_error) << partial;
  }
}

TEST(PcapFuzz, CaplenAboveSnaplenThrows) {
  Bytes b;
  b.global_header(kPcapMagicNanos, /*snaplen=*/64);
  b.u32(0).u32(0).u32(65).u32(65);  // caplen 65 > snaplen 64
  b.fill(65, 0xaa);                 // payload actually present
  PcapCursor cur(b.span());
  PcapRecord rec;
  EXPECT_THROW((void)cur.next(rec), std::runtime_error);
}

TEST(PcapFuzz, RecordStraddlingEndOfCaptureThrows) {
  // Record header claims 1000 payload bytes but the capture ends after 10.
  Bytes b;
  b.global_header(kPcapMagicNanos);
  b.u32(1).u32(2).u32(1000).u32(1000);
  b.fill(10, 0xbb);
  PcapCursor cur(b.span());
  PcapRecord rec;
  EXPECT_THROW((void)cur.next(rec), std::runtime_error);
}

TEST(PcapFuzz, HugeCaplenDoesNotWrapBoundsCheck) {
  // 0xffffffff caplen must not overflow the arithmetic in the straddle
  // check into a false "fits".
  Bytes b;
  b.global_header(kPcapMagicNanos, /*snaplen=*/0xffffffffu);
  b.u32(0).u32(0).u32(0xffffffffu).u32(0xffffffffu);
  PcapCursor cur(b.span());
  PcapRecord rec;
  EXPECT_THROW((void)cur.next(rec), std::runtime_error);
}

TEST(PcapFuzz, SwappedFileRecordsDecodeCorrectly) {
  // A big-endian-written capture: every header field byte-swapped, frame
  // bytes as-is (they're defined big-endian on the wire already).
  const auto rec_in = sample_record();
  write_frame(rec_in, sample_frame_bytes);
  Bytes b(/*big_endian=*/true);
  b.global_header(kPcapMagicNanos);
  b.u32(3).u32(123).u32(kFrameHeaderBytes).u32(rec_in.wire_bytes);
  b.raw(sample_frame_bytes, kFrameHeaderBytes);

  PcapCursor cur(b.span());
  ASSERT_TRUE(cur.info().swapped);
  PcapRecord rec;
  ASSERT_TRUE(cur.next(rec));
  EXPECT_EQ(rec.caplen, kFrameHeaderBytes);
  EXPECT_EQ(rec.orig_len, rec_in.wire_bytes);
  EXPECT_EQ(rec.ts_ns, rec_in.ts_ns);
  FlowKey key;
  ASSERT_TRUE(decode_frame(rec.data, rec.caplen, key));
  EXPECT_EQ(key, rec_in.key);
  EXPECT_FALSE(cur.next(rec));
}

TEST(PcapFuzz, MicrosecondTimestampsScaleToNanos) {
  Bytes b;
  b.global_header(kPcapMagicMicros);
  b.u32(7).u32(250'000).u32(0).u32(0);  // 7.25s, empty frame
  PcapCursor cur(b.span());
  PcapRecord rec;
  ASSERT_TRUE(cur.next(rec));
  EXPECT_EQ(rec.ts_ns, 7'250'000'000ull);
}

TEST(PcapFuzz, WritePcapRoundTripsThroughCursor) {
  trace::WorkloadSpec spec;
  spec.packets = 200;
  spec.flows = 20;
  spec.seed = 11;
  const auto stream = trace::caida_like(spec);
  const auto path =
      (std::filesystem::temp_directory_path() / "nitro_fuzz_roundtrip.pcap")
          .string();
  write_pcap(path, stream);

  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  PcapCursor cur(bytes);
  EXPECT_TRUE(cur.info().nanos);
  PcapRecord rec;
  std::size_t i = 0;
  while (cur.next(rec)) {
    ASSERT_LT(i, stream.size());
    EXPECT_EQ(rec.caplen, kFrameHeaderBytes);
    EXPECT_EQ(rec.orig_len, stream[i].wire_bytes);
    EXPECT_EQ(rec.ts_ns, stream[i].ts_ns);
    FlowKey key;
    ASSERT_TRUE(decode_frame(rec.data, rec.caplen, key));
    EXPECT_EQ(key, stream[i].key);
    ++i;
  }
  EXPECT_EQ(i, stream.size());
  std::filesystem::remove(path);
}

TEST(PcapFuzz, MmapReplayRejectsMalformedFilesAtConstruction) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  auto write_file = [&](const char* name, const std::vector<std::uint8_t>& v) {
    const auto p = (dir / name).string();
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size()));
    return p;
  };

  Bytes garbage;
  garbage.fill(100, 0x5a);
  Bytes truncated;
  truncated.global_header(kPcapMagicNanos);
  truncated.u32(0).u32(0).u32(500).u32(500);  // straddles: no payload
  Bytes raw_linktype;
  raw_linktype.global_header(kPcapMagicMicros, 65535, /*linktype=*/101);

  const auto p1 = write_file("nitro_fuzz_garbage.pcap", garbage.vec());
  const auto p2 = write_file("nitro_fuzz_straddle.pcap", truncated.vec());
  const auto p3 = write_file("nitro_fuzz_linktype.pcap", raw_linktype.vec());
  EXPECT_THROW(MmapReplayBackend b(p1), std::runtime_error);
  EXPECT_THROW(MmapReplayBackend b(p2), std::runtime_error);
  EXPECT_THROW(MmapReplayBackend b(p3), std::runtime_error);
  EXPECT_THROW(MmapReplayBackend b((dir / "nitro_fuzz_missing.pcap").string()),
               std::runtime_error);
  for (const auto& p : {p1, p2, p3}) fs::remove(p);
}

TEST(PcapFuzz, RandomMutationsNeverEscapeTheSpan) {
  // Deterministic mutation sweep: corrupt a valid capture (byte flips,
  // truncations, field stomps) and walk it to completion or first throw.
  // The assertion is implicit — under ASan any out-of-bounds read aborts
  // the test binary.
  trace::WorkloadSpec spec;
  spec.packets = 64;
  spec.flows = 8;
  spec.seed = 3;
  const auto stream = trace::caida_like(spec);
  Bytes valid;
  valid.global_header(kPcapMagicNanos);
  for (const auto& r : stream) {
    std::uint8_t frame[kFrameHeaderBytes];
    write_frame(r, frame);
    valid.u32(static_cast<std::uint32_t>(r.ts_ns / 1'000'000'000ull))
        .u32(static_cast<std::uint32_t>(r.ts_ns % 1'000'000'000ull))
        .u32(kFrameHeaderBytes)
        .u32(r.wire_bytes)
        .raw(frame, kFrameHeaderBytes);
  }

  Pcg32 rng(0xf22d);
  std::size_t clean = 0, rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    std::vector<std::uint8_t> mut = valid.vec();
    // 1-8 byte stomps anywhere in the capture.
    const std::uint32_t stomps = 1 + rng.next_below(8);
    for (std::uint32_t s = 0; s < stomps; ++s) {
      mut[rng.next_below(static_cast<std::uint32_t>(mut.size()))] =
          static_cast<std::uint8_t>(rng.next());
    }
    // Half the rounds also truncate at a random point.
    if (rng.next_below(2) == 0) {
      mut.resize(rng.next_below(static_cast<std::uint32_t>(mut.size()) + 1));
    }
    try {
      PcapCursor cur(mut);
      PcapRecord rec;
      FlowKey key;
      while (cur.next(rec)) {
        // Touch every byte the parser handed out — this is where an OOB
        // pointer would trip ASan.
        (void)decode_frame(rec.data, rec.caplen, key);
        std::uint64_t sum = 0;
        for (std::uint32_t i = 0; i < rec.caplen; ++i) sum += rec.data[i];
        (void)sum;
      }
      ++clean;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // The sweep must exercise both outcomes to mean anything.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace nitro::ingest
