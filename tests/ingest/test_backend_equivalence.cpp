// Backend equivalence: the property the whole ingest layer hangs off.
//
// The same trace driven through the synth wrapper, the mmap'd capture
// replay (pcap and NTR1), and the burst-RX shim must leave bit-identical
// sketch state — same counters, same packet and sample tallies.  The
// backends may differ in how bytes reach the consumer (materialized
// records, an mmap'd capture, hugepage frames behind an SPSC ring) but
// every one of them must deliver the identical decoded packet sequence,
// and the update path downstream of next_burst() is already bit-exact
// (update_burst identity, PR 2).  Also covered: epoch budgets that cut
// mid-burst, and mid-stream kDegrade probability drops — both must land
// on the same packet for every backend.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/nitro_sketch.hpp"
#include "ingest/factory.hpp"
#include "ingest/ingest_loop.hpp"
#include "ingest/mmap_replay.hpp"
#include "ingest/pcap.hpp"
#include "ingest/shim.hpp"
#include "ingest/synth_backend.hpp"
#include "sketch/count_min.hpp"
#include "switchsim/measurement.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace nitro::ingest {
namespace {

using Nitro = core::NitroSketch<sketch::CountMinSketch>;

core::NitroConfig nitro_config() {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  return cfg;
}

Nitro make_nitro() { return Nitro(sketch::CountMinSketch(5, 2048, 31), nitro_config()); }

trace::Trace test_trace(std::size_t packets = 50'000) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 2'000;
  spec.seed = 23;
  return trace::caida_like(spec);
}

std::string temp_file(const char* name) {
  // ctest runs each TEST as its own process, possibly in parallel; key the
  // path on the pid so concurrent fixtures never clobber each other's
  // capture files.
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

/// Drive `backend` to EOF through the run-to-completion loop, optionally
/// splitting at the given packet offsets (epoch boundaries: flush +
/// finish between segments) and applying kDegrade level bumps at them.
void drive(IngestBackend& backend, Nitro& nitro,
           const std::vector<std::uint64_t>& epoch_splits = {},
           bool degrade_at_splits = false) {
  switchsim::InlineMeasurement<Nitro> meas(nitro);
  IngestLoop loop(backend, meas);
  std::uint64_t cursor = 0;
  for (const auto split : epoch_splits) {
    ASSERT_GE(split, cursor);
    loop.run(split - cursor);
    meas.finish();
    nitro.flush();  // epoch barrier: queries observe every packet
    if (degrade_at_splits) nitro.apply_degradation(1);
    cursor = split;
  }
  loop.run();
  meas.finish();
  nitro.flush();
}

void expect_identical(const Nitro& a, const Nitro& b, const char* label) {
  EXPECT_EQ(a.packets(), b.packets()) << label;
  EXPECT_EQ(a.sampled_updates(), b.sampled_updates()) << label;
  const auto& ma = a.base().matrix();
  const auto& mb = b.base().matrix();
  ASSERT_EQ(ma.depth(), mb.depth()) << label;
  for (std::uint32_t r = 0; r < ma.depth(); ++r) {
    const auto ra = ma.row(r);
    const auto rb = mb.row(r);
    ASSERT_EQ(ra.size(), rb.size()) << label;
    for (std::size_t c = 0; c < ra.size(); ++c) {
      ASSERT_EQ(ra[c], rb[c]) << label << " row " << r << " col " << c;
    }
  }
}

class BackendEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    stream_ = test_trace();
    pcap_path_ = temp_file("nitro_equiv.pcap");
    ntr_path_ = temp_file("nitro_equiv.ntr");
    write_pcap(pcap_path_, stream_);
    trace::save_trace(ntr_path_, stream_);
  }
  void TearDown() override {
    std::filesystem::remove(pcap_path_);
    std::filesystem::remove(ntr_path_);
  }

  /// Synth is the reference; every other backend must match it bit-exactly.
  void run_all(const std::vector<std::uint64_t>& splits = {},
               bool degrade = false) {
    Nitro ref = make_nitro();
    {
      SynthReplayBackend synth(stream_);
      drive(synth, ref, splits, degrade);
    }
    {
      Nitro n = make_nitro();
      MmapReplayBackend pcap(pcap_path_);
      EXPECT_STREQ(pcap.name(), "pcap");
      drive(pcap, n, splits, degrade);
      EXPECT_EQ(pcap.parse_errors(), 0u);
      expect_identical(ref, n, "pcap");
    }
    {
      Nitro n = make_nitro();
      MmapReplayBackend ntr(ntr_path_);
      EXPECT_STREQ(ntr.name(), "ntr");
      drive(ntr, n, splits, degrade);
      expect_identical(ref, n, "ntr");
    }
    {
      Nitro n = make_nitro();
      BurstRxShim shim(stream_);
      drive(shim, n, splits, degrade);
      EXPECT_EQ(shim.parse_errors(), 0u);
      expect_identical(ref, n, "shim");
    }
  }

  trace::Trace stream_;
  std::string pcap_path_;
  std::string ntr_path_;
};

TEST_F(BackendEquivalence, SingleEpochBitIdenticalAcrossAllBackends) {
  run_all();
}

TEST_F(BackendEquivalence, MidBurstEpochBoundariesPreserveIdentity) {
  // Splits deliberately off any burst multiple (32): boundaries land
  // mid-burst, forcing the loop's budget-shrunken bursts.  Identity must
  // survive the different flush cadence.
  run_all({7, 12'345, 33'333});
}

TEST_F(BackendEquivalence, DegradationAtEpochBoundariesPreservesIdentity) {
  // kDegrade drops the geometric sampler's probability mid-stream.  The
  // resample must happen at the same packet for every backend, so state
  // stays identical even though the sampling schedule changed twice.
  run_all({10'000, 30'001}, /*degrade_at_splits=*/true);
}

TEST_F(BackendEquivalence, ReplayLoopMatchesConcatenatedTrace) {
  // --replay-loop 3 over the file == synth replay of the trace appended
  // three times.
  trace::Trace tripled;
  for (int i = 0; i < 3; ++i)
    tripled.insert(tripled.end(), stream_.begin(), stream_.end());
  Nitro ref = make_nitro();
  {
    SynthReplayBackend synth(tripled);
    drive(synth, ref);
  }
  ReplayOptions opts;
  opts.loop = 3;
  {
    Nitro n = make_nitro();
    MmapReplayBackend pcap(pcap_path_, opts);
    EXPECT_EQ(pcap.size_hint(), tripled.size());
    drive(pcap, n);
    expect_identical(ref, n, "pcap loop=3");
  }
  {
    Nitro n = make_nitro();
    ShimOptions sopts;
    sopts.loop = 3;
    BurstRxShim shim(stream_, sopts);
    drive(shim, n);
    expect_identical(ref, n, "shim loop=3");
  }
}

TEST_F(BackendEquivalence, FactorySpecsResolveToSameState) {
  Nitro ref = make_nitro();
  {
    auto b = make_backend("synth", stream_);
    drive(*b, ref);
  }
  for (const std::string& spec :
       {std::string("shim"), "pcap:" + pcap_path_, "file:" + ntr_path_}) {
    Nitro n = make_nitro();
    auto b = make_backend(spec, stream_);
    drive(*b, n);
    expect_identical(ref, n, spec.c_str());
  }
}

TEST(BackendEquivalenceUnits, TimestampsSurviveEveryBackend) {
  // The epoch driver stamps bursts with the last packet's ts_ns; pcap
  // (nanosecond magic) and the shim must both carry timestamps through
  // without truncation.
  auto stream = test_trace(1'000);
  const auto pcap_path = temp_file("nitro_equiv_ts.pcap");
  write_pcap(pcap_path, stream);

  auto collect = [](IngestBackend& b) {
    std::vector<std::uint64_t> ts;
    PacketView views[64];
    for (;;) {
      const std::size_t n = b.next_burst(views, 64);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) ts.push_back(views[i].ts_ns);
    }
    return ts;
  };

  std::vector<std::uint64_t> want;
  for (const auto& r : stream) want.push_back(r.ts_ns);
  {
    SynthReplayBackend synth(stream);
    EXPECT_EQ(collect(synth), want);
  }
  {
    MmapReplayBackend pcap(pcap_path);
    EXPECT_EQ(collect(pcap), want);
  }
  {
    BurstRxShim shim(stream);
    EXPECT_EQ(collect(shim), want);
  }
  std::filesystem::remove(pcap_path);
}

}  // namespace
}  // namespace nitro::ingest
