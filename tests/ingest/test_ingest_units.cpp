// Unit coverage for the ingest building blocks: the frame codec, the
// hugepage frame pool ladder, the run-to-completion loop's packet
// budgeting, mmap'd file access, and backend construction from specs.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "ingest/factory.hpp"
#include "ingest/frame.hpp"
#include "ingest/frame_pool.hpp"
#include "ingest/ingest_loop.hpp"
#include "ingest/mmap_file.hpp"
#include "ingest/mmap_replay.hpp"
#include "ingest/synth_backend.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/packet.hpp"
#include "trace/workloads.hpp"

namespace nitro::ingest {
namespace {

TEST(FrameCodec, RoundTripsFlowKey) {
  for (int rank = 0; rank < 100; ++rank) {
    trace::PacketRecord rec;
    rec.key = trace::flow_key_for_rank(rank, 7);
    rec.wire_bytes = static_cast<std::uint16_t>(64 + rank);
    std::uint8_t frame[kFrameHeaderBytes];
    write_frame(rec, frame);
    FlowKey key;
    ASSERT_TRUE(decode_frame(frame, sizeof frame, key));
    EXPECT_EQ(key, rec.key) << rank;
  }
}

TEST(FrameCodec, MatchesSwitchsimMakeRawByteForByte) {
  // The whole equivalence story rests on this: a frame the ingest layer
  // fabricates must be indistinguishable from the switch substrate's.
  trace::WorkloadSpec spec;
  spec.packets = 500;
  spec.flows = 50;
  spec.seed = 13;
  for (const auto& rec : trace::caida_like(spec)) {
    const auto raw = switchsim::make_raw(rec);
    std::uint8_t frame[kFrameHeaderBytes];
    write_frame(rec, frame);
    ASSERT_EQ(std::memcmp(frame, raw.header.data(), kFrameHeaderBytes), 0);
  }
}

TEST(FrameCodec, RejectsShortFrames) {
  trace::PacketRecord rec;
  rec.key = trace::flow_key_for_rank(0, 0);
  std::uint8_t frame[kFrameHeaderBytes];
  write_frame(rec, frame);
  FlowKey key;
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_FALSE(decode_frame(frame, len, key)) << len;
  }
}

TEST(FrameCodec, RejectsNonIpv4) {
  trace::PacketRecord rec;
  rec.key = trace::flow_key_for_rank(3, 1);
  std::uint8_t frame[kFrameHeaderBytes];
  FlowKey key;

  write_frame(rec, frame);
  frame[12] = 0x08;
  frame[13] = 0x06;  // ARP EtherType
  EXPECT_FALSE(decode_frame(frame, sizeof frame, key));

  write_frame(rec, frame);
  frame[14] = 0x65;  // IPv6 version nibble in the IPv4 slot
  EXPECT_FALSE(decode_frame(frame, sizeof frame, key));
}

TEST(FramePool, AllocatesAndAddressesFrames) {
  FramePool pool(64, 2048);
  EXPECT_EQ(pool.frame_count(), 64u);
  EXPECT_EQ(pool.frame_size(), 2048u);
  // The rung is environment-dependent; whatever it is, it must be one of
  // the ladder's three and the memory must be writable end to end.
  const std::string backing = pool.backing();
  EXPECT_TRUE(backing == "hugetlb" || backing == "thp" || backing == "pages")
      << backing;
  for (std::size_t i = 0; i < pool.frame_count(); ++i) {
    std::memset(pool.frame(i), static_cast<int>(i & 0xff), pool.frame_size());
  }
  EXPECT_EQ(pool.frame(63)[0], 63);
  EXPECT_EQ(pool.frame(1) - pool.frame(0), 2048);
}

TEST(FramePool, RejectsNonPowerOfTwoFrameSize) {
  EXPECT_THROW(FramePool(16, 1500), std::runtime_error);
}

TEST(MmapFileTest, MapsAndReadsWholeFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "nitro_mmap_unit.bin").string();
  std::vector<std::uint8_t> content(8192);
  for (std::size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<std::uint8_t>(i * 31);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  }
  {
    MmapFile map(path);
    const auto bytes = map.bytes();
    ASSERT_EQ(bytes.size(), content.size());
    EXPECT_EQ(std::memcmp(bytes.data(), content.data(), content.size()), 0);
  }
  std::filesystem::remove(path);
}

TEST(MmapFileTest, ThrowsOnMissingAndEmptyFiles) {
  EXPECT_THROW(MmapFile("/nonexistent/nope.bin"), std::runtime_error);
  const auto path =
      (std::filesystem::temp_directory_path() / "nitro_mmap_empty.bin").string();
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(MmapFile m(path), std::runtime_error);
  std::filesystem::remove(path);
}

class CountingMeasurement final : public switchsim::Measurement {
 public:
  void on_packet(const FlowKey&, std::uint16_t, std::uint64_t) override {
    ++packets_;
  }
  void on_burst(const FlowKey*, const std::uint16_t* wire, std::size_t n,
                std::uint64_t ts_ns) override {
    packets_ += n;
    ++bursts_;
    last_ts_ = ts_ns;
    for (std::size_t i = 0; i < n; ++i) bytes_ += wire[i];
    burst_sizes_.push_back(n);
  }
  std::uint64_t packets_ = 0, bytes_ = 0, bursts_ = 0, last_ts_ = 0;
  std::vector<std::size_t> burst_sizes_;
};

trace::Trace small_trace(std::size_t n) {
  trace::WorkloadSpec spec;
  spec.packets = n;
  spec.flows = 16;
  spec.seed = 9;
  return trace::caida_like(spec);
}

TEST(IngestLoopTest, BudgetStopsExactlyMidBurst) {
  const auto stream = small_trace(1000);
  SynthReplayBackend backend(stream);
  CountingMeasurement meas;
  IngestLoop loop(backend, meas, 32);

  // 100 = 3 full bursts of 32 + a budget-shrunken burst of 4.
  EXPECT_EQ(loop.run(100), 100u);
  EXPECT_EQ(meas.packets_, 100u);
  ASSERT_EQ(meas.burst_sizes_.size(), 4u);
  EXPECT_EQ(meas.burst_sizes_.back(), 4u);

  // The next run resumes at packet 100 — nothing skipped or replayed.
  EXPECT_EQ(loop.run(), 900u);
  EXPECT_EQ(meas.packets_, 1000u);
  EXPECT_EQ(loop.stats().packets, 1000u);
  EXPECT_EQ(loop.run(), 0u);  // EOF is sticky
}

TEST(IngestLoopTest, AccountsBytesAndTimestamps) {
  const auto stream = small_trace(333);
  SynthReplayBackend backend(stream);
  CountingMeasurement meas;
  IngestLoop loop(backend, meas, 32);
  loop.run();
  std::uint64_t want_bytes = 0;
  for (const auto& r : stream) want_bytes += r.wire_bytes;
  EXPECT_EQ(loop.stats().bytes, want_bytes);
  EXPECT_EQ(meas.bytes_, want_bytes);
  // Bursts are stamped with their last packet's timestamp.
  EXPECT_EQ(meas.last_ts_, stream.back().ts_ns);
}

TEST(IngestLoopTest, ZeroBudgetDeliversNothing) {
  const auto stream = small_trace(10);
  SynthReplayBackend backend(stream);
  CountingMeasurement meas;
  IngestLoop loop(backend, meas);
  EXPECT_EQ(loop.run(0), 0u);
  EXPECT_EQ(meas.packets_, 0u);
}

TEST(SynthBackend, LoopsAndReportsSizeHint) {
  const auto stream = small_trace(50);
  SynthReplayBackend backend(stream, /*loop=*/4);
  EXPECT_EQ(backend.size_hint(), 200u);
  PacketView views[64];
  std::uint64_t total = 0;
  std::size_t n;
  while ((n = backend.next_burst(views, 64)) != 0) total += n;
  EXPECT_EQ(total, 200u);
}

TEST(SynthBackend, EmptyTraceIsImmediateEof) {
  trace::Trace empty;
  SynthReplayBackend backend(empty, 3);
  PacketView views[8];
  EXPECT_EQ(backend.next_burst(views, 8), 0u);
}

TEST(Factory, UnknownSpecThrows) {
  const auto stream = small_trace(10);
  EXPECT_THROW(make_backend("dpdk", stream), std::runtime_error);
  EXPECT_THROW(make_backend("", stream), std::runtime_error);
  EXPECT_THROW(make_backend("pcap:/nonexistent/x.pcap", stream),
               std::runtime_error);
}

TEST(Factory, SpecsResolveToNamedBackends) {
  const auto stream = small_trace(10);
  EXPECT_STREQ(make_backend("synth", stream)->name(), "synth");
  EXPECT_STREQ(make_backend("shim", stream)->name(), "shim");
}

TEST(SampleCapture, CheckedInFixtureReplaysCleanly) {
  // tests/data/sample_caida512.pcap is a committed artifact (made with
  // tools/make_pcap --workload caida --packets 512 --flows 64 --seed 7);
  // this pins the on-disk format so a parser or writer change that would
  // orphan existing captures fails loudly.
  const std::string path =
      std::string(NITRO_TEST_DATA_DIR) + "/sample_caida512.pcap";
  MmapReplayBackend backend(path);
  EXPECT_STREQ(backend.name(), "pcap");
  EXPECT_EQ(backend.size_hint(), 512u);
  CountingMeasurement meas;
  IngestLoop loop(backend, meas, 32);
  EXPECT_EQ(loop.run(), 512u);
  EXPECT_EQ(backend.parse_errors(), 0u);
  EXPECT_EQ(meas.packets_, 512u);
  EXPECT_GT(meas.last_ts_, 0u);
}

}  // namespace
}  // namespace nitro::ingest
