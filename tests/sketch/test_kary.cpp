#include "sketch/kary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(KAry, NearExactForFewFlows) {
  KArySketch ka(10, 4096, 1);
  for (int i = 0; i < 5; ++i) ka.update(flow_key_for_rank(i, 0), 100 * (i + 1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(ka.query(flow_key_for_rank(i, 0)), 100.0 * (i + 1), 2.0);
  }
}

TEST(KAry, AbsentKeyEstimateNearZero) {
  KArySketch ka(10, 4096, 2);
  trace::WorkloadSpec spec;
  spec.packets = 50000;
  spec.flows = 5000;
  spec.seed = 3;
  for (const auto& p : trace::caida_like(spec)) ka.update(p.key);
  const FlowKey absent = flow_key_for_rank(1, 0xab5eULL);
  EXPECT_NEAR(ka.query(absent), 0.0, 0.01 * 50000);
}

TEST(KAry, TotalTracked) {
  KArySketch ka(5, 256, 4);
  ka.update(flow_key_for_rank(0, 0), 10);
  ka.update(flow_key_for_rank(1, 0), 5);
  EXPECT_EQ(ka.total(), 15);
}

TEST(KAry, AddTotalOnlyAffectsEstimatorBias) {
  KArySketch ka(5, 256, 5);
  ka.update(flow_key_for_rank(0, 0), 100);
  const double before = ka.query(flow_key_for_rank(0, 0));
  ka.add_total(1000);  // counters untouched, S term grows
  const double after = ka.query(flow_key_for_rank(0, 0));
  EXPECT_LT(after, before);  // estimate shrinks as S/w subtraction grows
  EXPECT_EQ(ka.total(), 1100);
}

TEST(KAry, DifferenceIsolatesEpochChange) {
  KArySketch prev(8, 2048, 6), cur(8, 2048, 6);
  // Epoch 1: flows 0..9 at 100 each.
  for (int i = 0; i < 10; ++i) prev.update(flow_key_for_rank(i, 0), 100);
  // Epoch 2: same, but flow 3 quadruples.
  for (int i = 0; i < 10; ++i) cur.update(flow_key_for_rank(i, 0), i == 3 ? 400 : 100);
  const auto diff = cur.difference(prev);
  EXPECT_NEAR(diff.query(flow_key_for_rank(3, 0)), 300.0, 10.0);
  EXPECT_NEAR(diff.query(flow_key_for_rank(5, 0)), 0.0, 10.0);
}

TEST(KAry, EstimatorUnbiasedOnZipf) {
  trace::WorkloadSpec spec;
  spec.packets = 100000;
  spec.flows = 10000;
  spec.seed = 8;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  KArySketch ka(10, 8192, 9);
  for (const auto& p : stream) ka.update(p.key);
  // Mean signed error over the top flows should be near zero (unbiased),
  // unlike Count-Min's one-sided overestimation.
  double signed_err = 0.0;
  const auto top = truth.top_k(100);
  for (const auto& [key, count] : top) {
    signed_err += ka.query(key) - static_cast<double>(count);
  }
  signed_err /= static_cast<double>(top.size());
  EXPECT_NEAR(signed_err, 0.0, 0.005 * 100000);
}

TEST(KAry, ClearResets) {
  KArySketch ka(3, 64, 10);
  ka.update(flow_key_for_rank(0, 0), 50);
  ka.clear();
  EXPECT_EQ(ka.total(), 0);
  EXPECT_NEAR(ka.query(flow_key_for_rank(0, 0)), 0.0, 1e-9);
}

}  // namespace
}  // namespace nitro::sketch
