#include "sketch/entropy_sketch.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(EntropySketch, EmptyIsZero) {
  EntropySketch es(100, 1);
  EXPECT_DOUBLE_EQ(es.estimate(), 0.0);
}

TEST(EntropySketch, SingleFlowHasZeroEntropy) {
  EntropySketch es(200, 2);
  for (int i = 0; i < 50000; ++i) es.update(flow_key_for_rank(0, 0));
  EXPECT_NEAR(es.estimate(), 0.0, 0.05);
}

TEST(EntropySketch, UniformFlowsApproachLogN) {
  EntropySketch es(800, 3);
  // 64 flows, uniform: H = 6 bits.
  for (int round = 0; round < 2000; ++round) {
    for (int i = 0; i < 64; ++i) es.update(flow_key_for_rank(i, 0));
  }
  EXPECT_NEAR(es.estimate(), 6.0, 0.5);
}

TEST(EntropySketch, TracksGroundTruthOnZipf) {
  EntropySketch es(1500, 4);
  trace::WorkloadSpec spec;
  spec.packets = 200000;
  spec.flows = 10000;
  spec.seed = 5;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) es.update(p.key);
  EXPECT_NEAR(es.estimate() / truth.entropy(), 1.0, 0.15);
}

TEST(EntropySketch, ReservoirHoldsAtMostZSamples) {
  EntropySketch es(50, 6);
  for (int i = 0; i < 10000; ++i) es.update(flow_key_for_rank(i % 100, 0));
  EXPECT_LE(es.sample_count(), 50u);
  EXPECT_EQ(es.stream_length(), 10000u);
}

TEST(EntropySketch, MoreSamplesLowerError) {
  trace::WorkloadSpec spec;
  spec.packets = 100000;
  spec.flows = 5000;
  spec.seed = 7;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  auto err_with = [&](std::size_t z) {
    double total = 0.0;
    for (int r = 0; r < 5; ++r) {
      EntropySketch es(z, 100 + r);
      for (const auto& p : stream) es.update(p.key);
      total += std::abs(es.estimate() - truth.entropy()) / truth.entropy();
    }
    return total / 5;
  };
  EXPECT_LT(err_with(2000), err_with(20) + 0.02);
}

TEST(EntropySketch, DdosEntropyLowerThanBenign) {
  // The anomaly-detection premise: a DDoS destination-port/flow mix has
  // lower entropy per packet mass concentrated on one victim... here we
  // check source-flow entropy of benign CAIDA vs a single-flow flood.
  trace::WorkloadSpec spec;
  spec.packets = 100000;
  spec.flows = 10000;
  spec.seed = 8;
  EntropySketch benign(1000, 9);
  for (const auto& p : trace::caida_like(spec)) benign.update(p.key);
  EntropySketch flood(1000, 10);
  for (int i = 0; i < 100000; ++i) flood.update(flow_key_for_rank(0, 1));
  EXPECT_GT(benign.estimate(), flood.estimate() + 1.0);
}

}  // namespace
}  // namespace nitro::sketch
