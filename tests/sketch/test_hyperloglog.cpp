#include "sketch/hyperloglog.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(HyperLogLog, EmptyEstimatesZeroish) {
  HyperLogLog hll(12, 1);
  EXPECT_LT(hll.estimate(), 1.0);
}

TEST(HyperLogLog, SmallCardinalityViaLinearCounting) {
  HyperLogLog hll(12, 2);
  for (int i = 0; i < 100; ++i) hll.update(flow_key_for_rank(i, 0));
  EXPECT_NEAR(hll.estimate(), 100.0, 10.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12, 3);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) hll.update(flow_key_for_rank(i, 0));
  }
  EXPECT_NEAR(hll.estimate(), 50.0, 8.0);
}

// Standard error is ~1.04/sqrt(2^p); sweep cardinalities at p = 12 (~1.6%).
class HllAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(HllAccuracy, WithinFivePercent) {
  const int n = GetParam();
  HyperLogLog hll(12, 5);
  for (int i = 0; i < n; ++i) hll.update(flow_key_for_rank(i, 1));
  EXPECT_NEAR(hll.estimate() / n, 1.0, 0.05) << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(1000, 10000, 100000, 1000000));

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(12, 7), b(12, 7);  // same seed -> same hash space
  for (int i = 0; i < 5000; ++i) a.update(flow_key_for_rank(i, 2));
  for (int i = 2500; i < 7500; ++i) b.update(flow_key_for_rank(i, 2));
  a.merge(b);
  EXPECT_NEAR(a.estimate() / 7500.0, 1.0, 0.05);
}

TEST(HyperLogLog, PrecisionTradesMemoryForAccuracy) {
  HyperLogLog coarse(6, 9), fine(14, 9);
  EXPECT_LT(coarse.memory_bytes(), fine.memory_bytes());
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const FlowKey k = flow_key_for_rank(i, 3);
    coarse.update(k);
    fine.update(k);
  }
  const double err_coarse = std::abs(coarse.estimate() - kN) / kN;
  const double err_fine = std::abs(fine.estimate() - kN) / kN;
  EXPECT_LT(err_fine, 0.03);
  EXPECT_LT(err_fine, err_coarse + 0.02);
}

TEST(HyperLogLog, ClearResets) {
  HyperLogLog hll(10, 11);
  for (int i = 0; i < 1000; ++i) hll.update(flow_key_for_rank(i, 4));
  hll.clear();
  EXPECT_LT(hll.estimate(), 1.0);
}

TEST(HyperLogLog, AgreesWithGroundTruthOnZipf) {
  HyperLogLog hll(13, 13);
  trace::WorkloadSpec spec;
  spec.packets = 300000;
  spec.flows = 50000;
  spec.seed = 5;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) hll.update(p.key);
  EXPECT_NEAR(hll.estimate() / static_cast<double>(truth.distinct()), 1.0, 0.05);
}

}  // namespace
}  // namespace nitro::sketch
