#include "sketch/count_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(CountSketch, ExactForFewFlows) {
  CountSketch cs(5, 1024, 1);
  for (int i = 0; i < 10; ++i) {
    for (int rep = 0; rep < 5 * (i + 1); ++rep) cs.update(flow_key_for_rank(i, 0));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cs.query(flow_key_for_rank(i, 0)), 5 * (i + 1));
  }
}

TEST(CountSketch, UnbiasedOverRandomSeeds) {
  // Average the estimate of one mid-size flow across many independent
  // sketches; the mean must approach the true count.
  const FlowKey target = flow_key_for_rank(1, 0);
  const std::int64_t target_count = 50;
  double sum = 0.0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    CountSketch cs(1, 32, 1000 + t);  // single row -> raw unbiased estimator
    cs.update(target, target_count);
    for (int i = 2; i < 300; ++i) cs.update(flow_key_for_rank(i, 0), 5);
    sum += static_cast<double>(cs.query(target));
  }
  EXPECT_NEAR(sum / kTrials, static_cast<double>(target_count), 25.0);
}

TEST(CountSketch, ErrorBoundedByEpsL2) {
  CountSketch cs(5, 4096, 2);
  trace::WorkloadSpec spec;
  spec.packets = 200000;
  spec.flows = 20000;
  spec.seed = 3;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) cs.update(p.key);

  const double eps_l2 = 3.0 / std::sqrt(4096.0) * truth.l2();
  std::size_t violations = 0;
  for (const auto& [key, count] : truth.top_k(100)) {
    if (std::abs(static_cast<double>(cs.query(key) - count)) > eps_l2) ++violations;
  }
  EXPECT_LE(violations, 5u);
}

TEST(CountSketch, L2EstimateTracksGroundTruth) {
  CountSketch cs(5, 8192, 4);
  trace::WorkloadSpec spec;
  spec.packets = 100000;
  spec.flows = 5000;
  spec.seed = 5;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) cs.update(p.key);
  EXPECT_NEAR(cs.l2_estimate() / truth.l2(), 1.0, 0.1);
}

TEST(CountSketch, L2EstimateGrowsMonotonically) {
  CountSketch cs(5, 1024, 6);
  double prev = 0.0;
  trace::WorkloadSpec spec;
  spec.packets = 50000;
  spec.flows = 1000;
  spec.seed = 7;
  const auto stream = trace::caida_like(spec);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    cs.update(stream[i].key);
    if ((i + 1) % 10000 == 0) {
      const double cur = cs.l2_squared_estimate();
      EXPECT_GE(cur, prev * 0.99);  // up to estimator noise
      prev = cur;
    }
  }
}

TEST(CountSketch, MergeEquivalentToSequential) {
  CountSketch a(3, 512, 8), b(3, 512, 8), c(3, 512, 8);
  for (int i = 0; i < 200; ++i) {
    a.update(flow_key_for_rank(i, 0), 2);
    c.update(flow_key_for_rank(i, 0), 2);
  }
  for (int i = 100; i < 300; ++i) {
    b.update(flow_key_for_rank(i, 0), 3);
    c.update(flow_key_for_rank(i, 0), 3);
  }
  a.merge(b);
  for (int i = 0; i < 300; i += 7) {
    EXPECT_EQ(a.query(flow_key_for_rank(i, 0)), c.query(flow_key_for_rank(i, 0)));
  }
}

TEST(CountSketch, NegativeUpdatesSupported) {
  CountSketch cs(5, 256, 9);
  const FlowKey k = flow_key_for_rank(0, 0);
  cs.update(k, 100);
  cs.update(k, -40);
  EXPECT_EQ(cs.query(k), 60);
}

TEST(CountSketch, ClearResets) {
  CountSketch cs(3, 64, 10);
  cs.update(flow_key_for_rank(0, 0), 5);
  cs.clear();
  EXPECT_EQ(cs.query(flow_key_for_rank(0, 0)), 0);
  EXPECT_DOUBLE_EQ(cs.l2_squared_estimate(), 0.0);
}

}  // namespace
}  // namespace nitro::sketch
