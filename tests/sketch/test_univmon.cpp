#include "sketch/univmon.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

UnivMonConfig small_config() {
  UnivMonConfig cfg;
  cfg.levels = 12;
  cfg.depth = 5;
  cfg.top_width = 2048;
  cfg.min_width = 256;
  cfg.heap_capacity = 200;
  return cfg;
}

trace::Trace zipf_stream(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = flows;
  spec.seed = seed;
  return trace::caida_like(spec);
}

TEST(UnivMon, PointQueryTracksBigFlows) {
  UnivMon um(small_config(), 1);
  const auto stream = zipf_stream(100000, 10000, 2);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);
  for (const auto& [key, count] : truth.top_k(10)) {
    EXPECT_NEAR(static_cast<double>(um.query(key)), static_cast<double>(count),
                0.15 * static_cast<double>(count) + 50.0);
  }
}

TEST(UnivMon, TotalEqualsPackets) {
  UnivMon um(small_config(), 1);
  const auto stream = zipf_stream(5000, 500, 3);
  for (const auto& p : stream) um.update(p.key);
  EXPECT_EQ(um.total(), 5000);
}

TEST(UnivMon, LevelMembershipIsPrefixClosed) {
  UnivMon um(small_config(), 4);
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 7);
    for (std::uint32_t j = 1; j < um.num_levels(); ++j) {
      if (!um.sampled_to_level(k, j)) {
        EXPECT_FALSE(um.sampled_to_level(k, j + 1));
        break;
      }
    }
  }
}

TEST(UnivMon, LevelPopulationHalvesApproximately) {
  UnivMon um(small_config(), 5);
  int counts[4] = {0, 0, 0, 0};
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const FlowKey k = flow_key_for_rank(i, 11);
    for (int j = 1; j <= 4; ++j) {
      if (um.sampled_to_level(k, j)) counts[j - 1]++;
    }
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.5, 0.03);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.25, 0.03);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.125, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.0625, 0.02);
}

TEST(UnivMon, EntropyCloseToGroundTruth) {
  UnivMon um(small_config(), 6);
  const auto stream = zipf_stream(200000, 20000, 7);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);
  EXPECT_NEAR(um.estimate_entropy() / truth.entropy(), 1.0, 0.15);
}

TEST(UnivMon, DistinctCloseToGroundTruth) {
  UnivMon um(small_config(), 8);
  const auto stream = zipf_stream(200000, 20000, 9);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);
  EXPECT_NEAR(um.estimate_distinct() / static_cast<double>(truth.distinct()), 1.0, 0.35);
}

TEST(UnivMon, L2CloseToGroundTruth) {
  UnivMon um(small_config(), 10);
  const auto stream = zipf_stream(100000, 10000, 11);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);
  EXPECT_NEAR(um.estimate_l2() / truth.l2(), 1.0, 0.1);
}

TEST(UnivMon, HeavyHittersRecallHigh) {
  UnivMon um(small_config(), 12);
  const auto stream = zipf_stream(200000, 20000, 13);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);

  const auto threshold = static_cast<std::int64_t>(0.0005 * 200000);  // 0.05%
  const auto true_hh = truth.heavy_hitters(threshold);
  const auto got = um.heavy_hitters(threshold);
  std::size_t found = 0;
  for (const auto& [key, count] : true_hh) {
    for (const auto& e : got) {
      if (e.key == key) {
        ++found;
        break;
      }
    }
  }
  ASSERT_FALSE(true_hh.empty());
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(true_hh.size()), 0.9);
}

TEST(UnivMon, ClearResets) {
  UnivMon um(small_config(), 14);
  um.update(flow_key_for_rank(0, 0), 100);
  um.clear();
  EXPECT_EQ(um.total(), 0);
  EXPECT_EQ(um.query(flow_key_for_rank(0, 0)), 0);
  EXPECT_DOUBLE_EQ(um.estimate_distinct(), 0.0);
}

TEST(UnivMon, WidthDecayConfig) {
  UnivMonConfig cfg;
  cfg.top_width = 1000;
  cfg.width_decay = 0.5;
  cfg.min_width = 100;
  EXPECT_EQ(cfg.width_at(0), 1000u);
  EXPECT_EQ(cfg.width_at(1), 500u);
  EXPECT_EQ(cfg.width_at(2), 250u);
  EXPECT_EQ(cfg.width_at(5), 100u);  // clamped at min_width
}

TEST(UnivMon, MomentEstimatesTrackGroundTruth) {
  UnivMon um(small_config(), 18);
  const auto stream = zipf_stream(200000, 20000, 19);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) um.update(p.key);
  // F1 = stream length (exact identity of the G-sum with g(f) = f).
  EXPECT_NEAR(um.estimate_moment(1.0) / 200000.0, 1.0, 0.25);
  // F2 = L2^2.
  const double f2_true = truth.l2() * truth.l2();
  EXPECT_NEAR(um.estimate_moment(2.0) / f2_true, 1.0, 0.3);
  // F0 = distinct count.
  EXPECT_NEAR(um.estimate_moment(0.0) / static_cast<double>(truth.distinct()), 1.0,
              0.35);
}

TEST(UnivMon, MergeCombinesTwoVantagePoints) {
  UnivMon a(small_config(), 21), b(small_config(), 21);  // same seeds
  const auto s1 = zipf_stream(50000, 5000, 15);
  const auto s2 = zipf_stream(50000, 5000, 16);
  trace::GroundTruth truth;
  for (const auto& p : s1) {
    a.update(p.key);
    truth.add(p.key, 1);
  }
  for (const auto& p : s2) {
    b.update(p.key);
    truth.add(p.key, 1);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), 100000);
  for (const auto& [key, count] : truth.top_k(10)) {
    EXPECT_NEAR(static_cast<double>(a.query(key)), static_cast<double>(count),
                0.2 * static_cast<double>(count) + 50.0);
  }
}

TEST(UnivMon, MergeRejectsMismatchedShape) {
  UnivMon a(small_config(), 21);
  auto other_cfg = small_config();
  other_cfg.levels = 4;
  UnivMon b(other_cfg, 21);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(UnivMon, MemoryBytesGrowsWithWidth) {
  UnivMonConfig small = small_config();
  UnivMonConfig big = small;
  big.top_width *= 4;
  EXPECT_GT(UnivMon(big, 1).memory_bytes(), UnivMon(small, 1).memory_bytes());
}

}  // namespace
}  // namespace nitro::sketch
