#include "sketch/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(TopKHeap, KeepsLargestK) {
  TopKHeap heap(3);
  for (int i = 0; i < 10; ++i) heap.offer(flow_key_for_rank(i, 0), i * 10);
  const auto entries = heap.entries_sorted();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].estimate, 90);
  EXPECT_EQ(entries[1].estimate, 80);
  EXPECT_EQ(entries[2].estimate, 70);
}

TEST(TopKHeap, RefreshesExistingKeyUp) {
  TopKHeap heap(3);
  heap.offer(flow_key_for_rank(0, 0), 5);
  heap.offer(flow_key_for_rank(1, 0), 10);
  heap.offer(flow_key_for_rank(0, 0), 50);
  const auto entries = heap.entries_sorted();
  EXPECT_EQ(entries[0].key, flow_key_for_rank(0, 0));
  EXPECT_EQ(entries[0].estimate, 50);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(TopKHeap, RefreshesExistingKeyDown) {
  TopKHeap heap(3);
  heap.offer(flow_key_for_rank(0, 0), 50);
  heap.offer(flow_key_for_rank(1, 0), 10);
  heap.offer(flow_key_for_rank(0, 0), 1);  // estimate revised downward
  EXPECT_EQ(heap.min_estimate(), 1);
  EXPECT_TRUE(heap.contains(flow_key_for_rank(0, 0)));
}

TEST(TopKHeap, RejectsSmallWhenFull) {
  TopKHeap heap(2);
  heap.offer(flow_key_for_rank(0, 0), 100);
  heap.offer(flow_key_for_rank(1, 0), 200);
  heap.offer(flow_key_for_rank(2, 0), 50);
  EXPECT_FALSE(heap.contains(flow_key_for_rank(2, 0)));
  EXPECT_EQ(heap.size(), 2u);
}

TEST(TopKHeap, EvictsMinimum) {
  TopKHeap heap(2);
  heap.offer(flow_key_for_rank(0, 0), 100);
  heap.offer(flow_key_for_rank(1, 0), 200);
  heap.offer(flow_key_for_rank(2, 0), 150);
  EXPECT_FALSE(heap.contains(flow_key_for_rank(0, 0)));
  EXPECT_TRUE(heap.contains(flow_key_for_rank(2, 0)));
}

TEST(TopKHeap, MinEstimateIsHeapRoot) {
  TopKHeap heap(4);
  heap.offer(flow_key_for_rank(0, 0), 40);
  heap.offer(flow_key_for_rank(1, 0), 10);
  heap.offer(flow_key_for_rank(2, 0), 30);
  EXPECT_EQ(heap.min_estimate(), 10);
}

TEST(TopKHeap, ZeroCapacityNeverStores) {
  TopKHeap heap(0);
  heap.offer(flow_key_for_rank(0, 0), 1000);
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_EQ(heap.min_estimate(), 0);
}

TEST(TopKHeap, ClearEmpties) {
  TopKHeap heap(4);
  heap.offer(flow_key_for_rank(0, 0), 5);
  heap.clear();
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.contains(flow_key_for_rank(0, 0)));
}

TEST(TopKHeap, StressAgainstSortedReference) {
  // Monotonically increasing estimates (the sketch-estimate pattern):
  // final heap must contain exactly the keys with the k largest finals.
  constexpr std::size_t kK = 16;
  constexpr int kKeys = 400;
  TopKHeap heap(kK);
  std::vector<std::int64_t> finals(kKeys);
  Pcg32 rng(99);
  for (int round = 1; round <= 50; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      if (rng.next_double() < 0.3) {
        finals[i] += rng.next_below(100);
        heap.offer(flow_key_for_rank(i, 0), finals[i]);
      }
    }
  }
  std::vector<std::pair<std::int64_t, int>> ranked;
  for (int i = 0; i < kKeys; ++i) ranked.push_back({finals[i], i});
  std::sort(ranked.rbegin(), ranked.rend());
  // Every key whose final estimate strictly exceeds the (k+1)-th largest
  // must be present.
  const std::int64_t cutoff = ranked[kK].first;
  for (std::size_t r = 0; r < kK; ++r) {
    if (ranked[r].first > cutoff) {
      EXPECT_TRUE(heap.contains(flow_key_for_rank(ranked[r].second, 0)))
          << "rank " << r;
    }
  }
}

TEST(TopKHeap, RefreshesTrackedKeyDownwardWhenFull) {
  // Regression: the full-heap early-reject used to fire before the
  // tracked-key lookup, so a tracked key whose estimate was revised below
  // min_estimate() kept its stale (higher) value once the heap filled.
  TopKHeap heap(2);
  heap.offer(flow_key_for_rank(0, 0), 10);
  heap.offer(flow_key_for_rank(1, 0), 20);  // heap now full
  heap.offer(flow_key_for_rank(0, 0), 5);   // downward refresh, below old min
  EXPECT_TRUE(heap.contains(flow_key_for_rank(0, 0)));
  EXPECT_EQ(heap.min_estimate(), 5);
  const auto entries = heap.entries_sorted();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].key, flow_key_for_rank(0, 0));
  EXPECT_EQ(entries[1].estimate, 5);
  // Untracked keys at or below the (new) minimum are still rejected.
  heap.offer(flow_key_for_rank(2, 0), 5);
  EXPECT_FALSE(heap.contains(flow_key_for_rank(2, 0)));
}

TEST(TopKHeap, MemoryBytesNonZeroWhenPopulated) {
  TopKHeap heap(8);
  heap.offer(flow_key_for_rank(0, 0), 1);
  EXPECT_GT(heap.memory_bytes(), 0u);
}

}  // namespace
}  // namespace nitro::sketch
