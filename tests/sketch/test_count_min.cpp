#include "sketch/count_min.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(CountMin, ExactForFewFlows) {
  CountMinSketch cm(5, 1000, 1);
  for (int i = 0; i < 10; ++i) {
    for (int rep = 0; rep <= i; ++rep) cm.update(flow_key_for_rank(i, 0));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cm.query(flow_key_for_rank(i, 0)), i + 1);
  }
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch cm(4, 64, 2);  // deliberately tiny -> collisions
  trace::WorkloadSpec spec;
  spec.packets = 20000;
  spec.flows = 2000;
  spec.seed = 3;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) cm.update(p.key);
  for (const auto& [key, count] : truth.counts()) {
    EXPECT_GE(cm.query(key), count);
  }
}

TEST(CountMin, WeightedUpdates) {
  CountMinSketch cm(3, 100, 4);
  const FlowKey k = flow_key_for_rank(0, 0);
  cm.update(k, 100);
  cm.update(k, 23);
  EXPECT_EQ(cm.query(k), 123);
}

TEST(CountMin, TotalCountsAllUpdates) {
  CountMinSketch cm(3, 100, 5);
  for (int i = 0; i < 50; ++i) cm.update(flow_key_for_rank(i, 0), 2);
  EXPECT_EQ(cm.total(), 100);
}

TEST(CountMin, AbsentKeyBoundedByEpsilonL1) {
  // w = 1000 -> eps = e/w ~ 0.0027; with L1 = 50k the error on an absent
  // key should be well below eps*L1 in the typical case and never crazy.
  CountMinSketch cm(5, 1000, 6);
  trace::WorkloadSpec spec;
  spec.packets = 50000;
  spec.flows = 5000;
  spec.seed = 7;
  for (const auto& p : trace::caida_like(spec)) cm.update(p.key);
  const FlowKey absent = flow_key_for_rank(1, 0xdeadULL);  // different family
  EXPECT_LE(cm.query(absent), static_cast<std::int64_t>(0.01 * 50000));
}

TEST(CountMin, MergeEquivalentToSequential) {
  CountMinSketch a(4, 256, 8), b(4, 256, 8), c(4, 256, 8);
  for (int i = 0; i < 100; ++i) {
    a.update(flow_key_for_rank(i, 0));
    c.update(flow_key_for_rank(i, 0));
  }
  for (int i = 50; i < 150; ++i) {
    b.update(flow_key_for_rank(i, 0));
    c.update(flow_key_for_rank(i, 0));
  }
  a.merge(b);
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(a.query(flow_key_for_rank(i, 0)), c.query(flow_key_for_rank(i, 0)));
  }
}

TEST(CountMin, ClearResets) {
  CountMinSketch cm(3, 64, 9);
  cm.update(flow_key_for_rank(0, 0), 5);
  cm.clear();
  EXPECT_EQ(cm.query(flow_key_for_rank(0, 0)), 0);
  EXPECT_EQ(cm.total(), 0);
}

// Property sweep: the (ε, δ) bound. For w counters, the error on any
// tracked flow is <= e*L1/w with probability >= 1-exp(-d) per query.
class CountMinBound : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountMinBound, ErrorWithinTheoryOnZipf) {
  const auto [depth, width] = GetParam();
  CountMinSketch cm(depth, width, 11);
  trace::WorkloadSpec spec;
  spec.packets = 100000;
  spec.flows = 10000;
  spec.seed = 13;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) cm.update(p.key);

  const double eps_l1 = 2.71828 * static_cast<double>(spec.packets) / width;
  std::size_t violations = 0;
  std::size_t queries = 0;
  for (const auto& [key, count] : truth.top_k(200)) {
    ++queries;
    if (static_cast<double>(cm.query(key) - count) > eps_l1) ++violations;
  }
  // Allowed failure probability per query is exp(-depth); generous slack.
  EXPECT_LE(violations, std::max<std::size_t>(2, queries / 10))
      << "depth=" << depth << " width=" << width;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CountMinBound,
                         ::testing::Values(std::make_tuple(3, 512),
                                           std::make_tuple(5, 1000),
                                           std::make_tuple(5, 4096),
                                           std::make_tuple(8, 2048)));

}  // namespace
}  // namespace nitro::sketch
