#include "sketch/misra_gries.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(MisraGries, ExactWhenUnderCapacity) {
  MisraGries mg(10);
  for (int i = 0; i < 5; ++i) mg.update(flow_key_for_rank(i, 0), 10 * (i + 1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(mg.query(flow_key_for_rank(i, 0)), 10 * (i + 1));
  }
}

TEST(MisraGries, NeverOverestimates) {
  MisraGries mg(8);
  trace::WorkloadSpec spec;
  spec.packets = 20000;
  spec.flows = 500;
  spec.seed = 1;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) mg.update(p.key);
  for (const auto& [key, count] : truth.counts()) {
    EXPECT_LE(mg.query(key), count);
  }
}

TEST(MisraGries, ErrorBoundedByL1OverK) {
  constexpr std::size_t kK = 32;
  MisraGries mg(kK);
  trace::WorkloadSpec spec;
  spec.packets = 50000;
  spec.flows = 2000;
  spec.seed = 2;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) mg.update(p.key);
  const auto bound = static_cast<std::int64_t>(spec.packets / kK);
  for (const auto& [key, count] : truth.counts()) {
    EXPECT_GE(mg.query(key), count - bound);
  }
}

TEST(MisraGries, CapacityNeverExceeded) {
  MisraGries mg(4);
  for (int i = 0; i < 1000; ++i) mg.update(flow_key_for_rank(i % 50, 0));
  EXPECT_LE(mg.size(), 4u);
}

TEST(MisraGries, HeavyDominatorSurvives) {
  MisraGries mg(4);
  // One flow is 60% of traffic: it must be tracked at the end.
  for (int i = 0; i < 1000; ++i) {
    mg.update(flow_key_for_rank(0, 0));
    if (i % 3 == 0) mg.update(flow_key_for_rank(1 + (i % 7), 0));
  }
  EXPECT_GT(mg.query(flow_key_for_rank(0, 0)), 0);
}

TEST(MisraGries, TotalCountsEverything) {
  MisraGries mg(2);
  for (int i = 0; i < 100; ++i) mg.update(flow_key_for_rank(i, 0), 3);
  EXPECT_EQ(mg.total(), 300);
}

TEST(MisraGries, ClearResets) {
  MisraGries mg(4);
  mg.update(flow_key_for_rank(0, 0), 5);
  mg.clear();
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_EQ(mg.total(), 0);
}

TEST(MisraGries, WeightedMissWithFullTableInsertsResidual) {
  MisraGries mg(2);
  mg.update(flow_key_for_rank(0, 0), 10);
  mg.update(flow_key_for_rank(1, 0), 10);
  mg.update(flow_key_for_rank(2, 0), 25);  // decrement-all by 10, insert 15
  EXPECT_EQ(mg.query(flow_key_for_rank(2, 0)), 15);
  EXPECT_EQ(mg.query(flow_key_for_rank(0, 0)), 0);
}

}  // namespace
}  // namespace nitro::sketch
