// TopKHeap churn-guard property tests (DESIGN.md §16).
//
// The attack model: a churn storm offers an endless stream of never-seen
// keys whose sketch estimates sit just above the heap's minimum (collision
// noise rises with stream volume).  Without the admission margin every
// such offer evicts a tracked key and resets the bar one notch higher, so
// the noise floor ratchets the real heavy hitters out of the heap.  With
// the margin, offers inside the hysteresis band are rejected and the
// heavies survive.  Both halves of the property are pinned: the classic
// heap *is* ground down (documenting the failure the guard exists for),
// the guarded heap is not.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/flow_key.hpp"
#include "sketch/univmon.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

FlowKey key_of(std::uint64_t rank, std::uint64_t family) {
  return trace::flow_key_for_rank(rank, family);
}

constexpr std::size_t kCapacity = 8;
constexpr std::uint64_t kHeavyFamily = 0xbeefULL;
constexpr std::uint64_t kChurnFamily = 0xc442ULL;

/// Fill a heap with `kCapacity` heavies at estimates 500, 1000, ...
void seed_heavies(TopKHeap& heap) {
  for (std::size_t i = 0; i < kCapacity; ++i) {
    heap.offer(key_of(i, kHeavyFamily), static_cast<std::int64_t>(500 * (i + 1)));
  }
}

/// The ratcheting churn storm: each unique key's estimate is the current
/// minimum plus a small noise excess — the worst case for the heap, and
/// exactly what collision noise on one-packet flows looks like once the
/// stream is long enough.
void churn(TopKHeap& heap, std::size_t offers, std::int64_t excess) {
  for (std::size_t i = 0; i < offers; ++i) {
    heap.offer(key_of(i, kChurnFamily), heap.min_estimate() + excess);
  }
}

TEST(TopKGuard, UnguardedHeapIsGroundDownByAChurnStorm) {
  TopKHeap heap(kCapacity);  // margin 0: classic displace-on-any-improvement
  seed_heavies(heap);
  churn(heap, 20'000, /*excess=*/1);
  // The ratchet climbed past every heavy: all eight are permanently gone.
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    if (heap.contains(key_of(i, kHeavyFamily))) ++survivors;
  }
  EXPECT_EQ(survivors, 0u);
  EXPECT_GE(heap.evictions(), kCapacity);
  EXPECT_EQ(heap.margin_rejects(), 0u);
}

TEST(TopKGuard, AdmissionMarginKeepsPersistentHeaviesTracked) {
  TopKHeap heap(kCapacity, /*admission_margin=*/64);
  seed_heavies(heap);
  churn(heap, 20'000, /*excess=*/1);  // inside the hysteresis band
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_TRUE(heap.contains(key_of(i, kHeavyFamily))) << "heavy " << i;
  }
  EXPECT_EQ(heap.evictions(), 0u);
  EXPECT_EQ(heap.margin_rejects(), 20'000u);
}

TEST(TopKGuard, GenuinelyLargerKeysStillDisplaceThroughTheMargin) {
  // The margin must not blind the heap to a real new heavy hitter.
  TopKHeap heap(kCapacity, /*admission_margin=*/64);
  seed_heavies(heap);
  const FlowKey newcomer = key_of(99, kChurnFamily);
  heap.offer(newcomer, heap.min_estimate() + 65);
  EXPECT_TRUE(heap.contains(newcomer));
  EXPECT_EQ(heap.evictions(), 1u);
}

TEST(TopKGuard, TrackedKeysRefreshInBothDirectionsRegardlessOfMargin) {
  TopKHeap heap(kCapacity, /*admission_margin=*/1000);
  seed_heavies(heap);
  const FlowKey k = key_of(0, kHeavyFamily);  // estimate 1000, the minimum
  heap.offer(k, 1001);  // upward refresh, well inside the margin
  EXPECT_TRUE(heap.contains(k));
  heap.offer(k, 500);  // downward refresh
  EXPECT_TRUE(heap.contains(k));
  EXPECT_EQ(heap.min_estimate(), 500);
  EXPECT_EQ(heap.margin_rejects(), 0u);  // tracked keys never count
}

TEST(TopKGuard, ClearResetsTheChurnCounters) {
  TopKHeap heap(kCapacity, /*admission_margin=*/8);
  seed_heavies(heap);
  churn(heap, 100, /*excess=*/1);
  ASSERT_GT(heap.margin_rejects(), 0u);
  heap.clear();
  EXPECT_EQ(heap.evictions(), 0u);
  EXPECT_EQ(heap.margin_rejects(), 0u);
}

// --- Through a real sketch: the UnivMon-level property ---------------------

UnivMonConfig guard_config(std::int64_t margin) {
  UnivMonConfig cfg;
  cfg.levels = 4;
  cfg.depth = 3;
  cfg.top_width = 256;
  cfg.min_width = 128;
  cfg.heap_capacity = 16;
  cfg.heap_margin = margin;
  return cfg;
}

/// Feed heavy flows plus a unique-flow churn storm, interleaved so the
/// heavies keep appearing (a *persistent* heavy hitter, not a one-shot
/// prefix).  Returns the number of heavies still tracked at level 0.
std::size_t survivors_after_storm(UnivMon& um) {
  constexpr std::size_t kHeavies = 8;
  constexpr std::int64_t kHeavyReps = 300;
  constexpr std::size_t kStorm = 60'000;
  // Warm-up: establish the heavies before the storm begins.
  for (std::int64_t r = 0; r < kHeavyReps; ++r) {
    for (std::size_t h = 0; h < kHeavies; ++h) um.update(key_of(h, kHeavyFamily));
  }
  for (std::size_t i = 0; i < kStorm; ++i) {
    um.update(key_of(i, kChurnFamily));
    if (i % 100 == 0) {  // the heavies keep talking during the storm
      for (std::size_t h = 0; h < kHeavies; ++h) um.update(key_of(h, kHeavyFamily));
    }
  }
  std::size_t survivors = 0;
  for (std::size_t h = 0; h < kHeavies; ++h) {
    if (um.level_heap(0).contains(key_of(h, kHeavyFamily))) ++survivors;
  }
  return survivors;
}

TEST(TopKGuard, MarginKeepsHeaviesThroughAChurnStormInAFullUnivMon) {
  UnivMon guarded(guard_config(/*margin=*/40), /*seed=*/7);
  const std::size_t kept = survivors_after_storm(guarded);
  EXPECT_EQ(kept, 8u);
  // The guard visibly worked: storm offers were rejected at the margin,
  // and tracked-key eviction stayed far below the unguarded run's.
  EXPECT_GT(guarded.level_heap(0).margin_rejects(), 0u);

  UnivMon classic(guard_config(/*margin=*/0), /*seed=*/7);
  const std::size_t classic_kept = survivors_after_storm(classic);
  EXPECT_GE(guarded.heap_evictions() + 1'000, classic.heap_evictions());
  // Document the asymmetry the guard exists for — the classic heap churns
  // several times harder under the same storm (the margin still admits
  // genuinely larger keys, so some eviction remains).
  EXPECT_GT(classic.heap_evictions(), 3 * guarded.heap_evictions());
  (void)classic_kept;  // may or may not survive; only the guarded run is pinned
}

}  // namespace
}  // namespace nitro::sketch
