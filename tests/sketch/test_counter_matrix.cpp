#include "sketch/counter_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(CounterMatrix, StartsZeroed) {
  CounterMatrix m(3, 16, 1, false);
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (auto c : m.row(r)) EXPECT_EQ(c, 0);
  }
}

TEST(CounterMatrix, UnsignedUpdateAddsDelta) {
  CounterMatrix m(3, 16, 1, false);
  const FlowKey k = flow_key_for_rank(1, 0);
  m.update_row(0, k, 5);
  EXPECT_EQ(m.row_estimate(0, k), 5);
  m.update_row(0, k, 2);
  EXPECT_EQ(m.row_estimate(0, k), 7);
}

TEST(CounterMatrix, SignedEstimateUndoesSign) {
  CounterMatrix m(5, 64, 2, true);
  const FlowKey k = flow_key_for_rank(3, 0);
  for (std::uint32_t r = 0; r < 5; ++r) m.update_row(r, k, 10);
  for (std::uint32_t r = 0; r < 5; ++r) EXPECT_EQ(m.row_estimate(r, k), 10);
}

TEST(CounterMatrix, RowsAreIndependent) {
  CounterMatrix m(2, 16, 3, false);
  const FlowKey k = flow_key_for_rank(7, 0);
  m.update_row(0, k, 4);
  EXPECT_EQ(m.row_estimate(0, k), 4);
  EXPECT_EQ(m.row_estimate(1, k), 0);
}

TEST(CounterMatrix, RowSumTracksUnsignedMass) {
  CounterMatrix m(2, 32, 4, false);
  for (int i = 0; i < 100; ++i) m.update_row(0, flow_key_for_rank(i, 0), 1);
  EXPECT_EQ(m.row_sum(0), 100);
  EXPECT_EQ(m.row_sum(1), 0);
}

TEST(CounterMatrix, RowSumSquares) {
  CounterMatrix m(1, 8, 5, false);
  const FlowKey k = flow_key_for_rank(0, 0);
  m.update_row(0, k, 3);
  EXPECT_DOUBLE_EQ(m.row_sum_squares(0), 9.0);
}

TEST(CounterMatrix, ClearZeroesEverything) {
  CounterMatrix m(2, 8, 6, true);
  m.update_row(0, flow_key_for_rank(0, 0), 9);
  m.clear();
  for (std::uint32_t r = 0; r < 2; ++r) {
    for (auto c : m.row(r)) EXPECT_EQ(c, 0);
  }
}

TEST(CounterMatrix, MergeAddsElementwise) {
  CounterMatrix a(2, 8, 7, false), b(2, 8, 7, false);
  const FlowKey k = flow_key_for_rank(11, 0);
  a.update_row(0, k, 3);
  b.update_row(0, k, 4);
  a.merge(b);
  EXPECT_EQ(a.row_estimate(0, k), 7);
}

TEST(CounterMatrix, UpdateViaDigestMatchesKeyPath) {
  CounterMatrix a(3, 32, 8, true), b(3, 32, 8, true);
  const FlowKey k = flow_key_for_rank(5, 1);
  a.update_row(1, k, 6);
  b.update_row_digest(1, flow_digest(k), 6);
  EXPECT_EQ(a.row_estimate(1, k), b.row_estimate(1, k));
}

TEST(CounterMatrix, AddAtWritesRawCell) {
  CounterMatrix m(1, 8, 9, false);
  m.add_at(0, 3, 42);
  EXPECT_EQ(m.row(0)[3], 42);
}

TEST(CounterMatrix, MemoryBytesMatchesShape) {
  CounterMatrix m(5, 1000, 10, false);
  EXPECT_EQ(m.memory_bytes(), 5u * 1000u * sizeof(std::int64_t));
}

TEST(CounterMatrix, RowsAreCacheLineAligned) {
  // Width 10 is not a multiple of the 8 counters per 64B line, so the
  // stride must pad up to 16 and every row must start on its own line.
  CounterMatrix m(5, 10, 11, false);
  EXPECT_EQ(m.stride() % CounterMatrix::kLineCounters, 0u);
  EXPECT_GE(m.stride(), 10u);
  for (std::uint32_t r = 0; r < 5; ++r) {
    const auto addr = reinterpret_cast<std::uintptr_t>(m.row(r).data());
    EXPECT_EQ(addr % kCacheLineBytes, 0u) << "row " << r;
  }
}

TEST(CounterMatrix, PaddedStorageStaysInvisible) {
  CounterMatrix a(3, 10, 12, false), b(3, 10, 12, false);
  const FlowKey k = flow_key_for_rank(4, 0);
  a.update_row(1, k, 3);
  b.update_row(1, k, 4);
  a.merge(b);
  EXPECT_EQ(a.row_estimate(1, k), 7);
  EXPECT_EQ(a.row(1).size(), 10u);  // padding never leaks into row views
  EXPECT_EQ(a.row_sum(1), 7);
}

TEST(CounterMatrix, RowSumSquaresCompensated) {
  // One giant counter (square 2^54, ulp 4) plus 127 unit counters: naive
  // accumulation rounds every +1 away and returns exactly 2^54; the
  // compensated sum keeps all 127.
  CounterMatrix m(1, 256, 13, false);
  m.add_at(0, 0, std::int64_t{1} << 27);
  for (std::uint32_t c = 1; c <= 127; ++c) m.add_at(0, c, 1);
  EXPECT_DOUBLE_EQ(m.row_sum_squares(0), std::ldexp(1.0, 54) + 127.0);
}

TEST(CounterMatrix, SignedFlagReflectsConstruction) {
  EXPECT_TRUE(CounterMatrix(1, 4, 1, true).signed_updates());
  EXPECT_FALSE(CounterMatrix(1, 4, 1, false).signed_updates());
}

}  // namespace
}  // namespace nitro::sketch
