#include "sketch/space_saving.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) ss.update(flow_key_for_rank(i, 0), 10 * (i + 1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ss.query(flow_key_for_rank(i, 0)), 10 * (i + 1));
    EXPECT_EQ(ss.guaranteed(flow_key_for_rank(i, 0)), 10 * (i + 1));
  }
}

TEST(SpaceSaving, NeverUnderestimates) {
  SpaceSaving ss(16);
  trace::WorkloadSpec spec;
  spec.packets = 20000;
  spec.flows = 1000;
  spec.seed = 1;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) ss.update(p.key);
  for (const auto& [key, count] : truth.counts()) {
    const auto est = ss.query(key);
    if (est != 0) EXPECT_GE(est, count);
  }
}

TEST(SpaceSaving, ErrorBoundedByL1OverK) {
  constexpr std::size_t kK = 64;
  SpaceSaving ss(kK);
  trace::WorkloadSpec spec;
  spec.packets = 50000;
  spec.flows = 3000;
  spec.seed = 2;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) ss.update(p.key);
  const auto bound = static_cast<std::int64_t>(spec.packets / kK);
  for (const auto& [key, count] : truth.counts()) {
    const auto est = ss.query(key);
    if (est != 0) EXPECT_LE(est - count, bound);
  }
}

TEST(SpaceSaving, FindsEveryFlowAboveL1OverK) {
  constexpr std::size_t kK = 32;
  SpaceSaving ss(kK);
  trace::WorkloadSpec spec;
  spec.packets = 60000;
  spec.flows = 5000;
  spec.seed = 3;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) ss.update(p.key);
  const auto threshold = static_cast<std::int64_t>(spec.packets / kK);
  for (const auto& [key, count] : truth.counts()) {
    if (count > threshold) {
      EXPECT_GT(ss.query(key), 0) << "flow of size " << count << " missing";
    }
  }
}

TEST(SpaceSaving, CapacityRespected) {
  SpaceSaving ss(4);
  for (int i = 0; i < 100; ++i) ss.update(flow_key_for_rank(i, 0));
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSaving, TakeoverInheritsMinAsError) {
  SpaceSaving ss(1);
  ss.update(flow_key_for_rank(0, 0), 7);
  ss.update(flow_key_for_rank(1, 0), 1);  // takes over: count = 8, error = 7
  EXPECT_EQ(ss.query(flow_key_for_rank(1, 0)), 8);
  EXPECT_EQ(ss.guaranteed(flow_key_for_rank(1, 0)), 1);
  EXPECT_EQ(ss.query(flow_key_for_rank(0, 0)), 0);  // evicted
}

TEST(SpaceSaving, HeavyHittersSortedDescending) {
  SpaceSaving ss(16);
  for (int i = 0; i < 8; ++i) {
    for (int r = 0; r < 100 * (i + 1); ++r) ss.update(flow_key_for_rank(i, 0));
  }
  const auto hh = ss.heavy_hitters(300);
  ASSERT_FALSE(hh.empty());
  for (std::size_t i = 1; i < hh.size(); ++i) EXPECT_GE(hh[i - 1].second, hh[i].second);
  EXPECT_EQ(hh.front().first, flow_key_for_rank(7, 0));
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.update(flow_key_for_rank(0, 0), 9);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total(), 0);
  EXPECT_EQ(ss.min_count(), 0);
}

TEST(SpaceSaving, MinCountIsHeapRoot) {
  SpaceSaving ss(3);
  ss.update(flow_key_for_rank(0, 0), 5);
  ss.update(flow_key_for_rank(1, 0), 2);
  ss.update(flow_key_for_rank(2, 0), 9);
  EXPECT_EQ(ss.min_count(), 2);
}

}  // namespace
}  // namespace nitro::sketch
