// Merge-correctness property tests: merging per-shard sketches built with
// the same seeds/dimensions must equal a single sketch fed the union
// stream — exactly, because the sketches are linear in their counters.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/counter_matrix.hpp"
#include "sketch/kary.hpp"
#include "sketch/topk.hpp"
#include "sketch/univmon.hpp"
#include "trace/workloads.hpp"

namespace nitro::sketch {
namespace {

using trace::flow_key_for_rank;

trace::Trace merge_trace(std::uint64_t packets = 60000, std::uint64_t seed = 31) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 1500;
  spec.seed = seed;
  return trace::caida_like(spec);
}

/// Feed `stream` split across `k` shard instances (sticky per-flow
/// partition), merge the shards into shard 0, and return it.
template <typename Sketch, typename MakeSketch>
Sketch sharded_merge(const trace::Trace& stream, std::size_t k,
                     MakeSketch make_sketch) {
  std::vector<Sketch> shards;
  for (std::size_t i = 0; i < k; ++i) shards.push_back(make_sketch());
  for (const auto& p : stream) {
    shards[flow_digest(p.key) % k].update(p.key, 1);
  }
  for (std::size_t i = 1; i < k; ++i) shards[0].merge(shards[i]);
  return std::move(shards[0]);
}

TEST(CounterMatrixMerge, AddsCountersElementWise) {
  CounterMatrix a(3, 64, 5, false);
  CounterMatrix b(3, 64, 5, false);
  for (int i = 0; i < 200; ++i) {
    a.update_row(static_cast<std::uint32_t>(i % 3), flow_key_for_rank(i, 1), 2);
    b.update_row(static_cast<std::uint32_t>(i % 3), flow_key_for_rank(i + 50, 1), 3);
  }
  CounterMatrix expect(3, 64, 5, false);
  for (int i = 0; i < 200; ++i) {
    expect.update_row(static_cast<std::uint32_t>(i % 3), flow_key_for_rank(i, 1), 2);
    expect.update_row(static_cast<std::uint32_t>(i % 3), flow_key_for_rank(i + 50, 1), 3);
  }
  a.merge(b);
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto got = a.row(r);
    const auto want = expect.row(r);
    for (std::uint32_t c = 0; c < 64; ++c) EXPECT_EQ(got[c], want[c]);
  }
}

TEST(CounterMatrixMerge, RejectsMismatchedShapeOrSeed) {
  CounterMatrix base(3, 64, 5, false);
  CounterMatrix other_seed(3, 64, 6, false);
  CounterMatrix other_width(3, 128, 5, false);
  CounterMatrix other_depth(4, 64, 5, false);
  CounterMatrix other_sign(3, 64, 5, true);
  EXPECT_THROW(base.merge(other_seed), std::invalid_argument);
  EXPECT_THROW(base.merge(other_width), std::invalid_argument);
  EXPECT_THROW(base.merge(other_depth), std::invalid_argument);
  EXPECT_THROW(base.merge(other_sign), std::invalid_argument);
  EXPECT_FALSE(base.mergeable_with(other_seed));
  EXPECT_TRUE(base.mergeable_with(base));
}

TEST(CountMinMerge, ShardedMergeEqualsUnionStreamExactly) {
  const auto stream = merge_trace();
  const auto merged = sharded_merge<CountMinSketch>(
      stream, 4, [] { return CountMinSketch(5, 2048, 11); });
  CountMinSketch single(5, 2048, 11);
  for (const auto& p : stream) single.update(p.key, 1);
  EXPECT_EQ(merged.total(), single.total());
  for (int rank = 0; rank < 2000; ++rank) {
    const auto key = flow_key_for_rank(rank, 31);
    EXPECT_EQ(merged.query(key), single.query(key)) << "rank " << rank;
  }
}

TEST(CountSketchMerge, ShardedMergeEqualsUnionStreamExactly) {
  const auto stream = merge_trace();
  const auto merged = sharded_merge<CountSketch>(
      stream, 3, [] { return CountSketch(5, 2048, 12); });
  CountSketch single(5, 2048, 12);
  for (const auto& p : stream) single.update(p.key, 1);
  for (int rank = 0; rank < 2000; ++rank) {
    const auto key = flow_key_for_rank(rank, 31);
    EXPECT_EQ(merged.query(key), single.query(key)) << "rank " << rank;
  }
}

TEST(KAryMerge, FoldsStreamTotalsIntoUnbiasedEstimator) {
  const auto stream = merge_trace();
  const auto merged = sharded_merge<KArySketch>(
      stream, 4, [] { return KArySketch(5, 2048, 13); });
  KArySketch single(5, 2048, 13);
  for (const auto& p : stream) single.update(p.key, 1);
  // The estimator divides by S: only a merge that also folds the shard
  // totals reproduces the single-sketch estimates.
  EXPECT_EQ(merged.total(), single.total());
  EXPECT_EQ(merged.total(), static_cast<std::int64_t>(stream.size()));
  for (int rank = 0; rank < 500; ++rank) {
    const auto key = flow_key_for_rank(rank, 31);
    EXPECT_DOUBLE_EQ(merged.query(key), single.query(key)) << "rank " << rank;
  }
}

TEST(TopKHeapMerge, UnionsEntriesThroughNormalOfferPath) {
  TopKHeap a(3);
  TopKHeap b(3);
  a.offer(flow_key_for_rank(0, 0), 100);
  a.offer(flow_key_for_rank(1, 0), 50);
  b.offer(flow_key_for_rank(1, 0), 70);  // same key, larger estimate
  b.offer(flow_key_for_rank(2, 0), 60);
  b.offer(flow_key_for_rank(3, 0), 5);
  a.merge(b);
  const auto entries = a.entries_sorted();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].estimate, 100);
  EXPECT_EQ(entries[1].key, flow_key_for_rank(1, 0));
  EXPECT_EQ(entries[1].estimate, 70);
  EXPECT_EQ(entries[2].estimate, 60);
}

TEST(TopKHeapMerge, ReestimatorRewritesIncomingEstimates) {
  TopKHeap a(4);
  TopKHeap b(4);
  b.offer(flow_key_for_rank(7, 0), 10);
  b.offer(flow_key_for_rank(8, 0), 20);
  // Merging against a global view: the per-shard estimates are discarded
  // in favour of whatever the re-estimator reports.
  a.merge(b, [](const FlowKey&, std::int64_t est) { return est * 3; });
  const auto entries = a.entries_sorted();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].estimate, 60);
  EXPECT_EQ(entries[1].estimate, 30);
}

TEST(UnivMonMerge, MergedLevelsMatchUnionStream) {
  UnivMonConfig cfg;
  cfg.levels = 6;
  cfg.depth = 4;
  cfg.top_width = 1024;
  const auto stream = merge_trace(40000, 31);
  UnivMon a(cfg, 21);
  UnivMon b(cfg, 21);
  UnivMon single(cfg, 21);
  std::size_t i = 0;
  for (const auto& p : stream) {
    ((i++ % 2 == 0) ? a : b).update(p.key, 1);
    single.update(p.key, 1);
  }
  a.merge(b);
  for (int rank = 0; rank < 300; ++rank) {
    const auto key = flow_key_for_rank(rank, 31);
    EXPECT_EQ(a.query(key), single.query(key)) << "rank " << rank;
  }
}

}  // namespace
}  // namespace nitro::sketch
