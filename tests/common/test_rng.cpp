#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace nitro {
namespace {

TEST(Pcg32, DeterministicFromSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(7, 1), b(7, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, DoubleOpen0NeverZero) {
  Pcg32 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double_open0();
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Pcg32, DoubleMeanIsHalf) {
  Pcg32 rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(17);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Pcg32, NextBelowIsRoughlyUniform) {
  Pcg32 rng(19);
  std::array<int, 10> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[rng.next_below(10)] += 1;
  for (int c : counts) {
    EXPECT_GT(c, kN / 10 * 0.9);
    EXPECT_LT(c, kN / 10 * 1.1);
  }
}

TEST(Pcg32, SatisfiesUniformRandomBitGenerator) {
  static_assert(Pcg32::min() == 0);
  static_assert(Pcg32::max() == 0xffffffffu);
  Pcg32 rng(3);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedSensitivity) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace nitro
