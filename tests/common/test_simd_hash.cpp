#include "common/simd_hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "trace/workloads.hpp"

namespace nitro {
namespace {

std::array<FlowKey, 8> sample_keys(std::uint64_t family) {
  std::array<FlowKey, 8> keys;
  for (int i = 0; i < 8; ++i) keys[i] = trace::flow_key_for_rank(i, family);
  return keys;
}

TEST(SimdHash, MatchesScalarXxHash32) {
  for (std::uint64_t family = 0; family < 50; ++family) {
    const auto keys = sample_keys(family);
    std::uint32_t out[8];
    xxhash32_x8_flowkeys(keys.data(), 0, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], xxhash32(&keys[i], sizeof(FlowKey), 0))
          << "family " << family << " lane " << i;
    }
  }
}

TEST(SimdHash, MatchesScalarAcrossSeeds) {
  const auto keys = sample_keys(7);
  for (std::uint32_t seed : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    std::uint32_t out[8];
    xxhash32_x8_flowkeys(keys.data(), seed, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], xxhash32(&keys[i], sizeof(FlowKey), seed)) << seed;
    }
  }
}

TEST(SimdHash, IdenticalKeysProduceIdenticalLanes) {
  std::array<FlowKey, 8> keys;
  keys.fill(trace::flow_key_for_rank(3, 1));
  std::uint32_t out[8];
  xxhash32_x8_flowkeys(keys.data(), 42, out);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(out[i], out[0]);
}

TEST(SimdHash, DistinctKeysProduceDistinctLanes) {
  const auto keys = sample_keys(9);
  std::uint32_t out[8];
  xxhash32_x8_flowkeys(keys.data(), 0, out);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) EXPECT_NE(out[i], out[j]);
  }
}

TEST(SimdHash, AvailabilityFlagConsistentWithBuild) {
#if defined(__AVX2__)
  EXPECT_TRUE(simd_hash_available());
#else
  EXPECT_FALSE(simd_hash_available());
#endif
}

std::array<FlowKey, 16> random_keys16(Pcg32& rng) {
  std::array<FlowKey, 16> keys;
  for (auto& k : keys) {
    k.src_ip = rng.next();
    k.dst_ip = rng.next();
    k.src_port = static_cast<std::uint16_t>(rng.next());
    k.dst_port = static_cast<std::uint16_t>(rng.next());
    k.proto = static_cast<std::uint8_t>(rng.next());
  }
  return keys;
}

TEST(SimdHash, X16MatchesScalarXxHash64OnRandomKeys) {
  // Whatever tier the dispatch lands on (AVX-512 ZMM kernel, two x8
  // calls, or scalar lanes), x16 must be byte-identical to the scalar
  // reference on arbitrary keys.
  Pcg32 rng(0x5151);
  for (int round = 0; round < 200; ++round) {
    const auto keys = random_keys16(rng);
    std::uint64_t out[16];
    const std::uint64_t seed = rng.next_u64();
    xxhash64_x16_flowkeys(keys.data(), seed, out);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(out[i], xxhash64(&keys[i], sizeof(FlowKey), seed))
          << "round " << round << " lane " << i;
    }
  }
}

TEST(SimdHash, X16MatchesX8Halves) {
  Pcg32 rng(0x7a7a);
  for (int round = 0; round < 100; ++round) {
    const auto keys = random_keys16(rng);
    std::uint64_t wide[16];
    std::uint64_t lo[8], hi[8];
    xxhash64_x16_flowkeys(keys.data(), 99, wide);
    xxhash64_x8_flowkeys(keys.data(), 99, lo);
    xxhash64_x8_flowkeys(keys.data() + 8, 99, hi);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(wide[i], lo[i]) << round;
      ASSERT_EQ(wide[8 + i], hi[i]) << round;
    }
  }
}

TEST(SimdHash, FlowDigestX16MatchesFlowDigest) {
  Pcg32 rng(0xd1d1);
  const auto keys = random_keys16(rng);
  std::uint64_t out[16];
  flow_digest_x16(keys.data(), out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], flow_digest(keys[i]));
}

TEST(SimdHash, IsaReportingIsCoherent) {
  const SimdIsa isa = simd_isa();
  const std::string name = simd_isa_name();
  switch (isa) {
    case SimdIsa::kAvx512:
      EXPECT_EQ(name, "avx512");
      EXPECT_TRUE(detail::avx512_kernel_compiled());
      EXPECT_EQ(simd_digest_batch(), 16u);
      break;
    case SimdIsa::kAvx2:
      EXPECT_EQ(name, "avx2");
      EXPECT_TRUE(simd_hash_available());
      EXPECT_EQ(simd_digest_batch(), 8u);
      break;
    case SimdIsa::kScalar:
      EXPECT_EQ(name, "scalar");
      EXPECT_FALSE(simd_hash_available());
      EXPECT_EQ(simd_digest_batch(), 8u);
      break;
  }
}

}  // namespace
}  // namespace nitro
