#include "common/simd_hash.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/hash.hpp"
#include "trace/workloads.hpp"

namespace nitro {
namespace {

std::array<FlowKey, 8> sample_keys(std::uint64_t family) {
  std::array<FlowKey, 8> keys;
  for (int i = 0; i < 8; ++i) keys[i] = trace::flow_key_for_rank(i, family);
  return keys;
}

TEST(SimdHash, MatchesScalarXxHash32) {
  for (std::uint64_t family = 0; family < 50; ++family) {
    const auto keys = sample_keys(family);
    std::uint32_t out[8];
    xxhash32_x8_flowkeys(keys.data(), 0, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], xxhash32(&keys[i], sizeof(FlowKey), 0))
          << "family " << family << " lane " << i;
    }
  }
}

TEST(SimdHash, MatchesScalarAcrossSeeds) {
  const auto keys = sample_keys(7);
  for (std::uint32_t seed : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    std::uint32_t out[8];
    xxhash32_x8_flowkeys(keys.data(), seed, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], xxhash32(&keys[i], sizeof(FlowKey), seed)) << seed;
    }
  }
}

TEST(SimdHash, IdenticalKeysProduceIdenticalLanes) {
  std::array<FlowKey, 8> keys;
  keys.fill(trace::flow_key_for_rank(3, 1));
  std::uint32_t out[8];
  xxhash32_x8_flowkeys(keys.data(), 42, out);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(out[i], out[0]);
}

TEST(SimdHash, DistinctKeysProduceDistinctLanes) {
  const auto keys = sample_keys(9);
  std::uint32_t out[8];
  xxhash32_x8_flowkeys(keys.data(), 0, out);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) EXPECT_NE(out[i], out[j]);
  }
}

TEST(SimdHash, AvailabilityFlagConsistentWithBuild) {
#if defined(__AVX2__)
  EXPECT_TRUE(simd_hash_available());
#else
  EXPECT_FALSE(simd_hash_available());
#endif
}

}  // namespace
}  // namespace nitro
