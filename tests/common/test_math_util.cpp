#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nitro {
namespace {

TEST(Median, OddCount) {
  std::vector<int> v{5, 1, 3};
  EXPECT_EQ(median(v), 3);
}

TEST(Median, EvenCountReturnsUpperMiddleOfSorted) {
  std::vector<int> v{4, 1, 3, 2};
  EXPECT_EQ(median(v), 3);  // nth_element at index size/2 = 2 -> value 3
}

TEST(Median, SingleElement) {
  std::vector<double> v{7.5};
  EXPECT_DOUBLE_EQ(median(v), 7.5);
}

TEST(Median, DoesNotMutateInput) {
  std::vector<int> v{9, 1, 5};
  (void)median(v);
  EXPECT_EQ(v, (std::vector<int>{9, 1, 5}));
}

TEST(Median, ThrowsOnEmpty) {
  std::vector<int> v;
  EXPECT_THROW((void)median(v), std::invalid_argument);
}

TEST(MeanStddev, BasicValues) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), 1.29099, 1e-4);
}

TEST(MeanStddev, DegenerateInputs) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(SnapProbabilityPow2, SnapsDownToPowersOfTwo) {
  EXPECT_DOUBLE_EQ(snap_probability_pow2(1.5), 1.0);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(1.0), 1.0);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.7), 0.5);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.5), 0.5);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.3), 0.25);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.1), 0.0625);
}

TEST(SnapProbabilityPow2, FloorsAtMaxShift) {
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.0001, 7), 1.0 / 128.0);
  EXPECT_DOUBLE_EQ(snap_probability_pow2(0.0001, 4), 1.0 / 16.0);
}

TEST(XLog2X, ZeroConvention) {
  EXPECT_DOUBLE_EQ(xlog2x(0.0), 0.0);
  EXPECT_DOUBLE_EQ(xlog2x(1.0), 0.0);
  EXPECT_DOUBLE_EQ(xlog2x(2.0), 2.0);
  EXPECT_DOUBLE_EQ(xlog2x(4.0), 8.0);
}

}  // namespace
}  // namespace nitro
