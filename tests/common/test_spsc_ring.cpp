#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace nitro {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, RejectsWhenFull) {
  SpscRing<int> ring(4);  // rounded to capacity >= 4
  const std::size_t cap = ring.capacity();
  for (std::size_t i = 0; i < cap; ++i) EXPECT_TRUE(ring.try_push(static_cast<int>(i)));
  EXPECT_FALSE(ring.try_push(999));
  int v;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.try_push(999));  // space again after a pop
}

TEST(SpscRing, EmptyInitially) {
  SpscRing<int> ring(16);
  EXPECT_TRUE(ring.empty_approx());
  int v;
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, SizeApproxTracksOccupancy) {
  SpscRing<int> ring(16);
  EXPECT_EQ(ring.size_approx(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size_approx(), 2u);
  int v;
  ring.try_pop(v);
  EXPECT_EQ(ring.size_approx(), 1u);
}

TEST(SpscRing, WrapAroundPreservesFifo) {
  SpscRing<int> ring(4);
  int v;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round * 2));
    EXPECT_TRUE(ring.try_push(round * 2 + 1));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round * 2);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round * 2 + 1);
  }
}

TEST(SpscRing, TwoThreadStressDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(1024);
  constexpr std::uint64_t kN = 500000;
  std::uint64_t consumed_sum = 0;
  std::uint64_t expected_next = 0;
  bool in_order = true;

  std::thread consumer([&] {
    std::uint64_t v;
    std::uint64_t received = 0;
    while (received < kN) {
      if (ring.try_pop(v)) {
        if (v != expected_next) in_order = false;
        ++expected_next;
        consumed_sum += v;
        ++received;
      }
    }
  });

  for (std::uint64_t i = 0; i < kN; ++i) {
    while (!ring.try_push(i)) {
      // producer spins when full
    }
  }
  consumer.join();

  EXPECT_TRUE(in_order);
  EXPECT_EQ(consumed_sum, kN * (kN - 1) / 2);
}

TEST(SpscRing, CapacityRoundedToPowerOfTwoMinusOne) {
  SpscRing<int> ring(100);
  EXPECT_GE(ring.capacity(), 100u);
}

}  // namespace
}  // namespace nitro
