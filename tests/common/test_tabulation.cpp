#include "common/tabulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

#include "trace/workloads.hpp"

namespace nitro {
namespace {

TEST(TabulationHash, Deterministic) {
  TabulationHash h(5);
  for (std::uint64_t x : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    EXPECT_EQ(h(x), h(x));
  }
}

TEST(TabulationHash, SeedSensitivity) {
  TabulationHash a(1), b(2);
  int equal = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (a(x) == b(x)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RowHash, IndexWithinWidth) {
  for (std::uint32_t width : {1u, 2u, 7u, 1000u, 65536u}) {
    RowHash h(width, 99);
    for (std::uint64_t d = 0; d < 2000; ++d) {
      EXPECT_LT(h.index_of_digest(mix64(d)), width);
    }
  }
}

TEST(RowHash, RoughlyUniformOverColumns) {
  constexpr std::uint32_t kWidth = 32;
  RowHash h(kWidth, 7);
  std::array<int, kWidth> counts{};
  constexpr int kN = 64000;
  for (std::uint64_t d = 0; d < kN; ++d) counts[h.index_of_digest(mix64(d))] += 1;
  const double expected = static_cast<double>(kN) / kWidth;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.85);
    EXPECT_LT(c, expected * 1.15);
  }
}

TEST(SignHash, UnsignedVariantAlwaysPlusOne) {
  SignHash g(123, /*signed_updates=*/false);
  for (std::uint64_t d = 0; d < 1000; ++d) EXPECT_EQ(g.sign_of_digest(d), 1);
}

TEST(SignHash, SignedVariantBalanced) {
  SignHash g(123, /*signed_updates=*/true);
  int plus = 0;
  constexpr int kN = 100000;
  for (std::uint64_t d = 0; d < kN; ++d) {
    const auto s = g.sign_of_digest(mix64(d));
    EXPECT_TRUE(s == 1 || s == -1);
    if (s == 1) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / kN, 0.5, 0.01);
}

TEST(SignHash, PairwiseIndependenceOfProducts) {
  // For pairwise-independent ±1 hashes, E[g(x)g(y)] = 0 for x != y.
  SignHash g(55, true);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    sum += g.sign_of_digest(mix64(i)) * g.sign_of_digest(mix64(i + kN));
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
}

TEST(LevelHash, FiresForHalfTheKeys) {
  LevelHash lh(31);
  int fired = 0;
  constexpr int kN = 50000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (lh(trace::flow_key_for_rank(i, 9))) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / kN, 0.5, 0.02);
}

TEST(RowHash, PairwiseCollisionRateMatchesUniform) {
  // Pr[h(x) = h(y)] should be ~1/w for x != y.
  constexpr std::uint32_t kWidth = 256;
  RowHash h(kWidth, 3);
  int collisions = 0;
  constexpr int kPairs = 200000;
  for (std::uint64_t i = 0; i < kPairs; ++i) {
    if (h.index_of_digest(mix64(2 * i)) == h.index_of_digest(mix64(2 * i + 1))) {
      ++collisions;
    }
  }
  const double rate = static_cast<double>(collisions) / kPairs;
  EXPECT_NEAR(rate, 1.0 / kWidth, 1.5 / kWidth);
}

}  // namespace
}  // namespace nitro
