#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

namespace nitro {
namespace {

// Reference vectors from the published xxHash specification.
TEST(XxHash32, KnownVectors) {
  EXPECT_EQ(xxhash32("", 0), 0x02CC5D05u);
  EXPECT_EQ(xxhash32("a", 0), 0x550D7456u);
  EXPECT_EQ(xxhash32("abc", 0), 0x32D153FFu);
}

TEST(XxHash64, KnownVectors) {
  EXPECT_EQ(xxhash64("", 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(xxhash64("a", 0), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(xxhash64("abc", 0), 0x44BC2CF5AD770999ull);
}

TEST(XxHash32, SeedChangesOutput) {
  const std::string s = "nitrosketch";
  EXPECT_NE(xxhash32(s, 0), xxhash32(s, 1));
  EXPECT_NE(xxhash32(s, 1), xxhash32(s, 2));
}

TEST(XxHash32, Deterministic) {
  const std::string s = "deterministic-input";
  EXPECT_EQ(xxhash32(s, 99), xxhash32(s, 99));
  EXPECT_EQ(xxhash64(s, 99), xxhash64(s, 99));
}

TEST(XxHash32, LongInputExercisesStripeLoop) {
  // >= 16 bytes takes the 4-lane path; make sure boundaries are stable.
  std::string s(64, 'x');
  const auto h64bytes = xxhash32(s, 7);
  s.push_back('y');
  const auto h65bytes = xxhash32(s, 7);
  EXPECT_NE(h64bytes, h65bytes);
  // Every prefix length from 0..64 must produce a distinct-ish value; at
  // minimum adjacent lengths must differ (no truncation bug).
  std::uint32_t prev = xxhash32(s.data(), 0, 7);
  for (std::size_t len = 1; len <= 64; ++len) {
    const std::uint32_t cur = xxhash32(s.data(), len, 7);
    EXPECT_NE(cur, prev) << "len=" << len;
    prev = cur;
  }
}

TEST(XxHash64, LongInputExercisesStripeLoop) {
  std::string s(96, 'z');
  std::uint64_t prev = xxhash64(s.data(), 0, 3);
  for (std::size_t len = 1; len <= 96; ++len) {
    const std::uint64_t cur = xxhash64(s.data(), len, 3);
    EXPECT_NE(cur, prev) << "len=" << len;
    prev = cur;
  }
}

TEST(XxHash32, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip ~half the output bits on average.
  std::array<std::uint8_t, 13> key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 37);
  const std::uint32_t base = xxhash32(key.data(), key.size(), 0);
  int total_flipped = 0;
  int cases = 0;
  for (std::size_t byte = 0; byte < key.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = key;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const std::uint32_t h = xxhash32(mutated.data(), mutated.size(), 0);
      total_flipped += __builtin_popcount(base ^ h);
      ++cases;
    }
  }
  const double avg = static_cast<double>(total_flipped) / cases;
  EXPECT_GT(avg, 12.0);  // ideal 16; generous band
  EXPECT_LT(avg, 20.0);
}

TEST(XxHash32, ValueOverloadMatchesBufferHash) {
  const std::uint64_t v = 0x0123456789abcdefULL;
  EXPECT_EQ(xxhash32_value(v, 5), xxhash32(&v, sizeof v, 5));
  EXPECT_EQ(xxhash64_value(v, 5), xxhash64(&v, sizeof v, 5));
}

TEST(XxHash32, Batch8MatchesScalar) {
  std::array<std::array<std::uint8_t, 13>, 8> keys{};
  std::array<const void*, 8> ptrs{};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 13; ++j) keys[i][j] = static_cast<std::uint8_t>(i * 13 + j);
    ptrs[i] = keys[i].data();
  }
  std::uint32_t out[8];
  xxhash32_batch8(ptrs.data(), 13, 77, out);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], xxhash32(keys[i].data(), 13, 77)) << i;
  }
}

TEST(Mix64, BijectiveOnSamples) {
  // mix64 is a bijection; no two of many sequential inputs may collide.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.push_back(mix64(i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(XxHash32, DistributionUniformAcrossBuckets) {
  // Chi-square-style sanity: hash sequential integers into 64 buckets.
  constexpr int kBuckets = 64;
  constexpr int kSamples = 64000;
  std::array<int, kBuckets> counts{};
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    counts[xxhash32_value(i, 0) % kBuckets] += 1;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.8);
    EXPECT_LT(c, expected * 1.2);
  }
}

}  // namespace
}  // namespace nitro
