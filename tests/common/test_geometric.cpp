#include "common/geometric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nitro {
namespace {

TEST(GeometricSampler, ProbabilityOneAlwaysReturnsOne) {
  GeometricSampler geo(1.0, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(geo.next(), 1u);
}

TEST(GeometricSampler, AlwaysAtLeastOne) {
  for (double p : {0.9, 0.5, 0.1, 0.01}) {
    GeometricSampler geo(p, 7);
    for (int i = 0; i < 10000; ++i) EXPECT_GE(geo.next(), 1u);
  }
}

// Parameterized property check: mean of Geometric(p) is 1/p, variance is
// (1-p)/p².  This is the mathematical-equivalence claim of Figure 5 —
// geometric gaps reproduce per-slot Bernoulli(p) statistics.
class GeometricMoments : public ::testing::TestWithParam<double> {};

TEST_P(GeometricMoments, MeanMatchesInverseP) {
  const double p = GetParam();
  GeometricSampler geo(p, 1234);
  constexpr int kN = 400000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(geo.next());
  const double mean = sum / kN;
  const double expected = 1.0 / p;
  const double stderr_mean = std::sqrt((1.0 - p) / (p * p) / kN);
  EXPECT_NEAR(mean, expected, 6.0 * stderr_mean + 1e-9) << "p=" << p;
}

TEST_P(GeometricMoments, VarianceMatchesTheory) {
  const double p = GetParam();
  GeometricSampler geo(p, 999);
  constexpr int kN = 400000;
  std::vector<double> xs(kN);
  double sum = 0.0;
  for (auto& x : xs) {
    x = static_cast<double>(geo.next());
    sum += x;
  }
  const double mean = sum / kN;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= kN;
  const double expected = (1.0 - p) / (p * p);
  EXPECT_NEAR(var / (expected + 1e-12), 1.0, 0.1) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(SweepP, GeometricMoments,
                         ::testing::Values(0.5, 0.25, 0.1, 0.05, 0.01, 1.0 / 128.0));

TEST(GeometricSampler, TailDecaysGeometrically) {
  // P(G > k) = (1-p)^k: check the empirical survival at k = 1/p.
  const double p = 0.1;
  GeometricSampler geo(p, 4321);
  constexpr int kN = 200000;
  int beyond = 0;
  const std::uint64_t k = 10;  // 1/p
  for (int i = 0; i < kN; ++i) {
    if (geo.next() > k) ++beyond;
  }
  const double expected = std::pow(1.0 - p, static_cast<double>(k));
  EXPECT_NEAR(static_cast<double>(beyond) / kN, expected, 0.01);
}

TEST(GeometricSampler, SetProbabilityTakesEffect) {
  GeometricSampler geo(0.5, 8);
  geo.set_probability(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geo.next(), 1u);
  geo.set_probability(0.01);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(geo.next());
  EXPECT_NEAR(sum / kN, 100.0, 5.0);
}

TEST(GeometricSampler, DeterministicFromSeed) {
  GeometricSampler a(0.05, 77), b(0.05, 77);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace nitro
