#include "common/flow_key.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace nitro {
namespace {

FlowKey sample_key() {
  FlowKey k;
  k.src_ip = 0x0a000001;  // 10.0.0.1
  k.dst_ip = 0xc0a80102;  // 192.168.1.2
  k.src_port = 1234;
  k.dst_port = 80;
  k.proto = 6;
  return k;
}

TEST(FlowKey, PackedSizeIs13Bytes) {
  EXPECT_EQ(sizeof(FlowKey), 13u);
}

TEST(FlowKey, EqualityComparesAllFields) {
  FlowKey a = sample_key();
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.src_port = 9999;
  EXPECT_NE(a, b);
  b = a;
  b.proto = 17;
  EXPECT_NE(a, b);
}

TEST(FlowKey, OrderingIsTotal) {
  FlowKey a = sample_key();
  FlowKey b = a;
  b.dst_port = a.dst_port + 1;
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(FlowKey, DigestIsStable) {
  EXPECT_EQ(flow_digest(sample_key()), flow_digest(sample_key()));
}

TEST(FlowKey, DigestSeparatesDistinctKeys) {
  std::unordered_set<std::uint64_t> digests;
  FlowKey k = sample_key();
  for (std::uint32_t i = 0; i < 10000; ++i) {
    k.src_ip = i;
    digests.insert(flow_digest(k));
  }
  EXPECT_EQ(digests.size(), 10000u);  // 64-bit digests: collisions ~0
}

TEST(FlowKey, StdHashUsable) {
  std::unordered_set<FlowKey> set;
  FlowKey k = sample_key();
  set.insert(k);
  EXPECT_TRUE(set.count(k));
  k.dst_ip += 1;
  EXPECT_FALSE(set.count(k));
}

TEST(FlowKey, ToStringFormatsTuple) {
  EXPECT_EQ(to_string(sample_key()), "10.0.0.1:1234 -> 192.168.1.2:80/6");
}

TEST(FlowKey, DefaultConstructedIsZero) {
  FlowKey k;
  EXPECT_EQ(k.src_ip, 0u);
  EXPECT_EQ(k.dst_ip, 0u);
  EXPECT_EQ(k.src_port, 0);
  EXPECT_EQ(k.dst_port, 0);
  EXPECT_EQ(k.proto, 0);
}

}  // namespace
}  // namespace nitro
