#include "core/row_sampler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace nitro::core {
namespace {

TEST(RowSampler, ProbabilityOneUpdatesEveryRow) {
  RowSampler s(5, 1.0, 1);
  std::uint32_t rows[64];
  for (int pkt = 0; pkt < 100; ++pkt) {
    const std::uint32_t n = s.rows_for_packet(rows);
    ASSERT_EQ(n, 5u);
    for (std::uint32_t r = 0; r < 5; ++r) EXPECT_EQ(rows[r], r);
  }
}

TEST(RowSampler, IncrementIsInverseProbability) {
  EXPECT_EQ(RowSampler(5, 1.0, 1).increment(), 1);
  EXPECT_EQ(RowSampler(5, 0.5, 1).increment(), 2);
  EXPECT_EQ(RowSampler(5, 0.01, 1).increment(), 100);
  EXPECT_EQ(RowSampler(5, 1.0 / 128.0, 1).increment(), 128);
}

TEST(RowSampler, EffectiveProbabilityRoundsToExactInverse) {
  RowSampler s(5, 0.3, 1);  // 1/0.3 = 3.33 -> increment 3 -> p = 1/3
  EXPECT_EQ(s.increment(), 3);
  EXPECT_NEAR(s.probability(), 1.0 / 3.0, 1e-12);
}

// The marginal probability that any given (packet, row) slot is updated
// must equal p — the equivalence claim of Figure 5.
class RowSamplerMarginals : public ::testing::TestWithParam<double> {};

TEST_P(RowSamplerMarginals, PerRowUpdateRateIsP) {
  const double p = GetParam();
  constexpr std::uint32_t kDepth = 5;
  RowSampler s(kDepth, p, 42);
  const double effective = s.probability();
  std::array<std::uint64_t, kDepth> row_updates{};
  std::uint32_t rows[64];
  constexpr std::uint64_t kPackets = 300000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    const std::uint32_t n = s.rows_for_packet(rows);
    for (std::uint32_t j = 0; j < n; ++j) row_updates[rows[j]] += 1;
  }
  for (std::uint32_t r = 0; r < kDepth; ++r) {
    const double rate = static_cast<double>(row_updates[r]) / kPackets;
    const double sigma = std::sqrt(effective * (1 - effective) / kPackets);
    EXPECT_NEAR(rate, effective, 6 * sigma + 1e-4) << "row " << r << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(SweepP, RowSamplerMarginals,
                         ::testing::Values(0.5, 0.2, 0.1, 0.05, 0.01, 1.0 / 128.0));

TEST(RowSampler, SkipsWholePacketsAtSmallP) {
  RowSampler s(5, 0.001, 7);
  std::uint32_t rows[64];
  std::uint64_t zero_packets = 0;
  constexpr std::uint64_t kPackets = 100000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    if (s.rows_for_packet(rows) == 0) ++zero_packets;
  }
  // P(packet untouched) = (1-p)^5 ~ 0.995
  EXPECT_GT(static_cast<double>(zero_packets) / kPackets, 0.99);
}

TEST(RowSampler, SetProbabilityChangesRate) {
  RowSampler s(4, 1.0, 9);
  std::uint32_t rows[64];
  s.set_probability(0.01);
  std::uint64_t updates = 0;
  constexpr std::uint64_t kPackets = 200000;
  for (std::uint64_t i = 0; i < kPackets; ++i) updates += s.rows_for_packet(rows);
  EXPECT_NEAR(static_cast<double>(updates) / (4.0 * kPackets), 0.01, 0.002);
}

TEST(RowSampler, RowsAreStrictlyIncreasingWithinPacket) {
  RowSampler s(8, 0.6, 11);
  std::uint32_t rows[64];
  for (int pkt = 0; pkt < 10000; ++pkt) {
    const std::uint32_t n = s.rows_for_packet(rows);
    for (std::uint32_t j = 1; j < n; ++j) {
      EXPECT_LT(rows[j - 1], rows[j]);
    }
    for (std::uint32_t j = 0; j < n; ++j) EXPECT_LT(rows[j], 8u);
  }
}

TEST(RowSampler, DeterministicFromSeed) {
  RowSampler a(5, 0.1, 123), b(5, 0.1, 123);
  std::uint32_t ra[64], rb[64];
  for (int pkt = 0; pkt < 5000; ++pkt) {
    const std::uint32_t na = a.rows_for_packet(ra);
    const std::uint32_t nb = b.rows_for_packet(rb);
    ASSERT_EQ(na, nb);
    for (std::uint32_t j = 0; j < na; ++j) EXPECT_EQ(ra[j], rb[j]);
  }
}

TEST(RowSampler, PacketsUntilNextSampleConsistent) {
  RowSampler s(5, 0.02, 13);
  std::uint32_t rows[64];
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t promised_skips = s.packets_until_next_sample();
    if (promised_skips > 0) {
      EXPECT_FALSE(s.current_packet_sampled());
      EXPECT_EQ(s.rows_for_packet(rows), 0u);
    } else {
      EXPECT_TRUE(s.current_packet_sampled());
      EXPECT_GT(s.rows_for_packet(rows), 0u);
    }
  }
}

}  // namespace
}  // namespace nitro::core
