// Cross-mode behavioral tests of the NitroSketch framework: mode
// transitions, bursty-arrival adaptation, and end-to-end change detection
// under sampling.
#include <gtest/gtest.h>

#include "control/estimation.hpp"
#include "core/nitro_sketch.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using sketch::CountSketch;
using trace::flow_key_for_rank;

TEST(Modes, AlwaysLineRateBurstRaisesThenLowersP) {
  NitroConfig cfg;
  cfg.mode = Mode::kAlwaysLineRate;
  cfg.probability = 1.0 / 128.0;
  cfg.target_sampled_rate_pps = 625000.0;
  cfg.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 4096, 1), cfg);

  // Phase 1: slow traffic (0.5Mpps) for 3 epochs -> p should sit at 1.
  std::uint64_t now = 0;
  for (int i = 0; i < 200'000; ++i) {
    now += 2000;  // 0.5Mpps
    nitro.update(flow_key_for_rank(i % 100, 1), 1, now);
  }
  EXPECT_DOUBLE_EQ(nitro.current_probability(), 1.0);

  // Phase 2: a 40Mpps burst -> p collapses to 1/64.
  for (int i = 0; i < 8'000'000; ++i) {
    now += 25;
    nitro.update(flow_key_for_rank(i % 100, 1), 1, now);
  }
  EXPECT_DOUBLE_EQ(nitro.current_probability(), 1.0 / 64.0);

  // Phase 3: traffic calms down again -> p recovers upward.
  for (int i = 0; i < 300'000; ++i) {
    now += 2000;
    nitro.update(flow_key_for_rank(i % 100, 1), 1, now);
  }
  EXPECT_DOUBLE_EQ(nitro.current_probability(), 1.0);
}

TEST(Modes, AlwaysCorrectConvergencePointMatchesTheorem) {
  NitroConfig ac;
  ac.mode = Mode::kAlwaysCorrect;
  ac.probability = 0.05;
  ac.epsilon = 0.2;
  ac.convergence_check_interval = 500;
  ac.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 8192, 3), ac);

  // T = 121(1+eps*sqrt(p))/(eps^4 p^2) ~ 31.4M; with ~200 uniform flows the
  // row L2^2 after n packets is ~ n^2/200, so convergence near n ~ 79K.
  trace::WorkloadSpec spec;
  spec.packets = 400'000;
  spec.flows = 200;
  spec.zipf_s = 0.01;  // near-uniform
  spec.seed = 4;
  const auto stream = trace::caida_like(spec);
  std::uint64_t converged_at = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    nitro.update(stream[i].key);
    if (converged_at == 0 && nitro.converged()) converged_at = i + 1;
  }
  ASSERT_GT(converged_at, 0u);
  EXPECT_GT(converged_at, 30'000u);
  EXPECT_LT(converged_at, 300'000u);
}

TEST(Modes, FixedRateKAryChangeDetectionEndToEnd) {
  // Two sampled K-ary epochs: the injected spike must dominate the
  // change report.
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = 0.05;
  cfg.track_top_keys = false;
  NitroKAry prev(sketch::KArySketch(8, 8192, 5), cfg);
  NitroKAry cur(sketch::KArySketch(8, 8192, 5), cfg);

  trace::WorkloadSpec spec;
  spec.packets = 200'000;
  spec.flows = 5000;
  spec.seed = 6;
  const auto stream = trace::caida_like(spec);
  for (const auto& p : stream) prev.update(p.key);
  const FlowKey spiked = flow_key_for_rank(777777, 0x5a1ceULL);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    cur.update(stream[i].key);
    if (i % 50 == 0) cur.update(spiked);  // 4000 extra packets
  }
  const std::int64_t diff = std::llabs(cur.query(spiked) - prev.query(spiked));
  EXPECT_NEAR(static_cast<double>(diff), 4000.0, 1500.0);
}

TEST(Modes, VanillaAndFixedRateConvergeToSameHeavyHitters) {
  trace::WorkloadSpec spec;
  spec.packets = 400'000;
  spec.flows = 20'000;
  spec.seed = 7;
  const auto stream = trace::caida_like(spec);
  trace::GroundTruth truth(stream);

  NitroConfig vanilla_cfg;
  vanilla_cfg.mode = Mode::kVanilla;
  vanilla_cfg.top_keys = 100;
  NitroConfig fixed_cfg;
  fixed_cfg.mode = Mode::kFixedRate;
  fixed_cfg.probability = 0.05;
  fixed_cfg.top_keys = 100;

  NitroCountMin v(sketch::CountMinSketch(5, 8192, 8), vanilla_cfg);
  NitroCountMin f(sketch::CountMinSketch(5, 8192, 8), fixed_cfg);
  for (const auto& p : stream) {
    v.update(p.key);
    f.update(p.key);
  }
  // The true top-10 must appear in both top-keys stores.
  const auto vt = v.top_keys();
  const auto ft = f.top_keys();
  for (const auto& [key, count] : truth.top_k(10)) {
    const auto in = [&](const auto& vec) {
      for (const auto& e : vec) {
        if (e.key == key) return true;
      }
      return false;
    };
    EXPECT_TRUE(in(vt)) << count;
    EXPECT_TRUE(in(ft)) << count;
  }
}

TEST(Modes, ConfigSeedChangesSamplingPattern) {
  NitroConfig a;
  a.mode = Mode::kFixedRate;
  a.probability = 0.1;
  a.track_top_keys = false;
  NitroConfig b = a;
  b.seed = a.seed ^ 0x1234;
  NitroCountSketch na(CountSketch(5, 1024, 9), a);
  NitroCountSketch nb(CountSketch(5, 1024, 9), b);
  for (int i = 0; i < 20000; ++i) {
    const FlowKey k = flow_key_for_rank(i % 500, 2);
    na.update(k);
    nb.update(k);
  }
  // Same sketch seeds, different sampling seeds: counts differ but both
  // are valid samples (same expectation).
  EXPECT_NE(na.sampled_updates(), nb.sampled_updates());
}

}  // namespace
}  // namespace nitro::core
