// Property tests for the burst ingestion fast path: update_burst over any
// packet sequence, chopped into arbitrary bursts, must be *bit-identical*
// to per-packet update() with the same seed — same counters, same heap
// contents, same sampler/controller state — across CM/CS/K-ary and every
// mode.  Also covers the batched 64-bit digest kernel against scalar
// flow_digest and the SpscRing bulk operations the burst path rides on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_hash.hpp"
#include "common/spsc_ring.hpp"
#include "core/nitro_sketch.hpp"
#include "core/row_sampler.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using sketch::CountMinSketch;
using sketch::CountSketch;
using sketch::KArySketch;
using trace::flow_key_for_rank;

trace::Trace zipf_stream(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = flows;
  spec.seed = seed;
  return trace::caida_like(spec);
}

template <typename Base>
void expect_same_counters(const NitroSketch<Base>& a, const NitroSketch<Base>& b) {
  const auto& ma = a.base().matrix();
  const auto& mb = b.base().matrix();
  ASSERT_EQ(ma.depth(), mb.depth());
  ASSERT_EQ(ma.width(), mb.width());
  for (std::uint32_t r = 0; r < ma.depth(); ++r) {
    const auto ra = ma.row(r);
    const auto rb = mb.row(r);
    for (std::uint32_t c = 0; c < ma.width(); ++c) {
      ASSERT_EQ(ra[c], rb[c]) << "row " << r << " col " << c;
    }
  }
}

template <typename Base>
void expect_same_state(NitroSketch<Base>& per_packet, NitroSketch<Base>& burst) {
  per_packet.flush();
  burst.flush();
  expect_same_counters(per_packet, burst);
  EXPECT_EQ(per_packet.packets(), burst.packets());
  EXPECT_EQ(per_packet.sampled_updates(), burst.sampled_updates());
  EXPECT_DOUBLE_EQ(per_packet.current_probability(), burst.current_probability());
  const auto ha = per_packet.heap().entries_sorted();
  const auto hb = burst.heap().entries_sorted();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].key, hb[i].key) << "heap entry " << i;
    EXPECT_EQ(ha[i].estimate, hb[i].estimate) << "heap entry " << i;
  }
}

/// Feed `stream` per-packet into one instance and in random-size bursts
/// (1..48, crossing the pipelines' burst of 32) into the other, then
/// verify bit-identical state.  A 2000-packet per-packet coda on *both*
/// instances then re-verifies, which catches any divergence in the
/// sampler/controller position that the first comparison can't see.
template <typename Base>
void run_equivalence(Base base, NitroConfig cfg, const trace::Trace& stream,
                     std::uint64_t split_seed) {
  NitroSketch<Base> per_packet(base, cfg);
  NitroSketch<Base> burst(std::move(base), cfg);
  Pcg32 rng(split_seed, 7);
  std::vector<FlowKey> scratch;
  std::size_t i = 0;
  const std::size_t n = stream.size();
  while (i < n) {
    std::size_t b = 1 + rng.next() % 48;
    if (b > n - i) b = n - i;
    // All packets of one rx burst share the poll timestamp, as in a real
    // PMD loop; both instances must see the same clock to stay identical.
    const std::uint64_t ts = stream[i + b - 1].ts_ns;
    scratch.clear();
    for (std::size_t j = 0; j < b; ++j) {
      per_packet.update(stream[i + j].key, 1, ts);
      scratch.push_back(stream[i + j].key);
    }
    burst.update_burst(std::span<const FlowKey>(scratch), ts);
    i += b;
  }
  expect_same_state(per_packet, burst);
  std::uint64_t ts = stream.empty() ? 0 : stream.back().ts_ns;
  for (int k = 0; k < 2000; ++k) {
    const FlowKey key = flow_key_for_rank(k % 97, 3);
    ts += 25;
    per_packet.update(key, 1, ts);
    burst.update(key, 1, ts);
  }
  expect_same_state(per_packet, burst);
}

NitroConfig fixed_cfg(double p, bool buffered = true) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = p;
  cfg.buffered_updates = buffered;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  return cfg;
}

TEST(BurstEquivalence, FixedRateCountMin) {
  run_equivalence(CountMinSketch(5, 2048, 101), fixed_cfg(0.02), zipf_stream(30000, 2000, 1), 11);
}

TEST(BurstEquivalence, FixedRateCountSketch) {
  run_equivalence(CountSketch(5, 2048, 102), fixed_cfg(0.05), zipf_stream(30000, 2000, 2), 12);
}

TEST(BurstEquivalence, FixedRateKAry) {
  // K-ary exercises the stream-total interleaving: heap offers query the
  // estimator, which depends on S at the moment of the offer.
  run_equivalence(KArySketch(5, 2048, 103), fixed_cfg(0.05), zipf_stream(30000, 2000, 3), 13);
}

TEST(BurstEquivalence, FixedRateUnbuffered) {
  run_equivalence(CountSketch(5, 2048, 104), fixed_cfg(0.05, /*buffered=*/false),
                  zipf_stream(30000, 2000, 4), 14);
}

TEST(BurstEquivalence, FixedRateProbabilityOne) {
  // p = 1: every slot sampled; stresses the dense grouping path.
  run_equivalence(CountMinSketch(4, 1024, 105), fixed_cfg(1.0), zipf_stream(8000, 500, 5), 15);
}

TEST(BurstEquivalence, VanillaMode) {
  NitroConfig cfg;
  cfg.mode = Mode::kVanilla;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  run_equivalence(CountMinSketch(4, 1024, 106), cfg, zipf_stream(12000, 1000, 6), 16);
}

NitroConfig always_correct_cfg() {
  // Loose epsilon and a small check interval so the detector flips well
  // inside the stream — the interesting case is the vanilla->sampled
  // transition landing mid-burst.
  NitroConfig cfg;
  cfg.mode = Mode::kAlwaysCorrect;
  cfg.probability = 0.25;
  cfg.epsilon = 0.5;
  cfg.convergence_check_interval = 1000;
  cfg.buffered_updates = true;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  return cfg;
}

TEST(BurstEquivalence, AlwaysCorrectCountMin) {
  auto cfg = always_correct_cfg();
  const auto stream = zipf_stream(40000, 2000, 7);
  NitroSketch<CountMinSketch> probe(CountMinSketch(5, 2048, 107), cfg);
  run_equivalence(CountMinSketch(5, 2048, 107), cfg, stream, 17);
  for (const auto& p : stream) probe.update(p.key, 1, p.ts_ns);
  EXPECT_TRUE(probe.converged()) << "config must converge mid-stream for this test to bite";
}

TEST(BurstEquivalence, AlwaysCorrectCountSketch) {
  run_equivalence(CountSketch(5, 2048, 108), always_correct_cfg(), zipf_stream(40000, 2000, 8), 18);
}

TEST(BurstEquivalence, AlwaysCorrectKAry) {
  run_equivalence(KArySketch(5, 2048, 109), always_correct_cfg(), zipf_stream(40000, 2000, 9), 19);
}

NitroConfig line_rate_cfg() {
  NitroConfig cfg;
  cfg.mode = Mode::kAlwaysLineRate;
  cfg.probability = 1.0 / 128.0;
  cfg.rate_epoch_ns = 1'000'000;  // 1ms epochs: many retunes in-stream
  cfg.target_sampled_rate_pps = 625000.0;
  cfg.buffered_updates = true;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  return cfg;
}

TEST(BurstEquivalence, AlwaysLineRateCountMin) {
  // caida_like timestamps advance realistically, so 1ms epochs retune the
  // probability repeatedly — including mid-burst, exercising the
  // constant-p segmentation.
  run_equivalence(CountMinSketch(5, 2048, 110), line_rate_cfg(), zipf_stream(60000, 2000, 10), 20);
}

TEST(BurstEquivalence, AlwaysLineRateCountSketch) {
  run_equivalence(CountSketch(5, 2048, 111), line_rate_cfg(), zipf_stream(60000, 2000, 11), 21);
}

TEST(BurstEquivalence, AlwaysLineRateKAry) {
  run_equivalence(KArySketch(5, 2048, 112), line_rate_cfg(), zipf_stream(60000, 2000, 12), 22);
}

TEST(RowSamplerBurst, SampleBurstMatchesPerPacketDraws) {
  // Direct sampler-level check: identical seeds, one walked per packet,
  // one in bursts — the selected (packet, row) slots and the final skip
  // position must agree for every split.
  for (const double p : {1.0, 0.5, 0.1, 0.01}) {
    RowSampler a(5, p, 99);
    RowSampler b(5, p, 99);
    Pcg32 rng(4242, 1);
    std::vector<BurstSlot> burst_slots;
    std::uint32_t base_packet = 0;
    for (int round = 0; round < 200; ++round) {
      const std::uint32_t m = 1 + rng.next() % 64;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> expected;
      for (std::uint32_t q = 0; q < m; ++q) {
        std::uint32_t rows[64];
        const std::uint32_t n = a.rows_for_packet(rows);
        for (std::uint32_t i = 0; i < n; ++i) expected.emplace_back(q, rows[i]);
      }
      b.sample_burst(m, burst_slots);
      ASSERT_EQ(burst_slots.size(), expected.size()) << "round " << round << " p " << p;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(burst_slots[i].packet, expected[i].first);
        EXPECT_EQ(burst_slots[i].row, expected[i].second);
      }
      base_packet += m;
    }
    EXPECT_EQ(a.packets_until_next_sample(), b.packets_until_next_sample());
  }
}

TEST(FlowDigestBatch, MatchesScalarOnPatterns) {
  // Structured edge patterns: all-zero, all-ones, per-field extremes.
  std::vector<FlowKey> keys;
  keys.push_back(FlowKey{});
  keys.push_back(FlowKey{0xffffffffu, 0xffffffffu, 0xffff, 0xffff, 0xff});
  keys.push_back(FlowKey{0x01020304u, 0, 0, 0, 0});
  keys.push_back(FlowKey{0, 0xa0b0c0d0u, 0, 0, 0});
  keys.push_back(FlowKey{0, 0, 0x8000, 0, 0});
  keys.push_back(FlowKey{0, 0, 0, 0x0001, 0});
  keys.push_back(FlowKey{0, 0, 0, 0, 17});
  keys.push_back(FlowKey{0x80000000u, 0x00000001u, 0x00ff, 0xff00, 0x7f});
  ASSERT_EQ(keys.size(), 8u);
  std::uint64_t out[8];
  flow_digest_x8(keys.data(), out);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], flow_digest(keys[i])) << "pattern " << i;
  }
}

TEST(FlowDigestBatch, MatchesScalarOnRandomKeys) {
  Pcg32 rng(777, 3);
  std::vector<FlowKey> keys(8);
  for (int round = 0; round < 2000; ++round) {
    for (auto& k : keys) {
      k.src_ip = rng.next();
      k.dst_ip = rng.next();
      k.src_port = static_cast<std::uint16_t>(rng.next());
      k.dst_port = static_cast<std::uint16_t>(rng.next());
      k.proto = static_cast<std::uint8_t>(rng.next());
    }
    std::uint64_t out[8];
    flow_digest_x8(keys.data(), out);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(out[i], flow_digest(keys[i])) << "round " << round << " lane " << i;
    }
  }
}

TEST(FlowDigestBatch, ArbitrarySeedMatchesScalarXxhash64) {
  Pcg32 rng(778, 3);
  std::vector<FlowKey> keys(8);
  for (auto& k : keys) {
    k.src_ip = rng.next();
    k.dst_ip = rng.next();
  }
  for (const std::uint64_t seed : {0ull, 1ull, 0xdeadbeefdeadbeefull}) {
    std::uint64_t out[8];
    xxhash64_x8_flowkeys(keys.data(), seed, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], xxhash64(&keys[i], sizeof(FlowKey), seed)) << "lane " << i;
    }
  }
}

TEST(SpscRingBulk, PushPopRoundTripAcrossWraparound) {
  SpscRing<int> ring(8);  // capacity rounds to 15 usable slots
  int buf[16];
  int next = 0;
  int expect = 0;
  for (int round = 0; round < 100; ++round) {
    int items[6];
    for (int i = 0; i < 6; ++i) items[i] = next++;
    ASSERT_EQ(ring.try_push_bulk(items, 6), 6u);
    ASSERT_EQ(ring.try_pop_bulk(buf, 16), 6u);
    for (int i = 0; i < 6; ++i) ASSERT_EQ(buf[i], expect++);
  }
}

TEST(SpscRingBulk, PartialPushWhenNearlyFull) {
  SpscRing<int> ring(8);  // 15 usable
  int items[12];
  for (int i = 0; i < 12; ++i) items[i] = i;
  ASSERT_EQ(ring.try_push_bulk(items, 12), 12u);
  // 3 slots left: a 12-item push must accept exactly the prefix that fits.
  EXPECT_EQ(ring.try_push_bulk(items, 12), 3u);
  EXPECT_EQ(ring.try_push_bulk(items, 12), 0u);
  int buf[16];
  EXPECT_EQ(ring.try_pop_bulk(buf, 16), 15u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(buf[i], i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(buf[12 + i], i);
  EXPECT_EQ(ring.try_pop_bulk(buf, 16), 0u);
}

TEST(SpscRingBulk, InteroperatesWithScalarOps) {
  SpscRing<int> ring(16);
  ASSERT_TRUE(ring.try_push(1));
  int items[2] = {2, 3};
  ASSERT_EQ(ring.try_push_bulk(items, 2), 2u);
  int v = 0;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 1);
  int buf[4];
  ASSERT_EQ(ring.try_pop_bulk(buf, 4), 2u);
  EXPECT_EQ(buf[0], 2);
  EXPECT_EQ(buf[1], 3);
}

}  // namespace
}  // namespace nitro::core
