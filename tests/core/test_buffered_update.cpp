#include "core/buffered_update.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/simd_hash.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using trace::flow_key_for_rank;

TEST(BufferedUpdater, FlushAppliesAllPending) {
  sketch::CounterMatrix m(3, 64, 1, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(0, 0);
  buf.push(m, k, 0, 5);
  buf.push(m, k, 1, 7);
  EXPECT_EQ(m.row_estimate(0, k), 0);  // nothing applied yet
  buf.flush(m);
  EXPECT_EQ(m.row_estimate(0, k), 5);
  EXPECT_EQ(m.row_estimate(1, k), 7);
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(BufferedUpdater, AutoFlushOnFullBatch) {
  sketch::CounterMatrix m(1, 64, 2, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(1, 0);
  for (std::size_t i = 0; i < buf.batch() - 1; ++i) {
    EXPECT_FALSE(buf.push(m, k, 0, 1));
  }
  EXPECT_TRUE(buf.push(m, k, 0, 1));  // final push of the group flushes
  EXPECT_EQ(m.row_estimate(0, k), static_cast<std::int64_t>(buf.batch()));
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(BufferedUpdater, AutoWidthMatchesWidestKernel) {
  BufferedUpdater buf;
  EXPECT_EQ(buf.batch(), simd_digest_batch());
  EXPECT_EQ(buf.prefetch_window(), buf.batch());  // 0 = whole group
  BufferedUpdater narrow(8, 2);
  EXPECT_EQ(narrow.batch(), 8u);
  EXPECT_EQ(narrow.prefetch_window(), 2u);
  BufferedUpdater clamped(64, 99);
  EXPECT_EQ(clamped.batch(), BufferedUpdater::kBatchMax);
  EXPECT_EQ(clamped.prefetch_window(), clamped.batch());
}

TEST(BufferedUpdater, EquivalentToDirectUpdates) {
  sketch::CounterMatrix direct(5, 256, 3, true);
  sketch::CounterMatrix buffered(5, 256, 3, true);
  BufferedUpdater buf;
  Pcg32 rng(77);
  for (int i = 0; i < 1000; ++i) {
    const FlowKey k = flow_key_for_rank(rng.next_below(100), 0);
    const std::uint32_t row = rng.next_below(5);
    const std::int64_t delta = 1 + rng.next_below(10);
    direct.update_row(row, k, delta);
    buf.push(buffered, k, row, delta);
  }
  buf.flush(buffered);
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 0);
    for (std::uint32_t r = 0; r < 5; ++r) {
      EXPECT_EQ(direct.row_estimate(r, k), buffered.row_estimate(r, k));
    }
  }
}

TEST(BufferedUpdater, FlushOnEmptyIsNoop) {
  sketch::CounterMatrix m(1, 16, 4, false);
  BufferedUpdater buf;
  buf.flush(m);
  for (auto c : m.row(0)) EXPECT_EQ(c, 0);
}

TEST(BufferedUpdater, PendingNeverExceedsBatchAcrossManyPushes) {
  // Regression guard for the count_ overflow: pushing far more than one
  // batch must keep pending() <= kBatch at every step and lose nothing.
  sketch::CounterMatrix m(1, 64, 6, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(2, 0);
  const std::size_t n = 3 * buf.batch() + 5;
  for (std::size_t i = 0; i < n; ++i) {
    buf.push(m, k, 0, 1);
    ASSERT_LE(buf.pending(), buf.batch());
  }
  buf.flush(m);
  EXPECT_EQ(m.row_estimate(0, k), static_cast<std::int64_t>(n));
}

TEST(BufferedUpdater, FullBatchKernelMatchesPartialTail) {
  // The same 8 updates applied once through the batched x8 digest kernel
  // (auto-flush on a full batch) and once through two partial flushes
  // (scalar tail path) must produce identical counters.
  sketch::CounterMatrix full(2, 128, 9, true);
  sketch::CounterMatrix split(2, 128, 9, true);
  BufferedUpdater bf(8), bs(8);
  for (int i = 0; i < 8; ++i) {
    bf.push(full, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  EXPECT_EQ(bf.pending(), 0u);  // 8th push flushed through the batched kernel
  for (int i = 0; i < 5; ++i) {
    bs.push(split, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  bs.flush(split);
  for (int i = 5; i < 8; ++i) {
    bs.push(split, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  bs.flush(split);
  for (int i = 0; i < 8; ++i) {
    const FlowKey k = flow_key_for_rank(i, 3);
    for (std::uint32_t r = 0; r < 2; ++r) {
      EXPECT_EQ(full.row_estimate(r, k), split.row_estimate(r, k));
    }
  }
}

TEST(BufferedUpdater, X16GroupMatchesPartialTailAndX8Groups) {
  // The same 16 updates applied through (a) one full x16 group, (b) two
  // full x8 groups, and (c) ragged partial flushes (scalar tail) must all
  // land the same counters — the width changes flush cadence, never
  // values.
  sketch::CounterMatrix wide(2, 128, 11, true);
  sketch::CounterMatrix eights(2, 128, 11, true);
  sketch::CounterMatrix ragged(2, 128, 11, true);
  BufferedUpdater b16(16), b8(8), br(16, 3);
  for (int i = 0; i < 16; ++i) {
    const FlowKey k = flow_key_for_rank(i, 5);
    const auto row = static_cast<std::uint32_t>(i & 1);
    b16.push(wide, k, row, i + 1);
    b8.push(eights, k, row, i + 1);
    br.push(ragged, k, row, i + 1);
    if (i == 4 || i == 9) br.flush(ragged);  // force scalar tails of 5
  }
  EXPECT_EQ(b16.pending(), 0u);
  EXPECT_EQ(b8.pending(), 0u);
  br.flush(ragged);
  for (int i = 0; i < 16; ++i) {
    const FlowKey k = flow_key_for_rank(i, 5);
    for (std::uint32_t r = 0; r < 2; ++r) {
      EXPECT_EQ(wide.row_estimate(r, k), eights.row_estimate(r, k)) << i;
      EXPECT_EQ(wide.row_estimate(r, k), ragged.row_estimate(r, k)) << i;
    }
  }
}

TEST(BufferedUpdater, PrefetchWindowDoesNotChangeCounters) {
  // The prefetch distance is a pure hint: every window setting must be
  // value-identical.
  Pcg32 rng(123);
  std::vector<std::tuple<FlowKey, std::uint32_t, std::int64_t>> updates;
  for (int i = 0; i < 500; ++i) {
    updates.emplace_back(flow_key_for_rank(rng.next_below(64), 2),
                         rng.next_below(4), 1 + rng.next_below(9));
  }
  sketch::CounterMatrix ref(4, 256, 21, true);
  BufferedUpdater bref(16, 0);
  for (const auto& [k, r, d] : updates) bref.push(ref, k, r, d);
  bref.flush(ref);
  for (std::size_t window : {1u, 2u, 5u, 16u}) {
    sketch::CounterMatrix m(4, 256, 21, true);
    BufferedUpdater b(16, window);
    for (const auto& [k, r, d] : updates) b.push(m, k, r, d);
    b.flush(m);
    for (int i = 0; i < 64; ++i) {
      const FlowKey k = flow_key_for_rank(i, 2);
      for (std::uint32_t r = 0; r < 4; ++r) {
        ASSERT_EQ(ref.row_estimate(r, k), m.row_estimate(r, k)) << window;
      }
    }
  }
}

TEST(BufferedUpdater, PendingCountsQueuedItems) {
  sketch::CounterMatrix m(1, 16, 5, false);
  BufferedUpdater buf;
  EXPECT_EQ(buf.pending(), 0u);
  buf.push(m, flow_key_for_rank(0, 0), 0, 1);
  EXPECT_EQ(buf.pending(), 1u);
  buf.push(m, flow_key_for_rank(1, 0), 0, 1);
  EXPECT_EQ(buf.pending(), 2u);
}

}  // namespace
}  // namespace nitro::core
