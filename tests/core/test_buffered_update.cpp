#include "core/buffered_update.hpp"

#include <gtest/gtest.h>

#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using trace::flow_key_for_rank;

TEST(BufferedUpdater, FlushAppliesAllPending) {
  sketch::CounterMatrix m(3, 64, 1, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(0, 0);
  buf.push(m, k, 0, 5);
  buf.push(m, k, 1, 7);
  EXPECT_EQ(m.row_estimate(0, k), 0);  // nothing applied yet
  buf.flush(m);
  EXPECT_EQ(m.row_estimate(0, k), 5);
  EXPECT_EQ(m.row_estimate(1, k), 7);
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(BufferedUpdater, AutoFlushOnFullBatch) {
  sketch::CounterMatrix m(1, 64, 2, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(1, 0);
  for (std::size_t i = 0; i < BufferedUpdater::kBatch - 1; ++i) {
    EXPECT_FALSE(buf.push(m, k, 0, 1));
  }
  EXPECT_TRUE(buf.push(m, k, 0, 1));  // 8th push flushes
  EXPECT_EQ(m.row_estimate(0, k), static_cast<std::int64_t>(BufferedUpdater::kBatch));
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(BufferedUpdater, EquivalentToDirectUpdates) {
  sketch::CounterMatrix direct(5, 256, 3, true);
  sketch::CounterMatrix buffered(5, 256, 3, true);
  BufferedUpdater buf;
  Pcg32 rng(77);
  for (int i = 0; i < 1000; ++i) {
    const FlowKey k = flow_key_for_rank(rng.next_below(100), 0);
    const std::uint32_t row = rng.next_below(5);
    const std::int64_t delta = 1 + rng.next_below(10);
    direct.update_row(row, k, delta);
    buf.push(buffered, k, row, delta);
  }
  buf.flush(buffered);
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 0);
    for (std::uint32_t r = 0; r < 5; ++r) {
      EXPECT_EQ(direct.row_estimate(r, k), buffered.row_estimate(r, k));
    }
  }
}

TEST(BufferedUpdater, FlushOnEmptyIsNoop) {
  sketch::CounterMatrix m(1, 16, 4, false);
  BufferedUpdater buf;
  buf.flush(m);
  for (auto c : m.row(0)) EXPECT_EQ(c, 0);
}

TEST(BufferedUpdater, PendingNeverExceedsBatchAcrossManyPushes) {
  // Regression guard for the count_ overflow: pushing far more than one
  // batch must keep pending() <= kBatch at every step and lose nothing.
  sketch::CounterMatrix m(1, 64, 6, false);
  BufferedUpdater buf;
  const FlowKey k = flow_key_for_rank(2, 0);
  const std::size_t n = 3 * BufferedUpdater::kBatch + 5;
  for (std::size_t i = 0; i < n; ++i) {
    buf.push(m, k, 0, 1);
    ASSERT_LE(buf.pending(), BufferedUpdater::kBatch);
  }
  buf.flush(m);
  EXPECT_EQ(m.row_estimate(0, k), static_cast<std::int64_t>(n));
}

TEST(BufferedUpdater, FullBatchKernelMatchesPartialTail) {
  // The same 8 updates applied once through the batched x8 digest kernel
  // (auto-flush on a full batch) and once through two partial flushes
  // (scalar tail path) must produce identical counters.
  sketch::CounterMatrix full(2, 128, 9, true);
  sketch::CounterMatrix split(2, 128, 9, true);
  BufferedUpdater bf, bs;
  for (int i = 0; i < 8; ++i) {
    bf.push(full, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  EXPECT_EQ(bf.pending(), 0u);  // 8th push flushed through the batched kernel
  for (int i = 0; i < 5; ++i) {
    bs.push(split, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  bs.flush(split);
  for (int i = 5; i < 8; ++i) {
    bs.push(split, flow_key_for_rank(i, 3), static_cast<std::uint32_t>(i & 1), i + 1);
  }
  bs.flush(split);
  for (int i = 0; i < 8; ++i) {
    const FlowKey k = flow_key_for_rank(i, 3);
    for (std::uint32_t r = 0; r < 2; ++r) {
      EXPECT_EQ(full.row_estimate(r, k), split.row_estimate(r, k));
    }
  }
}

TEST(BufferedUpdater, PendingCountsQueuedItems) {
  sketch::CounterMatrix m(1, 16, 5, false);
  BufferedUpdater buf;
  EXPECT_EQ(buf.pending(), 0u);
  buf.push(m, flow_key_for_rank(0, 0), 0, 1);
  EXPECT_EQ(buf.pending(), 1u);
  buf.push(m, flow_key_for_rank(1, 0), 0, 1);
  EXPECT_EQ(buf.pending(), 2u);
}

}  // namespace
}  // namespace nitro::core
