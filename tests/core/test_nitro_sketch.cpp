#include "core/nitro_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using sketch::CountMinSketch;
using sketch::CountSketch;
using sketch::KArySketch;
using trace::flow_key_for_rank;

trace::Trace zipf_stream(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = flows;
  spec.seed = seed;
  return trace::caida_like(spec);
}

NitroConfig fixed_rate(double p) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = p;
  return cfg;
}

TEST(NitroSketch, VanillaModeMatchesBaseSketchExactly) {
  NitroConfig cfg;
  cfg.mode = Mode::kVanilla;
  cfg.track_top_keys = false;
  NitroCountMin nitro(CountMinSketch(5, 1024, 7), cfg);
  CountMinSketch plain(5, 1024, 7);
  const auto stream = zipf_stream(20000, 2000, 1);
  for (const auto& p : stream) {
    nitro.update(p.key);
    plain.update(p.key);
  }
  for (int i = 0; i < 200; ++i) {
    const FlowKey k = flow_key_for_rank(i, 1);
    EXPECT_EQ(nitro.query(k), plain.query(k));
  }
}

TEST(NitroSketch, FixedRateSamplesExpectedFraction) {
  auto cfg = fixed_rate(0.01);
  cfg.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 4096, 3), cfg);
  const auto stream = zipf_stream(500000, 10000, 2);
  for (const auto& p : stream) nitro.update(p.key);
  const double rate = static_cast<double>(nitro.sampled_updates()) /
                      (5.0 * static_cast<double>(nitro.packets()));
  EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(NitroSketch, EstimatesUnbiasedAcrossSeeds) {
  // Mean of the Nitro-CS estimate over many independent runs approaches
  // the true count (Theorem 2's unbiasedness).
  const FlowKey target = flow_key_for_rank(1, 5);
  double sum = 0.0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    auto cfg = fixed_rate(0.1);
    cfg.seed = 1000 + t;
    cfg.track_top_keys = false;
    NitroCountSketch nitro(CountSketch(5, 8192, 100 + t), cfg);
    const auto stream = zipf_stream(50000, 5000, 5);
    for (const auto& p : stream) nitro.update(p.key);
    sum += static_cast<double>(nitro.query(target));
  }
  trace::GroundTruth truth(zipf_stream(50000, 5000, 5));
  const double real = static_cast<double>(truth.count(target));
  ASSERT_GT(real, 100.0);  // target must actually be a sizable flow
  EXPECT_NEAR(sum / kTrials / real, 1.0, 0.2);
}

TEST(NitroSketch, ErrorWithinEpsL2AfterConvergence) {
  auto cfg = fixed_rate(0.05);
  cfg.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 16384, 11), cfg);
  const auto stream = zipf_stream(400000, 20000, 6);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) nitro.update(p.key);
  // w = 8 eps^-2 p^-1  =>  eps = sqrt(8/(w p)).
  const double eps = std::sqrt(8.0 / (16384.0 * 0.05));
  const double bound = eps * truth.l2();
  std::size_t violations = 0;
  for (const auto& [key, count] : truth.top_k(100)) {
    if (std::abs(static_cast<double>(nitro.query(key) - count)) > bound) ++violations;
  }
  EXPECT_LE(violations, 5u);
}

TEST(NitroSketch, AlwaysCorrectIdenticalToVanillaBeforeConvergence) {
  NitroConfig ac;
  ac.mode = Mode::kAlwaysCorrect;
  ac.probability = 1.0 / 128.0;
  ac.epsilon = 0.01;  // strict -> convergence far away
  ac.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 2048, 13), ac);
  CountSketch plain(5, 2048, 13);
  const auto stream = zipf_stream(30000, 3000, 7);
  for (const auto& p : stream) {
    nitro.update(p.key);
    plain.update(p.key);
  }
  ASSERT_FALSE(nitro.converged());
  for (int i = 0; i < 200; ++i) {
    const FlowKey k = flow_key_for_rank(i, 7);
    EXPECT_EQ(nitro.query(k), plain.query(k));
  }
}

TEST(NitroSketch, AlwaysCorrectSwitchesToSampling) {
  NitroConfig ac;
  ac.mode = Mode::kAlwaysCorrect;
  ac.probability = 0.1;
  ac.epsilon = 0.3;  // loose -> converges quickly
  ac.convergence_check_interval = 1000;
  ac.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 2048, 17), ac);
  const auto stream = zipf_stream(400000, 2000, 8);
  for (const auto& p : stream) nitro.update(p.key);
  EXPECT_TRUE(nitro.converged());
  // After convergence only ~p of slots update; over the whole stream the
  // update fraction must be well below the vanilla 100%.
  const double rate = static_cast<double>(nitro.sampled_updates()) /
                      (5.0 * static_cast<double>(nitro.packets()));
  EXPECT_LT(rate, 0.5);
}

TEST(NitroSketch, AlwaysLineRateAdaptsProbability) {
  NitroConfig alr;
  alr.mode = Mode::kAlwaysLineRate;
  alr.probability = 1.0 / 128.0;
  alr.target_sampled_rate_pps = 625000.0;
  alr.track_top_keys = false;
  NitroCountSketch nitro(CountSketch(5, 4096, 19), alr);
  // 40Mpps arrival: ts spaced 25ns.
  std::uint64_t now = 0;
  for (int i = 0; i < 8'000'000; ++i) {
    now += 25;
    nitro.update(flow_key_for_rank(i % 1000, 9), 1, now);
  }
  EXPECT_DOUBLE_EQ(nitro.current_probability(), 1.0 / 64.0);
}

TEST(NitroSketch, TopKeysTrackHeavyHitters) {
  auto cfg = fixed_rate(0.05);
  cfg.track_top_keys = true;
  cfg.top_keys = 50;
  NitroCountMin nitro(CountMinSketch(5, 8192, 23), cfg);
  const auto stream = zipf_stream(300000, 20000, 10);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) nitro.update(p.key);
  const auto tracked = nitro.top_keys();
  ASSERT_FALSE(tracked.empty());
  // The top-5 true flows must all be tracked.
  std::size_t found = 0;
  for (const auto& [key, count] : truth.top_k(5)) {
    for (const auto& e : tracked) {
      if (e.key == key) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, 5u);
}

TEST(NitroSketch, KAryTotalIsExactUnderSampling) {
  auto cfg = fixed_rate(0.01);
  cfg.track_top_keys = false;
  NitroKAry nitro(KArySketch(5, 2048, 29), cfg);
  const auto stream = zipf_stream(50000, 1000, 11);
  for (const auto& p : stream) nitro.update(p.key);
  EXPECT_EQ(nitro.base().total(), 50000);
}

TEST(NitroSketch, BufferedAndUnbufferedAgreeAfterFlush) {
  auto buffered_cfg = fixed_rate(0.1);
  buffered_cfg.buffered_updates = true;
  buffered_cfg.track_top_keys = false;
  auto direct_cfg = buffered_cfg;
  direct_cfg.buffered_updates = false;
  NitroCountSketch a(CountSketch(5, 2048, 31), buffered_cfg);
  NitroCountSketch b(CountSketch(5, 2048, 31), direct_cfg);
  const auto stream = zipf_stream(50000, 5000, 12);
  for (const auto& p : stream) {
    a.update(p.key);
    b.update(p.key);
  }
  a.flush();
  // Same seeds -> identical geometric sequences -> identical sketches.
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 12);
    EXPECT_EQ(a.query(k), b.query(k));
  }
}

TEST(NitroSketch, QueryFlushesPendingBuffer) {
  auto cfg = fixed_rate(1.0);  // every row sampled; buffer fills fast
  cfg.buffered_updates = true;
  cfg.track_top_keys = false;
  NitroCountMin nitro(CountMinSketch(2, 256, 37), cfg);
  const FlowKey k = flow_key_for_rank(0, 13);
  nitro.update(k);  // 2 row updates pending in the buffer
  EXPECT_EQ(nitro.query(k), 1);
}

TEST(SketchTraitsKAry, RoundsNegativeEstimatesToNearest) {
  // Regression: the K-ary unbiased estimator is legitimately negative for
  // absent keys, and the old floor(x + 0.5) rounding biased those toward
  // zero (-0.7 became 0 instead of -1).  Traits::query must round to
  // nearest for every sign.
  KArySketch kary(5, 512, 91);
  const auto stream = zipf_stream(20000, 400, 7);
  for (const auto& p : stream) kary.update(p.key, 1);
  bool saw_negative_rounding_down = false;
  for (int rank = 500; rank < 3000; ++rank) {
    const auto key = flow_key_for_rank(rank, 7);  // mostly absent keys
    const double raw = kary.query(key);
    EXPECT_EQ(SketchTraits<KArySketch>::query(kary, key), std::llround(raw))
        << "rank " << rank << " raw " << raw;
    if (raw < -0.5) {
      EXPECT_LE(SketchTraits<KArySketch>::query(kary, key), -1);
      saw_negative_rounding_down = true;
    }
  }
  // The trace/sketch pair is seeded, so the interesting case is reliably
  // exercised: at least one absent key estimates below -0.5.
  EXPECT_TRUE(saw_negative_rounding_down);
}

TEST(NitroSketch, MemoryBytesIncludesBaseSketch) {
  auto cfg = fixed_rate(0.01);
  NitroCountMin nitro(CountMinSketch(5, 10000, 41), cfg);
  EXPECT_GE(nitro.memory_bytes(), 5u * 10000u * sizeof(std::int64_t));
}

}  // namespace
}  // namespace nitro::core
