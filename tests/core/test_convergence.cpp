#include "core/convergence.hpp"

#include <gtest/gtest.h>

#include "sketch/count_sketch.hpp"
#include "sketch/count_min.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using trace::flow_key_for_rank;

TEST(Convergence, ThresholdMatchesFormula) {
  const double eps = 0.05;
  const double p = 1.0 / 128.0;
  ConvergenceDetector det(eps, p, 1000, true, 5);
  const double expected =
      121.0 * (1.0 + eps * std::sqrt(p)) / (eps * eps * eps * eps * p * p);
  EXPECT_NEAR(det.l2_threshold(), expected, expected * 1e-12);
}

TEST(Convergence, NotConvergedInitially) {
  ConvergenceDetector det(0.05, 0.01, 100, true, 5);
  EXPECT_FALSE(det.converged());
}

TEST(Convergence, ChecksOnlyEveryQPackets) {
  // A sketch already past the threshold: detection still waits for the
  // Q-packet boundary (Algorithm 1 line 14 costs are amortized).
  sketch::CountSketch cs(5, 64, 1);
  const FlowKey k = flow_key_for_rank(0, 0);
  cs.update(k, 1'000'000'000);  // enormous counters -> above any threshold

  ConvergenceDetector det(0.3, 0.5, 100, true, 5);
  for (int i = 0; i < 99; ++i) {
    EXPECT_FALSE(det.on_packet(cs.matrix()));
  }
  EXPECT_TRUE(det.on_packet(cs.matrix()));  // packet #100
  EXPECT_TRUE(det.converged());
}

TEST(Convergence, FiresOnceL2CrossesThreshold) {
  // eps = 0.5, p = 0.5 -> T = 121*(1+0.5*sqrt(0.5))/(0.0625*0.25) ~ 10486.
  ConvergenceDetector det(0.5, 0.5, 10, true, 3);
  sketch::CountSketch cs(3, 64, 2);
  bool fired = false;
  std::uint64_t fired_at = 0;
  for (std::uint64_t i = 0; i < 100000 && !fired; ++i) {
    cs.update(flow_key_for_rank(i % 37, 0));
    fired = det.on_packet(cs.matrix());
    if (fired) fired_at = i + 1;
  }
  ASSERT_TRUE(fired);
  // At detection the sketch's L2^2 estimate must really exceed T.
  EXPECT_GT(cs.l2_squared_estimate(), det.l2_threshold());
  EXPECT_GT(fired_at, 0u);
}

TEST(Convergence, StaysConvergedAfterFiring) {
  ConvergenceDetector det(0.5, 0.5, 10, true, 3);
  sketch::CountSketch cs(3, 64, 3);
  cs.update(flow_key_for_rank(0, 0), 1'000'000'000);
  for (int i = 0; i < 10; ++i) det.on_packet(cs.matrix());
  ASSERT_TRUE(det.converged());
  // on_packet now returns false (no re-fire) but stays converged.
  EXPECT_FALSE(det.on_packet(cs.matrix()));
  EXPECT_TRUE(det.converged());
}

TEST(Convergence, UnsignedVariantUsesL1) {
  ConvergenceDetector det(0.1, 0.1, 10, /*signed_rows=*/false, 5);
  sketch::CountMinSketch cm(5, 1024, 4);
  // L1 threshold = 16/(eps^2*p)*sqrt(5*ln2) ~ 16/(0.01*0.1)*1.86 ~ 29.8K.
  bool fired = false;
  std::uint64_t count = 0;
  while (!fired && count < 200000) {
    cm.update(flow_key_for_rank(count % 1000, 0));
    ++count;
    fired = det.on_packet(cm.matrix());
  }
  ASSERT_TRUE(fired);
  EXPECT_GT(static_cast<double>(count), det.l1_threshold() * 0.9);
  EXPECT_LT(static_cast<double>(count), det.l1_threshold() + 11.0);
}

TEST(Convergence, HigherEpsilonConvergesSooner) {
  ConvergenceDetector strict(0.01, 0.01, 1000, true, 5);
  ConvergenceDetector loose(0.1, 0.01, 1000, true, 5);
  EXPECT_GT(strict.l2_threshold(), loose.l2_threshold());
}

TEST(Convergence, SmallerPMinRaisesThreshold) {
  ConvergenceDetector big_p(0.05, 0.1, 1000, true, 5);
  ConvergenceDetector small_p(0.05, 0.01, 1000, true, 5);
  EXPECT_GT(small_p.l2_threshold(), big_p.l2_threshold());
}

}  // namespace
}  // namespace nitro::core
