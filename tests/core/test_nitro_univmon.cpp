#include "core/nitro_univmon.hpp"

#include <gtest/gtest.h>

#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::core {
namespace {

using trace::flow_key_for_rank;

sketch::UnivMonConfig um_config() {
  sketch::UnivMonConfig cfg;
  cfg.levels = 12;
  cfg.depth = 5;
  cfg.top_width = 2048;
  cfg.min_width = 256;
  cfg.heap_capacity = 200;
  return cfg;
}

trace::Trace zipf_stream(std::uint64_t packets, std::uint64_t flows, std::uint64_t seed) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = flows;
  spec.seed = seed;
  return trace::caida_like(spec);
}

TEST(NitroUnivMon, VanillaModeMatchesUnivMon) {
  NitroConfig cfg;
  cfg.mode = Mode::kVanilla;
  NitroUnivMon nitro(um_config(), cfg, 77);
  sketch::UnivMon plain(um_config(), 77);
  const auto stream = zipf_stream(20000, 2000, 1);
  for (const auto& p : stream) {
    nitro.update(p.key);
    plain.update(p.key);
  }
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 1);
    EXPECT_EQ(nitro.query(k), plain.query(k));
  }
  EXPECT_DOUBLE_EQ(nitro.estimate_entropy(), plain.estimate_entropy());
  EXPECT_DOUBLE_EQ(nitro.estimate_distinct(), plain.estimate_distinct());
}

TEST(NitroUnivMon, FixedRateReducesWork) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = 0.01;
  NitroUnivMon nitro(um_config(), cfg, 3);
  const auto stream = zipf_stream(200000, 10000, 2);
  for (const auto& p : stream) nitro.update(p.key);
  // Level 0 alone would make 5 updates/packet vanilla; sampled total across
  // all levels must be a small fraction of that.
  EXPECT_LT(static_cast<double>(nitro.sampled_updates()),
            0.1 * 5.0 * static_cast<double>(stream.size()));
}

TEST(NitroUnivMon, HeavyHitterEstimatesReasonable) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = 0.1;
  NitroUnivMon nitro(um_config(), cfg, 5);
  const auto stream = zipf_stream(400000, 20000, 3);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) nitro.update(p.key);
  const auto top = truth.top_k(5);
  for (const auto& [key, count] : top) {
    EXPECT_NEAR(static_cast<double>(nitro.query(key)), static_cast<double>(count),
                0.35 * static_cast<double>(count) + 100.0);
  }
}

TEST(NitroUnivMon, EntropyAndDistinctAfterConvergence) {
  // Deep UnivMon levels see exponentially few packets, so a fixed-rate
  // Nitro has noisy per-seed G-sum estimates (the paper's motivation for
  // AlwaysCorrect on composite sketches).  Check the mean over seeds.
  const auto stream = zipf_stream(400000, 20000, 4);
  trace::GroundTruth truth(stream);
  double ent = 0.0, dis = 0.0;
  constexpr int kSeeds = 4;
  for (int s = 0; s < kSeeds; ++s) {
    NitroConfig cfg;
    cfg.mode = Mode::kFixedRate;
    cfg.probability = 0.1;
    NitroUnivMon nitro(um_config(), cfg, 7 + s);
    for (const auto& p : stream) nitro.update(p.key);
    ent += nitro.estimate_entropy() / truth.entropy();
    dis += nitro.estimate_distinct() / static_cast<double>(truth.distinct());
  }
  EXPECT_NEAR(ent / kSeeds, 1.0, 0.35);
  EXPECT_NEAR(dis / kSeeds, 1.0, 0.5);
}

TEST(NitroUnivMon, AlwaysCorrectEntropyMatchesVanillaPreConvergence) {
  // Before convergence AlwaysCorrect is bit-identical to vanilla UnivMon,
  // so entropy/distinct carry vanilla accuracy from the first packet.
  NitroConfig ac;
  ac.mode = Mode::kAlwaysCorrect;
  ac.probability = 0.01;
  ac.epsilon = 0.01;  // strict: no level converges on this short stream
  NitroUnivMon nitro(um_config(), ac, 21);
  sketch::UnivMon plain(um_config(), 21);
  const auto stream = zipf_stream(100000, 10000, 5);
  for (const auto& p : stream) {
    nitro.update(p.key);
    plain.update(p.key);
  }
  EXPECT_DOUBLE_EQ(nitro.estimate_entropy(), plain.estimate_entropy());
  EXPECT_DOUBLE_EQ(nitro.estimate_distinct(), plain.estimate_distinct());
}

TEST(NitroUnivMon, AlwaysCorrectLevelsConvergeShallowFirst) {
  NitroConfig cfg;
  cfg.mode = Mode::kAlwaysCorrect;
  cfg.probability = 0.1;
  cfg.epsilon = 0.25;
  cfg.convergence_check_interval = 1000;
  NitroUnivMon nitro(um_config(), cfg, 9);
  const auto stream = zipf_stream(600000, 5000, 5);
  for (const auto& p : stream) nitro.update(p.key);
  // Level 0 sees every packet and must converge first; if any level j
  // converged, monotonicity in expectation says level 0 did too.
  EXPECT_TRUE(nitro.level_converged(0));
  // Deepest levels see ~2^-11 of packets and must not have converged.
  EXPECT_FALSE(nitro.level_converged(11));
}

TEST(NitroUnivMon, TotalExactUnderSampling) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = 0.01;
  NitroUnivMon nitro(um_config(), cfg, 11);
  const auto stream = zipf_stream(30000, 1000, 6);
  for (const auto& p : stream) nitro.update(p.key);
  EXPECT_EQ(nitro.total(), 30000);
}

TEST(NitroUnivMon, LevelProbabilityReflectsMode) {
  NitroConfig cfg;
  cfg.mode = Mode::kFixedRate;
  cfg.probability = 0.05;
  NitroUnivMon nitro(um_config(), cfg, 13);
  for (std::uint32_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(nitro.level_probability(j), 0.05, 0.0001);
  }
}

}  // namespace
}  // namespace nitro::core
