#include "core/rate_controller.hpp"

#include <gtest/gtest.h>

namespace nitro::core {
namespace {

constexpr std::uint64_t kEpochNs = 100'000'000;  // 100ms (paper default)

TEST(RateController, StartsAtProbabilityOne) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0);
}

TEST(RateController, RetuneInverselyProportionalToRate) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  // Figure 6's examples: 40Mpps -> 1/64, 10Mpps -> 1/16.
  rc.retune(40e6);
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0 / 64.0);
  rc.retune(10e6);
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0 / 16.0);
}

TEST(RateController, LowRateKeepsProbabilityHigh) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  rc.retune(100e3);  // 100Kpps, below the budget
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0);
}

TEST(RateController, ClampsAtPMin) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  rc.retune(1e9);  // absurdly fast
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0 / 128.0);
}

TEST(RateController, ProbabilityIsAlwaysPowerOfTwo) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  for (double rate : {1e5, 7e5, 1.3e6, 2.6e6, 5e6, 1e7, 2e7, 4e7, 8e7}) {
    rc.retune(rate);
    const double p = rc.probability();
    // p = 2^-k for integer k in [0, 7]
    bool ok = false;
    for (int k = 0; k <= 7; ++k) {
      if (p == std::ldexp(1.0, -k)) ok = true;
    }
    EXPECT_TRUE(ok) << "rate=" << rate << " p=" << p;
  }
}

TEST(RateController, OnPacketFiresAtEpochBoundary) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  // 10Mpps: 1M packets in 100ms.
  bool fired = false;
  std::uint64_t now = 0;
  for (int i = 0; i < 1'100'000 && !fired; ++i) {
    now += 100;  // 100ns spacing = 10Mpps
    fired = rc.on_packet(now);
  }
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0 / 16.0);
}

TEST(RateController, AdaptsWhenRateDrops) {
  RateController rc(625000.0, kEpochNs, 1.0 / 128.0);
  std::uint64_t now = 0;
  // Fast epoch: 40Mpps.
  for (int i = 0; i < 4'100'000; ++i) {
    now += 25;
    if (rc.on_packet(now)) break;
  }
  EXPECT_DOUBLE_EQ(rc.probability(), 1.0 / 64.0);
  // Slow epoch: 1Mpps.
  bool fired = false;
  for (int i = 0; i < 110'000 && !fired; ++i) {
    now += 1000;
    fired = rc.on_packet(now);
  }
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(rc.probability(), 0.5);  // 625K/1M = 0.625 -> snap 0.5
}

}  // namespace
}  // namespace nitro::core
