// Attack workload generators + collision-crafting oracle (DESIGN.md §16).
//
// Determinism is a hard requirement: a chaos run must be replayable from
// its seeds, so every generator is pinned bit-reproducible.  The oracle's
// validity is checked both offline (colliding_rows against the replica
// hashes) and online, against a *real* sketch built on the targeted seed:
// feeding the anchor must make every crafted key's estimate track the
// anchor's count — the concentration effect the whole attack is about —
// while a rotated (re-keyed) sketch shrugs the same set off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "common/flow_key.hpp"
#include "core/seed_schedule.hpp"
#include "sketch/univmon.hpp"
#include "trace/adversary.hpp"
#include "trace/workloads.hpp"

namespace nitro::trace {
namespace {

sketch::UnivMonConfig small_config() {
  sketch::UnivMonConfig cfg;
  cfg.levels = 4;
  cfg.depth = 3;
  cfg.top_width = 256;
  cfg.min_width = 128;
  cfg.heap_capacity = 32;
  return cfg;
}

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kAttackSeed = 0x5eedbadULL;

AttackSpec small_attack() {
  AttackSpec spec;
  spec.benign.packets = 20'000;
  spec.benign.flows = 500;
  spec.benign.seed = 11;
  spec.attack_fraction = 0.4;
  spec.attack_seed = kAttackSeed;
  return spec;
}

bool same_trace(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].key == b[i].key) || a[i].wire_bytes != b[i].wire_bytes ||
        a[i].ts_ns != b[i].ts_ns) {
      return false;
    }
  }
  return true;
}

// --- Determinism -----------------------------------------------------------

TEST(AdversarialWorkloads, ChurnStormIsBitReproducible) {
  const AttackTrace a = churn_storm(small_attack());
  const AttackTrace b = churn_storm(small_attack());
  EXPECT_TRUE(same_trace(a.trace, b.trace));
  EXPECT_EQ(a.attack_packets, b.attack_packets);
  EXPECT_EQ(a.benign_packets, b.benign_packets);
  EXPECT_EQ(a.attack_packets + a.benign_packets, a.trace.size());
}

TEST(AdversarialWorkloads, SkewFlipIsBitReproducible) {
  WorkloadSpec spec;
  spec.packets = 10'000;
  spec.flows = 400;
  spec.seed = 13;
  const AttackTrace a = skew_flip(spec, 0.5, 0.2);
  const AttackTrace b = skew_flip(spec, 0.5, 0.2);
  EXPECT_TRUE(same_trace(a.trace, b.trace));
}

TEST(AdversarialWorkloads, CollisionFloodIsBitReproducible) {
  const auto target =
      adversary::univmon_level0_target(small_config(), kSeed);
  const auto set = adversary::craft_collision_set(target, /*count=*/16,
                                                  /*min_rows=*/2, kAttackSeed);
  ASSERT_GE(set.keys.size(), 2u);
  const AttackTrace a = collision_flood(small_attack(), set.keys);
  const AttackTrace b = collision_flood(small_attack(), set.keys);
  EXPECT_TRUE(same_trace(a.trace, b.trace));
  EXPECT_EQ(a.attack_keys.size(), set.keys.size());
}

TEST(AdversarialWorkloads, DifferentSeedsProduceDifferentStorms) {
  AttackSpec other = small_attack();
  other.attack_seed = kAttackSeed + 1;
  EXPECT_FALSE(same_trace(churn_storm(small_attack()).trace,
                          churn_storm(other).trace));
}

// --- Collision-set validity ------------------------------------------------

TEST(CollisionOracle, CraftedKeysCollideWithTheAnchorOnEnoughRows) {
  const auto target = adversary::univmon_level0_target(small_config(), kSeed);
  const auto set = adversary::craft_collision_set(target, /*count=*/24,
                                                  /*min_rows=*/2, kAttackSeed);
  ASSERT_GE(set.keys.size(), 8u) << "oracle found too few colliding keys";
  EXPECT_EQ(set.min_rows, 2u);
  const adversary::HashOracle oracle(target);
  EXPECT_EQ(oracle.depth(), small_config().depth);
  for (const FlowKey& k : set.keys) {
    EXPECT_GE(oracle.colliding_rows(set.anchor, k), set.min_rows);
  }
  // Fully deterministic in the attack seed.
  const auto again = adversary::craft_collision_set(target, /*count=*/24,
                                                    /*min_rows=*/2, kAttackSeed);
  EXPECT_EQ(again.keys, set.keys);
  EXPECT_EQ(again.candidates_tried, set.candidates_tried);
}

TEST(CollisionOracle, CraftedSetConcentratesMassInTheRealSketch) {
  const auto cfg = small_config();
  const auto target = adversary::univmon_level0_target(cfg, kSeed);
  const auto set = adversary::craft_collision_set(target, /*count=*/16,
                                                  /*min_rows=*/2, kAttackSeed);
  ASSERT_GE(set.keys.size(), 4u);

  // Feed ONLY the anchor.  In a majority of rows every crafted key shares
  // the anchor's bucket and sign, so its median estimate inherits the
  // anchor's entire count despite never appearing in the stream.
  sketch::UnivMon um(cfg, kSeed);
  constexpr std::int64_t kAnchorCount = 10'000;
  um.update(set.anchor, kAnchorCount);
  for (const FlowKey& k : set.keys) {
    EXPECT_EQ(um.query(k), kAnchorCount);
  }

  // The defense in one assertion: the same crafted set against a sketch on
  // a rotated (generation-derived) seed collides nowhere special.
  const core::SeedSchedule sched{kSeed, /*master_key=*/0xfeedfaceULL,
                                /*rotation_epochs=*/4};
  sketch::UnivMon rotated(cfg, sched.seed_for(1));
  rotated.update(set.anchor, kAnchorCount);
  std::size_t still_colliding = 0;
  for (std::size_t i = 1; i < set.keys.size(); ++i) {  // skip the anchor itself
    if (rotated.query(set.keys[i]) == kAnchorCount) ++still_colliding;
  }
  EXPECT_LT(still_colliding, set.keys.size() / 2)
      << "crafted set survived the seed rotation";
}

// --- Attack-shape properties ----------------------------------------------

TEST(AdversarialWorkloads, ChurnStormAttackKeysNeverRepeat) {
  const AttackTrace storm = churn_storm(small_attack());
  ASSERT_GT(storm.attack_packets, 0u);
  // Benign Zipf traffic revisits at most `flows` keys; every attack packet
  // adds a brand-new one, so the distinct count is dominated by the storm.
  std::unordered_set<FlowKey> distinct;
  for (const auto& p : storm.trace) distinct.insert(p.key);
  EXPECT_GE(distinct.size(), static_cast<std::size_t>(storm.attack_packets));
  EXPECT_LE(distinct.size(),
            static_cast<std::size_t>(storm.attack_packets) +
                small_attack().benign.flows);
}

TEST(AdversarialWorkloads, SkewFlipReplacesTheHotSetWholesale) {
  WorkloadSpec spec;
  spec.packets = 10'000;
  spec.flows = 400;
  spec.seed = 13;
  const AttackTrace flip = skew_flip(spec, 0.5, 0.2);
  EXPECT_EQ(flip.benign_packets, 5'000u);
  EXPECT_EQ(flip.attack_packets, 5'000u);
  std::unordered_set<FlowKey> before;
  std::unordered_set<FlowKey> after;
  for (std::size_t i = 0; i < flip.trace.size(); ++i) {
    (i < 5'000 ? before : after).insert(flip.trace[i].key);
  }
  // Disjoint key families: the phase-2 hot set shares nothing with phase 1.
  for (const FlowKey& k : after) EXPECT_EQ(before.count(k), 0u);
  // The flatter skew spreads traffic over many more flows.
  EXPECT_GT(after.size(), before.size());
}

TEST(AdversarialWorkloads, ByNameReachesTheAdversarialGenerators) {
  WorkloadSpec spec;
  spec.packets = 2'000;
  spec.flows = 100;
  spec.seed = 3;
  EXPECT_EQ(by_name("churn", spec).size(), spec.packets);
  EXPECT_EQ(by_name("skewflip", spec).size(), spec.packets);
  EXPECT_THROW((void)by_name("no-such-attack", spec), std::invalid_argument);
}

}  // namespace
}  // namespace nitro::trace
