#include "trace/workloads.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/ground_truth.hpp"

namespace nitro::trace {
namespace {

TEST(Workloads, CaidaDeterministicFromSeed) {
  WorkloadSpec spec;
  spec.packets = 10000;
  spec.seed = 42;
  const auto a = caida_like(spec);
  const auto b = caida_like(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].wire_bytes, b[i].wire_bytes);
    EXPECT_EQ(a[i].ts_ns, b[i].ts_ns);
  }
}

TEST(Workloads, SeedChangesTrace) {
  WorkloadSpec spec;
  spec.packets = 1000;
  spec.seed = 1;
  const auto a = caida_like(spec);
  spec.seed = 2;
  const auto b = caida_like(spec);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key == b[i].key) ++same;
  }
  EXPECT_LT(same, 50u);
}

TEST(Workloads, CaidaMeanPacketSizeNear714) {
  WorkloadSpec spec;
  spec.packets = 100000;
  spec.seed = 3;
  const auto stream = caida_like(spec);
  double sum = 0.0;
  for (const auto& p : stream) sum += p.wire_bytes;
  EXPECT_NEAR(sum / static_cast<double>(stream.size()), 714.0, 25.0);
}

TEST(Workloads, DatacenterIsMoreSkewedThanCaida) {
  WorkloadSpec spec;
  spec.packets = 200000;
  spec.flows = 50000;
  spec.seed = 4;
  const GroundTruth caida(caida_like(spec));
  const GroundTruth dc(datacenter(spec.packets, spec.flows, spec.seed));
  auto top10_share = [](const GroundTruth& t) {
    std::int64_t top = 0;
    for (const auto& [k, v] : t.top_k(10)) top += v;
    return static_cast<double>(top) / static_cast<double>(t.total());
  };
  EXPECT_GT(top10_share(dc), top10_share(caida));
}

TEST(Workloads, DdosConvergesOnOneDestination) {
  const auto stream = ddos(10000, 5000, 5);
  std::unordered_set<std::uint32_t> dsts;
  for (const auto& p : stream) dsts.insert(p.key.dst_ip);
  EXPECT_EQ(dsts.size(), 1u);
}

TEST(Workloads, DdosHasManyFlowsAndSmallPackets) {
  const auto stream = ddos(200000, 100000, 6);
  GroundTruth truth(stream);
  EXPECT_GT(truth.distinct(), 50000u);
  double sum = 0.0;
  for (const auto& p : stream) sum += p.wire_bytes;
  EXPECT_NEAR(sum / static_cast<double>(stream.size()), 272.0, 30.0);
}

TEST(Workloads, MinSizedAll64Bytes) {
  const auto stream = min_sized_stress(5000, 1000, 7);
  for (const auto& p : stream) EXPECT_EQ(p.wire_bytes, 64);
}

TEST(Workloads, UniformFlowsCoverKeySpaceEvenly) {
  const auto stream = uniform_flows(100000, 100, 8);
  GroundTruth truth(stream);
  EXPECT_EQ(truth.distinct(), 100u);
  for (const auto& [key, count] : truth.counts()) {
    EXPECT_NEAR(static_cast<double>(count), 1000.0, 200.0);
  }
}

TEST(Workloads, TimestampsMonotonic) {
  WorkloadSpec spec;
  spec.packets = 1000;
  spec.seed = 9;
  const auto stream = caida_like(spec);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].ts_ns, stream[i - 1].ts_ns);
  }
}

TEST(Workloads, TimestampsMatchConfiguredRate) {
  WorkloadSpec spec;
  spec.packets = 14'880'0;  // 148800 packets at 14.88Mpps -> 10ms
  spec.rate_pps = 14'880'000.0;
  spec.seed = 10;
  const auto stream = caida_like(spec);
  EXPECT_NEAR(static_cast<double>(stream.back().ts_ns), 1e7, 1e4);
}

TEST(Workloads, FlowKeyForRankStableAndDistinct) {
  std::unordered_set<FlowKey> keys;
  for (int i = 0; i < 10000; ++i) keys.insert(flow_key_for_rank(i, 0));
  EXPECT_EQ(keys.size(), 10000u);
  EXPECT_EQ(flow_key_for_rank(5, 1), flow_key_for_rank(5, 1));
  EXPECT_NE(flow_key_for_rank(5, 1), flow_key_for_rank(5, 2));
}

TEST(Workloads, ByNameDispatch) {
  WorkloadSpec spec;
  spec.packets = 100;
  spec.flows = 10;
  spec.seed = 11;
  EXPECT_EQ(by_name("caida", spec).size(), 100u);
  EXPECT_EQ(by_name("dc", spec).size(), 100u);
  EXPECT_EQ(by_name("ddos", spec).size(), 100u);
  EXPECT_EQ(by_name("64b", spec).size(), 100u);
  EXPECT_EQ(by_name("uniform", spec).size(), 100u);
  EXPECT_THROW(by_name("nope", spec), std::invalid_argument);
}

}  // namespace
}  // namespace nitro::trace
