#include "trace/trace_io.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/workloads.hpp"

namespace nitro::trace {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(TraceIoTest, RoundTripsTrace) {
  WorkloadSpec spec;
  spec.packets = 10000;
  spec.flows = 500;
  spec.seed = 1;
  const auto original = caida_like(spec);
  const auto path = track(temp_path("nitro_trace_roundtrip.ntr"));
  save_trace(path, original);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].key, original[i].key);
    EXPECT_EQ(loaded[i].wire_bytes, original[i].wire_bytes);
    EXPECT_EQ(loaded[i].ts_ns, original[i].ts_ns);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const auto path = track(temp_path("nitro_trace_empty.ntr"));
  save_trace(path, {});
  EXPECT_TRUE(load_trace(path).empty());
}

TEST_F(TraceIoTest, LargeTraceCrossesChunkBoundary) {
  // > 65536 records exercises the chunked writer/reader.
  const auto original = uniform_flows(70000, 100, 2);
  const auto path = track(temp_path("nitro_trace_large.ntr"));
  save_trace(path, original);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.front().key, original.front().key);
  EXPECT_EQ(loaded.back().key, original.back().key);
  EXPECT_EQ(loaded[65536].key, original[65536].key);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/nope.ntr"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  const auto path = track(temp_path("nitro_trace_badmagic.ntr"));
  std::ofstream out(path, std::ios::binary);
  const char junk[16] = "not a trace....";
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, NoTempFileLeftBehindAfterSave) {
  const auto path = track(temp_path("nitro_trace_notmp.ntr"));
  save_trace(path, uniform_flows(100, 10, 4));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(TraceIoTest, RewriteReplacesViaRenameNotInPlace) {
  // Regression: the old writer opened the destination with O_TRUNC and
  // wrote in place — same inode before and after, and a crash mid-write
  // left a truncated file.  The atomic path writes a sibling tmp file and
  // rename(2)s it over the destination, which necessarily installs a
  // fresh inode.  (Unlike the permissions-based test below, this holds
  // even when running as root.)
  const auto path = track(temp_path("nitro_trace_inode.ntr"));
  save_trace(path, uniform_flows(200, 20, 7));
  struct stat before{};
  ASSERT_EQ(::stat(path.c_str(), &before), 0);
  const auto rewritten = uniform_flows(300, 30, 8);
  save_trace(path, rewritten);
  struct stat after{};
  ASSERT_EQ(::stat(path.c_str(), &after), 0);
  EXPECT_NE(before.st_ino, after.st_ino)
      << "rewrite reused the destination inode: save_trace is writing in "
         "place instead of tmp+rename";
  EXPECT_EQ(load_trace(path).size(), rewritten.size());
}

TEST_F(TraceIoTest, FailedRewriteLeavesExistingTraceIntact) {
  // Regression: save_trace used to open the destination with O_TRUNC and
  // write in place, so any failure mid-write destroyed the previous trace
  // (worse: a crash could leave a truncated file behind a valid magic).
  // The atomic tmp+fsync+rename path must leave the old file untouched
  // when the rewrite cannot complete — forced here by making the
  // directory unwritable, which kills the tmp-file creation.
  if (::geteuid() == 0) GTEST_SKIP() << "directory permissions do not bind root";
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "nitro_trace_atomic_dir";
  fs::create_directory(dir);
  const auto path = (dir / "trace.ntr").string();
  const auto original = uniform_flows(500, 50, 5);
  save_trace(path, original);

  fs::permissions(dir, fs::perms::owner_read | fs::perms::owner_exec,
                  fs::perm_options::replace);
  EXPECT_THROW(save_trace(path, uniform_flows(9999, 10, 6)), std::runtime_error);
  fs::permissions(dir, fs::perms::owner_all, fs::perm_options::replace);

  // The original survives, complete and loadable.
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.front().key, original.front().key);
  EXPECT_EQ(loaded.back().key, original.back().key);
  fs::remove_all(dir);
}

TEST_F(TraceIoTest, TruncatedFileThrows) {
  WorkloadSpec spec;
  spec.packets = 1000;
  spec.seed = 3;
  const auto original = caida_like(spec);
  const auto path = track(temp_path("nitro_trace_trunc.ntr"));
  save_trace(path, original);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
}

}  // namespace
}  // namespace nitro::trace
