#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/workloads.hpp"

namespace nitro::trace {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(TraceIoTest, RoundTripsTrace) {
  WorkloadSpec spec;
  spec.packets = 10000;
  spec.flows = 500;
  spec.seed = 1;
  const auto original = caida_like(spec);
  const auto path = track(temp_path("nitro_trace_roundtrip.ntr"));
  save_trace(path, original);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].key, original[i].key);
    EXPECT_EQ(loaded[i].wire_bytes, original[i].wire_bytes);
    EXPECT_EQ(loaded[i].ts_ns, original[i].ts_ns);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const auto path = track(temp_path("nitro_trace_empty.ntr"));
  save_trace(path, {});
  EXPECT_TRUE(load_trace(path).empty());
}

TEST_F(TraceIoTest, LargeTraceCrossesChunkBoundary) {
  // > 65536 records exercises the chunked writer/reader.
  const auto original = uniform_flows(70000, 100, 2);
  const auto path = track(temp_path("nitro_trace_large.ntr"));
  save_trace(path, original);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.front().key, original.front().key);
  EXPECT_EQ(loaded.back().key, original.back().key);
  EXPECT_EQ(loaded[65536].key, original[65536].key);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/nope.ntr"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  const auto path = track(temp_path("nitro_trace_badmagic.ntr"));
  std::ofstream out(path, std::ios::binary);
  const char junk[16] = "not a trace....";
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedFileThrows) {
  WorkloadSpec spec;
  spec.packets = 1000;
  spec.seed = 3;
  const auto original = caida_like(spec);
  const auto path = track(temp_path("nitro_trace_trunc.ntr"));
  save_trace(path, original);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
}

}  // namespace
}  // namespace nitro::trace
