#include "trace/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace nitro::trace {
namespace {

TEST(Zipf, SamplesWithinRange) {
  ZipfSampler z(1000, 1.0, 1);
  for (int i = 0; i < 100000; ++i) {
    const auto k = z.next();
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(Zipf, Deterministic) {
  ZipfSampler a(1000, 1.1, 42), b(1000, 1.1, 42);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Zipf, RankOneIsMostFrequent) {
  ZipfSampler z(10000, 1.0, 3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) counts[z.next()] += 1;
  int best_rank_count = counts.count(1) ? counts[1] : 0;
  for (const auto& [rank, c] : counts) {
    EXPECT_LE(c, best_rank_count + 3) << "rank " << rank;
  }
}

TEST(Zipf, FrequencyRatioMatchesExponent) {
  // P(1)/P(2) = 2^s.
  const double s = 1.0;
  ZipfSampler z(100000, s, 5);
  std::uint64_t c1 = 0, c2 = 0;
  for (int i = 0; i < 2000000; ++i) {
    const auto k = z.next();
    if (k == 1) ++c1;
    if (k == 2) ++c2;
  }
  ASSERT_GT(c2, 0u);
  EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c2), std::pow(2.0, s), 0.2);
}

TEST(Zipf, HigherSkewConcentratesMass) {
  auto top10_share = [](double s) {
    ZipfSampler z(100000, s, 7);
    std::uint64_t top = 0;
    constexpr int kN = 300000;
    for (int i = 0; i < kN; ++i) {
      if (z.next() <= 10) ++top;
    }
    return static_cast<double>(top) / kN;
  };
  EXPECT_GT(top10_share(1.3), top10_share(0.8));
}

TEST(Zipf, SupportsHugeNWithoutTables) {
  ZipfSampler z(100'000'000ULL, 1.0, 9);  // 100M flows, O(1) memory
  for (int i = 0; i < 10000; ++i) {
    const auto k = z.next();
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100'000'000ULL);
  }
}

TEST(Zipf, MildSkewCoversTail) {
  // s = 0.4 (the DDoS generator's setting) must actually hit deep ranks.
  ZipfSampler z(1'000'000, 0.4, 11);
  std::uint64_t deep = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (z.next() > 500'000) ++deep;
  }
  EXPECT_GT(deep, kN / 10u);
}

}  // namespace
}  // namespace nitro::trace
