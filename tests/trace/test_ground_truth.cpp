#include "trace/ground_truth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/workloads.hpp"

namespace nitro::trace {
namespace {

TEST(GroundTruth, CountsAndTotal) {
  GroundTruth gt;
  gt.add(flow_key_for_rank(0, 0), 5);
  gt.add(flow_key_for_rank(0, 0), 3);
  gt.add(flow_key_for_rank(1, 0), 2);
  EXPECT_EQ(gt.count(flow_key_for_rank(0, 0)), 8);
  EXPECT_EQ(gt.count(flow_key_for_rank(1, 0)), 2);
  EXPECT_EQ(gt.count(flow_key_for_rank(2, 0)), 0);
  EXPECT_EQ(gt.total(), 10);
  EXPECT_EQ(gt.distinct(), 2u);
}

TEST(GroundTruth, NormsOnKnownDistribution) {
  GroundTruth gt;
  gt.add(flow_key_for_rank(0, 0), 3);
  gt.add(flow_key_for_rank(1, 0), 4);
  EXPECT_DOUBLE_EQ(gt.l1(), 7.0);
  EXPECT_DOUBLE_EQ(gt.l2(), 5.0);
}

TEST(GroundTruth, EntropyUniformIsLogN) {
  GroundTruth gt;
  for (int i = 0; i < 16; ++i) gt.add(flow_key_for_rank(i, 0), 10);
  EXPECT_NEAR(gt.entropy(), 4.0, 1e-9);
}

TEST(GroundTruth, EntropySingleFlowIsZero) {
  GroundTruth gt;
  gt.add(flow_key_for_rank(0, 0), 1000);
  EXPECT_NEAR(gt.entropy(), 0.0, 1e-9);
}

TEST(GroundTruth, HeavyHittersSortedAndThresholded) {
  GroundTruth gt;
  for (int i = 0; i < 10; ++i) gt.add(flow_key_for_rank(i, 0), 10 * (i + 1));
  const auto hh = gt.heavy_hitters(50);
  ASSERT_EQ(hh.size(), 6u);  // counts 50..100
  EXPECT_EQ(hh.front().second, 100);
  for (std::size_t i = 1; i < hh.size(); ++i) EXPECT_GE(hh[i - 1].second, hh[i].second);
}

TEST(GroundTruth, TopKTruncates) {
  GroundTruth gt;
  for (int i = 0; i < 100; ++i) gt.add(flow_key_for_rank(i, 0), i + 1);
  const auto top = gt.top_k(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].second, 100);
  EXPECT_EQ(top[4].second, 96);
}

TEST(GroundTruth, ChangesDetectsGrowthAndDisappearance) {
  GroundTruth prev, cur;
  prev.add(flow_key_for_rank(0, 0), 100);
  prev.add(flow_key_for_rank(1, 0), 50);
  cur.add(flow_key_for_rank(0, 0), 500);  // grew by 400
  cur.add(flow_key_for_rank(2, 0), 30);   // new flow, +30
  const auto changes = GroundTruth::changes(prev, cur, 40);
  // Expect: flow 0 (+400) and flow 1 (disappeared, 50).
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].first, flow_key_for_rank(0, 0));
  EXPECT_EQ(changes[0].second, 400);
  EXPECT_EQ(changes[1].first, flow_key_for_rank(1, 0));
  EXPECT_EQ(changes[1].second, 50);
}

TEST(GroundTruth, FromTraceMatchesManual) {
  WorkloadSpec spec;
  spec.packets = 5000;
  spec.flows = 100;
  spec.seed = 1;
  const auto stream = caida_like(spec);
  GroundTruth from_trace(stream);
  GroundTruth manual;
  for (const auto& p : stream) manual.add(p.key, 1);
  EXPECT_EQ(from_trace.total(), manual.total());
  EXPECT_EQ(from_trace.distinct(), manual.distinct());
  EXPECT_DOUBLE_EQ(from_trace.l2(), manual.l2());
}

}  // namespace
}  // namespace nitro::trace
