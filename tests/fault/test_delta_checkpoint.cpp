// Delta checkpoints (DESIGN.md §15): dirty-segment tracking units, the
// run-length delta codec (round trips + adversarial fuzzing at every
// truncation point), the daemon's delta frame invariants (a delta restore
// is bit-identical to a full restore across random cut points), and the
// CheckpointStore chain — torn tails, corrupt bases, forged headers, and
// retention GC that never eats the live chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "control/checkpoint.hpp"
#include "control/codec.hpp"
#include "control/daemon.hpp"
#include "fault/fault.hpp"
#include "sketch/counter_matrix.hpp"
#include "sketch/univmon.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::control {
namespace {

using trace::flow_key_for_rank;

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "nitro_delta_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> payload_of(const char* text) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(text);
  return {b, b + std::string(text).size()};
}

sketch::UnivMonConfig small_um() {
  sketch::UnivMonConfig cfg;
  cfg.levels = 4;
  cfg.depth = 3;
  cfg.top_width = 256;
  cfg.min_width = 128;
  cfg.heap_capacity = 32;
  return cfg;
}

core::NitroConfig vanilla_cfg() {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kVanilla;  // deterministic: exact equality testable
  return cfg;
}

// --- Dirty-segment tracking units -------------------------------------------

TEST(DirtyTracking, OffByDefaultAllDirtyOnEnableCleanAfterClear) {
  sketch::CounterMatrix m(3, 256, 11, true);
  EXPECT_FALSE(m.dirty_tracking());
  m.enable_dirty_tracking();
  EXPECT_TRUE(m.dirty_tracking());
  // Enabling knows nothing about prior state: everything must be dirty.
  EXPECT_EQ(m.dirty_segment_count(),
            std::uint64_t{3} * m.segments_per_row());
  m.clear_dirty();
  EXPECT_EQ(m.dirty_segment_count(), 0u);
}

TEST(DirtyTracking, UpdateMarksExactlyTheTouchedSegment) {
  sketch::CounterMatrix m(2, 256, 11, true);
  m.enable_dirty_tracking();
  m.clear_dirty();
  const FlowKey key = flow_key_for_rank(5, 1);
  m.update_row(0, key, 7);
  const std::uint32_t col = m.column_of_digest(0, flow_digest(key));
  const std::uint32_t seg = col / sketch::CounterMatrix::kSegmentCounters;
  EXPECT_TRUE(m.segment_dirty(0, seg));
  EXPECT_EQ(m.dirty_segment_count(), 1u);
  for (std::uint32_t s = 0; s < m.segments_per_row(); ++s) {
    if (s != seg) EXPECT_FALSE(m.segment_dirty(0, s)) << "segment " << s;
    EXPECT_FALSE(m.segment_dirty(1, s)) << "row 1 segment " << s;
  }
}

TEST(DirtyTracking, ConservativeSitesMarkEverythingTheyMayTouch) {
  sketch::CounterMatrix m(2, 256, 11, true);
  m.enable_dirty_tracking();
  m.clear_dirty();
  (void)m.row_mut(1);  // caller may write any counter through the span
  for (std::uint32_t s = 0; s < m.segments_per_row(); ++s) {
    EXPECT_FALSE(m.segment_dirty(0, s));
    EXPECT_TRUE(m.segment_dirty(1, s));
  }
  m.clear_dirty();
  m.clear();  // zeroing changes every previously nonzero counter
  EXPECT_EQ(m.dirty_segment_count(), std::uint64_t{2} * m.segments_per_row());
}

TEST(DirtyTracking, MergeMarksOnlySegmentsTheOtherSidePerturbs) {
  sketch::CounterMatrix a(2, 256, 11, true);
  sketch::CounterMatrix b(2, 256, 11, true);
  const FlowKey key = flow_key_for_rank(9, 1);
  b.update_row(0, key, 3);
  a.enable_dirty_tracking();
  a.clear_dirty();
  a.merge(b);
  EXPECT_EQ(a.dirty_segment_count(), 1u);
  const std::uint32_t col = a.column_of_digest(0, flow_digest(key));
  EXPECT_TRUE(a.segment_dirty(0, col / sketch::CounterMatrix::kSegmentCounters));
}

// --- Matrix delta codec -----------------------------------------------------

TEST(MatrixDelta, AppliesTouchedSegmentsOntoTheBaseExactly) {
  sketch::CounterMatrix base(3, 200, 13, true);
  for (int i = 0; i < 300; ++i) {
    base.update_row(i % 3, flow_key_for_rank(i, 2), i + 1);
  }
  sketch::CounterMatrix src = base;  // replica holds the base state
  sketch::CounterMatrix dst = base;
  src.enable_dirty_tracking();
  src.clear_dirty();  // frame cut: deltas now relative to `base`
  for (int i = 0; i < 40; ++i) {
    src.update_row(i % 3, flow_key_for_rank(1000 + i, 2), 5);
  }
  ByteWriter w;
  write_matrix_delta(w, src);
  ByteReader r(w.bytes());
  apply_matrix_delta(r, dst);
  EXPECT_TRUE(r.exhausted());
  for (std::uint32_t row = 0; row < 3; ++row) {
    const auto a = src.row(row);
    const auto b = dst.row(row);
    for (std::uint32_t c = 0; c < 200; ++c) EXPECT_EQ(a[c], b[c]);
  }
}

TEST(MatrixDelta, RequiresTrackingAndMatchingShape) {
  sketch::CounterMatrix untracked(2, 128, 13, true);
  ByteWriter w;
  EXPECT_THROW(write_matrix_delta(w, untracked), std::logic_error);

  sketch::CounterMatrix src(2, 128, 13, true);
  src.enable_dirty_tracking();
  ByteWriter w2;
  write_matrix_delta(w2, src);
  sketch::CounterMatrix wrong_width(2, 64, 13, true);
  ByteReader r(w2.bytes());
  EXPECT_THROW(apply_matrix_delta(r, wrong_width), std::invalid_argument);
}

/// Hand-craft a matrix-delta payload with an adversarial run list; every
/// structural violation must throw, never write out of bounds.
std::vector<std::uint8_t> forged_delta(
    std::uint32_t depth, std::uint32_t width,
    const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>& runs) {
  ByteWriter w;
  w.put_u32(0x4e4d4458);  // kMatrixDeltaMagic "NMDX"
  w.put_u32(depth);
  w.put_u32(width);
  w.put_u8(1);  // signed
  for (std::uint32_t row = 0; row < depth; ++row) {
    const auto& rr = row < runs.size() ? runs[row] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{};
    w.put_u32(static_cast<std::uint32_t>(rr.size()));
    for (const auto& [start, len] : rr) {
      w.put_u32(start);
      w.put_u32(len);
    }
    // Enough counter payload for plausible runs; malformed run lists must
    // be rejected before any of it is consumed.
    for (const auto& [start, len] : rr) {
      for (std::uint32_t i = 0; i < len * 64; ++i) w.put_i64(1);
    }
  }
  return std::move(w).take();
}

TEST(MatrixDelta, RejectsForgedRunLists) {
  sketch::CounterMatrix m(1, 256, 13, true);  // 4 segments per row
  auto expect_reject = [&](const std::vector<std::uint8_t>& bytes, const char* what) {
    ByteReader r(bytes);
    sketch::CounterMatrix replica = m;
    EXPECT_THROW(apply_matrix_delta(r, replica), std::invalid_argument) << what;
  };
  expect_reject(forged_delta(1, 256, {{{0, 0}}}), "zero-length run");
  expect_reject(forged_delta(1, 256, {{{2, 1}, {1, 1}}}), "unordered runs");
  expect_reject(forged_delta(1, 256, {{{0, 2}, {1, 1}}}), "overlapping runs");
  expect_reject(forged_delta(1, 256, {{{4, 1}}}), "run starts past the end");
  expect_reject(forged_delta(1, 256, {{{3, 2}}}), "run extends past the end");
  expect_reject(forged_delta(1, 256, {{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {3, 1}}}),
                "run count exceeds segments");
}

// --- UnivMon delta frame fuzzing --------------------------------------------

sketch::UnivMon touched_univmon() {
  sketch::UnivMon um(small_um(), 21);
  um.enable_dirty_tracking();
  um.clear_dirty();
  for (int i = 0; i < 50; ++i) um.update(flow_key_for_rank(i % 7, 3));
  return um;
}

TEST(UnivMonDelta, RoundTripsOntoTheBaseReplica) {
  sketch::UnivMon base(small_um(), 21);
  for (int i = 0; i < 500; ++i) base.update(flow_key_for_rank(i % 40, 3));
  sketch::UnivMon src = base;
  sketch::UnivMon replica = base;
  src.enable_dirty_tracking();
  src.clear_dirty();
  for (int i = 0; i < 80; ++i) src.update(flow_key_for_rank(100 + i % 11, 3));

  apply_univmon_delta(snapshot_univmon_delta(src), replica);
  EXPECT_EQ(replica.total(), src.total());
  // Bit-identical state: the full snapshots must match byte for byte.
  EXPECT_EQ(snapshot_univmon(replica), snapshot_univmon(src));
}

TEST(UnivMonDelta, EveryTruncationPointIsRejected) {
  const sketch::UnivMon src = touched_univmon();
  const auto frame = snapshot_univmon_delta(src);
  for (std::size_t n = 0; n < frame.size(); ++n) {
    sketch::UnivMon replica(small_um(), 21);
    EXPECT_THROW(
        apply_univmon_delta(std::span(frame).first(n), replica),
        std::invalid_argument)
        << "truncation at byte " << n << " of " << frame.size();
  }
}

TEST(UnivMonDelta, SingleBitFlipsNeverLoad) {
  const sketch::UnivMon src = touched_univmon();
  const auto pristine = snapshot_univmon_delta(src);
  // Every byte, one bit each (rotating by byte index) — a full 8-bit sweep
  // is covered for the CRC frame by the codec suite; here the point is
  // that no flipped delta reaches the replica's counters.
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    auto frame = pristine;
    frame[byte] ^= static_cast<std::uint8_t>(1u << (byte % 8));
    sketch::UnivMon replica(small_um(), 21);
    EXPECT_THROW(apply_univmon_delta(frame, replica), std::invalid_argument)
        << "flip at byte " << byte;
  }
}

TEST(UnivMonDelta, LevelCountMismatchIsRejected) {
  const sketch::UnivMon src = touched_univmon();
  auto other = small_um();
  other.levels = 2;
  sketch::UnivMon replica(other, 21);
  EXPECT_THROW(apply_univmon_delta(snapshot_univmon_delta(src), replica),
               std::invalid_argument);
}

// --- Daemon delta frames ----------------------------------------------------

trace::Trace daemon_stream(std::uint64_t packets = 30'000) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 900;
  spec.seed = 42;
  return trace::caida_like(spec);
}

TEST(DaemonDelta, NotReadyUntilAFrameIsCutAndAfterTwoRotations) {
  control::MeasurementDaemon::Tasks tasks;
  MeasurementDaemon d(small_um(), vanilla_cfg(), tasks, 7);
  EXPECT_FALSE(d.delta_ready());
  d.enable_delta_checkpoints();
  EXPECT_FALSE(d.delta_ready());  // no base frame yet
  EXPECT_THROW((void)d.delta_checkpoint_bytes(), std::logic_error);
  d.cut_checkpoint_frame();
  EXPECT_TRUE(d.delta_ready());
  (void)d.end_epoch();
  EXPECT_TRUE(d.delta_ready());  // one rotation is encodable
  (void)d.end_epoch();
  EXPECT_FALSE(d.delta_ready());  // two are not
  EXPECT_THROW((void)d.delta_checkpoint_bytes(), std::logic_error);
}

/// The acceptance property: a replica driven purely by base + delta frames
/// is *bit-identical* (checkpoint_bytes equality) to the source daemon,
/// across random cut points, with and without an epoch rotation between
/// frames.
TEST(DaemonDelta, DeltaRestoreBitIdenticalAcrossRandomCutPoints) {
  control::MeasurementDaemon::Tasks tasks;
  MeasurementDaemon src(small_um(), vanilla_cfg(), tasks, 7);
  MeasurementDaemon dst(small_um(), vanilla_cfg(), tasks, 7);
  src.enable_delta_checkpoints();
  dst.enable_delta_checkpoints();

  const auto stream = daemon_stream();
  std::size_t cursor = 0;
  SplitMix64 rng(0xdeadbeef);

  dst.restore_checkpoint(src.checkpoint_bytes());
  src.cut_checkpoint_frame();

  for (int round = 0; round < 24 && cursor < stream.size(); ++round) {
    const std::size_t n = rng.next() % 800;  // random cut point
    for (std::size_t i = 0; i < n && cursor < stream.size(); ++i, ++cursor) {
      src.on_packet(stream[cursor].key);
    }
    if (rng.next() % 3 == 0) (void)src.end_epoch();  // at most one rotation
    ASSERT_TRUE(src.delta_ready()) << "round " << round;
    const auto delta = src.delta_checkpoint_bytes();
    src.cut_checkpoint_frame();
    dst.apply_delta_checkpoint(delta);
    ASSERT_EQ(src.checkpoint_bytes(), dst.checkpoint_bytes())
        << "round " << round << " cursor " << cursor;
  }
}

TEST(DaemonDelta, SparseEpochDeltaIsMuchSmallerThanAFullCheckpoint) {
  control::MeasurementDaemon::Tasks tasks;
  sketch::UnivMonConfig big = small_um();
  big.top_width = 8192;  // big enough that a sparse epoch touches a sliver
  MeasurementDaemon d(big, vanilla_cfg(), tasks, 7);
  d.enable_delta_checkpoints();
  d.cut_checkpoint_frame();
  // Sparse workload: a handful of flows.
  for (int i = 0; i < 200; ++i) d.on_packet(flow_key_for_rank(i % 4, 9));
  const auto full = d.checkpoint_bytes();
  const auto delta = d.delta_checkpoint_bytes();
  EXPECT_LT(delta.size(), full.size() / 4)
      << "delta " << delta.size() << " vs full " << full.size();
}

TEST(DaemonDelta, CorruptDeltaPayloadNeverHalfApplies) {
  control::MeasurementDaemon::Tasks tasks;
  MeasurementDaemon src(small_um(), vanilla_cfg(), tasks, 7);
  MeasurementDaemon dst(small_um(), vanilla_cfg(), tasks, 7);
  src.enable_delta_checkpoints();
  dst.enable_delta_checkpoints();
  dst.restore_checkpoint(src.checkpoint_bytes());
  src.cut_checkpoint_frame();
  for (int i = 0; i < 100; ++i) src.on_packet(flow_key_for_rank(i, 9));
  auto delta = src.delta_checkpoint_bytes();
  const auto before = dst.checkpoint_bytes();
  delta[delta.size() / 2] ^= 0x40;  // rots the inner sealed univmon delta
  EXPECT_THROW(dst.apply_delta_checkpoint(delta), std::invalid_argument);
  EXPECT_EQ(dst.checkpoint_bytes(), before);  // untouched by the bad frame
}

// --- CheckpointStore chains -------------------------------------------------

TEST(ChainStore, SaveLoadRoundTripInOrder) {
  CheckpointStore store(fresh_dir("roundtrip"));
  const auto s1 = store.save_frame("daemon", /*full=*/true, payload_of("base"));
  ASSERT_TRUE(s1.ok);
  EXPECT_EQ(s1.seq, 1u);
  EXPECT_EQ(s1.base_gen, 1u);
  const auto s2 = store.save_frame("daemon", /*full=*/false, payload_of("d1"));
  const auto s3 = store.save_frame("daemon", /*full=*/false, payload_of("d2"));
  ASSERT_TRUE(s2.ok);
  ASSERT_TRUE(s3.ok);
  EXPECT_EQ(s3.base_gen, 1u);

  const auto chain = store.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  EXPECT_EQ(chain.base, payload_of("base"));
  ASSERT_EQ(chain.deltas.size(), 2u);
  EXPECT_EQ(chain.deltas[0], payload_of("d1"));
  EXPECT_EQ(chain.deltas[1], payload_of("d2"));
  EXPECT_EQ(chain.base_gen, 1u);
  EXPECT_EQ(chain.last_seq, 3u);
  EXPECT_EQ(chain.frames_rejected, 0u);
}

TEST(ChainStore, DeltaWithNoBaseIsRefused) {
  CheckpointStore store(fresh_dir("nobase"));
  const auto s = store.save_frame("daemon", /*full=*/false, payload_of("d"));
  EXPECT_FALSE(s.ok);
  EXPECT_FALSE(store.load_chain("daemon").found);
}

TEST(ChainStore, TornTailTruncatesTheChainButKeepsThePrefix) {
  CheckpointStore store(fresh_dir("torntail"));
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d1")).ok);
  fault::Schedule plan;
  plan.torn_checkpoint_write(/*at_hit=*/1, /*keep_bytes=*/15);
  {
    fault::ScopedFaultInjection scoped(plan);
    // The torn save still reports success — exactly the crash-mid-
    // checkpoint shape where the rename was journaled first.
    ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d2-torn")).ok);
  }
  EXPECT_EQ(plan.fired(fault::Site::kCheckpointWrite), 1u);

  const auto chain = store.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  EXPECT_EQ(chain.base, payload_of("base"));
  ASSERT_EQ(chain.deltas.size(), 1u);
  EXPECT_EQ(chain.deltas[0], payload_of("d1"));
  EXPECT_EQ(chain.last_seq, 2u);
  EXPECT_EQ(chain.frames_rejected, 1u);
  EXPECT_NE(chain.error.find("frame"), std::string::npos) << chain.error;
}

TEST(ChainStore, CorruptFullFallsBackToTheOlderGeneration) {
  CheckpointStore store(fresh_dir("fallback"));
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("old base")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("old d")).ok);
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("new base")).ok);

  // Rot the newest full at load time (lane = its seq) — injected on the
  // read path, so the on-disk file itself stays pristine.
  fault::Schedule plan;
  plan.corrupt_chain_frame(/*at_hit=*/1, /*lane=*/3);
  fault::ScopedFaultInjection scoped(plan);
  const auto chain = store.load_chain("daemon");
  EXPECT_GE(plan.fired(fault::Site::kChainLoad), 1u);
  ASSERT_TRUE(chain.found);
  EXPECT_EQ(chain.base, payload_of("old base"));
  ASSERT_EQ(chain.deltas.size(), 1u);
  EXPECT_EQ(chain.deltas[0], payload_of("old d"));
  EXPECT_EQ(chain.base_gen, 1u);
  EXPECT_GE(chain.frames_rejected, 1u);
}

TEST(ChainStore, RenamedFrameIsDetectedAsForged) {
  CheckpointStore store(fresh_dir("forged"));
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d1")).ok);
  // Forge: substitute the seq-2 delta for a (claimed) seq-3 one by file
  // rename.  The seq inside the CRC frame disagrees with the file name, so
  // restore must reject it instead of replaying it out of order.
  std::filesystem::copy_file(store.chain_path("daemon", 2, false),
                             store.chain_path("daemon", 3, false));
  const auto chain = store.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  ASSERT_EQ(chain.deltas.size(), 1u);  // seq 2 applied, forged seq 3 rejected
  EXPECT_EQ(chain.last_seq, 2u);
  EXPECT_EQ(chain.frames_rejected, 1u);
  EXPECT_NE(chain.error.find("does not match"), std::string::npos) << chain.error;
}

TEST(ChainStore, SequenceGapTruncatesTheChain) {
  CheckpointStore store(fresh_dir("gap"));
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d1")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d2")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d3")).ok);
  std::filesystem::remove(store.chain_path("daemon", 3, false));
  const auto chain = store.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  ASSERT_EQ(chain.deltas.size(), 1u);  // d1; d3 unreachable across the gap
  EXPECT_EQ(chain.last_seq, 2u);
}

TEST(ChainStore, RetentionGcNeverDeletesTheLiveChain) {
  CheckpointStore store(fresh_dir("gc"));
  store.set_retention(4);
  // A live chain longer than the retention budget: nothing may be GC'd,
  // because every frame is reachable from the only base.
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base")).ok);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d")).ok);
  }
  auto count_frames = [&] {
    std::size_t n = 0;
    for (std::uint64_t seq = 1; seq <= 64; ++seq) {
      n += std::filesystem::exists(store.chain_path("daemon", seq, true));
      n += std::filesystem::exists(store.chain_path("daemon", seq, false));
    }
    return n;
  };
  EXPECT_EQ(count_frames(), 7u);

  // A new base makes the old generation dead; GC may now reclaim it down
  // to the budget — and the new chain must remain fully restorable.
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base2")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d2")).ok);
  EXPECT_LE(count_frames(), 4u);
  const auto chain = store.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  EXPECT_EQ(chain.base, payload_of("base2"));
  ASSERT_EQ(chain.deltas.size(), 1u);
  EXPECT_EQ(chain.deltas[0], payload_of("d2"));
}

TEST(ChainStore, RestartResumesSequenceNumbersFromDisk) {
  const std::string dir = fresh_dir("restart");
  {
    CheckpointStore store(dir);
    ASSERT_TRUE(store.save_frame("daemon", true, payload_of("base")).ok);
    ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d1")).ok);
  }
  CheckpointStore reopened(dir);
  const auto chain = reopened.load_chain("daemon");
  ASSERT_TRUE(chain.found);
  EXPECT_EQ(chain.last_seq, 2u);
  const auto s = reopened.save_frame("daemon", false, payload_of("d2"));
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.seq, 3u);  // continues, never recycles
  EXPECT_EQ(s.base_gen, 1u);
}

TEST(ChainStore, TelemetryCountsFramesRejectionsAndGc) {
  CheckpointStore store(fresh_dir("telemetry"));
  telemetry::Registry registry;
  store.attach_telemetry(registry, "nitro_checkpoint");
  store.set_retention(2);
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("b1")).ok);
  ASSERT_TRUE(store.save_frame("daemon", false, payload_of("d")).ok);
  ASSERT_TRUE(store.save_frame("daemon", true, payload_of("b2")).ok);
  EXPECT_EQ(registry.counter("nitro_checkpoint_chain_frames_total").value(), 3u);
  EXPECT_GE(registry.counter("nitro_checkpoint_chain_gc_deleted_total").value(), 1u);

  fault::Schedule plan;
  plan.corrupt_chain_frame(/*at_hit=*/1, /*lane=*/3);
  fault::ScopedFaultInjection scoped(plan);
  const auto chain = store.load_chain("daemon");
  // Retention-2 GC already deleted b1, so corrupting the only remaining
  // full (b2, seq 3) leaves nothing restorable — the rejection must still
  // be counted, and the failure reported rather than half-loaded.
  EXPECT_FALSE(chain.found);
  EXPECT_GE(registry.counter("nitro_checkpoint_chain_rejected_total").value(), 1u);
}

}  // namespace
}  // namespace nitro::control
