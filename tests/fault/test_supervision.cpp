// Worker supervision: heartbeats, the drain watchdog, shard quarantine
// with survivor-only merges (Theorem-1 bound on the surviving traffic),
// the kDegrade overload ladder, and overflow accounting invariants.
#include "shard/sharded_nitro.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::shard {
namespace {

using trace::flow_key_for_rank;

trace::Trace shard_trace(std::uint64_t packets = 120000, std::uint64_t seed = 81) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 3000;
  spec.seed = seed;
  return trace::caida_like(spec);
}

core::NitroConfig vanilla_cfg() {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kVanilla;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  return cfg;
}

TEST(Supervision, HeartbeatsAdvanceOnHealthyWorkers) {
  ShardedNitroCountMin sharded(2, [] { return sketch::CountMinSketch(4, 512, 31); },
                               vanilla_cfg());
  auto& group = sharded.group();
  const std::uint64_t hb0 = group.worker_heartbeat(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(group.worker_heartbeat(0), hb0);
  EXPECT_TRUE(group.worker_alive(0));
  EXPECT_TRUE(group.worker_alive(1));
  EXPECT_EQ(group.quarantined_shards(), 0u);
}

TEST(Supervision, WatchdogQuarantinesAWedgedWorkerWithinTheDrainTimeout) {
  // Worker 1 wedges on its first loop iteration (60s injected stall, far
  // past the 250ms watchdog).  The epoch must still close: drain() gives
  // up on the wedged shard, quarantines it, and completes from survivors.
  fault::Schedule plan;
  plan.stall_worker(/*lane=*/1, /*at_hit=*/1, /*ns=*/60'000'000'000ULL);
  fault::ScopedFaultInjection scoped(plan);

  ShardOptions opts;
  opts.drain_timeout_ns = 250'000'000ULL;
  ShardedNitroCountMin sharded(3, [] { return sketch::CountMinSketch(4, 1024, 32); },
                               vanilla_cfg(), opts);
  const auto stream = shard_trace(30000);
  for (const auto& p : stream) sharded.update(p.key, 1, p.ts_ns);

  const auto t0 = std::chrono::steady_clock::now();
  const bool complete = sharded.drain();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_FALSE(complete);
  EXPECT_LT(elapsed_ms, 5000) << "drain must not wait out a 60s stall";
  EXPECT_TRUE(sharded.quarantined(1));
  EXPECT_FALSE(sharded.quarantined(0));
  EXPECT_FALSE(sharded.quarantined(2));
  EXPECT_EQ(sharded.group().quarantines(), 1u);
  // The aborted worker exits without touching its instance again.
  sharded.group().stop();
  EXPECT_FALSE(sharded.worker_alive(1));
}

TEST(Supervision, KilledWorkerMidEpochMergesSurvivorsWithinTheoremBound) {
  // Seeded kill: worker 2 wedges mid-epoch.  The merged snapshot excludes
  // the lost shard; for flows on surviving shards the view must be exactly
  // a Count-Min over the surviving union stream — one-sided, and within
  // the Theorem-1-style additive bound scaled to the surviving traffic.
  fault::Schedule plan;
  plan.stall_worker(/*lane=*/2, /*at_hit=*/40, /*ns=*/60'000'000'000ULL);
  fault::ScopedFaultInjection scoped(plan);

  ShardOptions opts;
  opts.drain_timeout_ns = 250'000'000ULL;
  constexpr std::uint32_t kWidth = 4096;
  ShardedNitroCountMin sharded(
      4, [] { return sketch::CountMinSketch(5, kWidth, 33); }, vanilla_cfg(), opts);

  const auto stream = shard_trace(120000);
  for (const auto& p : stream) sharded.update(p.key, 1, p.ts_ns);

  EXPECT_FALSE(sharded.drain());
  ASSERT_TRUE(sharded.quarantined(2));
  const auto& snap = sharded.snapshot();
  EXPECT_EQ(snap.quarantined_shards, 1u);

  // Surviving stream = everything the live shards applied.
  std::uint64_t surviving = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (!sharded.quarantined(s)) surviving += sharded.group().shard_applied(s);
  }
  ASSERT_GT(surviving, 0u);
  ASSERT_LT(surviving, stream.size());  // the fault really cost coverage

  trace::GroundTruth truth(stream);
  // Per-flow truth restricted to surviving shards: dispatch is per-flow
  // sticky, so a flow is entirely in or entirely out.
  const double additive =
      3.0 * static_cast<double>(surviving) / static_cast<double>(kWidth) + 16.0;
  int checked = 0;
  for (int rank = 0; rank < 3000; ++rank) {
    const auto key = flow_key_for_rank(rank, 81);
    if (sharded.shard_of(key) == 2) continue;  // lost with the quarantined shard
    const std::int64_t t = truth.count(key);
    const std::int64_t est = snap.query(key);
    EXPECT_GE(est, t) << "rank " << rank;  // CM one-sided on survivors
    EXPECT_LE(static_cast<double>(est), static_cast<double>(t) + additive)
        << "rank " << rank;
    ++checked;
  }
  EXPECT_GT(checked, 1000);
}

TEST(Supervision, DeadWorkerIsDetectedAndDrainStillCompletes) {
  fault::Schedule plan;
  plan.kill_worker(/*lane=*/1, /*at_hit=*/1);
  fault::ScopedFaultInjection scoped(plan);

  ShardOptions opts;
  opts.drain_timeout_ns = 250'000'000ULL;
  ShardedNitroCountMin sharded(2, [] { return sketch::CountMinSketch(4, 1024, 34); },
                               vanilla_cfg(), opts);
  // Give the injected death time to land, then push traffic at both shards.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sharded.worker_alive(1));
  const auto stream = shard_trace(20000);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : stream) sharded.update(p.key, 1, p.ts_ns);
  sharded.drain();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_LT(elapsed_ms, 5000) << "pushes to a dead shard must not spin forever";
  // Every packet is accounted: applied by the live worker, or counted as
  // a drop at the dead shard (kBlock's bounded-liveness fallback).
  auto& group = sharded.group();
  for (std::uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(group.shard_packets(s),
              group.shard_applied(s) + group.shard_drops(s))
        << "shard " << s;
  }
  EXPECT_EQ(group.shard_drops(0), 0u);
  EXPECT_EQ(group.shard_applied(0), group.shard_packets(0));
  EXPECT_GT(group.shard_drops(1), 0u);
  const auto& snap = sharded.snapshot();  // merged view still answers
  EXPECT_GT(snap.packets, 0u);
}

TEST(Supervision, DegradePolicyStepsProbabilityBeforeShedding) {
  // A repeatedly-stalling worker (5ms per loop iteration) against a tiny
  // ring forces overflow; under kDegrade the producer halves the shard's
  // sampling probability (bounded) before any packet is shed, and the
  // accounting makes the accuracy trade visible.
  fault::Schedule plan;
  plan.add({fault::Site::kWorkerLoop, /*at_hit=*/1, /*every=*/1, /*lane=*/0,
            fault::Action::kStall, /*param=*/5'000'000});
  auto scoped = std::make_unique<fault::ScopedFaultInjection>(plan);

  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.5;
  cfg.track_top_keys = false;
  ShardOptions opts;
  opts.ring_capacity = 64;
  opts.overflow = OverflowPolicy::kDegrade;
  opts.max_degrade_steps = 7;
  telemetry::Registry registry;
  ShardedNitroCountMin sharded(1, [] { return sketch::CountMinSketch(4, 2048, 35); },
                               cfg, opts);
  sharded.attach_telemetry(registry, "dp");

  const auto stream = shard_trace(6000);
  for (const auto& p : stream) sharded.update(p.key, 1, p.ts_ns);

  auto& group = sharded.group();
  EXPECT_GT(group.degrade_level(0), 0u);
  EXPECT_GT(group.estimated_error_inflation(), 1.0);
  EXPECT_DOUBLE_EQ(group.estimated_error_inflation(),
                   std::sqrt(std::ldexp(1.0, static_cast<int>(group.degrade_level(0)))));

  // Lift the stall storm; the worker catches up and the degraded
  // probability is visible on the instance.
  scoped.reset();
  sharded.drain();
  // Accounting: every packet was applied or counted as shed — none lost.
  EXPECT_EQ(group.shard_packets(0),
            group.shard_applied(0) + group.shard_drops(0));
  EXPECT_GT(group.shard_drops(0), 0u);
  EXPECT_LT(sharded.shard_sketch(0).current_probability(), cfg.probability);

  // Per-shard degrade telemetry counted the escalations.
  std::uint64_t steps = 0;
  registry.for_each_counter([&](const std::string& name, const std::string&,
                                const telemetry::Counter& c) {
    if (name == "dp_shard0_degrade_steps_total") steps = c.value();
  });
  EXPECT_EQ(steps, group.degrade_level(0));

  // Epoch boundary: degradation resets for the next epoch.
  sharded.reset_degradation();
  EXPECT_EQ(group.degrade_level(0), 0u);
  EXPECT_DOUBLE_EQ(group.estimated_error_inflation(), 1.0);
  EXPECT_DOUBLE_EQ(sharded.shard_sketch(0).current_probability(), cfg.probability);
}

TEST(Supervision, DropPolicyBurstAccountingIsExact) {
  // Regression for the kDrop burst tail: with every ring push rejected
  // (injected overflow storm), a dispatched burst must be fully accounted
  // as drops — packets == pushed + drops, nothing lost or double-counted.
  fault::Schedule plan;
  plan.reject_ring_pushes(/*lane=*/0, /*at_hit=*/1, /*every=*/1);
  fault::ScopedFaultInjection scoped(plan);

  core::NitroConfig cfg = vanilla_cfg();
  ShardOptions opts;
  opts.overflow = OverflowPolicy::kDrop;
  ShardedNitroCountMin sharded(1, [] { return sketch::CountMinSketch(4, 512, 36); },
                               cfg, opts);
  std::vector<FlowKey> burst;
  for (int i = 0; i < 100; ++i) burst.push_back(flow_key_for_rank(i, 5));
  sharded.update_burst(burst, 1, 0);
  sharded.update(burst[0], 1, 0);

  auto& group = sharded.group();
  EXPECT_EQ(group.shard_packets(0), 101u);
  EXPECT_EQ(group.shard_drops(0), 101u);
  EXPECT_EQ(group.shard_applied(0), 0u);
  EXPECT_EQ(sharded.packets(), 101u);
  EXPECT_EQ(sharded.drops(), 101u);
}

TEST(Supervision, QuarantinedShardIsShedNotBlockedOn) {
  // After quarantine, kBlock producers shed to the lost shard instead of
  // spinning: the forwarding path never wedges on a dead core.
  fault::Schedule plan;
  plan.stall_worker(/*lane=*/0, /*at_hit=*/1, /*ns=*/60'000'000'000ULL);
  fault::ScopedFaultInjection scoped(plan);

  ShardOptions opts;
  opts.drain_timeout_ns = 200'000'000ULL;
  ShardedNitroCountMin sharded(2, [] { return sketch::CountMinSketch(4, 512, 37); },
                               vanilla_cfg(), opts);
  const auto stream = shard_trace(5000);
  for (const auto& p : stream) sharded.update(p.key, 1, p.ts_ns);
  EXPECT_FALSE(sharded.drain());
  ASSERT_TRUE(sharded.quarantined(0));

  const std::uint64_t drops_before = sharded.group().shard_drops(0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) {
    sharded.update_on_shard(0, flow_key_for_rank(i, 6), 1, 0);
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_LT(elapsed_ms, 1000);
  EXPECT_EQ(sharded.group().shard_drops(0), drops_before + 1000);
}

}  // namespace
}  // namespace nitro::shard
