// Crash-safe checkpoint/restore: atomic save, CRC-gated load with
// previous-generation fallback, torn-write and bit-rot injection, and
// full round trips for every sketch family plus the daemon and the
// sharded data plane.
#include "control/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "control/daemon.hpp"
#include "core/nitro_sketch.hpp"
#include "fault/fault.hpp"
#include "shard/sharded_nitro.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::control {
namespace {

using trace::flow_key_for_rank;

std::string fresh_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "nitro_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> payload_of(const char* text) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(text);
  return {b, b + std::string(text).size()};
}

trace::Trace small_trace(std::uint64_t packets = 60000, std::uint64_t seed = 12) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 2000;
  spec.seed = seed;
  return trace::caida_like(spec);
}

/// Heaps preserve the (key, estimate) *multiset* across a checkpoint, but
/// entries_sorted() breaks estimate ties by internal array order, which
/// legitimately differs between an incrementally built heap and a restored
/// one.  Impose a total order before element-wise comparison.
template <typename E>
std::vector<E> canonical(std::vector<E> v) {
  std::sort(v.begin(), v.end(), [](const E& a, const E& b) {
    if (a.estimate != b.estimate) return a.estimate > b.estimate;
    return std::memcmp(&a.key, &b.key, sizeof(FlowKey)) < 0;
  });
  return v;
}

core::NitroConfig fixed_cfg(double p = 0.2) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = p;
  cfg.track_top_keys = true;
  cfg.top_keys = 64;
  return cfg;
}

TEST(CheckpointStore, SaveLoadRoundTripIsBitIdentical) {
  CheckpointStore store(fresh_dir("roundtrip"));
  const auto payload = payload_of("the epoch state");
  ASSERT_TRUE(store.save("daemon", payload));
  const auto restored = store.load("daemon");
  EXPECT_EQ(restored.source, CheckpointStore::Source::kCurrent);
  EXPECT_FALSE(restored.current_rejected);
  EXPECT_EQ(restored.payload, payload);
}

TEST(CheckpointStore, MissingCheckpointReportsNoneWithoutThrowing) {
  CheckpointStore store(fresh_dir("missing"));
  const auto restored = store.load("daemon");
  EXPECT_EQ(restored.source, CheckpointStore::Source::kNone);
  EXPECT_TRUE(restored.payload.empty());
}

TEST(CheckpointStore, SecondSaveRotatesThePreviousGeneration) {
  CheckpointStore store(fresh_dir("rotate"));
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 1")));
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 2")));
  EXPECT_TRUE(std::filesystem::exists(store.current_path("daemon")));
  EXPECT_TRUE(std::filesystem::exists(store.previous_path("daemon")));
  EXPECT_EQ(store.load("daemon").payload, payload_of("epoch 2"));
}

TEST(CheckpointStore, TornWriteIsDetectedByCrcAndFallsBackToPrevious) {
  CheckpointStore store(fresh_dir("torn"));
  ASSERT_TRUE(store.save("daemon", payload_of("good epoch")));

  // The second save is torn: only 10 bytes of the frame reach disk, but
  // the rename dance completes and the save reports success — exactly the
  // "rename journaled before data blocks" crash.  (Hit counters live in
  // the schedule, so the pre-install save above did not advance them.)
  fault::Schedule plan;
  plan.torn_checkpoint_write(/*at_hit=*/1, /*keep_bytes=*/10);
  {
    fault::ScopedFaultInjection scoped(plan);
    ASSERT_TRUE(store.save("daemon", payload_of("torn epoch")));
  }
  EXPECT_EQ(plan.fired(fault::Site::kCheckpointWrite), 1u);

  const auto restored = store.load("daemon");
  EXPECT_TRUE(restored.current_rejected);
  EXPECT_NE(restored.error.find("frame"), std::string::npos) << restored.error;
  EXPECT_EQ(restored.source, CheckpointStore::Source::kPrevious);
  EXPECT_EQ(restored.payload, payload_of("good epoch"));
}

TEST(CheckpointStore, InjectedBitRotIsCaughtByCrcOnRead) {
  CheckpointStore store(fresh_dir("bitrot"));
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 1")));
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 2")));

  // The first read (the current generation) rots in memory after the disk
  // read; the CRC rejects it and the clean previous generation loads.
  fault::Schedule plan;
  plan.corrupt_checkpoint_read(/*at_hit=*/1);
  fault::ScopedFaultInjection scoped(plan);
  const auto restored = store.load("daemon");
  EXPECT_TRUE(restored.current_rejected);
  EXPECT_EQ(restored.source, CheckpointStore::Source::kPrevious);
  EXPECT_EQ(restored.payload, payload_of("epoch 1"));
}

TEST(CheckpointStore, TelemetryCountsSavesAndRejections) {
  telemetry::Registry registry;
  CheckpointStore store(fresh_dir("telemetry"));
  store.attach_telemetry(registry, "ckpt");
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 1")));
  ASSERT_TRUE(store.save("daemon", payload_of("epoch 2")));
  {
    fault::Schedule plan;
    plan.corrupt_checkpoint_read(1);
    fault::ScopedFaultInjection scoped(plan);
    (void)store.load("daemon");
  }
  std::uint64_t saves = 0, rejected = 0, restores = 0;
  registry.for_each_counter([&](const std::string& name, const std::string&,
                                const telemetry::Counter& c) {
    if (name == "ckpt_saves_total") saves = c.value();
    if (name == "ckpt_corrupt_rejected_total") rejected = c.value();
    if (name == "ckpt_restores_total") restores = c.value();
  });
  EXPECT_EQ(saves, 2u);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(restores, 1u);
}

template <typename Base>
void roundtrip_nitro(Base make_base(), std::uint64_t trace_seed) {
  const auto stream = small_trace(60000, trace_seed);
  core::NitroSketch<Base> source(make_base(), fixed_cfg());
  for (const auto& p : stream) source.update(p.key, 1, p.ts_ns);

  const auto payload = checkpoint_nitro(source);
  core::NitroSketch<Base> replica(make_base(), fixed_cfg());
  restore_nitro(payload, replica);

  EXPECT_EQ(replica.packets(), source.packets());
  EXPECT_EQ(replica.sampled_updates(), source.sampled_updates());
  for (int rank = 0; rank < 2000; ++rank) {
    const auto key = flow_key_for_rank(rank, 51);
    EXPECT_EQ(replica.query(key), source.query(key)) << "rank " << rank;
  }
  const auto a = canonical(source.top_keys());
  const auto b = canonical(replica.top_keys());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].estimate, b[i].estimate);
  }
}

TEST(NitroCheckpoint, CountMinRoundTripIsBitIdentical) {
  roundtrip_nitro<sketch::CountMinSketch>(
      +[] { return sketch::CountMinSketch(5, 2048, 61); }, 13);
}

TEST(NitroCheckpoint, CountSketchRoundTripIsBitIdentical) {
  roundtrip_nitro<sketch::CountSketch>(
      +[] { return sketch::CountSketch(5, 2048, 62); }, 14);
}

TEST(NitroCheckpoint, KAryRoundTripRestoresStreamTotal) {
  roundtrip_nitro<sketch::KArySketch>(
      +[] { return sketch::KArySketch(5, 2048, 63); }, 15);
}

TEST(NitroCheckpoint, RejectsTruncatedPayloads) {
  core::NitroSketch<sketch::CountMinSketch> source(
      sketch::CountMinSketch(4, 512, 7), fixed_cfg());
  source.update(flow_key_for_rank(1, 1));
  auto payload = checkpoint_nitro(source);
  core::NitroSketch<sketch::CountMinSketch> replica(
      sketch::CountMinSketch(4, 512, 7), fixed_cfg());
  payload.resize(payload.size() / 2);
  EXPECT_THROW(restore_nitro(payload, replica), std::exception);
}

TEST(ShardedCheckpoint, RoundTripAcrossAWorkerGroup) {
  const auto stream = small_trace(80000, 16);
  core::NitroConfig cfg = fixed_cfg(1.0);
  cfg.mode = core::Mode::kVanilla;
  auto make = [] { return sketch::CountMinSketch(5, 2048, 71); };
  shard::ShardedNitroCountMin source(3, make, cfg);
  for (const auto& p : stream) source.update(p.key, 1, p.ts_ns);

  const auto payload = checkpoint_sharded(source);
  shard::ShardedNitroCountMin replica(3, make, cfg);
  EXPECT_EQ(restore_sharded(payload, replica), 0u);

  const auto& src_snap = source.snapshot();
  const auto& dst_snap = replica.snapshot();
  for (int rank = 0; rank < 2000; ++rank) {
    const auto key = flow_key_for_rank(rank, 51);
    EXPECT_EQ(dst_snap.query(key), src_snap.query(key)) << "rank " << rank;
  }
}

TEST(ShardedCheckpoint, RejectsWorkerCountMismatch) {
  core::NitroConfig cfg = fixed_cfg(1.0);
  cfg.mode = core::Mode::kVanilla;
  auto make = [] { return sketch::CountMinSketch(4, 512, 72); };
  shard::ShardedNitroCountMin source(3, make, cfg);
  shard::ShardedNitroCountMin wrong(2, make, cfg);
  const auto payload = checkpoint_sharded(source);
  EXPECT_THROW(restore_sharded(payload, wrong), std::invalid_argument);
}

TEST(DaemonCheckpoint, CrashAtEpochBoundaryRestoresIdenticalReports) {
  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 8;
  um_cfg.depth = 5;
  um_cfg.top_width = 1024;
  um_cfg.min_width = 256;
  um_cfg.heap_capacity = 100;
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kVanilla;

  MeasurementDaemon daemon(um_cfg, cfg, {}, /*seed=*/99);
  const auto stream = small_trace(50000, 17);
  // Run one full epoch so change detection has a previous sketch, then
  // half of the next epoch.
  std::size_t i = 0;
  for (; i < stream.size() / 2; ++i) daemon.on_packet(stream[i].key, stream[i].ts_ns);
  (void)daemon.end_epoch();
  for (; i < stream.size(); ++i) daemon.on_packet(stream[i].key, stream[i].ts_ns);

  CheckpointStore store(fresh_dir("daemon_crash"));
  ASSERT_TRUE(store.save("daemon", daemon.checkpoint_bytes()));

  {
    fault::Schedule plan;
    plan.crash_daemon_epoch(1);
    fault::ScopedFaultInjection scoped(plan);
    EXPECT_THROW(daemon.end_epoch(), DaemonCrash);
  }

  // "Restart": a fresh daemon with the same configs+seed restores the
  // checkpoint and closes the epoch the crashed one could not — producing
  // exactly the report the original would have.
  MeasurementDaemon restarted(um_cfg, cfg, {}, /*seed=*/99);
  const auto restored = store.load("daemon");
  ASSERT_EQ(restored.source, CheckpointStore::Source::kCurrent);
  restarted.restore_checkpoint(restored.payload);
  EXPECT_EQ(restarted.epoch(), 1u);

  const auto want = daemon.end_epoch();  // fault uninstalled: original closes
  const auto got = restarted.end_epoch();
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.packets, want.packets);
  EXPECT_DOUBLE_EQ(got.entropy, want.entropy);
  EXPECT_DOUBLE_EQ(got.distinct, want.distinct);
  const auto want_hh = canonical(want.heavy_hitters);
  const auto got_hh = canonical(got.heavy_hitters);
  ASSERT_EQ(got_hh.size(), want_hh.size());
  for (std::size_t h = 0; h < got_hh.size(); ++h) {
    EXPECT_EQ(got_hh[h].key, want_hh[h].key);
    EXPECT_EQ(got_hh[h].estimate, want_hh[h].estimate);
  }
  const auto want_ch = canonical(want.changed_flows);
  const auto got_ch = canonical(got.changed_flows);
  ASSERT_EQ(got_ch.size(), want_ch.size());
  for (std::size_t c = 0; c < got_ch.size(); ++c) {
    EXPECT_EQ(got_ch[c].key, want_ch[c].key);
    EXPECT_EQ(got_ch[c].estimate, want_ch[c].estimate);
  }
}

TEST(DaemonCheckpoint, RestoreRejectsWrongMagicLoudly) {
  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 4;
  um_cfg.depth = 3;
  um_cfg.top_width = 256;
  um_cfg.heap_capacity = 16;
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kVanilla;
  MeasurementDaemon daemon(um_cfg, cfg, {});
  auto payload = daemon.checkpoint_bytes();
  payload[0] ^= 0xff;
  EXPECT_THROW(daemon.restore_checkpoint(payload), std::invalid_argument);
}

}  // namespace
}  // namespace nitro::control
