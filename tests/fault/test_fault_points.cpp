// Fault-injection framework: deterministic triggering, lane addressing,
// zero-impact defaults, and the ring / daemon fault points.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/spsc_ring.hpp"
#include "control/daemon.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::fault {
namespace {

using trace::flow_key_for_rank;

TEST(FaultPoint, NoScheduleInstalledMeansNoFault) {
  ASSERT_EQ(installed(), nullptr);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(point(Site::kRingPush, 0), Action::kNone);
  }
}

TEST(FaultSchedule, FiresExactlyAtTheConfiguredHit) {
  Schedule plan;
  plan.kill_worker(/*lane=*/0, /*at_hit=*/5);
  ScopedFaultInjection scoped(plan);
  for (std::uint64_t h = 1; h <= 10; ++h) {
    const Action a = point(Site::kWorkerLoop, 0);
    EXPECT_EQ(a, h == 5 ? Action::kDie : Action::kNone) << "hit " << h;
  }
  EXPECT_EQ(plan.hits(Site::kWorkerLoop, 0), 10u);
  EXPECT_EQ(plan.fired(Site::kWorkerLoop), 1u);
}

TEST(FaultSchedule, PeriodicRuleRefiresEveryN) {
  Schedule plan;
  plan.reject_ring_pushes(/*lane=*/0, /*at_hit=*/3, /*every=*/4);
  ScopedFaultInjection scoped(plan);
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t h = 1; h <= 16; ++h) {
    if (point(Site::kRingPush, 0) == Action::kReject) fired_at.push_back(h);
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{3, 7, 11, 15}));
}

TEST(FaultSchedule, LanesHaveIndependentHitCountersAndRules) {
  Schedule plan;
  plan.kill_worker(/*lane=*/2, /*at_hit=*/1);
  ScopedFaultInjection scoped(plan);
  // Lane 0 visits do not advance lane 2's counter or trigger its rule.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(point(Site::kWorkerLoop, 0), Action::kNone);
  }
  EXPECT_EQ(point(Site::kWorkerLoop, 2), Action::kDie);
  EXPECT_EQ(plan.hits(Site::kWorkerLoop, 0), 50u);
  EXPECT_EQ(plan.hits(Site::kWorkerLoop, 2), 1u);
}

TEST(FaultSchedule, ParamIsDeliveredToTheSite) {
  Schedule plan;
  plan.stall_worker(/*lane=*/1, /*at_hit=*/1, /*ns=*/123456);
  ScopedFaultInjection scoped(plan);
  std::uint64_t param = 0;
  EXPECT_EQ(point(Site::kWorkerLoop, 1, &param), Action::kStall);
  EXPECT_EQ(param, 123456u);
}

TEST(FaultSchedule, UninstallStopsInjectionImmediately) {
  Schedule plan;
  plan.reject_ring_pushes(0, 1, 1);  // reject every push
  {
    ScopedFaultInjection scoped(plan);
    EXPECT_EQ(point(Site::kRingPush, 0), Action::kReject);
  }
  EXPECT_EQ(installed(), nullptr);
  EXPECT_EQ(point(Site::kRingPush, 0), Action::kNone);
}

TEST(RingFaultPoint, RejectMakesTryPushReportFull) {
  SpscRing<int> ring(64);
  Schedule plan;
  plan.reject_ring_pushes(/*lane=*/0, /*at_hit=*/1, /*every=*/1);
  {
    ScopedFaultInjection scoped(plan);
    EXPECT_FALSE(ring.try_push(7));
    int items[4] = {1, 2, 3, 4};
    EXPECT_EQ(ring.try_push_bulk(items, 4), 0u);
  }
  // Overflow storm over: the ring works again and lost nothing.
  EXPECT_TRUE(ring.try_push(7));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(RingFaultPoint, LaneSelectsTheTargetRing) {
  SpscRing<int> ring0(64), ring2(64);
  ring0.set_fault_lane(0);
  ring2.set_fault_lane(2);
  Schedule plan;
  plan.reject_ring_pushes(/*lane=*/2, /*at_hit=*/1, /*every=*/1);
  ScopedFaultInjection scoped(plan);
  EXPECT_TRUE(ring0.try_push(1));   // lane 0 unaffected
  EXPECT_FALSE(ring2.try_push(1));  // lane 2 storms
}

TEST(StallNs, AbortPredicateInterruptsTheStall) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  stall_ns(10'000'000'000ULL, [] { return true; });  // 10s stall, instant abort
  const auto elapsed = clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            1000);
}

TEST(CorruptBytes, DeterministicAndFlipsEveryWindow) {
  std::vector<std::uint8_t> a(300, 0xcc), b(300, 0xcc);
  corrupt_bytes(a, 42);
  corrupt_bytes(b, 42);
  EXPECT_EQ(a, b);  // same seed, same rot
  // At least one bit flipped in every 64-byte window.
  for (std::size_t base = 0; base < a.size(); base += 64) {
    const std::size_t end = std::min(base + 64, a.size());
    bool flipped = false;
    for (std::size_t i = base; i < end; ++i) flipped |= a[i] != 0xcc;
    EXPECT_TRUE(flipped) << "window at " << base;
  }
  std::vector<std::uint8_t> c(300, 0xcc);
  corrupt_bytes(c, 43);
  EXPECT_NE(a, c);  // different seed, different rot
}

TEST(DaemonFaultPoints, EpochCrashThrowsDaemonCrash) {
  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 4;
  um_cfg.depth = 3;
  um_cfg.top_width = 256;
  um_cfg.heap_capacity = 32;
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kVanilla;
  control::MeasurementDaemon daemon(um_cfg, cfg, {});
  daemon.on_packet(flow_key_for_rank(1, 1));

  Schedule plan;
  plan.crash_daemon_epoch(/*at_hit=*/1);
  ScopedFaultInjection scoped(plan);
  EXPECT_THROW(daemon.end_epoch(), control::DaemonCrash);
  EXPECT_EQ(plan.fired(Site::kDaemonEpoch), 1u);
  // The daemon survives its own crash exception: the next epoch closes.
  EXPECT_NO_THROW(daemon.end_epoch());
}

TEST(DaemonFaultPoints, ClockSkewDoesNotBreakLineRateMode) {
  sketch::UnivMonConfig um_cfg;
  um_cfg.levels = 4;
  um_cfg.depth = 3;
  um_cfg.top_width = 512;
  um_cfg.heap_capacity = 32;
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kAlwaysLineRate;
  cfg.probability = 0.1;
  control::MeasurementDaemon daemon(um_cfg, cfg, {});

  // Every 64th packet's timestamp jumps a full second backwards: the rate
  // controller must tolerate the non-monotonic clock without wedging or
  // crashing, and the daemon must still count every packet.
  Schedule plan;
  plan.skew_clock(/*at_hit=*/64, /*every=*/64, /*skew_ns=*/-1'000'000'000);
  ScopedFaultInjection scoped(plan);

  trace::WorkloadSpec spec;
  spec.packets = 20000;
  spec.flows = 500;
  spec.seed = 9;
  const auto stream = trace::caida_like(spec);
  for (const auto& p : stream) daemon.on_packet(p.key, p.ts_ns);

  EXPECT_GT(plan.fired(Site::kDaemonClock), 0u);
  EXPECT_EQ(daemon.data_plane().total(), static_cast<std::int64_t>(stream.size()));
  const auto report = daemon.end_epoch();
  EXPECT_EQ(report.packets, static_cast<std::int64_t>(stream.size()));
}

}  // namespace
}  // namespace nitro::fault
