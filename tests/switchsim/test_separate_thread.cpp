#include "switchsim/nitro_separate_thread.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "switchsim/ovs_pipeline.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::switchsim {
namespace {

trace::Trace small_trace(std::uint64_t packets = 100000) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 2000;
  spec.seed = 17;
  return trace::caida_like(spec);
}

TEST(SeparateThread, VanillaSketchAccountsEveryKeyThroughRing) {
  // Pushing *every* packet through the ring (vanilla integration) may
  // overrun the buffer when the consumer is slower than the producer —
  // by design, overruns are dropped and counted, never silently lost.
  sketch::CountMinSketch cm(5, 4096, 1);
  std::uint64_t drops = 0;
  {
    SeparateThreadMeasurement<sketch::CountMinSketch> meas(cm, 1 << 14);
    const auto stream = small_trace(50000);
    for (const auto& p : stream) meas.on_packet(p.key, p.wire_bytes, p.ts_ns);
    meas.finish();
    drops = meas.drops();
  }
  EXPECT_EQ(cm.total(), static_cast<std::int64_t>(50000 - drops));
}

TEST(SeparateThread, NitroPreprocessingSelectsFraction) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.01;
  cfg.track_top_keys = false;
  NitroSeparateThread<sketch::CountSketch> meas(sketch::CountSketch(5, 4096, 2), cfg);
  const auto stream = small_trace(200000);
  for (const auto& p : stream) meas.on_packet(p.key, p.wire_bytes, p.ts_ns);
  meas.finish();
  const double rate =
      static_cast<double>(meas.applied()) / (5.0 * static_cast<double>(meas.packets()));
  EXPECT_NEAR(rate, 0.01, 0.003);
  EXPECT_EQ(meas.drops(), 0u);
}

TEST(SeparateThread, EstimatesMatchTruthAfterDrain) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  cfg.track_top_keys = true;
  cfg.top_keys = 100;
  NitroSeparateThread<sketch::CountSketch> meas(sketch::CountSketch(5, 8192, 3), cfg);
  const auto stream = small_trace(300000);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) meas.on_packet(p.key, p.wire_bytes, p.ts_ns);
  meas.finish();
  for (const auto& [key, count] : truth.top_k(5)) {
    EXPECT_NEAR(static_cast<double>(meas.query(key)), static_cast<double>(count),
                0.3 * static_cast<double>(count) + 100.0);
  }
  EXPECT_GT(meas.heap().size(), 0u);
}

TEST(SeparateThread, WorksInsideOvsPipeline) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.02;
  cfg.track_top_keys = false;
  NitroSeparateThread<sketch::CountMinSketch> meas(sketch::CountMinSketch(5, 8192, 4),
                                                   cfg);
  OvsPipeline pipe(meas);
  const auto stream = small_trace(100000);
  const auto stats = pipe.run(materialize(stream));
  EXPECT_EQ(stats.packets, stream.size());
  EXPECT_GT(meas.applied(), 0u);
}

TEST(SeparateThread, KAryStreamTotalSurvivesRingDetour) {
  // Regression: the ring path skipped Traits::on_packet entirely, so
  // K-ary's stream total S stayed 0 and every estimate (C - S/w)/(1 - 1/w)
  // was computed against an empty stream.  The producer now accumulates S
  // and folds it into the base at finish().
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  cfg.track_top_keys = false;
  NitroSeparateThread<sketch::KArySketch> meas(sketch::KArySketch(5, 8192, 6), cfg);
  const auto stream = small_trace(300000);
  trace::GroundTruth truth(stream);
  for (const auto& p : stream) meas.on_packet(p.key, p.wire_bytes, p.ts_ns);
  meas.finish();
  EXPECT_EQ(meas.base().total(), static_cast<std::int64_t>(stream.size()));
  for (const auto& [key, count] : truth.top_k(5)) {
    EXPECT_NEAR(static_cast<double>(meas.query(key)), static_cast<double>(count),
                0.3 * static_cast<double>(count) + 100.0);
  }
}

TEST(SeparateThread, PacketCounterReadableWhileProducing) {
  // Regression: packets_ was a plain uint64_t, torn/raced when telemetry
  // or a monitoring thread read it mid-run.  It is a relaxed atomic now —
  // this test gives TSan a concurrent reader to check.
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  cfg.track_top_keys = false;
  NitroSeparateThread<sketch::CountMinSketch> meas(sketch::CountMinSketch(4, 2048, 8),
                                                   cfg);
  const auto stream = small_trace(100000);
  std::atomic<bool> stop{false};
  std::uint64_t last_seen = 0;
  std::thread reader([&] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = meas.packets();
      EXPECT_GE(now, prev);  // monotone, never torn
      prev = now;
    }
    last_seen = prev;
  });
  for (const auto& p : stream) meas.on_packet(p.key, p.wire_bytes, p.ts_ns);
  stop.store(true, std::memory_order_release);
  reader.join();
  meas.finish();
  EXPECT_EQ(meas.packets(), stream.size());
  EXPECT_LE(last_seen, stream.size());
}

TEST(SeparateThread, FinishIsIdempotent) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.5;
  NitroSeparateThread<sketch::CountMinSketch> meas(sketch::CountMinSketch(3, 1024, 5),
                                                   cfg);
  meas.on_packet(trace::flow_key_for_rank(0, 0), 64, 0);
  meas.finish();
  meas.finish();  // must not hang or crash
  SUCCEED();
}

TEST(SeparateThread, BurstPreprocessingMatchesPerPacketExactly) {
  // The burst pre-processing stage makes the same geometric selections as
  // N per-packet calls (one shared sampler, identical draw sequence), and
  // the ring preserves order, so with a ring large enough to never drop
  // the final counters must be bit-identical.
  const auto stream = small_trace(60000);
  std::vector<FlowKey> keys;
  keys.reserve(stream.size());
  for (const auto& p : stream) keys.push_back(p.key);

  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  cfg.track_top_keys = false;

  NitroSeparateThread<sketch::CountMinSketch> scalar(
      sketch::CountMinSketch(5, 4096, 41), cfg, 1 << 20);
  for (const auto& p : stream) scalar.on_packet(p.key, p.wire_bytes, p.ts_ns);
  scalar.finish();

  NitroSeparateThread<sketch::CountMinSketch> burst(
      sketch::CountMinSketch(5, 4096, 41), cfg, 1 << 20);
  std::size_t i = 0;
  while (i < keys.size()) {
    const std::size_t n = std::min<std::size_t>(32, keys.size() - i);
    burst.on_burst(keys.data() + i, nullptr, n, stream[i + n - 1].ts_ns);
    i += n;
  }
  burst.finish();

  ASSERT_EQ(scalar.drops(), 0u);
  ASSERT_EQ(burst.drops(), 0u);
  EXPECT_EQ(scalar.packets(), burst.packets());
  EXPECT_EQ(scalar.applied(), burst.applied());
  const auto& ms = scalar.base().matrix();
  const auto& mb = burst.base().matrix();
  for (std::uint32_t r = 0; r < ms.depth(); ++r) {
    const auto rs = ms.row(r);
    const auto rb = mb.row(r);
    for (std::size_t c = 0; c < rs.size(); ++c) {
      ASSERT_EQ(rs[c], rb[c]) << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace nitro::switchsim
