// Edge cases of the switch substrate: malformed packets, drop actions,
// partial bursts, and cross-pipeline consistency.
#include <gtest/gtest.h>

#include "core/nitro_sketch.hpp"
#include "sketch/count_min.hpp"
#include "switchsim/bess_pipeline.hpp"
#include "switchsim/measurement.hpp"
#include "switchsim/ovs_pipeline.hpp"
#include "switchsim/vpp_graph.hpp"
#include "trace/workloads.hpp"

namespace nitro::switchsim {
namespace {

std::vector<RawPacket> with_corruption(std::size_t n, std::size_t every) {
  trace::WorkloadSpec spec;
  spec.packets = n;
  spec.flows = 100;
  spec.seed = 3;
  auto raws = materialize(trace::caida_like(spec));
  for (std::size_t i = 0; i < raws.size(); i += every) {
    raws[i].header[12] = 0x08;
    raws[i].header[13] = 0x06;  // ARP EtherType -> parse rejects
  }
  return raws;
}

TEST(PipelineEdges, OvsCountsMalformedAsDrops) {
  NoMeasurement none;
  OvsPipeline pipe(none);
  const auto raws = with_corruption(1000, 10);
  const auto stats = pipe.run(raws);
  EXPECT_EQ(stats.drops, 100u);
  EXPECT_EQ(stats.packets, 900u);
}

TEST(PipelineEdges, MeasurementNeverSeesMalformedPackets) {
  sketch::CountMinSketch cm(3, 1024, 1);
  InlineMeasurementNoTs<sketch::CountMinSketch> meas(cm);
  OvsPipeline pipe(meas);
  pipe.run(with_corruption(1000, 10));
  EXPECT_EQ(cm.total(), 900);
}

TEST(PipelineEdges, VppAndBessAgreeOnDropCount) {
  const auto raws = with_corruption(2048, 8);
  NoMeasurement m1, m2;
  VppGraph vpp(m1);
  BessPipeline bess(m2);
  const auto s1 = vpp.run(raws);
  const auto s2 = bess.run(raws);
  EXPECT_EQ(s1.drops, s2.drops);
  EXPECT_EQ(s1.packets, s2.packets);
}

TEST(PipelineEdges, PartialFinalBurstProcessed) {
  // 33 packets = one full burst of 32 + a 1-packet tail.
  trace::WorkloadSpec spec;
  spec.packets = 33;
  spec.flows = 4;
  spec.seed = 5;
  const auto raws = materialize(trace::caida_like(spec));
  NoMeasurement none;
  OvsPipeline pipe(none);
  EXPECT_EQ(pipe.run(raws).packets, 33u);
}

TEST(PipelineEdges, EmptyTraceYieldsZeroStats) {
  NoMeasurement none;
  OvsPipeline pipe(none);
  const auto stats = pipe.run(std::vector<RawPacket>{});
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_EQ(stats.drops, 0u);
}

TEST(PipelineEdges, DropActionRuleDropsMatchingFlows) {
  NoMeasurement none;
  OvsPipeline pipe(none);
  // Install a drop rule for one /8 in the classifier.
  FlowKey victim_net;
  victim_net.src_ip = 0x0a000000;
  pipe.classifier().add_rule(0, victim_net, kActionDrop);

  trace::Trace stream;
  trace::PacketRecord rec;
  rec.key.src_ip = 0x0a112233;  // matches the drop rule's /8
  rec.key.dst_ip = 1;
  rec.wire_bytes = 64;
  for (int i = 0; i < 100; ++i) stream.push_back(rec);
  rec.key.src_ip = 0x0b000001;  // different /8: forwarded
  for (int i = 0; i < 50; ++i) stream.push_back(rec);

  const auto stats = pipe.run(materialize(stream));
  EXPECT_EQ(stats.drops, 100u);
  EXPECT_EQ(stats.packets, 50u);
}

TEST(PipelineEdges, TinyEmcStillForwardsEverything) {
  NoMeasurement none;
  OvsPipeline pipe(none, /*emc_entries=*/2);  // constant EMC thrash
  trace::WorkloadSpec spec;
  spec.packets = 10000;
  spec.flows = 1000;
  spec.seed = 7;
  const auto stats = pipe.run(materialize(trace::caida_like(spec)));
  EXPECT_EQ(stats.packets, 10000u);
  EXPECT_GT(pipe.emc().misses(), 1000u);  // classifier fallback exercised
}

TEST(PipelineEdges, ByteAccountingMatchesWireSizes) {
  trace::WorkloadSpec spec;
  spec.packets = 5000;
  spec.flows = 100;
  spec.seed = 9;
  const auto stream = trace::caida_like(spec);
  std::uint64_t expected = 0;
  for (const auto& p : stream) expected += p.wire_bytes;
  NoMeasurement none;
  OvsPipeline pipe(none);
  EXPECT_EQ(pipe.run(materialize(stream)).bytes, expected);
}

TEST(PipelineEdges, BurstFeedMatchesScalarFeedBitExactly) {
  // A fixed-rate Nitro sketch ignores timestamps, so driving the OVS
  // pipeline with burst_size 32 (one on_burst per rx burst) and with
  // burst_size 1 (per-packet on_packet) must leave identical counters —
  // the pipeline-level restatement of update_burst's bit-identity.
  trace::WorkloadSpec spec;
  spec.packets = 50'000;
  spec.flows = 2'000;
  spec.seed = 17;
  const auto raws = materialize(trace::caida_like(spec));

  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  core::NitroSketch<sketch::CountMinSketch> scalar(sketch::CountMinSketch(5, 2048, 31),
                                                   cfg);
  core::NitroSketch<sketch::CountMinSketch> burst(sketch::CountMinSketch(5, 2048, 31),
                                                  cfg);
  {
    InlineMeasurement<core::NitroSketch<sketch::CountMinSketch>> meas(scalar);
    OvsPipeline pipe(meas, 8192, 1);
    pipe.run(raws);
  }
  {
    InlineMeasurement<core::NitroSketch<sketch::CountMinSketch>> meas(burst);
    OvsPipeline pipe(meas, 8192, 32);
    pipe.run(raws);
  }
  scalar.flush();
  burst.flush();
  EXPECT_EQ(scalar.packets(), burst.packets());
  EXPECT_EQ(scalar.sampled_updates(), burst.sampled_updates());
  const auto& ms = scalar.base().matrix();
  const auto& mb = burst.base().matrix();
  for (std::uint32_t r = 0; r < ms.depth(); ++r) {
    const auto rs = ms.row(r);
    const auto rb = mb.row(r);
    ASSERT_EQ(rs.size(), rb.size());
    for (std::size_t c = 0; c < rs.size(); ++c) {
      ASSERT_EQ(rs[c], rb[c]) << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace nitro::switchsim
