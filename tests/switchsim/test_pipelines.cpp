#include <gtest/gtest.h>

#include "core/nitro_sketch.hpp"
#include "switchsim/bess_pipeline.hpp"
#include "switchsim/instrumented_univmon.hpp"
#include "switchsim/ovs_pipeline.hpp"
#include "switchsim/vpp_graph.hpp"
#include "trace/ground_truth.hpp"
#include "trace/workloads.hpp"

namespace nitro::switchsim {
namespace {

trace::Trace small_trace(std::uint64_t packets = 50000) {
  trace::WorkloadSpec spec;
  spec.packets = packets;
  spec.flows = 2000;
  spec.seed = 7;
  return trace::caida_like(spec);
}

TEST(OvsPipeline, ForwardsAllValidPackets) {
  NoMeasurement nomeas;
  OvsPipeline pipe(nomeas);
  const auto stream = small_trace();
  const auto raws = materialize(stream);
  const auto stats = pipe.run(raws);
  EXPECT_EQ(stats.packets, stream.size());
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.throughput().mpps, 0.0);
}

TEST(OvsPipeline, EmcAbsorbsRepeatedFlows) {
  NoMeasurement nomeas;
  OvsPipeline pipe(nomeas);
  const auto raws = materialize(small_trace());
  pipe.run(raws);
  // 2000 flows into an 8192-entry EMC: hits dominate misses.
  EXPECT_GT(pipe.emc().hits(), pipe.emc().misses() * 5);
}

TEST(OvsPipeline, InlineMeasurementSeesEveryPacket) {
  sketch::CountMinSketch cm(5, 4096, 1);
  InlineMeasurementNoTs<sketch::CountMinSketch> meas(cm);
  OvsPipeline pipe(meas);
  const auto stream = small_trace();
  pipe.run(materialize(stream));
  EXPECT_EQ(cm.total(), static_cast<std::int64_t>(stream.size()));
}

TEST(OvsPipeline, NitroAioEndToEndAccuracy) {
  core::NitroConfig cfg;
  cfg.mode = core::Mode::kFixedRate;
  cfg.probability = 0.05;
  core::NitroCountMin nitro(sketch::CountMinSketch(5, 8192, 2), cfg);
  InlineMeasurement<core::NitroCountMin> meas(nitro);
  OvsPipeline pipe(meas);
  const auto stream = small_trace(200000);
  trace::GroundTruth truth(stream);
  pipe.run(materialize(stream));
  const auto top = truth.top_k(5);
  for (const auto& [key, count] : top) {
    EXPECT_NEAR(static_cast<double>(nitro.query(key)), static_cast<double>(count),
                0.3 * static_cast<double>(count) + 100.0);
  }
}

TEST(OvsPipeline, ProfiledRunAccountsAllStages) {
  sketch::CountMinSketch cm(5, 4096, 3);
  InlineMeasurementNoTs<sketch::CountMinSketch> meas(cm);
  OvsPipeline pipe(meas);
  Profile prof;
  pipe.run(materialize(small_trace(20000)), &prof);
  EXPECT_GT(prof.parse.cycles(), 0u);
  EXPECT_GT(prof.lookup.cycles(), 0u);
  EXPECT_GT(prof.measurement.cycles(), 0u);
  double total = 0.0;
  for (const auto& s : prof.shares()) total += s.percent;
  EXPECT_NEAR(total, 100.0, 0.1);
}

TEST(VppGraph, ForwardsAndMeasures) {
  sketch::CountMinSketch cm(5, 4096, 4);
  InlineMeasurementNoTs<sketch::CountMinSketch> meas(cm);
  VppGraph graph(meas);
  const auto stream = small_trace();
  const auto stats = graph.run(materialize(stream));
  EXPECT_EQ(stats.packets, stream.size());
  EXPECT_EQ(cm.total(), static_cast<std::int64_t>(stream.size()));
}

TEST(VppGraph, RoutesViaPrefixTable) {
  NoMeasurement nomeas;
  VppGraph graph(nomeas);
  graph.ip4_lookup().add_route(10, 3);
  const auto stats = graph.run(materialize(small_trace(1000)));
  EXPECT_EQ(stats.packets, 1000u);
}

TEST(BessPipeline, ForwardsAndMeasures) {
  sketch::CountMinSketch cm(5, 4096, 5);
  InlineMeasurementNoTs<sketch::CountMinSketch> meas(cm);
  BessPipeline pipe(meas);
  const auto stream = small_trace();
  const auto stats = pipe.run(materialize(stream));
  EXPECT_EQ(stats.packets, stream.size());
  EXPECT_EQ(cm.total(), static_cast<std::int64_t>(stream.size()));
}

TEST(Pipelines, AllThreeAgreeOnPacketCounts) {
  const auto stream = small_trace(30000);
  const auto raws = materialize(stream);
  NoMeasurement m1, m2, m3;
  OvsPipeline ovs(m1);
  VppGraph vpp(m2);
  BessPipeline bess(m3);
  EXPECT_EQ(ovs.run(raws).packets, stream.size());
  EXPECT_EQ(vpp.run(raws).packets, stream.size());
  EXPECT_EQ(bess.run(raws).packets, stream.size());
}

TEST(InstrumentedUnivMon, BreakdownCoversHashCountersHeap) {
  sketch::UnivMonConfig cfg;
  cfg.levels = 8;
  cfg.depth = 5;
  cfg.top_width = 1024;
  cfg.min_width = 256;
  cfg.heap_capacity = 100;
  InstrumentedUnivMon meas(cfg, 6);
  OvsPipeline pipe(meas);
  pipe.run(materialize(small_trace(20000)));
  EXPECT_GT(meas.hash_cycles(), 0u);
  EXPECT_GT(meas.counter_cycles(), 0u);
  EXPECT_GT(meas.heap_cycles(), 0u);
  EXPECT_EQ(meas.univmon().total(), 20000);
}

TEST(Throughput, UnitConversions) {
  // 14.88Mpps of 64B packets == 10GbE with framing overhead.
  const auto t = Throughput::from(14'880'000, 14'880'000ull * 64, 1.0);
  EXPECT_NEAR(t.mpps, 14.88, 0.01);
  EXPECT_NEAR(t.gbps, 10.0, 0.05);
}

}  // namespace
}  // namespace nitro::switchsim
