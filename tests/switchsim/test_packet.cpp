#include "switchsim/packet.hpp"

#include <gtest/gtest.h>

#include "trace/workloads.hpp"

namespace nitro::switchsim {
namespace {

trace::PacketRecord sample_record() {
  trace::PacketRecord rec;
  rec.key.src_ip = 0x0a000001;
  rec.key.dst_ip = 0xc0a80102;
  rec.key.src_port = 1234;
  rec.key.dst_port = 80;
  rec.key.proto = 6;
  rec.wire_bytes = 128;
  rec.ts_ns = 999;
  return rec;
}

TEST(Packet, RoundTripsThroughWireFormat) {
  const auto rec = sample_record();
  const RawPacket raw = make_raw(rec);
  const auto key = extract_miniflow(raw);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, rec.key);
  EXPECT_EQ(raw.wire_bytes, 128);
  EXPECT_EQ(raw.ts_ns, 999u);
}

TEST(Packet, NonIpv4Rejected) {
  auto raw = make_raw(sample_record());
  raw.header[12] = 0x86;  // EtherType -> not 0x0800
  raw.header[13] = 0xdd;
  EXPECT_FALSE(extract_miniflow(raw).has_value());
}

TEST(Packet, BadIpVersionRejected) {
  auto raw = make_raw(sample_record());
  raw.header[14] = 0x65;  // version 6
  EXPECT_FALSE(extract_miniflow(raw).has_value());
}

TEST(Packet, MaterializePreservesOrderAndKeys) {
  trace::WorkloadSpec spec;
  spec.packets = 1000;
  spec.flows = 100;
  spec.seed = 1;
  const auto stream = trace::caida_like(spec);
  const auto raws = materialize(stream);
  ASSERT_EQ(raws.size(), stream.size());
  for (std::size_t i = 0; i < raws.size(); ++i) {
    const auto key = extract_miniflow(raws[i]);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, stream[i].key);
  }
}

TEST(Packet, EveryProtoAndPortSurvives) {
  trace::PacketRecord rec = sample_record();
  for (std::uint8_t proto : {6, 17, 1, 47}) {
    rec.key.proto = proto;
    rec.key.src_port = static_cast<std::uint16_t>(proto * 1000 + 1);
    rec.key.dst_port = static_cast<std::uint16_t>(65535 - proto);
    const auto key = extract_miniflow(make_raw(rec));
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, rec.key);
  }
}

}  // namespace
}  // namespace nitro::switchsim
