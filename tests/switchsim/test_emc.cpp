#include "switchsim/emc.hpp"

#include <gtest/gtest.h>

#include "trace/workloads.hpp"

namespace nitro::switchsim {
namespace {

using trace::flow_key_for_rank;

TEST(Emc, MissThenHit) {
  Emc emc(64);
  const FlowKey k = flow_key_for_rank(0, 0);
  const auto digest = flow_digest(k);
  EXPECT_FALSE(emc.lookup(k, digest).has_value());
  emc.insert(k, digest, 7);
  const auto hit = emc.lookup(k, digest);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7u);
  EXPECT_EQ(emc.hits(), 1u);
  EXPECT_EQ(emc.misses(), 1u);
}

TEST(Emc, EvictionOnCollisionStillResolves) {
  Emc emc(2);  // tiny: constant eviction
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 0);
    emc.insert(k, flow_digest(k), static_cast<ActionId>(i));
  }
  // Whatever survived must return its own action.
  int live = 0;
  for (int i = 0; i < 100; ++i) {
    const FlowKey k = flow_key_for_rank(i, 0);
    const auto r = emc.lookup(k, flow_digest(k));
    if (r) {
      EXPECT_EQ(*r, static_cast<ActionId>(i));
      ++live;
    }
  }
  EXPECT_GT(live, 0);
  EXPECT_LE(live, 2);
}

TEST(Classifier, DefaultActionWhenNoRuleMatches) {
  TupleSpaceClassifier cls;
  cls.set_default_action(9);
  EXPECT_EQ(cls.classify(flow_key_for_rank(0, 0)), 9u);
}

TEST(Classifier, MaskedSubtableMatches) {
  TupleSpaceClassifier cls;
  cls.add_subtable({0xff000000u, 0u, false, false});  // match src /8
  FlowKey rule;
  rule.src_ip = 0x0a000000;  // 10/8
  cls.add_rule(0, rule, 42);
  FlowKey pkt;
  pkt.src_ip = 0x0a1b2c3d;  // 10.27.44.61 -> same /8
  pkt.dst_ip = 0x01020304;
  EXPECT_EQ(cls.classify(pkt), 42u);
  pkt.src_ip = 0x0b000001;  // 11/8 -> default
  cls.set_default_action(1);
  EXPECT_EQ(cls.classify(pkt), 1u);
}

TEST(Classifier, SubtablePriorityIsInsertionOrder) {
  TupleSpaceClassifier cls;
  cls.add_subtable({0xffffffffu, 0xffffffffu, true, true});  // exact
  cls.add_subtable({0xff000000u, 0u, false, false});         // /8
  FlowKey k = flow_key_for_rank(3, 0);
  cls.add_rule(0, k, 100);
  FlowKey coarse;
  coarse.src_ip = k.src_ip & 0xff000000u;
  cls.add_rule(1, coarse, 200);
  EXPECT_EQ(cls.classify(k), 100u);  // exact wins
}

TEST(Classifier, CountsLookups) {
  TupleSpaceClassifier cls;
  cls.classify(flow_key_for_rank(0, 0));
  cls.classify(flow_key_for_rank(1, 0));
  EXPECT_EQ(cls.lookups(), 2u);
}

}  // namespace
}  // namespace nitro::switchsim
